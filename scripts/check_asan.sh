#!/bin/sh
# Builds the tree with AddressSanitizer (-DHG_SANITIZE=address) and runs the
# memory-hazard-sensitive suites: codec/fuzz decoding of corrupted inputs,
# the fail-point + fault-injection paths, the TCP transport, and checkpoint
# restore from truncated/bit-flipped images. Any heap error fails the run
# (ASan exits nonzero).
set -eu
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DHG_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target hg_util_tests hg_net_tests hg_core_tests hg_io_tests

export ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+ $ASAN_OPTIONS}"
"$BUILD_DIR"/tests/hg_util_tests --gtest_filter='FailPoint*:Codec*:Buffer*'
"$BUILD_DIR"/tests/hg_net_tests
"$BUILD_DIR"/tests/hg_core_tests \
  --gtest_filter='FaultInjection*:DifferentialFuzz*:Recovery*:Checkpoint*:*MessagePath*:HybridGolden*:TraceSpans*:*Pipeline*:*Adaptive*:Frontier*'
# The spill suite decodes deliberately truncated/bit-flipped run files and
# streams merges through minimal buffers — the OOB-sensitive paths the
# corruption fuzzers exist for.
"$BUILD_DIR"/tests/hg_io_tests \
  --gtest_filter='*Spill*:*MergeIterator*:*Corruption*:Prefetch*:Storage*'
echo "ASan clean: codec fuzz + fault injection + transport + recovery + spill tests ran leak/overflow-free"
