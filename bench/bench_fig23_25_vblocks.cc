// Figures 23-25 (Appendix C) — the impact of the Vblock count on b-pull:
// memory requirement (falls with V), I/O bytes (rise with V: more fragments,
// Theorem 1) and the overall runtime, for PageRank and SSSP over livej and
// wiki on 5 nodes.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

void RunSweep(const char* dataset, Algo algo) {
  const DatasetSpec spec = FindDataset(dataset).ValueOrDie();
  const double shrink = ShrinkFor(spec);
  const EdgeListGraph& graph = CachedGraph(spec, shrink);
  // Paper x-axis: min (1 per node) then 50..400 total Vblocks (x10 ticks).
  std::printf("\n-- %s over %s --\n", AlgoName(algo), dataset);
  std::printf("%12s %14s %14s %12s %12s\n", "vblocks/node", "memory_bytes",
              "io_bytes", "fragments", "runtime(s)");
  for (uint32_t per_node : {1u, 10u, 20u, 40u, 60u, 80u}) {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.vblocks_per_node = per_node;
    if (algo == Algo::kSssp) cfg.max_supersteps = 60;
    auto stats = RunAlgo(graph, algo, EngineMode::kBPull, cfg);
    if (!stats.ok()) {
      std::printf("%12u FAILED\n", per_node);
      continue;
    }
    // Paper reports the average (PageRank) / max (SSSP) across supersteps.
    uint64_t mem = 0, io = 0;
    for (const auto& s : stats->supersteps) {
      mem = std::max(mem, s.memory_highwater_bytes);
      io += s.io.Total();
    }
    if (algo == Algo::kPageRank && !stats->supersteps.empty()) {
      io /= stats->supersteps.size();
    }
    std::printf("%12u %14llu %14llu %12llu %12.4f\n", per_node,
                (unsigned long long)mem, (unsigned long long)io,
                (unsigned long long)stats->load.total_fragments,
                stats->modeled_seconds);
  }
}

}  // namespace

int main() {
  PrintHeader("bench_fig23_25_vblocks",
              "Figs 23-25: memory, I/O and runtime vs the number of Vblocks");
  for (const char* ds : {"livej", "wiki"}) {
    RunSweep(ds, Algo::kPageRank);
    RunSweep(ds, Algo::kSssp);
  }
  std::printf(
      "\nexpected shape: memory drops quickly as V grows (BR/BS shrink);\n"
      "fragments rise with V (Theorem 1) and PageRank I/O and runtime rise\n"
      "with them. For SSSP the paper additionally observes a turning point\n"
      "at very small V (oversized Eblocks waste bandwidth on useless edges\n"
      "during wiki's ~284-superstep convergence tail); the scale models\n"
      "converge in far fewer supersteps, so here that effect only shows as\n"
      "SSSP's I/O bytes *decreasing* with V while runtime still rises.\n");
  return 0;
}
