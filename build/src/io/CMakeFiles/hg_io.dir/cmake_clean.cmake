file(REMOVE_RECURSE
  "CMakeFiles/hg_io.dir/disk_model.cc.o"
  "CMakeFiles/hg_io.dir/disk_model.cc.o.d"
  "CMakeFiles/hg_io.dir/message_spill.cc.o"
  "CMakeFiles/hg_io.dir/message_spill.cc.o.d"
  "CMakeFiles/hg_io.dir/storage.cc.o"
  "CMakeFiles/hg_io.dir/storage.cc.o.d"
  "libhg_io.a"
  "libhg_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
