// Per-node storage service: a keyed blob store through which all
// "disk-resident" data (adjacency blocks, Vblocks, Eblocks, message spills)
// is written and read. Every access declares its IoClass and is metered.
//
// Two backends share the interface: MemStorage keeps blobs in memory (fast,
// used by benches — modeled time comes from the meter, not from real device
// speed) and FileStorage writes real files under a directory (used by tests
// to validate that the layered formats round-trip through a real filesystem).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/disk_model.h"
#include "util/buffer.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace hybridgraph {

/// \brief Abstract keyed blob store with metered access and an optional
/// whole-blob LRU page cache (reads of cached blobs are metered at RAM cost;
/// writes always pay device cost and refresh the cache).
///
/// Thread safety: all blob operations, the meter, and the page cache are
/// guarded by one internal lock, so a storage instance may be accessed from
/// concurrent superstep phases (e.g. pull handlers served for several
/// requesters). Note that meter snapshots are only meaningful when taken
/// while no operations are in flight (the engines snapshot between phases).
class StorageService {
 public:
  virtual ~StorageService() = default;

  /// Turns on the page-cache model with the given capacity (0 disables).
  void EnablePageCache(uint64_t capacity_bytes) {
    page_cache_capacity_ = capacity_bytes;
  }
  uint64_t page_cache_capacity() const { return page_cache_capacity_; }

  /// Replaces the blob at `key` with `data`.
  virtual Status Write(const std::string& key, Slice data, IoClass cls) = 0;

  /// Appends `data` to the blob at `key`, creating it if absent.
  virtual Status Append(const std::string& key, Slice data, IoClass cls) = 0;

  /// Reads the whole blob into `*out`.
  virtual Status Read(const std::string& key, std::vector<uint8_t>* out,
                      IoClass cls) = 0;

  /// Reads `len` bytes starting at `offset` into `*out`.
  virtual Status ReadRange(const std::string& key, uint64_t offset, uint64_t len,
                           std::vector<uint8_t>* out, IoClass cls) = 0;

  /// Streaming read: like ReadRange, but `len` is clamped to the blob end,
  /// so the last chunk of a sequential scan comes back short instead of
  /// failing OutOfRange (reading at or past the end yields an empty `*out`).
  /// Page-cache metering is identical to ReadRange — chunked scans of a
  /// cache-resident blob are charged at RAM cost. This is the entry point
  /// for chunk-at-a-time consumers (the bounded-memory spill merge).
  Status ReadAt(const std::string& key, uint64_t offset, uint64_t len,
                std::vector<uint8_t>* out, IoClass cls);

  /// Overwrites `data.size()` bytes at `offset` within an existing blob.
  virtual Status WriteRange(const std::string& key, uint64_t offset, Slice data,
                            IoClass cls) = 0;

  /// Durability barrier for the blob at `key`: returns once previously
  /// written data is considered persistent. Both backends are synchronous, so
  /// this is a no-op seam — but it is a distinct fail-point site
  /// ("storage.sync"), letting tests model a write that lands and an fsync
  /// that fails (the classic torn-durability case).
  virtual Status Sync(const std::string& key) {
    (void)key;
    return FailPointCheck("storage.sync");
  }

  virtual bool Exists(const std::string& key) const = 0;
  virtual Status Delete(const std::string& key) = 0;
  /// Size in bytes of the blob, or 0 if absent.
  virtual uint64_t SizeOf(const std::string& key) const = 0;
  /// All keys with the given prefix, sorted.
  virtual std::vector<std::string> ListKeys(const std::string& prefix) const = 0;

  DiskMeter* meter() { return &meter_; }
  const DiskMeter& meter() const { return meter_; }

 protected:
  /// Meters a read of `bytes` from blob `key` (total size `blob_size`),
  /// consulting/updating the page cache.
  void MeterRead(const std::string& key, uint64_t blob_size, uint64_t bytes,
                 IoClass cls);
  /// Meters a write and refreshes the blob's cache entry.
  void MeterWrite(const std::string& key, uint64_t blob_size, uint64_t bytes,
                  IoClass cls);
  void DropFromCache(const std::string& key);

  /// Serializes blob data, meter and page-cache state. Recursive because
  /// backend methods compose (FileStorage::Append consults SizeOf()).
  mutable std::recursive_mutex mutex_;
  DiskMeter meter_;

 private:
  bool CacheLookupOrInsert(const std::string& key, uint64_t blob_size);
  void CacheInsert(const std::string& key, uint64_t blob_size);
  void CacheEvictToFit();

  uint64_t page_cache_capacity_ = 0;
  uint64_t page_cache_used_ = 0;
  std::list<std::pair<std::string, uint64_t>> cache_order_;
  std::map<std::string, std::list<std::pair<std::string, uint64_t>>::iterator>
      cache_map_;
};

/// \brief In-memory backend: blobs live in a map; access is metered exactly
/// like the file backend so modeled I/O time is identical.
class MemStorage : public StorageService {
 public:
  Status Write(const std::string& key, Slice data, IoClass cls) override;
  Status Append(const std::string& key, Slice data, IoClass cls) override;
  Status Read(const std::string& key, std::vector<uint8_t>* out,
              IoClass cls) override;
  Status ReadRange(const std::string& key, uint64_t offset, uint64_t len,
                   std::vector<uint8_t>* out, IoClass cls) override;
  Status WriteRange(const std::string& key, uint64_t offset, Slice data,
                    IoClass cls) override;
  bool Exists(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  uint64_t SizeOf(const std::string& key) const override;
  std::vector<std::string> ListKeys(const std::string& prefix) const override;

 private:
  std::map<std::string, std::vector<uint8_t>> blobs_;
};

/// \brief File-backed backend: each key maps to a file under `root_dir`
/// (slashes in keys become subdirectories).
class FileStorage : public StorageService {
 public:
  /// Creates `root_dir` if needed.
  static Result<std::unique_ptr<FileStorage>> Open(const std::string& root_dir);

  Status Write(const std::string& key, Slice data, IoClass cls) override;
  Status Append(const std::string& key, Slice data, IoClass cls) override;
  Status Read(const std::string& key, std::vector<uint8_t>* out,
              IoClass cls) override;
  Status ReadRange(const std::string& key, uint64_t offset, uint64_t len,
                   std::vector<uint8_t>* out, IoClass cls) override;
  Status WriteRange(const std::string& key, uint64_t offset, Slice data,
                    IoClass cls) override;
  bool Exists(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  uint64_t SizeOf(const std::string& key) const override;
  std::vector<std::string> ListKeys(const std::string& prefix) const override;

  const std::string& root_dir() const { return root_dir_; }

 private:
  explicit FileStorage(std::string root_dir) : root_dir_(std::move(root_dir)) {}
  std::string PathFor(const std::string& key) const;

  std::string root_dir_;
};

}  // namespace hybridgraph
