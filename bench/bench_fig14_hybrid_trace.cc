// Figure 14 — per-superstep trace of hybrid running SSSP over the twi model
// with limited memory: (a) the Q_t metric on HDD vs SSD with the two switch
// points, (b) disk I/O, (c) network messages, (d) memory usage, for push,
// b-pull and hybrid.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

Result<JobStats> Run(EngineMode mode, DiskProfile disk) {
  const DatasetSpec spec = FindDataset("twi").ValueOrDie();
  const double shrink = ShrinkFor(spec);
  const EdgeListGraph& graph = CachedGraph(spec, shrink);
  JobConfig cfg = LimitedMemoryConfig(spec, shrink, disk);
  cfg.max_supersteps = 30;
  return RunAlgo(graph, Algo::kSssp, mode, cfg);
}

}  // namespace

int main() {
  PrintHeader("bench_fig14_hybrid_trace",
              "Fig 14: Qt / I/O / network / memory per superstep "
              "(SSSP over twi, limited memory)");

  // (a) Q_t on both clusters.
  std::printf("\n(a) performance metric Q_t per superstep\n");
  std::printf("%4s %14s %14s %8s  (mode column: HDD run)\n", "t", "Qt(HDD)",
              "Qt(SSD)", "mode");
  auto hdd = Run(EngineMode::kHybrid, DiskProfile::Hdd());
  auto ssd = Run(EngineMode::kHybrid, DiskProfile::Ssd());
  if (!hdd.ok() || !ssd.ok()) {
    std::printf("FAILED\n");
    return 1;
  }
  const size_t n = std::min(hdd->supersteps.size(), ssd->supersteps.size());
  for (size_t t = 0; t < n; ++t) {
    const auto& h = hdd->supersteps[t];
    std::printf("%4zu %14.5g %14.5g %8s%s\n", t, h.q_t,
                ssd->supersteps[t].q_t, EngineModeName(h.mode),
                h.switched ? "  <-- switch" : "");
  }

  // (b)-(d): per-superstep resources for the three engines on HDD.
  for (EngineMode mode :
       {EngineMode::kPush, EngineMode::kBPull, EngineMode::kHybrid}) {
    auto stats = Run(mode, DiskProfile::Hdd());
    if (!stats.ok()) continue;
    std::printf("\n%s per superstep (HDD)\n", EngineModeName(mode));
    std::printf("%4s %12s %12s %14s %10s\n", "t", "io_bytes", "net_msgs",
                "memory_bytes", "mode");
    for (const auto& s : stats->supersteps) {
      std::printf("%4d %12llu %12llu %14llu %10s\n", s.superstep,
                  (unsigned long long)s.io.Total(),
                  (unsigned long long)s.messages_on_wire,
                  (unsigned long long)s.memory_highwater_bytes,
                  EngineModeName(s.mode));
    }
  }
  std::printf(
      "\nexpected shape: the switch points land at nearly the same\n"
      "supersteps on HDD and SSD (the sign of Qt is dominated by the\n"
      "message-volume/fragment trade-off, not the device, Sec 6.2), while\n"
      "|Qt| — the expected switching gain — shrinks on SSD; hybrid tracks\n"
      "b-pull early and push late, with a one-superstep resource spike at\n"
      "the b-pull->push switch.\n");
  return 0;
}
