// Figure 18 — network traffic of push vs b-pull for PageRank over wiki and
// orkut. As in the paper, b-pull's combiner is DISABLED here so the ~50%
// traffic reduction comes from concatenation alone; the paper plots a
// GANGLIA timeline, we report the equivalent per-superstep in/out series.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_fig18_traffic",
              "Fig 18: network traffic, push vs b-pull (combining disabled)");
  for (const char* name : {"wiki", "orkut"}) {
    const DatasetSpec spec = FindDataset(name).ValueOrDie();
    const double shrink = ShrinkFor(spec);
    const EdgeListGraph& graph = CachedGraph(spec, shrink);
    std::printf("\n-- PageRank over %s: cluster network bytes per superstep --\n",
                name);
    uint64_t totals[2] = {0, 0};
    std::vector<std::vector<uint64_t>> series;
    const EngineMode modes[] = {EngineMode::kPush, EngineMode::kBPull};
    for (int i = 0; i < 2; ++i) {
      JobConfig cfg = SufficientMemoryConfig(spec, shrink);
      cfg.max_supersteps = 5;
      cfg.bpull_combining = false;
      auto stats = RunAlgo(graph, Algo::kPageRank, modes[i], cfg);
      std::vector<uint64_t> col;
      if (stats.ok()) {
        for (const auto& s : stats->supersteps) {
          col.push_back(s.net_bytes);
          totals[i] += s.net_bytes;
        }
      }
      series.push_back(std::move(col));
    }
    std::printf("%4s %14s %14s\n", "t", "push", "b-pull");
    for (size_t t = 0; t < 5; ++t) {
      std::printf("%4zu", t + 1);
      for (const auto& col : series) {
        if (t < col.size()) {
          std::printf(" %14llu", (unsigned long long)col[t]);
        } else {
          std::printf(" %14s", "-");
        }
      }
      std::printf("\n");
    }
    std::printf("total: push=%s  b-pull=%s  reduction=%.1f%%\n",
                HumanBytes(totals[0]).c_str(), HumanBytes(totals[1]).c_str(),
                totals[0] ? 100.0 * (1.0 - static_cast<double>(totals[1]) /
                                               totals[0])
                          : 0.0);
  }
  std::printf(
      "\nexpected shape: roughly 50%% traffic reduction for b-pull from\n"
      "concatenating messages to shared destinations (Sec 6.5).\n");
  return 0;
}
