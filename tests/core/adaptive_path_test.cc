// Differential and golden tests for the frontier-aware adaptive MessagePath:
// BFS and SSSP on seeded RMAT / chain / star graphs must agree exactly with
// the single-threaded references AND with the pure push / pure b-pull
// fixpoints (the per-cell direction choice may change how messages move,
// never what arrives); modeled metrics and the per-cell decision log must be
// bit-identical at any thread count; and the decision grid for a fixed seed
// is pinned as a golden so heuristic regressions show up as diffs.
#include "core/paths/adaptive_path.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algos/bfs.h"
#include "algos/sssp.h"
#include "core/metrics_csv.h"
#include "core/paths/bpull_path.h"
#include "core/paths/push_path.h"
#include "core/superstep_driver.h"
#include "graph/generator.h"
#include "tests/core/reference_impls.h"

namespace hybridgraph {
namespace {

/// The three frontier shapes of the suite: skewed communities (RMAT), a
/// single-vertex frontier for the whole run (chain), and one maximally dense
/// superstep (star).
struct Shape {
  const char* name;
  EdgeListGraph graph;
};

std::vector<Shape> TestShapes() {
  std::vector<Shape> shapes;
  shapes.push_back({"rmat", GenerateRmat(600, 3600, /*seed=*/5)});
  shapes.push_back({"chain", GenerateChain(150, /*seed=*/3)});
  shapes.push_back({"star", GenerateStar(400, /*seed=*/4)});
  return shapes;
}

template <typename P>
struct Rig {
  std::unique_ptr<SuperstepDriver<P>> driver;
  std::unique_ptr<PushPath<P>> push;
  std::unique_ptr<BPullPath<P>> bpull;
  std::unique_ptr<AdaptivePath<P>> adaptive;
};

template <typename P>
Rig<P> MakeRig(const JobConfig& cfg, P program) {
  Rig<P> rig;
  rig.driver = std::make_unique<SuperstepDriver<P>>(cfg, program,
                                                    /*gas_engine=*/false);
  rig.push = std::make_unique<PushPath<P>>(rig.driver.get());
  rig.bpull = std::make_unique<BPullPath<P>>(rig.driver.get());
  rig.driver->InstallPath(rig.push.get(),
                          /*active=*/cfg.mode != EngineMode::kBPull &&
                              cfg.mode != EngineMode::kAdaptive);
  rig.driver->InstallPath(rig.bpull.get(),
                          /*active=*/cfg.mode == EngineMode::kBPull ||
                              cfg.mode == EngineMode::kHybrid);
  if (cfg.mode == EngineMode::kAdaptive) {
    rig.adaptive = std::make_unique<AdaptivePath<P>>(rig.driver.get());
    rig.driver->InstallPath(rig.adaptive.get(), /*active=*/true);
  }
  return rig;
}

JobConfig BaseConfig(EngineMode mode, uint32_t threads) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.num_threads = threads;
  cfg.msg_buffer_per_node = 120;  // forces spilling under push cells
  cfg.max_supersteps = 200;       // the chain needs its full diameter
  return cfg;
}

template <typename P>
std::vector<typename P::Value> RunToFixpoint(const EdgeListGraph& g, P program,
                                             EngineMode mode,
                                             uint32_t threads) {
  auto rig = MakeRig(BaseConfig(mode, threads), program);
  EXPECT_TRUE(rig.driver->Load(g).ok()) << EngineModeName(mode);
  EXPECT_TRUE(rig.driver->Run().ok()) << EngineModeName(mode);
  EXPECT_TRUE(rig.driver->converged()) << EngineModeName(mode);
  return rig.driver->GatherValues().ValueOrDie();
}

class AdaptiveDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AdaptiveDifferential, BfsMatchesReferenceAndPureModes) {
  for (const Shape& shape : TestShapes()) {
    BfsProgram program;
    program.source = 0;
    const auto expected = ReferenceBfs(shape.graph, program.source);
    const auto adaptive = RunToFixpoint(shape.graph, program,
                                        EngineMode::kAdaptive, GetParam());
    ASSERT_EQ(adaptive.size(), expected.size()) << shape.name;
    EXPECT_EQ(adaptive, expected) << shape.name;
    // The pure fixpoints must be EXACTLY equal: min-combining is
    // order-independent, so how messages traveled cannot show in the result.
    EXPECT_EQ(adaptive,
              RunToFixpoint(shape.graph, program, EngineMode::kPush, GetParam()))
        << shape.name;
    EXPECT_EQ(adaptive, RunToFixpoint(shape.graph, program, EngineMode::kBPull,
                                      GetParam()))
        << shape.name;
  }
}

TEST_P(AdaptiveDifferential, SsspMatchesReferenceAndPureModes) {
  for (const Shape& shape : TestShapes()) {
    SsspProgram program;
    program.source = 0;
    const auto expected = ReferenceSssp(shape.graph, program.source);
    const auto adaptive = RunToFixpoint(shape.graph, program,
                                        EngineMode::kAdaptive, GetParam());
    ASSERT_EQ(adaptive.size(), expected.size()) << shape.name;
    for (size_t v = 0; v < adaptive.size(); ++v) {
      ASSERT_FLOAT_EQ(adaptive[v], expected[v]) << shape.name << " v=" << v;
    }
    EXPECT_EQ(adaptive,
              RunToFixpoint(shape.graph, program, EngineMode::kPush, GetParam()))
        << shape.name;
    EXPECT_EQ(adaptive, RunToFixpoint(shape.graph, program, EngineMode::kBPull,
                                      GetParam()))
        << shape.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, AdaptiveDifferential,
                         ::testing::Values(1u, 8u), [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// --------------------------------------------------- thread-count invariance

/// All modeled fields of a superstep record (everything except the measured
/// phase_*_wall_s times, which are excluded from the determinism contract).
void ExpectModeledFieldsEqual(const SuperstepMetrics& a,
                              const SuperstepMetrics& b) {
  EXPECT_EQ(a.superstep, b.superstep);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.switched, b.switched);
  EXPECT_EQ(a.active_vertices, b.active_vertices);
  EXPECT_EQ(a.responding_vertices, b.responding_vertices);
  EXPECT_EQ(a.messages_produced, b.messages_produced);
  EXPECT_EQ(a.messages_on_wire, b.messages_on_wire);
  EXPECT_EQ(a.messages_combined, b.messages_combined);
  EXPECT_EQ(a.messages_spilled, b.messages_spilled);
  EXPECT_EQ(a.io.vt_bytes, b.io.vt_bytes);
  EXPECT_EQ(a.io.adj_edge_bytes, b.io.adj_edge_bytes);
  EXPECT_EQ(a.io.msg_spill_write, b.io.msg_spill_write);
  EXPECT_EQ(a.io.msg_spill_read, b.io.msg_spill_read);
  EXPECT_EQ(a.io.eblock_edge_bytes, b.io.eblock_edge_bytes);
  EXPECT_EQ(a.io.fragment_aux_bytes, b.io.fragment_aux_bytes);
  EXPECT_EQ(a.io.vrr_bytes, b.io.vrr_bytes);
  EXPECT_EQ(a.io.other_bytes, b.io.other_bytes);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.net_frames, b.net_frames);
  EXPECT_EQ(a.cpu_seconds, b.cpu_seconds);
  EXPECT_EQ(a.io_seconds, b.io_seconds);
  EXPECT_EQ(a.net_seconds, b.net_seconds);
  EXPECT_EQ(a.blocking_seconds, b.blocking_seconds);
  EXPECT_EQ(a.superstep_seconds, b.superstep_seconds);
  EXPECT_EQ(a.memory_highwater_bytes, b.memory_highwater_bytes);
  EXPECT_EQ(a.spill_merge_buffer_bytes, b.spill_merge_buffer_bytes);
  EXPECT_EQ(a.spill_peak_resident, b.spill_peak_resident);
  EXPECT_EQ(a.spill_combined, b.spill_combined);
  EXPECT_EQ(a.aggregate, b.aggregate);
  EXPECT_EQ(a.q_t, b.q_t);
  EXPECT_EQ(a.push_cells, b.push_cells);
  EXPECT_EQ(a.pull_cells, b.pull_cells);
}

TEST(AdaptiveDeterminism, MetricsAndDecisionLogBitIdenticalAcrossThreads) {
  const auto g = GenerateRmat(600, 3600, 5);
  BfsProgram program;
  program.source = 0;

  auto run = [&](uint32_t threads) {
    auto rig = MakeRig(BaseConfig(EngineMode::kAdaptive, threads), program);
    EXPECT_TRUE(rig.driver->Load(g).ok());
    EXPECT_TRUE(rig.driver->Run().ok());
    return std::make_pair(rig.driver->stats().supersteps,
                          rig.adaptive->decision_log());
  };
  const auto [m1, log1] = run(1);
  const auto [m8, log8] = run(8);

  ASSERT_EQ(m1.size(), m8.size());
  for (size_t t = 0; t < m1.size(); ++t) {
    SCOPED_TRACE("superstep " + std::to_string(t));
    ExpectModeledFieldsEqual(m1[t], m8[t]);
  }
  EXPECT_EQ(log1, log8);
  EXPECT_FALSE(log1.empty());
}

// ---------------------------------------------------------- CSV new columns

TEST(AdaptiveMetricsCsv, PerCellColumnsPresentAndPopulated) {
  const auto g = GenerateRmat(600, 3600, 5);
  BfsProgram program;
  program.source = 0;
  auto rig = MakeRig(BaseConfig(EngineMode::kAdaptive, 1), program);
  ASSERT_TRUE(rig.driver->Load(g).ok());
  ASSERT_TRUE(rig.driver->Run().ok());

  const std::string csv = SuperstepMetricsCsv(rig.driver->stats());
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_NE(header.find(",push_cells,pull_cells"), std::string::npos);

  uint64_t push_cells = 0, pull_cells = 0;
  for (const auto& s : rig.driver->stats().supersteps) {
    EXPECT_EQ(s.mode, EngineMode::kAdaptive);
    push_cells += s.push_cells;
    pull_cells += s.pull_cells;
  }
  // An RMAT BFS passes through sparse AND dense frontier phases, so both
  // directions must have been chosen somewhere in the run.
  EXPECT_GT(push_cells, 0u);
  EXPECT_GT(pull_cells, 0u);

  // Non-adaptive runs never populate the per-cell columns.
  auto push_rig = MakeRig(BaseConfig(EngineMode::kPush, 1), program);
  ASSERT_TRUE(push_rig.driver->Load(g).ok());
  ASSERT_TRUE(push_rig.driver->Run().ok());
  for (const auto& s : push_rig.driver->stats().supersteps) {
    EXPECT_EQ(s.push_cells, 0u);
    EXPECT_EQ(s.pull_cells, 0u);
  }
}

// ------------------------------------------------------ golden decision grid

/// Golden pins of the exact per-cell decision grid (fixed seed + config =>
/// fixed log). A diff here means the α/β heuristic, the cost inputs, or the
/// layout changed — inspect the new grid and re-pin deliberately if intended.
std::string RunDecisionLog(const EdgeListGraph& g, int max_supersteps) {
  BfsProgram program;
  program.source = 0;
  JobConfig cfg;
  cfg.mode = EngineMode::kAdaptive;
  cfg.num_nodes = 2;
  cfg.vblocks_per_node = 2;  // fixed 4x4 grid, independent of Eq. 5/6
  cfg.num_threads = 1;
  cfg.msg_buffer_per_node = 120;
  cfg.max_supersteps = max_supersteps;
  auto rig = MakeRig(cfg, program);
  EXPECT_TRUE(rig.driver->Load(g).ok());
  EXPECT_TRUE(rig.driver->Run().ok());
  return rig.adaptive->decision_log();
}

TEST(AdaptiveGoldenGrid, RmatBfsDecisionSequence) {
  // The classic direction-optimizing sweep, visible per cell: a one-vertex
  // frontier pushes (t=0), the dense middle hops pull everywhere (t=1..2),
  // and the shrinking tail flips back to push (t=3) — where the last
  // superstep is genuinely MIXED: three sparse rows push while the still-
  // dense row j=3 keeps pulling. A whole-superstep mode cannot express t=3.
  const std::string log = RunDecisionLog(GenerateRmat(240, 1800, 9), 10);
  const std::string kExpected =
      "t=0 n=0 j=0 PPPP\n"
      "t=1 n=0 j=0 BBBB\n"
      "t=1 n=0 j=1 BBBB\n"
      "t=1 n=1 j=2 BBBB\n"
      "t=1 n=1 j=3 BBBB\n"
      "t=2 n=0 j=0 BBBB\n"
      "t=2 n=0 j=1 BBBB\n"
      "t=2 n=1 j=2 BBBB\n"
      "t=2 n=1 j=3 BBBB\n"
      "t=3 n=0 j=0 PPPP\n"
      "t=3 n=0 j=1 PPPP\n"
      "t=3 n=1 j=2 PPPP\n"
      "t=3 n=1 j=3 BBBB\n";
  EXPECT_EQ(log, kExpected);
}

TEST(AdaptiveGoldenGrid, StarBfsDecisionSequence) {
  // Star around vertex 0: superstep 0 is the hub's single-vertex frontier
  // (sparse -> push), superstep 1 every leaf answers back toward the hub —
  // the hub's own Vblock row is fully dense (pull all cells) while the
  // leaf-only rows are dense ONLY toward the hub's cell ('.' elsewhere:
  // leaves have no edges into the other Vblocks, so those cells are empty).
  const std::string log = RunDecisionLog(GenerateStar(240, 4), 10);
  const std::string kExpected =
      "t=0 n=0 j=0 PPPP\n"
      "t=1 n=0 j=0 BBBB\n"
      "t=1 n=0 j=1 B...\n"
      "t=1 n=1 j=2 B...\n"
      "t=1 n=1 j=3 B...\n";
  EXPECT_EQ(log, kExpected);
}

}  // namespace
}  // namespace hybridgraph
