// Status and Result<T>: exception-free error handling for hot paths,
// in the style of Arrow / RocksDB.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace hybridgraph {

/// Error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIoError = 5,
  kCorruption = 6,
  kResourceExhausted = 7,
  kFailedPrecondition = 8,
  kUnimplemented = 9,
  kInternal = 10,
  kNetworkError = 11,
};

/// Returns a short human-readable name for a StatusCode ("OK", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation). Error statuses
/// carry a code and a message. All library entry points that can fail return
/// Status or Result<T>; exceptions are never thrown on hot paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result is a
/// programming error and aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Moves the value out; valid only if ok().
  T ValueOrDie() && { return std::move(*value_); }

  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hybridgraph

/// Propagates an error Status from an expression returning Status.
#define HG_RETURN_IF_ERROR(expr)                        \
  do {                                                  \
    ::hybridgraph::Status _hg_st = (expr);              \
    if (!_hg_st.ok()) return _hg_st;                    \
  } while (0)

#define HG_CONCAT_IMPL(a, b) a##b
#define HG_CONCAT(a, b) HG_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on success binds the value to
/// `lhs`, on error returns the Status from the enclosing function.
#define HG_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto HG_CONCAT(_hg_res_, __LINE__) = (rexpr);                    \
  if (!HG_CONCAT(_hg_res_, __LINE__).ok())                         \
    return HG_CONCAT(_hg_res_, __LINE__).status();                 \
  lhs = std::move(HG_CONCAT(_hg_res_, __LINE__)).ValueOrDie()
