// Fault-tolerant job driver.
//
// The paper's architecture (Appendix A) has a master-side Fault Detector and
// recovers by "simply recomputing from scratch", noting a lightweight
// solution as future work. CheckpointingRunner implements both policies:
// with checkpoint_every == 0 a crash restarts the job from superstep 0
// (the paper's policy); with periodic checkpoints a crash rolls back only to
// the last barrier image stored in reliable storage.
//
// Crash surfaces handled:
//  - `crash_after`: scripted whole-cluster crashes, consulted only at the
//    superstep barrier (see Run()).
//  - injected crashes (util/failpoint.h crash action) during a superstep:
//    detected via IsInjectedCrash and recovered like a fault-detector event.
//  - injected crashes during WriteCheckpoint ("ckpt.write" site): the torn
//    partial image is kept as the newest "reliable storage" image — restore
//    then detects it via the checksum trailer and falls back to the previous
//    checkpoint, or to scratch when none exists.
#pragma once

#include <memory>
#include <optional>
#include <set>

#include "core/engine.h"
#include "util/failpoint.h"

namespace hybridgraph {

template <typename P>
class CheckpointingRunner {
 public:
  using Value = typename P::Value;

  /// \param checkpoint_every write a checkpoint after every N supersteps
  ///        (0 = never; recovery recomputes from scratch).
  CheckpointingRunner(JobConfig config, P program, int checkpoint_every)
      : config_(std::move(config)),
        program_(std::move(program)),
        checkpoint_every_(checkpoint_every) {}

  /// Runs the job to completion. The cluster "crashes" (all volatile state
  /// lost) immediately after computing each superstep listed in
  /// `crash_after`; each crash fires at most once.
  ///
  /// Contract: `crash_after` is consulted exactly once per superstep, at the
  /// barrier after that superstep's checkpoint (if any) is written — it can
  /// never interrupt a checkpoint mid-write. Sub-superstep crashes are the
  /// fail-point subsystem's job: arm a crash action (e.g. at "ckpt.write" or
  /// "storage.write") and this runner recovers from wherever it fires.
  Status Run(const EdgeListGraph& graph, std::set<int> crash_after = {}) {
    HG_RETURN_IF_ERROR(Reboot(graph, /*restore=*/false));
    while (engine_->superstep() < config_.max_supersteps &&
           !engine_->converged()) {
      Status step = engine_->RunSuperstep();
      if (IsInjectedCrash(step)) {
        HG_RETURN_IF_ERROR(Recover(graph));
        continue;
      }
      HG_RETURN_IF_ERROR(step);
      ++supersteps_executed_;
      const int done = engine_->superstep();
      if (checkpoint_every_ > 0 && done % checkpoint_every_ == 0) {
        Buffer image;
        Status wrote = engine_->WriteCheckpoint(&image);
        if (IsInjectedCrash(wrote)) {
          // The node died mid-checkpoint and the torn partial image is what
          // reached reliable storage. Keep it as the newest image: recovery
          // must detect it (checksum) and fall back, never restore it.
          ++torn_checkpoints_;
          prev_checkpoint_ = std::move(checkpoint_);
          checkpoint_ = std::move(image);
          HG_RETURN_IF_ERROR(Recover(graph));
          continue;
        }
        HG_RETURN_IF_ERROR(wrote);
        prev_checkpoint_ = std::move(checkpoint_);
        checkpoint_ = std::move(image);
        ++checkpoints_written_;
      }
      auto it = crash_after.find(done - 1);
      if (it != crash_after.end()) {
        crash_after.erase(it);
        HG_RETURN_IF_ERROR(Recover(graph));
      }
    }
    return Status::OK();
  }

  Result<std::vector<Value>> GatherValues() { return engine_->GatherValues(); }
  const JobStats& stats() const { return engine_->stats(); }
  bool converged() const { return engine_->converged(); }

  int recoveries() const { return recoveries_; }
  int checkpoints_written() const { return checkpoints_written_; }
  /// Checkpoint writes interrupted by an injected crash (torn images).
  int torn_checkpoints() const { return torn_checkpoints_; }
  /// Restores that rejected a corrupt image and fell back (to the previous
  /// checkpoint, or from it to scratch).
  int checkpoint_fallbacks() const { return checkpoint_fallbacks_; }
  /// Total supersteps computed including re-execution after crashes.
  int supersteps_executed() const { return supersteps_executed_; }

 private:
  /// Caps runaway recovery loops (e.g. an unbounded crash fail-point that
  /// fires again on every re-execution).
  static constexpr int kMaxRecoveries = 256;

  Status Recover(const EdgeListGraph& graph) {
    if (++recoveries_ > kMaxRecoveries) {
      return Status::Internal("recovery limit exceeded (crash loop)");
    }
    return Reboot(graph, /*restore=*/true);
  }

  Status Reboot(const EdgeListGraph& graph, bool restore) {
    HG_RETURN_IF_ERROR(FreshEngine(graph));
    if (!restore) return Status::OK();
    while (checkpoint_.has_value()) {
      Status st = engine_->RestoreCheckpoint(checkpoint_->AsSlice());
      if (st.ok()) return Status::OK();
      if (st.code() != StatusCode::kCorruption) return st;
      // Torn/corrupt image: drop it, fall back to the next-older one (or to
      // scratch), on a fresh engine — the failed restore may have left
      // partial state behind.
      ++checkpoint_fallbacks_;
      checkpoint_ = std::move(prev_checkpoint_);
      prev_checkpoint_.reset();
      HG_RETURN_IF_ERROR(FreshEngine(graph));
    }
    return Status::OK();
  }

  Status FreshEngine(const EdgeListGraph& graph) {
    engine_ = std::make_unique<Engine<P>>(config_, program_);
    return engine_->Load(graph);
  }

  JobConfig config_;
  P program_;
  int checkpoint_every_;
  std::unique_ptr<Engine<P>> engine_;
  std::optional<Buffer> checkpoint_;       ///< newest "reliable storage" image
  std::optional<Buffer> prev_checkpoint_;  ///< next-older image (fallback)
  int recoveries_ = 0;
  int checkpoints_written_ = 0;
  int torn_checkpoints_ = 0;
  int checkpoint_fallbacks_ = 0;
  int supersteps_executed_ = 0;
};

}  // namespace hybridgraph
