# Empty dependencies file for bench_fig09_mem_limited_ssd.
# This may be replaced when dependencies are built.
