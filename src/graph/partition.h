// Range partitioning of vertices onto computational nodes and Vblocks.
//
// The paper range-partitions vertex ids: first into T contiguous per-node
// ranges, then each node's range into V_i contiguous Vblocks (Sec 4.1; any
// smarter partitioner can be applied by re-ordering ids first).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "net/transport.h"
#include "util/status.h"

namespace hybridgraph {

/// \brief Immutable vertex -> (node, Vblock) mapping with O(1) lookups.
class RangePartition {
 public:
  /// Evenly splits `num_vertices` over `num_nodes`, then each node's range
  /// over `vblocks_per_node[i]` Vblocks (sizes differ by at most one vertex).
  static Result<RangePartition> Create(uint64_t num_vertices, uint32_t num_nodes,
                                       std::vector<uint32_t> vblocks_per_node);

  /// Convenience: the same Vblock count on every node.
  static Result<RangePartition> CreateUniform(uint64_t num_vertices,
                                              uint32_t num_nodes,
                                              uint32_t vblocks_per_node);

  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t num_vertices() const { return num_vertices_; }
  /// Total Vblock count V across all nodes.
  uint32_t num_vblocks() const { return static_cast<uint32_t>(vblock_node_.size()); }

  NodeId NodeOf(VertexId v) const;
  /// Global Vblock index of v.
  uint32_t VblockOf(VertexId v) const;

  VertexRange NodeRange(NodeId node) const {
    return {node_begin_[node], node_begin_[node + 1]};
  }
  VertexRange VblockRange(uint32_t vblock) const {
    return {vblock_begin_[vblock], vblock_begin_[vblock + 1]};
  }

  NodeId NodeOfVblock(uint32_t vblock) const { return vblock_node_[vblock]; }
  /// Global Vblock indices owned by `node`: [first, last).
  uint32_t FirstVblockOf(NodeId node) const { return node_first_vblock_[node]; }
  uint32_t LastVblockOf(NodeId node) const { return node_first_vblock_[node + 1]; }
  uint32_t NumVblocksOf(NodeId node) const {
    return LastVblockOf(node) - FirstVblockOf(node);
  }

  /// Default-constructs an empty partition (no nodes); assign a real one
  /// from Create() before use.
  RangePartition() = default;

 private:
  uint64_t num_vertices_ = 0;
  uint32_t num_nodes_ = 0;
  std::vector<VertexId> node_begin_;        // size num_nodes+1
  std::vector<VertexId> vblock_begin_;      // size num_vblocks+1
  std::vector<NodeId> vblock_node_;         // size num_vblocks
  std::vector<uint32_t> node_first_vblock_; // size num_nodes+1
};

}  // namespace hybridgraph
