file(REMOVE_RECURSE
  "CMakeFiles/hg_net_tests.dir/net/message_codec_test.cc.o"
  "CMakeFiles/hg_net_tests.dir/net/message_codec_test.cc.o.d"
  "CMakeFiles/hg_net_tests.dir/net/tcp_transport_test.cc.o"
  "CMakeFiles/hg_net_tests.dir/net/tcp_transport_test.cc.o.d"
  "CMakeFiles/hg_net_tests.dir/net/transport_test.cc.o"
  "CMakeFiles/hg_net_tests.dir/net/transport_test.cc.o.d"
  "hg_net_tests"
  "hg_net_tests.pdb"
  "hg_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
