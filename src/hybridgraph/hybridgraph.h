// Umbrella public header for the HybridGraph library.
//
// Quick start:
//
//   #include "hybridgraph/hybridgraph.h"
//   using namespace hybridgraph;
//
//   EdgeListGraph g = GeneratePowerLaw(100000, 16.0, 0.8, /*seed=*/1);
//   JobConfig cfg;
//   cfg.mode = EngineMode::kHybrid;       // push | pushM | b-pull | hybrid
//   cfg.num_nodes = 5;                    // simulated computational nodes
//   cfg.msg_buffer_per_node = 20000;      // B_i (messages kept in memory)
//   cfg.max_supersteps = 10;
//   Engine<PageRankProgram> engine(cfg, PageRankProgram{});
//   engine.Load(g).ok() && engine.Run().ok();
//   auto ranks = engine.GatherValues();   // Result<std::vector<double>>
//   const JobStats& stats = engine.stats();
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction index.
#pragma once

#include "algos/bfs.h"
#include "algos/hits.h"
#include "algos/lpa.h"
#include "algos/pagerank.h"
#include "algos/pagerank_delta.h"
#include "algos/sa.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/aggregators.h"
#include "core/engine.h"
#include "core/recovery.h"
#include "core/job_config.h"
#include "core/program.h"
#include "core/run_metrics.h"
#include "core/vpull_engine.h"
#include "graph/edge_list.h"
#include "graph/generator.h"
#include "graph/partition.h"
#include "util/logging.h"
#include "util/status.h"
