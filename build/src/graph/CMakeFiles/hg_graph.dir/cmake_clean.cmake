file(REMOVE_RECURSE
  "CMakeFiles/hg_graph.dir/adjacency_store.cc.o"
  "CMakeFiles/hg_graph.dir/adjacency_store.cc.o.d"
  "CMakeFiles/hg_graph.dir/edge_list.cc.o"
  "CMakeFiles/hg_graph.dir/edge_list.cc.o.d"
  "CMakeFiles/hg_graph.dir/generator.cc.o"
  "CMakeFiles/hg_graph.dir/generator.cc.o.d"
  "CMakeFiles/hg_graph.dir/partition.cc.o"
  "CMakeFiles/hg_graph.dir/partition.cc.o.d"
  "CMakeFiles/hg_graph.dir/ve_block_store.cc.o"
  "CMakeFiles/hg_graph.dir/ve_block_store.cc.o.d"
  "CMakeFiles/hg_graph.dir/vertex_store.cc.o"
  "CMakeFiles/hg_graph.dir/vertex_store.cc.o.d"
  "libhg_graph.a"
  "libhg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
