#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

namespace {

constexpr uint8_t kKindPost = 0;
constexpr uint8_t kKindCall = 1;
// Request prefix before the FrameHeader: [kind u8][seq fixed64].
constexpr size_t kRequestPrefixSize = 1 + 8;
// Response frame: [code u8][len fixed32][payload or error message].
constexpr size_t kResponsePrefixSize = 1 + 4;

constexpr const char* kTimeoutMessage = "timeout waiting for response";

Status ReadExact(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r == 0) return Status::NetworkError("connection closed");
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::NetworkError(kTimeoutMessage);
      }
      return Status::NetworkError(StringFormat("read: %s", strerror(errno)));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteExact(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a peer that closed mid-exchange must surface as EPIPE
    // (and feed the retry path), not kill the process with SIGPIPE.
    const ssize_t r = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(StringFormat("write: %s", strerror(errno)));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

bool IsTimeout(const Status& st) {
  return st.message() == kTimeoutMessage;
}

/// Encodes a handler outcome as a response frame.
void EncodeResponseFrame(const Status& st, const Buffer& response,
                         std::vector<uint8_t>* out) {
  Buffer framed;
  Encoder enc(&framed);
  if (st.ok()) {
    enc.PutU8(static_cast<uint8_t>(StatusCode::kOk));
    enc.PutFixed32(static_cast<uint32_t>(response.size()));
    enc.PutRaw(response.data(), response.size());
  } else {
    enc.PutU8(static_cast<uint8_t>(st.code()));
    enc.PutFixed32(static_cast<uint32_t>(st.message().size()));
    enc.PutRaw(st.message().data(), st.message().size());
  }
  *out = framed.TakeBytes();
}

}  // namespace

TcpTransport::TcpTransport(uint32_t num_nodes)
    : TcpTransport(num_nodes, Options{}) {}

TcpTransport::TcpTransport(uint32_t num_nodes, Options options)
    : Transport(num_nodes),
      options_(options),
      listen_fds_(num_nodes, -1),
      ports_(num_nodes, 0),
      channels_(new Channel[static_cast<size_t>(num_nodes) * num_nodes]) {
  for (size_t i = 0; i < static_cast<size_t>(num_nodes) * num_nodes; ++i) {
    // One jitter stream per channel: schedules replay per seed and never
    // depend on which other channels are active.
    channels_[i].jitter = Rng(options_.seed ^ (0x517cc1b727220a95ULL * (i + 1)));
  }
}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Start() {
  if (started_.load()) return Status::OK();
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::NetworkError("socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return Status::NetworkError("bind() failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports_[i] = ntohs(addr.sin_port);
    if (::listen(fd, 64) < 0) {
      ::close(fd);
      return Status::NetworkError("listen() failed");
    }
    listen_fds_[i] = fd;
  }
  started_.store(true);
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    server_threads_.emplace_back([this, i] { ServeNode(i); });
  }
  return Status::OK();
}

void TcpTransport::ServeNode(NodeId node) {
  std::vector<std::thread> conn_threads;
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fds_[node], nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn_threads.emplace_back([this, node, fd] { ServeConnection(node, fd); });
  }
  for (auto& t : conn_threads) t.join();
}

void TcpTransport::ServeConnection(NodeId node, int fd) {
  std::vector<uint8_t> header(kRequestPrefixSize + FrameHeader::kEncodedSize);
  std::vector<uint8_t> payload;
  while (!stopping_.load()) {
    if (!ReadExact(fd, header.data(), header.size()).ok()) break;
    Decoder dec(Slice(header.data(), header.size()));
    uint8_t kind;
    uint64_t seq;
    FrameHeader hdr;
    if (!dec.GetU8(&kind).ok() || !dec.GetFixed64(&seq).ok() ||
        !FrameHeader::DecodeFrom(&dec, &hdr).ok()) {
      break;
    }
    if (kind != kKindPost && kind != kKindCall) break;
    if (hdr.payload_size > options_.max_frame_bytes) {
      HG_LOG(ERROR) << "tcp frame too large at node " << node << ": "
                    << hdr.payload_size << " > " << options_.max_frame_bytes;
      break;
    }
    payload.resize(hdr.payload_size);
    if (hdr.payload_size > 0 &&
        !ReadExact(fd, payload.data(), payload.size()).ok()) {
      break;
    }

    std::vector<uint8_t> response_frame;
    bool protocol_violation = false;
    {
      std::lock_guard<std::mutex> lock(dispatch_mutex_);
      DedupState& dedup = dedup_[{hdr.src, hdr.dst}];
      if (seq == dedup.last_seq) {
        // Retransmit of the frame we just executed (its response was lost):
        // answer from the cache, never re-run the handler.
        response_frame = dedup.last_response;
      } else if (seq < dedup.last_seq) {
        // The channel mutex serializes senders, so only the newest frame can
        // ever be retried; an older seq means a corrupt or misbehaving peer.
        protocol_violation = true;
      } else {
        Buffer response;
        // Handler errors are application outcomes: encode them into the
        // response (and the dedup cache) instead of killing the connection,
        // so the caller sees the Status exactly once and never retries it.
        const Status st =
            Dispatch(hdr, Slice(payload.data(), payload.size()), &response);
        EncodeResponseFrame(st, response, &response_frame);
        dedup.last_seq = seq;
        dedup.last_response = response_frame;
      }
    }
    if (protocol_violation) {
      HG_LOG(ERROR) << "tcp out-of-order seq at node " << node;
      break;
    }
    // Test seam: "tcp.server_close" models a peer that dies after executing
    // the request but before the response reaches the caller — the classic
    // case exactly-once dedup exists for.
    if (!FailPointCheck("tcp.server_close").ok()) break;
    if (!WriteExact(fd, response_frame.data(), response_frame.size()).ok()) {
      break;
    }
  }
  ::close(fd);
}

Status TcpTransport::ConnectChannel(Channel* ch, NodeId dst) {
  if (ch->fd >= 0) return Status::OK();
  const int s = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s < 0) return Status::NetworkError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ports_[dst]);
  if (::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(s);
    return Status::NetworkError(
        StringFormat("connect to node %u: %s", dst, strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.call_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.call_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(options_.call_timeout_ms % 1000) * 1000;
    ::setsockopt(s, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ch->fd = s;
  if (ch->ever_connected) reconnects_.fetch_add(1, std::memory_order_relaxed);
  ch->ever_connected = true;
  return Status::OK();
}

void TcpTransport::CloseChannel(Channel* ch) {
  if (ch->fd >= 0) {
    ::close(ch->fd);
    ch->fd = -1;
  }
}

Status TcpTransport::TrySend(Channel* ch, NodeId dst, Slice frame,
                             std::vector<uint8_t>* response_frame) {
  // Simulated mid-flight drop: the frame never reaches the peer, exactly as
  // if the connection died — the retry path must recover.
  Status fp = FailPointCheck("tcp.drop");
  if (!fp.ok()) {
    CloseChannel(ch);
    return fp;
  }
  HG_RETURN_IF_ERROR(ConnectChannel(ch, dst));
  HG_RETURN_IF_ERROR(WriteExact(ch->fd, frame.data(), frame.size()));

  uint8_t prefix[kResponsePrefixSize];
  HG_RETURN_IF_ERROR(ReadExact(ch->fd, prefix, sizeof(prefix)));
  Decoder dec(Slice(prefix, sizeof(prefix)));
  uint8_t code = 0;
  uint32_t len = 0;
  HG_RETURN_IF_ERROR(dec.GetU8(&code));
  HG_RETURN_IF_ERROR(dec.GetFixed32(&len));
  if (len > options_.max_frame_bytes) {
    return Status::NetworkError("oversized response frame");
  }
  response_frame->resize(kResponsePrefixSize + len);
  std::memcpy(response_frame->data(), prefix, kResponsePrefixSize);
  if (len > 0) {
    HG_RETURN_IF_ERROR(
        ReadExact(ch->fd, response_frame->data() + kResponsePrefixSize, len));
  }
  return Status::OK();
}

Status TcpTransport::SendFrame(NodeId src, NodeId dst, RpcMethod method,
                               Slice payload, bool is_call,
                               std::vector<uint8_t>* response) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    return Status::InvalidArgument("node id out of range");
  }
  if (!started_.load()) return Status::FailedPrecondition("Start() first");
  if (FrameHeader::kEncodedSize + payload.size() > options_.max_frame_bytes) {
    return Status::InvalidArgument(
        StringFormat("frame of %zu bytes exceeds max_frame_bytes %u",
                     payload.size(), options_.max_frame_bytes));
  }

  // Publish the caller's writes to the server thread (paired with the
  // dispatch lock acquisition there).
  { std::lock_guard<std::mutex> lock(dispatch_mutex_); }

  Channel& ch = channels_[static_cast<size_t>(src) * num_nodes_ + dst];
  std::lock_guard<std::mutex> channel_lock(ch.mutex);

  Buffer frame;
  Encoder enc(&frame);
  enc.PutU8(is_call ? kKindCall : kKindPost);
  enc.PutFixed64(ch.next_seq++);
  FrameHeader hdr{src, dst, method, static_cast<uint32_t>(payload.size())};
  hdr.EncodeTo(&enc);
  enc.PutRaw(payload.data(), payload.size());

  std::vector<uint8_t> response_frame;
  Status attempt_status;
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      // Exponential backoff with seeded jitter in [delay/2, delay): the whole
      // schedule is a deterministic function of (seed, channel, attempt
      // sequence).
      uint64_t delay_us = options_.backoff_base_us;
      delay_us <<= (attempt - 1 < 20 ? attempt - 1 : 20);
      if (delay_us > options_.backoff_max_us) delay_us = options_.backoff_max_us;
      if (delay_us > 1) {
        delay_us = delay_us / 2 + ch.jitter.NextBounded(delay_us / 2);
      }
      if (delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      }
    }
    attempt_status = TrySend(&ch, dst, frame.AsSlice(), &response_frame);
    if (attempt_status.ok()) break;
    if (IsTimeout(attempt_status)) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    // A failed exchange leaves the connection in an unknown framing state;
    // drop it so the next attempt reconnects and the receiver dedups by seq.
    CloseChannel(&ch);
  }
  if (!attempt_status.ok()) {
    return Status::NetworkError(StringFormat(
        "send to node %u failed after %u attempts: %s", dst,
        options_.max_retries + 1, attempt_status.message().c_str()));
  }

  Decoder dec(Slice(response_frame.data(), response_frame.size()));
  uint8_t code = 0;
  uint32_t len = 0;
  HG_RETURN_IF_ERROR(dec.GetU8(&code));
  HG_RETURN_IF_ERROR(dec.GetFixed32(&len));
  Slice body;
  HG_RETURN_IF_ERROR(dec.GetRaw(len, &body));
  if (code != static_cast<uint8_t>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(code),
                  std::string(reinterpret_cast<const char*>(body.data()),
                              body.size()));
  }

  // Meter exactly once per *logical* frame, after success: retries are
  // counted separately and do not change modeled traffic, keeping TCP runs
  // byte-identical to the in-process transport.
  const bool metered = ShouldMeter(src, dst);
  if (metered) MeterFrame(src, dst, FrameHeader::kEncodedSize + payload.size());
  if (is_call) {
    response->assign(body.data(), body.data() + body.size());
    if (metered) MeterFrame(dst, src, FrameHeader::kEncodedSize + len);
  }
  // Pull the handler's writes back into the caller thread.
  { std::lock_guard<std::mutex> lock(dispatch_mutex_); }
  return Status::OK();
}

Status TcpTransport::Post(NodeId src, NodeId dst, RpcMethod method,
                          Slice payload) {
  return SendFrame(src, dst, method, payload, /*is_call=*/false, nullptr);
}

Status TcpTransport::Call(NodeId src, NodeId dst, RpcMethod method,
                          Slice payload, std::vector<uint8_t>* response) {
  return SendFrame(src, dst, method, payload, /*is_call=*/true, response);
}

TransportFaultCounters TcpTransport::fault_counters() const {
  TransportFaultCounters c;
  c.retries = retries_.load(std::memory_order_relaxed);
  c.timeouts = timeouts_.load(std::memory_order_relaxed);
  c.reconnects = reconnects_.load(std::memory_order_relaxed);
  return c;
}

void TcpTransport::Shutdown() {
  if (!started_.load()) return;
  stopping_.store(true);
  const size_t n = static_cast<size_t>(num_nodes_) * num_nodes_;
  for (size_t i = 0; i < n; ++i) {
    std::lock_guard<std::mutex> lock(channels_[i].mutex);
    if (channels_[i].fd >= 0) {
      ::shutdown(channels_[i].fd, SHUT_RDWR);
      ::close(channels_[i].fd);
      channels_[i].fd = -1;
    }
  }
  for (int& fd : listen_fds_) {
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      fd = -1;
    }
  }
  for (auto& t : server_threads_) {
    if (t.joinable()) t.join();
  }
  server_threads_.clear();
  started_.store(false);
}

}  // namespace hybridgraph
