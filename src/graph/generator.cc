#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace hybridgraph {

namespace {

float EdgeWeight(Rng* rng) {
  // Positive weights in (0, 1]; SSSP needs non-negative.
  return static_cast<float>(rng->NextDouble() * 0.99 + 0.01);
}

/// Draws per-vertex out-degrees from Zipf(skew) scaled to hit `avg_degree`.
std::vector<uint32_t> DrawDegrees(uint64_t n, double avg_degree, double skew,
                                  Rng* rng) {
  // Zipf over 'shape ranks'; normalize so the empirical mean matches.
  const uint64_t max_rank = std::max<uint64_t>(2, std::min<uint64_t>(n, 10000));
  ZipfSampler zipf(max_rank, skew);
  std::vector<double> raw(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    raw[i] = static_cast<double>(zipf.Sample(rng));
    sum += raw[i];
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  std::vector<uint32_t> deg(n);
  for (uint64_t i = 0; i < n; ++i) {
    deg[i] = static_cast<uint32_t>(std::llround(raw[i] * scale));
  }
  return deg;
}

}  // namespace

EdgeListGraph GenerateUniform(uint64_t num_vertices, uint64_t num_edges,
                              uint64_t seed) {
  HG_CHECK_GT(num_vertices, 1u);
  Rng rng(seed);
  EdgeListGraph g;
  g.num_vertices = num_vertices;
  g.edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    VertexId src = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId dst = static_cast<VertexId>(rng.NextBounded(num_vertices));
    while (dst == src) dst = static_cast<VertexId>(rng.NextBounded(num_vertices));
    g.edges.push_back({src, dst, EdgeWeight(&rng)});
  }
  return g;
}

EdgeListGraph GeneratePowerLaw(uint64_t num_vertices, double avg_degree,
                               double skew, uint64_t seed, double locality) {
  HG_CHECK_GT(num_vertices, 1u);
  Rng rng(seed);
  EdgeListGraph g;
  g.num_vertices = num_vertices;

  const auto degrees = DrawDegrees(num_vertices, avg_degree, skew, &rng);

  // Global targets: Zipf-skewed ranks mapped through a random permutation so
  // hubs are spread across the id range (range partitioning balances them).
  std::vector<VertexId> perm(num_vertices);
  std::iota(perm.begin(), perm.end(), 0);
  for (uint64_t i = num_vertices - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextBounded(i + 1)]);
  }
  ZipfSampler target_zipf(num_vertices, skew * 0.8);
  const uint64_t window = std::max<uint64_t>(8, num_vertices / 256);

  uint64_t total = 0;
  for (auto d : degrees) total += d;
  g.edges.reserve(total);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (uint32_t k = 0; k < degrees[u]; ++k) {
      VertexId v;
      if (rng.NextDouble() < locality) {
        // Nearby target (id locality of crawl-ordered graphs).
        const uint64_t hop = 1 + rng.NextBounded(window);
        v = static_cast<VertexId>(
            rng.NextBool(0.5) ? (u + hop) % num_vertices
                              : (u + num_vertices - hop) % num_vertices);
      } else {
        v = perm[target_zipf.Sample(&rng) - 1];
      }
      int attempts = 0;
      while (v == u && attempts++ < 4) {
        v = perm[target_zipf.Sample(&rng) - 1];
      }
      if (v == u) v = (u + 1) % num_vertices;
      g.edges.push_back({u, v, EdgeWeight(&rng)});
    }
  }
  return g;
}

EdgeListGraph GenerateWebGraph(uint64_t num_vertices, double avg_degree,
                               double skew, double locality, uint64_t seed) {
  HG_CHECK_GT(num_vertices, 1u);
  Rng rng(seed);
  EdgeListGraph g;
  g.num_vertices = num_vertices;

  const auto degrees = DrawDegrees(num_vertices, avg_degree, skew, &rng);
  ZipfSampler hub_zipf(num_vertices, skew * 0.8);

  uint64_t total = 0;
  for (auto d : degrees) total += d;
  g.edges.reserve(total);

  // Geometric-ish hop length for local links; a (1-locality) fraction jump to
  // global hubs. A backbone edge u -> u+1 guarantees the long diameter.
  const uint64_t window = std::max<uint64_t>(4, num_vertices / 2048);
  for (VertexId u = 0; u < num_vertices; ++u) {
    const uint32_t d = std::max<uint32_t>(1, degrees[u]);
    for (uint32_t k = 0; k < d; ++k) {
      VertexId v;
      if (k == 0) {
        v = static_cast<VertexId>((u + 1) % num_vertices);  // backbone
      } else if (rng.NextDouble() < locality) {
        const uint64_t hop = 1 + rng.NextBounded(window);
        v = static_cast<VertexId>((u + hop) % num_vertices);
      } else {
        v = static_cast<VertexId>(hub_zipf.Sample(&rng) - 1);
        if (v == u) v = (u + 2) % num_vertices;
      }
      g.edges.push_back({u, v, EdgeWeight(&rng)});
    }
  }
  return g;
}

EdgeListGraph GenerateRmat(uint64_t num_vertices, uint64_t num_edges,
                           uint64_t seed, double a, double b, double c) {
  HG_CHECK_GT(num_vertices, 1u);
  Rng rng(seed);
  EdgeListGraph g;
  g.num_vertices = num_vertices;
  g.edges.reserve(num_edges);
  // Round the quadrant recursion up to the next power of two and re-draw
  // edges that land outside [0, n) (or on the diagonal).
  uint64_t scale = 1;
  while ((1ull << scale) < num_vertices) ++scale;
  for (uint64_t i = 0; i < num_edges; ++i) {
    VertexId src = 0, dst = 0;
    do {
      uint64_t u = 0, v = 0;
      for (uint64_t level = 0; level < scale; ++level) {
        const double r = rng.NextDouble();
        u <<= 1;
        v <<= 1;
        if (r < a) {
          // top-left: neither bit set
        } else if (r < a + b) {
          v |= 1;
        } else if (r < a + b + c) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      src = static_cast<VertexId>(u);
      dst = static_cast<VertexId>(v);
    } while (src >= num_vertices || dst >= num_vertices || src == dst);
    g.edges.push_back({src, dst, EdgeWeight(&rng)});
  }
  return g;
}

EdgeListGraph GenerateChain(uint64_t num_vertices, uint64_t seed) {
  HG_CHECK_GT(num_vertices, 1u);
  Rng rng(seed);
  EdgeListGraph g;
  g.num_vertices = num_vertices;
  g.edges.reserve(num_vertices - 1);
  for (VertexId u = 0; u + 1 < num_vertices; ++u) {
    g.edges.push_back({u, u + 1, EdgeWeight(&rng)});
  }
  return g;
}

EdgeListGraph GenerateStar(uint64_t num_vertices, uint64_t seed) {
  HG_CHECK_GT(num_vertices, 1u);
  Rng rng(seed);
  EdgeListGraph g;
  g.num_vertices = num_vertices;
  g.edges.reserve(2 * (num_vertices - 1));
  for (VertexId v = 1; v < num_vertices; ++v) {
    g.edges.push_back({0, v, EdgeWeight(&rng)});
    g.edges.push_back({v, 0, EdgeWeight(&rng)});
  }
  return g;
}

const std::vector<DatasetSpec>& PaperDatasets() {
  // Scale models of Table 4. Small graphs ~1/200 scale, large ~1/1000.
  // avg_degree and the web/social split match the originals; skew is higher
  // for twi (the paper calls out its "highly skewed power-law degree
  // distribution" as the case where b-pull's fragment costs bite).
  static const std::vector<DatasetSpec> kDatasets = {
      {"livej", 24000, 14.2, 0.70, /*web=*/false, 0.65, 0xA1, 5, 200.0},
      {"wiki", 28500, 22.8, 0.75, /*web=*/true, 0.85, 0xB2, 5, 200.0},
      {"orkut", 15500, 75.5, 0.65, /*web=*/false, 0.65, 0xC3, 5, 200.0},
      // twi: highly skewed, weak id-locality — the case where fragment
      // costs bite b-pull (Sec 6.1).
      {"twi", 41700, 35.3, 1.05, /*web=*/false, 0.25, 0xD4, 30, 1000.0},
      {"fri", 65600, 27.5, 0.70, /*web=*/false, 0.65, 0xE5, 30, 1000.0},
      {"uk", 105900, 35.6, 0.80, /*web=*/true, 0.85, 0xF6, 30, 1000.0},
  };
  return kDatasets;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const auto& d : PaperDatasets()) {
    if (d.name == name) return d;
  }
  return Status::NotFound("unknown dataset: " + name);
}

EdgeListGraph BuildDataset(const DatasetSpec& spec) {
  if (spec.web) {
    return GenerateWebGraph(spec.num_vertices, spec.avg_degree, spec.skew,
                            spec.locality, spec.seed);
  }
  return GeneratePowerLaw(spec.num_vertices, spec.avg_degree, spec.skew,
                          spec.seed, spec.locality);
}

}  // namespace hybridgraph
