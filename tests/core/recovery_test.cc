// Checkpoint / restore and fault-tolerant recovery.
#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/recovery.h"
#include "graph/generator.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph(uint64_t seed = 4) {
  return GeneratePowerLaw(600, 8.0, 0.8, seed);
}

JobConfig Base(EngineMode mode) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 150;  // exercises the spilled-inbox path too
  cfg.max_supersteps = 8;
  return cfg;
}

template <typename P>
std::vector<typename P::Value> FaultFreeRun(P program, JobConfig cfg,
                                            const EdgeListGraph& g) {
  Engine<P> engine(cfg, program);
  EXPECT_TRUE(engine.Load(g).ok());
  EXPECT_TRUE(engine.Run().ok());
  return engine.GatherValues().ValueOrDie();
}

TEST(Checkpoint, MidRunRoundTripResumesIdentically) {
  const auto g = TestGraph();
  const JobConfig cfg = Base(EngineMode::kPush);
  const auto expected = FaultFreeRun(PageRankProgram{}, cfg, g);

  // Run 3 supersteps, checkpoint, resume in a brand-new engine.
  Engine<PageRankProgram> first(cfg, PageRankProgram{});
  ASSERT_TRUE(first.Load(g).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(first.RunSuperstep().ok());
  Buffer image;
  ASSERT_TRUE(first.WriteCheckpoint(&image).ok());

  Engine<PageRankProgram> second(cfg, PageRankProgram{});
  ASSERT_TRUE(second.Load(g).ok());
  ASSERT_TRUE(second.RestoreCheckpoint(image.AsSlice()).ok());
  EXPECT_EQ(second.superstep(), 3);
  ASSERT_TRUE(second.Run().ok());
  const auto got = second.GatherValues().ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

TEST(Checkpoint, CorruptImageRejected) {
  const auto g = TestGraph();
  const JobConfig cfg = Base(EngineMode::kPush);
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.RunSuperstep().ok());
  Buffer image;
  ASSERT_TRUE(engine.WriteCheckpoint(&image).ok());

  Engine<PageRankProgram> fresh(cfg, PageRankProgram{});
  ASSERT_TRUE(fresh.Load(g).ok());
  // Bad magic.
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(fresh.RestoreCheckpoint(Slice(junk)).code(),
            StatusCode::kCorruption);
  // Truncated image.
  EXPECT_FALSE(
      fresh.RestoreCheckpoint(Slice(image.data(), image.size() / 2)).ok());
  // Restore before Load is a precondition failure.
  Engine<PageRankProgram> unloaded(cfg, PageRankProgram{});
  EXPECT_EQ(unloaded.RestoreCheckpoint(image.AsSlice()).code(),
            StatusCode::kFailedPrecondition);
}

class RecoveryModeTest : public ::testing::TestWithParam<EngineMode> {};

TEST_P(RecoveryModeTest, CrashWithCheckpointMatchesFaultFree) {
  const auto g = TestGraph();
  JobConfig cfg = Base(GetParam());
  SsspProgram program;
  program.source = 7;
  cfg.max_supersteps = 60;
  const auto expected = FaultFreeRun(program, cfg, g);

  CheckpointingRunner<SsspProgram> runner(cfg, program, /*checkpoint_every=*/2);
  ASSERT_TRUE(runner.Run(g, /*crash_after=*/{5, 9}).ok());
  EXPECT_EQ(runner.recoveries(), 2);
  EXPECT_GT(runner.checkpoints_written(), 2);
  EXPECT_TRUE(runner.converged());
  const auto got = runner.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_FLOAT_EQ(got[v], expected[v]) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RecoveryModeTest,
                         ::testing::Values(EngineMode::kPush,
                                           EngineMode::kBPull,
                                           EngineMode::kHybrid));

TEST(Recovery, RecomputeFromScratchWhenNoCheckpoints) {
  // The paper's baseline policy: no checkpoints, recovery restarts the job.
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kBPull);
  const auto expected = FaultFreeRun(PageRankProgram{}, cfg, g);

  CheckpointingRunner<PageRankProgram> runner(cfg, PageRankProgram{},
                                              /*checkpoint_every=*/0);
  ASSERT_TRUE(runner.Run(g, /*crash_after=*/{4}).ok());
  EXPECT_EQ(runner.recoveries(), 1);
  EXPECT_EQ(runner.checkpoints_written(), 0);
  // 5 supersteps before the crash were wasted, then the full 8 again.
  EXPECT_EQ(runner.supersteps_executed(), 5 + cfg.max_supersteps);
  const auto got = runner.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

TEST(Recovery, CheckpointingRecomputesFewerSupersteps) {
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kPush);
  CheckpointingRunner<PageRankProgram> scratch(cfg, PageRankProgram{}, 0);
  ASSERT_TRUE(scratch.Run(g, {6}).ok());
  CheckpointingRunner<PageRankProgram> ckpt(cfg, PageRankProgram{}, 2);
  ASSERT_TRUE(ckpt.Run(g, {6}).ok());
  EXPECT_LT(ckpt.supersteps_executed(), scratch.supersteps_executed());
}

}  // namespace
}  // namespace hybridgraph
