#include "graph/vertex_store.h"

#include "util/codec.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

VertexValueStore::VertexValueStore(StorageService* storage,
                                   const RangePartition& partition, NodeId node,
                                   size_t value_size)
    : storage_(storage),
      partition_(&partition),
      node_(node),
      value_size_(value_size),
      node_range_(partition.NodeRange(node)) {}

std::string VertexValueStore::BlockKey(uint32_t global_vb) const {
  return StringFormat("node%u/vblock/%06u", node_, global_vb);
}

uint32_t VertexValueStore::LocalVb(uint32_t global_vb) const {
  return global_vb - partition_->FirstVblockOf(node_);
}

Result<std::unique_ptr<VertexValueStore>> VertexValueStore::Build(
    StorageService* storage, const RangePartition& partition, NodeId node,
    size_t value_size, const std::vector<uint32_t>& out_degrees,
    const std::function<void(VertexId, uint8_t*)>& init) {
  std::unique_ptr<VertexValueStore> store(
      new VertexValueStore(storage, partition, node, value_size));
  const VertexRange range = partition.NodeRange(node);
  store->out_degrees_.resize(range.size());
  for (VertexId v = range.begin; v < range.end; ++v) {
    store->out_degrees_[v - range.begin] = out_degrees[v];
  }

  std::vector<uint8_t> value(value_size);
  for (uint32_t vb = partition.FirstVblockOf(node); vb < partition.LastVblockOf(node);
       ++vb) {
    const VertexRange r = partition.VblockRange(vb);
    Buffer buf;
    Encoder enc(&buf);
    for (VertexId v = r.begin; v < r.end; ++v) {
      init(v, value.data());
      enc.PutFixed32(v);
      enc.PutFixed32(store->out_degrees_[v - range.begin]);
      enc.PutRaw(value.data(), value.size());
    }
    // Initial load is a bulk sequential write.
    HG_RETURN_IF_ERROR(storage->Write(store->BlockKey(vb), buf.AsSlice(),
                                      IoClass::kSeqWrite));
  }
  return store;
}

Status VertexValueStore::ReadBlock(uint32_t global_vb,
                                   std::vector<uint8_t>* values, IoClass cls,
                                   ReadPipeline* pipeline) {
  const std::string key = BlockKey(global_vb);
  const ReadOptions opts{.io_class = cls};
  auto read = pipeline ? pipeline->Fetch(key, opts) : storage_->Read(key, opts);
  if (!read.ok()) return read.status();
  const std::vector<uint8_t>& raw = read->data;
  const VertexRange r = partition_->VblockRange(global_vb);
  const size_t rec = record_size();
  if (raw.size() != static_cast<size_t>(r.size()) * rec) {
    return Status::Corruption("vblock size mismatch");
  }
  values->resize(static_cast<size_t>(r.size()) * value_size_);
  for (uint32_t i = 0; i < r.size(); ++i) {
    std::copy(raw.begin() + static_cast<ptrdiff_t>(i * rec + 8),
              raw.begin() + static_cast<ptrdiff_t>(i * rec + 8 + value_size_),
              values->begin() + static_cast<ptrdiff_t>(i * value_size_));
  }
  return Status::OK();
}

Status VertexValueStore::WriteBlock(uint32_t global_vb,
                                    const std::vector<uint8_t>& values,
                                    IoClass cls) {
  const VertexRange r = partition_->VblockRange(global_vb);
  if (values.size() != static_cast<size_t>(r.size()) * value_size_) {
    return Status::InvalidArgument("value payload size mismatch on write");
  }
  Buffer buf;
  Encoder enc(&buf);
  for (uint32_t i = 0; i < r.size(); ++i) {
    const VertexId v = r.begin + i;
    enc.PutFixed32(v);
    enc.PutFixed32(out_degrees_[v - node_range_.begin]);
    enc.PutRaw(values.data() + static_cast<size_t>(i) * value_size_, value_size_);
  }
  return storage_->Write(BlockKey(global_vb), buf.AsSlice(), cls);
}

void VertexValueStore::PrefetchBlock(uint32_t global_vb, ReadPipeline* pipeline,
                                     IoClass cls) {
  if (pipeline == nullptr) return;
  pipeline->Schedule(BlockKey(global_vb), ReadOptions{.io_class = cls});
}

Status VertexValueStore::ReadValueRandom(VertexId v, std::vector<uint8_t>* value) {
  const uint32_t vb = partition_->VblockOf(v);
  if (partition_->NodeOfVblock(vb) != node_) {
    return Status::InvalidArgument("vertex not local to this node");
  }
  const VertexRange r = partition_->VblockRange(vb);
  const uint64_t offset =
      static_cast<uint64_t>(v - r.begin) * record_size();
  HG_ASSIGN_OR_RETURN(
      ReadResult rec,
      storage_->Read(BlockKey(vb), {.offset = offset,
                                    .length = record_size(),
                                    .io_class = IoClass::kRandRead}));
  value->assign(rec.data.begin() + 8, rec.data.end());
  return Status::OK();
}

uint64_t VertexValueStore::BlockBytes(uint32_t global_vb) const {
  return static_cast<uint64_t>(partition_->VblockRange(global_vb).size()) *
         record_size();
}

uint64_t VertexValueStore::TotalBytes() const {
  return static_cast<uint64_t>(node_range_.size()) * record_size();
}

}  // namespace hybridgraph
