// TCP transport: the same frame protocol carried over real loopback sockets.
//
// Each node owns a listening socket served by its own thread; callers keep
// one persistent connection per (src, dst) pair. The wire protocol is
//
//   request:  [kind u8: 0=post 1=call][FrameHeader][payload]
//   response: post -> [ack u8] ; call -> [len fixed32][payload]
//
// Handler dispatch is serialized by a transport-wide mutex, which both keeps
// the (single-threaded) engine state safe and provides the happens-before
// edges between the driver thread and the server threads.
//
// The in-process transport remains the default (deterministic, no kernel in
// the loop); the TCP transport exists to prove the RPC layer end-to-end over
// real sockets, and the full engine stack runs on it (see
// transport config in JobConfig and the tcp tests).
#pragma once

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace hybridgraph {

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(uint32_t num_nodes);
  ~TcpTransport() override;

  /// Binds one loopback listener per node and starts the server threads.
  Status Start() override;

  Status Post(NodeId src, NodeId dst, RpcMethod method, Slice payload) override;
  Status Call(NodeId src, NodeId dst, RpcMethod method, Slice payload,
              std::vector<uint8_t>* response) override;

  /// Port the given node listens on (0 before Start()).
  uint16_t port(NodeId node) const { return ports_[node]; }

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

 private:
  Status SendFrame(NodeId src, NodeId dst, RpcMethod method, Slice payload,
                   bool is_call, std::vector<uint8_t>* response);
  Status ConnectTo(NodeId src, NodeId dst, int* fd);
  void ServeNode(NodeId node);
  void ServeConnection(NodeId node, int fd);
  void Shutdown();

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::vector<int> listen_fds_;
  std::vector<uint16_t> ports_;
  std::vector<std::thread> server_threads_;
  // conn_fds_[src * num_nodes + dst]: client connection, -1 when unopened.
  std::vector<int> conn_fds_;
  std::mutex dispatch_mutex_;
  std::mutex connect_mutex_;
};

}  // namespace hybridgraph
