file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_mem_limited_ssd.dir/bench_fig09_mem_limited_ssd.cc.o"
  "CMakeFiles/bench_fig09_mem_limited_ssd.dir/bench_fig09_mem_limited_ssd.cc.o.d"
  "bench_fig09_mem_limited_ssd"
  "bench_fig09_mem_limited_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_mem_limited_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
