// PageRank (paper Fig 3): Always-Active-Style, combinable (sum).
#pragma once

#include "core/program.h"

namespace hybridgraph {

/// \brief PageRank vertex program.
///
/// Every vertex updates and responds every superstep; messages carry the
/// sender's rank divided by its out-degree and are combinable by summation —
/// the paper's canonical Always-Active-Style workload.
struct PageRankProgram {
  using Value = double;
  using Message = double;
  static constexpr bool kCombinable = true;
  static constexpr bool kAlwaysActive = true;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);

  double damping = 0.85;

  Value InitValue(VertexId v, const SuperstepContext& ctx) const {
    return 1.0 / static_cast<double>(ctx.num_vertices);
  }
  bool InitActive(VertexId v) const { return true; }

  UpdateResult Update(VertexId v, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0) {
      // Superstep 0 broadcasts the initial rank; nothing to consume yet.
      return {false, true};
    }
    double sum = 0.0;
    for (double m : msgs) sum += m;
    *value = (1.0 - damping) / static_cast<double>(ctx.num_vertices) +
             damping * sum;
    return {true, true};
  }

  Message GenMessage(VertexId src, const Value& value, uint32_t out_degree,
                     const Edge& e, const SuperstepContext&) const {
    return value / static_cast<double>(out_degree);
  }

  static Message Combine(const Message& a, const Message& b) { return a + b; }
};

}  // namespace hybridgraph
