# Empty dependencies file for bench_fig17_blocking.
# This may be replaced when dependencies are built.
