// The HybridGraph BSP engine: push, pushM, b-pull and hybrid execution of a
// vertex Program over a simulated cluster of disk-resident nodes.
//
// Execution model per superstep t (uniform across modes):
//   Phase A (consume)  — every node collects the messages addressed to its
//     vertices: under push consumption they were delivered at t-1 into a
//     double-buffered inbox (memory portion B_i + sorted disk spill); under
//     b-pull consumption the node issues one pull request per local Vblock
//     and the senders run Pull-Respond (Algorithm 2) against their Eblocks.
//   Phase B (update + produce) — every node updates its vertices
//     (update()), records responding flags (setResFlag), and if the
//     *production* mode is push immediately generates and ships messages
//     from the adjacency store (pushRes()); under b-pull production nothing
//     is sent — next superstep's pulls will call pullRes() on demand.
//
// Phase A of all nodes runs before any Phase B, which gives the BSP
// semantics (pull always observes superstep t-1 values) without vertex
// value versioning. Hybrid switching (Sec 5.2) falls out of the mode split:
// consumption mode at t is simply the production mode chosen at t-1, so the
// b-pull -> push switch superstep both pulls and pushes (the paper's
// resource-contention spike at superstep 11 of Fig 14), and the
// push -> b-pull switch superstep consumes pushed messages and produces
// nothing, exactly as in Fig 6.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "core/aggregators.h"
#include "core/job_config.h"
#include "core/program.h"
#include "core/run_metrics.h"
#include "graph/adjacency_store.h"
#include "graph/edge_list.h"
#include "graph/partition.h"
#include "graph/ve_block_store.h"
#include "graph/vertex_store.h"
#include "io/message_spill.h"
#include "io/storage.h"
#include "net/message_codec.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hybridgraph {

template <typename P>
class Engine {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  Engine(JobConfig config, P program)
      : config_(std::move(config)), program_(std::move(program)) {
    StaticCheckProgram<P>();
  }

  /// Partitions the graph, derives Vblock counts (Eq. 5/6), builds the
  /// disk layouts each mode needs, and initializes vertex state.
  Status Load(const EdgeListGraph& graph);

  /// Runs supersteps until convergence or config.max_supersteps.
  Status Run();

  /// Runs exactly one superstep (exposed for tests and traces).
  Status RunSuperstep();

  const JobStats& stats() const { return stats_; }
  const RangePartition& partition() const { return partition_; }
  const JobConfig& config() const { return config_; }
  bool converged() const { return converged_; }
  int superstep() const { return superstep_; }
  /// Production mode of the upcoming superstep (hybrid switches this).
  EngineMode current_mode() const { return mode_; }

  /// Collects all vertex values (global, indexed by vertex id).
  Result<std::vector<Value>> GatherValues();

  /// Theorem 2 quantities (valid after Load()).
  uint64_t total_fragments() const { return total_fragments_; }
  uint64_t b_lower_bound() const { return stats_.load.b_lower_bound; }

  /// Serializes the full runtime state (superstep, mode, vertex values,
  /// flags, undelivered messages) so a failed job can resume from the last
  /// barrier instead of recomputing from scratch (the lightweight
  /// fault-tolerance the paper leaves as future work, Appendix A).
  Status WriteCheckpoint(Buffer* out);

  /// Restores a WriteCheckpoint() image into a freshly Load()ed engine with
  /// an identical config and graph. Per-superstep stats restart empty.
  Status RestoreCheckpoint(Slice data);

 private:
  static constexpr size_t kMsgSize = P::kMessageSize;
  /// Wire/spill record: destination id + message payload.
  static constexpr size_t kMsgRecordSize = 4 + kMsgSize;
  /// Vertex value record on disk (id + out-degree + payload).
  static constexpr size_t kValueRecordSize = 8 + P::kValueSize;

  struct Inbox {
    std::vector<std::pair<VertexId, Message>> mem;  ///< up to B_i messages
    std::unique_ptr<MessageSpill> spill;
    uint64_t total = 0;
    uint64_t spilled = 0;
  };

  struct Node {
    NodeId id = 0;
    std::unique_ptr<StorageService> storage;
    std::unique_ptr<VertexValueStore> vstore;
    std::unique_ptr<AdjacencyStore> adj;
    std::unique_ptr<VeBlockStore> ve;

    VertexRange range;
    // Runtime flags, indexed by (v - range.begin).
    std::vector<uint8_t> active;
    std::vector<uint8_t> responding;
    std::vector<uint8_t> responding_next;
    // X_j.res per local Vblock (indexed by global vb - first_vb).
    std::vector<uint8_t> vblock_res;
    std::vector<uint8_t> vblock_res_next;

    Inbox inbox_cur;
    Inbox inbox_next;

    // pushM online accumulators for cached ("memory-resident") vertices.
    std::vector<uint8_t> moc_cached;
    std::vector<Message> moc_acc;
    std::vector<uint8_t> moc_has;

    // Per-destination-node send staging (push production).
    std::vector<std::vector<std::pair<VertexId, Message>>> staging;
    // Sender-side combining index (pushM+com, Appendix E): per destination
    // node, destination vertex -> slot in `staging`. Only messages that are
    // still in the unflushed buffer can combine — flushing clears the index,
    // which is exactly why small sending thresholds limit the gain.
    std::vector<std::unordered_map<VertexId, size_t>> combine_index;

    // Messages collected for consumption this superstep.
    std::vector<std::vector<Message>> pending;
    std::vector<uint8_t> pending_has;
    uint64_t pending_count = 0;

    // Incoming kPushMessages payloads staged by the transport handler
    // (indexed by sender), applied to the inbox at the post-Phase-B drain in
    // sender order. Staging is what makes parallel Phase B deterministic:
    // the drain order equals the arrival order of the old sequential
    // execution (all of node 0's batches, then node 1's, ...), so the
    // memory/spill split and every combine order are thread-count invariant.
    std::vector<std::vector<std::vector<uint8_t>>> push_staged;

    // Pull-Respond accounting staged per requester. The handler runs in the
    // requester's thread while this node may be busy with its own Phase A,
    // so it must not touch the shared per-superstep counters directly; the
    // staged values are merged in requester order after the Phase A barrier,
    // which reproduces the sequential accumulation order exactly (floating-
    // point sums included).
    struct PullServe {
      IoBreakdown io;
      double cpu_seconds = 0;
      uint64_t msgs_produced = 0;
      uint64_t msgs_combined = 0;
      uint64_t msgs_wire = 0;
      uint64_t flushes = 0;
      uint64_t bs_highwater = 0;
    };
    std::vector<PullServe> pull_serve;

    // Per-superstep counters.
    double aggregate_partial = 0;
    uint64_t updated_vertices = 0;
    uint64_t msgs_produced = 0;
    uint64_t msgs_wire = 0;
    uint64_t msgs_combined = 0;
    uint64_t flushes = 0;
    double cpu_seconds = 0;
    uint64_t mem_highwater = 0;
    // Streaming spill-merge observability (CollectPush drain).
    uint64_t spill_buffer_peak = 0;    ///< run-buffer bytes held by the merge
    uint64_t spill_resident_peak = 0;  ///< peak resident spill entries
    uint64_t spill_combined = 0;       ///< combiner reductions (spill + merge)
    // I/O classification counters (bytes).
    IoBreakdown io;

    DiskMeter disk_snapshot;
    NetMeter net_snapshot;

    uint32_t LocalIdx(VertexId v) const { return v - range.begin; }
  };

  // ------------------------------------------------------------- load phase
  Status BuildNodes(const EdgeListGraph& graph);
  uint32_t DeriveVblocks(NodeId node, uint64_t node_in_degree,
                         uint64_t node_vertices) const;

  // --------------------------------------------------------- superstep core
  Status PhaseAConsume(Node& node);
  Status PhaseBUpdateProduce(Node& node);
  Status CollectPush(Node& node);
  Status CollectBPull(Node& node);
  Status HandlePushBatch(Node& node, Slice payload);
  Status HandlePullRequest(Node& node, NodeId requester, Slice payload,
                           Buffer* response);
  /// Applies the staged incoming push batches in sender order (run for every
  /// node after the Phase B barrier, before accounting reads the inbox).
  Status DrainStagedPushes(Node& node);
  /// Folds the staged Pull-Respond counters into the node's per-superstep
  /// counters in requester order (run after the Phase A barrier).
  void MergePullServe(Node& node);
  Status ProducePush(Node& node, uint32_t vb,
                     const std::vector<uint8_t>& respond_in_vb,
                     const std::vector<uint8_t>& block_values);
  Status FlushStaging(Node& node, NodeId dst, bool force);
  void AddPending(Node& node, VertexId dst, const Message& m);
  /// MessageSpill::CombineFn shim over P::Combine for raw encoded payloads
  /// (spill_combining; only instantiated for combinable programs).
  static void CombineRawMessages(uint8_t* acc, const uint8_t* other);

  // ------------------------------------------------------------- accounting
  void BeginSuperstepAccounting();
  void EndSuperstepAccounting(EngineMode produce_mode, bool switched);
  uint64_t ModeledMemoryBytes(const Node& node, EngineMode mode) const;

  // ----------------------------------------------------------------- hybrid
  /// Component estimates for the mode that did NOT run this superstep,
  /// derived from store metadata and responding flags (Sec 5.3).
  struct PushCostEstimate {
    double vt_bytes = 0;
    double adj_bytes = 0;
    double mdisk_bytes = 0;
    double Total() const { return vt_bytes + adj_bytes + 2.0 * mdisk_bytes; }
  };
  struct BPullCostEstimate {
    double vt_bytes = 0;
    double e_bytes = 0;
    double f_bytes = 0;
    double vrr_bytes = 0;
    double Total() const { return vt_bytes + e_bytes + f_bytes + vrr_bytes; }
  };
  void EvaluateSwitch(SuperstepMetrics* m);
  PushCostEstimate EstimateCioPush(uint64_t msgs) const;
  BPullCostEstimate EstimateCioBPull() const;

  JobConfig config_;
  P program_;
  RangePartition partition_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Node> nodes_;
  SuperstepContext ctx_;

  int superstep_ = 0;
  bool converged_ = false;
  bool loaded_ = false;

  // Hybrid state: production mode for the upcoming superstep and the one
  // used by the previous superstep (= consumption mode of the upcoming one).
  EngineMode mode_ = EngineMode::kPush;       // resolved push/b-pull
  EngineMode prev_produce_ = EngineMode::kPush;
  int last_switch_superstep_ = -1000;
  double last_rco_ = 0.5;  ///< combining ratio observed in the last b-pull step
  uint64_t prev_responding_ = 0;  ///< responding count, previous superstep
  /// Aggregate visible to the previous superstep (pullRes() at superstep t
  /// logically produces superstep t-1's messages and must see t-1's view).
  double pull_gen_aggregate_ = 0;

  /// fault_counters() at the start of the current superstep; the superstep's
  /// SuperstepMetrics records the delta.
  TransportFaultCounters fault_snapshot_;

  uint64_t total_edges_ = 0;
  uint64_t total_fragments_ = 0;
  uint64_t total_in_degree_ = 0;
  uint64_t initial_messages_ = 0;   ///< sum of out-degrees of InitActive vertices
  double initial_active_frac_ = 0;  ///< |InitActive| / |V|

  JobStats stats_;
};

// ============================================================ implementation

template <typename P>
uint32_t Engine<P>::DeriveVblocks(NodeId node, uint64_t node_in_degree,
                                  uint64_t node_vertices) const {
  if (config_.vblocks_per_node > 0) return config_.vblocks_per_node;
  if (config_.msg_buffer_per_node == UINT64_MAX || node_vertices == 0) {
    return 1;  // sufficient memory: as few Vblocks as possible (Sec 4.3)
  }
  const double bi = static_cast<double>(config_.msg_buffer_per_node);
  double v;
  if (P::kCombinable) {
    // Eq. (5): V_i = (2 n_i + n_i T) / B_i.
    v = (2.0 * node_vertices +
         static_cast<double>(node_vertices) * config_.num_nodes) /
        bi;
  } else {
    // Eq. (6): V_i = sum of in-degrees / B_i.
    v = static_cast<double>(node_in_degree) / bi;
  }
  uint32_t vi = static_cast<uint32_t>(std::ceil(v));
  vi = std::max<uint32_t>(1, vi);
  vi = static_cast<uint32_t>(
      std::min<uint64_t>(vi, std::max<uint64_t>(1, node_vertices)));
  return vi;
}

template <typename P>
Status Engine<P>::BuildNodes(const EdgeListGraph& graph) {
  const uint32_t T = config_.num_nodes;

  // Node ranges are fixed by an even split; Vblock counts then follow from
  // Eq. (5)/(6), which need per-node degree totals.
  HG_ASSIGN_OR_RETURN(auto coarse,
                      RangePartition::CreateUniform(graph.num_vertices, T, 1));
  const auto in_degrees = graph.InDegrees();
  const auto out_degrees = graph.OutDegrees();
  total_in_degree_ = graph.edges.size();

  std::vector<uint64_t> node_in_degree(T, 0);
  for (VertexId v = 0; v < graph.num_vertices; ++v) {
    node_in_degree[coarse.NodeOf(v)] += in_degrees[v];
  }
  std::vector<uint32_t> vblocks(T);
  for (uint32_t i = 0; i < T; ++i) {
    vblocks[i] =
        DeriveVblocks(i, node_in_degree[i], coarse.NodeRange(i).size());
  }
  HG_ASSIGN_OR_RETURN(partition_,
                      RangePartition::Create(graph.num_vertices, T, vblocks));

  // Bucket edges by source node.
  std::vector<std::vector<RawEdge>> local_edges(T);
  for (const auto& e : graph.edges) {
    local_edges[partition_.NodeOf(e.src)].push_back(e);
  }

  if (config_.transport == TransportKind::kTcp) {
    TcpTransport::Options topt;
    topt.call_timeout_ms = config_.tcp_call_timeout_ms;
    topt.max_retries = config_.tcp_max_retries;
    topt.backoff_base_us = config_.tcp_backoff_base_us;
    topt.backoff_max_us = config_.tcp_backoff_max_us;
    topt.max_frame_bytes = config_.tcp_max_frame_bytes;
    topt.seed = config_.seed;
    transport_ = std::make_unique<TcpTransport>(T, topt);
  } else {
    transport_ = std::make_unique<InProcTransport>(T);
  }
  nodes_.resize(T);
  HG_RETURN_IF_ERROR(transport_->Start());

  if (config_.metered_loading) {
    // Load-phase shuffle: reader node (DFS split by edge position) routes
    // each edge to the node owning its source vertex. Sinks just absorb the
    // batches — local_edges below is the materialized result.
    for (uint32_t i = 0; i < T; ++i) {
      transport_->RegisterHandler(i, RpcMethod::kLoadShuffle,
                                  [](NodeId, Slice, Buffer*) {
                                    return Status::OK();
                                  });
    }
    std::vector<NetMeter> before(T);
    for (uint32_t i = 0; i < T; ++i) before[i] = *transport_->meter(i);
    std::vector<std::vector<Buffer>> batches(T);
    for (auto& row : batches) row.resize(T);
    uint64_t edge_idx = 0;
    for (const auto& e : graph.edges) {
      const NodeId reader = static_cast<NodeId>(edge_idx++ % T);
      const NodeId owner = partition_.NodeOf(e.src);
      Buffer& buf = batches[reader][owner];
      Encoder enc(&buf);
      enc.PutFixed32(e.src);
      enc.PutFixed32(e.dst);
      enc.PutFloat(e.weight);
      if (buf.size() >= config_.sending_threshold_bytes) {
        HG_RETURN_IF_ERROR(transport_->Post(reader, owner,
                                            RpcMethod::kLoadShuffle,
                                            buf.AsSlice()));
        buf.Clear();
      }
    }
    for (uint32_t i = 0; i < T; ++i) {
      for (uint32_t j = 0; j < T; ++j) {
        if (!batches[i][j].empty()) {
          HG_RETURN_IF_ERROR(transport_->Post(i, j, RpcMethod::kLoadShuffle,
                                              batches[i][j].AsSlice()));
        }
      }
    }
    double max_seconds = 0;
    for (uint32_t i = 0; i < T; ++i) {
      const NetMeter d = transport_->meter(i)->DeltaSince(before[i]);
      stats_.load.shuffle_net_bytes += d.bytes_sent;
      max_seconds = std::max(
          max_seconds, config_.net.SecondsFor(std::max(d.bytes_sent,
                                                       d.bytes_received)));
    }
    stats_.load.shuffle_seconds = max_seconds;
  }

  const bool need_adj = config_.mode != EngineMode::kBPull;
  const bool need_ve = config_.mode == EngineMode::kBPull ||
                       config_.mode == EngineMode::kHybrid;

  for (uint32_t i = 0; i < T; ++i) {
    Node& node = nodes_[i];
    node.id = i;
    node.range = partition_.NodeRange(i);
    if (config_.use_file_storage) {
      HG_ASSIGN_OR_RETURN(node.storage,
                          FileStorage::Open(config_.storage_dir + "/node" +
                                            std::to_string(i)));
    } else {
      node.storage = std::make_unique<MemStorage>();
    }
    node.storage->EnablePageCache(config_.page_cache_bytes_per_node);

    HG_ASSIGN_OR_RETURN(
        node.vstore,
        VertexValueStore::Build(
            node.storage.get(), partition_, i, P::kValueSize, out_degrees,
            [&](VertexId v, uint8_t* out) {
              const Value val = program_.InitValue(v, ctx_);
              PodCodec<Value>::Encode(val, out);
            }));
    if (need_adj) {
      HG_ASSIGN_OR_RETURN(node.adj,
                          AdjacencyStore::Build(node.storage.get(), partition_,
                                                i, local_edges[i]));
    }
    if (need_ve) {
      HG_ASSIGN_OR_RETURN(
          node.ve, VeBlockStore::Build(node.storage.get(), partition_, i,
                                       local_edges[i], in_degrees));
      total_fragments_ += node.ve->TotalFragments();
    }

    const uint32_t n = node.range.size();
    node.active.assign(n, 0);
    node.responding.assign(n, 0);
    node.responding_next.assign(n, 0);
    node.vblock_res.assign(partition_.NumVblocksOf(i), 0);
    node.vblock_res_next.assign(partition_.NumVblocksOf(i), 0);
    node.pending.assign(n, {});
    node.pending_has.assign(n, 0);
    node.staging.resize(T);
    node.combine_index.resize(T);
    node.push_staged.resize(T);
    node.pull_serve.resize(T);
    for (VertexId v = node.range.begin; v < node.range.end; ++v) {
      const bool active = program_.InitActive(v);
      node.active[v - node.range.begin] = active ? 1 : 0;
      if (active) {
        initial_messages_ += out_degrees[v];
        initial_active_frac_ += 1.0;
      }
    }
    node.inbox_cur.spill = std::make_unique<MessageSpill>(
        node.storage.get(), StringFormat("node%u/spill/a", i), kMsgSize);
    node.inbox_next.spill = std::make_unique<MessageSpill>(
        node.storage.get(), StringFormat("node%u/spill/b", i), kMsgSize);
    if constexpr (P::kCombinable) {
      if (config_.spill_combining) {
        node.inbox_cur.spill->set_combiner(&Engine<P>::CombineRawMessages);
        node.inbox_next.spill->set_combiner(&Engine<P>::CombineRawMessages);
      }
    }

    // pushM vertex cache: the B_i highest in-degree local vertices stay
    // memory-resident (MOCgraph's hot-aware placement).
    if (config_.mode == EngineMode::kPushM) {
      node.moc_cached.assign(n, 0);
      if constexpr (P::kCombinable) {
        node.moc_acc.assign(n, Message{});
      }
      node.moc_has.assign(n, 0);
      const uint64_t cap = config_.msg_buffer_per_node;
      if (cap >= n) {
        std::fill(node.moc_cached.begin(), node.moc_cached.end(), 1);
      } else {
        std::vector<uint32_t> idx(n);
        std::iota(idx.begin(), idx.end(), 0);
        std::nth_element(idx.begin(), idx.begin() + cap, idx.end(),
                         [&](uint32_t a, uint32_t b) {
                           return in_degrees[node.range.begin + a] >
                                  in_degrees[node.range.begin + b];
                         });
        for (uint64_t k = 0; k < cap; ++k) node.moc_cached[idx[k]] = 1;
      }
    }

    // RPC wiring. Handlers run in the SENDER's thread (or a transport server
    // thread) under the destination's dispatch lock, possibly while this
    // node's own phase task is running — so they only stage raw bytes or
    // per-requester counters; the engine applies them at the next barrier.
    transport_->RegisterHandler(
        i, RpcMethod::kPushMessages,
        [&node](NodeId src, Slice payload, Buffer*) {
          node.push_staged[src].emplace_back(payload.data(),
                                             payload.data() + payload.size());
          return Status::OK();
        });
    transport_->RegisterHandler(
        i, RpcMethod::kPullRequest,
        [this, &node](NodeId src, Slice payload, Buffer* response) {
          return HandlePullRequest(node, src, payload, response);
        });
    transport_->RegisterHandler(
        i, RpcMethod::kControl,
        [](NodeId, Slice, Buffer*) { return Status::OK(); });
  }

  // Load metrics + Theorem 2 bound.
  uint64_t bytes_written = 0, adj_bytes = 0, ve_bytes = 0, v_bytes = 0;
  for (auto& node : nodes_) {
    bytes_written += node.storage->meter()->WriteBytes();
    if (node.adj) adj_bytes += node.adj->TotalBytes();
    if (node.ve) ve_bytes += node.ve->TotalBytes();
    v_bytes += node.vstore->TotalBytes();
  }
  stats_.load.bytes_written = bytes_written;
  stats_.load.adj_bytes = adj_bytes;
  stats_.load.veblock_bytes = ve_bytes;
  stats_.load.vblock_bytes = v_bytes;
  stats_.load.total_fragments = total_fragments_;
  const uint64_t half_e = total_edges_ / 2;
  stats_.load.b_lower_bound =
      half_e > total_fragments_ ? half_e - total_fragments_ : 0;
  // Modeled load time: sequential write of everything built.
  stats_.load.load_seconds =
      static_cast<double>(bytes_written) /
          (config_.disk.seq_write_mbps * 1024.0 * 1024.0) / config_.num_nodes +
      stats_.load.shuffle_seconds;
  initial_active_frac_ /= static_cast<double>(graph.num_vertices);
  return Status::OK();
}

template <typename P>
Status Engine<P>::Load(const EdgeListGraph& graph) {
  HG_RETURN_IF_ERROR(graph.Validate());
  JobConfig::JobFacts facts;
  facts.num_vertices = graph.num_vertices;
  facts.combinable_messages = P::kCombinable;
  facts.vpull_engine = false;
  HG_RETURN_IF_ERROR(config_.Validate(facts));
  if (!config_.failpoints.empty()) {
    HG_RETURN_IF_ERROR(
        FailPointRegistry::Instance().ArmFromString(config_.failpoints));
  }
  pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  total_edges_ = graph.num_edges();
  // Fold the cluster CPU scale into the per-unit costs once.
  config_.cpu.per_vertex_update_s *= config_.cpu.scale;
  config_.cpu.per_message_s *= config_.cpu.scale;
  config_.cpu.per_edge_s *= config_.cpu.scale;
  config_.cpu.per_spilled_message_s *= config_.cpu.scale;
  config_.cpu.per_combine_s *= config_.cpu.scale;
  config_.cpu.scale = 1.0;
  ctx_.num_vertices = graph.num_vertices;
  ctx_.superstep = 0;
  HG_RETURN_IF_ERROR(BuildNodes(graph));

  // Initial mode (Algorithm 3 line 2, Theorem 2): b-pull iff B <= |E|/2 - f.
  switch (config_.mode) {
    case EngineMode::kPush:
    case EngineMode::kPushM:
      mode_ = config_.mode;
      break;
    case EngineMode::kBPull:
      mode_ = EngineMode::kBPull;
      break;
    case EngineMode::kHybrid: {
      if (config_.force_initial_mode) {
        mode_ = config_.initial_mode;
      } else if (config_.memory_resident) {
        // Sufficient memory: communication dominates; b-pull combines
        // (Sec 6.1: "hybrid thereby runs b-pull" in that scenario).
        mode_ = EngineMode::kBPull;
      } else if (config_.qt_use_table3_throughputs) {
        // Theorem 2's literal sufficient condition: b-pull iff B <= |E|/2-f.
        const uint64_t b_total =
            config_.msg_buffer_per_node == UINT64_MAX
                ? UINT64_MAX
                : config_.msg_buffer_per_node * config_.num_nodes;
        mode_ = (b_total != UINT64_MAX && b_total <= stats_.load.b_lower_bound)
                    ? EngineMode::kBPull
                    : EngineMode::kPush;
      } else {
        // Same decision as Theorem 2 ("|E| and f are available after
        // building VE-BLOCK ... we can decide before starting"), but
        // evaluated with the runtime model's effective costs and the job's
        // ACTUAL initial message volume (sum of out-degrees of the
        // initially-active vertices). For Always-Active jobs this equals
        // |E| — the theorem's premise; for Traversal-Style jobs the tiny
        // starting frontier correctly favours push.
        const uint64_t b_total =
            config_.msg_buffer_per_node == UINT64_MAX
                ? UINT64_MAX
                : config_.msg_buffer_per_node * config_.num_nodes;
        const double mdisk_bytes =
            (b_total == UINT64_MAX || initial_messages_ <= b_total)
                ? 0.0
                : static_cast<double>(initial_messages_ - b_total) *
                      kMsgRecordSize;
        const double mb = 1024.0 * 1024.0;
        uint64_t adj_bytes = 0, e_bytes = 0, f_bytes = 0;
        for (const auto& node : nodes_) {
          if (node.adj) adj_bytes += node.adj->TotalBytes();
          if (node.ve) {
            e_bytes += node.ve->TotalEdgeBytes();
            f_bytes += node.ve->TotalAuxBytes();
          }
        }
        const double frac = initial_active_frac_;
        const double fragments =
            static_cast<double>(total_fragments_) * frac;
        const double vrr_bytes = fragments * (8 + P::kValueSize);
        const double q0 =
            mdisk_bytes / (config_.disk.rand_write_mbps * mb) +
            (mdisk_bytes / kMsgRecordSize) *
                config_.cpu.per_spilled_message_s * config_.cpu.scale -
            fragments * config_.disk.per_random_op_s -
            vrr_bytes / (kRamMbps * mb) +
            (static_cast<double>(adj_bytes) * frac + mdisk_bytes -
             (e_bytes + f_bytes) * frac) /
                (kRamMbps * mb);
        mode_ = q0 >= 0 ? EngineMode::kBPull : EngineMode::kPush;
      }
      break;
    }
    default:
      return Status::InvalidArgument("unsupported mode");
  }
  prev_produce_ = mode_;
  loaded_ = true;
  return Status::OK();
}

// -------------------------------------------------------------- message flow

template <typename P>
void Engine<P>::CombineRawMessages(uint8_t* acc, const uint8_t* other) {
  if constexpr (P::kCombinable) {
    const Message a = PodCodec<Message>::Decode(acc);
    const Message b = PodCodec<Message>::Decode(other);
    PodCodec<Message>::Encode(P::Combine(a, b), acc);
  } else {
    (void)acc;
    (void)other;
  }
}

template <typename P>
void Engine<P>::AddPending(Node& node, VertexId dst, const Message& m) {
  const uint32_t li = node.LocalIdx(dst);
  if constexpr (P::kCombinable) {
    if (node.pending_has[li]) {
      node.pending[li][0] = P::Combine(node.pending[li][0], m);
    } else {
      node.pending[li].assign(1, m);
      node.pending_has[li] = 1;
    }
  } else {
    node.pending[li].push_back(m);
    node.pending_has[li] = 1;
  }
  ++node.pending_count;
}

template <typename P>
Status Engine<P>::HandlePushBatch(Node& node, Slice payload) {
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> msgs;
  HG_RETURN_IF_ERROR(FlatBatchCodec::Decode(payload, kMsgSize, &msgs));
  const bool unlimited =
      config_.msg_buffer_per_node == UINT64_MAX || config_.memory_resident;

  std::vector<SpillEntry> overflow;
  for (auto& [dst, bytes] : msgs) {
    const Message m = PodCodec<Message>::Decode(bytes.data());
    const uint32_t li = node.LocalIdx(dst);
    ++node.inbox_next.total;
    if (config_.mode == EngineMode::kPushM) {
      // MOCgraph online computing: messages for memory-resident vertices are
      // folded into the accumulator immediately and never stored.
      if (node.moc_cached[li]) {
        if constexpr (P::kCombinable) {
          node.moc_acc[li] =
              node.moc_has[li] ? P::Combine(node.moc_acc[li], m) : m;
        }
        node.moc_has[li] = 1;
        continue;
      }
      overflow.push_back(SpillEntry{dst, std::move(bytes)});
      ++node.inbox_next.spilled;
      continue;
    }
    if (unlimited || node.inbox_next.mem.size() < config_.msg_buffer_per_node) {
      node.inbox_next.mem.emplace_back(dst, m);
    } else {
      overflow.push_back(SpillEntry{dst, std::move(bytes)});
      ++node.inbox_next.spilled;
    }
  }
  if (!overflow.empty()) {
    HG_RETURN_IF_ERROR(node.inbox_next.spill->SpillRun(std::move(overflow)));
  }
  return Status::OK();
}

template <typename P>
Status Engine<P>::DrainStagedPushes(Node& node) {
  // Apply the batches stashed by the kPushMessages handler, in sender order.
  // Sequential execution delivered every batch from node 0 before any batch
  // from node 1 (each sender ran its whole Phase B before the next), so this
  // drain order reproduces the sequential inbox/moc/spill state exactly at
  // any thread count.
  for (uint32_t src = 0; src < config_.num_nodes; ++src) {
    for (const auto& payload : node.push_staged[src]) {
      HG_RETURN_IF_ERROR(
          HandlePushBatch(node, Slice(payload.data(), payload.size())));
    }
    node.push_staged[src].clear();
  }
  return Status::OK();
}

template <typename P>
void Engine<P>::MergePullServe(Node& node) {
  // Fold the per-requester Pull-Respond accounting into the node's counters
  // in requester order — the order the sequential engine accumulated them —
  // so float sums (cpu_seconds) are bit-identical at any thread count.
  for (uint32_t src = 0; src < config_.num_nodes; ++src) {
    typename Node::PullServe& serve = node.pull_serve[src];
    node.io.eblock_edge_bytes += serve.io.eblock_edge_bytes;
    node.io.fragment_aux_bytes += serve.io.fragment_aux_bytes;
    node.io.vrr_bytes += serve.io.vrr_bytes;
    node.cpu_seconds += serve.cpu_seconds;
    node.msgs_produced += serve.msgs_produced;
    node.msgs_combined += serve.msgs_combined;
    node.msgs_wire += serve.msgs_wire;
    node.flushes += serve.flushes;
    node.mem_highwater = std::max(node.mem_highwater, serve.bs_highwater);
    serve = typename Node::PullServe{};
  }
}

template <typename P>
Status Engine<P>::FlushStaging(Node& node, NodeId dst, bool force) {
  auto& stage = node.staging[dst];
  const uint64_t bytes = stage.size() * kMsgRecordSize;
  if (stage.empty()) return Status::OK();
  if (!force && bytes < config_.sending_threshold_bytes) return Status::OK();

  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> wire;
  wire.reserve(stage.size());
  std::vector<uint8_t> tmp(kMsgSize);
  for (const auto& [v, m] : stage) {
    PodCodec<Message>::Encode(m, tmp.data());
    wire.emplace_back(v, tmp);
  }
  Buffer payload;
  FlatBatchCodec::Encode(wire, kMsgSize, &payload);
  node.msgs_wire += stage.size();
  stage.clear();
  node.combine_index[dst].clear();
  ++node.flushes;
  return transport_->Post(node.id, dst, RpcMethod::kPushMessages,
                          payload.AsSlice());
}

template <typename P>
Status Engine<P>::CollectPush(Node& node) {
  // Merge the in-memory inbox with the spilled runs, grouped per vertex.
  Inbox& inbox = node.inbox_cur;
  for (const auto& [dst, m] : inbox.mem) {
    AddPending(node, dst, m);
  }
  if (inbox.spill->num_runs() > 0) {
    // Streaming k-way merge: never materializes the spilled volume. The
    // drain's working set is the pending map plus num_runs ×
    // spill_merge_buffer_bytes of run buffers.
    HG_ASSIGN_OR_RETURN(auto it, inbox.spill->NewMergeIterator(
                                     config_.spill_merge_buffer_bytes));
    while (it->Valid()) {
      const SpillEntry& e = it->entry();
      AddPending(node, e.dst, PodCodec<Message>::Decode(e.payload.data()));
      HG_RETURN_IF_ERROR(it->Next());
    }
    node.io.msg_spill_read += it->entries_read() * kMsgRecordSize;
    node.cpu_seconds += config_.cpu.per_spilled_message_s *
                        static_cast<double>(it->entries_read());
    node.spill_buffer_peak =
        std::max(node.spill_buffer_peak, it->buffer_bytes());
    node.spill_resident_peak =
        std::max(node.spill_resident_peak, it->peak_resident_entries());
    node.spill_combined +=
        inbox.spill->combined_at_spill() + it->merge_combined();
    node.mem_highwater = std::max(node.mem_highwater, it->buffer_bytes());
    HG_RETURN_IF_ERROR(inbox.spill->Clear());
  }
  // pushM: online accumulators are this superstep's messages for cached
  // vertices.
  if (config_.mode == EngineMode::kPushM) {
    for (uint32_t li = 0; li < node.moc_has.size(); ++li) {
      if (node.moc_has[li]) {
        if constexpr (P::kCombinable) {
          AddPending(node, node.range.begin + li, node.moc_acc[li]);
        }
        node.moc_has[li] = 0;
      }
    }
  }
  inbox.mem.clear();
  inbox.total = 0;
  inbox.spilled = 0;
  return Status::OK();
}

template <typename P>
Status Engine<P>::HandlePullRequest(Node& node, NodeId requester, Slice payload,
                                    Buffer* response) {
  // Algorithm 2 (Pull-Respond) for Vblock b_i requested by `requester`.
  // Runs in the requester's thread; all accounting goes to the per-requester
  // staging slot (merged after the Phase A barrier) so concurrent pulls to
  // this node never touch its shared counters.
  typename Node::PullServe& serve = node.pull_serve[requester];
  Decoder dec(payload);
  uint32_t target_vb;
  HG_RETURN_IF_ERROR(dec.GetFixed32(&target_vb));

  // pullRes() generates the messages that push's pushRes() would have sent
  // at the previous superstep, so it runs under that superstep's context
  // (same GenMessage inputs either way — programs stay mode-agnostic).
  SuperstepContext gen_ctx = ctx_;
  gen_ctx.superstep = ctx_.superstep - 1;
  gen_ctx.prev_aggregate = pull_gen_aggregate_;

  // Sending buffer BS, grouped per destination vertex.
  std::vector<GroupedBatchCodec::Group> groups;
  std::vector<int64_t> group_of;  // dst (local to requester block) -> index
  const VertexRange dst_range = partition_.VblockRange(target_vb);
  group_of.assign(dst_range.size(), -1);

  std::vector<uint8_t> value_bytes;
  std::vector<uint8_t> msg_bytes(kMsgSize);
  uint64_t produced = 0;
  uint64_t combined_away = 0;

  const uint32_t first_vb = partition_.FirstVblockOf(node.id);
  const uint32_t last_vb = partition_.LastVblockOf(node.id);
  for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
    // Step 1-2: X_j.res and the bitmap gate the Eblock scan.
    if (!node.vblock_res[vb - first_vb]) continue;
    if (!node.ve->HasEdges(vb, target_vb)) continue;

    VeBlockStore::ScanResult scan;
    HG_RETURN_IF_ERROR(node.ve->ScanEblock(vb, target_vb, &scan));
    serve.io.eblock_edge_bytes += scan.edge_bytes;
    serve.io.fragment_aux_bytes += scan.aux_bytes;
    // Decoding scans the whole Eblock, useless edges included (Appendix C:
    // small V means big Eblocks whose extra edges waste bandwidth/CPU).
    serve.cpu_seconds += config_.cpu.per_edge_s *
                         static_cast<double>(node.ve->Index(vb, target_vb).num_edges);

    for (const auto& frag : scan.fragments) {
      if (!node.responding[node.LocalIdx(frag.src)]) continue;
      // Random read of the source vertex triple (the IO(V_rr) cost).
      HG_RETURN_IF_ERROR(node.vstore->ReadValueRandom(frag.src, &value_bytes));
      serve.io.vrr_bytes += node.vstore->record_size();
      const Value value = PodCodec<Value>::Decode(value_bytes.data());
      const uint32_t out_degree = node.vstore->OutDegree(frag.src);

      for (const auto& e : frag.edges) {
        const Message m =
            program_.GenMessage(frag.src, value, out_degree, e, gen_ctx);
        ++produced;
        serve.cpu_seconds += config_.cpu.per_message_s;
        int64_t& gi = group_of[e.dst - dst_range.begin];
        if (gi < 0) {
          gi = static_cast<int64_t>(groups.size());
          groups.push_back({e.dst, {}});
        }
        auto& payloads = groups[static_cast<size_t>(gi)].payloads;
        const bool combine = P::kCombinable && config_.bpull_combining;
        if (combine && !payloads.empty()) {
          // Combine into the single slot.
          const Message prev = PodCodec<Message>::Decode(payloads[0].data());
          PodCodec<Message>::Encode(P::Combine(prev, m), payloads[0].data());
          ++combined_away;
        } else {
          PodCodec<Message>::Encode(m, msg_bytes.data());
          payloads.push_back(msg_bytes);
          if (!combine && payloads.size() > 1) {
            ++combined_away;  // concatenation: shares the dst id on the wire
          }
        }
      }
    }
  }

  serve.msgs_produced += produced;
  serve.msgs_combined += combined_away;
  serve.msgs_wire += produced - combined_away;
  // BS memory accounting: grouped batch bytes staged before transfer.
  const uint64_t bs_bytes = GroupedBatchCodec::EncodedSize(groups, kMsgSize);
  serve.bs_highwater = std::max(serve.bs_highwater, bs_bytes);
  // Flow control: the batch ships in threshold-sized packages, one in flight.
  serve.flushes += bs_bytes == 0
                       ? 0
                       : (bs_bytes + config_.sending_threshold_bytes - 1) /
                             std::max<uint64_t>(1, config_.sending_threshold_bytes);
  GroupedBatchCodec::Encode(groups, kMsgSize, response);
  return Status::OK();
}

template <typename P>
Status Engine<P>::CollectBPull(Node& node) {
  // Algorithm 1 (Pull-Request): one request per local Vblock to every node.
  Buffer req;
  Encoder enc(&req);
  std::vector<uint8_t> response;
  std::vector<GroupedBatchCodec::Group> groups;
  for (uint32_t vb = partition_.FirstVblockOf(node.id);
       vb < partition_.LastVblockOf(node.id); ++vb) {
    for (uint32_t y = 0; y < config_.num_nodes; ++y) {
      req.Clear();
      enc.PutFixed32(vb);
      HG_RETURN_IF_ERROR(transport_->Call(node.id, y, RpcMethod::kPullRequest,
                                          req.AsSlice(), &response));
      groups.clear();
      HG_RETURN_IF_ERROR(
          GroupedBatchCodec::Decode(Slice(response), kMsgSize, &groups));
      // BR memory accounting; pre-pull (combinable only) doubles BR.
      const bool prepull = config_.pre_pull && P::kCombinable;
      node.mem_highwater = std::max<uint64_t>(
          node.mem_highwater, response.size() * (prepull ? 2 : 1));
      for (const auto& g : groups) {
        for (const auto& p : g.payloads) {
          AddPending(node, g.dst, PodCodec<Message>::Decode(p.data()));
        }
      }
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------ update/produce

template <typename P>
Status Engine<P>::PhaseAConsume(Node& node) {
  node.pending_count = 0;
  const bool consume_push = prev_produce_ == EngineMode::kPush ||
                            prev_produce_ == EngineMode::kPushM;
  if (superstep_ == 0) return Status::OK();
  if (consume_push) return CollectPush(node);
  return CollectBPull(node);
}

template <typename P>
Status Engine<P>::ProducePush(Node& node, uint32_t vb,
                              const std::vector<uint8_t>& respond_in_vb,
                              const std::vector<uint8_t>& block_values) {
  // pushRes(): read the adjacency block once and broadcast along out-edges.
  // Vertex values are still in hand from the update pass (compute() in
  // Giraph is one pass), so no extra value I/O is charged here.
  bool any = false;
  for (uint8_t r : respond_in_vb) {
    if (r) {
      any = true;
      break;
    }
  }
  if (!any) return Status::OK();

  std::vector<AdjacencyStore::VertexAdj> adj;
  HG_RETURN_IF_ERROR(node.adj->ReadBlock(vb, &adj));
  node.io.adj_edge_bytes += node.adj->BlockBytes(vb);
  node.cpu_seconds +=
      config_.cpu.per_edge_s * static_cast<double>(node.adj->BlockEdges(vb));

  const VertexRange r = partition_.VblockRange(vb);
  for (const auto& va : adj) {
    const uint32_t in_block = va.id - r.begin;
    if (!respond_in_vb[in_block]) continue;
    const Value value = PodCodec<Value>::Decode(
        block_values.data() + static_cast<size_t>(in_block) * P::kValueSize);
    const uint32_t out_degree = node.vstore->OutDegree(va.id);
    for (const auto& e : va.out) {
      const Message m = program_.GenMessage(va.id, value, out_degree, e, ctx_);
      ++node.msgs_produced;
      node.cpu_seconds += config_.cpu.per_message_s;
      NodeId dst_node = partition_.NodeOf(e.dst);
      if (config_.push_sender_combining && P::kCombinable) {
        // pushM+com (Appendix E): combine with a message for the same
        // destination still sitting in this staging buffer.
        auto& index = node.combine_index[dst_node];
        auto [it, inserted] =
            index.try_emplace(e.dst, node.staging[dst_node].size());
        node.cpu_seconds += config_.cpu.per_combine_s;
        if (!inserted) {
          auto& slot = node.staging[dst_node][it->second];
          slot.second = P::Combine(slot.second, m);
          ++node.msgs_combined;
          continue;
        }
      }
      node.staging[dst_node].emplace_back(e.dst, m);
      node.mem_highwater =
          std::max<uint64_t>(node.mem_highwater,
                             node.staging[dst_node].size() * kMsgRecordSize);
      HG_RETURN_IF_ERROR(FlushStaging(node, dst_node, /*force=*/false));
    }
  }
  return Status::OK();
}

template <typename P>
Status Engine<P>::PhaseBUpdateProduce(Node& node) {
  const bool produce_push = mode_ == EngineMode::kPush ||
                            mode_ == EngineMode::kPushM;
  std::fill(node.responding_next.begin(), node.responding_next.end(), 0);
  std::fill(node.vblock_res_next.begin(), node.vblock_res_next.end(), 0);

  const uint32_t first_vb = partition_.FirstVblockOf(node.id);
  const uint32_t last_vb = partition_.LastVblockOf(node.id);
  std::vector<Message> no_msgs;
  std::vector<uint8_t> values;
  std::vector<uint8_t> respond_in_vb;

  for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
    const VertexRange r = partition_.VblockRange(vb);
    // Does any vertex in this block need an update?
    bool any_active = false;
    for (VertexId v = r.begin; v < r.end && !any_active; ++v) {
      const uint32_t li = node.LocalIdx(v);
      any_active = P::kAlwaysActive
                       ? (superstep_ > 0 || node.active[li])
                       : (node.pending_has[li] || node.active[li]);
    }
    respond_in_vb.assign(r.size(), 0);
    if (any_active) {
      // IO(V^t): scan + write back the Vblock.
      HG_RETURN_IF_ERROR(node.vstore->ReadBlock(vb, &values, IoClass::kSeqRead));
      node.io.vt_bytes += node.vstore->BlockBytes(vb);
      bool block_dirty = false;

      for (VertexId v = r.begin; v < r.end; ++v) {
        const uint32_t li = node.LocalIdx(v);
        const bool has_msgs = node.pending_has[li] != 0;
        const bool run_update =
            P::kAlwaysActive ? (superstep_ > 0 || node.active[li])
                             : (has_msgs || node.active[li]);
        if (!run_update) continue;

        Value value = PodCodec<Value>::Decode(
            values.data() + static_cast<size_t>(v - r.begin) * P::kValueSize);
        [[maybe_unused]] const Value old_value = value;
        const auto& msgs = has_msgs ? node.pending[li] : no_msgs;
        const UpdateResult res = program_.Update(v, &value, msgs, ctx_);
        ++node.updated_vertices;
        if constexpr (HasAggregator<P>) {
          node.aggregate_partial +=
              program_.AggregateContribution(v, old_value, value, ctx_);
        }
        node.cpu_seconds +=
            config_.cpu.per_vertex_update_s +
            config_.cpu.per_message_s * static_cast<double>(msgs.size());
        if (res.changed) {
          PodCodec<Value>::Encode(
              value,
              values.data() + static_cast<size_t>(v - r.begin) * P::kValueSize);
          block_dirty = true;
        }
        if (res.respond) {
          node.responding_next[li] = 1;
          node.vblock_res_next[vb - first_vb] = 1;
          respond_in_vb[v - r.begin] = 1;
        }
        // Consume messages.
        if (has_msgs) {
          node.pending[li].clear();
          node.pending_has[li] = 0;
        }
        node.active[li] = 0;
      }
      if (block_dirty) {
        HG_RETURN_IF_ERROR(
            node.vstore->WriteBlock(vb, values, IoClass::kSeqWrite));
        node.io.vt_bytes += node.vstore->BlockBytes(vb);
      }
    }
    if (produce_push) {
      HG_RETURN_IF_ERROR(ProducePush(node, vb, respond_in_vb, values));
    }
  }
  if (produce_push) {
    for (uint32_t y = 0; y < config_.num_nodes; ++y) {
      HG_RETURN_IF_ERROR(FlushStaging(node, y, /*force=*/true));
    }
  }
  return Status::OK();
}

// --------------------------------------------------------------- accounting

template <typename P>
void Engine<P>::BeginSuperstepAccounting() {
  for (auto& node : nodes_) {
    node.aggregate_partial = 0;
    node.updated_vertices = 0;
    node.msgs_produced = 0;
    node.msgs_wire = 0;
    node.msgs_combined = 0;
    node.flushes = 0;
    node.cpu_seconds = 0;
    node.mem_highwater = 0;
    node.spill_buffer_peak = 0;
    node.spill_resident_peak = 0;
    node.spill_combined = 0;
    node.io = IoBreakdown{};
    node.disk_snapshot = *node.storage->meter();
    node.net_snapshot = *transport_->meter(node.id);
  }
  fault_snapshot_ = transport_->fault_counters();
}

template <typename P>
uint64_t Engine<P>::ModeledMemoryBytes(const Node& node, EngineMode mode) const {
  // Metadata kept in memory by b-pull/hybrid: X_j (counts/degrees ~ 24B) and
  // the bitmap row per local Vblock.
  uint64_t meta = 0;
  if (node.ve) {
    meta = static_cast<uint64_t>(partition_.NumVblocksOf(node.id)) *
           (24 + partition_.num_vblocks() / 8 + 1);
  }
  uint64_t buffers = node.mem_highwater;
  if (mode == EngineMode::kPush || mode == EngineMode::kPushM) {
    buffers += node.inbox_next.mem.size() * kMsgRecordSize;
    if (!node.moc_acc.empty()) {
      buffers += node.moc_acc.size() * kMsgSize / 8;  // accumulator slots
    }
  }
  return meta + buffers;
}

template <typename P>
void Engine<P>::EndSuperstepAccounting(EngineMode produce_mode, bool switched) {
  SuperstepMetrics m;
  m.superstep = superstep_;
  m.mode = produce_mode;
  m.switched = switched;

  double max_node_seconds = 0;
  double max_blocking = 0;
  for (auto& node : nodes_) {
    m.messages_produced += node.msgs_produced;
    m.messages_on_wire += node.msgs_wire;
    m.messages_combined += node.msgs_combined;
    m.messages_spilled += node.inbox_next.spilled;
    m.io.vt_bytes += node.io.vt_bytes;
    m.io.adj_edge_bytes += node.io.adj_edge_bytes;
    m.io.eblock_edge_bytes += node.io.eblock_edge_bytes;
    m.io.fragment_aux_bytes += node.io.fragment_aux_bytes;
    m.io.vrr_bytes += node.io.vrr_bytes;
    m.io.msg_spill_read += node.io.msg_spill_read;

    const DiskMeter disk_delta =
        node.storage->meter()->DeltaSince(node.disk_snapshot);
    // Spill writes are the only random writes in push/b-pull paths.
    m.io.msg_spill_write += disk_delta.bytes(IoClass::kRandWrite);
    const uint64_t classified =
        node.io.vt_bytes + node.io.adj_edge_bytes + node.io.eblock_edge_bytes +
        node.io.fragment_aux_bytes + node.io.vrr_bytes +
        node.io.msg_spill_read + disk_delta.bytes(IoClass::kRandWrite);
    const uint64_t total = disk_delta.TotalBytes();
    m.io.other_bytes += total > classified ? total - classified : 0;

    const NetMeter net_delta =
        transport_->meter(node.id)->DeltaSince(node.net_snapshot);
    m.net_bytes += net_delta.bytes_sent;
    m.net_frames += net_delta.frames_sent;

    const double io_s =
        config_.memory_resident ? 0.0 : disk_delta.ModeledSeconds(config_.disk);
    const double send_s = config_.net.SecondsFor(net_delta.bytes_sent);
    const double recv_s = config_.net.SecondsFor(net_delta.bytes_received);
    const double net_s = std::max(send_s, recv_s);
    // Blocking: per-flush connection overhead + the unoverlapped tail (the
    // last package can never overlap with compute) + any transfer time not
    // hidden behind local work.
    const double work_s = node.cpu_seconds + io_s;
    const double tail_s = config_.net.SecondsFor(std::min<uint64_t>(
        config_.sending_threshold_bytes, net_delta.bytes_sent));
    const double blocking_s =
        static_cast<double>(node.flushes) * config_.flush_overhead_s + tail_s +
        std::max(0.0, net_s - work_s);
    const double node_s = work_s + blocking_s;

    m.cpu_seconds += node.cpu_seconds;
    m.io_seconds += io_s;
    m.net_seconds += net_s;
    max_blocking = std::max(max_blocking, blocking_s);
    max_node_seconds = std::max(max_node_seconds, node_s);

    const uint64_t mem = ModeledMemoryBytes(node, produce_mode);
    m.memory_highwater_bytes += mem;

    m.spill_merge_buffer_bytes =
        std::max(m.spill_merge_buffer_bytes, node.spill_buffer_peak);
    m.spill_peak_resident =
        std::max(m.spill_peak_resident, node.spill_resident_peak);
    m.spill_combined += node.spill_combined;

    uint64_t responding = 0;
    for (uint8_t r : node.responding_next) responding += r;
    m.responding_vertices += responding;
    m.active_vertices += node.updated_vertices;
  }
  m.blocking_seconds = max_blocking;
  m.superstep_seconds = max_node_seconds;

  const TransportFaultCounters faults =
      transport_->fault_counters().DeltaSince(fault_snapshot_);
  m.net_retries = faults.retries;
  m.net_timeouts = faults.timeouts;
  m.net_reconnects = faults.reconnects;

  EvaluateSwitch(&m);
  stats_.supersteps.push_back(m);
  stats_.modeled_seconds += m.superstep_seconds;
}

// -------------------------------------------------------------------- hybrid

template <typename P>
typename Engine<P>::PushCostEstimate Engine<P>::EstimateCioPush(
    uint64_t msgs) const {
  // Eq. (7): IO(V^t) + IO(E~^t) + 2 IO(M_disk), estimated from metadata and
  // the responding flags while running b-pull ("we can figure out the set of
  // required Eblocks ... based on the distribution of edges used in
  // pushRes()", Sec 5.3 — here the adjacency blocks play that role).
  PushCostEstimate est;
  for (const auto& node : nodes_) {
    if (!node.adj) continue;
    const uint32_t first_vb = partition_.FirstVblockOf(node.id);
    const uint32_t last_vb = partition_.LastVblockOf(node.id);
    for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
      if (node.vblock_res_next[vb - first_vb]) {
        est.adj_bytes += static_cast<double>(node.adj->BlockBytes(vb));
        est.vt_bytes += static_cast<double>(node.vstore->BlockBytes(vb));
      }
    }
  }
  const uint64_t b_total =
      config_.msg_buffer_per_node == UINT64_MAX
          ? UINT64_MAX
          : config_.msg_buffer_per_node * config_.num_nodes;
  const uint64_t mdisk =
      (b_total == UINT64_MAX || msgs <= b_total) ? 0 : msgs - b_total;
  est.mdisk_bytes = static_cast<double>(mdisk) * kMsgRecordSize;
  return est;
}

template <typename P>
typename Engine<P>::BPullCostEstimate Engine<P>::EstimateCioBPull() const {
  // Eq. (8) estimated from the VE-BLOCK index over Eblocks that responding
  // Vblocks would serve next superstep.
  BPullCostEstimate est;
  for (const auto& node : nodes_) {
    if (!node.ve) continue;
    const uint32_t first_vb = partition_.FirstVblockOf(node.id);
    const uint32_t last_vb = partition_.LastVblockOf(node.id);
    for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
      if (!node.vblock_res_next[vb - first_vb]) continue;
      est.vt_bytes += static_cast<double>(node.vstore->BlockBytes(vb));
      // Pull-Respond scans whole Eblocks (full e/f bytes) but reads source
      // values only for responding fragments — scale V_rr by the vblock's
      // responding fraction.
      const VertexRange r = partition_.VblockRange(vb);
      uint64_t responding = 0;
      for (VertexId v = r.begin; v < r.end; ++v) {
        responding += node.responding_next[node.LocalIdx(v)];
      }
      const double frac =
          r.size() ? static_cast<double>(responding) / r.size() : 0.0;
      for (uint32_t dst = 0; dst < partition_.num_vblocks(); ++dst) {
        const auto& idx = node.ve->Index(vb, dst);
        est.e_bytes += static_cast<double>(idx.edge_bytes);
        est.f_bytes += static_cast<double>(idx.aux_bytes);
        est.vrr_bytes += static_cast<double>(idx.num_fragments) * frac *
                         node.vstore->record_size();
      }
    }
  }
  return est;
}

template <typename P>
void Engine<P>::EvaluateSwitch(SuperstepMetrics* m) {
  const bool ran_bpull = m->mode == EngineMode::kBPull;
  const uint64_t msgs = m->messages_produced;
  const uint64_t b_total =
      config_.msg_buffer_per_node == UINT64_MAX
          ? UINT64_MAX
          : config_.msg_buffer_per_node * config_.num_nodes;

  // Q_t predicts superstep t+Δt. For Traversal-Style workloads the message
  // volume moves fast (Sec 5.3 / Appendix G), so extrapolate M with the
  // recent growth of the responding-vertex count over the Δt horizon.
  // (Responding counts, unlike message counts, are aligned identically under
  // push and b-pull production, so the trend survives mode switches.)
  // Always-Active workloads have growth 1 and are unaffected.
  double growth = prev_responding_ > 0 && m->responding_vertices > 0
                      ? static_cast<double>(m->responding_vertices) /
                            static_cast<double>(prev_responding_)
                      : 1.0;
  growth = std::clamp(growth, 0.25, 4.0);
  const double predicted_msgs =
      static_cast<double>(msgs) *
      std::pow(growth, static_cast<double>(config_.switch_interval));
  prev_responding_ = m->responding_vertices;

  const double mdisk_bytes =
      (b_total == UINT64_MAX || predicted_msgs <= static_cast<double>(b_total))
          ? 0.0
          : (predicted_msgs - static_cast<double>(b_total)) * kMsgRecordSize;

  // Observed-or-estimated quantities for this superstep (the series the
  // paper's Figs 11-13 check prediction accuracy against), plus the
  // component split Eq. (11) needs.
  double mco, cio_push, cio_bpull;
  double io_et_adj, io_e, io_f, io_vrr;
  if (ran_bpull) {
    mco = static_cast<double>(m->messages_combined);
    if (msgs > 0) {
      last_rco_ = mco / static_cast<double>(msgs);
    }
    io_e = static_cast<double>(m->io.eblock_edge_bytes);
    io_f = static_cast<double>(m->io.fragment_aux_bytes);
    io_vrr = static_cast<double>(m->io.vrr_bytes);
    cio_bpull = static_cast<double>(m->io.vt_bytes) + io_e + io_f + io_vrr;
    const PushCostEstimate est = EstimateCioPush(msgs);
    io_et_adj = est.adj_bytes;
    cio_push = est.Total();
  } else {
    mco = static_cast<double>(msgs) * last_rco_;
    io_et_adj = static_cast<double>(m->io.adj_edge_bytes);
    cio_push = static_cast<double>(m->io.vt_bytes) + io_et_adj +
               static_cast<double>(m->io.msg_spill_write + m->io.msg_spill_read);
    const BPullCostEstimate est = EstimateCioBPull();
    io_e = est.e_bytes;
    io_f = est.f_bytes;
    io_vrr = est.vrr_bytes;
    cio_bpull = est.Total();
  }
  m->actual_mco = mco;
  m->actual_cio_push = cio_push;
  m->actual_cio_bpull = cio_bpull;
  const double trend = msgs > 0 ? predicted_msgs / msgs : 1.0;
  m->predicted_mco = mco * trend;
  m->predicted_cio_push = cio_push * trend;
  m->predicted_cio_bpull = cio_bpull;

  // Eq. (11). Byte_m: one destination id if concatenated, a whole message if
  // combined. Under sufficient memory no data is disk-resident, so only the
  // communication term remains and b-pull's combining gain dominates the
  // sign (Sec 6.1).
  const double byte_m = P::kCombinable ? (4.0 + kMsgSize) : 4.0;
  const double mb = 1024.0 * 1024.0;
  double q = (mco * trend * byte_m) / (config_.net.mbps * mb);
  if (!config_.memory_resident) {
    if (config_.qt_use_table3_throughputs) {
      // The paper's literal Eq. (11) with the fio calibration numbers.
      q += mdisk_bytes / (config_.disk.qt_rand_write_mbps * mb) -
           io_vrr / (config_.disk.qt_rand_read_mbps * mb) +
           (io_et_adj + mdisk_bytes - io_e - io_f) /
               (config_.disk.qt_seq_read_mbps * mb);
    } else {
      // Same algebra, but with the costs the runtime model actually charges:
      // spill writes hit the device; spill read-back and graph re-reads are
      // page-cached (RAM); V_rr pays the per-operation overhead; spilled
      // messages additionally pay push's sort-merge CPU — the term that
      // keeps push slow even on SSDs (Sec 6.1).
      const double vrr_ops =
          io_vrr / static_cast<double>(8 + P::kValueSize);
      const double spilled_msgs = mdisk_bytes / kMsgRecordSize;
      q += mdisk_bytes / (config_.disk.rand_write_mbps * mb) +
           spilled_msgs * config_.cpu.per_spilled_message_s -
           vrr_ops * config_.disk.per_random_op_s -
           io_vrr / (kRamMbps * mb) +
           (io_et_adj + mdisk_bytes - io_e - io_f) / (kRamMbps * mb);
    }
  }
  m->q_t = q;

  if (config_.mode != EngineMode::kHybrid) return;
  // Superstep 0 only establishes responding flags under b-pull production —
  // no message exchange yet, so there is nothing to evaluate.
  if (superstep_ == 0 && m->messages_produced == 0) return;
  // Δt suppression: switching every superstep is not cost effective.
  if (superstep_ - last_switch_superstep_ < config_.switch_interval) return;
  const EngineMode desired = q >= 0 ? EngineMode::kBPull : EngineMode::kPush;
  if (desired != mode_) {
    last_switch_superstep_ = superstep_;
    mode_ = desired;
  }
}

// -------------------------------------------------------------- checkpoints

namespace ckpt_detail {
constexpr uint32_t kMagic = 0x48474350;  // "HGCP"
// v2 appends an FNV-1a checksum trailer over the whole image, so a torn
// write (crash mid-checkpoint) is detected at restore instead of decoding
// garbage. v1 images (no trailer) are no longer accepted.
constexpr uint32_t kVersion = 2;
constexpr size_t kTrailerSize = 8;
}  // namespace ckpt_detail

template <typename P>
Status Engine<P>::WriteCheckpoint(Buffer* out) {
  if (!loaded_) return Status::FailedPrecondition("Load() first");
  const size_t image_start = out->size();
  Encoder enc(out);
  enc.PutFixed32(ckpt_detail::kMagic);
  enc.PutFixed32(ckpt_detail::kVersion);
  enc.PutVarint64(static_cast<uint64_t>(superstep_));
  enc.PutU8(static_cast<uint8_t>(mode_));
  enc.PutU8(static_cast<uint8_t>(prev_produce_));
  enc.PutU8(converged_ ? 1 : 0);
  enc.PutSignedVarint64(last_switch_superstep_);
  enc.PutDouble(last_rco_);
  enc.PutVarint64(prev_responding_);
  enc.PutDouble(ctx_.prev_aggregate);

  std::vector<uint8_t> values;
  for (auto& node : nodes_) {
    // Per-node fail-point: a crash here leaves a partial image with no
    // checksum trailer — exactly the torn write RestoreCheckpoint must
    // reject (see recovery_test).
    HG_FAIL_POINT("ckpt.write");
    // Vertex values, per Vblock.
    for (uint32_t vb = partition_.FirstVblockOf(node.id);
         vb < partition_.LastVblockOf(node.id); ++vb) {
      HG_RETURN_IF_ERROR(node.vstore->ReadBlock(vb, &values, IoClass::kSeqRead));
      enc.PutLengthPrefixed(Slice(values.data(), values.size()));
    }
    // Flags.
    enc.PutLengthPrefixed(Slice(node.active.data(), node.active.size()));
    enc.PutLengthPrefixed(
        Slice(node.responding.data(), node.responding.size()));
    enc.PutLengthPrefixed(
        Slice(node.vblock_res.data(), node.vblock_res.size()));
    // Undelivered inbox (memory part + spilled runs).
    std::vector<std::pair<VertexId, Message>> msgs = node.inbox_cur.mem;
    if (node.inbox_cur.spill->num_runs() > 0) {
      std::vector<SpillEntry> spilled;
      HG_RETURN_IF_ERROR(node.inbox_cur.spill->MergeReadAll(&spilled));
      for (const auto& e : spilled) {
        msgs.emplace_back(e.dst, PodCodec<Message>::Decode(e.payload.data()));
      }
    }
    enc.PutVarint64(msgs.size());
    for (const auto& [dst, m] : msgs) {
      enc.PutFixed32(dst);
      uint8_t tmp[kMsgSize];
      PodCodec<Message>::Encode(m, tmp);
      enc.PutRaw(tmp, kMsgSize);
    }
  }
  enc.PutFixed64(
      Fnv1a64(out->data() + image_start, out->size() - image_start));
  return Status::OK();
}

template <typename P>
Status Engine<P>::RestoreCheckpoint(Slice data) {
  if (!loaded_) return Status::FailedPrecondition("Load() first");
  HG_FAIL_POINT("ckpt.restore");
  if (data.size() < 8 + ckpt_detail::kTrailerSize) {
    return Status::Corruption("checkpoint image too small");
  }
  const size_t body_size = data.size() - ckpt_detail::kTrailerSize;
  {
    Decoder trailer(
        Slice(data.data() + body_size, ckpt_detail::kTrailerSize));
    uint64_t stored = 0;
    HG_RETURN_IF_ERROR(trailer.GetFixed64(&stored));
    if (stored != Fnv1a64(data.data(), body_size)) {
      return Status::Corruption(
          "checkpoint checksum mismatch (torn or corrupted image)");
    }
  }
  data = Slice(data.data(), body_size);
  Decoder dec(data);
  uint32_t magic, version;
  HG_RETURN_IF_ERROR(dec.GetFixed32(&magic));
  HG_RETURN_IF_ERROR(dec.GetFixed32(&version));
  if (magic != ckpt_detail::kMagic) return Status::Corruption("bad checkpoint magic");
  if (version != ckpt_detail::kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  uint64_t superstep, prev_resp;
  uint8_t mode, prev_produce, converged;
  int64_t last_switch;
  HG_RETURN_IF_ERROR(dec.GetVarint64(&superstep));
  HG_RETURN_IF_ERROR(dec.GetU8(&mode));
  HG_RETURN_IF_ERROR(dec.GetU8(&prev_produce));
  HG_RETURN_IF_ERROR(dec.GetU8(&converged));
  HG_RETURN_IF_ERROR(dec.GetSignedVarint64(&last_switch));
  HG_RETURN_IF_ERROR(dec.GetDouble(&last_rco_));
  HG_RETURN_IF_ERROR(dec.GetVarint64(&prev_resp));
  HG_RETURN_IF_ERROR(dec.GetDouble(&ctx_.prev_aggregate));
  superstep_ = static_cast<int>(superstep);
  mode_ = static_cast<EngineMode>(mode);
  prev_produce_ = static_cast<EngineMode>(prev_produce);
  converged_ = converged != 0;
  last_switch_superstep_ = static_cast<int>(last_switch);
  prev_responding_ = prev_resp;

  auto restore_flags = [&](std::vector<uint8_t>* flags) -> Status {
    Slice raw;
    HG_RETURN_IF_ERROR(dec.GetLengthPrefixed(&raw));
    if (raw.size() != flags->size()) {
      return Status::Corruption("checkpoint flag size mismatch");
    }
    std::copy(raw.data(), raw.data() + raw.size(), flags->begin());
    return Status::OK();
  };

  for (auto& node : nodes_) {
    for (uint32_t vb = partition_.FirstVblockOf(node.id);
         vb < partition_.LastVblockOf(node.id); ++vb) {
      Slice raw;
      HG_RETURN_IF_ERROR(dec.GetLengthPrefixed(&raw));
      std::vector<uint8_t> values(raw.data(), raw.data() + raw.size());
      HG_RETURN_IF_ERROR(
          node.vstore->WriteBlock(vb, values, IoClass::kSeqWrite));
    }
    HG_RETURN_IF_ERROR(restore_flags(&node.active));
    HG_RETURN_IF_ERROR(restore_flags(&node.responding));
    HG_RETURN_IF_ERROR(restore_flags(&node.vblock_res));

    node.inbox_cur.mem.clear();
    node.inbox_cur.total = 0;
    node.inbox_cur.spilled = 0;
    HG_RETURN_IF_ERROR(node.inbox_cur.spill->Clear());
    // Also sweep the next-superstep spill: recovery may restore into storage
    // that still holds a dead incarnation's runs (including unregistered
    // orphans a mid-spill crash left behind); Clear() deletes by prefix.
    node.inbox_next.mem.clear();
    node.inbox_next.total = 0;
    node.inbox_next.spilled = 0;
    HG_RETURN_IF_ERROR(node.inbox_next.spill->Clear());
    uint64_t count;
    HG_RETURN_IF_ERROR(dec.GetVarint64(&count));
    const bool unlimited =
        config_.msg_buffer_per_node == UINT64_MAX || config_.memory_resident;
    std::vector<SpillEntry> overflow;
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t dst;
      Slice payload;
      HG_RETURN_IF_ERROR(dec.GetFixed32(&dst));
      HG_RETURN_IF_ERROR(dec.GetRaw(kMsgSize, &payload));
      ++node.inbox_cur.total;
      if (unlimited ||
          node.inbox_cur.mem.size() < config_.msg_buffer_per_node) {
        node.inbox_cur.mem.emplace_back(
            dst, PodCodec<Message>::Decode(payload.data()));
      } else {
        overflow.push_back(SpillEntry{
            dst, std::vector<uint8_t>(payload.data(),
                                      payload.data() + payload.size())});
        ++node.inbox_cur.spilled;
      }
    }
    if (!overflow.empty()) {
      HG_RETURN_IF_ERROR(node.inbox_cur.spill->SpillRun(std::move(overflow)));
    }
  }
  if (!dec.AtEnd()) return Status::Corruption("trailing checkpoint bytes");
  stats_.supersteps_run = superstep_;
  return Status::OK();
}

// ---------------------------------------------------------------- run loop

template <typename P>
Status Engine<P>::RunSuperstep() {
  if (!loaded_) return Status::FailedPrecondition("Load() first");
  ctx_.superstep = superstep_;
  BeginSuperstepAccounting();

  const EngineMode produce_mode =
      (config_.mode == EngineMode::kPush || config_.mode == EngineMode::kPushM)
          ? config_.mode
          : (config_.mode == EngineMode::kBPull ? EngineMode::kBPull : mode_);
  const bool switched = superstep_ > 0 && produce_mode != prev_produce_;

  // Phase A on all nodes, then Phase B on all nodes: BSP-consistent pulls.
  // Each phase fans out across the pool (one task per node) with a barrier
  // in between; the staged cross-node effects (pull-serve accounting, pushed
  // batches) are drained sequentially in fixed node order right after each
  // barrier so every counter and float sum matches the single-thread run.
  HG_RETURN_IF_ERROR(pool_->ParallelFor(
      config_.num_nodes, [this](uint32_t i) { return PhaseAConsume(nodes_[i]); }));
  for (auto& node : nodes_) {
    MergePullServe(node);
  }
  HG_RETURN_IF_ERROR(pool_->ParallelFor(config_.num_nodes, [this](uint32_t i) {
    return PhaseBUpdateProduce(nodes_[i]);
  }));
  // The drain itself is node-local (each node applies only its own staged
  // batches), so it parallelizes too; sender order inside a node is fixed.
  HG_RETURN_IF_ERROR(pool_->ParallelFor(config_.num_nodes, [this](uint32_t i) {
    return DrainStagedPushes(nodes_[i]);
  }));

  // Aggregator barrier: partial sums travel to the master and the global
  // value is broadcast back (metered control traffic), becoming visible to
  // the next superstep's Update calls.
  double aggregate = 0;
  if constexpr (HasAggregator<P>) {
    Buffer payload;
    Encoder enc(&payload);
    for (auto& node : nodes_) {
      aggregate += node.aggregate_partial;
      if (node.id != 0) {
        payload.Clear();
        enc.PutDouble(node.aggregate_partial);
        HG_RETURN_IF_ERROR(transport_->Post(node.id, 0, RpcMethod::kControl,
                                            payload.AsSlice()));
      }
    }
    for (uint32_t y = 1; y < config_.num_nodes; ++y) {
      payload.Clear();
      enc.PutDouble(aggregate);
      HG_RETURN_IF_ERROR(
          transport_->Post(0, y, RpcMethod::kControl, payload.AsSlice()));
    }
    pull_gen_aggregate_ = ctx_.prev_aggregate;
    ctx_.prev_aggregate = aggregate;
  }

  // Metrics and the switching decision read next-superstep flags, so they
  // run before the barrier swap.
  EndSuperstepAccounting(produce_mode, switched);
  stats_.supersteps.back().aggregate = aggregate;

  // Barrier: promote next-superstep state.
  uint64_t responding_total = 0;
  uint64_t inflight = 0;
  for (auto& node : nodes_) {
    node.responding.swap(node.responding_next);
    node.vblock_res.swap(node.vblock_res_next);
    std::swap(node.inbox_cur, node.inbox_next);
    for (uint8_t r : node.responding) responding_total += r;
    inflight += node.inbox_cur.total;
  }

  prev_produce_ = produce_mode;
  ++superstep_;
  stats_.supersteps_run = superstep_;

  if (responding_total == 0 && inflight == 0 && superstep_ > 0) {
    converged_ = true;
  }
  if constexpr (HasAggregateHalt<P>) {
    if (superstep_ > 1 && program_.ShouldHalt(aggregate)) {
      converged_ = true;
    }
  }
  return Status::OK();
}

template <typename P>
Status Engine<P>::Run() {
  const auto start = std::chrono::steady_clock::now();
  while (superstep_ < config_.max_supersteps && !converged_) {
    HG_RETURN_IF_ERROR(RunSuperstep());
  }
  stats_.converged = converged_;
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return Status::OK();
}

template <typename P>
Result<std::vector<typename P::Value>> Engine<P>::GatherValues() {
  std::vector<Value> out(partition_.num_vertices());
  std::vector<uint8_t> values;
  for (auto& node : nodes_) {
    for (uint32_t vb = partition_.FirstVblockOf(node.id);
         vb < partition_.LastVblockOf(node.id); ++vb) {
      HG_RETURN_IF_ERROR(
          node.vstore->ReadBlock(vb, &values, IoClass::kSeqRead));
      const VertexRange r = partition_.VblockRange(vb);
      for (uint32_t i = 0; i < r.size(); ++i) {
        out[r.begin + i] = PodCodec<Value>::Decode(
            values.data() + static_cast<size_t>(i) * P::kValueSize);
      }
    }
  }
  return out;
}

}  // namespace hybridgraph
