// Writing your own vertex program: a "reachability with hop budget" analysis
// implemented from scratch against the public Program interface, run under
// every engine mode to show that programs are mode-agnostic (the decoupled
// update/GenMessage split is all the hybrid machinery needs).
#include <cstdio>

#include "hybridgraph/hybridgraph.h"

using namespace hybridgraph;

namespace {

/// Marks every vertex reachable from a set of seed vertices within
/// `max_hops` hops. Value = remaining hop budget when first reached
/// (-1 = unreached); messages carry the sender's remaining budget and are
/// combinable by max.
struct BudgetedReachability {
  using Value = int32_t;
  using Message = int32_t;
  static constexpr bool kCombinable = true;
  static constexpr bool kAlwaysActive = false;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);

  int32_t max_hops = 4;
  uint32_t seed_stride = 1000;  // vertices 0, 1000, 2000, ... are seeds

  bool IsSeed(VertexId v) const { return v % seed_stride == 0; }

  Value InitValue(VertexId v, const SuperstepContext&) const {
    return IsSeed(v) ? max_hops : -1;
  }
  bool InitActive(VertexId v) const { return IsSeed(v); }

  UpdateResult Update(VertexId v, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0) {
      // Seeds broadcast their budget; respond only if they can still hop.
      return {false, IsSeed(v) && max_hops > 0};
    }
    Message best = -1;
    for (Message m : msgs) best = m > best ? m : best;
    if (best > *value) {
      *value = best;
      return {true, best > 0};  // keep flooding while budget remains
    }
    return {false, false};
  }

  Message GenMessage(VertexId, const Value& value, uint32_t, const Edge&,
                     const SuperstepContext&) const {
    return value - 1;  // one hop consumed
  }

  static Message Combine(const Message& a, const Message& b) {
    return a > b ? a : b;
  }
};

}  // namespace

int main() {
  const EdgeListGraph graph = GeneratePowerLaw(20000, 10.0, 0.8, 2024);
  std::printf("graph: %llu vertices, %llu edges\n\n",
              (unsigned long long)graph.num_vertices,
              (unsigned long long)graph.num_edges());

  BudgetedReachability program;
  for (EngineMode mode : {EngineMode::kPush, EngineMode::kBPull,
                          EngineMode::kHybrid}) {
    JobConfig cfg;
    cfg.mode = mode;
    cfg.num_nodes = 5;
    cfg.msg_buffer_per_node = 2000;
    cfg.max_supersteps = program.max_hops + 2;
    Engine<BudgetedReachability> engine(cfg, program);
    HG_CHECK(engine.Load(graph).ok());
    HG_CHECK(engine.Run().ok());
    const auto values = engine.GatherValues().ValueOrDie();
    uint64_t reached = 0;
    for (int32_t v : values) reached += v >= 0;
    std::printf(
        "%-8s reached %llu vertices within %d hops "
        "(%d supersteps, modeled %.4fs)\n",
        EngineModeName(mode), (unsigned long long)reached, program.max_hops,
        engine.stats().supersteps_run, engine.stats().modeled_seconds);
  }
  std::printf(
      "\nall modes must agree on the reachable set — the program never\n"
      "knows whether its messages were pushed or pulled.\n");
  return 0;
}
