#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

namespace {

constexpr uint8_t kKindPost = 0;
constexpr uint8_t kKindCall = 1;
constexpr uint8_t kAck = 0xA5;

Status ReadExact(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r == 0) return Status::NetworkError("connection closed");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(StringFormat("read: %s", strerror(errno)));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteExact(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::write(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(StringFormat("write: %s", strerror(errno)));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

TcpTransport::TcpTransport(uint32_t num_nodes)
    : Transport(num_nodes),
      listen_fds_(num_nodes, -1),
      ports_(num_nodes, 0),
      conn_fds_(static_cast<size_t>(num_nodes) * num_nodes, -1) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Start() {
  if (started_.load()) return Status::OK();
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::NetworkError("socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return Status::NetworkError("bind() failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports_[i] = ntohs(addr.sin_port);
    if (::listen(fd, 64) < 0) {
      ::close(fd);
      return Status::NetworkError("listen() failed");
    }
    listen_fds_[i] = fd;
  }
  started_.store(true);
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    server_threads_.emplace_back([this, i] { ServeNode(i); });
  }
  return Status::OK();
}

void TcpTransport::ServeNode(NodeId node) {
  std::vector<std::thread> conn_threads;
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fds_[node], nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn_threads.emplace_back([this, node, fd] { ServeConnection(node, fd); });
  }
  for (auto& t : conn_threads) t.join();
}

void TcpTransport::ServeConnection(NodeId node, int fd) {
  std::vector<uint8_t> header(1 + FrameHeader::kEncodedSize);
  std::vector<uint8_t> payload;
  while (!stopping_.load()) {
    if (!ReadExact(fd, header.data(), header.size()).ok()) break;
    const uint8_t kind = header[0];
    Decoder dec(Slice(header.data() + 1, FrameHeader::kEncodedSize));
    FrameHeader hdr;
    if (!FrameHeader::DecodeFrom(&dec, &hdr).ok()) break;
    payload.resize(hdr.payload_size);
    if (hdr.payload_size > 0 &&
        !ReadExact(fd, payload.data(), payload.size()).ok()) {
      break;
    }

    Buffer response;
    Status st;
    {
      std::lock_guard<std::mutex> lock(dispatch_mutex_);
      st = Dispatch(hdr, Slice(payload.data(), payload.size()), &response);
    }
    if (!st.ok()) {
      HG_LOG(ERROR) << "tcp dispatch failed at node " << node << ": "
                    << st.ToString();
      break;
    }
    if (kind == kKindCall) {
      Buffer framed;
      Encoder enc(&framed);
      enc.PutFixed32(static_cast<uint32_t>(response.size()));
      enc.PutRaw(response.data(), response.size());
      if (!WriteExact(fd, framed.data(), framed.size()).ok()) break;
    } else {
      if (!WriteExact(fd, &kAck, 1).ok()) break;
    }
  }
  ::close(fd);
}

Status TcpTransport::ConnectTo(NodeId src, NodeId dst, int* out) {
  std::lock_guard<std::mutex> lock(connect_mutex_);
  int& fd = conn_fds_[static_cast<size_t>(src) * num_nodes_ + dst];
  if (fd >= 0) {
    *out = fd;
    return Status::OK();
  }
  const int s = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s < 0) return Status::NetworkError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ports_[dst]);
  if (::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(s);
    return Status::NetworkError(
        StringFormat("connect to node %u: %s", dst, strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd = s;
  *out = s;
  return Status::OK();
}

Status TcpTransport::SendFrame(NodeId src, NodeId dst, RpcMethod method,
                               Slice payload, bool is_call,
                               std::vector<uint8_t>* response) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    return Status::InvalidArgument("node id out of range");
  }
  if (!started_.load()) return Status::FailedPrecondition("Start() first");

  // Publish the caller's writes to the server thread (paired with the
  // dispatch lock acquisition there).
  { std::lock_guard<std::mutex> lock(dispatch_mutex_); }

  int fd;
  HG_RETURN_IF_ERROR(ConnectTo(src, dst, &fd));

  Buffer frame;
  Encoder enc(&frame);
  enc.PutU8(is_call ? kKindCall : kKindPost);
  FrameHeader hdr{src, dst, method, static_cast<uint32_t>(payload.size())};
  hdr.EncodeTo(&enc);
  enc.PutRaw(payload.data(), payload.size());
  HG_RETURN_IF_ERROR(WriteExact(fd, frame.data(), frame.size()));

  const bool metered = ShouldMeter(src, dst);
  const uint64_t wire_bytes = FrameHeader::kEncodedSize + payload.size();
  if (metered) MeterFrame(src, dst, wire_bytes);

  if (is_call) {
    uint8_t lenbuf[4];
    HG_RETURN_IF_ERROR(ReadExact(fd, lenbuf, sizeof(lenbuf)));
    Decoder dec(Slice(lenbuf, sizeof(lenbuf)));
    uint32_t len;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&len));
    response->resize(len);
    if (len > 0) {
      HG_RETURN_IF_ERROR(ReadExact(fd, response->data(), len));
    }
    if (metered) MeterFrame(dst, src, FrameHeader::kEncodedSize + len);
  } else {
    uint8_t ack;
    HG_RETURN_IF_ERROR(ReadExact(fd, &ack, 1));
    if (ack != kAck) return Status::NetworkError("bad ack");
  }
  // Pull the handler's writes back into the caller thread.
  { std::lock_guard<std::mutex> lock(dispatch_mutex_); }
  return Status::OK();
}

Status TcpTransport::Post(NodeId src, NodeId dst, RpcMethod method,
                          Slice payload) {
  return SendFrame(src, dst, method, payload, /*is_call=*/false, nullptr);
}

Status TcpTransport::Call(NodeId src, NodeId dst, RpcMethod method,
                          Slice payload, std::vector<uint8_t>* response) {
  return SendFrame(src, dst, method, payload, /*is_call=*/true, response);
}

void TcpTransport::Shutdown() {
  if (!started_.load()) return;
  stopping_.store(true);
  for (int& fd : conn_fds_) {
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      fd = -1;
    }
  }
  for (int& fd : listen_fds_) {
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      fd = -1;
    }
  }
  for (auto& t : server_threads_) {
    if (t.joinable()) t.join();
  }
  server_threads_.clear();
  started_.store(false);
}

}  // namespace hybridgraph
