// Figures 11-13 — prediction accuracy of the hybrid switching metric's three
// inputs: M_co, C_io(push) and C_io(b-pull). The y-axis is the ratio of the
// value predicted at superstep t (for t+Δt, Δt=2) to the value actually
// observed at superstep t+2 — closer to 1 is better. SSSP and SA, all
// datasets, limited memory.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

void RunSeries(Algo algo) {
  for (const char* name : {"livej", "wiki", "orkut", "twi", "fri", "uk"}) {
    const DatasetSpec spec = FindDataset(name).ValueOrDie();
    const double shrink = ShrinkFor(spec);
    const EdgeListGraph& graph = CachedGraph(spec, shrink);
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.max_supersteps = 18;
    auto stats = RunAlgo(graph, algo, EngineMode::kHybrid, cfg);
    if (!stats.ok()) {
      std::printf("%s: FAILED %s\n", name, stats.status().ToString().c_str());
      continue;
    }
    const auto& steps = stats->supersteps;
    std::printf("\n%s over %s (ratio predicted@t / actual@t+2)\n",
                AlgoName(algo), name);
    std::printf("%4s %10s %14s %14s\n", "t", "Mco", "Cio(push)", "Cio(b-pull)");
    for (size_t t = 0; t + 2 < steps.size(); ++t) {
      auto ratio = [](double pred, double act) {
        return act > 0 ? pred / act : (pred > 0 ? 99.0 : 1.0);
      };
      std::printf("%4zu %10.3f %14.3f %14.3f\n", t,
                  ratio(steps[t].predicted_mco, steps[t + 2].actual_mco),
                  ratio(steps[t].predicted_cio_push,
                        steps[t + 2].actual_cio_push),
                  ratio(steps[t].predicted_cio_bpull,
                        steps[t + 2].actual_cio_bpull));
    }
  }
}

}  // namespace

int main() {
  PrintHeader("bench_fig11_13_prediction",
              "Figs 11-13: prediction accuracy of Mco, Cio(push), Cio(b-pull)");
  RunSeries(Algo::kSssp);
  RunSeries(Algo::kSa);
  std::printf(
      "\nexpected shape: Cio(b-pull) most accurate (no message I/O terms),\n"
      "Cio(push) close to 1 (block-granular edge I/O damps active-set\n"
      "swings), Mco least accurate where the frontier changes fast.\n");
  return 0;
}
