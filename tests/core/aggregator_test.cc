// Aggregator machinery: barrier combination, visibility at t+1, aggregate
// halting (delta-PageRank) and the multi-phase HITS normalization.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/hits.h"
#include "algos/pagerank.h"
#include "algos/pagerank_delta.h"
#include "core/engine.h"
#include "graph/generator.h"
#include "tests/core/reference_impls.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph(uint64_t seed = 3) {
  return GeneratePowerLaw(600, 8.0, 0.8, seed);
}

JobConfig Base(EngineMode mode) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 200;
  cfg.max_supersteps = 60;
  return cfg;
}

TEST(Aggregator, DeltaPageRankConverges) {
  const auto g = TestGraph();
  PageRankDeltaProgram program;
  program.tolerance = 1e-6;
  Engine<PageRankDeltaProgram> engine(Base(EngineMode::kBPull), program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.converged());
  EXPECT_LT(engine.stats().supersteps_run, 60);
  EXPECT_GT(engine.stats().supersteps_run, 5);
  // Final aggregate below tolerance.
  EXPECT_LT(engine.stats().supersteps.back().aggregate, program.tolerance);
  // Aggregates must be monotonically shrinking after warmup.
  const auto& steps = engine.stats().supersteps;
  for (size_t t = 4; t < steps.size(); ++t) {
    EXPECT_LT(steps[t].aggregate, steps[t - 2].aggregate * 1.01) << t;
  }
}

TEST(Aggregator, DeltaPageRankMatchesPlainPageRank) {
  const auto g = TestGraph();
  PageRankDeltaProgram program;
  program.tolerance = 0;  // never halts on aggregate -> runs max supersteps
  JobConfig cfg = Base(EngineMode::kPush);
  cfg.max_supersteps = 6;
  Engine<PageRankDeltaProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto got = engine.GatherValues().ValueOrDie();
  const auto expected = ReferencePageRank(g, 6);
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

TEST(Aggregator, SameAggregateUnderEveryMode) {
  const auto g = TestGraph();
  PageRankDeltaProgram program;
  program.tolerance = 1e-6;
  std::vector<double> reference;
  for (EngineMode mode : {EngineMode::kPush, EngineMode::kPushM,
                          EngineMode::kBPull, EngineMode::kHybrid}) {
    Engine<PageRankDeltaProgram> engine(Base(mode), program);
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    std::vector<double> series;
    for (const auto& s : engine.stats().supersteps) {
      series.push_back(s.aggregate);
    }
    if (reference.empty()) {
      reference = series;
    } else {
      ASSERT_EQ(series.size(), reference.size()) << EngineModeName(mode);
      for (size_t t = 0; t < series.size(); ++t) {
        EXPECT_NEAR(series[t], reference[t], 1e-12)
            << EngineModeName(mode) << " t=" << t;
      }
    }
  }
}

TEST(Aggregator, ControlTrafficMetered) {
  const auto g = TestGraph();
  PageRankDeltaProgram with_agg;
  with_agg.tolerance = 0;
  PageRankProgram without_agg;
  JobConfig cfg = Base(EngineMode::kBPull);
  cfg.max_supersteps = 5;

  Engine<PageRankDeltaProgram> a(cfg, with_agg);
  ASSERT_TRUE(a.Load(g).ok());
  ASSERT_TRUE(a.Run().ok());
  Engine<PageRankProgram> b(cfg, without_agg);
  ASSERT_TRUE(b.Load(g).ok());
  ASSERT_TRUE(b.Run().ok());
  // The aggregator adds (T-1) partials + (T-1) broadcasts per superstep.
  EXPECT_GT(a.stats().TotalNetBytes(), b.stats().TotalNetBytes());
}

// ------------------------------------------------------------------- HITS

/// Reference HITS power iteration with the same normalization scheme.
void ReferenceHits(const EdgeListGraph& g, int supersteps,
                   std::vector<double>* hub, std::vector<double>* auth) {
  const uint64_t n = g.num_vertices;
  hub->assign(n, 1.0);
  auth->assign(n, 1.0);
  // Superstep 0 sends hub scores (auth phase); updates land at t=1, etc.
  for (int t = 1; t < supersteps; ++t) {
    const bool auth_phase_prev = HitsProgram::AuthPhase(t - 1);
    std::vector<double> sum(n, 0.0);
    double norm_sq = 0;
    if (auth_phase_prev) {
      for (const auto& e : g.edges) sum[e.dst] += (*hub)[e.src];
      for (double h : *hub) norm_sq += h * h;
    } else {
      for (const auto& e : g.edges) sum[e.src] += (*auth)[e.dst];
      for (double a : *auth) norm_sq += a * a;
    }
    const double norm = norm_sq > 0 ? std::sqrt(norm_sq) : 1.0;
    if (auth_phase_prev) {
      for (uint64_t v = 0; v < n; ++v) (*auth)[v] = sum[v] / norm;
    } else {
      for (uint64_t v = 0; v < n; ++v) (*hub)[v] = sum[v] / norm;
    }
  }
}

TEST(Hits, MatchesReferencePowerIteration) {
  const auto g = TestGraph(9);
  const auto bidir = MakeBidirectional(g);
  EXPECT_EQ(bidir.num_edges(), 2 * g.num_edges());
  constexpr int kSteps = 7;
  std::vector<double> ref_hub, ref_auth;
  ReferenceHits(g, kSteps, &ref_hub, &ref_auth);

  for (EngineMode mode : {EngineMode::kPush, EngineMode::kBPull}) {
    JobConfig cfg = Base(mode);
    cfg.max_supersteps = kSteps;
    Engine<HitsProgram> engine(cfg, HitsProgram{});
    ASSERT_TRUE(engine.Load(bidir).ok());
    ASSERT_TRUE(engine.Run().ok());
    const auto got = engine.GatherValues().ValueOrDie();
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_NEAR(got[v].hub, ref_hub[v], 1e-9)
          << EngineModeName(mode) << " hub v=" << v;
      ASSERT_NEAR(got[v].auth, ref_auth[v], 1e-9)
          << EngineModeName(mode) << " auth v=" << v;
    }
  }
}

TEST(Hits, MultiPhaseIsHybridBoundary) {
  // Appendix G: Multi-Phase-Style algorithms flip the workload every
  // superstep, so hybrid cannot accumulate switching gains — it must not be
  // significantly worse than the best fixed mode, but no big win either.
  const auto bidir = MakeBidirectional(TestGraph(9));
  auto modeled = [&](EngineMode mode) {
    JobConfig cfg = Base(mode);
    cfg.max_supersteps = 10;
    Engine<HitsProgram> engine(cfg, HitsProgram{});
    EXPECT_TRUE(engine.Load(bidir).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.stats().modeled_seconds;
  };
  const double bpull = modeled(EngineMode::kBPull);
  const double hybrid = modeled(EngineMode::kHybrid);
  EXPECT_LT(hybrid, bpull * 1.5);
  EXPECT_GT(hybrid, bpull * 0.5);
}

}  // namespace
}  // namespace hybridgraph
