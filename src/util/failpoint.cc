#include "util/failpoint.h"

#include <chrono>
#include <thread>

#include "util/codec.h"
#include "util/string_util.h"

namespace hybridgraph {

namespace {

constexpr const char* kInjectedCrashPrefix = "injected crash";

/// FNV-1a over the site name: stable across runs/platforms, so the per-site
/// stream (spec.seed ^ hash) replays identically everywhere.
uint64_t SiteHash(const std::string& site) {
  return Fnv1a64(site.data(), site.size());
}

Status ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad number in fail-point spec: " + s);
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return Status::OK();
}

Status ParseOneSpec(const std::string& entry, std::string* site,
                    FailPointSpec* spec) {
  const size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("fail-point entry needs 'site=action': " +
                                   entry);
  }
  *site = TrimString(entry.substr(0, eq));
  std::string rhs = TrimString(entry.substr(eq + 1));
  std::string args;
  const size_t colon = rhs.find(':');
  if (colon != std::string::npos) {
    args = rhs.substr(colon + 1);
    rhs = rhs.substr(0, colon);
  }
  *spec = FailPointSpec{};
  if (rhs == "error") {
    spec->action = FailPointAction::kError;
  } else if (rhs == "delay") {
    spec->action = FailPointAction::kDelay;
  } else if (rhs == "crash") {
    spec->action = FailPointAction::kCrash;
  } else {
    return Status::InvalidArgument("unknown fail-point action: " + rhs);
  }
  for (const std::string& kv : SplitString(args, ',')) {
    if (TrimString(kv).empty()) continue;
    const size_t kveq = kv.find('=');
    if (kveq == std::string::npos) {
      return Status::InvalidArgument("fail-point arg needs 'k=v': " + kv);
    }
    const std::string key = TrimString(kv.substr(0, kveq));
    const std::string val = TrimString(kv.substr(kveq + 1));
    uint64_t num = 0;
    if (key == "p") {
      char* end = nullptr;
      spec->probability = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || spec->probability < 0.0 ||
          spec->probability > 1.0) {
        return Status::InvalidArgument("fail-point p must be in [0,1]: " + val);
      }
    } else if (key == "seed") {
      HG_RETURN_IF_ERROR(ParseU64(val, &num));
      spec->seed = num;
    } else if (key == "us") {
      HG_RETURN_IF_ERROR(ParseU64(val, &num));
      spec->delay_us = static_cast<uint32_t>(num);
    } else if (key == "after") {
      HG_RETURN_IF_ERROR(ParseU64(val, &num));
      spec->crash_after_hits = num;
    } else if (key == "max") {
      HG_RETURN_IF_ERROR(ParseU64(val, &num));
      spec->max_fires = static_cast<uint32_t>(num);
    } else if (key == "code") {
      if (val == "io") {
        spec->error_code = StatusCode::kIoError;
      } else if (val == "net") {
        spec->error_code = StatusCode::kNetworkError;
      } else if (val == "corruption") {
        spec->error_code = StatusCode::kCorruption;
      } else {
        return Status::InvalidArgument("unknown fail-point error code: " + val);
      }
    } else {
      return Status::InvalidArgument("unknown fail-point arg: " + key);
    }
  }
  return Status::OK();
}

}  // namespace

Status ParseFailPointList(
    const std::string& config,
    std::vector<std::pair<std::string, FailPointSpec>>* out) {
  for (const std::string& entry : SplitString(config, ';')) {
    if (TrimString(entry).empty()) continue;
    std::string site;
    FailPointSpec spec;
    HG_RETURN_IF_ERROR(ParseOneSpec(TrimString(entry), &site, &spec));
    out->emplace_back(std::move(site), spec);
  }
  return Status::OK();
}

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* instance = new FailPointRegistry();
  return *instance;
}

void FailPointRegistry::Arm(const std::string& site, const FailPointSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Armed armed;
  armed.spec = spec;
  armed.rng = Rng(spec.seed ^ SiteHash(site));
  armed_[site] = std::move(armed);
  any_armed_.store(true, std::memory_order_relaxed);
}

Status FailPointRegistry::ArmFromString(const std::string& config) {
  std::vector<std::pair<std::string, FailPointSpec>> specs;
  HG_RETURN_IF_ERROR(ParseFailPointList(config, &specs));
  for (const auto& [site, spec] : specs) Arm(site, spec);
  return Status::OK();
}

void FailPointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.erase(site);
  if (armed_.empty()) any_armed_.store(false, std::memory_order_relaxed);
}

void FailPointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

Status FailPointRegistry::Evaluate(const char* site) {
  FailPointAction action;
  StatusCode error_code;
  uint32_t delay_us;
  uint64_t hit_number;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = armed_.find(site);
    if (it == armed_.end()) return Status::OK();
    Armed& armed = it->second;
    hit_number = armed.hits++;
    // The decision for hit k consumes exactly one draw from the site's
    // stream, so the schedule is a pure function of (seed, site, k).
    const bool chance = armed.rng.NextBool(armed.spec.probability);
    bool fire;
    if (armed.spec.action == FailPointAction::kCrash) {
      fire = chance && hit_number >= armed.spec.crash_after_hits;
    } else {
      fire = chance;
    }
    if (fire && armed.fires >= armed.spec.max_fires) fire = false;
    if (!fire) return Status::OK();
    ++armed.fires;
    action = armed.spec.action;
    error_code = armed.spec.error_code;
    delay_us = armed.spec.delay_us;
  }
  switch (action) {
    case FailPointAction::kError:
      return Status(error_code,
                    StringFormat("injected error at %s (hit %llu)", site,
                                 static_cast<unsigned long long>(hit_number)));
    case FailPointAction::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      return Status::OK();
    case FailPointAction::kCrash:
      return Status::Internal(
          StringFormat("%s at %s (hit %llu)", kInjectedCrashPrefix, site,
                       static_cast<unsigned long long>(hit_number)));
  }
  return Status::OK();
}

uint64_t FailPointRegistry::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = armed_.find(site);
  return it == armed_.end() ? 0 : it->second.hits;
}

uint64_t FailPointRegistry::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = armed_.find(site);
  return it == armed_.end() ? 0 : it->second.fires;
}

bool IsInjectedCrash(const Status& st) {
  return st.code() == StatusCode::kInternal &&
         st.message().rfind(kInjectedCrashPrefix, 0) == 0;
}

FailPointScope::FailPointScope(const std::string& config) {
  std::vector<std::pair<std::string, FailPointSpec>> specs;
  status_ = ParseFailPointList(config, &specs);
  if (!status_.ok()) return;
  for (const auto& [site, spec] : specs) {
    FailPointRegistry::Instance().Arm(site, spec);
    sites_.push_back(site);
  }
}

FailPointScope::FailPointScope(const std::string& site,
                               const FailPointSpec& spec) {
  FailPointRegistry::Instance().Arm(site, spec);
  sites_.push_back(site);
}

FailPointScope::~FailPointScope() {
  for (const std::string& site : sites_) {
    FailPointRegistry::Instance().Disarm(site);
  }
}

}  // namespace hybridgraph
