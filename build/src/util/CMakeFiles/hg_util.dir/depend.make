# Empty dependencies file for hg_util.
# This may be replaced when dependencies are built.
