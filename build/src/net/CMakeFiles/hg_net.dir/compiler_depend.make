# Empty compiler generated dependencies file for hg_net.
# This may be replaced when dependencies are built.
