// The b-pull MessagePath (Sec 4): Phase A issues one Pull-Request per local
// Vblock to every node (Algorithm 1); the remote side answers with
// Pull-Respond (Algorithm 2) served here from the VE-BLOCK layout — Eblock
// scans gated by X_j.res and the bitmap, random source-value reads (IO(V_rr))
// and per-destination grouping/combining into the sending buffer BS.
// Production ships nothing: next superstep's pulls generate on demand.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/paths/block_path_base.h"
#include "graph/ve_block_store.h"
#include "net/message_codec.h"
#include "util/codec.h"

namespace hybridgraph {

template <typename P>
class BPullPath : public BlockPathBase<P> {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  explicit BPullPath(SuperstepDriver<P>* driver) : BlockPathBase<P>(driver) {}

  EngineMode mode() const override { return EngineMode::kBPull; }
  bool needs_veblocks() const override { return true; }
  bool serves_pulls() const override { return true; }

  Status Build(const EdgeListGraph& graph) override {
    HG_RETURN_IF_ERROR(this->driver_->EnsureBlockTopology(graph));
    this->InitPolicies();
    return Status::OK();
  }

  Status Consume(uint32_t i) override {
    NodeState& node = this->driver_->nodes()[i];
    node.pending.ResetCount();
    if (this->driver_->superstep() == 0) return Status::OK();
    BPullCollectPolicy policy;
    policy.msg_size = P::kMessageSize;
    policy.prepull_double = this->driver_->config().pre_pull && P::kCombinable;
    policy.num_nodes = this->driver_->config().num_nodes;
    return CollectBPullMessages(node, this->driver_->partition(),
                                this->driver_->transport(), policy);
  }

  Status WarmupNextSuperstep(uint32_t i) override {
    NodeState& node = this->driver_->nodes()[i];
    if (!node.pipeline || !node.pipeline->enabled()) return Status::OK();
    // Next superstep's Pull-Requests will scan the Eblocks of responding
    // local Vblocks (vblock_res_next promotes to vblock_res at the barrier).
    // Stage the first few in ascending (target, source) order — the order
    // requesters walk their target Vblocks — capped at the pipeline depth so
    // the warmup never evicts itself.
    const RangePartition& partition = this->driver_->partition();
    const uint32_t first_vb = partition.FirstVblockOf(node.id);
    const uint32_t last_vb = partition.LastVblockOf(node.id);
    const uint32_t depth = this->driver_->config().io.prefetch_depth;
    uint32_t scheduled = 0;
    for (uint32_t target_vb = 0;
         target_vb < partition.num_vblocks() && scheduled < depth;
         ++target_vb) {
      for (uint32_t vb = first_vb; vb < last_vb && scheduled < depth; ++vb) {
        if (!node.vblock_res_next[vb - first_vb]) continue;
        if (!node.ve->HasEdges(vb, target_vb)) continue;
        node.ve->PrefetchEblock(vb, target_vb, node.pipeline.get());
        ++scheduled;
      }
    }
    return Status::OK();
  }

  Status ServePull(NodeState& node, NodeId requester, Slice payload,
                   Buffer* response) override {
    // Algorithm 2 (Pull-Respond) for Vblock b_i requested by `requester`.
    // Runs in the requester's thread; all accounting goes to the
    // per-requester staging slot (merged after the Phase A barrier) so
    // concurrent pulls to this node never touch its shared counters.
    NodeState::PullServe& serve = node.pull_serve[requester];
    const JobConfig& config = this->driver_->config();
    const RangePartition& partition = this->driver_->partition();
    Decoder dec(payload);
    uint32_t target_vb;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&target_vb));

    // pullRes() generates the messages that push's pushRes() would have sent
    // at the previous superstep, so it runs under that superstep's context
    // (same GenMessage inputs either way — programs stay mode-agnostic).
    SuperstepContext gen_ctx = this->driver_->ctx();
    gen_ctx.superstep = gen_ctx.superstep - 1;
    gen_ctx.prev_aggregate = this->driver_->pull_gen_aggregate();

    // Sending buffer BS, grouped per destination vertex.
    std::vector<GroupedBatchCodec::Group> groups;
    std::vector<int64_t> group_of;  // dst (local to requester block) -> index
    const VertexRange dst_range = partition.VblockRange(target_vb);
    group_of.assign(dst_range.size(), -1);

    std::vector<uint8_t> value_bytes;
    std::vector<uint8_t> msg_bytes(P::kMessageSize);
    uint64_t produced = 0;
    uint64_t combined_away = 0;

    // Step 1-2: X_j.res and the bitmap gate the Eblock scan. The candidate
    // list is known up front, so the pipeline stays one Eblock ahead of the
    // scan below.
    const uint32_t first_vb = partition.FirstVblockOf(node.id);
    const uint32_t last_vb = partition.LastVblockOf(node.id);
    std::vector<uint32_t> candidates;
    for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
      if (!node.vblock_res[vb - first_vb]) continue;
      if (!node.ve->HasEdges(vb, target_vb)) continue;
      candidates.push_back(vb);
    }
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      const uint32_t vb = candidates[ci];
      if (ci + 1 < candidates.size() && node.pipeline) {
        node.ve->PrefetchEblock(candidates[ci + 1], target_vb,
                                node.pipeline.get());
      }

      VeBlockStore::ScanResult scan;
      HG_RETURN_IF_ERROR(
          node.ve->ScanEblock(vb, target_vb, &scan, node.pipeline.get()));
      serve.io.eblock_edge_bytes += scan.edge_bytes;
      serve.io.fragment_aux_bytes += scan.aux_bytes;
      // Decoding scans the whole Eblock, useless edges included (Appendix C:
      // small V means big Eblocks whose extra edges waste bandwidth/CPU).
      serve.cpu_seconds +=
          config.cpu.per_edge_s *
          static_cast<double>(node.ve->Index(vb, target_vb).num_edges);

      for (const auto& frag : scan.fragments) {
        if (!node.responding[node.LocalIdx(frag.src)]) continue;
        // Random read of the source vertex triple (the IO(V_rr) cost).
        HG_RETURN_IF_ERROR(
            node.vstore->ReadValueRandom(frag.src, &value_bytes));
        serve.io.vrr_bytes += node.vstore->record_size();
        const Value value = PodCodec<Value>::Decode(value_bytes.data());
        const uint32_t out_degree = node.vstore->OutDegree(frag.src);

        for (const auto& e : frag.edges) {
          const Message m = this->driver_->program().GenMessage(
              frag.src, value, out_degree, e, gen_ctx);
          ++produced;
          serve.cpu_seconds += config.cpu.per_message_s;
          int64_t& gi = group_of[e.dst - dst_range.begin];
          if (gi < 0) {
            gi = static_cast<int64_t>(groups.size());
            groups.push_back({e.dst, {}});
          }
          auto& payloads = groups[static_cast<size_t>(gi)].payloads;
          const bool combine = P::kCombinable && config.bpull_combining;
          if (combine && !payloads.empty()) {
            // Combine into the single slot.
            const Message prev = PodCodec<Message>::Decode(payloads[0].data());
            PodCodec<Message>::Encode(P::Combine(prev, m), payloads[0].data());
            ++combined_away;
          } else {
            PodCodec<Message>::Encode(m, msg_bytes.data());
            payloads.push_back(msg_bytes);
            if (!combine && payloads.size() > 1) {
              ++combined_away;  // concatenation: shares the dst id on the wire
            }
          }
        }
      }
    }

    serve.msgs_produced += produced;
    serve.msgs_combined += combined_away;
    serve.msgs_wire += produced - combined_away;
    // BS memory accounting: grouped batch bytes staged before transfer.
    const uint64_t bs_bytes =
        GroupedBatchCodec::EncodedSize(groups, P::kMessageSize);
    serve.bs_highwater = std::max(serve.bs_highwater, bs_bytes);
    // Flow control: the batch ships in threshold-sized packages, one in
    // flight.
    serve.flushes +=
        bs_bytes == 0
            ? 0
            : (bs_bytes + config.sending_threshold_bytes - 1) /
                  std::max<uint64_t>(1, config.sending_threshold_bytes);
    GroupedBatchCodec::Encode(groups, P::kMessageSize, response);
    return Status::OK();
  }
};

}  // namespace hybridgraph
