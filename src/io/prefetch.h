// ReadPipeline: bounded background readahead over one StorageService.
//
// A consumer that knows which blob (or which chunk of a blob) it will need
// next calls Schedule() to stage the bytes on a dedicated I/O thread pool,
// then later calls Fetch() at the point where it would have issued the
// synchronous read. Fetch() returns the staged bytes if they are still valid,
// or silently falls back to a synchronous storage read.
//
// Determinism contract: the background read is unmetered and page-cache
// neutral (see StorageService::ReadAsync); Fetch() charges the model via
// FinishStagedRead at the original consumption point, in consumption order.
// Modeled I/O bytes and LRU cache evolution are therefore bit-identical with
// prefetch on or off, at any thread count. The pipeline's own counters
// (scheduled/hits/misses/...) and the io.prefetch trace spans are
// observability only — like wall-clock columns, they are measured, not
// modeled, and are excluded from the determinism guarantee.
//
// Staleness: the pipeline registers itself as the storage mutation observer;
// any Write/Append/WriteRange/Delete of a staged key drops (cancels) the
// staged entry, so Fetch never returns pre-mutation bytes.
//
// Locking: the storage lock may be held when the pipeline lock is taken (the
// mutation-observer path). The pipeline therefore NEVER acquires the storage
// lock while holding its own — Schedule sizes the blob before locking, and
// Fetch pops the staged entry first, then waits/meters/falls back unlocked.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "io/storage.h"

namespace hybridgraph {

class ReadPipeline {
 public:
  /// Observability sink for io.prefetch spans: (name, superstep, mode,
  /// start_us, end_us) with steady-clock-absolute microsecond timestamps
  /// (the driver converts to trace-collector time).
  using SpanSink = std::function<void(const char* name, int superstep,
                                      int mode, uint64_t start_us,
                                      uint64_t end_us)>;

  /// Counters since the last DrainStats(). Observability only.
  struct Stats {
    uint64_t scheduled = 0;   ///< Schedule() calls that staged a read
    uint64_t hits = 0;        ///< Fetch() served from a staged read
    uint64_t misses = 0;      ///< Fetch() with nothing staged (sync read)
    uint64_t fallbacks = 0;   ///< staged read failed; sync read retried
    uint64_t hit_bytes = 0;   ///< bytes served from staged reads
  };

  /// `depth` = max staged entries, `budget_bytes` = max staged bytes; both
  /// bound memory held by not-yet-consumed readahead. `io_pool` must outlive
  /// the pipeline. Registers as `storage`'s mutation observer.
  ReadPipeline(StorageService* storage, ThreadPool* io_pool, uint32_t depth,
               uint64_t budget_bytes);
  /// Unregisters the observer, cancels all staged reads, and waits for any
  /// in-flight background task — after this, no task references storage.
  ~ReadPipeline();

  ReadPipeline(const ReadPipeline&) = delete;
  ReadPipeline& operator=(const ReadPipeline&) = delete;

  bool enabled() const { return io_pool_ != nullptr && depth_ > 0; }

  /// Tags subsequently emitted spans/counters with the current superstep and
  /// engine mode (mode as int to keep this layer core-agnostic).
  void SetContext(int superstep, int mode);
  void SetSpanSink(SpanSink sink);

  /// Stages a background read of `key` with `opts`. No-op when disabled,
  /// when (key, offset) is already staged, or when the read alone exceeds
  /// the byte budget. Evicts (cancels) oldest entries to fit depth/budget.
  void Schedule(const std::string& key, ReadOptions opts);

  /// Serves a read at its consumption point: a staged entry matching
  /// (key, offset, length) is awaited and charged via FinishStagedRead;
  /// otherwise this is a plain synchronous storage read. Errors from the
  /// staged read fall back to a sync read, except injected crashes, which
  /// propagate (fault-injection tests rely on the crash surfacing).
  Result<ReadResult> Fetch(const std::string& key, const ReadOptions& opts);

  /// Cancels and drops every staged entry (checkpoint restore, spill Clear).
  void CancelAll();

  /// Returns the counters accumulated since the last call and resets them.
  Stats DrainStats();

 private:
  struct Entry {
    std::string key;
    ReadOptions opts;
    uint64_t bytes_estimate = 0;
    std::shared_ptr<AsyncReadHandle> handle;
  };

  void OnMutation(const std::string& key);
  /// Removes *it (lock held), cancelling its handle.
  std::list<Entry>::iterator DropEntry(std::list<Entry>::iterator it);

  StorageService* storage_;
  ThreadPool* io_pool_;
  uint32_t depth_;
  uint64_t budget_bytes_;

  std::mutex mutex_;
  std::list<Entry> entries_;  // FIFO: front = oldest staged read
  uint64_t staged_bytes_ = 0;
  int superstep_ = 0;
  int mode_ = 0;
  SpanSink sink_;
  Stats stats_;
};

}  // namespace hybridgraph
