// Lightweight counters and histograms used for per-node, per-superstep
// accounting (I/O bytes by access class, network bytes, memory high-water).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hybridgraph {

/// \brief Monotonic counter.
class Counter {
 public:
  void Add(uint64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// \brief Tracks the maximum of a fluctuating quantity (e.g. buffer bytes).
class HighWaterMark {
 public:
  void Update(uint64_t v) { max_ = std::max(max_, v); }
  uint64_t value() const { return max_; }
  void Reset() { max_ = 0; }

 private:
  uint64_t max_ = 0;
};

/// \brief Simple power-of-two bucketed histogram for latency/size samples.
class Histogram {
 public:
  Histogram() : buckets_(kNumBuckets, 0) {}

  void Record(uint64_t value) {
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = std::max(max_, value);
    ++buckets_[BucketFor(value)];
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0.0; }

  /// Approximate quantile from bucket boundaries (upper bound of the bucket).
  uint64_t ValueAtQuantile(double q) const;

  void Reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = sum_ = max_ = 0;
    min_ = 0;
  }

 private:
  static constexpr int kNumBuckets = 64;

  static int BucketFor(uint64_t v) {
    if (v == 0) return 0;
    int b = 64 - __builtin_clzll(v);
    return b >= kNumBuckets ? kNumBuckets - 1 : b;
  }

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// \brief Named counter registry; cheap snapshot for reporting.
class MetricRegistry {
 public:
  Counter* GetCounter(const std::string& name) { return &counters_[name]; }
  std::map<std::string, uint64_t> Snapshot() const {
    std::map<std::string, uint64_t> out;
    for (const auto& [k, v] : counters_) out[k] = v.value();
    return out;
  }
  void ResetAll() {
    for (auto& [k, v] : counters_) v.Reset();
  }

 private:
  std::map<std::string, Counter> counters_;
};

}  // namespace hybridgraph
