file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_25_vblocks.dir/bench_fig23_25_vblocks.cc.o"
  "CMakeFiles/bench_fig23_25_vblocks.dir/bench_fig23_25_vblocks.cc.o.d"
  "bench_fig23_25_vblocks"
  "bench_fig23_25_vblocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_25_vblocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
