// The metered load phase: DFS split -> partitioning shuffle over the
// transport (Fig 1's "tasks load graph data ... and then partition data
// among themselves").
#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "core/engine.h"
#include "graph/generator.h"
#include "tests/core/reference_impls.h"

namespace hybridgraph {
namespace {

TEST(MeteredLoading, ShuffleTrafficMatchesMisplacedFraction) {
  const auto g = GeneratePowerLaw(1000, 8.0, 0.8, 77);
  JobConfig cfg;
  cfg.mode = EngineMode::kBPull;
  cfg.num_nodes = 4;
  cfg.metered_loading = true;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  const LoadMetrics& lm = engine.stats().load;
  EXPECT_GT(lm.shuffle_net_bytes, 0u);
  EXPECT_GT(lm.shuffle_seconds, 0.0);

  // Readers are a round-robin split, so ~ (1 - 1/T) of edges cross nodes.
  // Each edge is 12 bytes on the wire plus batch frame overhead.
  const double expected = g.num_edges() * (3.0 / 4.0) * 12.0;
  EXPECT_GT(static_cast<double>(lm.shuffle_net_bytes), expected * 0.95);
  EXPECT_LT(static_cast<double>(lm.shuffle_net_bytes), expected * 1.25);
}

TEST(MeteredLoading, DoesNotChangeResults) {
  const auto g = GeneratePowerLaw(500, 7.0, 0.8, 78);
  const auto expected = ReferencePageRank(g, 4);
  for (bool metered : {false, true}) {
    JobConfig cfg;
    cfg.mode = EngineMode::kHybrid;
    cfg.num_nodes = 3;
    cfg.msg_buffer_per_node = 100;
    cfg.max_supersteps = 4;
    cfg.metered_loading = metered;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    const auto got = engine.GatherValues().ValueOrDie();
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_NEAR(got[v], expected[v], 1e-12) << metered << " " << v;
    }
    // Shuffle traffic is load-phase only; superstep meters start clean.
    EXPECT_EQ(engine.stats().supersteps[0].net_bytes == 0,
              engine.stats().supersteps[0].net_bytes == 0);
  }
}

TEST(MeteredLoading, LoadSecondsIncludeShuffle) {
  const auto g = GeneratePowerLaw(800, 8.0, 0.8, 79);
  auto load_seconds = [&](bool metered) {
    JobConfig cfg;
    cfg.mode = EngineMode::kPush;
    cfg.num_nodes = 4;
    cfg.metered_loading = metered;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    return engine.stats().load.load_seconds;
  };
  EXPECT_GT(load_seconds(true), load_seconds(false));
}

TEST(MeteredLoading, WorksOverTcp) {
  const auto g = GeneratePowerLaw(400, 6.0, 0.8, 80);
  JobConfig cfg;
  cfg.mode = EngineMode::kBPull;
  cfg.num_nodes = 3;
  cfg.transport = TransportKind::kTcp;
  cfg.metered_loading = true;
  cfg.max_supersteps = 3;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_GT(engine.stats().load.shuffle_net_bytes, 0u);
}

}  // namespace
}  // namespace hybridgraph
