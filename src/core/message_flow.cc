#include "core/message_flow.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "io/message_spill.h"
#include "net/message_codec.h"

namespace hybridgraph {

Status ApplyPushBatch(NodeState& node, Slice payload,
                      const PushApplyPolicy& policy) {
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> msgs;
  HG_RETURN_IF_ERROR(FlatBatchCodec::Decode(payload, policy.msg_size, &msgs));

  std::vector<SpillEntry> overflow;
  for (auto& [dst, bytes] : msgs) {
    const uint32_t li = node.LocalIdx(dst);
    ++node.inbox_next.total;
    if (policy.online_compute) {
      // MOCgraph online computing: messages for memory-resident vertices are
      // folded into the accumulator immediately and never stored.
      if (node.moc_cached[li]) {
        if (policy.combinable) {
          uint8_t* acc =
              node.moc_acc.data() + static_cast<size_t>(li) * policy.msg_size;
          if (node.moc_has[li]) {
            policy.combiner(acc, bytes.data());
          } else {
            std::memcpy(acc, bytes.data(), policy.msg_size);
          }
        }
        node.moc_has[li] = 1;
        continue;
      }
      overflow.push_back(SpillEntry{dst, std::move(bytes)});
      ++node.inbox_next.spilled;
      continue;
    }
    if (policy.unlimited || node.inbox_next.count() < policy.buffer_cap) {
      node.inbox_next.Append(dst, bytes.data());
    } else {
      overflow.push_back(SpillEntry{dst, std::move(bytes)});
      ++node.inbox_next.spilled;
    }
  }
  if (!overflow.empty()) {
    HG_RETURN_IF_ERROR(node.inbox_next.spill()->SpillRun(std::move(overflow)));
  }
  return Status::OK();
}

Status DrainStagedPushBatches(NodeState& node, uint32_t num_nodes,
                              const PushApplyPolicy& policy) {
  for (uint32_t src = 0; src < num_nodes; ++src) {
    for (const auto& payload : node.push_staged[src]) {
      HG_RETURN_IF_ERROR(ApplyPushBatch(
          node, Slice(payload.data(), payload.size()), policy));
    }
    node.push_staged[src].clear();
  }
  return Status::OK();
}

Status CollectPushMessages(NodeState& node, const PushCollectPolicy& policy) {
  // Merge the in-memory inbox with the spilled runs, grouped per vertex.
  MessageInbox& inbox = node.inbox_cur;
  for (size_t i = 0; i < inbox.count(); ++i) {
    node.pending.Add(node.LocalIdx(inbox.dst(i)), inbox.payload(i));
  }
  if (inbox.spill()->num_runs() > 0) {
    // Streaming k-way merge: never materializes the spilled volume. The
    // drain's working set is the pending map plus num_runs ×
    // spill_merge_buffer_bytes of run buffers. The node's ReadPipeline (when
    // on) double-buffers each run's next chunk behind the consume loop.
    HG_ASSIGN_OR_RETURN(auto it, inbox.spill()->NewMergeIterator(
                                     policy.spill_merge_buffer_bytes,
                                     node.pipeline.get()));
    while (it->Valid()) {
      const SpillEntry& e = it->entry();
      node.pending.Add(node.LocalIdx(e.dst), e.payload.data());
      HG_RETURN_IF_ERROR(it->Next());
    }
    node.io.msg_spill_read += it->entries_read() * policy.msg_record_size;
    node.cpu_seconds += policy.per_spilled_message_s *
                        static_cast<double>(it->entries_read());
    node.spill_buffer_peak =
        std::max(node.spill_buffer_peak, it->buffer_bytes());
    node.spill_resident_peak =
        std::max(node.spill_resident_peak, it->peak_resident_entries());
    node.spill_combined +=
        inbox.spill()->combined_at_spill() + it->merge_combined();
    node.mem_highwater = std::max(node.mem_highwater, it->buffer_bytes());
    HG_RETURN_IF_ERROR(inbox.spill()->Clear());
  }
  // pushM: online accumulators are this superstep's messages for cached
  // vertices.
  if (policy.online_compute) {
    for (uint32_t li = 0; li < node.moc_has.size(); ++li) {
      if (node.moc_has[li]) {
        if (policy.combinable) {
          node.pending.Add(
              li, node.moc_acc.data() + static_cast<size_t>(li) * policy.msg_size);
        }
        node.moc_has[li] = 0;
      }
    }
  }
  inbox.ClearMem();
  return Status::OK();
}

Status CollectBPullMessages(NodeState& node, const RangePartition& partition,
                            Transport& transport,
                            const BPullCollectPolicy& policy) {
  // Algorithm 1 (Pull-Request): one request per local Vblock to every node.
  Buffer req;
  Encoder enc(&req);
  std::vector<uint8_t> response;
  std::vector<GroupedBatchCodec::Group> groups;
  for (uint32_t vb = partition.FirstVblockOf(node.id);
       vb < partition.LastVblockOf(node.id); ++vb) {
    for (uint32_t y = 0; y < policy.num_nodes; ++y) {
      req.Clear();
      enc.PutFixed32(vb);
      HG_RETURN_IF_ERROR(transport.Call(node.id, y, RpcMethod::kPullRequest,
                                        req.AsSlice(), &response));
      groups.clear();
      HG_RETURN_IF_ERROR(
          GroupedBatchCodec::Decode(Slice(response), policy.msg_size, &groups));
      // BR memory accounting; pre-pull (combinable only) doubles BR.
      node.mem_highwater = std::max<uint64_t>(
          node.mem_highwater, response.size() * (policy.prepull_double ? 2 : 1));
      for (const auto& g : groups) {
        for (const auto& p : g.payloads) {
          node.pending.Add(node.LocalIdx(g.dst), p.data());
        }
      }
    }
  }
  return Status::OK();
}

Status FlushStagedMessages(NodeState& node, Transport& transport, NodeId dst,
                           bool force, uint64_t sending_threshold_bytes,
                           size_t msg_record_size) {
  const size_t staged = node.staging.count(dst);
  const uint64_t bytes = staged * msg_record_size;
  if (staged == 0) return Status::OK();
  if (!force && bytes < sending_threshold_bytes) return Status::OK();

  Buffer payload;
  node.staging.EncodeBatch(dst, &payload);
  node.msgs_wire += staged;
  node.staging.Clear(dst);
  ++node.flushes;
  return transport.Post(node.id, dst, RpcMethod::kPushMessages,
                        payload.AsSlice());
}

}  // namespace hybridgraph
