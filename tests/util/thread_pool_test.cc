// ThreadPool: submission from many threads, Status/exception propagation,
// and barrier (ParallelFor) reuse across many rounds.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hybridgraph {
namespace {

TEST(ThreadPool, ResolvesThreadCounts) {
  EXPECT_EQ(ThreadPool(1).num_threads(), 1u);
  EXPECT_EQ(ThreadPool(7).num_threads(), 7u);
  EXPECT_GE(ThreadPool(0).num_threads(), 1u);  // 0 = hardware concurrency
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < kTasks) std::this_thread::yield();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, SubmissionFromManyThreads) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        pool.Submit([&] { done.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  while (done.load() < kThreads * kPerThread) std::this_thread::yield();
  EXPECT_EQ(done.load(), kThreads * kPerThread);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr uint32_t kN = 97;
  std::vector<std::atomic<int>> hits(kN);
  const Status st = pool.ParallelFor(kN, [&](uint32_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (uint32_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForPropagatesFirstErrorByIndex) {
  ThreadPool pool(4);
  const Status st = pool.ParallelFor(10, [](uint32_t i) {
    if (i == 3) return Status::InvalidArgument("boom-3");
    if (i == 7) return Status::Internal("boom-7");
    return Status::OK();
  });
  // Both fail; the smallest failing index wins so errors are deterministic.
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("boom-3"), std::string::npos);
}

TEST(ThreadPool, ParallelForTurnsExceptionsIntoStatus) {
  ThreadPool pool(2);
  const Status st = pool.ParallelFor(4, [](uint32_t i) -> Status {
    if (i == 2) throw std::runtime_error("kaboom");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("kaboom"), std::string::npos);
}

TEST(ThreadPool, SingleThreadRunsInlineInIndexOrder) {
  ThreadPool pool(1);
  std::vector<uint32_t> order;
  const Status st = pool.ParallelFor(16, [&](uint32_t i) {
    order.push_back(i);  // no lock needed: width-1 pools run inline
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(order.size(), 16u);
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, BarrierIsReusableAcrossRounds) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> round_sum{0};
    const Status st = pool.ParallelFor(8, [&](uint32_t i) {
      round_sum.fetch_add(i + 1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << round;
    // The barrier guarantee: every task of this round finished before
    // ParallelFor returned.
    ASSERT_EQ(round_sum.load(), 36u) << round;
    sum.fetch_add(round_sum.load());
  }
  EXPECT_EQ(sum.load(), 50u * 36u);
}

TEST(ThreadPool, ParallelForWithZeroTasksIsOk) {
  ThreadPool pool(4);
  EXPECT_TRUE(pool.ParallelFor(0, [](uint32_t) { return Status::OK(); }).ok());
}

}  // namespace
}  // namespace hybridgraph
