// Fault-tolerant job driver.
//
// The paper's architecture (Appendix A) has a master-side Fault Detector and
// recovers by "simply recomputing from scratch", noting a lightweight
// solution as future work. CheckpointingRunner implements both policies:
// with checkpoint_every == 0 a crash restarts the job from superstep 0
// (the paper's policy); with periodic checkpoints a crash rolls back only to
// the last barrier image stored in reliable storage.
#pragma once

#include <memory>
#include <optional>
#include <set>

#include "core/engine.h"

namespace hybridgraph {

template <typename P>
class CheckpointingRunner {
 public:
  using Value = typename P::Value;

  /// \param checkpoint_every write a checkpoint after every N supersteps
  ///        (0 = never; recovery recomputes from scratch).
  CheckpointingRunner(JobConfig config, P program, int checkpoint_every)
      : config_(std::move(config)),
        program_(std::move(program)),
        checkpoint_every_(checkpoint_every) {}

  /// Runs the job to completion. The cluster "crashes" (all volatile state
  /// lost) immediately after computing each superstep listed in
  /// `crash_after`; each crash fires at most once.
  Status Run(const EdgeListGraph& graph, std::set<int> crash_after = {}) {
    HG_RETURN_IF_ERROR(Reboot(graph, /*restore=*/false));
    while (engine_->superstep() < config_.max_supersteps &&
           !engine_->converged()) {
      HG_RETURN_IF_ERROR(engine_->RunSuperstep());
      ++supersteps_executed_;
      const int done = engine_->superstep();
      if (checkpoint_every_ > 0 && done % checkpoint_every_ == 0) {
        Buffer image;
        HG_RETURN_IF_ERROR(engine_->WriteCheckpoint(&image));
        checkpoint_ = std::move(image);
        ++checkpoints_written_;
      }
      auto it = crash_after.find(done - 1);
      if (it != crash_after.end()) {
        crash_after.erase(it);
        ++recoveries_;
        HG_RETURN_IF_ERROR(Reboot(graph, /*restore=*/true));
      }
    }
    return Status::OK();
  }

  Result<std::vector<Value>> GatherValues() { return engine_->GatherValues(); }
  const JobStats& stats() const { return engine_->stats(); }
  bool converged() const { return engine_->converged(); }

  int recoveries() const { return recoveries_; }
  int checkpoints_written() const { return checkpoints_written_; }
  /// Total supersteps computed including re-execution after crashes.
  int supersteps_executed() const { return supersteps_executed_; }

 private:
  Status Reboot(const EdgeListGraph& graph, bool restore) {
    engine_ = std::make_unique<Engine<P>>(config_, program_);
    HG_RETURN_IF_ERROR(engine_->Load(graph));
    if (restore && checkpoint_.has_value()) {
      HG_RETURN_IF_ERROR(engine_->RestoreCheckpoint(checkpoint_->AsSlice()));
    }
    return Status::OK();
  }

  JobConfig config_;
  P program_;
  int checkpoint_every_;
  std::unique_ptr<Engine<P>> engine_;
  std::optional<Buffer> checkpoint_;  ///< "reliable storage" image
  int recoveries_ = 0;
  int checkpoints_written_ = 0;
  int supersteps_executed_ = 0;
};

}  // namespace hybridgraph
