// HITS (hubs & authorities) as a Multi-Phase-Style workload.
//
// The computation alternates phases: even supersteps propagate hub scores
// forward (updating authorities), odd supersteps propagate authority scores
// backward (updating hubs). Phases run over different edge directions, so
// the graph must be prepared with MakeBidirectional(): every original edge
// (u,v) appears once with weight +1 (forward) and once reversed as (v,u)
// with weight -1 (the reverse marker).
//
// The per-phase alternation of which vertices send — the "periodical change
// in terms of the active vertex volume" — is exactly the algorithm class the
// paper's hybrid does NOT accumulate switching gains on (Appendix G / Sec
// 5.3 boundary); tests and the ablation bench verify that boundary.
//
// Scores are normalized each superstep with the global-aggregator sum of
// squares from the previous phase.
#pragma once

#include <cmath>

#include "core/program.h"
#include "graph/edge_list.h"

namespace hybridgraph {

/// Duplicates every edge in reverse with weight -1 so a program can tell
/// forward from reverse edges. Doubles |E|.
inline EdgeListGraph MakeBidirectional(const EdgeListGraph& g) {
  EdgeListGraph out;
  out.num_vertices = g.num_vertices;
  out.edges.reserve(g.edges.size() * 2);
  for (const auto& e : g.edges) {
    out.edges.push_back({e.src, e.dst, 1.0f});
    out.edges.push_back({e.dst, e.src, -1.0f});
  }
  return out;
}

/// \brief HITS vertex program over a MakeBidirectional() graph.
struct HitsProgram {
  struct Value {
    double hub = 1.0;
    double auth = 1.0;
  };
  using Message = double;
  static constexpr bool kCombinable = true;
  static constexpr bool kAlwaysActive = true;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);
  static constexpr bool kHasAggregator = true;

  /// Even supersteps: hubs -> authorities (forward edges). Odd: authorities
  /// -> hubs (reverse edges).
  static bool AuthPhase(int superstep) { return superstep % 2 == 0; }

  Value InitValue(VertexId, const SuperstepContext&) const { return {}; }
  bool InitActive(VertexId) const { return true; }

  UpdateResult Update(VertexId, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0) return {false, true};
    double sum = 0.0;
    for (double m : msgs) sum += m;
    // Normalize by the L2 norm aggregated at the previous barrier.
    const double norm =
        ctx.prev_aggregate > 0 ? std::sqrt(ctx.prev_aggregate) : 1.0;
    // The scores updated in superstep t are those fed by phase t-1.
    if (AuthPhase(ctx.superstep - 1)) {
      value->auth = sum / norm;
    } else {
      value->hub = sum / norm;
    }
    return {true, true};
  }

  Message GenMessage(VertexId, const Value& value, uint32_t, const Edge& e,
                     const SuperstepContext& ctx) const {
    const bool forward = e.weight > 0;
    if (AuthPhase(ctx.superstep)) {
      return forward ? value.hub : 0.0;
    }
    return forward ? 0.0 : value.auth;
  }

  static Message Combine(const Message& a, const Message& b) { return a + b; }

  double AggregateContribution(VertexId, const Value&, const Value& new_value,
                               const SuperstepContext& ctx) const {
    // Sum of squares of the score this superstep *sends*; the receivers
    // normalize with it at the next superstep.
    const double sent =
        AuthPhase(ctx.superstep) ? new_value.hub : new_value.auth;
    return sent * sent;
  }
};

}  // namespace hybridgraph
