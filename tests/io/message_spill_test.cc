#include "io/message_spill.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"
#include "util/rng.h"

namespace hybridgraph {
namespace {

std::vector<uint8_t> Payload(uint32_t v) {
  std::vector<uint8_t> p(4);
  std::memcpy(p.data(), &v, 4);
  return p;
}

uint32_t PayloadValue(const std::vector<uint8_t>& p) {
  uint32_t v;
  std::memcpy(&v, p.data(), 4);
  return v;
}

TEST(MessageSpill, SingleRunSortedByDst) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  std::vector<SpillEntry> run;
  run.push_back({5, Payload(50)});
  run.push_back({1, Payload(10)});
  run.push_back({3, Payload(30)});
  ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
  EXPECT_EQ(spill.num_runs(), 1u);
  EXPECT_EQ(spill.num_messages(), 3u);

  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].dst, 1u);
  EXPECT_EQ(out[1].dst, 3u);
  EXPECT_EQ(out[2].dst, 5u);
  EXPECT_EQ(PayloadValue(out[2].payload), 50u);
}

TEST(MessageSpill, MergeAcrossRunsGroupsDestinations) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{2, Payload(1)}, {4, Payload(2)}}).ok());
  ASSERT_TRUE(spill.SpillRun({{2, Payload(3)}, {1, Payload(4)}}).ok());
  ASSERT_TRUE(spill.SpillRun({{4, Payload(5)}}).ok());

  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 5u);
  // Non-decreasing by destination; all messages for one dst adjacent.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].dst, out[i].dst);
  }
  EXPECT_EQ(out[0].dst, 1u);
  EXPECT_EQ(out[1].dst, 2u);
  EXPECT_EQ(out[2].dst, 2u);
}

TEST(MessageSpill, EmptyRunIsNoop) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({}).ok());
  EXPECT_EQ(spill.num_runs(), 0u);
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(MessageSpill, WritesAreRandomReadsSequential) {
  // The I/O classes are the paper's model: spills are random writes (poor
  // destination locality), merge reads are sequential.
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}, {2, Payload(2)}}).ok());
  EXPECT_GT(storage.meter()->bytes(IoClass::kRandWrite), 0u);
  EXPECT_EQ(storage.meter()->bytes(IoClass::kSeqRead) +
                storage.meter()->cached_bytes(IoClass::kSeqRead),
            0u);
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  EXPECT_GT(storage.meter()->bytes(IoClass::kSeqRead) +
                storage.meter()->cached_bytes(IoClass::kSeqRead),
            0u);
}

TEST(MessageSpill, ClearResetsAndDeletesBlobs) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}}).ok());
  EXPECT_FALSE(storage.ListKeys("t/").empty());
  ASSERT_TRUE(spill.Clear().ok());
  EXPECT_EQ(spill.num_runs(), 0u);
  EXPECT_EQ(spill.num_messages(), 0u);
  EXPECT_TRUE(storage.ListKeys("t/").empty());
  // Reusable after clear.
  ASSERT_TRUE(spill.SpillRun({{7, Payload(7)}}).ok());
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 7u);
}

class SpillFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpillFuzzTest, RandomRunsMergeSorted) {
  Rng rng(GetParam());
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  uint64_t total = 0;
  std::vector<uint64_t> per_dst_count(64, 0);
  const int runs = 2 + rng.NextBounded(6);
  for (int r = 0; r < runs; ++r) {
    std::vector<SpillEntry> run;
    const int n = 1 + rng.NextBounded(200);
    for (int i = 0; i < n; ++i) {
      const uint32_t dst = static_cast<uint32_t>(rng.NextBounded(64));
      run.push_back({dst, Payload(dst * 1000)});
      ++per_dst_count[dst];
      ++total;
    }
    ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
  }
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), total);
  std::vector<uint64_t> seen(64, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    if (i > 0) ASSERT_LE(out[i - 1].dst, out[i].dst);
    ASSERT_EQ(PayloadValue(out[i].payload), out[i].dst * 1000);
    ++seen[out[i].dst];
  }
  EXPECT_EQ(seen, per_dst_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillFuzzTest, ::testing::Values(1, 7, 21, 99));

// ---------------------------------------------------------------- streaming

// Reference merge semantics: a stable sort by destination of the runs
// concatenated in spill order. This is what the old materializing
// implementation produced and what the streaming (dst, run index) heap must
// reproduce bit-for-bit.
std::vector<SpillEntry> ReferenceMerge(std::vector<SpillEntry> concatenated) {
  std::stable_sort(
      concatenated.begin(), concatenated.end(),
      [](const SpillEntry& a, const SpillEntry& b) { return a.dst < b.dst; });
  return concatenated;
}

std::vector<uint8_t> WidePayload(Rng* rng, size_t n) {
  std::vector<uint8_t> p(n);
  for (auto& b : p) b = static_cast<uint8_t>(rng->NextBounded(256));
  return p;
}

class StreamingDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingDifferentialTest, StreamingEqualsMaterializingReference) {
  Rng rng(GetParam());
  constexpr size_t kPayload = 12;
  MemStorage storage;
  MessageSpill spill(&storage, "t", kPayload);
  // Build random runs, tracking what the reference (stable sort of the
  // concatenation) must produce. Spill order inside a run matters: SpillRun
  // stable-sorts, so pre-sorting the copy mirrors it.
  std::vector<SpillEntry> concatenated;
  const int runs = 2 + static_cast<int>(rng.NextBounded(5));
  for (int r = 0; r < runs; ++r) {
    std::vector<SpillEntry> run;
    const int n = 1 + static_cast<int>(rng.NextBounded(300));
    for (int i = 0; i < n; ++i) {
      run.push_back({static_cast<uint32_t>(rng.NextBounded(48)),
                     WidePayload(&rng, kPayload)});
    }
    std::vector<SpillEntry> copy = run;
    std::stable_sort(
        copy.begin(), copy.end(),
        [](const SpillEntry& a, const SpillEntry& b) { return a.dst < b.dst; });
    for (auto& e : copy) concatenated.push_back(std::move(e));
    ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
  }
  const std::vector<SpillEntry> want = ReferenceMerge(std::move(concatenated));

  // Exercise several buffer sizes including the degenerate one-record case
  // and a deliberately unaligned size (rounded down to whole records).
  for (uint64_t buf : {uint64_t{1}, uint64_t{4 + kPayload}, uint64_t{37},
                       uint64_t{256}, MessageSpill::kDefaultMergeBufferBytes}) {
    auto res = spill.NewMergeIterator(buf);
    ASSERT_TRUE(res.ok()) << res.status().message();
    auto it = std::move(res).value();
    size_t i = 0;
    while (it->Valid()) {
      ASSERT_LT(i, want.size());
      EXPECT_EQ(it->entry().dst, want[i].dst) << "buf=" << buf << " i=" << i;
      EXPECT_EQ(it->entry().payload, want[i].payload)
          << "buf=" << buf << " i=" << i;
      ++i;
      ASSERT_TRUE(it->Next().ok());
    }
    EXPECT_EQ(i, want.size()) << "buf=" << buf;
    EXPECT_EQ(it->entries_read(), want.size());
    EXPECT_EQ(it->entries_emitted(), want.size());
  }

  // The materializing wrapper streams through the same iterator.
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), want.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].dst, want[i].dst);
    EXPECT_EQ(out[i].payload, want[i].payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingDifferentialTest,
                         ::testing::Values(3, 17, 4242, 31337));

TEST(MergeIterator, TieBreakIsRunOrderThenSpillOrder) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  // Three runs, all hitting dst 9; payloads encode (run, position).
  ASSERT_TRUE(spill.SpillRun({{9, Payload(100)}, {9, Payload(101)}}).ok());
  ASSERT_TRUE(spill.SpillRun({{9, Payload(200)}}).ok());
  ASSERT_TRUE(spill.SpillRun({{9, Payload(300)}, {9, Payload(301)}}).ok());

  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 5u);
  const uint32_t want[] = {100, 101, 200, 300, 301};
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].dst, 9u);
    EXPECT_EQ(PayloadValue(out[i].payload), want[i]) << "i=" << i;
  }
}

// ----------------------------------------------------------------- combining

void SumCombine(uint8_t* acc, const uint8_t* other) {
  uint32_t a, b;
  std::memcpy(&a, acc, 4);
  std::memcpy(&b, other, 4);
  a += b;
  std::memcpy(acc, &a, 4);
}

void MinCombine(uint8_t* acc, const uint8_t* other) {
  uint32_t a, b;
  std::memcpy(&a, acc, 4);
  std::memcpy(&b, other, 4);
  a = std::min(a, b);
  std::memcpy(acc, &a, 4);
}

TEST(MessageSpillCombine, FoldsAtSpillTimeAndShrinksRuns) {
  MemStorage raw_storage, com_storage;
  MessageSpill raw(&raw_storage, "t", 4);
  MessageSpill com(&com_storage, "t", 4);
  com.set_combiner(&SumCombine);
  const std::vector<SpillEntry> run = {
      {3, Payload(1)}, {1, Payload(2)}, {3, Payload(4)}, {1, Payload(8)},
      {2, Payload(16)}};
  ASSERT_TRUE(raw.SpillRun(run).ok());
  ASSERT_TRUE(com.SpillRun(run).ok());

  EXPECT_EQ(raw.num_messages(), 5u);
  EXPECT_EQ(com.num_messages(), 3u);  // one record per distinct dst
  EXPECT_EQ(com.combined_at_spill(), 2u);
  EXPECT_LT(com.bytes_written(), raw.bytes_written());

  std::vector<SpillEntry> out;
  ASSERT_TRUE(com.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].dst, 1u);
  EXPECT_EQ(PayloadValue(out[0].payload), 10u);
  EXPECT_EQ(out[1].dst, 2u);
  EXPECT_EQ(PayloadValue(out[1].payload), 16u);
  EXPECT_EQ(out[2].dst, 3u);
  EXPECT_EQ(PayloadValue(out[2].payload), 5u);
}

TEST(MessageSpillCombine, FoldsAcrossRunsDuringMerge) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  spill.set_combiner(&SumCombine);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}, {2, Payload(2)}}).ok());
  ASSERT_TRUE(spill.SpillRun({{2, Payload(4)}, {3, Payload(8)}}).ok());
  ASSERT_TRUE(spill.SpillRun({{2, Payload(16)}}).ok());

  auto res = spill.NewMergeIterator(MessageSpill::kDefaultMergeBufferBytes);
  ASSERT_TRUE(res.ok());
  auto it = std::move(res).value();
  std::vector<std::pair<uint32_t, uint32_t>> got;
  while (it->Valid()) {
    got.emplace_back(it->entry().dst, PayloadValue(it->entry().payload));
    ASSERT_TRUE(it->Next().ok());
  }
  const std::vector<std::pair<uint32_t, uint32_t>> want = {
      {1, 1}, {2, 22}, {3, 8}};
  EXPECT_EQ(got, want);
  EXPECT_EQ(it->entries_read(), 5u);
  EXPECT_EQ(it->entries_emitted(), 3u);
  EXPECT_EQ(it->merge_combined(), 2u);
}

// Combiner-during-merge equivalence on seeded random inputs: per-destination
// aggregate of the combined stream equals the aggregate of the raw stream,
// for both a PageRank-style sum and a WCC-style min.
class CombineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CombineEquivalenceTest, MergeCombineMatchesRawAggregate) {
  for (auto combine : {&SumCombine, &MinCombine}) {
    Rng rng(GetParam());
    MemStorage raw_storage, com_storage;
    MessageSpill raw(&raw_storage, "t", 4);
    MessageSpill com(&com_storage, "t", 4);
    com.set_combiner(combine);
    const int runs = 2 + static_cast<int>(rng.NextBounded(4));
    for (int r = 0; r < runs; ++r) {
      std::vector<SpillEntry> run;
      const int n = 1 + static_cast<int>(rng.NextBounded(150));
      for (int i = 0; i < n; ++i) {
        const uint32_t dst = static_cast<uint32_t>(rng.NextBounded(20));
        run.push_back({dst, Payload(1 + static_cast<uint32_t>(
                                            rng.NextBounded(1000)))});
      }
      ASSERT_TRUE(raw.SpillRun(run).ok());
      ASSERT_TRUE(com.SpillRun(run).ok());
    }
    std::vector<SpillEntry> raw_out, com_out;
    ASSERT_TRUE(raw.MergeReadAll(&raw_out).ok());
    ASSERT_TRUE(com.MergeReadAll(&com_out).ok());

    // Fold the raw stream with the same combiner.
    std::vector<std::pair<uint32_t, uint32_t>> want;
    for (const auto& e : raw_out) {
      if (!want.empty() && want.back().first == e.dst) {
        uint32_t acc = want.back().second;
        uint32_t v = PayloadValue(e.payload);
        uint8_t accb[4];
        std::memcpy(accb, &acc, 4);
        combine(accb, reinterpret_cast<const uint8_t*>(&v));
        std::memcpy(&acc, accb, 4);
        want.back().second = acc;
      } else {
        want.emplace_back(e.dst, PayloadValue(e.payload));
      }
    }
    ASSERT_EQ(com_out.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(com_out[i].dst, want[i].first);
      EXPECT_EQ(PayloadValue(com_out[i].payload), want[i].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombineEquivalenceTest,
                         ::testing::Values(5, 29, 777));

// ---------------------------------------------------------------- corruption

TEST(MergeIteratorCorruption, TruncatedRunIsCorruptionNotOob) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  std::vector<SpillEntry> run;
  for (uint32_t i = 0; i < 32; ++i) run.push_back({i, Payload(i)});
  ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());

  const std::string key = storage.ListKeys("t/")[0];
  auto read = storage.Read(key, {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(read.ok());
  std::vector<uint8_t> blob = std::move(read->data);
  // Chop mid-record: the header still promises 32 entries.
  blob.resize(blob.size() - 13);
  ASSERT_TRUE(storage
                  .Write(key, Slice(blob.data(), blob.size()),
                         IoClass::kRandWrite)
                  .ok());

  auto res = spill.NewMergeIterator(64);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption)
      << res.status().message();
}

TEST(MergeIteratorCorruption, BitFlippedCountIsCorruptionNotOob) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}, {2, Payload(2)}}).ok());

  const std::string key = storage.ListKeys("t/")[0];
  auto read = storage.Read(key, {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(read.ok());
  std::vector<uint8_t> blob = std::move(read->data);
  for (int bit : {0, 7, 40, 63}) {  // low and high bits of the fixed64 count
    std::vector<uint8_t> flipped = blob;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    ASSERT_TRUE(storage
                    .Write(key, Slice(flipped.data(), flipped.size()),
                           IoClass::kRandWrite)
                    .ok());
    auto res = spill.NewMergeIterator(64);
    ASSERT_FALSE(res.ok()) << "bit " << bit;
    EXPECT_EQ(res.status().code(), StatusCode::kCorruption) << "bit " << bit;
  }
}

TEST(MergeIteratorCorruption, RunBelowHeaderSizeIsCorruption) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}}).ok());
  const std::string key = storage.ListKeys("t/")[0];
  const uint8_t tiny[3] = {0, 1, 2};
  ASSERT_TRUE(storage.Write(key, Slice(tiny, 3), IoClass::kRandWrite).ok());
  auto res = spill.NewMergeIterator(64);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

// Randomized truncation/bit-flip fuzz: any single mutation either fails
// cleanly with Corruption or still yields exactly the promised entry count —
// never a crash or out-of-bounds read (ASan-checked in CI).
class CorruptionFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionFuzzTest, MutatedRunNeverReadsOutOfBounds) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    MemStorage storage;
    MessageSpill spill(&storage, "t", 4);
    const int n = 1 + static_cast<int>(rng.NextBounded(60));
    std::vector<SpillEntry> run;
    for (int i = 0; i < n; ++i) {
      run.push_back({static_cast<uint32_t>(rng.NextBounded(32)),
                     Payload(static_cast<uint32_t>(rng.NextBounded(100)))});
    }
    ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
    const std::string key = storage.ListKeys("t/")[0];
    auto read = storage.Read(key, {.io_class = IoClass::kSeqRead});
    ASSERT_TRUE(read.ok());
    std::vector<uint8_t> blob = std::move(read->data);
    if (rng.NextBounded(2) == 0 && blob.size() > 1) {
      blob.resize(1 + rng.NextBounded(blob.size() - 1));  // truncate
    } else {
      const size_t byte = rng.NextBounded(blob.size());
      blob[byte] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));  // flip
    }
    ASSERT_TRUE(storage
                    .Write(key, Slice(blob.data(), blob.size()),
                           IoClass::kRandWrite)
                    .ok());

    auto res = spill.NewMergeIterator(1 + rng.NextBounded(128));
    if (!res.ok()) {
      EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
      continue;
    }
    auto it = std::move(res).value();
    uint64_t emitted = 0;
    Status st;
    while (it->Valid()) {
      ++emitted;
      st = it->Next();
      if (!st.ok()) break;
    }
    if (st.ok()) {
      EXPECT_EQ(emitted, static_cast<uint64_t>(n));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzzTest,
                         ::testing::Values(11, 1234, 987654));

// -------------------------------------------------------------------- memory

TEST(MergeIterator, ResidentEntriesStayWithinBufferBound) {
  Rng rng(8);
  constexpr size_t kPayload = 4;
  constexpr uint64_t kRecord = 4 + kPayload;
  MemStorage storage;
  MessageSpill spill(&storage, "t", kPayload);
  const size_t runs = 6;
  const int per_run = 500;
  for (size_t r = 0; r < runs; ++r) {
    std::vector<SpillEntry> run;
    for (int i = 0; i < per_run; ++i) {
      run.push_back({static_cast<uint32_t>(rng.NextBounded(1000)),
                     Payload(static_cast<uint32_t>(i))});
    }
    ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
  }
  // 4 records of buffer per run: the merge must never hold more than
  // runs × 4 buffered entries (+1 for the exposed current entry), out of
  // 3000 spilled — the bounded-memory guarantee of the streaming drain.
  const uint64_t per_run_buf = 4 * kRecord;
  auto res = spill.NewMergeIterator(per_run_buf);
  ASSERT_TRUE(res.ok());
  auto it = std::move(res).value();
  EXPECT_EQ(it->buffer_bytes(), runs * per_run_buf);
  uint64_t emitted = 0;
  while (it->Valid()) {
    ++emitted;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(emitted, static_cast<uint64_t>(runs * per_run));
  EXPECT_LE(it->peak_resident_entries(), runs * 4 + 1);
  EXPECT_GT(it->peak_resident_entries(), 0u);
}

TEST(MergeIterator, OddBufferSizeRoundsDownToWholeRecords) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}, {2, Payload(2)}}).ok());
  auto res = spill.NewMergeIterator(19);  // 2 whole 8-byte records
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()->buffer_bytes(), 16u);
}

// ------------------------------------------------------------ orphaned runs

TEST(MessageSpillOrphans, FailedSyncLeavesNoStrayKeyAndSpillStaysUsable) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  {
    FailPointScope fp("storage.sync=error");
    ASSERT_TRUE(fp.status().ok());
    Status st = spill.SpillRun({{1, Payload(1)}, {2, Payload(2)}});
    EXPECT_FALSE(st.ok());
  }
  // Write-then-register: the failed run must not be visible anywhere.
  EXPECT_EQ(spill.num_runs(), 0u);
  EXPECT_EQ(spill.num_messages(), 0u);
  EXPECT_TRUE(storage.ListKeys("t/").empty());

  // The same key slot is reused cleanly once the fault clears.
  ASSERT_TRUE(spill.SpillRun({{7, Payload(7)}}).ok());
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 7u);
}

TEST(MessageSpillOrphans, ClearSweepsUnregisteredStrays) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}}).ok());
  // Simulate a dead incarnation's leftover: a run blob the live spill never
  // registered (e.g. written just before a crash).
  const uint8_t junk[8] = {1, 0, 0, 0, 0, 0, 0, 0};
  ASSERT_TRUE(storage
                  .Write("t/run-000042", Slice(junk, 8), IoClass::kRandWrite)
                  .ok());
  ASSERT_TRUE(spill.Clear().ok());
  EXPECT_TRUE(storage.ListKeys("t/").empty());
}

}  // namespace
}  // namespace hybridgraph
