#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace hybridgraph {
namespace bench {

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kPageRank:
      return "PageRank";
    case Algo::kSssp:
      return "SSSP";
    case Algo::kLpa:
      return "LPA";
    case Algo::kSa:
      return "SA";
  }
  return "?";
}

int MaxSuperstepsFor(Algo algo) {
  switch (algo) {
    case Algo::kPageRank:
      return 5;  // the paper reports 5-superstep averages
    case Algo::kSssp:
      return 100;  // convergence cap
    case Algo::kLpa:
      return 5;
    case Algo::kSa:
      return 50;
  }
  return 10;
}

double ShrinkFor(const DatasetSpec& spec) {
  if (std::getenv("HG_BENCH_FULL") != nullptr) return 1.0;
  // Keep the big models quick on a single core.
  return spec.num_vertices > 30000 ? 4.0 : 1.0;
}

const EdgeListGraph& CachedGraph(const DatasetSpec& spec, double shrink) {
  static std::map<std::pair<std::string, int>, EdgeListGraph> cache;
  const auto key = std::make_pair(spec.name, static_cast<int>(shrink * 16));
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  DatasetSpec scaled = spec;
  scaled.num_vertices =
      std::max<uint64_t>(1000, static_cast<uint64_t>(spec.num_vertices / shrink));
  return cache.emplace(key, BuildDataset(scaled)).first->second;
}

uint64_t ScaledBuffer(const DatasetSpec& spec, double shrink) {
  // Paper: B_i = 0.5M messages (livej/wiki/orkut), 1M (twi), 2M (fri/uk).
  double paper_bi = 0.5e6;
  if (spec.name == "twi") paper_bi = 1e6;
  if (spec.name == "fri" || spec.name == "uk") paper_bi = 2e6;
  return std::max<uint64_t>(64, static_cast<uint64_t>(
                                    paper_bi / spec.scale / shrink));
}

uint64_t ScaledVertexCache(const DatasetSpec& spec, double shrink) {
  // Paper: 2.5M vertices for GraphLab PowerGraph (>70% resident on the small
  // graphs).
  return std::max<uint64_t>(
      64, static_cast<uint64_t>(2.5e6 / spec.scale / shrink));
}

JobConfig LimitedMemoryConfig(const DatasetSpec& spec, double shrink,
                              DiskProfile disk) {
  JobConfig cfg;
  cfg.num_nodes = spec.default_nodes;
  cfg.msg_buffer_per_node = ScaledBuffer(spec, shrink);
  cfg.vpull_vertex_cache = ScaledVertexCache(spec, shrink);
  cfg.disk = disk;
  cfg.net = disk.name == "ssd" ? NetProfile::AmazonGigabit()
                               : NetProfile::LocalGigabit();
  if (disk.name == "ssd") cfg.cpu.scale = 2.0;  // amazon vCPUs (Sec 6.1)
  return cfg;
}

JobConfig SufficientMemoryConfig(const DatasetSpec& spec, double shrink) {
  JobConfig cfg;
  cfg.num_nodes = spec.default_nodes;
  cfg.memory_resident = true;
  cfg.msg_buffer_per_node = UINT64_MAX;
  cfg.vpull_vertex_cache = UINT64_MAX;
  (void)shrink;
  return cfg;
}

bool ModeSupports(Algo algo, EngineMode mode) {
  if (mode == EngineMode::kPushM) {
    return algo == Algo::kPageRank || algo == Algo::kSssp;  // combinable only
  }
  return true;
}

Result<JobStats> RunAlgo(const EdgeListGraph& graph, Algo algo, EngineMode mode,
                         JobConfig cfg) {
  if (cfg.max_supersteps == 30) {  // caller left the default
    cfg.max_supersteps = MaxSuperstepsFor(algo);
  }
  cfg.mode = mode;
  AlgoSpec spec;
  switch (algo) {
    case Algo::kPageRank:
      spec.kind = AlgoKind::kPageRank;
      break;
    case Algo::kSssp:
      // MakeEngine defaults the source to the max out-degree vertex, so the
      // traversal covers the graph even on scale models that leave many
      // vertices with zero out-degree.
      spec.kind = AlgoKind::kSssp;
      break;
    case Algo::kLpa:
      spec.kind = AlgoKind::kLpa;
      break;
    case Algo::kSa:
      spec.kind = AlgoKind::kSa;
      spec.sa_source_stride = 500;
      break;
  }
  HG_ASSIGN_OR_RETURN(std::unique_ptr<AnyEngine> engine,
                      MakeEngine(cfg, spec));
  HG_RETURN_IF_ERROR(engine->Load(graph));
  HG_RETURN_IF_ERROR(engine->Run());
  return engine->stats();
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("datasets are Table-4 scale models (~1/200 small, ~1/1000 big%s)\n",
              std::getenv("HG_BENCH_FULL") ? "" : "; big models shrunk 4x more,"
              " set HG_BENCH_FULL=1 for full models");
  std::printf("modeled runtimes use the HDD/SSD profiles of Table 3\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace hybridgraph
