// Message-flow mechanics: sending-threshold flow control, sender-side
// combining (pushM+com), spill accounting M_disk = M - B, concatenation
// savings in b-pull, and cost-model comparisons the paper's conclusions
// rest on.
#include <gtest/gtest.h>

#include "algos/lpa.h"
#include "algos/pagerank.h"
#include "algos/wcc.h"
#include "core/engine.h"
#include "graph/generator.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph() { return GeneratePowerLaw(1000, 10.0, 0.8, 31); }

JobConfig Base(EngineMode mode) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 300;
  cfg.max_supersteps = 4;
  return cfg;
}

TEST(MessageFlow, SpilledEqualsMessagesMinusBuffer) {
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kPush);
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  // Steady-state superstep: every edge produces one message; each node
  // buffers at most B_i of the messages it receives.
  const auto& s = engine.stats().supersteps[2];
  EXPECT_EQ(s.messages_produced, g.num_edges());
  const uint64_t b_total = cfg.msg_buffer_per_node * cfg.num_nodes;
  EXPECT_GE(s.messages_spilled, s.messages_produced - b_total - 1);
  EXPECT_LT(s.messages_spilled, s.messages_produced);
}

TEST(MessageFlow, SmallerThresholdMoreFrames) {
  const auto g = TestGraph();
  auto frames = [&](uint64_t threshold) {
    JobConfig cfg = Base(EngineMode::kPush);
    cfg.sending_threshold_bytes = threshold;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    uint64_t total = 0;
    for (const auto& s : engine.stats().supersteps) total += s.net_frames;
    return total;
  };
  EXPECT_GT(frames(512), 2 * frames(64 * 1024));
}

TEST(MessageFlow, SenderCombiningReducesWireMessages) {
  const auto g = TestGraph();
  auto run = [&](bool combine) {
    JobConfig cfg = Base(EngineMode::kPush);
    cfg.push_sender_combining = combine;
    cfg.sending_threshold_bytes = 1 << 20;  // large buffer: maximal combining
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.stats();
  };
  const JobStats plain = run(false);
  const JobStats combined = run(true);
  EXPECT_GT(plain.TotalNetBytes(), combined.TotalNetBytes());
  uint64_t mco = 0;
  for (const auto& s : combined.supersteps) mco += s.messages_combined;
  EXPECT_GT(mco, 0u);
  // Combining must not change the result counts.
  EXPECT_EQ(plain.supersteps[2].messages_produced,
            combined.supersteps[2].messages_produced);
}

TEST(MessageFlow, CombiningGainGrowsWithThreshold) {
  // Appendix E: a larger sending threshold lets more messages meet in the
  // buffer and combine.
  const auto g = TestGraph();
  auto ratio = [&](uint64_t threshold) {
    JobConfig cfg = Base(EngineMode::kPush);
    cfg.push_sender_combining = true;
    cfg.sending_threshold_bytes = threshold;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    uint64_t mco = 0, m = 0;
    for (const auto& s : engine.stats().supersteps) {
      mco += s.messages_combined;
      m += s.messages_produced;
    }
    return static_cast<double>(mco) / static_cast<double>(m);
  };
  EXPECT_GT(ratio(256 * 1024), ratio(256) + 0.05);
}

TEST(MessageFlow, BPullCombinesRegardlessOfThreshold) {
  // b-pull generates messages per requested block, so its combining ratio is
  // orthogonal to the sending threshold (Appendix E, Fig 26b).
  const auto g = TestGraph();
  auto ratio = [&](uint64_t threshold) {
    JobConfig cfg = Base(EngineMode::kBPull);
    cfg.sending_threshold_bytes = threshold;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    uint64_t mco = 0, m = 0;
    for (const auto& s : engine.stats().supersteps) {
      mco += s.messages_combined;
      m += s.messages_produced;
    }
    return m ? static_cast<double>(mco) / static_cast<double>(m) : 0.0;
  };
  const double small = ratio(256);
  const double large = ratio(256 * 1024);
  EXPECT_NEAR(small, large, 0.01);
  EXPECT_GT(small, 0.1);
}

TEST(MessageFlow, BPullNetBytesBelowPush) {
  // Concatenating/combining on the wire: b-pull must move fewer bytes than
  // push for the same algorithm (Sec 6.5 reports ~50% even without combine).
  // Use a locality-free graph so destination in-degrees concentrate per
  // sender node and grouping has something to merge.
  const auto g = GeneratePowerLaw(1000, 10.0, 0.9, 31, /*locality=*/0.0);
  auto net = [&](EngineMode mode) {
    JobConfig cfg = Base(mode);
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    uint64_t bytes = 0;
    // Compare steady-state supersteps (skip the asymmetric first ones).
    for (const auto& s : engine.stats().supersteps) {
      if (s.superstep >= 2) bytes += s.net_bytes;
    }
    return bytes;
  };
  EXPECT_LT(net(EngineMode::kBPull), net(EngineMode::kPush) * 3 / 4);
}

TEST(MessageFlow, ConcatOnlyAlgorithmStillSavesIds) {
  // LPA cannot combine, but concatenation still shares destination ids.
  const auto g = TestGraph();
  auto net = [&](EngineMode mode) {
    JobConfig cfg = Base(mode);
    cfg.max_supersteps = 3;
    Engine<LpaProgram> engine(cfg, LpaProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    uint64_t bytes = 0;
    for (const auto& s : engine.stats().supersteps) {
      if (s.superstep >= 2) bytes += s.net_bytes;
    }
    return bytes;
  };
  EXPECT_LT(net(EngineMode::kBPull), net(EngineMode::kPush));
}

TEST(MessageFlow, SpillCombiningShrinksRunsAndPreservesPageRank) {
  // Receiver-side spill combining (Giraph-style): runs shrink on disk and
  // the merge emits pre-combined messages, but the per-vertex totals must be
  // unchanged. PageRank sums floats, so combining reorders additions —
  // values match to FP tolerance, not bit-for-bit.
  const auto g = TestGraph();
  auto run = [&](bool combine) {
    JobConfig cfg = Base(EngineMode::kPush);
    cfg.msg_buffer_per_node = 100;  // force heavy spilling
    cfg.io.spill_combining = combine;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return std::make_pair(engine.GatherValues().ValueOrDie(), engine.stats());
  };
  const auto [plain_values, plain] = run(false);
  const auto [com_values, com] = run(true);
  ASSERT_EQ(plain_values.size(), com_values.size());
  for (size_t v = 0; v < plain_values.size(); ++v) {
    ASSERT_NEAR(plain_values[v], com_values[v], 1e-9) << "vertex " << v;
  }
  uint64_t plain_spill_io = 0, com_spill_io = 0, com_count = 0;
  for (const auto& s : plain.supersteps) {
    plain_spill_io += s.io.msg_spill_write + s.io.msg_spill_read;
  }
  for (const auto& s : com.supersteps) {
    com_spill_io += s.io.msg_spill_write + s.io.msg_spill_read;
    com_count += s.spill_combined;
  }
  EXPECT_GT(com_count, 0u);
  EXPECT_LT(com_spill_io, plain_spill_io);
  // Plain push reports no spill-path combining.
  for (const auto& s : plain.supersteps) EXPECT_EQ(s.spill_combined, 0u);
}

TEST(MessageFlow, SpillCombiningExactForMinCombiner) {
  // WCC combines with min — associative, commutative, and exact — so
  // spill-combined runs must produce bit-identical component labels.
  const auto g = TestGraph();
  auto run = [&](bool combine) {
    JobConfig cfg = Base(EngineMode::kPush);
    cfg.msg_buffer_per_node = 100;
    cfg.io.spill_combining = combine;
    cfg.max_supersteps = 12;  // enough for labels to propagate
    Engine<WccProgram> engine(cfg, WccProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.GatherValues().ValueOrDie();
  };
  EXPECT_EQ(run(false), run(true));  // exactly identical labels
}

TEST(CostModel, PushCostGrowsAsBufferShrinks) {
  // The Fig 2 motivation: runtime rises as the message buffer shrinks.
  const auto g = TestGraph();
  auto modeled = [&](uint64_t buffer) {
    JobConfig cfg = Base(EngineMode::kPush);
    cfg.msg_buffer_per_node = buffer;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.stats().modeled_seconds;
  };
  const double tiny = modeled(50);
  const double mid = modeled(1000);
  const double mem = modeled(UINT64_MAX);
  EXPECT_GT(tiny, mid);
  EXPECT_GT(mid, mem);
}

TEST(CostModel, BPullBeatsPushUnderLimitedMemory) {
  // The headline claim, at test scale.
  const auto g = TestGraph();
  auto modeled = [&](EngineMode mode) {
    JobConfig cfg = Base(mode);
    cfg.msg_buffer_per_node = 100;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.stats().modeled_seconds;
  };
  EXPECT_LT(3 * modeled(EngineMode::kBPull), modeled(EngineMode::kPush));
}

TEST(CostModel, SsdNarrowsTheGap) {
  const auto g = TestGraph();
  auto modeled = [&](EngineMode mode, DiskProfile disk) {
    JobConfig cfg = Base(mode);
    cfg.msg_buffer_per_node = 100;
    cfg.disk = disk;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.stats().modeled_seconds;
  };
  const double hdd_gap = modeled(EngineMode::kPush, DiskProfile::Hdd()) /
                         modeled(EngineMode::kBPull, DiskProfile::Hdd());
  const double ssd_gap = modeled(EngineMode::kPush, DiskProfile::Ssd()) /
                         modeled(EngineMode::kBPull, DiskProfile::Ssd());
  EXPECT_GT(hdd_gap, ssd_gap);
  EXPECT_GT(ssd_gap, 1.0);  // b-pull still wins on SSD (Fig 9)
}

}  // namespace
}  // namespace hybridgraph
