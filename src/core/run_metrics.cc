#include "core/run_metrics.h"

#include "util/string_util.h"

namespace hybridgraph {

const char* EngineModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kPush:
      return "push";
    case EngineMode::kPushM:
      return "pushM";
    case EngineMode::kVPull:
      return "pull";
    case EngineMode::kBPull:
      return "b-pull";
    case EngineMode::kHybrid:
      return "hybrid";
    case EngineMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

std::string JobStats::Summary() const {
  return StringFormat(
      "supersteps=%d converged=%d modeled=%.3fs io=%s net=%s msgs=%llu",
      supersteps_run, converged ? 1 : 0, modeled_seconds,
      HumanBytes(TotalIoBytes()).c_str(), HumanBytes(TotalNetBytes()).c_str(),
      static_cast<unsigned long long>(TotalMessages()));
}

}  // namespace hybridgraph
