#include "util/codec.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hybridgraph {
namespace {

TEST(Codec, FixedWidthRoundTrip) {
  Buffer buf;
  Encoder enc(&buf);
  enc.PutU8(0xAB);
  enc.PutFixed16(0x1234);
  enc.PutFixed32(0xDEADBEEF);
  enc.PutFixed64(0x0123456789ABCDEFULL);

  Decoder dec(buf.AsSlice());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetFixed16(&u16).ok());
  ASSERT_TRUE(dec.GetFixed32(&u32).ok());
  ASSERT_TRUE(dec.GetFixed64(&u64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(Codec, LittleEndianLayout) {
  Buffer buf;
  Encoder enc(&buf);
  enc.PutFixed32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.data()[0], 0x04);
  EXPECT_EQ(buf.data()[3], 0x01);
}

TEST(Codec, VarintBoundaries) {
  const uint64_t cases[] = {0,      1,        127,        128,
                            16383,  16384,    UINT32_MAX, uint64_t{1} << 56,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    Buffer buf;
    Encoder enc(&buf);
    enc.PutVarint64(v);
    EXPECT_EQ(buf.size(), VarintLength(v)) << v;
    Decoder dec(buf.AsSlice());
    uint64_t out;
    ASSERT_TRUE(dec.GetVarint64(&out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(Codec, SignedVarintRoundTrip) {
  const int64_t cases[] = {0, -1, 1, -64, 63, INT64_MIN, INT64_MAX, -123456789};
  for (int64_t v : cases) {
    Buffer buf;
    Encoder enc(&buf);
    enc.PutSignedVarint64(v);
    Decoder dec(buf.AsSlice());
    int64_t out;
    ASSERT_TRUE(dec.GetSignedVarint64(&out).ok()) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(Codec, FloatsRoundTrip) {
  Buffer buf;
  Encoder enc(&buf);
  enc.PutFloat(3.14f);
  enc.PutDouble(-2.718281828459045);
  Decoder dec(buf.AsSlice());
  float f;
  double d;
  ASSERT_TRUE(dec.GetFloat(&f).ok());
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_FLOAT_EQ(f, 3.14f);
  EXPECT_DOUBLE_EQ(d, -2.718281828459045);
}

TEST(Codec, LengthPrefixed) {
  Buffer buf;
  Encoder enc(&buf);
  enc.PutLengthPrefixed(std::string("hello"));
  enc.PutLengthPrefixed(std::string(""));
  Decoder dec(buf.AsSlice());
  Slice a, b;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&b).ok());
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(Codec, TruncatedInputsFailCleanly) {
  Buffer buf;
  Encoder enc(&buf);
  enc.PutFixed64(42);
  // Chop one byte off.
  Decoder dec(Slice(buf.data(), buf.size() - 1));
  uint64_t out;
  EXPECT_EQ(dec.GetFixed64(&out).code(), StatusCode::kOutOfRange);

  Decoder empty{Slice()};
  uint8_t b;
  EXPECT_FALSE(empty.GetU8(&b).ok());
  uint64_t v;
  EXPECT_FALSE(empty.GetVarint64(&v).ok());
}

TEST(Codec, TruncatedVarintFails) {
  // A varint with continuation bit set but no following byte.
  uint8_t bad[] = {0x80};
  Decoder dec(Slice(bad, 1));
  uint64_t v;
  EXPECT_EQ(dec.GetVarint64(&v).code(), StatusCode::kOutOfRange);
}

TEST(Codec, OverlongVarintIsCorruption) {
  // 11 continuation bytes exceed 64 bits.
  std::vector<uint8_t> bad(11, 0x80);
  bad.push_back(0x01);
  Decoder dec{Slice(bad)};
  uint64_t v;
  EXPECT_EQ(dec.GetVarint64(&v).code(), StatusCode::kCorruption);
}

TEST(Codec, SkipAndPosition) {
  Buffer buf;
  Encoder enc(&buf);
  enc.PutFixed32(1);
  enc.PutFixed32(2);
  Decoder dec(buf.AsSlice());
  ASSERT_TRUE(dec.Skip(4).ok());
  EXPECT_EQ(dec.position(), 4u);
  uint32_t v;
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(dec.Skip(1).ok());
}

class CodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzzTest, RandomSequenceRoundTrips) {
  Rng rng(GetParam());
  constexpr int kOps = 200;
  std::vector<uint64_t> varints;
  std::vector<uint32_t> fixeds;
  std::vector<double> doubles;

  Buffer buf;
  Encoder enc(&buf);
  for (int i = 0; i < kOps; ++i) {
    const uint64_t v = rng.Next() >> (rng.Next() % 64);
    varints.push_back(v);
    enc.PutVarint64(v);
    const uint32_t f = static_cast<uint32_t>(rng.Next());
    fixeds.push_back(f);
    enc.PutFixed32(f);
    const double d = rng.NextDouble() * 1e12 - 5e11;
    doubles.push_back(d);
    enc.PutDouble(d);
  }

  Decoder dec(buf.AsSlice());
  for (int i = 0; i < kOps; ++i) {
    uint64_t v;
    uint32_t f;
    double d;
    ASSERT_TRUE(dec.GetVarint64(&v).ok());
    ASSERT_TRUE(dec.GetFixed32(&f).ok());
    ASSERT_TRUE(dec.GetDouble(&d).ok());
    EXPECT_EQ(v, varints[i]);
    EXPECT_EQ(f, fixeds[i]);
    EXPECT_DOUBLE_EQ(d, doubles[i]);
  }
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace hybridgraph
