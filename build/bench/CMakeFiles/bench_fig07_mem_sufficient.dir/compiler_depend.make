# Empty compiler generated dependencies file for bench_fig07_mem_sufficient.
# This may be replaced when dependencies are built.
