#include "util/buffer.h"

#include <gtest/gtest.h>

namespace hybridgraph {
namespace {

TEST(Slice, BasicViews) {
  const std::string s = "hello world";
  Slice a(s);
  EXPECT_EQ(a.size(), 11u);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a[0], 'h');
  EXPECT_EQ(a.ToString(), s);

  Slice sub = a.SubSlice(6, 5);
  EXPECT_EQ(sub.ToString(), "world");

  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
}

TEST(Slice, Equality) {
  const std::string a = "abc", b = "abc", c = "abd";
  EXPECT_TRUE(Slice(a) == Slice(b));
  EXPECT_FALSE(Slice(a) == Slice(c));
  EXPECT_FALSE(Slice(a) == Slice(a).SubSlice(0, 2));
  EXPECT_TRUE(Slice() == Slice());
}

TEST(Slice, FromVector) {
  std::vector<uint8_t> v = {1, 2, 3};
  Slice s(v);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[2], 3);
}

TEST(Buffer, AppendAndClear) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  b.Append("ab", 2);
  b.PushBack('c');
  b.Append(Slice("de", 2));
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.AsSlice().ToString(), "abcde");
  b.Clear();
  EXPECT_TRUE(b.empty());
}

TEST(Buffer, TakeBytesMovesOut) {
  Buffer b;
  b.Append("xyz", 3);
  std::vector<uint8_t> bytes = b.TakeBytes();
  EXPECT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 'x');
}

TEST(Buffer, ConstructFromVector) {
  Buffer b(std::vector<uint8_t>{9, 8, 7});
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data()[0], 9);
}

}  // namespace
}  // namespace hybridgraph
