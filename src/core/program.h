// The vertex-centric programming API.
//
// The paper's key structural idea (Sec 5.2) is to decouple Pregel's
// compute() into load()/update()/pushRes()/pullRes() so that one program can
// execute under push, b-pull, or a per-superstep mix. Programs here express
// exactly that decomposition:
//
//   Update(v, value, messages)  — consume messages, produce the new value and
//                                 the responding flag (setResFlag)
//   GenMessage(v, value, edge)  — produce the message for one out-edge; the
//                                 engine invokes it from pushRes() (push) or
//                                 pullRes() (b-pull) — the program cannot tell
//                                 which, which is what makes switching seamless
//   Combine(a, b)               — combiner for commutative+associative
//                                 messages (PageRank sum, SSSP min)
//
// Engines are templates over a Program type satisfying this interface; see
// algos/ for the four paper algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "util/codec.h"

namespace hybridgraph {

/// Per-superstep information available to Update/GenMessage.
struct SuperstepContext {
  int superstep = 0;
  uint64_t num_vertices = 0;
  /// Global aggregate computed at the previous superstep's barrier (0 until
  /// the program's first contributions land); see core/aggregators.h.
  double prev_aggregate = 0.0;
};

/// Returned by Program::Update.
struct UpdateResult {
  /// The vertex value changed (drives convergence for traversal algorithms).
  bool changed = false;
  /// setResFlag: this vertex must send messages to its out-neighbors — under
  /// push they go out this superstep, under b-pull they are pulled next one.
  bool respond = false;
};

/// Fixed-size POD codec helper: memcpy-based encode/decode used by programs
/// whose Value/Message are trivially copyable.
template <typename T>
struct PodCodec {
  static constexpr size_t kSize = sizeof(T);
  static void Encode(const T& v, uint8_t* out) { std::memcpy(out, &v, sizeof(T)); }
  static T Decode(const uint8_t* in) {
    T v;
    std::memcpy(&v, in, sizeof(T));
    return v;
  }
};

// A Program must provide:
//
//   using Value = <POD>;
//   using Message = <POD>;
//   static constexpr bool kCombinable;     // Combine() is valid
//   static constexpr bool kAlwaysActive;   // every vertex updates+responds
//                                          // every superstep (PageRank, LPA)
//   static constexpr size_t kValueSize = sizeof(Value);
//   static constexpr size_t kMessageSize = sizeof(Message);
//
//   Value InitValue(VertexId v, const SuperstepContext&) const;
//   bool InitActive(VertexId v) const;     // participates in superstep 0
//   UpdateResult Update(VertexId v, Value* value,
//                       const std::vector<Message>& msgs,
//                       const SuperstepContext&) const;
//   Message GenMessage(VertexId src, const Value& value, uint32_t out_degree,
//                      const Edge& e, const SuperstepContext&) const;
//   static Message Combine(const Message& a, const Message& b);  // if combinable
//
// Optionally (used by the MOCgraph pushM engine for online computing):
//   static constexpr bool kOnlineApplicable = kCombinable;

/// Compile-time sanity checks applied by every engine.
template <typename P>
constexpr void StaticCheckProgram() {
  static_assert(std::is_trivially_copyable_v<typename P::Value>,
                "Program::Value must be trivially copyable");
  static_assert(std::is_trivially_copyable_v<typename P::Message>,
                "Program::Message must be trivially copyable");
  static_assert(P::kValueSize == sizeof(typename P::Value));
  static_assert(P::kMessageSize == sizeof(typename P::Message));
}

}  // namespace hybridgraph
