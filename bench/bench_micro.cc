// Micro-benchmarks (google-benchmark) of the substrate hot paths: codec,
// message batch encode/decode, storage access, spill merge, and Eblock scan.
#include <benchmark/benchmark.h>

#include "graph/generator.h"
#include "graph/ve_block_store.h"
#include "io/message_spill.h"
#include "io/storage.h"
#include "net/message_codec.h"
#include "util/codec.h"
#include "util/rng.h"

namespace hybridgraph {
namespace {

void BM_VarintEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(1024);
  for (auto& v : values) v = rng.Next() >> (rng.Next() % 64);
  Buffer buf;
  for (auto _ : state) {
    buf.Clear();
    Encoder enc(&buf);
    for (uint64_t v : values) enc.PutVarint64(v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncode);

void BM_VarintDecode(benchmark::State& state) {
  Rng rng(1);
  Buffer buf;
  Encoder enc(&buf);
  constexpr int kN = 1024;
  for (int i = 0; i < kN; ++i) enc.PutVarint64(rng.Next() >> (rng.Next() % 64));
  for (auto _ : state) {
    Decoder dec(buf.AsSlice());
    uint64_t v;
    for (int i = 0; i < kN; ++i) {
      benchmark::DoNotOptimize(dec.GetVarint64(&v));
    }
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_VarintDecode);

void BM_FlatBatchRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> msgs;
  std::vector<uint8_t> payload(8, 0xAB);
  for (int i = 0; i < n; ++i) msgs.emplace_back(i * 7, payload);
  for (auto _ : state) {
    Buffer buf;
    FlatBatchCodec::Encode(msgs, 8, &buf);
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> out;
    benchmark::DoNotOptimize(FlatBatchCodec::Decode(buf.AsSlice(), 8, &out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatBatchRoundTrip)->Arg(256)->Arg(4096);

void BM_MemStorageReadRange(benchmark::State& state) {
  MemStorage storage;
  std::vector<uint8_t> blob(1 << 20, 7);
  (void)storage.Write("k", Slice(blob), IoClass::kSeqWrite);
  Rng rng(3);
  for (auto _ : state) {
    const uint64_t off = rng.NextBounded((1 << 20) - 16);
    benchmark::DoNotOptimize(storage.Read(
        "k", {.offset = off, .length = 16, .io_class = IoClass::kRandRead}));
  }
}
BENCHMARK(BM_MemStorageReadRange);

void BM_SpillMerge(benchmark::State& state) {
  const int runs = 8;
  const int per_run = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    MemStorage storage;
    MessageSpill spill(&storage, "b", 8);
    Rng rng(5);
    std::vector<uint8_t> payload(8, 1);
    for (int r = 0; r < runs; ++r) {
      std::vector<SpillEntry> entries;
      entries.reserve(per_run);
      for (int i = 0; i < per_run; ++i) {
        entries.push_back({static_cast<uint32_t>(rng.NextBounded(10000)),
                           payload});
      }
      (void)spill.SpillRun(std::move(entries));
    }
    state.ResumeTiming();
    std::vector<SpillEntry> out;
    benchmark::DoNotOptimize(spill.MergeReadAll(&out));
  }
  state.SetItemsProcessed(state.iterations() * runs * per_run);
}
BENCHMARK(BM_SpillMerge)->Arg(1000)->Arg(10000);

void BM_EblockScan(benchmark::State& state) {
  const auto graph = GeneratePowerLaw(5000, 12.0, 0.8, 9);
  auto partition = RangePartition::CreateUniform(5000, 2, 8).ValueOrDie();
  std::vector<RawEdge> local;
  for (const auto& e : graph.edges) {
    if (partition.NodeOf(e.src) == 0) local.push_back(e);
  }
  MemStorage storage;
  auto store = VeBlockStore::Build(&storage, partition, 0, local,
                                   graph.InDegrees())
                   .ValueOrDie();
  VeBlockStore::ScanResult scan;
  for (auto _ : state) {
    for (uint32_t svb = 0; svb < 8; ++svb) {
      for (uint32_t dvb = 0; dvb < 16; ++dvb) {
        benchmark::DoNotOptimize(store->ScanEblock(svb, dvb, &scan));
      }
    }
  }
}
BENCHMARK(BM_EblockScan);

}  // namespace
}  // namespace hybridgraph

BENCHMARK_MAIN();
