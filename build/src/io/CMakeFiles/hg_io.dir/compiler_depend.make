# Empty compiler generated dependencies file for hg_io.
# This may be replaced when dependencies are built.
