// Fixed-capacity LRU cache used by the v-pull engine's disk-resident vertex
// table (the paper extends GraphLab PowerGraph with exactly this: "The LRU
// replacing strategy is used to manage vertices").
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

namespace hybridgraph {

/// \brief LRU map with eviction callback (invoked with key/value of the
/// evicted entry, and whether it was marked dirty).
template <typename K, typename V>
class LruCache {
 public:
  using EvictFn = std::function<void(const K&, const V&, bool dirty)>;

  explicit LruCache(size_t capacity, EvictFn on_evict = nullptr)
      : capacity_(capacity), on_evict_(std::move(on_evict)) {}

  /// Returns the cached value or nullptr.
  V* Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return &it->second->value;
  }

  /// Inserts (or overwrites) an entry, evicting the LRU one when full.
  void Put(const K& key, V value, bool dirty) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->value = std::move(value);
      it->second->dirty = it->second->dirty || dirty;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (capacity_ == 0) {
      if (on_evict_) on_evict_(key, value, dirty);
      return;
    }
    if (map_.size() >= capacity_) {
      EvictOne();
    }
    order_.push_front(Entry{key, std::move(value), dirty});
    map_[key] = order_.begin();
  }

  /// Marks an existing entry dirty; no-op if absent.
  void MarkDirty(const K& key) {
    auto it = map_.find(key);
    if (it != map_.end()) it->second->dirty = true;
  }

  /// Evicts everything (flushing dirty entries through the callback).
  void Flush() {
    while (!map_.empty()) EvictOne();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void RecordMiss() { ++misses_; }

 private:
  struct Entry {
    K key;
    V value;
    bool dirty;
  };

  void EvictOne() {
    Entry& victim = order_.back();
    if (on_evict_) on_evict_(victim.key, victim.value, victim.dirty);
    map_.erase(victim.key);
    order_.pop_back();
  }

  size_t capacity_;
  EvictFn on_evict_;
  std::list<Entry> order_;
  std::unordered_map<K, typename std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace hybridgraph
