#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hybridgraph {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Instance().DisarmAll(); }
};

TEST_F(FailPointTest, UnarmedSiteIsOk) {
  EXPECT_TRUE(FailPointCheck("never.armed").ok());
  EXPECT_FALSE(FailPointRegistry::Instance().any_armed());
}

TEST_F(FailPointTest, ParseSingleEntry) {
  std::vector<std::pair<std::string, FailPointSpec>> specs;
  ASSERT_TRUE(ParseFailPointList("storage.write=error", &specs).ok());
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].first, "storage.write");
  EXPECT_EQ(specs[0].second.action, FailPointAction::kError);
  EXPECT_DOUBLE_EQ(specs[0].second.probability, 1.0);
}

TEST_F(FailPointTest, ParseFullGrammar) {
  std::vector<std::pair<std::string, FailPointSpec>> specs;
  ASSERT_TRUE(ParseFailPointList(
                  "storage.write=error:p=0.25,seed=9,code=corruption;"
                  "tcp.drop=error:max=2,code=net;"
                  "spill.flush=delay:us=50;"
                  "ckpt.write=crash:after=3",
                  &specs)
                  .ok());
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_DOUBLE_EQ(specs[0].second.probability, 0.25);
  EXPECT_EQ(specs[0].second.seed, 9u);
  EXPECT_EQ(specs[0].second.error_code, StatusCode::kCorruption);
  EXPECT_EQ(specs[1].second.max_fires, 2u);
  EXPECT_EQ(specs[1].second.error_code, StatusCode::kNetworkError);
  EXPECT_EQ(specs[2].second.action, FailPointAction::kDelay);
  EXPECT_EQ(specs[2].second.delay_us, 50u);
  EXPECT_EQ(specs[3].second.action, FailPointAction::kCrash);
  EXPECT_EQ(specs[3].second.crash_after_hits, 3u);
}

TEST_F(FailPointTest, ParseRejectsGarbage) {
  std::vector<std::pair<std::string, FailPointSpec>> specs;
  EXPECT_FALSE(ParseFailPointList("nosite", &specs).ok());
  EXPECT_FALSE(ParseFailPointList("site=explode", &specs).ok());
  EXPECT_FALSE(ParseFailPointList("site=error:p=two", &specs).ok());
  EXPECT_FALSE(ParseFailPointList("site=error:p=1.5", &specs).ok());
  EXPECT_FALSE(ParseFailPointList("site=error:code=weird", &specs).ok());
  EXPECT_FALSE(ParseFailPointList("site=error:bogus=1", &specs).ok());
  EXPECT_FALSE(ParseFailPointList("=error", &specs).ok());
}

TEST_F(FailPointTest, EmptyStringArmsNothing) {
  std::vector<std::pair<std::string, FailPointSpec>> specs;
  ASSERT_TRUE(ParseFailPointList("", &specs).ok());
  EXPECT_TRUE(specs.empty());
  ASSERT_TRUE(FailPointRegistry::Instance().ArmFromString("").ok());
  EXPECT_FALSE(FailPointRegistry::Instance().any_armed());
}

TEST_F(FailPointTest, ErrorActionReturnsConfiguredCode) {
  FailPointSpec spec;
  spec.action = FailPointAction::kError;
  spec.error_code = StatusCode::kNetworkError;
  FailPointScope scope("site.a", spec);
  Status st = FailPointCheck("site.a");
  EXPECT_EQ(st.code(), StatusCode::kNetworkError);
  EXPECT_TRUE(FailPointCheck("site.b").ok());  // other sites unaffected
}

TEST_F(FailPointTest, MaxFiresCapsInjections) {
  FailPointSpec spec;
  spec.max_fires = 3;
  FailPointScope scope("site.max", spec);
  int failures = 0;
  for (int i = 0; i < 10; ++i) failures += !FailPointCheck("site.max").ok();
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(FailPointRegistry::Instance().hits("site.max"), 10u);
  EXPECT_EQ(FailPointRegistry::Instance().fires("site.max"), 3u);
}

TEST_F(FailPointTest, ProbabilityScheduleIsDeterministic) {
  FailPointSpec spec;
  spec.probability = 0.5;
  spec.seed = 1234;
  auto schedule = [&spec]() {
    FailPointScope scope("site.p", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!FailPointCheck("site.p").ok());
    return fired;
  };
  const auto a = schedule();
  const auto b = schedule();  // re-arm restarts the identical stream
  EXPECT_EQ(a, b);
  int fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 8);  // p=0.5 over 64 hits: wildly improbable to leave [9,55]
  EXPECT_LT(fires, 56);

  spec.seed = 99;  // a different seed must give a different schedule
  FailPointScope scope("site.p", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 64; ++i) fired.push_back(!FailPointCheck("site.p").ok());
  EXPECT_NE(a, fired);
}

TEST_F(FailPointTest, SameSeedDifferentSitesDiverge) {
  FailPointSpec spec;
  spec.probability = 0.5;
  spec.seed = 7;
  FailPointScope s1("site.one", spec);
  FailPointScope s2("site.two", spec);
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(!FailPointCheck("site.one").ok());
    b.push_back(!FailPointCheck("site.two").ok());
  }
  EXPECT_NE(a, b);  // site name is mixed into the stream seed
}

TEST_F(FailPointTest, CrashFiresAfterNHits) {
  FailPointSpec spec;
  spec.action = FailPointAction::kCrash;
  spec.crash_after_hits = 3;
  FailPointScope scope("site.crash", spec);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(FailPointCheck("site.crash").ok()) << "hit " << i;
  }
  Status st = FailPointCheck("site.crash");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(IsInjectedCrash(st));
  EXPECT_FALSE(IsInjectedCrash(Status::Internal("some other internal error")));
  EXPECT_FALSE(IsInjectedCrash(Status::IoError("injected crash")));
  EXPECT_FALSE(IsInjectedCrash(Status::OK()));
}

TEST_F(FailPointTest, DelayActionSucceeds) {
  FailPointSpec spec;
  spec.action = FailPointAction::kDelay;
  spec.delay_us = 1;
  FailPointScope scope("site.delay", spec);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(FailPointCheck("site.delay").ok());
  EXPECT_EQ(FailPointRegistry::Instance().fires("site.delay"), 5u);
}

TEST_F(FailPointTest, ScopeDisarmsOnDestruction) {
  {
    FailPointScope scope("site.scoped=error");
    ASSERT_TRUE(scope.status().ok());
    EXPECT_FALSE(FailPointCheck("site.scoped").ok());
  }
  EXPECT_TRUE(FailPointCheck("site.scoped").ok());
  EXPECT_FALSE(FailPointRegistry::Instance().any_armed());
}

TEST_F(FailPointTest, ScopeReportsParseError) {
  FailPointScope scope("site.bad=frobnicate");
  EXPECT_FALSE(scope.status().ok());
  EXPECT_TRUE(FailPointCheck("site.bad").ok());  // nothing was armed
}

TEST_F(FailPointTest, TotalFiresInvariantUnderThreads) {
  // With p=1 and max=10, exactly 10 of the 64 total hits fire no matter how
  // the 8 threads interleave.
  FailPointSpec spec;
  spec.max_fires = 10;
  FailPointScope scope("site.mt", spec);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&failures]() {
      for (int i = 0; i < 8; ++i) {
        if (!FailPointCheck("site.mt").ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 10);
  EXPECT_EQ(FailPointRegistry::Instance().hits("site.mt"), 64u);
}

}  // namespace
}  // namespace hybridgraph
