// Pregel-style global aggregators.
//
// A program may opt in by defining:
//
//   static constexpr bool kHasAggregator = true;
//   double AggregateContribution(VertexId v, const Value& old_value,
//                                const Value& new_value,
//                                const SuperstepContext& ctx) const;
//   bool ShouldHalt(double aggregate) const;   // optional early stop
//
// The engine sums contributions from every updated vertex during a
// superstep, combines them across nodes at the barrier (the control traffic
// is metered like everything else), and exposes the result to the *next*
// superstep via SuperstepContext::prev_aggregate — standard BSP aggregator
// semantics. ShouldHalt (evaluated at the barrier with the fresh global sum)
// lets algorithms like delta-PageRank converge without a fixed superstep
// count.
#pragma once

#include <type_traits>

#include "graph/types.h"

namespace hybridgraph {

/// Detects the aggregator opt-in.
template <typename P>
concept HasAggregator = requires { requires P::kHasAggregator; };

/// Detects the optional aggregate-based halting rule.
template <typename P>
concept HasAggregateHalt = HasAggregator<P> && requires(const P& p, double a) {
  { p.ShouldHalt(a) } -> std::convertible_to<bool>;
};

/// Bytes of control traffic one node's aggregate contribution costs on the
/// wire (value + frame accounting is handled by the transport).
constexpr size_t kAggregateWireBytes = 8;

}  // namespace hybridgraph
