// End-to-end smoke: every engine mode runs PageRank and SSSP on a small
// graph and produces identical results.
#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/engine.h"
#include "core/vpull_engine.h"
#include "graph/generator.h"

namespace hybridgraph {
namespace {

EdgeListGraph SmallGraph() { return GeneratePowerLaw(500, 8.0, 0.7, 7); }

template <typename P>
std::vector<typename P::Value> RunMode(EngineMode mode, P program,
                                       int max_supersteps,
                                       uint64_t buffer = 50) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = buffer;
  cfg.max_supersteps = max_supersteps;
  Engine<P> engine(cfg, program);
  auto g = SmallGraph();
  EXPECT_TRUE(engine.Load(g).ok());
  EXPECT_TRUE(engine.Run().ok());
  auto values = engine.GatherValues();
  EXPECT_TRUE(values.ok());
  return std::move(values).ValueOrDie();
}

TEST(Smoke, PageRankModesAgree) {
  PageRankProgram pr;
  auto push = RunMode(EngineMode::kPush, pr, 5);
  auto pushm = RunMode(EngineMode::kPushM, pr, 5);
  auto bpull = RunMode(EngineMode::kBPull, pr, 5);
  auto hybrid = RunMode(EngineMode::kHybrid, pr, 5);
  ASSERT_EQ(push.size(), bpull.size());
  for (size_t i = 0; i < push.size(); ++i) {
    EXPECT_NEAR(push[i], bpull[i], 1e-9) << i;
    EXPECT_NEAR(push[i], pushm[i], 1e-9) << i;
    EXPECT_NEAR(push[i], hybrid[i], 1e-9) << i;
  }
  // Rank mass leaks through dangling vertices (standard Pregel PageRank);
  // it must stay positive and bounded by 1.
  double sum = 0;
  for (double v : push) sum += v;
  EXPECT_GT(sum, 0.2);
  EXPECT_LE(sum, 1.0 + 1e-9);
}

template <typename P>
std::vector<typename P::Value> RunVPull(P program, int max_supersteps,
                                        uint64_t cache = 100) {
  JobConfig cfg;
  cfg.mode = EngineMode::kVPull;
  cfg.num_nodes = 4;
  cfg.vpull_vertex_cache = cache;
  cfg.max_supersteps = max_supersteps;
  VPullEngine<P> engine(cfg, program);
  auto g = SmallGraph();
  EXPECT_TRUE(engine.Load(g).ok());
  EXPECT_TRUE(engine.Run().ok());
  auto values = engine.GatherValues();
  EXPECT_TRUE(values.ok());
  return std::move(values).ValueOrDie();
}

TEST(Smoke, VPullMatchesPush) {
  PageRankProgram pr;
  auto push = RunMode(EngineMode::kPush, pr, 5);
  auto vpull = RunVPull(pr, 5);
  ASSERT_EQ(push.size(), vpull.size());
  for (size_t i = 0; i < push.size(); ++i) {
    EXPECT_NEAR(push[i], vpull[i], 1e-9) << i;
  }
  SsspProgram sssp;
  sssp.source = 3;
  auto push_d = RunMode(EngineMode::kPush, sssp, 60);
  auto vpull_d = RunVPull(sssp, 60);
  for (size_t i = 0; i < push_d.size(); ++i) {
    EXPECT_EQ(push_d[i], vpull_d[i]) << i;
  }
}

TEST(Smoke, SsspModesAgree) {
  SsspProgram sssp;
  sssp.source = 3;
  auto push = RunMode(EngineMode::kPush, sssp, 60);
  auto bpull = RunMode(EngineMode::kBPull, sssp, 60);
  auto hybrid = RunMode(EngineMode::kHybrid, sssp, 60);
  ASSERT_EQ(push.size(), bpull.size());
  int reached = 0;
  for (size_t i = 0; i < push.size(); ++i) {
    EXPECT_EQ(push[i], bpull[i]) << i;
    EXPECT_EQ(push[i], hybrid[i]) << i;
    if (push[i] < SsspProgram::kInf) ++reached;
  }
  EXPECT_GT(reached, 10);
}

}  // namespace
}  // namespace hybridgraph
