// ReadPipeline: staged readahead must be invisible to the I/O model — every
// test here pairs a pipelined read sequence against the plain synchronous
// sequence and expects identical metering — while the pipeline's own
// bookkeeping (hits, misses, evictions, invalidation, cancellation) is
// exercised directly.
#include "io/prefetch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/message_spill.h"
#include "io/storage.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace hybridgraph {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class PrefetchTest : public ::testing::Test {
 protected:
  void Put(const std::string& key, const std::string& data) {
    ASSERT_TRUE(
        storage_.Write(key, Slice(Bytes(data)), IoClass::kSeqWrite).ok());
  }

  MemStorage storage_;
  ThreadPool pool_{2};
};

TEST_F(PrefetchTest, DisabledPipelineIsPlainSyncRead) {
  Put("k", "hello");
  ReadPipeline off(&storage_, &pool_, /*depth=*/0, /*budget_bytes=*/1 << 20);
  EXPECT_FALSE(off.enabled());
  off.Schedule("k", {.io_class = IoClass::kSeqRead});  // no-op
  auto r = off.Fetch("k", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Bytes("hello"));
  const auto stats = off.DrainStats();
  EXPECT_EQ(stats.scheduled, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST_F(PrefetchTest, HitServesStagedBytesAndMetersAtConsumption) {
  Put("k", "0123456789");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  ASSERT_TRUE(pipe.enabled());
  const uint64_t writes = storage_.meter()->WriteBytes();

  const ReadOptions opts{.offset = 2, .length = 5,
                         .io_class = IoClass::kRandRead};
  pipe.Schedule("k", opts);
  // The background read moves bytes but must not meter anything...
  // (poll-free check: metering happens only in Fetch, so the meter may not
  // change until then no matter how long the staged read has been done).
  auto r = pipe.Fetch("k", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Bytes("23456"));
  EXPECT_EQ(r->blob_size, 10u);
  // ...and Fetch charges exactly what the sync read would have.
  EXPECT_EQ(storage_.meter()->ReadBytes(), 5u);
  EXPECT_EQ(storage_.meter()->WriteBytes(), writes);
  EXPECT_EQ(storage_.meter()->ops(IoClass::kRandRead), 1u);

  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.scheduled, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.hit_bytes, 5u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST_F(PrefetchTest, MissFallsBackToSyncRead) {
  Put("k", "abc");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  auto r = pipe.Fetch("k", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Bytes("abc"));
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(PrefetchTest, ShapeMismatchDropsStagedEntryAndReadsSync) {
  Put("k", "0123456789");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  pipe.Schedule("k", {.offset = 0, .length = 4, .io_class = IoClass::kSeqRead});
  // Same key+offset, different length: staged bytes are useless.
  auto r = pipe.Fetch("k", {.offset = 0, .length = 8,
                            .io_class = IoClass::kSeqRead});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Bytes("01234567"));
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.scheduled, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(PrefetchTest, DepthBoundEvictsOldest) {
  Put("a", "aaaa");
  Put("b", "bbbb");
  ReadPipeline pipe(&storage_, &pool_, /*depth=*/1, 1 << 20);
  pipe.Schedule("a", {.io_class = IoClass::kSeqRead});
  pipe.Schedule("b", {.io_class = IoClass::kSeqRead});  // evicts "a"
  auto ra = pipe.Fetch("a", {.io_class = IoClass::kSeqRead});
  auto rb = pipe.Fetch("b", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->data, Bytes("aaaa"));
  EXPECT_EQ(rb->data, Bytes("bbbb"));
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.scheduled, 2u);
  EXPECT_EQ(stats.hits, 1u);    // only "b" survived
  EXPECT_EQ(stats.misses, 1u);  // "a" was evicted
}

TEST_F(PrefetchTest, ByteBudgetEvictsOldestAndRejectsOversized) {
  Put("a", std::string(600, 'a'));
  Put("b", std::string(600, 'b'));
  Put("huge", std::string(5000, 'h'));
  ReadPipeline pipe(&storage_, &pool_, /*depth=*/8, /*budget_bytes=*/1000);
  pipe.Schedule("huge", {.io_class = IoClass::kSeqRead});  // alone over budget
  pipe.Schedule("a", {.io_class = IoClass::kSeqRead});
  pipe.Schedule("b", {.io_class = IoClass::kSeqRead});  // 1200 > 1000: evict a
  auto ra = pipe.Fetch("a", {.io_class = IoClass::kSeqRead});
  auto rb = pipe.Fetch("b", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.scheduled, 2u);  // "huge" never staged
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(PrefetchTest, DuplicateScheduleIsIgnored) {
  Put("k", "abcd");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  pipe.Schedule("k", {.io_class = IoClass::kSeqRead});
  pipe.Schedule("k", {.io_class = IoClass::kSeqRead});
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.scheduled, 1u);
}

TEST_F(PrefetchTest, WriteInvalidatesStagedKey) {
  Put("k", "old-bytes");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  pipe.Schedule("k", {.io_class = IoClass::kSeqRead});
  Put("k", "new-bytes!");  // mutation observer must drop the staged entry
  auto r = pipe.Fetch("k", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, Bytes("new-bytes!"));  // never pre-mutation bytes
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(PrefetchTest, DeleteInvalidatesStagedKey) {
  Put("k", "doomed");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  pipe.Schedule("k", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(storage_.Delete("k").ok());
  auto r = pipe.Fetch("k", {.io_class = IoClass::kSeqRead});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(PrefetchTest, CancelAllDropsEveryStagedEntry) {
  Put("a", "aa");
  Put("b", "bb");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  pipe.Schedule("a", {.io_class = IoClass::kSeqRead});
  pipe.Schedule("b", {.io_class = IoClass::kSeqRead});
  pipe.CancelAll();
  ASSERT_TRUE(pipe.Fetch("a", {.io_class = IoClass::kSeqRead}).ok());
  ASSERT_TRUE(pipe.Fetch("b", {.io_class = IoClass::kSeqRead}).ok());
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(PrefetchTest, MeteringIdenticalToSyncSequence) {
  // The determinism contract: an interleaved schedule/fetch sequence leaves
  // the meter AND the page cache in exactly the state the synchronous
  // sequence produces — including LRU evolution with a bounded cache.
  auto run = [](bool prefetch) {
    MemStorage storage;
    storage.EnablePageCache(12);  // holds one small blob: eviction matters
    ThreadPool pool(2);
    ReadPipeline pipe(&storage, &pool, prefetch ? 4 : 0, 1 << 20);
    EXPECT_TRUE(
        storage.Write("x", Slice(Bytes("xxxxxxxxxx")), IoClass::kSeqWrite)
            .ok());
    EXPECT_TRUE(
        storage.Write("y", Slice(Bytes("yyyyyyyy")), IoClass::kSeqWrite).ok());
    const std::string keys[] = {"x", "y", "x", "x", "y"};
    std::vector<bool> cache_hits;
    for (const auto& k : keys) {
      const ReadOptions opts{.io_class = IoClass::kSeqRead};
      if (prefetch) pipe.Schedule(k, opts);
      auto r = pipe.Fetch(k, opts);
      EXPECT_TRUE(r.ok());
      cache_hits.push_back(r->cache_hit);
    }
    struct Snapshot {
      uint64_t seq_bytes, seq_cached, rand_bytes, ops;
      std::vector<bool> cache_hits;
    };
    return Snapshot{storage.meter()->bytes(IoClass::kSeqRead),
                    storage.meter()->cached_bytes(IoClass::kSeqRead),
                    storage.meter()->bytes(IoClass::kRandRead),
                    storage.meter()->ops(IoClass::kSeqRead), cache_hits};
  };
  const auto sync = run(false);
  const auto staged = run(true);
  EXPECT_EQ(sync.seq_bytes, staged.seq_bytes);
  EXPECT_EQ(sync.seq_cached, staged.seq_cached);
  EXPECT_EQ(sync.rand_bytes, staged.rand_bytes);
  EXPECT_EQ(sync.ops, staged.ops);
  EXPECT_EQ(sync.cache_hits, staged.cache_hits);
}

TEST_F(PrefetchTest, SpanSinkSeesPrefetchSpanWithContext) {
  Put("k", "span-bytes");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  struct Seen {
    std::string name;
    int superstep = -1, mode = -1;
    uint64_t start = 0, end = 0;
    int count = 0;
  } seen;
  pipe.SetSpanSink([&seen](const char* name, int superstep, int mode,
                           uint64_t start_us, uint64_t end_us) {
    seen = {name, superstep, mode, start_us, end_us, seen.count + 1};
  });
  pipe.SetContext(/*superstep=*/3, /*mode=*/2);
  pipe.Schedule("k", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(pipe.Fetch("k", {.io_class = IoClass::kSeqRead}).ok());
  EXPECT_EQ(seen.count, 1);
  EXPECT_EQ(seen.name, "io.prefetch");
  EXPECT_EQ(seen.superstep, 3);
  EXPECT_EQ(seen.mode, 2);
  EXPECT_GE(seen.end, seen.start);
}

// ------------------------------------------------------------ fail points

TEST_F(PrefetchTest, InjectedErrorFallsBackToSyncRead) {
  Put("k", "resilient");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  {
    FailPointScope fp("io.prefetch=error:p=1");
    ASSERT_TRUE(fp.status().ok());
    pipe.Schedule("k", {.io_class = IoClass::kSeqRead});
    auto r = pipe.Fetch("k", {.io_class = IoClass::kSeqRead});
    ASSERT_TRUE(r.ok());  // staged read failed; sync fallback served it
    EXPECT_EQ(r->data, Bytes("resilient"));
  }
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.fallbacks, 1u);
  EXPECT_EQ(stats.hits, 0u);
  // The fallback still metered the read exactly once.
  EXPECT_EQ(storage_.meter()->ReadBytes(), 9u);
}

TEST_F(PrefetchTest, InjectedDelayStillHits) {
  Put("k", "slow-disk");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  {
    FailPointScope fp("io.prefetch=delay:us=2000,p=1");
    ASSERT_TRUE(fp.status().ok());
    pipe.Schedule("k", {.io_class = IoClass::kSeqRead});
    auto r = pipe.Fetch("k", {.io_class = IoClass::kSeqRead});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->data, Bytes("slow-disk"));
  }
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST_F(PrefetchTest, InjectedCrashPropagatesFromFetch) {
  Put("k", "torn");
  ReadPipeline pipe(&storage_, &pool_, 4, 1 << 20);
  FailPointScope fp("io.prefetch=crash:p=1");
  ASSERT_TRUE(fp.status().ok());
  pipe.Schedule("k", {.io_class = IoClass::kSeqRead});
  auto r = pipe.Fetch("k", {.io_class = IoClass::kSeqRead});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(IsInjectedCrash(r.status()));  // crashes surface, no fallback
}

// ------------------------------------------------- spill-merge integration

TEST_F(PrefetchTest, SpillClearCancelsStagedRunChunks) {
  MessageSpill spill(&storage_, "sp", /*payload_size=*/4);
  std::vector<SpillEntry> run;
  for (uint32_t i = 0; i < 32; ++i) {
    run.push_back({i, std::vector<uint8_t>(4, uint8_t(i))});
  }
  ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
  const std::vector<std::string> run_keys = storage_.ListKeys("sp/");
  ASSERT_FALSE(run_keys.empty());

  ReadPipeline pipe(&storage_, &pool_, 8, 1 << 20);
  spill.WarmupMerge(/*buffer_bytes_per_run=*/64, &pipe);
  EXPECT_EQ(pipe.DrainStats().scheduled, run_keys.size());

  ASSERT_TRUE(spill.Clear().ok());  // deletes run blobs -> staged drops
  for (const auto& key : run_keys) {
    auto r = pipe.Fetch(key, {.offset = 8, .length = 64, .allow_short = true,
                              .io_class = IoClass::kSeqRead});
    // Stale pre-Clear bytes must never come back.
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound) << key;
  }
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, run_keys.size());
}

TEST_F(PrefetchTest, WarmupMergeChunksHitOnFirstRefill) {
  MessageSpill spill(&storage_, "sp", /*payload_size=*/4);
  for (int r = 0; r < 3; ++r) {
    std::vector<SpillEntry> run;
    for (uint32_t i = 0; i < 64; ++i) {
      run.push_back({i * 3 + uint32_t(r), std::vector<uint8_t>(4, uint8_t(r))});
    }
    ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
  }
  ReadPipeline pipe(&storage_, &pool_, 8, 1 << 20);
  constexpr uint64_t kBuf = 64;
  spill.WarmupMerge(kBuf, &pipe);
  EXPECT_EQ(pipe.DrainStats().scheduled, 3u);

  auto it = spill.NewMergeIterator(kBuf, &pipe).ValueOrDie();
  uint64_t n = 0;
  while (it->Valid()) {
    ++n;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(n, 3u * 64u);
  // The opening Refill of every run was served from the warmup chunks, and
  // the merge's own double buffering covered every later refill: a shape
  // mismatch anywhere would show up as a miss.
  const auto stats = pipe.DrainStats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_GE(stats.hits, 3u);
}

}  // namespace
}  // namespace hybridgraph
