#include "io/storage.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hybridgraph {

namespace fs = std::filesystem;

namespace {

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------- AsyncReadHandle

bool AsyncReadHandle::Poll() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

Result<ReadResult> AsyncReadHandle::Take() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  return std::move(result_);
}

void AsyncReadHandle::Cancel() {
  cancelled_.store(true, std::memory_order_release);
}

void AsyncReadHandle::Complete(Result<ReadResult> r, uint64_t start_us,
                               uint64_t end_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  result_ = std::move(r);
  start_us_ = start_us;
  end_us_ = end_us;
  done_ = true;
  cv_.notify_all();
}

// ----------------------------------------------------- page cache (in base)

bool StorageService::CacheLookupOrInsert(const std::string& key,
                                         uint64_t blob_size) {
  if (page_cache_capacity_ == 0) return false;
  auto it = cache_map_.find(key);
  if (it != cache_map_.end()) {
    cache_order_.splice(cache_order_.begin(), cache_order_, it->second);
    return true;
  }
  CacheInsert(key, blob_size);
  return false;
}

void StorageService::CacheInsert(const std::string& key, uint64_t blob_size) {
  if (page_cache_capacity_ == 0 || blob_size > page_cache_capacity_) return;
  auto it = cache_map_.find(key);
  if (it != cache_map_.end()) {
    page_cache_used_ -= it->second->second;
    it->second->second = blob_size;
    page_cache_used_ += blob_size;
    cache_order_.splice(cache_order_.begin(), cache_order_, it->second);
  } else {
    cache_order_.emplace_front(key, blob_size);
    cache_map_[key] = cache_order_.begin();
    page_cache_used_ += blob_size;
  }
  CacheEvictToFit();
}

void StorageService::CacheEvictToFit() {
  while (page_cache_used_ > page_cache_capacity_ && !cache_order_.empty()) {
    auto& victim = cache_order_.back();
    page_cache_used_ -= victim.second;
    cache_map_.erase(victim.first);
    cache_order_.pop_back();
  }
}

void StorageService::DropFromCache(const std::string& key) {
  auto it = cache_map_.find(key);
  if (it == cache_map_.end()) return;
  page_cache_used_ -= it->second->second;
  cache_order_.erase(it->second);
  cache_map_.erase(it);
}

void StorageService::NotifyMutation(const std::string& key) {
  if (mutation_observer_) mutation_observer_(key);
}

void StorageService::SetMutationObserver(
    std::function<void(const std::string&)> observer) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  mutation_observer_ = std::move(observer);
}

// ------------------------------------------------------------- read surface

Result<ReadResult> StorageService::ReadImpl(const std::string& key,
                                            const ReadOptions& opts) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (!Exists(key)) return Status::NotFound("no blob: " + key);
  const uint64_t size = SizeOf(key);
  uint64_t len;
  if (opts.length == kReadAll) {
    len = opts.offset >= size ? 0 : size - opts.offset;
  } else if (opts.offset > size || opts.length > size - opts.offset) {
    if (!opts.allow_short) {
      return Status::OutOfRange(StringFormat(
          "read [%llu,%llu) past blob size %llu of %s",
          static_cast<unsigned long long>(opts.offset),
          static_cast<unsigned long long>(opts.offset + opts.length),
          static_cast<unsigned long long>(size), key.c_str()));
    }
    len = opts.offset >= size ? 0 : size - opts.offset;
  } else {
    len = opts.length;
  }
  ReadResult res;
  res.blob_size = size;
  HG_RETURN_IF_ERROR(ReadRawLocked(key, opts.offset, len, &res.data));
  if (opts.metering) res.cache_hit = MeterRead(key, size, len, opts.io_class);
  return res;
}

Result<ReadResult> StorageService::Read(const std::string& key,
                                        const ReadOptions& opts) {
  // Fail-point first, before the storage lock: an injected delay stalls this
  // reader only, never serializing concurrent readers behind the lock.
  HG_FAIL_POINT("storage.read");
  return ReadImpl(key, opts);
}

std::shared_ptr<AsyncReadHandle> StorageService::ReadAsync(
    const std::string& key, ReadOptions opts, ThreadPool* pool) {
  auto handle = std::make_shared<AsyncReadHandle>();
  // The background stage only moves bytes; metering and cache updates happen
  // at the consumption point (FinishStagedRead) in consumption order.
  opts.metering = false;
  pool->Submit([this, handle, key, opts] {
    const uint64_t start = SteadyNowUs();
    Result<ReadResult> r = [&]() -> Result<ReadResult> {
      if (handle->cancelled()) {
        return Status::FailedPrecondition("async read cancelled: " + key);
      }
      HG_FAIL_POINT("io.prefetch");
      HG_FAIL_POINT("storage.read");
      return ReadImpl(key, opts);
    }();
    handle->Complete(std::move(r), start, SteadyNowUs());
  });
  return handle;
}

bool StorageService::FinishStagedRead(const std::string& key,
                                      uint64_t blob_size, uint64_t bytes,
                                      IoClass cls) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return MeterRead(key, blob_size, bytes, cls);
}

bool StorageService::MeterRead(const std::string& key, uint64_t blob_size,
                               uint64_t bytes, IoClass cls) {
  if (CacheLookupOrInsert(key, blob_size)) {
    meter_.RecordCached(cls, bytes);
    return true;
  }
  meter_.Record(cls, bytes);
  return false;
}

void StorageService::MeterWrite(const std::string& key, uint64_t blob_size,
                                uint64_t bytes, IoClass cls) {
  // Write-through: device cost always; written pages land in the cache.
  meter_.Record(cls, bytes);
  CacheInsert(key, blob_size);
  NotifyMutation(key);
}

// ---------------------------------------------------------------- MemStorage

Status MemStorage::Write(const std::string& key, Slice data, IoClass cls) {
  HG_FAIL_POINT("storage.write");
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  blobs_[key].assign(data.data(), data.data() + data.size());
  MeterWrite(key, data.size(), data.size(), cls);
  return Status::OK();
}

Status MemStorage::Append(const std::string& key, Slice data, IoClass cls) {
  HG_FAIL_POINT("storage.write");
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto& blob = blobs_[key];
  blob.insert(blob.end(), data.data(), data.data() + data.size());
  MeterWrite(key, blob.size(), data.size(), cls);
  return Status::OK();
}

Status MemStorage::ReadRawLocked(const std::string& key, uint64_t offset,
                                 uint64_t len, std::vector<uint8_t>* out) {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return Status::NotFound("no blob: " + key);
  const auto& blob = it->second;
  out->assign(blob.begin() + static_cast<ptrdiff_t>(offset),
              blob.begin() + static_cast<ptrdiff_t>(offset + len));
  return Status::OK();
}

Status MemStorage::WriteRange(const std::string& key, uint64_t offset,
                              Slice data, IoClass cls) {
  HG_FAIL_POINT("storage.write");
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return Status::NotFound("no blob: " + key);
  auto& blob = it->second;
  if (offset + data.size() > blob.size()) {
    return Status::OutOfRange("range write past end of " + key);
  }
  std::copy(data.data(), data.data() + data.size(),
            blob.begin() + static_cast<ptrdiff_t>(offset));
  MeterWrite(key, blob.size(), data.size(), cls);
  return Status::OK();
}

bool MemStorage::Exists(const std::string& key) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return blobs_.count(key) > 0;
}

Status MemStorage::Delete(const std::string& key) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  blobs_.erase(key);
  DropFromCache(key);
  NotifyMutation(key);
  return Status::OK();
}

uint64_t MemStorage::SizeOf(const std::string& key) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  auto it = blobs_.find(key);
  return it == blobs_.end() ? 0 : it->second.size();
}

std::vector<std::string> MemStorage::ListKeys(const std::string& prefix) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = blobs_.lower_bound(prefix); it != blobs_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

// --------------------------------------------------------------- FileStorage

Result<std::unique_ptr<FileStorage>> FileStorage::Open(const std::string& root_dir) {
  std::error_code ec;
  fs::create_directories(root_dir, ec);
  if (ec) {
    return Status::IoError("cannot create storage dir " + root_dir + ": " +
                           ec.message());
  }
  return std::unique_ptr<FileStorage>(new FileStorage(root_dir));
}

std::string FileStorage::PathFor(const std::string& key) const {
  return root_dir_ + "/" + key;
}

Status FileStorage::Write(const std::string& key, Slice data, IoClass cls) {
  HG_FAIL_POINT("storage.write");
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  const std::string path = PathFor(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IoError("cannot open for write: " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IoError("write failed: " + path);
  MeterWrite(key, data.size(), data.size(), cls);
  return Status::OK();
}

Status FileStorage::Append(const std::string& key, Slice data, IoClass cls) {
  HG_FAIL_POINT("storage.write");
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  const std::string path = PathFor(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  std::ofstream f(path, std::ios::binary | std::ios::app);
  if (!f) return Status::IoError("cannot open for append: " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IoError("append failed: " + path);
  MeterWrite(key, SizeOf(key), data.size(), cls);
  return Status::OK();
}

Status FileStorage::ReadRawLocked(const std::string& key, uint64_t offset,
                                  uint64_t len, std::vector<uint8_t>* out) {
  const std::string path = PathFor(key);
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("no blob file: " + path);
  f.seekg(static_cast<std::streamoff>(offset));
  out->resize(static_cast<size_t>(len));
  if (len > 0 && !f.read(reinterpret_cast<char*>(out->data()),
                         static_cast<std::streamsize>(len))) {
    return Status::IoError("read failed: " + path);
  }
  return Status::OK();
}

Status FileStorage::WriteRange(const std::string& key, uint64_t offset,
                               Slice data, IoClass cls) {
  HG_FAIL_POINT("storage.write");
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  const std::string path = PathFor(key);
  if (!Exists(key)) return Status::NotFound("no blob file: " + path);
  if (offset + data.size() > SizeOf(key)) {
    return Status::OutOfRange("range write past end of " + path);
  }
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) return Status::NotFound("no blob file: " + path);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) return Status::IoError("range write failed: " + path);
  MeterWrite(key, SizeOf(key), data.size(), cls);
  return Status::OK();
}

bool FileStorage::Exists(const std::string& key) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return fs::exists(PathFor(key));
}

Status FileStorage::Delete(const std::string& key) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  DropFromCache(key);
  NotifyMutation(key);
  return Status::OK();
}

uint64_t FileStorage::SizeOf(const std::string& key) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::error_code ec;
  const auto size = fs::file_size(PathFor(key), ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

std::vector<std::string> FileStorage::ListKeys(const std::string& prefix) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_dir_, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    std::string rel = fs::relative(it->path(), root_dir_, ec).string();
    if (rel.compare(0, prefix.size(), prefix) == 0) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hybridgraph
