// Hybrid switching behavior: the Q_t metric, Theorem-2 initial mode,
// Δt suppression, switch supersteps, and prediction traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/engine.h"
#include "graph/generator.h"

namespace hybridgraph {
namespace {

EdgeListGraph LocalGraph() {
  // Strong locality -> few fragments -> Theorem 2 favors b-pull.
  return GeneratePowerLaw(2000, 12.0, 0.7, 5, /*locality=*/0.9);
}

EdgeListGraph ScatteredGraph() {
  // No locality + high skew -> many fragments (the twi-like case).
  return GeneratePowerLaw(2000, 12.0, 1.05, 5, /*locality=*/0.0);
}

TEST(Hybrid, Theorem2PicksBPullOnLocalGraph) {
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 200;  // B = 800 << |E|/2 - f
  cfg.max_supersteps = 3;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(LocalGraph()).ok());
  EXPECT_GT(engine.b_lower_bound(), 800u);
  EXPECT_EQ(engine.current_mode(), EngineMode::kBPull);
}

TEST(Hybrid, Theorem2PicksPushWhenFragmentsDominate) {
  // The literal Table-3 Theorem-2 rule: f close to |E| -> B_perp = 0 ->
  // start in push.
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 200;
  cfg.vblocks_per_node = 60;  // force heavy fragmentation
  cfg.qt_use_table3_throughputs = true;
  cfg.max_supersteps = 3;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(ScatteredGraph()).ok());
  EXPECT_EQ(engine.b_lower_bound(), 0u);
  EXPECT_EQ(engine.current_mode(), EngineMode::kPush);
}

TEST(Hybrid, InitialModePushWhenBufferHoldsAllMessages) {
  // Runtime-model initial rule: with B >= |E| nothing would ever spill, so
  // push is free of message I/O and avoids b-pull's fragment overheads.
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 10000;  // B=40000 > |E|
  cfg.max_supersteps = 3;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(ScatteredGraph()).ok());
  EXPECT_EQ(engine.current_mode(), EngineMode::kPush);
}

TEST(Hybrid, SufficientMemoryRunsBPull) {
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.memory_resident = true;
  cfg.max_supersteps = 4;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(LocalGraph()).ok());
  ASSERT_TRUE(engine.Run().ok());
  for (const auto& s : engine.stats().supersteps) {
    EXPECT_EQ(s.mode, EngineMode::kBPull) << "superstep " << s.superstep;
  }
}

TEST(Hybrid, PageRankStaysInBPullUnderLimitedMemory) {
  // Message volume stays maximal for PageRank, so Q_t should stay positive
  // and hybrid should behave exactly like b-pull (paper Fig 8).
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 200;
  cfg.max_supersteps = 6;
  Engine<PageRankProgram> hybrid(cfg, PageRankProgram{});
  ASSERT_TRUE(hybrid.Load(LocalGraph()).ok());
  ASSERT_TRUE(hybrid.Run().ok());
  int bpull_steps = 0;
  for (const auto& s : hybrid.stats().supersteps) {
    bpull_steps += s.mode == EngineMode::kBPull;
    EXPECT_GE(s.q_t, 0.0) << "superstep " << s.superstep;
  }
  EXPECT_EQ(bpull_steps, 6);

  JobConfig bcfg = cfg;
  bcfg.mode = EngineMode::kBPull;
  Engine<PageRankProgram> bpull(bcfg, PageRankProgram{});
  ASSERT_TRUE(bpull.Load(LocalGraph()).ok());
  ASSERT_TRUE(bpull.Run().ok());
  EXPECT_NEAR(hybrid.stats().modeled_seconds, bpull.stats().modeled_seconds,
              bpull.stats().modeled_seconds * 0.05);
}

TEST(Hybrid, SsspSwitchesToPushInConvergentTail) {
  // As the SSSP frontier dies down the message volume collapses and push
  // becomes the profitable mode (paper Fig 14a switch at superstep 11).
  const auto g = GeneratePowerLaw(2000, 12.0, 0.9, 5, /*locality=*/0.7);
  SsspProgram program;
  program.source = 1;
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 100;
  cfg.max_supersteps = 120;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto& steps = engine.stats().supersteps;
  int switches = 0;
  for (const auto& s : steps) switches += s.switched ? 1 : 0;
  bool saw_push = false, saw_bpull = false;
  for (const auto& s : steps) {
    saw_push |= s.mode == EngineMode::kPush;
    saw_bpull |= s.mode == EngineMode::kBPull;
  }
  EXPECT_TRUE(saw_push);
  EXPECT_TRUE(saw_bpull);
  EXPECT_GE(switches, 1);
  // The message-heaviest superstep must run under b-pull, and the convergent
  // tail must end in push — the Fig 14a pattern. (The job *starts* in push:
  // the initial-mode estimate sees SSSP's one-vertex frontier.)
  const auto peak = std::max_element(
      steps.begin(), steps.end(), [](const auto& a, const auto& b) {
        return a.messages_produced < b.messages_produced;
      });
  EXPECT_EQ(peak->mode, EngineMode::kBPull);
  EXPECT_EQ(steps.back().mode, EngineMode::kPush);
}

TEST(Hybrid, SsspBouncesOnScatteredSkewedGraph) {
  // On a twi-like graph (high skew, no locality, B near the Theorem-2
  // bound) hybrid starts in push, hops to b-pull for the message-heavy
  // middle supersteps, then returns to push for the tail — both switch
  // points of Fig 14a.
  const auto g = GeneratePowerLaw(2000, 12.0, 1.0, 5, /*locality=*/0.5);
  SsspProgram program;
  program.source = 1;
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 100;
  cfg.max_supersteps = 120;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto& steps = engine.stats().supersteps;
  int switches = 0;
  bool saw_bpull = false;
  for (const auto& s : steps) {
    switches += s.switched ? 1 : 0;
    saw_bpull |= s.mode == EngineMode::kBPull;
  }
  EXPECT_GE(switches, 2);
  EXPECT_TRUE(saw_bpull);
  EXPECT_EQ(steps.back().mode, EngineMode::kPush);
}

TEST(Hybrid, SwitchIntervalSuppressesFlapping) {
  const auto g = GeneratePowerLaw(2000, 12.0, 1.0, 5, /*locality=*/0.5);
  SsspProgram program;
  program.source = 1;
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 100;
  cfg.switch_interval = 2;
  cfg.max_supersteps = 120;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto& steps = engine.stats().supersteps;
  int last_switch = -10;
  for (const auto& s : steps) {
    if (s.switched) {
      EXPECT_GE(s.superstep - last_switch, cfg.switch_interval);
      last_switch = s.superstep;
    }
  }
}

TEST(Hybrid, ForcedInitialModeRespected) {
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 200;
  cfg.force_initial_mode = true;
  cfg.initial_mode = EngineMode::kPush;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(LocalGraph()).ok());
  EXPECT_EQ(engine.current_mode(), EngineMode::kPush);
}

TEST(Hybrid, PredictionTracePopulated) {
  const auto g = LocalGraph();
  SsspProgram program;
  program.source = 1;
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 300;
  cfg.max_supersteps = 40;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto& steps = engine.stats().supersteps;
  int populated = 0;
  for (const auto& s : steps) {
    if (s.actual_cio_push > 0 || s.actual_cio_bpull > 0) ++populated;
  }
  EXPECT_GT(populated, 3);
}

/// Runs a hybrid job and renders its production-mode trace as one character
/// per superstep ('P' = push, 'B' = b-pull) plus the list of supersteps whose
/// record carries the switched flag, e.g. "PPBBBBPP switches=[2,6]".
template <typename P>
std::string ModeTrace(const EdgeListGraph& g, P program, JobConfig cfg) {
  Engine<P> engine(cfg, program);
  Status st = engine.Load(g);
  if (!st.ok()) return "LOAD-FAIL: " + st.ToString();
  st = engine.Run();
  if (!st.ok()) return "RUN-FAIL: " + st.ToString();
  std::string trace;
  std::string switches;
  for (const auto& s : engine.stats().supersteps) {
    trace += s.mode == EngineMode::kPush
                 ? 'P'
                 : (s.mode == EngineMode::kBPull ? 'B' : '?');
    if (s.switched) {
      if (!switches.empty()) switches += ',';
      switches += std::to_string(s.superstep);
    }
  }
  return trace + " switches=[" + switches + "]";
}

JobConfig HybridConfig(uint64_t msg_buffer, int max_supersteps) {
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = msg_buffer;
  cfg.max_supersteps = max_supersteps;
  return cfg;
}

// Golden switch-sequence traces. These pin the exact Eq. (11) decision
// sequence — graph generation, the Q_t inputs, Δt suppression and the
// switch supersteps are all deterministic, so any refactor of the engine
// pipeline must reproduce these strings bit-for-bit.
TEST(HybridGolden, PageRankLocalStaysInBPull) {
  EXPECT_EQ(ModeTrace(LocalGraph(), PageRankProgram{}, HybridConfig(200, 6)),
            "BBBBBB switches=[]");
}

TEST(HybridGolden, SsspFig14aSwitchSequence) {
  SsspProgram program;
  program.source = 1;
  EXPECT_EQ(ModeTrace(GeneratePowerLaw(2000, 12.0, 0.9, 5, /*locality=*/0.7),
                      program, HybridConfig(100, 120)),
            "PPBBBBBBBBBBPPPP switches=[2,12]");
}

TEST(HybridGolden, SsspScatteredSwitchSequence) {
  SsspProgram program;
  program.source = 1;
  EXPECT_EQ(ModeTrace(GeneratePowerLaw(2000, 12.0, 1.0, 5, /*locality=*/0.5),
                      program, HybridConfig(100, 120)),
            "PPBBBBBBBBBBPPPP switches=[2,12]");
}

TEST(HybridGolden, WccScatteredSwitchSequence) {
  EXPECT_EQ(ModeTrace(GeneratePowerLaw(2000, 12.0, 1.0, 5, /*locality=*/0.5),
                      WccProgram{}, HybridConfig(150, 60)),
            "BBBBBBBBPP switches=[8]");
}

TEST(HybridGolden, WccLocalSwitchSequence) {
  EXPECT_EQ(ModeTrace(LocalGraph(), WccProgram{}, HybridConfig(150, 60)),
            "BBBBBBBBBP switches=[9]");
}

TEST(Hybrid, SwitchSuperstepDoesBothPullAndPush) {
  // Find a b-pull -> push switch and verify the spike: that superstep pulls
  // (eblock/vrr I/O) AND pushes (adjacency I/O + outgoing message batches).
  const auto g = GeneratePowerLaw(2000, 12.0, 0.9, 5, /*locality=*/0.7);
  SsspProgram program;
  program.source = 1;
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 100;
  cfg.force_initial_mode = true;
  cfg.initial_mode = EngineMode::kBPull;
  cfg.max_supersteps = 120;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto& steps = engine.stats().supersteps;
  bool found = false;
  for (size_t i = 1; i < steps.size(); ++i) {
    if (steps[i].mode == EngineMode::kPush &&
        steps[i - 1].mode == EngineMode::kBPull) {
      EXPECT_TRUE(steps[i].switched);
      // Consumption side pulled, production side pushed.
      EXPECT_GT(steps[i].io.eblock_edge_bytes + steps[i].io.vrr_bytes, 0u);
      EXPECT_GT(steps[i].io.adj_edge_bytes, 0u);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no b-pull -> push switch observed";
}

}  // namespace
}  // namespace hybridgraph
