// The hybrid engine's adaptive mode logic (paper Sec 5.3 / 6.1): the initial
// push-vs-b-pull decision at load time (Algorithm 3 line 2, Theorem 2) and
// the per-superstep Q_t evaluation (Eq. 11) with Δt switch suppression.
//
// Everything here is mode-agnostic arithmetic over NodeState stores and
// SuperstepMetrics; program-specific constants arrive via HybridFacts so the
// code compiles once for all Programs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/job_config.h"
#include "core/node_state.h"
#include "core/run_metrics.h"
#include "util/status.h"

namespace hybridgraph {

/// Program constants the cost model needs, captured at Load() time.
struct HybridFacts {
  bool combinable = false;
  size_t msg_size = 0;
  size_t msg_record_size = 0;    ///< 4 + msg_size
  size_t value_record_size = 0;  ///< 8 + kValueSize
};

/// Mutable hybrid controller state, persisted by checkpoints.
struct HybridState {
  int last_switch_superstep = -1000;
  double last_rco = 0.5;  ///< combining ratio observed in the last b-pull step
  uint64_t prev_responding = 0;  ///< responding count, previous superstep
};

/// Inputs to the Theorem 2 initial-mode decision that only the load path
/// knows (graph census accumulated while building the stores).
struct InitialModeInputs {
  uint64_t b_lower_bound = 0;       ///< max(0, |E|/2 - f)
  uint64_t initial_messages = 0;    ///< sum out-degree over initially-active
  double initial_active_frac = 0;   ///< |initially active| / |V|
  uint64_t total_fragments = 0;
};

/// Resolves the starting production mode for config.mode (Algorithm 3 line 2;
/// Theorem 2 for hybrid). Fails with InvalidArgument for modes the block
/// engine does not run (vpull).
Result<EngineMode> DecideInitialMode(const JobConfig& config,
                                     const std::vector<NodeState>& nodes,
                                     const HybridFacts& facts,
                                     const InitialModeInputs& in);

/// Evaluates Eq. (11) for the superstep just finished: fills the q_t /
/// predicted_* / actual_* fields of `m`, updates the controller state, and —
/// when config.mode == kHybrid and the Δt window allows — flips *mode.
void EvaluateSwitch(SuperstepMetrics* m, const JobConfig& config,
                    const RangePartition& partition,
                    const std::vector<NodeState>& nodes,
                    const HybridFacts& facts, int superstep,
                    HybridState* state, EngineMode* mode);

}  // namespace hybridgraph
