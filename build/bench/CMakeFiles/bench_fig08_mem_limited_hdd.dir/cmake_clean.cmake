file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_mem_limited_hdd.dir/bench_fig08_mem_limited_hdd.cc.o"
  "CMakeFiles/bench_fig08_mem_limited_hdd.dir/bench_fig08_mem_limited_hdd.cc.o.d"
  "bench_fig08_mem_limited_hdd"
  "bench_fig08_mem_limited_hdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_mem_limited_hdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
