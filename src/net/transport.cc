#include "net/transport.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

void FrameHeader::EncodeTo(Encoder* enc) const {
  enc->PutFixed32(src);
  enc->PutFixed32(dst);
  enc->PutFixed16(static_cast<uint16_t>(method));
  enc->PutFixed32(payload_size);
}

Status FrameHeader::DecodeFrom(Decoder* dec, FrameHeader* out) {
  uint16_t method;
  HG_RETURN_IF_ERROR(dec->GetFixed32(&out->src));
  HG_RETURN_IF_ERROR(dec->GetFixed32(&out->dst));
  HG_RETURN_IF_ERROR(dec->GetFixed16(&method));
  HG_RETURN_IF_ERROR(dec->GetFixed32(&out->payload_size));
  out->method = static_cast<RpcMethod>(method);
  return Status::OK();
}

void Transport::RegisterHandler(NodeId node, RpcMethod method,
                                Handler handler) {
  HG_CHECK_LT(node, num_nodes_);
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  handlers_[{node, static_cast<uint16_t>(method)}] = std::move(handler);
}

void Transport::MeterFrame(NodeId src, NodeId dst, uint64_t bytes) {
  // Each endpoint's meter under its own lock, one at a time (never nested),
  // so concurrent senders can meter without a global bottleneck.
  {
    std::lock_guard<std::mutex> lock(meter_mutexes_[src]);
    meters_[src].bytes_sent += bytes;
    meters_[src].frames_sent += 1;
  }
  {
    std::lock_guard<std::mutex> lock(meter_mutexes_[dst]);
    meters_[dst].bytes_received += bytes;
    meters_[dst].frames_received += 1;
  }
}

Status Transport::Dispatch(const FrameHeader& hdr, Slice payload,
                           Buffer* response) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    auto it = handlers_.find({hdr.dst, static_cast<uint16_t>(hdr.method)});
    if (it == handlers_.end()) {
      return Status::NetworkError(StringFormat(
          "no handler for method %u at node %u",
          static_cast<unsigned>(hdr.method), static_cast<unsigned>(hdr.dst)));
    }
    handler = it->second;
  }
  // Serialize handler execution per destination: a simulated node services
  // one incoming frame at a time, exactly like a single-threaded server
  // loop, while different destinations are served concurrently. Handlers
  // must not send through the transport (the engines stage outgoing work
  // and flush it from their own phase instead), so no nested dispatch locks
  // are ever taken.
  std::lock_guard<std::mutex> lock(dispatch_mutexes_[hdr.dst]);
  return handler(hdr.src, payload, response);
}

Status InProcTransport::Post(NodeId src, NodeId dst, RpcMethod method,
                             Slice payload) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    return Status::InvalidArgument("node id out of range");
  }
  FrameHeader hdr{src, dst, method, static_cast<uint32_t>(payload.size())};
  // Serialize the frame even for local delivery: the receiver always decodes
  // from bytes, so the wire format is exercised on every path.
  Buffer frame;
  Encoder enc(&frame);
  hdr.EncodeTo(&enc);
  enc.PutRaw(payload.data(), payload.size());

  if (ShouldMeter(src, dst)) {
    MeterFrame(src, dst, frame.size());
  }

  Decoder dec(frame.AsSlice());
  FrameHeader decoded;
  HG_RETURN_IF_ERROR(FrameHeader::DecodeFrom(&dec, &decoded));
  Slice body;
  HG_RETURN_IF_ERROR(dec.GetRaw(decoded.payload_size, &body));
  Buffer ignored;
  return Dispatch(decoded, body, &ignored);
}

Status InProcTransport::Call(NodeId src, NodeId dst, RpcMethod method,
                             Slice payload, std::vector<uint8_t>* response) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    return Status::InvalidArgument("node id out of range");
  }
  FrameHeader hdr{src, dst, method, static_cast<uint32_t>(payload.size())};
  Buffer frame;
  Encoder enc(&frame);
  hdr.EncodeTo(&enc);
  enc.PutRaw(payload.data(), payload.size());

  const bool metered = ShouldMeter(src, dst);
  if (metered) {
    MeterFrame(src, dst, frame.size());
  }

  Decoder dec(frame.AsSlice());
  FrameHeader decoded;
  HG_RETURN_IF_ERROR(FrameHeader::DecodeFrom(&dec, &decoded));
  Slice body;
  HG_RETURN_IF_ERROR(dec.GetRaw(decoded.payload_size, &body));

  Buffer resp;
  HG_RETURN_IF_ERROR(Dispatch(decoded, body, &resp));

  if (metered) {
    MeterFrame(dst, src, FrameHeader::kEncodedSize + resp.size());
  }
  *response = resp.TakeBytes();
  return Status::OK();
}

uint64_t Transport::TotalBytesSent() const {
  uint64_t total = 0;
  for (const auto& m : meters_) total += m.bytes_sent;
  return total;
}

}  // namespace hybridgraph
