// Shared harness for the paper-reproduction benches: dataset scale models,
// the paper's two memory scenarios, and engine dispatch across all five
// systems for all four workloads.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "hybridgraph/hybridgraph.h"

namespace hybridgraph {
namespace bench {

enum class Algo { kPageRank, kSssp, kLpa, kSa };

const char* AlgoName(Algo algo);

/// Supersteps per workload: PageRank and LPA report 5 supersteps like the
/// paper; the traversal workloads run to convergence under a safety cap.
int MaxSuperstepsFor(Algo algo);

/// Extra shrink factor applied to the big Table-4 models so the whole bench
/// suite stays fast on one core (HG_BENCH_FULL=1 disables it).
double ShrinkFor(const DatasetSpec& spec);

/// The graph for a dataset at `shrink`, memoized across calls.
const EdgeListGraph& CachedGraph(const DatasetSpec& spec, double shrink);

/// Paper message buffer B_i scaled to the model (0.5M/1M/2M messages at full
/// scale, divided by the dataset scale factor and `shrink`).
uint64_t ScaledBuffer(const DatasetSpec& spec, double shrink);

/// GraphLab vertex cache (2.5M vertices at full scale) scaled the same way.
uint64_t ScaledVertexCache(const DatasetSpec& spec, double shrink);

/// Limited-memory scenario of Figs 8-10 (graph + overflow messages on disk).
JobConfig LimitedMemoryConfig(const DatasetSpec& spec, double shrink,
                              DiskProfile disk = DiskProfile::Hdd());

/// Sufficient-memory scenario of Fig 7.
JobConfig SufficientMemoryConfig(const DatasetSpec& spec, double shrink);

/// Runs `algo` under `mode` (push/pushM/pull/b-pull/hybrid) and returns the
/// job stats. `cfg.mode` is overwritten by `mode`.
Result<JobStats> RunAlgo(const EdgeListGraph& graph, Algo algo, EngineMode mode,
                         JobConfig cfg);

/// True when the paper ran this (algo, mode) combination (pushM requires
/// combinable messages, so it is skipped for LPA/SA, matching the missing
/// bars in Figs 7-9).
bool ModeSupports(Algo algo, EngineMode mode);

/// Prints the standard bench header (hardware profiles, scale note).
void PrintHeader(const std::string& title, const std::string& paper_ref);

}  // namespace bench
}  // namespace hybridgraph
