#include "net/transport.h"

#include <gtest/gtest.h>

namespace hybridgraph {
namespace {

TEST(FrameHeader, RoundTrip) {
  FrameHeader h{3, 7, RpcMethod::kPullRequest, 123};
  Buffer buf;
  Encoder enc(&buf);
  h.EncodeTo(&enc);
  EXPECT_EQ(buf.size(), FrameHeader::kEncodedSize);
  Decoder dec(buf.AsSlice());
  FrameHeader out;
  ASSERT_TRUE(FrameHeader::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.src, 3u);
  EXPECT_EQ(out.dst, 7u);
  EXPECT_EQ(out.method, RpcMethod::kPullRequest);
  EXPECT_EQ(out.payload_size, 123u);
}

TEST(Transport, PostInvokesHandlerWithPayload) {
  InProcTransport t(3);
  std::string got;
  NodeId got_src = 99;
  t.RegisterHandler(2, RpcMethod::kPushMessages,
                    [&](NodeId src, Slice payload, Buffer*) {
                      got = payload.ToString();
                      got_src = src;
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Post(0, 2, RpcMethod::kPushMessages, Slice("hi", 2)).ok());
  EXPECT_EQ(got, "hi");
  EXPECT_EQ(got_src, 0u);
}

TEST(Transport, CallReturnsResponse) {
  InProcTransport t(2);
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [](NodeId, Slice payload, Buffer* response) {
                      const std::string echoed = payload.ToString() + "!";
                      response->Append(echoed.data(), echoed.size());
                      return Status::OK();
                    });
  std::vector<uint8_t> response;
  ASSERT_TRUE(t.Call(0, 1, RpcMethod::kPullRequest, Slice("ping", 4), &response).ok());
  EXPECT_EQ(std::string(response.begin(), response.end()), "ping!");
}

TEST(Transport, MissingHandlerIsNetworkError) {
  InProcTransport t(2);
  EXPECT_EQ(t.Post(0, 1, RpcMethod::kControl, Slice()).code(),
            StatusCode::kNetworkError);
}

TEST(Transport, OutOfRangeNodes) {
  InProcTransport t(2);
  EXPECT_EQ(t.Post(0, 5, RpcMethod::kControl, Slice()).code(),
            StatusCode::kInvalidArgument);
  std::vector<uint8_t> resp;
  EXPECT_EQ(t.Call(5, 0, RpcMethod::kControl, Slice(), &resp).code(),
            StatusCode::kInvalidArgument);
}

TEST(Transport, MetersBothSides) {
  InProcTransport t(2);
  t.RegisterHandler(1, RpcMethod::kPushMessages,
                    [](NodeId, Slice, Buffer*) { return Status::OK(); });
  ASSERT_TRUE(t.Post(0, 1, RpcMethod::kPushMessages, Slice("abcd", 4)).ok());
  const uint64_t expected = FrameHeader::kEncodedSize + 4;
  EXPECT_EQ(t.meter(0)->bytes_sent, expected);
  EXPECT_EQ(t.meter(1)->bytes_received, expected);
  EXPECT_EQ(t.meter(0)->frames_sent, 1u);
  EXPECT_EQ(t.meter(1)->frames_received, 1u);
  EXPECT_EQ(t.meter(0)->bytes_received, 0u);
  EXPECT_EQ(t.TotalBytesSent(), expected);
}

TEST(Transport, CallMetersResponse) {
  InProcTransport t(2);
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [](NodeId, Slice, Buffer* response) {
                      response->Append("12345678", 8);
                      return Status::OK();
                    });
  std::vector<uint8_t> resp;
  ASSERT_TRUE(t.Call(0, 1, RpcMethod::kPullRequest, Slice("x", 1), &resp).ok());
  const uint64_t req = FrameHeader::kEncodedSize + 1;
  const uint64_t rsp = FrameHeader::kEncodedSize + 8;
  EXPECT_EQ(t.meter(0)->bytes_sent, req);
  EXPECT_EQ(t.meter(0)->bytes_received, rsp);
  EXPECT_EQ(t.meter(1)->bytes_sent, rsp);
  EXPECT_EQ(t.meter(1)->bytes_received, req);
}

TEST(Transport, LocalTrafficUnmeteredByDefault) {
  InProcTransport t(2);
  t.RegisterHandler(0, RpcMethod::kPushMessages,
                    [](NodeId, Slice, Buffer*) { return Status::OK(); });
  ASSERT_TRUE(t.Post(0, 0, RpcMethod::kPushMessages, Slice("abcd", 4)).ok());
  EXPECT_EQ(t.meter(0)->bytes_sent, 0u);
  t.set_meter_local_traffic(true);
  ASSERT_TRUE(t.Post(0, 0, RpcMethod::kPushMessages, Slice("abcd", 4)).ok());
  EXPECT_GT(t.meter(0)->bytes_sent, 0u);
}

TEST(Transport, NetProfileSeconds) {
  const NetProfile p = NetProfile::LocalGigabit();
  EXPECT_DOUBLE_EQ(p.SecondsFor(0), 0.0);
  EXPECT_NEAR(p.SecondsFor(112ull * 1024 * 1024), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(NetProfile::AmazonGigabit().mbps, 116.0);
}

TEST(NetMeter, DeltaSince) {
  NetMeter a;
  a.bytes_sent = 100;
  a.frames_sent = 2;
  NetMeter snap = a;
  a.bytes_sent = 150;
  a.frames_sent = 3;
  a.bytes_received = 7;
  const NetMeter d = a.DeltaSince(snap);
  EXPECT_EQ(d.bytes_sent, 50u);
  EXPECT_EQ(d.frames_sent, 1u);
  EXPECT_EQ(d.bytes_received, 7u);
}

TEST(Transport, HandlerErrorPropagates) {
  InProcTransport t(2);
  t.RegisterHandler(1, RpcMethod::kControl, [](NodeId, Slice, Buffer*) {
    return Status::Internal("boom");
  });
  EXPECT_EQ(t.Post(0, 1, RpcMethod::kControl, Slice()).code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace hybridgraph
