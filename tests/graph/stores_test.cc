// Tests for the three disk layouts: VertexValueStore (Vblocks),
// AdjacencyStore (push-side edges), VeBlockStore (Eblocks + fragments),
// including the Theorem-1 property (fragments grow with the Vblock count).
#include <gtest/gtest.h>

#include <set>

#include "graph/adjacency_store.h"
#include "graph/generator.h"
#include "graph/ve_block_store.h"
#include "graph/vertex_store.h"

namespace hybridgraph {
namespace {

struct Fixture {
  EdgeListGraph graph;
  RangePartition partition;
  MemStorage storage;
  std::vector<uint32_t> out_degrees;
  std::vector<uint32_t> in_degrees;
  std::vector<RawEdge> local_edges;  // node 0
  NodeId node = 0;

  explicit Fixture(uint32_t vblocks_per_node = 3, uint32_t nodes = 2,
                   uint64_t n = 100) {
    graph = GeneratePowerLaw(n, 6.0, 0.7, 11);
    partition =
        RangePartition::CreateUniform(n, nodes, vblocks_per_node).ValueOrDie();
    out_degrees = graph.OutDegrees();
    in_degrees = graph.InDegrees();
    for (const auto& e : graph.edges) {
      if (partition.NodeOf(e.src) == node) local_edges.push_back(e);
    }
  }
};

// ------------------------------------------------------------- VertexValueStore

TEST(VertexValueStore, BuildReadWriteRoundTrip) {
  Fixture f;
  auto store = VertexValueStore::Build(
                   &f.storage, f.partition, f.node, sizeof(double),
                   f.out_degrees,
                   [](VertexId v, uint8_t* out) {
                     const double val = v * 1.5;
                     std::memcpy(out, &val, sizeof(val));
                   })
                   .ValueOrDie();
  EXPECT_EQ(store->value_size(), sizeof(double));
  EXPECT_EQ(store->record_size(), 8 + sizeof(double));

  const uint32_t vb = f.partition.FirstVblockOf(f.node);
  std::vector<uint8_t> values;
  ASSERT_TRUE(store->ReadBlock(vb, &values, IoClass::kSeqRead).ok());
  const VertexRange r = f.partition.VblockRange(vb);
  ASSERT_EQ(values.size(), r.size() * sizeof(double));
  double first;
  std::memcpy(&first, values.data(), sizeof(first));
  EXPECT_DOUBLE_EQ(first, r.begin * 1.5);

  // Mutate and write back.
  const double updated = 99.5;
  std::memcpy(values.data(), &updated, sizeof(updated));
  ASSERT_TRUE(store->WriteBlock(vb, values, IoClass::kSeqWrite).ok());
  std::vector<uint8_t> again;
  ASSERT_TRUE(store->ReadBlock(vb, &again, IoClass::kSeqRead).ok());
  double got;
  std::memcpy(&got, again.data(), sizeof(got));
  EXPECT_DOUBLE_EQ(got, 99.5);
}

TEST(VertexValueStore, RandomReadMatchesBlockRead) {
  Fixture f;
  auto store = VertexValueStore::Build(
                   &f.storage, f.partition, f.node, sizeof(uint32_t),
                   f.out_degrees,
                   [](VertexId v, uint8_t* out) {
                     const uint32_t val = v * 7;
                     std::memcpy(out, &val, sizeof(val));
                   })
                   .ValueOrDie();
  const VertexRange nr = f.partition.NodeRange(f.node);
  const DiskMeter before = *f.storage.meter();
  for (VertexId v = nr.begin; v < nr.end; v += 13) {
    std::vector<uint8_t> value;
    ASSERT_TRUE(store->ReadValueRandom(v, &value).ok());
    uint32_t got;
    std::memcpy(&got, value.data(), sizeof(got));
    EXPECT_EQ(got, v * 7);
  }
  const DiskMeter delta = f.storage.meter()->DeltaSince(before);
  EXPECT_GT(delta.ops(IoClass::kRandRead), 0u);
}

TEST(VertexValueStore, OutDegreeLookup) {
  Fixture f;
  auto store = VertexValueStore::Build(&f.storage, f.partition, f.node, 4,
                                       f.out_degrees,
                                       [](VertexId, uint8_t* out) {
                                         std::memset(out, 0, 4);
                                       })
                   .ValueOrDie();
  const VertexRange nr = f.partition.NodeRange(f.node);
  for (VertexId v = nr.begin; v < nr.end; ++v) {
    EXPECT_EQ(store->OutDegree(v), f.out_degrees[v]);
  }
}

TEST(VertexValueStore, NonLocalRandomReadFails) {
  Fixture f;
  auto store = VertexValueStore::Build(&f.storage, f.partition, f.node, 4,
                                       f.out_degrees,
                                       [](VertexId, uint8_t* out) {
                                         std::memset(out, 0, 4);
                                       })
                   .ValueOrDie();
  std::vector<uint8_t> value;
  const VertexId remote = f.partition.NodeRange(1).begin;
  EXPECT_FALSE(store->ReadValueRandom(remote, &value).ok());
}

// --------------------------------------------------------------- AdjacencyStore

TEST(AdjacencyStore, BlocksContainAllLocalEdges) {
  Fixture f;
  auto store =
      AdjacencyStore::Build(&f.storage, f.partition, f.node, f.local_edges)
          .ValueOrDie();
  EXPECT_EQ(store->TotalEdges(), f.local_edges.size());

  uint64_t seen_edges = 0;
  for (uint32_t vb = f.partition.FirstVblockOf(f.node);
       vb < f.partition.LastVblockOf(f.node); ++vb) {
    std::vector<AdjacencyStore::VertexAdj> adj;
    ASSERT_TRUE(store->ReadBlock(vb, &adj).ok());
    const VertexRange r = f.partition.VblockRange(vb);
    ASSERT_EQ(adj.size(), r.size());
    for (uint32_t i = 0; i < adj.size(); ++i) {
      EXPECT_EQ(adj[i].id, r.begin + i);
      EXPECT_EQ(adj[i].out.size(), f.out_degrees[adj[i].id]);
      seen_edges += adj[i].out.size();
    }
    EXPECT_EQ(store->BlockEdges(vb),
              [&] {
                uint64_t c = 0;
                for (const auto& va : adj) c += va.out.size();
                return c;
              }());
  }
  EXPECT_EQ(seen_edges, f.local_edges.size());
}

TEST(AdjacencyStore, RejectsForeignEdges) {
  Fixture f;
  std::vector<RawEdge> bad = {{f.partition.NodeRange(1).begin, 0, 1.0f}};
  EXPECT_FALSE(
      AdjacencyStore::Build(&f.storage, f.partition, f.node, bad).ok());
}

// ---------------------------------------------------------------- VeBlockStore

TEST(VeBlockStore, FragmentsCoverAllEdgesExactlyOnce) {
  Fixture f;
  auto store = VeBlockStore::Build(&f.storage, f.partition, f.node,
                                   f.local_edges, f.in_degrees)
                   .ValueOrDie();
  uint64_t covered = 0;
  for (uint32_t svb = f.partition.FirstVblockOf(f.node);
       svb < f.partition.LastVblockOf(f.node); ++svb) {
    for (uint32_t dvb = 0; dvb < f.partition.num_vblocks(); ++dvb) {
      VeBlockStore::ScanResult scan;
      ASSERT_TRUE(store->ScanEblock(svb, dvb, &scan).ok());
      EXPECT_EQ(scan.fragments.empty(), !store->HasEdges(svb, dvb));
      for (const auto& frag : scan.fragments) {
        EXPECT_TRUE(f.partition.VblockRange(svb).Contains(frag.src));
        EXPECT_FALSE(frag.edges.empty());
        for (const auto& e : frag.edges) {
          EXPECT_EQ(f.partition.VblockOf(e.dst), dvb);
          ++covered;
        }
      }
      EXPECT_EQ(store->Index(svb, dvb).num_fragments, scan.fragments.size());
      EXPECT_EQ(store->Index(svb, dvb).edge_bytes, scan.edge_bytes);
      EXPECT_EQ(store->Index(svb, dvb).aux_bytes, scan.aux_bytes);
    }
  }
  EXPECT_EQ(covered, f.local_edges.size());
}

TEST(VeBlockStore, FragmentsClusterPerSource) {
  Fixture f;
  auto store = VeBlockStore::Build(&f.storage, f.partition, f.node,
                                   f.local_edges, f.in_degrees)
                   .ValueOrDie();
  for (uint32_t svb = f.partition.FirstVblockOf(f.node);
       svb < f.partition.LastVblockOf(f.node); ++svb) {
    for (uint32_t dvb = 0; dvb < f.partition.num_vblocks(); ++dvb) {
      VeBlockStore::ScanResult scan;
      ASSERT_TRUE(store->ScanEblock(svb, dvb, &scan).ok());
      // At most one fragment per source vertex in one Eblock.
      std::set<VertexId> sources;
      for (const auto& frag : scan.fragments) {
        EXPECT_TRUE(sources.insert(frag.src).second);
      }
    }
  }
}

TEST(VeBlockStore, MetadataDegreesMatchGraph) {
  Fixture f;
  auto store = VeBlockStore::Build(&f.storage, f.partition, f.node,
                                   f.local_edges, f.in_degrees)
                   .ValueOrDie();
  for (uint32_t vb = f.partition.FirstVblockOf(f.node);
       vb < f.partition.LastVblockOf(f.node); ++vb) {
    const VblockMeta& meta = store->Meta(vb);
    const VertexRange r = f.partition.VblockRange(vb);
    EXPECT_EQ(meta.num_vertices, r.size());
    uint64_t ind = 0, outd = 0;
    for (VertexId v = r.begin; v < r.end; ++v) {
      ind += f.in_degrees[v];
      outd += f.out_degrees[v];
    }
    EXPECT_EQ(meta.in_degree, ind);
    EXPECT_EQ(meta.out_degree, outd);
    // Bitmap is consistent with the index.
    for (uint32_t dvb = 0; dvb < f.partition.num_vblocks(); ++dvb) {
      EXPECT_EQ(meta.edge_bitmap[dvb],
                store->Index(vb, dvb).num_fragments > 0);
    }
  }
}

// Theorem 1: the expected number of fragments grows with the Vblock count.
class Theorem1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1Test, FragmentsMonotoneInVblockCount) {
  const auto graph = GeneratePowerLaw(400, 10.0, 0.8, GetParam(),
                                      /*locality=*/0.2);
  const auto in_degrees = graph.InDegrees();
  uint64_t prev_fragments = 0;
  for (uint32_t vblocks : {1u, 2u, 5u, 10u, 25u}) {
    auto partition = RangePartition::CreateUniform(400, 2, vblocks).ValueOrDie();
    std::vector<RawEdge> local;
    for (const auto& e : graph.edges) {
      if (partition.NodeOf(e.src) == 0) local.push_back(e);
    }
    MemStorage storage;
    auto store =
        VeBlockStore::Build(&storage, partition, 0, local, in_degrees)
            .ValueOrDie();
    EXPECT_GE(store->TotalFragments(), prev_fragments)
        << "V per node = " << vblocks;
    prev_fragments = store->TotalFragments();
  }
  // With many Vblocks there must be strictly more fragments than with one.
  EXPECT_GT(prev_fragments, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Test, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hybridgraph
