// TCP transport: the same protocol over real loopback sockets, plus a full
// engine run on top of it.
#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/engine.h"
#include "graph/generator.h"
#include "util/failpoint.h"

namespace hybridgraph {
namespace {

TEST(TcpTransport, StartAssignsPorts) {
  TcpTransport t(3);
  ASSERT_TRUE(t.Start().ok());
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_GT(t.port(n), 0);
  }
  EXPECT_NE(t.port(0), t.port(1));
  // Idempotent.
  EXPECT_TRUE(t.Start().ok());
}

TEST(TcpTransport, RequiresStart) {
  TcpTransport t(2);
  EXPECT_EQ(t.Post(0, 1, RpcMethod::kControl, Slice()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TcpTransport, PostDeliversPayload) {
  TcpTransport t(2);
  std::string got;
  NodeId got_src = 99;
  t.RegisterHandler(1, RpcMethod::kPushMessages,
                    [&](NodeId src, Slice payload, Buffer*) {
                      got = payload.ToString();
                      got_src = src;
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.Post(0, 1, RpcMethod::kPushMessages, Slice("hello", 5)).ok());
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(got_src, 0u);
}

TEST(TcpTransport, CallRoundTrip) {
  TcpTransport t(2);
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [](NodeId, Slice payload, Buffer* response) {
                      const std::string echoed = payload.ToString() + "!";
                      response->Append(echoed.data(), echoed.size());
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  std::vector<uint8_t> response;
  for (int i = 0; i < 50; ++i) {  // exercise the persistent connection
    ASSERT_TRUE(
        t.Call(0, 1, RpcMethod::kPullRequest, Slice("ping", 4), &response).ok());
    EXPECT_EQ(std::string(response.begin(), response.end()), "ping!");
  }
}

TEST(TcpTransport, MeteringMatchesInProc) {
  auto exercise = [](Transport& t) {
    t.RegisterHandler(1, RpcMethod::kPullRequest,
                      [](NodeId, Slice, Buffer* response) {
                        response->Append("12345678", 8);
                        return Status::OK();
                      });
    EXPECT_TRUE(t.Start().ok());
    std::vector<uint8_t> response;
    EXPECT_TRUE(
        t.Call(0, 1, RpcMethod::kPullRequest, Slice("abc", 3), &response).ok());
    return std::make_pair(t.meter(0)->bytes_sent, t.meter(0)->bytes_received);
  };
  InProcTransport inproc(2);
  TcpTransport tcp(2);
  EXPECT_EQ(exercise(inproc), exercise(tcp));
}

TEST(TcpTransport, LargePayload) {
  TcpTransport t(2);
  std::vector<uint8_t> big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  uint64_t received = 0;
  t.RegisterHandler(1, RpcMethod::kPushMessages,
                    [&](NodeId, Slice payload, Buffer*) {
                      received = payload.size();
                      for (size_t i = 0; i < payload.size(); i += 4096) {
                        if (payload[i] != static_cast<uint8_t>(i)) {
                          return Status::Corruption("payload mangled");
                        }
                      }
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.Post(0, 1, RpcMethod::kPushMessages, Slice(big)).ok());
  EXPECT_EQ(received, big.size());
}

TEST(TcpTransport, FullEngineRunMatchesInProc) {
  const auto g = GeneratePowerLaw(400, 7.0, 0.8, 17);
  auto run = [&](TransportKind kind, EngineMode mode) {
    JobConfig cfg;
    cfg.mode = mode;
    cfg.num_nodes = 3;
    cfg.msg_buffer_per_node = 100;
    cfg.max_supersteps = 4;
    cfg.transport = kind;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.GatherValues().ValueOrDie();
  };
  for (EngineMode mode :
       {EngineMode::kPush, EngineMode::kBPull, EngineMode::kHybrid}) {
    const auto inproc = run(TransportKind::kInProc, mode);
    const auto tcp = run(TransportKind::kTcp, mode);
    ASSERT_EQ(inproc.size(), tcp.size());
    for (size_t v = 0; v < inproc.size(); ++v) {
      ASSERT_NEAR(inproc[v], tcp[v], 1e-12)
          << EngineModeName(mode) << " v=" << v;
    }
  }
}

// Fault-path tests: each arms fail-points and must leave the registry clean.
class TcpFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Instance().DisarmAll(); }
};

TEST_F(TcpFaultTest, CallTimeoutFires) {
  TcpTransport::Options opts;
  opts.call_timeout_ms = 50;
  opts.max_retries = 0;  // fail fast: one attempt, no retry
  TcpTransport t(2, opts);
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [](NodeId, Slice, Buffer* response) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(300));
                      response->Append("x", 1);
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  std::vector<uint8_t> response;
  Status st = t.Call(0, 1, RpcMethod::kPullRequest, Slice("p", 1), &response);
  EXPECT_EQ(st.code(), StatusCode::kNetworkError);
  EXPECT_NE(st.message().find("timeout"), std::string::npos) << st.message();
  EXPECT_GE(t.fault_counters().timeouts, 1u);
  EXPECT_EQ(t.fault_counters().retries, 0u);
}

TEST_F(TcpFaultTest, RetrySucceedsAfterInjectedDrop) {
  // "tcp.drop" with max=1: the first attempt is dropped mid-flight, the retry
  // must go through — and the handler must run exactly once.
  FailPointScope scope("tcp.drop=error:max=1,code=net");
  ASSERT_TRUE(scope.status().ok());
  TcpTransport t(2);
  std::atomic<int> handler_runs{0};
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [&](NodeId, Slice payload, Buffer* response) {
                      handler_runs.fetch_add(1);
                      response->Append(payload.data(), payload.size());
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  std::vector<uint8_t> response;
  ASSERT_TRUE(
      t.Call(0, 1, RpcMethod::kPullRequest, Slice("echo", 4), &response).ok());
  EXPECT_EQ(std::string(response.begin(), response.end()), "echo");
  EXPECT_EQ(handler_runs.load(), 1);
  EXPECT_GE(t.fault_counters().retries, 1u);
}

TEST_F(TcpFaultTest, ReconnectAfterServerCloseReturnsCachedResponse) {
  // "tcp.server_close" with max=1: the server executes the request, then the
  // connection dies before the response leaves. The retry must reconnect and
  // be answered from the dedup cache without re-running the handler — the
  // classic exactly-once case.
  FailPointScope scope("tcp.server_close=error:max=1");
  ASSERT_TRUE(scope.status().ok());
  TcpTransport t(2);
  std::atomic<int> handler_runs{0};
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [&](NodeId, Slice, Buffer* response) {
                      handler_runs.fetch_add(1);
                      response->Append("pong", 4);
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  std::vector<uint8_t> response;
  // Establish the connection first so the later connect is a *re*connect.
  ASSERT_TRUE(
      t.Call(0, 1, RpcMethod::kPullRequest, Slice("a", 1), &response).ok());
  EXPECT_EQ(handler_runs.load(), 1);
  ASSERT_TRUE(
      t.Call(0, 1, RpcMethod::kPullRequest, Slice("b", 1), &response).ok());
  EXPECT_EQ(std::string(response.begin(), response.end()), "pong");
  EXPECT_EQ(handler_runs.load(), 2);  // retried frame answered from cache
  EXPECT_GE(t.fault_counters().reconnects, 1u);
  EXPECT_GE(t.fault_counters().retries, 1u);
}

TEST_F(TcpFaultTest, SlowHandlerTimeoutThenCachedResponse) {
  // The first attempt times out while the handler is still running; a later
  // attempt picks up the cached response once the execution finishes.
  TcpTransport::Options opts;
  opts.call_timeout_ms = 100;
  opts.max_retries = 5;
  TcpTransport t(2, opts);
  std::atomic<int> handler_runs{0};
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [&](NodeId, Slice, Buffer* response) {
                      handler_runs.fetch_add(1);
                      std::this_thread::sleep_for(std::chrono::milliseconds(150));
                      response->Append("late", 4);
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  std::vector<uint8_t> response;
  ASSERT_TRUE(
      t.Call(0, 1, RpcMethod::kPullRequest, Slice("q", 1), &response).ok());
  EXPECT_EQ(std::string(response.begin(), response.end()), "late");
  EXPECT_EQ(handler_runs.load(), 1);
  EXPECT_GE(t.fault_counters().timeouts, 1u);
  EXPECT_GE(t.fault_counters().retries, 1u);
}

TEST_F(TcpFaultTest, HandlerErrorsAreNotRetried) {
  // Handler failures are application outcomes carried in the response frame:
  // the caller sees the exact Status once and the transport never retries.
  TcpTransport t(2);
  std::atomic<int> handler_runs{0};
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [&](NodeId, Slice, Buffer*) {
                      handler_runs.fetch_add(1);
                      return Status::InvalidArgument("bad request payload");
                    });
  ASSERT_TRUE(t.Start().ok());
  std::vector<uint8_t> response;
  Status st = t.Call(0, 1, RpcMethod::kPullRequest, Slice("z", 1), &response);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad request payload");
  EXPECT_EQ(handler_runs.load(), 1);
  EXPECT_EQ(t.fault_counters().retries, 0u);
  // The error response is per-seq: the next call runs the handler again.
  EXPECT_FALSE(
      t.Call(0, 1, RpcMethod::kPullRequest, Slice("z", 1), &response).ok());
  EXPECT_EQ(handler_runs.load(), 2);
}

TEST_F(TcpFaultTest, MaxFrameSizeEnforced) {
  TcpTransport::Options opts;
  opts.max_frame_bytes = 4096;
  TcpTransport t(2, opts);
  t.RegisterHandler(1, RpcMethod::kPushMessages,
                    [](NodeId, Slice, Buffer*) { return Status::OK(); });
  ASSERT_TRUE(t.Start().ok());
  std::vector<uint8_t> big(8192, 0xab);
  Status st = t.Post(0, 1, RpcMethod::kPushMessages, Slice(big));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("max_frame_bytes"), std::string::npos);
  // A frame under the bound still goes through.
  std::vector<uint8_t> small(1024, 0xcd);
  EXPECT_TRUE(t.Post(0, 1, RpcMethod::kPushMessages, Slice(small)).ok());
}

TEST_F(TcpFaultTest, ConcurrentCallsFromManyThreads) {
  constexpr int kThreads = 6;
  constexpr int kCallsPerThread = 25;
  TcpTransport t(4);
  t.RegisterHandler(3, RpcMethod::kPullRequest,
                    [](NodeId src, Slice payload, Buffer* response) {
                      std::string echoed =
                          std::to_string(src) + ":" + payload.ToString();
                      response->Append(echoed.data(), echoed.size());
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    // Two threads share each src channel, so the per-channel serialization
    // and per-seq dedup get real contention.
    const NodeId src = static_cast<NodeId>(i % 3);
    threads.emplace_back([&t, &failures, src, i]() {
      std::vector<uint8_t> response;
      for (int c = 0; c < kCallsPerThread; ++c) {
        const std::string payload = std::to_string(i) + "." + std::to_string(c);
        const std::string want = std::to_string(src) + ":" + payload;
        if (!t.Call(src, 3, RpcMethod::kPullRequest,
                    Slice(payload.data(), payload.size()), &response)
                 .ok() ||
            std::string(response.begin(), response.end()) != want) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TcpTransport, SsspOverTcpConverges) {
  const auto g = GeneratePowerLaw(400, 7.0, 0.8, 18);
  SsspProgram program;
  program.source = 2;
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 3;
  cfg.msg_buffer_per_node = 80;
  cfg.max_supersteps = 80;
  cfg.transport = TransportKind::kTcp;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.converged());
}

}  // namespace
}  // namespace hybridgraph
