// Cross-configuration equivalence sweep: SSSP results must match the
// Bellman-Ford reference for every combination of engine mode, buffer size,
// Vblock count and cluster size (TEST_P grid).
#include <gtest/gtest.h>

#include <tuple>

#include "algos/sssp.h"
#include "core/engine.h"
#include "graph/generator.h"
#include "tests/core/reference_impls.h"

namespace hybridgraph {
namespace {

const EdgeListGraph& SweepGraph() {
  static const EdgeListGraph g = GeneratePowerLaw(700, 7.0, 0.85, 123);
  return g;
}

const std::vector<float>& ExpectedDistances() {
  static const std::vector<float> d = ReferenceSssp(SweepGraph(), 11);
  return d;
}

using SweepParam = std::tuple<EngineMode, uint64_t /*buffer*/,
                              uint32_t /*vblocks*/, uint32_t /*nodes*/>;

class EngineSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineSweepTest, SsspMatchesReference) {
  const auto [mode, buffer, vblocks, nodes] = GetParam();
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = nodes;
  cfg.msg_buffer_per_node = buffer;
  cfg.vblocks_per_node = vblocks;
  cfg.max_supersteps = 200;
  SsspProgram program;
  program.source = 11;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(SweepGraph()).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.converged());
  const auto got = engine.GatherValues().ValueOrDie();
  const auto& expected = ExpectedDistances();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_FLOAT_EQ(got[v], expected[v]) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineSweepTest,
    ::testing::Combine(
        ::testing::Values(EngineMode::kPush, EngineMode::kBPull,
                          EngineMode::kHybrid),
        ::testing::Values(uint64_t{1}, uint64_t{64}, UINT64_MAX),
        ::testing::Values(0u /*Eq.5 auto*/, 1u, 12u),
        ::testing::Values(1u, 5u)),
    [](const auto& info) {
      // (No structured bindings here: their commas would split the macro's
      // arguments.)
      std::string name = EngineModeName(std::get<0>(info.param));
      const uint64_t buffer = std::get<1>(info.param);
      name += buffer == UINT64_MAX ? "_mem" : "_b" + std::to_string(buffer);
      name += "_v" + std::to_string(std::get<2>(info.param)) + "_n" +
              std::to_string(std::get<3>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hybridgraph
