// Disk-resident vertex value store (the Vblocks of VE-BLOCK).
//
// One blob per Vblock holding the paper's triples (id, val, |Vo|). Both push
// and b-pull share this store (Sec 5.2: "the shared update() makes push and
// b-pull share vertex values, i.e., Vblocks in VE-BLOCK"). Sequential block
// scans serve update(); random per-record reads serve Pull-Respond's source
// vertex lookups (the IO(V_rr) term).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/partition.h"
#include "graph/types.h"
#include "io/prefetch.h"
#include "io/storage.h"

namespace hybridgraph {

class VertexValueStore {
 public:
  /// Builds the store for `node`'s vertex range.
  ///
  /// \param value_size fixed serialized size of one vertex value.
  /// \param out_degrees out-degree per *global* vertex id (only this node's
  ///        range is consulted).
  /// \param init writes the initial serialized value for a vertex into the
  ///        provided buffer of `value_size` bytes.
  static Result<std::unique_ptr<VertexValueStore>> Build(
      StorageService* storage, const RangePartition& partition, NodeId node,
      size_t value_size, const std::vector<uint32_t>& out_degrees,
      const std::function<void(VertexId, uint8_t*)>& init);

  size_t value_size() const { return value_size_; }
  /// On-disk record: id (4) + out-degree (4) + value payload.
  size_t record_size() const { return 8 + value_size_; }

  /// Reads all value payloads of a Vblock into `*values`, concatenated in
  /// vertex order (size = count * value_size). Metered with `cls`. A non-null
  /// `pipeline` serves the read through the prefetcher (staged bytes if
  /// PrefetchBlock ran, sync read otherwise — metering is identical).
  Status ReadBlock(uint32_t global_vb, std::vector<uint8_t>* values, IoClass cls,
                   ReadPipeline* pipeline = nullptr);

  /// Stages a background read of a Vblock for a later ReadBlock. No-op on a
  /// null/disabled pipeline.
  void PrefetchBlock(uint32_t global_vb, ReadPipeline* pipeline, IoClass cls);

  /// Writes back all value payloads of a Vblock. Metered with `cls`.
  Status WriteBlock(uint32_t global_vb, const std::vector<uint8_t>& values,
                    IoClass cls);

  /// Random read of one vertex's record (the b-pull IO(V_rr) access).
  Status ReadValueRandom(VertexId v, std::vector<uint8_t>* value);

  /// Out-degree lookup (kept in memory; it is static metadata).
  uint32_t OutDegree(VertexId v) const {
    return out_degrees_[v - node_range_.begin];
  }

  uint64_t BlockBytes(uint32_t global_vb) const;
  uint64_t TotalBytes() const;
  const VertexRange& node_range() const { return node_range_; }

 private:
  VertexValueStore(StorageService* storage, const RangePartition& partition,
                   NodeId node, size_t value_size);

  std::string BlockKey(uint32_t global_vb) const;
  uint32_t LocalVb(uint32_t global_vb) const;

  StorageService* storage_;
  const RangePartition* partition_;
  NodeId node_;
  size_t value_size_;
  VertexRange node_range_;
  std::vector<uint32_t> out_degrees_;  // indexed by v - node_range_.begin
};

}  // namespace hybridgraph
