// Fixed-size worker pool used to run the per-node phases of a superstep
// concurrently.
//
// Design notes:
//  - No work stealing: a single FIFO queue guarded by one mutex. Superstep
//    phases submit O(num_nodes) coarse tasks (one per simulated node), so
//    queue contention is negligible and FIFO order keeps the 1-thread pool
//    exactly equivalent to the old sequential loop.
//  - ParallelFor() is the phase barrier: it returns only after every index
//    has run, which is what gives the BSP engines their "all Phase A before
//    any Phase B" happens-before edge.
//  - A pool constructed with 1 thread runs ParallelFor bodies inline in the
//    caller (still in index order); Submit() always goes through the worker
//    so cross-thread delivery is exercised even at width 1.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace hybridgraph {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (itself clamped to at least 1).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Enqueues one task. Safe to call from any thread, including from inside
  /// a running task. Tasks must not throw (use ParallelFor for work that can
  /// fail).
  void Submit(std::function<void()> fn);

  /// Runs fn(0), ..., fn(n-1) across the pool and blocks until all of them
  /// have finished — this is the barrier the BSP phases rely on. Returns the
  /// non-OK Status with the smallest index if any body failed (deterministic
  /// regardless of completion order); exceptions escaping a body are captured
  /// as an internal-error Status the same way. Reusable: call it once per
  /// phase on the same pool.
  Status ParallelFor(uint32_t n, const std::function<Status(uint32_t)>& fn);

 private:
  void WorkerLoop();

  uint32_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace hybridgraph
