#!/bin/sh
# Single-entry CI gate: plain build + full test suite, then both sanitizer
# sweeps. Everything a change must pass before it merges.
#
#   scripts/ci.sh            # uses build/, build-asan/, build-tsan/
set -eu
cd "$(dirname "$0")/.."

echo "==> header hygiene (each public core header compiles in an isolated TU)"
sh scripts/check_headers.sh

echo "==> plain build + full ctest"
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "==> spill micro-benchmark (BENCH_spill.json)"
./build/bench/bench_spill BENCH_spill.json

echo "==> overlapped-I/O pipeline bench (BENCH_pipeline.json)"
./build/bench/bench_pipeline BENCH_pipeline.json

echo "==> adaptive-crossover bench (BENCH_adaptive.json)"
./build/bench/bench_fig11_13_prediction BENCH_adaptive.json

# Keep the benchmark baselines under version control so regressions show up
# as diffs; skip quietly when the numbers did not change (or outside git).
if [ -n "$(git status --porcelain BENCH_spill.json BENCH_pipeline.json BENCH_adaptive.json 2>/dev/null)" ]; then
  git add BENCH_spill.json BENCH_pipeline.json BENCH_adaptive.json
  git commit -m "Update CI benchmark baselines"
fi

echo "==> AddressSanitizer sweep"
sh scripts/check_asan.sh build-asan

echo "==> ThreadSanitizer sweep"
sh scripts/check_tsan.sh build-tsan

echo "CI gate passed: build, tests, ASan and TSan all clean"
