#include "graph/adjacency_store.h"

#include <algorithm>

#include "util/codec.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

AdjacencyStore::AdjacencyStore(StorageService* storage,
                               const RangePartition& partition, NodeId node)
    : storage_(storage), partition_(&partition), node_(node) {}

std::string AdjacencyStore::BlockKey(uint32_t global_vb) const {
  return StringFormat("node%u/adj/%06u", node_, global_vb);
}

uint32_t AdjacencyStore::LocalVb(uint32_t global_vb) const {
  return global_vb - partition_->FirstVblockOf(node_);
}

Result<std::unique_ptr<AdjacencyStore>> AdjacencyStore::Build(
    StorageService* storage, const RangePartition& partition, NodeId node,
    const std::vector<RawEdge>& local_edges) {
  std::unique_ptr<AdjacencyStore> store(
      new AdjacencyStore(storage, partition, node));
  const VertexRange node_range = partition.NodeRange(node);

  // Bucket out-edges per local vertex.
  std::vector<std::vector<Edge>> adj(node_range.size());
  for (const auto& e : local_edges) {
    if (!node_range.Contains(e.src)) {
      return Status::InvalidArgument("edge with non-local source in Build");
    }
    adj[e.src - node_range.begin].push_back({e.dst, e.weight});
  }

  const uint32_t first_vb = partition.FirstVblockOf(node);
  const uint32_t last_vb = partition.LastVblockOf(node);
  store->block_bytes_.resize(last_vb - first_vb, 0);
  store->block_edges_.resize(last_vb - first_vb, 0);

  for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
    const VertexRange r = partition.VblockRange(vb);
    Buffer buf;
    Encoder enc(&buf);
    uint64_t edges = 0;
    for (VertexId v = r.begin; v < r.end; ++v) {
      const auto& out = adj[v - node_range.begin];
      enc.PutFixed32(v);
      enc.PutVarint64(out.size());
      for (const auto& edge : out) {
        enc.PutFixed32(edge.dst);
        enc.PutFloat(edge.weight);
      }
      edges += out.size();
    }
    HG_RETURN_IF_ERROR(
        storage->Write(store->BlockKey(vb), buf.AsSlice(), IoClass::kSeqWrite));
    store->block_bytes_[vb - first_vb] = buf.size();
    store->block_edges_[vb - first_vb] = edges;
  }
  return store;
}

Status AdjacencyStore::ReadBlock(uint32_t global_vb,
                                 std::vector<VertexAdj>* out,
                                 ReadPipeline* pipeline) {
  const std::string key = BlockKey(global_vb);
  const ReadOptions opts{.io_class = IoClass::kSeqRead};
  auto read = pipeline ? pipeline->Fetch(key, opts) : storage_->Read(key, opts);
  if (!read.ok()) return read.status();
  const std::vector<uint8_t>& raw = read->data;
  const VertexRange r = partition_->VblockRange(global_vb);
  Decoder dec{Slice(raw)};
  out->clear();
  out->reserve(r.size());
  for (uint32_t i = 0; i < r.size(); ++i) {
    VertexAdj va;
    uint64_t count;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&va.id));
    HG_RETURN_IF_ERROR(dec.GetVarint64(&count));
    va.out.resize(count);
    for (uint64_t k = 0; k < count; ++k) {
      HG_RETURN_IF_ERROR(dec.GetFixed32(&va.out[k].dst));
      HG_RETURN_IF_ERROR(dec.GetFloat(&va.out[k].weight));
    }
    out->push_back(std::move(va));
  }
  if (!dec.AtEnd()) return Status::Corruption("trailing bytes in adjacency block");
  return Status::OK();
}

void AdjacencyStore::PrefetchBlock(uint32_t global_vb, ReadPipeline* pipeline) {
  if (pipeline == nullptr) return;
  pipeline->Schedule(BlockKey(global_vb),
                     ReadOptions{.io_class = IoClass::kSeqRead});
}

uint64_t AdjacencyStore::BlockBytes(uint32_t global_vb) const {
  return block_bytes_[LocalVb(global_vb)];
}

uint64_t AdjacencyStore::BlockEdges(uint32_t global_vb) const {
  return block_edges_[LocalVb(global_vb)];
}

uint64_t AdjacencyStore::TotalBytes() const {
  uint64_t t = 0;
  for (auto b : block_bytes_) t += b;
  return t;
}

uint64_t AdjacencyStore::TotalEdges() const {
  uint64_t t = 0;
  for (auto e : block_edges_) t += e;
  return t;
}

}  // namespace hybridgraph
