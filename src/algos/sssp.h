// Single-source shortest paths: Traversal-Style, combinable (min).
#pragma once

#include <limits>

#include "core/program.h"

namespace hybridgraph {

/// \brief SSSP vertex program.
///
/// The active set starts at one source vertex and sweeps outward, shrinking
/// again as distances converge — the paper's canonical Traversal-Style
/// workload where the message volume (and thus the push/b-pull winner)
/// changes across supersteps.
struct SsspProgram {
  using Value = float;
  using Message = float;
  static constexpr bool kCombinable = true;
  static constexpr bool kAlwaysActive = false;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);

  VertexId source = 0;

  static constexpr float kInf = std::numeric_limits<float>::infinity();

  Value InitValue(VertexId v, const SuperstepContext&) const {
    return v == source ? 0.0f : kInf;
  }
  bool InitActive(VertexId v) const { return v == source; }

  UpdateResult Update(VertexId v, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0) {
      return {false, v == source};
    }
    float best = kInf;
    for (float m : msgs) best = best < m ? best : m;
    if (best < *value) {
      *value = best;
      return {true, true};
    }
    return {false, false};
  }

  Message GenMessage(VertexId, const Value& value, uint32_t, const Edge& e,
                     const SuperstepContext&) const {
    return value + e.weight;
  }

  static Message Combine(const Message& a, const Message& b) {
    return a < b ? a : b;
  }
};

}  // namespace hybridgraph
