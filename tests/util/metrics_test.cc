#include "util/metrics.h"

#include <gtest/gtest.h>

namespace hybridgraph {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HighWaterMark, TracksMax) {
  HighWaterMark h;
  h.Update(5);
  h.Update(3);
  h.Update(9);
  h.Update(1);
  EXPECT_EQ(h.value(), 9u);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v : {1, 2, 3, 4, 100}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 22.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(Histogram, QuantilesMonotonic) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i);
  const uint64_t p50 = h.ValueAtQuantile(0.5);
  const uint64_t p90 = h.ValueAtQuantile(0.9);
  const uint64_t p99 = h.ValueAtQuantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p99, 500u);  // bucketed upper bound, but must cover the tail
}

TEST(Histogram, ZeroBucket) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(MetricRegistry, SnapshotAndReset) {
  MetricRegistry reg;
  reg.GetCounter("a")->Add(3);
  reg.GetCounter("b")->Add(4);
  reg.GetCounter("a")->Add(1);
  auto snap = reg.Snapshot();
  EXPECT_EQ(snap.at("a"), 4u);
  EXPECT_EQ(snap.at("b"), 4u);
  reg.ResetAll();
  EXPECT_EQ(reg.Snapshot().at("a"), 0u);
}

}  // namespace
}  // namespace hybridgraph
