file(REMOVE_RECURSE
  "CMakeFiles/hg_io_tests.dir/io/disk_model_test.cc.o"
  "CMakeFiles/hg_io_tests.dir/io/disk_model_test.cc.o.d"
  "CMakeFiles/hg_io_tests.dir/io/message_spill_test.cc.o"
  "CMakeFiles/hg_io_tests.dir/io/message_spill_test.cc.o.d"
  "CMakeFiles/hg_io_tests.dir/io/storage_test.cc.o"
  "CMakeFiles/hg_io_tests.dir/io/storage_test.cc.o.d"
  "hg_io_tests"
  "hg_io_tests.pdb"
  "hg_io_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_io_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
