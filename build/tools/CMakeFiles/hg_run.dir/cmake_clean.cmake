file(REMOVE_RECURSE
  "CMakeFiles/hg_run.dir/hg_run.cc.o"
  "CMakeFiles/hg_run.dir/hg_run.cc.o.d"
  "hg_run"
  "hg_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
