file(REMOVE_RECURSE
  "CMakeFiles/hg_util_tests.dir/util/buffer_test.cc.o"
  "CMakeFiles/hg_util_tests.dir/util/buffer_test.cc.o.d"
  "CMakeFiles/hg_util_tests.dir/util/codec_test.cc.o"
  "CMakeFiles/hg_util_tests.dir/util/codec_test.cc.o.d"
  "CMakeFiles/hg_util_tests.dir/util/metrics_test.cc.o"
  "CMakeFiles/hg_util_tests.dir/util/metrics_test.cc.o.d"
  "CMakeFiles/hg_util_tests.dir/util/rng_test.cc.o"
  "CMakeFiles/hg_util_tests.dir/util/rng_test.cc.o.d"
  "CMakeFiles/hg_util_tests.dir/util/status_test.cc.o"
  "CMakeFiles/hg_util_tests.dir/util/status_test.cc.o.d"
  "CMakeFiles/hg_util_tests.dir/util/string_util_test.cc.o"
  "CMakeFiles/hg_util_tests.dir/util/string_util_test.cc.o.d"
  "hg_util_tests"
  "hg_util_tests.pdb"
  "hg_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
