// TCP transport: the same frame protocol carried over real loopback sockets,
// with a real failure story — per-call deadlines, bounded retry with seeded
// exponential backoff, reconnect on broken persistent connections, and
// exactly-once delivery under retry via per-channel sequence numbers.
//
// Each node owns a listening socket served by its own thread; callers keep
// one persistent connection per (src, dst) channel. The wire protocol is
//
//   request:  [kind u8: 0=post 1=call][seq fixed64][FrameHeader][payload]
//   response: [code u8: StatusCode][len fixed32][payload or error message]
//
// Sequence numbers increase per channel. The receiver remembers, per channel,
// the last sequence it executed and that frame's full response; a retried
// frame (same seq, e.g. because the response was lost to a timeout or a dead
// connection) is answered from that cache without re-running the handler, so
// Post/Call side effects apply exactly once no matter how many transport-level
// retries happen. Handler errors travel back in the response frame (they are
// application outcomes, not transport faults, and are never retried).
//
// Retry schedules are deterministic: backoff jitter is drawn from a per-channel
// SplitMix64 stream seeded from Options::seed, so a fixed seed replays the
// identical delay sequence. Transport-level faults are counted (retries,
// timeouts, reconnects) and surfaced through Transport::fault_counters() into
// SuperstepMetrics.
//
// Handler dispatch is serialized by a transport-wide mutex, which both keeps
// the (single-threaded) engine state safe and provides the happens-before
// edges between the driver thread and the server threads.
//
// The in-process transport remains the default (deterministic, no kernel in
// the loop); the TCP transport exists to prove the RPC layer end-to-end over
// real sockets, and the full engine stack runs on it (see
// transport config in JobConfig and the tcp tests).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "util/rng.h"

namespace hybridgraph {

class TcpTransport : public Transport {
 public:
  /// Reliability knobs, mirrored by the tcp_* fields of JobConfig.
  struct Options {
    /// Deadline for one attempt's response (SO_RCVTIMEO); 0 = wait forever.
    uint32_t call_timeout_ms = 5000;
    /// Attempts beyond the first before a send gives up.
    uint32_t max_retries = 3;
    /// First backoff delay; doubles per attempt (exponential).
    uint32_t backoff_base_us = 200;
    /// Backoff ceiling.
    uint32_t backoff_max_us = 50000;
    /// Seeds the per-channel jitter streams (schedules replay per seed).
    uint64_t seed = 42;
    /// Frames larger than this are rejected on both ends.
    uint32_t max_frame_bytes = 64u << 20;
  };

  explicit TcpTransport(uint32_t num_nodes);
  TcpTransport(uint32_t num_nodes, Options options);
  ~TcpTransport() override;

  /// Binds one loopback listener per node and starts the server threads.
  Status Start() override;

  Status Post(NodeId src, NodeId dst, RpcMethod method, Slice payload) override;
  Status Call(NodeId src, NodeId dst, RpcMethod method, Slice payload,
              std::vector<uint8_t>* response) override;

  TransportFaultCounters fault_counters() const override;

  /// Port the given node listens on (0 before Start()).
  uint16_t port(NodeId node) const { return ports_[node]; }
  const Options& options() const { return options_; }

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

 private:
  /// One persistent client connection (src → dst) plus its retry state. The
  /// channel mutex is held for the whole request/response exchange, so
  /// concurrent senders on the same channel serialize while distinct channels
  /// proceed in parallel.
  struct Channel {
    std::mutex mutex;
    int fd = -1;
    uint64_t next_seq = 1;
    bool ever_connected = false;  // a later connect is a *re*connect
    Rng jitter{0};
  };

  /// Receiver-side exactly-once state for one channel, guarded by
  /// dispatch_mutex_.
  struct DedupState {
    uint64_t last_seq = 0;
    std::vector<uint8_t> last_response;  // full response frame for last_seq
  };

  Status SendFrame(NodeId src, NodeId dst, RpcMethod method, Slice payload,
                   bool is_call, std::vector<uint8_t>* response);
  /// One attempt: (re)connect if needed, write the frame, read the response.
  Status TrySend(Channel* ch, NodeId dst, Slice frame,
                 std::vector<uint8_t>* response_frame);
  Status ConnectChannel(Channel* ch, NodeId dst);
  void CloseChannel(Channel* ch);
  void ServeNode(NodeId node);
  void ServeConnection(NodeId node, int fd);
  void Shutdown();

  Options options_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::vector<int> listen_fds_;
  std::vector<uint16_t> ports_;
  std::vector<std::thread> server_threads_;
  // channels_[src * num_nodes + dst]
  std::unique_ptr<Channel[]> channels_;
  std::mutex dispatch_mutex_;
  std::map<std::pair<NodeId, NodeId>, DedupState> dedup_;  // (src,dst) keyed

  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> reconnects_{0};
};

}  // namespace hybridgraph
