// The VE-BLOCK edge layout (Sec 4.1): for each local Vblock b_j, one Eblock
// g_ji per destination Vblock b_i, holding the edges (u, v) with u in b_j and
// v in b_i, clustered into per-source *fragments* (src id + count + edges).
//
// Per-Vblock metadata X_j (vertex count, total in/out degree, a bitmap of
// which destination Vblocks have edges, and a responding indicator) lets
// Pull-Respond skip Eblocks that cannot produce messages. The store also
// keeps an in-memory per-Eblock index (fragments / aux bytes / edge bytes) —
// this is what the hybrid engine uses to *predict* C_io(b-pull) while running
// push, without touching disk.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/partition.h"
#include "graph/types.h"
#include "io/prefetch.h"
#include "io/storage.h"

namespace hybridgraph {

/// Per-Vblock metadata X_j (paper Sec 4.1).
struct VblockMeta {
  uint32_t num_vertices = 0;
  uint64_t in_degree = 0;   ///< total in-degree of the Vblock's vertices
  uint64_t out_degree = 0;  ///< total out-degree
  std::vector<bool> edge_bitmap;  ///< bit i: Eblock g_{j,i} is non-empty
};

class VeBlockStore {
 public:
  /// One decoded fragment: all edges of one source vertex into one Vblock.
  struct Fragment {
    VertexId src;
    std::vector<Edge> edges;
  };

  /// Result of scanning one Eblock, with the byte split the cost model needs:
  /// fragment auxiliary data (IO(F)) vs edge payload (IO(E)).
  struct ScanResult {
    std::vector<Fragment> fragments;
    uint64_t aux_bytes = 0;
    uint64_t edge_bytes = 0;
  };

  /// Static per-Eblock index entry (available without I/O).
  struct EblockIndex {
    uint32_t num_fragments = 0;
    uint64_t aux_bytes = 0;
    uint64_t edge_bytes = 0;
    uint64_t num_edges = 0;

    uint64_t total_bytes() const {
      // +1 for the fragment-count varint written even when empty? Empty
      // Eblocks are not stored at all, so zero entries really are zero bytes.
      return num_fragments == 0 ? 0 : aux_bytes + edge_bytes;
    }
  };

  /// Builds Eblocks + metadata from this node's local edges.
  ///
  /// \param in_degrees in-degree per *global* vertex id (needed for X_j and
  ///        the Eq. 6 Vblock sizing; computed once at load time).
  static Result<std::unique_ptr<VeBlockStore>> Build(
      StorageService* storage, const RangePartition& partition, NodeId node,
      const std::vector<RawEdge>& local_edges,
      const std::vector<uint32_t>& in_degrees);

  /// Sequentially scans Eblock g_{src_vb, dst_vb} (metered kSeqRead; the
  /// whole block is read — the paper notes useless edges in a block are
  /// still scanned). Returns NotFound-free empty result for empty Eblocks.
  /// A non-null `pipeline` serves the read through the prefetcher.
  Status ScanEblock(uint32_t src_vb, uint32_t dst_vb, ScanResult* out,
                    ReadPipeline* pipeline = nullptr);

  /// Stages a background read of Eblock g_{src_vb, dst_vb} for a later
  /// ScanEblock. No-op on a null/disabled pipeline or an empty Eblock.
  void PrefetchEblock(uint32_t src_vb, uint32_t dst_vb, ReadPipeline* pipeline);

  const VblockMeta& Meta(uint32_t global_vb) const {
    return metas_[LocalVb(global_vb)];
  }
  bool HasEdges(uint32_t src_vb, uint32_t dst_vb) const {
    return metas_[LocalVb(src_vb)].edge_bitmap[dst_vb];
  }
  const EblockIndex& Index(uint32_t src_vb, uint32_t dst_vb) const {
    return index_[LocalVb(src_vb)][dst_vb];
  }

  /// Fragments across all local Eblocks (the f of Theorem 2).
  uint64_t TotalFragments() const { return total_fragments_; }
  uint64_t TotalEdgeBytes() const { return total_edge_bytes_; }
  uint64_t TotalAuxBytes() const { return total_aux_bytes_; }
  uint64_t TotalBytes() const { return total_edge_bytes_ + total_aux_bytes_; }

 private:
  VeBlockStore(StorageService* storage, const RangePartition& partition,
               NodeId node);

  std::string EblockKey(uint32_t src_vb, uint32_t dst_vb) const;
  uint32_t LocalVb(uint32_t global_vb) const {
    return global_vb - first_vb_;
  }

  StorageService* storage_;
  const RangePartition* partition_;
  NodeId node_;
  uint32_t first_vb_;
  std::vector<VblockMeta> metas_;                 // per local vblock
  std::vector<std::vector<EblockIndex>> index_;   // [local vblock][global vblock]
  uint64_t total_fragments_ = 0;
  uint64_t total_edge_bytes_ = 0;
  uint64_t total_aux_bytes_ = 0;
};

}  // namespace hybridgraph
