// Backend-parameterized storage tests: MemStorage and FileStorage must
// behave identically through the StorageService interface.
#include "io/storage.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace hybridgraph {
namespace {

enum class Backend { kMem, kFile };

class StorageTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kMem) {
      storage_ = std::make_unique<MemStorage>();
    } else {
      dir_ = ::testing::TempDir() + "/hg_storage_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this));
      auto r = FileStorage::Open(dir_);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      storage_ = std::move(r).ValueOrDie();
    }
  }

  void TearDown() override {
    storage_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  static Slice S(const std::string& s) { return Slice(s); }

  std::unique_ptr<StorageService> storage_;
  std::string dir_;
};

TEST_P(StorageTest, WriteReadRoundTrip) {
  ASSERT_TRUE(storage_->Write("a/b", S("hello"), IoClass::kSeqWrite).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->Read("a/b", &out, IoClass::kSeqRead).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "hello");
}

TEST_P(StorageTest, WriteOverwrites) {
  ASSERT_TRUE(storage_->Write("k", S("first"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Write("k", S("2nd"), IoClass::kSeqWrite).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "2nd");
  EXPECT_EQ(storage_->SizeOf("k"), 3u);
}

TEST_P(StorageTest, AppendGrows) {
  ASSERT_TRUE(storage_->Append("k", S("ab"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Append("k", S("cd"), IoClass::kSeqWrite).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "abcd");
}

TEST_P(StorageTest, ReadMissingIsNotFound) {
  std::vector<uint8_t> out;
  EXPECT_EQ(storage_->Read("ghost", &out, IoClass::kSeqRead).code(),
            StatusCode::kNotFound);
}

TEST_P(StorageTest, ReadRange) {
  ASSERT_TRUE(storage_->Write("k", S("0123456789"), IoClass::kSeqWrite).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->ReadRange("k", 3, 4, &out, IoClass::kRandRead).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "3456");
  EXPECT_EQ(storage_->ReadRange("k", 8, 5, &out, IoClass::kRandRead).code(),
            StatusCode::kOutOfRange);
}

TEST_P(StorageTest, WriteRange) {
  ASSERT_TRUE(storage_->Write("k", S("0123456789"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->WriteRange("k", 2, S("XY"), IoClass::kRandWrite).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "01XY456789");
  EXPECT_EQ(storage_->WriteRange("k", 9, S("ZZ"), IoClass::kRandWrite).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(storage_->WriteRange("nope", 0, S("a"), IoClass::kRandWrite).code(),
            StatusCode::kNotFound);
}

TEST_P(StorageTest, ExistsDeleteSize) {
  EXPECT_FALSE(storage_->Exists("k"));
  EXPECT_EQ(storage_->SizeOf("k"), 0u);
  ASSERT_TRUE(storage_->Write("k", S("abc"), IoClass::kSeqWrite).ok());
  EXPECT_TRUE(storage_->Exists("k"));
  EXPECT_EQ(storage_->SizeOf("k"), 3u);
  ASSERT_TRUE(storage_->Delete("k").ok());
  EXPECT_FALSE(storage_->Exists("k"));
}

TEST_P(StorageTest, ListKeysByPrefix) {
  ASSERT_TRUE(storage_->Write("x/1", S("a"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Write("x/2", S("b"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Write("y/1", S("c"), IoClass::kSeqWrite).ok());
  auto keys = storage_->ListKeys("x/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "x/1");
  EXPECT_EQ(keys[1], "x/2");
}

TEST_P(StorageTest, MeterCountsBytes) {
  ASSERT_TRUE(storage_->Write("k", S("12345"), IoClass::kRandWrite).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kRandWrite), 5u);
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 5u);
}

TEST_P(StorageTest, PageCacheMakesRereadsCached) {
  storage_->EnablePageCache(1024 * 1024);
  ASSERT_TRUE(storage_->Write("k", S("abcdef"), IoClass::kSeqWrite).ok());
  std::vector<uint8_t> out;
  // The write inserted it into the cache; the read is a hit.
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());
  EXPECT_EQ(storage_->meter()->cached_bytes(IoClass::kSeqRead), 6u);
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 0u);
}

TEST_P(StorageTest, PageCacheColdReadThenWarm) {
  ASSERT_TRUE(storage_->Write("k", S("abcdef"), IoClass::kSeqWrite).ok());
  storage_->EnablePageCache(1024 * 1024);  // enabled after the write
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());   // cold
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());   // warm
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 6u);
  EXPECT_EQ(storage_->meter()->cached_bytes(IoClass::kSeqRead), 6u);
}

TEST_P(StorageTest, PageCacheEvictsLru) {
  storage_->EnablePageCache(10);  // tiny: one 6-byte blob at a time
  ASSERT_TRUE(storage_->Write("a", S("aaaaaa"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Write("b", S("bbbbbb"), IoClass::kSeqWrite).ok());
  // "a" was evicted by "b": reading it is a device read again.
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->Read("a", &out, IoClass::kSeqRead).ok());
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 6u);
}

TEST_P(StorageTest, DeleteDropsFromCache) {
  storage_->EnablePageCache(1024);
  ASSERT_TRUE(storage_->Write("k", S("xxxx"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Delete("k").ok());
  ASSERT_TRUE(storage_->Write("k", S("yyyy"), IoClass::kSeqWrite).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "yyyy");
}

TEST_P(StorageTest, EmptyBlob) {
  ASSERT_TRUE(storage_->Write("k", Slice(), IoClass::kSeqWrite).ok());
  std::vector<uint8_t> out{1, 2, 3};
  ASSERT_TRUE(storage_->Read("k", &out, IoClass::kSeqRead).ok());
  EXPECT_TRUE(out.empty());
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageTest,
                         ::testing::Values(Backend::kMem, Backend::kFile),
                         [](const auto& info) {
                           return info.param == Backend::kMem ? "Mem" : "File";
                         });

}  // namespace
}  // namespace hybridgraph
