// hg_run — command-line driver for HybridGraph jobs.
//
// Examples:
//   hg_run --graph dataset:livej --algo pagerank --mode hybrid --supersteps 10
//   hg_run --graph my_edges.txt --algo sssp --mode bpull --nodes 8 \
//          --buffer 5000 --csv run.csv --trace
//   hg_run --graph dataset:twi --algo sssp --mode hybrid --disk ssd --threads 0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "core/metrics_csv.h"
#include "hybridgraph/hybridgraph.h"

using namespace hybridgraph;

namespace {

struct Options {
  std::string graph;
  std::string algo = "pagerank";
  std::string mode = "hybrid";
  std::string disk = "hdd";
  std::string csv;
  std::string trace_json;
  uint32_t nodes = 5;
  uint32_t threads = 1;
  uint64_t buffer = UINT64_MAX;
  uint64_t vertex_cache = UINT64_MAX;
  uint32_t prefetch_depth = 0;
  uint64_t prefetch_budget = 0;
  bool prefetch_budget_set = false;
  int supersteps = 10;
  VertexId source = 0;
  bool source_set = false;
  bool memory_resident = false;
  bool trace = false;
  bool tcp = false;
  uint32_t tcp_timeout_ms = 5000;
  uint32_t tcp_retries = 3;
  std::string failpoints;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: hg_run --graph <file|dataset:NAME> [options]\n"
      "  --algo pagerank|pagerank-delta|sssp|bfs|lpa|sa|wcc   (default pagerank)\n"
      "  --mode push|pushm|pull|bpull|hybrid|adaptive         (default hybrid)\n"
      "  --nodes N          simulated computational nodes      (default 5)\n"
      "  --threads N        worker threads, 0 = all cores      (default 1)\n"
      "  --buffer N         message buffer B_i per node        (default: unlimited)\n"
      "  --vertex-cache N   v-pull LRU vertex cache per node\n"
      "  --prefetch-depth N overlapped-I/O readahead depth, 0 = off (default 0)\n"
      "  --prefetch-budget B readahead byte budget per node      (default 4MiB)\n"
      "  --supersteps N     superstep cap                      (default 10)\n"
      "  --source V         SSSP/BFS source vertex             (default: max out-degree)\n"
      "  --disk hdd|ssd     device profile                     (default hdd)\n"
      "  --memory           memory-resident scenario (no modeled I/O)\n"
      "  --csv FILE         write per-superstep metrics as CSV\n"
      "  --trace            print the per-superstep table\n"
      "  --trace-json FILE  write per-phase spans as chrome://tracing JSON\n"
      "  --tcp              run the frame protocol over loopback TCP\n"
      "  --tcp-timeout MS   per-call deadline, TCP only          (default 5000)\n"
      "  --tcp-retries N    retry attempts beyond the first      (default 3)\n"
      "  --failpoints SPEC  arm fail-points, e.g. 'storage.write=error:p=0.01'\n"
      "                     (also read from the HG_FAILPOINTS env var)\n"
      "datasets: livej wiki orkut twi fri uk (paper Table 4 scale models)\n");
}

Result<EngineMode> ParseMode(const std::string& s) {
  static const std::map<std::string, EngineMode> kModes = {
      {"push", EngineMode::kPush},   {"pushm", EngineMode::kPushM},
      {"pull", EngineMode::kVPull},  {"bpull", EngineMode::kBPull},
      {"b-pull", EngineMode::kBPull}, {"hybrid", EngineMode::kHybrid},
      {"adaptive", EngineMode::kAdaptive},
  };
  auto it = kModes.find(s);
  if (it == kModes.end()) return Status::InvalidArgument("unknown mode: " + s);
  return it->second;
}

Result<EdgeListGraph> LoadGraph(const std::string& spec) {
  const std::string prefix = "dataset:";
  if (spec.rfind(prefix, 0) == 0) {
    HG_ASSIGN_OR_RETURN(DatasetSpec ds, FindDataset(spec.substr(prefix.size())));
    return BuildDataset(ds);
  }
  return LoadEdgeListFile(spec);
}

void PrintTrace(const JobStats& stats) {
  std::printf("%4s %8s %10s %12s %12s %12s %10s\n", "t", "mode", "responding",
              "messages", "io_bytes", "net_bytes", "seconds");
  for (const auto& s : stats.supersteps) {
    std::printf("%4d %8s %10llu %12llu %12llu %12llu %10.5f%s\n", s.superstep,
                EngineModeName(s.mode),
                (unsigned long long)s.responding_vertices,
                (unsigned long long)s.messages_produced,
                (unsigned long long)s.io.Total(),
                (unsigned long long)s.net_bytes, s.superstep_seconds,
                s.switched ? "  <-- switch" : "");
  }
}

int RunJob(const Options& opt, const EdgeListGraph& graph, EngineMode mode,
           AlgoKind algo) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = opt.nodes;
  cfg.num_threads = opt.threads;
  cfg.msg_buffer_per_node = opt.buffer;
  cfg.vpull_vertex_cache = opt.vertex_cache;
  cfg.io.prefetch_depth = opt.prefetch_depth;
  if (opt.prefetch_budget_set) cfg.io.prefetch_budget_bytes = opt.prefetch_budget;
  cfg.max_supersteps = opt.supersteps;
  cfg.memory_resident = opt.memory_resident;
  cfg.disk = opt.disk == "ssd" ? DiskProfile::Ssd() : DiskProfile::Hdd();
  if (opt.tcp) cfg.transport = TransportKind::kTcp;
  cfg.tcp_call_timeout_ms = opt.tcp_timeout_ms;
  cfg.tcp_max_retries = opt.tcp_retries;
  cfg.trace_path = opt.trace_json;
  cfg.failpoints = opt.failpoints;
  if (cfg.failpoints.empty()) {
    if (const char* env = std::getenv("HG_FAILPOINTS")) cfg.failpoints = env;
  }

  AlgoSpec spec;
  spec.kind = algo;
  spec.source = opt.source;
  spec.source_set = opt.source_set;

  auto engine_r = MakeEngine(cfg, spec);
  if (!engine_r.ok()) {
    std::fprintf(stderr, "cannot build engine: %s\n",
                 engine_r.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<AnyEngine> engine = std::move(*engine_r);
  Status st = engine->Load(graph);
  if (st.ok()) st = engine->Run();
  if (!st.ok()) {
    std::fprintf(stderr, "job failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const JobStats& stats = engine->stats();
  std::printf("%s\n", stats.Summary().c_str());
  if (opt.trace) PrintTrace(stats);
  if (!opt.csv.empty()) {
    Status cs = WriteSuperstepCsv(stats, opt.csv);
    if (!cs.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n", cs.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", opt.csv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--graph") {
      opt.graph = next();
    } else if (arg == "--algo") {
      opt.algo = next();
    } else if (arg == "--mode") {
      opt.mode = next();
    } else if (arg == "--nodes") {
      opt.nodes = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--threads") {
      opt.threads = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--buffer") {
      opt.buffer = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--vertex-cache") {
      opt.vertex_cache = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--prefetch-depth") {
      opt.prefetch_depth =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--prefetch-budget") {
      opt.prefetch_budget = std::strtoull(next(), nullptr, 10);
      opt.prefetch_budget_set = true;
    } else if (arg == "--supersteps") {
      opt.supersteps = std::atoi(next());
    } else if (arg == "--source") {
      opt.source = static_cast<VertexId>(std::strtoul(next(), nullptr, 10));
      opt.source_set = true;
    } else if (arg == "--disk") {
      opt.disk = next();
    } else if (arg == "--csv") {
      opt.csv = next();
    } else if (arg == "--memory") {
      opt.memory_resident = true;
    } else if (arg == "--tcp") {
      opt.tcp = true;
    } else if (arg == "--tcp-timeout") {
      opt.tcp_timeout_ms = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--tcp-retries") {
      opt.tcp_retries = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--failpoints") {
      opt.failpoints = next();
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--trace-json") {
      opt.trace_json = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (opt.graph.empty()) {
    Usage();
    return 2;
  }

  auto graph_r = LoadGraph(opt.graph);
  if (!graph_r.ok()) {
    std::fprintf(stderr, "cannot load graph: %s\n",
                 graph_r.status().ToString().c_str());
    return 1;
  }
  const EdgeListGraph& graph = *graph_r;
  std::printf("graph: %llu vertices, %llu edges\n",
              (unsigned long long)graph.num_vertices,
              (unsigned long long)graph.num_edges());

  auto mode_r = ParseMode(opt.mode);
  if (!mode_r.ok()) {
    std::fprintf(stderr, "%s\n", mode_r.status().ToString().c_str());
    return 2;
  }
  auto algo_r = ParseAlgoKind(opt.algo);
  if (!algo_r.ok()) {
    std::fprintf(stderr, "%s\n", algo_r.status().ToString().c_str());
    return 2;
  }
  return RunJob(opt, graph, *mode_r, *algo_r);
}
