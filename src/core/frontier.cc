#include "core/frontier.h"

#include <algorithm>

#include "util/failpoint.h"

namespace hybridgraph {

CellDecision DecideCell(const CellCostInputs& in, const AdaptivePolicy& policy) {
  if (in.cell_edges == 0 || in.cell_fragments == 0) return CellDecision::kSkip;
  if (in.active == 0) return CellDecision::kSkip;
  // Sparse source Vblock: the Beamer top-down condition at block
  // granularity. Push touches only the frontier's out-edges; a pull would
  // scan the whole Eblock for a handful of responding fragments.
  if (static_cast<double>(in.active) * policy.beta <
      static_cast<double>(in.vertices)) {
    return CellDecision::kPush;
  }
  // Dense enough for the bottom-up analogue: compare modeled per-cell bytes.
  // Push ships roughly the frontier's share of the cell's edges as message
  // records (α-weighted — each risks the spill write+read+sort-merge) plus
  // the cell's share of the adjacency block read that production charges per
  // row. Pull scans the whole Eblock (edge + fragment-aux payload, useless
  // edges included) and random-reads the responding fragments' source
  // values.
  const double frac = in.vertices > 0 ? static_cast<double>(in.active) /
                                            static_cast<double>(in.vertices)
                                      : 0.0;
  const double adj_share =
      in.row_edges > 0 ? static_cast<double>(in.adj_row_bytes) *
                             static_cast<double>(in.cell_edges) /
                             static_cast<double>(in.row_edges)
                       : 0.0;
  const double score_push = frac * static_cast<double>(in.cell_edges) *
                                static_cast<double>(in.msg_record_size) *
                                policy.alpha +
                            adj_share;
  const double score_pull =
      static_cast<double>(in.cell_edge_bytes) +
      static_cast<double>(in.cell_aux_bytes) +
      frac * static_cast<double>(in.cell_fragments) *
          static_cast<double>(in.value_record_size);
  return score_pull <= score_push ? CellDecision::kPull : CellDecision::kPush;
}

char CellDecisionChar(CellDecision d) {
  switch (d) {
    case CellDecision::kSkip:
      return '.';
    case CellDecision::kPush:
      return 'P';
    case CellDecision::kPull:
      return 'B';
  }
  return '?';
}

void Frontier::Reset(uint32_t n, const AdaptivePolicy& policy) {
  n_ = n;
  const double raw = policy.beta > 0
                         ? static_cast<double>(n) / policy.beta
                         : static_cast<double>(n);
  to_bitmap_ = std::max<uint32_t>(1, static_cast<uint32_t>(raw));
  rep_ = Rep::kQueue;
  count_ = 0;
  scout_degree_ = 0;
  queue_.clear();
  bitmap_.clear();
}

Status Frontier::Add(uint32_t li, uint32_t degree) {
  if (Has(li)) return Status::OK();
  if (rep_ == Rep::kQueue) {
    queue_.push_back(li);
  } else {
    bitmap_[li] = 1;
  }
  ++count_;
  scout_degree_ += degree;
  if (rep_ == Rep::kQueue && count_ > to_bitmap_) {
    // Dense now: the bitmap makes membership O(1) and stays O(n/8) bytes
    // regardless of how much denser the frontier gets.
    return ConvertTo(Rep::kBitmap);
  }
  return Status::OK();
}

Status Frontier::ConvertTo(Rep rep) {
  if (rep == rep_) return Status::OK();
  HG_FAIL_POINT("frontier.convert");
  if (rep == Rep::kBitmap) {
    bitmap_.assign(n_, 0);
    for (uint32_t li : queue_) bitmap_[li] = 1;
    queue_.clear();
    queue_.shrink_to_fit();
  } else {
    queue_.clear();
    queue_.reserve(count_);
    for (uint32_t li = 0; li < n_; ++li) {
      if (bitmap_[li]) queue_.push_back(li);
    }
    bitmap_.clear();
    bitmap_.shrink_to_fit();
  }
  rep_ = rep;
  return Status::OK();
}

Status Frontier::Compact() {
  if (rep_ == Rep::kBitmap && count_ <= to_bitmap_) {
    return ConvertTo(Rep::kQueue);
  }
  return Status::OK();
}

bool Frontier::Has(uint32_t li) const {
  if (rep_ == Rep::kBitmap) {
    return li < bitmap_.size() && bitmap_[li] != 0;
  }
  return std::find(queue_.begin(), queue_.end(), li) != queue_.end();
}

void Frontier::AppendTo(std::vector<uint32_t>* out) const {
  if (rep_ == Rep::kBitmap) {
    for (uint32_t li = 0; li < n_; ++li) {
      if (bitmap_[li]) out->push_back(li);
    }
    return;
  }
  std::vector<uint32_t> sorted = queue_;
  std::sort(sorted.begin(), sorted.end());
  out->insert(out->end(), sorted.begin(), sorted.end());
}

}  // namespace hybridgraph
