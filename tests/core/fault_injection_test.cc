// Deterministic fault injection end-to-end: seeded fail-point schedules
// threaded through storage, spill, checkpoint and TCP seams must replay
// bit-identically, propagate as error Statuses (never crash the process),
// and — for result-preserving faults (delays, recovered crashes, retried
// drops) — leave GatherValues() bit-identical to a fault-free run.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/recovery.h"
#include "graph/generator.h"
#include "hybridgraph/any_engine.h"
#include "tests/core/reference_impls.h"
#include "util/failpoint.h"

namespace hybridgraph {
namespace {

const EdgeListGraph& FaultGraph() {
  static const EdgeListGraph g = GeneratePowerLaw(500, 7.0, 0.8, 31);
  return g;
}

JobConfig BaseConfig(EngineMode mode) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 120;  // small enough to exercise spilling
  cfg.max_supersteps = 6;
  return cfg;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Instance().DisarmAll(); }
};

std::vector<uint8_t> RunPageRankRaw(JobConfig cfg) {
  auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
  EXPECT_TRUE(engine->Load(FaultGraph()).ok());
  EXPECT_TRUE(engine->Run().ok());
  return engine->GatherValuesRaw().ValueOrDie();
}

constexpr EngineMode kAllModes[] = {EngineMode::kPush, EngineMode::kPushM,
                                    EngineMode::kVPull, EngineMode::kBPull,
                                    EngineMode::kHybrid};

TEST_F(FaultInjectionTest, DelayScheduleIsResultInvariantAcrossThreadCounts) {
  // Delays perturb timing, not data: under a randomized seeded delay schedule
  // every mode must produce values bit-identical to its fault-free run, at
  // one worker thread and at eight.
  for (EngineMode mode : kAllModes) {
    SCOPED_TRACE(EngineModeName(mode));
    JobConfig cfg = BaseConfig(mode);
    const std::vector<uint8_t> expected = RunPageRankRaw(cfg);
    cfg.failpoints =
        "storage.read=delay:p=0.2,seed=11,us=1;"
        "storage.write=delay:p=0.3,seed=12,us=1;"
        "spill.flush=delay:p=0.5,seed=13,us=1";
    for (uint32_t threads : {1u, 8u}) {
      cfg.num_threads = threads;
      const std::vector<uint8_t> got = RunPageRankRaw(cfg);
      ASSERT_EQ(got.size(), expected.size());
      EXPECT_EQ(std::memcmp(got.data(), expected.data(), got.size()), 0)
          << "threads=" << threads;
      FailPointRegistry::Instance().DisarmAll();
    }
  }
}

TEST_F(FaultInjectionTest, StorageErrorPropagatesAsStatusNeverCrashes) {
  for (EngineMode mode : kAllModes) {
    SCOPED_TRACE(EngineModeName(mode));
    JobConfig cfg = BaseConfig(mode);
    cfg.failpoints = "storage.write=error:p=1,code=io";
    auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
    Status st = engine->Load(FaultGraph());
    if (st.ok()) st = engine->Run();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError) << st.message();
    FailPointRegistry::Instance().DisarmAll();
  }
}

TEST_F(FaultInjectionTest, SpillFlushErrorSurfacesFromRun) {
  JobConfig cfg = BaseConfig(EngineMode::kPush);
  cfg.failpoints = "spill.flush=error:p=1,code=io";
  auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
  Status st = engine->Load(FaultGraph());
  if (st.ok()) st = engine->Run();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.message();
}

TEST_F(FaultInjectionTest, FixedSeedReplaysIdenticalErrorSchedule) {
  // The same seed must fail on the same hit with the same message, run after
  // run — the reproducing property the fuzz harness relies on.
  auto run_once = []() {
    JobConfig cfg = BaseConfig(EngineMode::kBPull);
    cfg.failpoints = "storage.read=error:p=0.01,seed=77,code=corruption";
    auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
    Status st = engine->Load(FaultGraph());
    if (st.ok()) st = engine->Run();
    return st;
  };
  const Status first = run_once();
  FailPointRegistry::Instance().DisarmAll();
  const Status second = run_once();
  EXPECT_EQ(first.code(), second.code());
  EXPECT_EQ(first.message(), second.message());
}

TEST_F(FaultInjectionTest, InjectedCrashRecoversViaCheckpoints) {
  // A crash fired from inside a superstep (not at a barrier) must be caught
  // by the runner and recovered from the last checkpoint, with final results
  // matching the fault-free run. The site is "spill.flush": it is only hit
  // while supersteps execute, never during (re)loading.
  const auto g = FaultGraph();
  JobConfig cfg = BaseConfig(EngineMode::kPush);
  cfg.max_supersteps = 8;
  Engine<PageRankProgram> fault_free(cfg, PageRankProgram{});
  ASSERT_TRUE(fault_free.Load(g).ok());
  ASSERT_TRUE(fault_free.Run().ok());
  const auto expected = fault_free.GatherValues().ValueOrDie();

  FailPointScope scope("spill.flush=crash:after=6,max=1");
  ASSERT_TRUE(scope.status().ok());
  CheckpointingRunner<PageRankProgram> runner(cfg, PageRankProgram{},
                                              /*checkpoint_every=*/2);
  ASSERT_TRUE(runner.Run(g).ok());
  EXPECT_EQ(runner.recoveries(), 1);
  const auto got = runner.GatherValues().ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << "v=" << v;
  }
}

TEST_F(FaultInjectionTest, CrashRecoveryCrossesThreadCounts) {
  // Crash at 8 worker threads, recover, and still match the sequential
  // fault-free reference — the fire decision is a function of the hit index,
  // not of thread interleaving.
  const auto g = FaultGraph();
  JobConfig cfg = BaseConfig(EngineMode::kPush);
  cfg.max_supersteps = 8;
  Engine<PageRankProgram> fault_free(cfg, PageRankProgram{});  // 1 thread
  ASSERT_TRUE(fault_free.Load(g).ok());
  ASSERT_TRUE(fault_free.Run().ok());
  const auto expected = fault_free.GatherValues().ValueOrDie();

  FailPointScope scope("spill.flush=crash:after=10,max=1");
  ASSERT_TRUE(scope.status().ok());
  cfg.num_threads = 8;
  CheckpointingRunner<PageRankProgram> runner(cfg, PageRankProgram{},
                                              /*checkpoint_every=*/3);
  ASSERT_TRUE(runner.Run(g).ok());
  EXPECT_EQ(runner.recoveries(), 1);
  const auto got = runner.GatherValues().ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << "v=" << v;
  }
}

std::vector<std::string> SpillFilesUnder(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (path.find("/spill/") != std::string::npos) files.push_back(path);
  }
  return files;
}

TEST_F(FaultInjectionTest, RecoverySweepsOrphanedSpillRuns) {
  // A node dying mid-spill leaves run files on real disk that its successor
  // has no record of: runs registered before the crash, plus (in the torn
  // case) a blob written but never registered. RestoreCheckpoint must sweep
  // every spill prefix so no stray node*/spill/* file survives recovery.
  const auto g = FaultGraph();
  const std::string dir =
      ::testing::TempDir() + "/hg_spill_orphans_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  JobConfig cfg = BaseConfig(EngineMode::kPush);
  cfg.use_file_storage = true;
  cfg.storage_dir = dir;

  Engine<PageRankProgram> fault_free(BaseConfig(EngineMode::kPush),
                                     PageRankProgram{});
  ASSERT_TRUE(fault_free.Load(g).ok());
  ASSERT_TRUE(fault_free.Run().ok());
  const auto expected = fault_free.GatherValues().ValueOrDie();

  Engine<PageRankProgram> victim(cfg, PageRankProgram{});
  ASSERT_TRUE(victim.Load(g).ok());
  ASSERT_TRUE(victim.RunSuperstep().ok());
  ASSERT_TRUE(victim.RunSuperstep().ok());
  Buffer image;
  ASSERT_TRUE(victim.WriteCheckpoint(&image).ok());
  {
    // Two spill syncs land, then the node dies mid-superstep: the first two
    // runs of the crashed superstep stay registered on disk while the
    // in-memory record of them is lost with the process.
    FailPointScope fp("storage.sync=crash:after=2,max=1");
    ASSERT_TRUE(fp.status().ok());
    Status st = victim.RunSuperstep();
    ASSERT_FALSE(st.ok());
    ASSERT_TRUE(IsInjectedCrash(st)) << st.message();
  }
  // Torn variant: a blob written right before the death, never registered.
  {
    const std::string stray =
        dir + "/node0/node0/spill/b/run-000099";
    std::filesystem::create_directories(
        std::filesystem::path(stray).parent_path());
    std::ofstream f(stray, std::ios::binary);
    const char junk[12] = {1, 0};
    f.write(junk, sizeof junk);
    ASSERT_TRUE(f.good());
  }
  ASSERT_FALSE(SpillFilesUnder(dir).empty());

  // Successor incarnation over the same storage: restore must sweep both
  // inbox spill prefixes before re-spilling the checkpointed inbox.
  Engine<PageRankProgram> recovered(cfg, PageRankProgram{});
  ASSERT_TRUE(recovered.Load(g).ok());
  ASSERT_TRUE(recovered.RestoreCheckpoint(image.AsSlice()).ok());
  for (const std::string& f : SpillFilesUnder(dir)) {
    // Only the restored inbox's own re-spilled overflow may exist: one run
    // per node, in the current (a) prefix, freshly registered. Every file of
    // the dead incarnation — crashed-superstep runs, the planted stray — is
    // gone.
    EXPECT_NE(f.find("/spill/a/run-000000"), std::string::npos)
        << "stray spill file survived recovery: " << f;
  }

  // And the recovered run still converges to the fault-free fixpoint.
  while (recovered.superstep() < cfg.max_supersteps && !recovered.converged()) {
    ASSERT_TRUE(recovered.RunSuperstep().ok());
  }
  const auto got = recovered.GatherValues().ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << "v=" << v;
  }
  std::filesystem::remove_all(dir);
}

TEST_F(FaultInjectionTest, TcpDropsAreRetriedAndCounted) {
  // Injected frame drops on the TCP path are absorbed by the retry layer:
  // results match the in-process transport and the recovery work shows up in
  // SuperstepMetrics (net_retries), keeping the fault visible to operators.
  const auto g = FaultGraph();
  JobConfig cfg = BaseConfig(EngineMode::kBPull);
  cfg.max_supersteps = 4;
  const std::vector<uint8_t> expected = RunPageRankRaw(cfg);

  cfg.transport = TransportKind::kTcp;
  cfg.tcp_max_retries = 6;
  cfg.failpoints = "tcp.drop=error:p=0.05,seed=5,code=net";
  auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
  ASSERT_TRUE(engine->Load(g).ok());
  ASSERT_TRUE(engine->Run().ok());
  const std::vector<uint8_t> got = engine->GatherValuesRaw().ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(std::memcmp(got.data(), expected.data(), got.size()), 0);

  uint64_t total_retries = 0;
  for (const auto& s : engine->stats().supersteps) total_retries += s.net_retries;
  EXPECT_GE(total_retries, 1u);
  EXPECT_GE(FailPointRegistry::Instance().fires("tcp.drop"), 1u);
}

TEST_F(FaultInjectionTest, BadFailpointConfigRejectedByValidate) {
  JobConfig cfg = BaseConfig(EngineMode::kPush);
  cfg.failpoints = "storage.write=explode";
  auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
  Status st = engine->Load(FaultGraph());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("failpoints"), std::string::npos) << st.message();
}

}  // namespace
}  // namespace hybridgraph
