// Small string/formatting helpers used by benches and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hybridgraph {

/// Formats a byte count as a human-readable string ("1.25 GB").
std::string HumanBytes(uint64_t bytes);

/// Formats seconds with adaptive precision ("12.3s", "380ms").
std::string HumanSeconds(double seconds);

/// Splits on a single character delimiter; keeps empty fields.
std::vector<std::string> SplitString(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string TrimString(const std::string& s);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hybridgraph
