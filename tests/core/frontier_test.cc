// Unit tests for the adaptive path's frontier representation and the pure
// per-cell decision function (core/frontier.{h,cc}): queue<->bitmap
// conversion edge cases, exact threshold behaviour, and consistency of the
// set under injected conversion failures (fail-point "frontier.convert").
#include "core/frontier.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/failpoint.h"
#include "util/rng.h"

namespace hybridgraph {
namespace {

CellCostInputs BaseCell() {
  // A representative non-degenerate cell: 64 vertices in the source Vblock,
  // 256 edges in the cell out of 1024 in the row.
  CellCostInputs in;
  in.vertices = 64;
  in.cell_edges = 256;
  in.cell_edge_bytes = 256 * 12;
  in.cell_aux_bytes = 512;
  in.cell_fragments = 40;
  in.row_edges = 1024;
  in.adj_row_bytes = 1024 * 12;
  in.msg_record_size = 12;
  in.value_record_size = 16;
  return in;
}

TEST(FrontierDecideCell, EmptyCellOrIdleSourceSkips) {
  AdaptivePolicy policy;
  CellCostInputs in = BaseCell();
  in.active = 32;
  in.cell_edges = 0;
  in.cell_fragments = 0;
  EXPECT_EQ(DecideCell(in, policy), CellDecision::kSkip);

  in = BaseCell();
  in.active = 0;
  EXPECT_EQ(DecideCell(in, policy), CellDecision::kSkip);
}

TEST(FrontierDecideCell, SparseFrontierPushes) {
  // active·β < |b_j| — the Beamer top-down condition at block granularity.
  AdaptivePolicy policy;  // β = 18
  CellCostInputs in = BaseCell();
  in.active = 3;  // 3·18 = 54 < 64
  EXPECT_EQ(DecideCell(in, policy), CellDecision::kPush);
}

TEST(FrontierDecideCell, DenseCheapEblockPulls) {
  // Dense frontier and a compact Eblock: pull's sequential scan undercuts
  // α-weighted push bytes.
  AdaptivePolicy policy;
  CellCostInputs in = BaseCell();
  in.active = 64;  // fully dense
  EXPECT_EQ(DecideCell(in, policy), CellDecision::kPull);
}

TEST(FrontierDecideCell, ExactBetaThresholdIsPullEligible) {
  // active·β == |b_j| exactly: NOT sparse (the condition is strict <), so
  // the byte comparison decides. With α large the push side always loses.
  AdaptivePolicy policy;
  policy.beta = 16.0;
  CellCostInputs in = BaseCell();
  in.active = 4;  // 4·16 == 64
  policy.alpha = 1e6;
  EXPECT_EQ(DecideCell(in, policy), CellDecision::kPull);
  // One active vertex fewer: strictly sparse, push regardless of α.
  in.active = 3;
  EXPECT_EQ(DecideCell(in, policy), CellDecision::kPush);
}

TEST(FrontierDecideCell, AlphaTiltsTheByteComparison) {
  AdaptivePolicy policy;
  CellCostInputs in = BaseCell();
  in.active = 64;
  // α -> 0 makes pushed messages free; a dense frontier then pushes because
  // pull still pays the full Eblock scan.
  policy.alpha = 1e-9;
  EXPECT_EQ(DecideCell(in, policy), CellDecision::kPush);
  policy.alpha = 1e9;
  EXPECT_EQ(DecideCell(in, policy), CellDecision::kPull);
}

TEST(FrontierDecideCell, DecisionCharsAreTheGridAlphabet) {
  EXPECT_EQ(CellDecisionChar(CellDecision::kSkip), '.');
  EXPECT_EQ(CellDecisionChar(CellDecision::kPush), 'P');
  EXPECT_EQ(CellDecisionChar(CellDecision::kPull), 'B');
}

// ----------------------------------------------------------------- Frontier

TEST(FrontierRep, EmptyFrontier) {
  Frontier f;
  f.Reset(100, AdaptivePolicy{});
  EXPECT_EQ(f.count(), 0u);
  EXPECT_EQ(f.scout_degree(), 0u);
  EXPECT_EQ(f.rep(), Frontier::Rep::kQueue);
  EXPECT_FALSE(f.Has(0));
  std::vector<uint32_t> out;
  f.AppendTo(&out);
  EXPECT_TRUE(out.empty());
  // An empty frontier converts both ways without issue.
  EXPECT_TRUE(f.ConvertTo(Frontier::Rep::kBitmap).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kBitmap);
  EXPECT_TRUE(f.ConvertTo(Frontier::Rep::kQueue).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kQueue);
}

TEST(FrontierRep, AllActiveConvertsToBitmapAndBack) {
  Frontier f;
  const uint32_t n = 90;  // threshold = floor(90/18) = 5
  f.Reset(n, AdaptivePolicy{});
  for (uint32_t li = 0; li < n; ++li) {
    ASSERT_TRUE(f.Add(li, 2).ok());
  }
  EXPECT_EQ(f.count(), n);
  EXPECT_EQ(f.scout_degree(), 2ull * n);
  EXPECT_EQ(f.rep(), Frontier::Rep::kBitmap);
  for (uint32_t li = 0; li < n; ++li) EXPECT_TRUE(f.Has(li));
  std::vector<uint32_t> out;
  f.AppendTo(&out);
  ASSERT_EQ(out.size(), n);
  for (uint32_t li = 0; li < n; ++li) EXPECT_EQ(out[li], li);
  // All-active cannot compact (count > threshold)...
  EXPECT_TRUE(f.Compact().ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kBitmap);
  // ...but an explicit conversion preserves content exactly.
  EXPECT_TRUE(f.ConvertTo(Frontier::Rep::kQueue).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kQueue);
  EXPECT_EQ(f.count(), n);
  EXPECT_EQ(f.scout_degree(), 2ull * n);
  for (uint32_t li = 0; li < n; ++li) EXPECT_TRUE(f.Has(li));
}

TEST(FrontierRep, SingleVertexVblock) {
  // n = 1: threshold clamps to max(1, floor(1/18)) = 1, so the single
  // possible element never triggers a conversion.
  Frontier f;
  f.Reset(1, AdaptivePolicy{});
  EXPECT_EQ(f.to_bitmap_threshold(), 1u);
  ASSERT_TRUE(f.Add(0, 7).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kQueue);
  EXPECT_EQ(f.count(), 1u);
  EXPECT_EQ(f.scout_degree(), 7u);
  EXPECT_TRUE(f.Has(0));
  // Duplicate adds are ignored entirely (no double scout counting).
  ASSERT_TRUE(f.Add(0, 7).ok());
  EXPECT_EQ(f.count(), 1u);
  EXPECT_EQ(f.scout_degree(), 7u);
}

TEST(FrontierRep, ConversionAtExactlyTheThreshold) {
  // n = 36, β = 18 -> threshold 2: the frontier stays a queue AT the
  // threshold and converts on the add that crosses it.
  Frontier f;
  AdaptivePolicy policy;
  f.Reset(36, policy);
  ASSERT_EQ(f.to_bitmap_threshold(), 2u);
  ASSERT_TRUE(f.Add(30, 1).ok());
  ASSERT_TRUE(f.Add(5, 1).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kQueue);
  ASSERT_TRUE(f.Add(17, 1).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kBitmap);
  EXPECT_EQ(f.count(), 3u);
  // Ascending in both representations (queue was inserted out of order).
  std::vector<uint32_t> out;
  f.AppendTo(&out);
  EXPECT_EQ(out, (std::vector<uint32_t>{5, 17, 30}));
}

TEST(FrontierRep, QueueAppendsAscendingDespiteInsertionOrder) {
  Frontier f;
  f.Reset(100, AdaptivePolicy{});  // threshold 5; stay under it
  ASSERT_TRUE(f.Add(42, 1).ok());
  ASSERT_TRUE(f.Add(7, 1).ok());
  ASSERT_TRUE(f.Add(99, 1).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kQueue);
  std::vector<uint32_t> out;
  f.AppendTo(&out);
  EXPECT_EQ(out, (std::vector<uint32_t>{7, 42, 99}));
}

TEST(FrontierRep, CompactShrinksOnlyAtOrBelowThreshold) {
  Frontier f;
  f.Reset(36, AdaptivePolicy{});  // threshold 2
  ASSERT_TRUE(f.Add(1, 1).ok());
  ASSERT_TRUE(f.ConvertTo(Frontier::Rep::kBitmap).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kBitmap);
  EXPECT_TRUE(f.Compact().ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kQueue);
  EXPECT_TRUE(f.Has(1));
}

TEST(FrontierRep, ApproxBytesTracksTheRepresentation) {
  Frontier f;
  f.Reset(1000, AdaptivePolicy{});
  ASSERT_TRUE(f.Add(3, 1).ok());
  ASSERT_TRUE(f.Add(4, 1).ok());
  EXPECT_EQ(f.ApproxBytes(), 8u);  // 2 queue entries · 4 bytes
  ASSERT_TRUE(f.ConvertTo(Frontier::Rep::kBitmap).ok());
  EXPECT_EQ(f.ApproxBytes(), 1000u);  // one byte per vertex
}

TEST(FrontierRep, FailedConversionLeavesAValidFrontier) {
  // Deterministic failure: every ConvertTo fires. The add that crosses the
  // threshold reports the error but the element is already in the queue.
  FailPointScope scope("frontier.convert=error:p=1,seed=1");
  ASSERT_TRUE(scope.status().ok());
  Frontier f;
  f.Reset(36, AdaptivePolicy{});  // threshold 2
  ASSERT_TRUE(f.Add(0, 1).ok());
  ASSERT_TRUE(f.Add(1, 1).ok());
  const Status st = f.Add(2, 1);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kQueue);
  EXPECT_EQ(f.count(), 3u);
  EXPECT_TRUE(f.Has(2));
}

TEST(FrontierRep, ConvertFuzzKeepsSetConsistent) {
  // Random conversion failures at p=0.5: whatever the interleaving of
  // successful and failed conversions, the frontier's SET is always exactly
  // the adds so far, in either representation.
  FailPointScope scope("frontier.convert=error:p=0.5,seed=77");
  ASSERT_TRUE(scope.status().ok());
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    const uint32_t n = 20 + static_cast<uint32_t>(rng.NextBounded(120));
    Frontier f;
    f.Reset(n, AdaptivePolicy{});
    std::set<uint32_t> model;
    uint64_t scout = 0;
    for (int i = 0; i < 60; ++i) {
      const uint32_t li = static_cast<uint32_t>(rng.NextBounded(n));
      const bool fresh = model.insert(li).second;
      if (fresh) scout += li % 5;
      // Add may fail (conversion attempt fired) but must still record li.
      (void)f.Add(li, li % 5);
      if (i % 7 == 0) (void)f.Compact();
      if (i % 11 == 0) (void)f.ConvertTo(Frontier::Rep::kBitmap);
      ASSERT_EQ(f.count(), model.size());
      ASSERT_EQ(f.scout_degree(), scout);
      ASSERT_TRUE(f.Has(li));
    }
    std::vector<uint32_t> got;
    f.AppendTo(&got);
    ASSERT_EQ(got, std::vector<uint32_t>(model.begin(), model.end()));
  }
  // After disarm, conversion succeeds again and content survives.
  FailPointRegistry::Instance().Disarm("frontier.convert");
  Frontier f;
  f.Reset(36, AdaptivePolicy{});
  ASSERT_TRUE(f.Add(9, 1).ok());
  EXPECT_TRUE(f.ConvertTo(Frontier::Rep::kBitmap).ok());
  EXPECT_EQ(f.rep(), Frontier::Rep::kBitmap);
  EXPECT_TRUE(f.Has(9));
}

}  // namespace
}  // namespace hybridgraph
