// PageRank with aggregator-based convergence: instead of a fixed superstep
// count, every update contributes |Δrank| to a global aggregator and the job
// halts once the L1 delta falls under a tolerance — the lightweight
// convergence machinery Pregel-style systems layer on top of Always-Active
// algorithms.
#pragma once

#include <cmath>

#include "core/program.h"

namespace hybridgraph {

/// \brief PageRank that stops when the global L1 rank delta < tolerance.
struct PageRankDeltaProgram {
  using Value = double;
  using Message = double;
  static constexpr bool kCombinable = true;
  static constexpr bool kAlwaysActive = true;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);
  static constexpr bool kHasAggregator = true;

  double damping = 0.85;
  double tolerance = 1e-4;  ///< halt when sum |Δrank| < tolerance

  Value InitValue(VertexId, const SuperstepContext& ctx) const {
    return 1.0 / static_cast<double>(ctx.num_vertices);
  }
  bool InitActive(VertexId) const { return true; }

  UpdateResult Update(VertexId, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0) return {false, true};
    double sum = 0.0;
    for (double m : msgs) sum += m;
    *value = (1.0 - damping) / static_cast<double>(ctx.num_vertices) +
             damping * sum;
    return {true, true};
  }

  Message GenMessage(VertexId, const Value& value, uint32_t out_degree,
                     const Edge&, const SuperstepContext&) const {
    return value / static_cast<double>(out_degree);
  }

  static Message Combine(const Message& a, const Message& b) { return a + b; }

  double AggregateContribution(VertexId, const Value& old_value,
                               const Value& new_value,
                               const SuperstepContext&) const {
    return std::fabs(new_value - old_value);
  }

  bool ShouldHalt(double aggregate) const { return aggregate < tolerance; }
};

}  // namespace hybridgraph
