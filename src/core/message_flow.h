// Compiled message-flow machinery shared by the push-family and b-pull
// MessagePaths: applying incoming push batches to the double-buffered inbox
// (with the pushM online-computing and B_i overflow policies), draining the
// staged batches in sender order, collecting Phase A's pending set from the
// inbox or from pull responses, and flushing the sender staging buffers.
//
// All message payloads stay raw encoded bytes; the typed Combine logic is
// injected as CombineRawFn shims, so these functions compile once and stay
// bit-identical to the old per-Program template code (PodCodec is memcpy).
#pragma once

#include <cstdint>

#include "core/node_state.h"
#include "graph/partition.h"
#include "net/transport.h"
#include "util/buffer.h"
#include "util/status.h"

namespace hybridgraph {

/// Receive-side policy for push batches, fixed at Load() time.
struct PushApplyPolicy {
  size_t msg_size = 0;
  uint64_t buffer_cap = 0;      ///< B_i (config.msg_buffer_per_node)
  bool unlimited = false;       ///< B_i == UINT64_MAX || memory_resident
  bool online_compute = false;  ///< pushM (MOCgraph): fold into moc slots
  bool combinable = false;
  SendStaging::CombineRawFn combiner = nullptr;  ///< for the moc fold
};

/// Applies one decoded kPushMessages batch to node.inbox_next (or the moc
/// accumulators under pushM), spilling overflow. Mirrors HandlePushBatch.
Status ApplyPushBatch(NodeState& node, Slice payload,
                      const PushApplyPolicy& policy);

/// Applies the batches stashed by the kPushMessages handler, in sender
/// order. Sequential execution delivered every batch from node 0 before any
/// batch from node 1 (each sender ran its whole Phase B before the next), so
/// this drain order reproduces the sequential inbox/moc/spill state exactly
/// at any thread count.
Status DrainStagedPushBatches(NodeState& node, uint32_t num_nodes,
                              const PushApplyPolicy& policy);

/// Consume-side policy for the push-family Phase A drain.
struct PushCollectPolicy {
  size_t msg_size = 0;
  size_t msg_record_size = 0;        ///< 4 + msg_size
  bool online_compute = false;       ///< pushM: drain the moc accumulators
  bool combinable = false;
  uint64_t spill_merge_buffer_bytes = 0;
  double per_spilled_message_s = 0;  ///< cpu cost, already scale-folded
};

/// Phase A under push consumption: merge the in-memory inbox with the
/// spilled runs into the pending set, grouped per vertex (CollectPush).
Status CollectPushMessages(NodeState& node, const PushCollectPolicy& policy);

/// Consume-side policy for b-pull Phase A.
struct BPullCollectPolicy {
  size_t msg_size = 0;
  bool prepull_double = false;  ///< pre_pull && combinable: BR doubles
  uint32_t num_nodes = 0;
};

/// Phase A under b-pull consumption: Algorithm 1 (Pull-Request) — one
/// request per local Vblock to every node; responses land in the pending set.
Status CollectBPullMessages(NodeState& node, const RangePartition& partition,
                            Transport& transport,
                            const BPullCollectPolicy& policy);

/// Ships the staged records for `dst` if forced or past the sending
/// threshold (FlushStaging). msg_record_size = 4 + msg_size.
Status FlushStagedMessages(NodeState& node, Transport& transport, NodeId dst,
                           bool force, uint64_t sending_threshold_bytes,
                           size_t msg_record_size);

}  // namespace hybridgraph
