#include "io/disk_model.h"

#include <gtest/gtest.h>

namespace hybridgraph {
namespace {

TEST(DiskProfile, PaperTable3Numbers) {
  const DiskProfile hdd = DiskProfile::Hdd();
  EXPECT_DOUBLE_EQ(hdd.qt_rand_read_mbps, 1.177);
  EXPECT_DOUBLE_EQ(hdd.qt_rand_write_mbps, 1.182);
  EXPECT_DOUBLE_EQ(hdd.qt_seq_read_mbps, 2.358);
  const DiskProfile ssd = DiskProfile::Ssd();
  EXPECT_DOUBLE_EQ(ssd.qt_rand_read_mbps, 18.177);
  EXPECT_DOUBLE_EQ(ssd.qt_rand_write_mbps, 18.194);
  EXPECT_DOUBLE_EQ(ssd.qt_seq_read_mbps, 18.270);
}

TEST(DiskProfile, RandomSlowerThanSequential) {
  for (const DiskProfile& p : {DiskProfile::Hdd(), DiskProfile::Ssd()}) {
    EXPECT_LT(p.rand_read_mbps, p.seq_read_mbps) << p.name;
    EXPECT_LT(p.rand_write_mbps, p.seq_write_mbps) << p.name;
    EXPECT_GT(p.per_random_op_s, 0) << p.name;
  }
}

TEST(DiskMeter, RecordsByClass) {
  DiskMeter m;
  m.Record(IoClass::kSeqRead, 100);
  m.Record(IoClass::kSeqRead, 50);
  m.Record(IoClass::kRandWrite, 10);
  EXPECT_EQ(m.bytes(IoClass::kSeqRead), 150u);
  EXPECT_EQ(m.bytes(IoClass::kRandWrite), 10u);
  EXPECT_EQ(m.ops(IoClass::kSeqRead), 2u);
  EXPECT_EQ(m.TotalBytes(), 160u);
  EXPECT_EQ(m.ReadBytes(), 150u);
  EXPECT_EQ(m.WriteBytes(), 10u);
}

TEST(DiskMeter, CachedBytesSeparate) {
  DiskMeter m;
  m.Record(IoClass::kRandRead, 64);
  m.RecordCached(IoClass::kRandRead, 64);
  EXPECT_EQ(m.bytes(IoClass::kRandRead), 64u);
  EXPECT_EQ(m.cached_bytes(IoClass::kRandRead), 64u);
  EXPECT_EQ(m.ops(IoClass::kRandRead), 2u);
  EXPECT_EQ(m.TotalBytes(), 128u);
}

TEST(DiskMeter, ModeledSecondsScalesWithThroughput) {
  DiskMeter m;
  m.Record(IoClass::kRandWrite, 1024 * 1024);  // 1 MB random write
  const double hdd = m.ModeledSeconds(DiskProfile::Hdd());
  const double ssd = m.ModeledSeconds(DiskProfile::Ssd());
  EXPECT_GT(hdd, ssd);
  // 1MB at 1.2MB/s ~ 0.83s plus one op overhead.
  EXPECT_NEAR(hdd, 1.0 / 1.2, 0.01);
}

TEST(DiskMeter, CachedReadsAreNearlyFree) {
  DiskMeter device, cached;
  device.Record(IoClass::kSeqRead, 10 * 1024 * 1024);
  cached.RecordCached(IoClass::kSeqRead, 10 * 1024 * 1024);
  EXPECT_GT(device.ModeledSeconds(DiskProfile::Hdd()),
            20 * cached.ModeledSeconds(DiskProfile::Hdd()));
}

TEST(DiskMeter, PerOpOverheadCharged) {
  DiskMeter m;
  for (int i = 0; i < 1000; ++i) m.RecordCached(IoClass::kRandRead, 16);
  const DiskProfile hdd = DiskProfile::Hdd();
  EXPECT_GE(m.ModeledSeconds(hdd), 1000 * hdd.per_random_op_s);
}

TEST(DiskMeter, DeltaSince) {
  DiskMeter a;
  a.Record(IoClass::kSeqWrite, 100);
  DiskMeter snapshot = a;
  a.Record(IoClass::kSeqWrite, 50);
  a.RecordCached(IoClass::kSeqRead, 30);
  const DiskMeter d = a.DeltaSince(snapshot);
  EXPECT_EQ(d.bytes(IoClass::kSeqWrite), 50u);
  EXPECT_EQ(d.cached_bytes(IoClass::kSeqRead), 30u);
  EXPECT_EQ(d.bytes(IoClass::kSeqRead), 0u);
}

TEST(DiskMeter, Reset) {
  DiskMeter m;
  m.Record(IoClass::kRandRead, 99);
  m.Reset();
  EXPECT_EQ(m.TotalBytes(), 0u);
  EXPECT_EQ(m.ops(IoClass::kRandRead), 0u);
}

TEST(IoClassNames, AllDistinct) {
  EXPECT_STREQ(IoClassName(IoClass::kSeqRead), "seq_read");
  EXPECT_STREQ(IoClassName(IoClass::kSeqWrite), "seq_write");
  EXPECT_STREQ(IoClassName(IoClass::kRandRead), "rand_read");
  EXPECT_STREQ(IoClassName(IoClass::kRandWrite), "rand_write");
}

}  // namespace
}  // namespace hybridgraph
