// Minimal leveled logging and check macros (glog-flavoured).
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace hybridgraph {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

// Severity aliases consumed by the HG_LOG(SEVERITY) token-pasting macro.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARN = LogLevel::kWarn;
inline constexpr LogLevel kERROR = LogLevel::kError;
inline constexpr LogLevel kFATAL = LogLevel::kFatal;

/// Global minimum severity actually emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with timestamp and level tag) on
/// destruction. kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level without evaluating it.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace hybridgraph

#define HG_LOG_INTERNAL(level)                                               \
  ::hybridgraph::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// HG_LOG(INFO) << "...";  Levels: DEBUG, INFO, WARN, ERROR, FATAL.
#define HG_LOG(severity)                                                     \
  (::hybridgraph::k##severity < ::hybridgraph::GetLogLevel())                \
      ? (void)0                                                              \
      : ::hybridgraph::internal::LogVoidify() &                              \
            HG_LOG_INTERNAL(::hybridgraph::k##severity)

/// Fatal unless `cond` holds; always active (also in release builds).
#define HG_CHECK(cond)                                                      \
  (cond) ? (void)0                                                          \
         : ::hybridgraph::internal::LogVoidify() &                          \
               HG_LOG_INTERNAL(::hybridgraph::LogLevel::kFatal)             \
                   << "Check failed: " #cond " "

#define HG_CHECK_EQ(a, b) HG_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define HG_CHECK_NE(a, b) HG_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define HG_CHECK_LE(a, b) HG_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define HG_CHECK_LT(a, b) HG_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define HG_CHECK_GE(a, b) HG_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define HG_CHECK_GT(a, b) HG_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define HG_DCHECK(cond) HG_CHECK(cond)
#else
#define HG_DCHECK(cond) \
  while (false) HG_CHECK(cond)
#endif
