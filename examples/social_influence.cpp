// Social influence: the paper's SA workload (simulated advertisements on a
// social network) on the twi model — a Traversal-Style job whose message
// volume swells and collapses, which is exactly where hybrid's adaptive
// switching earns its keep. Prints the per-superstep adoption curve and the
// mode the engine chose each superstep.
#include <cstdio>

#include "hybridgraph/hybridgraph.h"

using namespace hybridgraph;

int main() {
  DatasetSpec spec = FindDataset("twi").ValueOrDie();
  spec.num_vertices /= 4;
  const EdgeListGraph graph = BuildDataset(spec);
  std::printf("twi social model: %llu vertices, %llu edges\n\n",
              (unsigned long long)graph.num_vertices,
              (unsigned long long)graph.num_edges());

  SaProgram program;
  program.source_stride = 400;   // one advertiser per 400 users
  program.interest_prob = 0.35;  // chance a user cares about a given ad

  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 30;
  cfg.msg_buffer_per_node = 250;
  cfg.max_supersteps = 40;

  Engine<SaProgram> engine(cfg, program);
  HG_CHECK(engine.Load(graph).ok());
  HG_CHECK(engine.Run().ok());

  std::printf("%4s %10s %12s %10s %8s\n", "step", "forwards", "messages",
              "io_bytes", "mode");
  for (const auto& s : engine.stats().supersteps) {
    std::printf("%4d %10llu %12llu %10llu %8s%s\n", s.superstep,
                (unsigned long long)s.responding_vertices,
                (unsigned long long)s.messages_produced,
                (unsigned long long)s.io.Total(), EngineModeName(s.mode),
                s.switched ? " (switched)" : "");
  }

  const auto values = engine.GatherValues().ValueOrDie();
  uint64_t adopters = 0, multi = 0;
  for (const auto& v : values) {
    const int ads = __builtin_popcountll(v.adopted);
    adopters += ads > 0;
    multi += ads > 1;
  }
  std::printf(
      "\ncampaign reach: %llu/%llu users adopted an ad (%llu adopted more "
      "than one)\n",
      (unsigned long long)adopters, (unsigned long long)values.size(),
      (unsigned long long)multi);
  std::printf("converged: %s after %d supersteps, modeled %.3fs\n",
              engine.converged() ? "yes" : "no", engine.stats().supersteps_run,
              engine.stats().modeled_seconds);
  return 0;
}
