// CSV export of per-superstep metrics — the raw material for re-plotting
// the paper's figures from a bench or CLI run.
#pragma once

#include <string>

#include "core/run_metrics.h"
#include "util/status.h"

namespace hybridgraph {

/// Renders the per-superstep metric table as CSV (header + one row per
/// superstep).
std::string SuperstepMetricsCsv(const JobStats& stats);

/// Writes SuperstepMetricsCsv(stats) to `path`.
Status WriteSuperstepCsv(const JobStats& stats, const std::string& path);

}  // namespace hybridgraph
