file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_io_bytes.dir/bench_fig10_io_bytes.cc.o"
  "CMakeFiles/bench_fig10_io_bytes.dir/bench_fig10_io_bytes.cc.o.d"
  "bench_fig10_io_bytes"
  "bench_fig10_io_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_io_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
