file(REMOVE_RECURSE
  "libhg_bench_common.a"
)
