// Weakly connected components via min-label flooding (extension beyond the
// paper's four workloads): Traversal-Style-ish with combinable (min)
// messages. Works on the directed edge set as given; run on a symmetrized
// graph for true weak components.
#pragma once

#include "core/program.h"

namespace hybridgraph {

/// \brief WCC vertex program: every vertex floods its smallest known id.
struct WccProgram {
  using Value = uint32_t;
  using Message = uint32_t;
  static constexpr bool kCombinable = true;
  static constexpr bool kAlwaysActive = false;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);

  Value InitValue(VertexId v, const SuperstepContext&) const { return v; }
  bool InitActive(VertexId) const { return true; }

  UpdateResult Update(VertexId v, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0) {
      return {false, true};  // broadcast own id once
    }
    uint32_t best = *value;
    for (uint32_t m : msgs) best = m < best ? m : best;
    if (best < *value) {
      *value = best;
      return {true, true};
    }
    return {false, false};
  }

  Message GenMessage(VertexId, const Value& value, uint32_t, const Edge&,
                     const SuperstepContext&) const {
    return value;
  }

  static Message Combine(const Message& a, const Message& b) {
    return a < b ? a : b;
  }
};

}  // namespace hybridgraph
