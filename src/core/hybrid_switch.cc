#include "core/hybrid_switch.h"

#include <algorithm>
#include <cmath>

#include "io/disk_model.h"

namespace hybridgraph {
namespace {

/// Component estimates for the mode that did NOT run this superstep,
/// derived from store metadata and responding flags (Sec 5.3).
struct PushCostEstimate {
  double vt_bytes = 0;
  double adj_bytes = 0;
  double mdisk_bytes = 0;
  double Total() const { return vt_bytes + adj_bytes + 2.0 * mdisk_bytes; }
};
struct BPullCostEstimate {
  double vt_bytes = 0;
  double e_bytes = 0;
  double f_bytes = 0;
  double vrr_bytes = 0;
  double Total() const { return vt_bytes + e_bytes + f_bytes + vrr_bytes; }
};

uint64_t BTotal(const JobConfig& config) {
  return config.msg_buffer_per_node == UINT64_MAX
             ? UINT64_MAX
             : config.msg_buffer_per_node * config.num_nodes;
}

PushCostEstimate EstimateCioPush(const JobConfig& config,
                                 const RangePartition& partition,
                                 const std::vector<NodeState>& nodes,
                                 const HybridFacts& facts, uint64_t msgs) {
  // Eq. (7): IO(V^t) + IO(E~^t) + 2 IO(M_disk), estimated from metadata and
  // the responding flags while running b-pull ("we can figure out the set of
  // required Eblocks ... based on the distribution of edges used in
  // pushRes()", Sec 5.3 — here the adjacency blocks play that role).
  PushCostEstimate est;
  for (const auto& node : nodes) {
    if (!node.adj) continue;
    const uint32_t first_vb = partition.FirstVblockOf(node.id);
    const uint32_t last_vb = partition.LastVblockOf(node.id);
    for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
      if (node.vblock_res_next[vb - first_vb]) {
        est.adj_bytes += static_cast<double>(node.adj->BlockBytes(vb));
        est.vt_bytes += static_cast<double>(node.vstore->BlockBytes(vb));
      }
    }
  }
  const uint64_t b_total = BTotal(config);
  const uint64_t mdisk =
      (b_total == UINT64_MAX || msgs <= b_total) ? 0 : msgs - b_total;
  est.mdisk_bytes = static_cast<double>(mdisk) * facts.msg_record_size;
  return est;
}

BPullCostEstimate EstimateCioBPull(const RangePartition& partition,
                                   const std::vector<NodeState>& nodes) {
  // Eq. (8) estimated from the VE-BLOCK index over Eblocks that responding
  // Vblocks would serve next superstep.
  BPullCostEstimate est;
  for (const auto& node : nodes) {
    if (!node.ve) continue;
    const uint32_t first_vb = partition.FirstVblockOf(node.id);
    const uint32_t last_vb = partition.LastVblockOf(node.id);
    for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
      if (!node.vblock_res_next[vb - first_vb]) continue;
      est.vt_bytes += static_cast<double>(node.vstore->BlockBytes(vb));
      // Pull-Respond scans whole Eblocks (full e/f bytes) but reads source
      // values only for responding fragments — scale V_rr by the vblock's
      // responding fraction.
      const VertexRange r = partition.VblockRange(vb);
      uint64_t responding = 0;
      for (VertexId v = r.begin; v < r.end; ++v) {
        responding += node.responding_next[node.LocalIdx(v)];
      }
      const double frac =
          r.size() ? static_cast<double>(responding) / r.size() : 0.0;
      for (uint32_t dst = 0; dst < partition.num_vblocks(); ++dst) {
        const auto& idx = node.ve->Index(vb, dst);
        est.e_bytes += static_cast<double>(idx.edge_bytes);
        est.f_bytes += static_cast<double>(idx.aux_bytes);
        est.vrr_bytes += static_cast<double>(idx.num_fragments) * frac *
                         node.vstore->record_size();
      }
    }
  }
  return est;
}

}  // namespace

Result<EngineMode> DecideInitialMode(const JobConfig& config,
                                     const std::vector<NodeState>& nodes,
                                     const HybridFacts& facts,
                                     const InitialModeInputs& in) {
  // Initial mode (Algorithm 3 line 2, Theorem 2): b-pull iff B <= |E|/2 - f.
  switch (config.mode) {
    case EngineMode::kPush:
    case EngineMode::kPushM:
      return config.mode;
    case EngineMode::kBPull:
      return EngineMode::kBPull;
    case EngineMode::kAdaptive:
      // Direction is decided per Eblock cell inside the adaptive path; the
      // production mode never changes at job granularity.
      return EngineMode::kAdaptive;
    case EngineMode::kHybrid: {
      if (config.force_initial_mode) {
        return config.initial_mode;
      }
      if (config.memory_resident) {
        // Sufficient memory: communication dominates; b-pull combines
        // (Sec 6.1: "hybrid thereby runs b-pull" in that scenario).
        return EngineMode::kBPull;
      }
      const uint64_t b_total = BTotal(config);
      if (config.qt_use_table3_throughputs) {
        // Theorem 2's literal sufficient condition: b-pull iff B <= |E|/2-f.
        return (b_total != UINT64_MAX && b_total <= in.b_lower_bound)
                   ? EngineMode::kBPull
                   : EngineMode::kPush;
      }
      // Same decision as Theorem 2 ("|E| and f are available after
      // building VE-BLOCK ... we can decide before starting"), but
      // evaluated with the runtime model's effective costs and the job's
      // ACTUAL initial message volume (sum of out-degrees of the
      // initially-active vertices). For Always-Active jobs this equals
      // |E| — the theorem's premise; for Traversal-Style jobs the tiny
      // starting frontier correctly favours push.
      const double mdisk_bytes =
          (b_total == UINT64_MAX || in.initial_messages <= b_total)
              ? 0.0
              : static_cast<double>(in.initial_messages - b_total) *
                    facts.msg_record_size;
      const double mb = 1024.0 * 1024.0;
      uint64_t adj_bytes = 0, e_bytes = 0, f_bytes = 0;
      for (const auto& node : nodes) {
        if (node.adj) adj_bytes += node.adj->TotalBytes();
        if (node.ve) {
          e_bytes += node.ve->TotalEdgeBytes();
          f_bytes += node.ve->TotalAuxBytes();
        }
      }
      const double frac = in.initial_active_frac;
      const double fragments = static_cast<double>(in.total_fragments) * frac;
      const double vrr_bytes =
          fragments * static_cast<double>(facts.value_record_size);
      const double q0 =
          mdisk_bytes / (config.disk.rand_write_mbps * mb) +
          (mdisk_bytes / facts.msg_record_size) *
              config.cpu.per_spilled_message_s * config.cpu.scale -
          fragments * config.disk.per_random_op_s -
          vrr_bytes / (kRamMbps * mb) +
          (static_cast<double>(adj_bytes) * frac + mdisk_bytes -
           (e_bytes + f_bytes) * frac) /
              (kRamMbps * mb);
      return q0 >= 0 ? EngineMode::kBPull : EngineMode::kPush;
    }
    default:
      return Status::InvalidArgument("unsupported mode");
  }
}

void EvaluateSwitch(SuperstepMetrics* m, const JobConfig& config,
                    const RangePartition& partition,
                    const std::vector<NodeState>& nodes,
                    const HybridFacts& facts, int superstep,
                    HybridState* state, EngineMode* mode) {
  const bool ran_bpull = m->mode == EngineMode::kBPull;
  const uint64_t msgs = m->messages_produced;
  const uint64_t b_total = BTotal(config);

  // Q_t predicts superstep t+Δt. For Traversal-Style workloads the message
  // volume moves fast (Sec 5.3 / Appendix G), so extrapolate M with the
  // recent growth of the responding-vertex count over the Δt horizon.
  // (Responding counts, unlike message counts, are aligned identically under
  // push and b-pull production, so the trend survives mode switches.)
  // Always-Active workloads have growth 1 and are unaffected.
  double growth = state->prev_responding > 0 && m->responding_vertices > 0
                      ? static_cast<double>(m->responding_vertices) /
                            static_cast<double>(state->prev_responding)
                      : 1.0;
  growth = std::clamp(growth, 0.25, 4.0);
  const double predicted_msgs =
      static_cast<double>(msgs) *
      std::pow(growth, static_cast<double>(config.switch_interval));
  state->prev_responding = m->responding_vertices;

  const double mdisk_bytes =
      (b_total == UINT64_MAX || predicted_msgs <= static_cast<double>(b_total))
          ? 0.0
          : (predicted_msgs - static_cast<double>(b_total)) *
                facts.msg_record_size;

  // Observed-or-estimated quantities for this superstep (the series the
  // paper's Figs 11-13 check prediction accuracy against), plus the
  // component split Eq. (11) needs.
  double mco, cio_push, cio_bpull;
  double io_et_adj, io_e, io_f, io_vrr;
  if (ran_bpull) {
    mco = static_cast<double>(m->messages_combined);
    if (msgs > 0) {
      state->last_rco = mco / static_cast<double>(msgs);
    }
    io_e = static_cast<double>(m->io.eblock_edge_bytes);
    io_f = static_cast<double>(m->io.fragment_aux_bytes);
    io_vrr = static_cast<double>(m->io.vrr_bytes);
    cio_bpull = static_cast<double>(m->io.vt_bytes) + io_e + io_f + io_vrr;
    const PushCostEstimate est =
        EstimateCioPush(config, partition, nodes, facts, msgs);
    io_et_adj = est.adj_bytes;
    cio_push = est.Total();
  } else {
    mco = static_cast<double>(msgs) * state->last_rco;
    io_et_adj = static_cast<double>(m->io.adj_edge_bytes);
    cio_push = static_cast<double>(m->io.vt_bytes) + io_et_adj +
               static_cast<double>(m->io.msg_spill_write + m->io.msg_spill_read);
    const BPullCostEstimate est = EstimateCioBPull(partition, nodes);
    io_e = est.e_bytes;
    io_f = est.f_bytes;
    io_vrr = est.vrr_bytes;
    cio_bpull = est.Total();
  }
  m->actual_mco = mco;
  m->actual_cio_push = cio_push;
  m->actual_cio_bpull = cio_bpull;
  const double trend = msgs > 0 ? predicted_msgs / msgs : 1.0;
  m->predicted_mco = mco * trend;
  m->predicted_cio_push = cio_push * trend;
  m->predicted_cio_bpull = cio_bpull;

  // Eq. (11). Byte_m: one destination id if concatenated, a whole message if
  // combined. Under sufficient memory no data is disk-resident, so only the
  // communication term remains and b-pull's combining gain dominates the
  // sign (Sec 6.1).
  const double byte_m =
      facts.combinable ? (4.0 + static_cast<double>(facts.msg_size)) : 4.0;
  const double mb = 1024.0 * 1024.0;
  double q = (mco * trend * byte_m) / (config.net.mbps * mb);
  if (!config.memory_resident) {
    if (config.qt_use_table3_throughputs) {
      // The paper's literal Eq. (11) with the fio calibration numbers.
      q += mdisk_bytes / (config.disk.qt_rand_write_mbps * mb) -
           io_vrr / (config.disk.qt_rand_read_mbps * mb) +
           (io_et_adj + mdisk_bytes - io_e - io_f) /
               (config.disk.qt_seq_read_mbps * mb);
    } else {
      // Same algebra, but with the costs the runtime model actually charges:
      // spill writes hit the device; spill read-back and graph re-reads are
      // page-cached (RAM); V_rr pays the per-operation overhead; spilled
      // messages additionally pay push's sort-merge CPU — the term that
      // keeps push slow even on SSDs (Sec 6.1).
      const double vrr_ops =
          io_vrr / static_cast<double>(facts.value_record_size);
      const double spilled_msgs = mdisk_bytes / facts.msg_record_size;
      q += mdisk_bytes / (config.disk.rand_write_mbps * mb) +
           spilled_msgs * config.cpu.per_spilled_message_s -
           vrr_ops * config.disk.per_random_op_s -
           io_vrr / (kRamMbps * mb) +
           (io_et_adj + mdisk_bytes - io_e - io_f) / (kRamMbps * mb);
    }
  }
  m->q_t = q;

  if (config.mode != EngineMode::kHybrid) return;
  // Superstep 0 only establishes responding flags under b-pull production —
  // no message exchange yet, so there is nothing to evaluate.
  if (superstep == 0 && m->messages_produced == 0) return;
  // Δt suppression: switching every superstep is not cost effective.
  if (superstep - state->last_switch_superstep < config.switch_interval) return;
  const EngineMode desired = q >= 0 ? EngineMode::kBPull : EngineMode::kPush;
  if (desired != *mode) {
    state->last_switch_superstep = superstep;
    *mode = desired;
  }
}

}  // namespace hybridgraph
