# Empty compiler generated dependencies file for bench_table05_pull_scenarios.
# This may be replaced when dependencies are built.
