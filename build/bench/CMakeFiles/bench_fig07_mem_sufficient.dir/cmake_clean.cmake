file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_mem_sufficient.dir/bench_fig07_mem_sufficient.cc.o"
  "CMakeFiles/bench_fig07_mem_sufficient.dir/bench_fig07_mem_sufficient.cc.o.d"
  "bench_fig07_mem_sufficient"
  "bench_fig07_mem_sufficient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_mem_sufficient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
