// Job configuration: engine mode, cluster shape, memory limits and the
// hardware profiles that parameterize the cost model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/disk_model.h"
#include "net/transport.h"
#include "util/status.h"

namespace hybridgraph {

/// Message-handling regime (the paper's compared systems).
enum class EngineMode : int {
  kPush = 0,      ///< Giraph-style push with receiver-side disk spill
  kPushM = 1,     ///< MOCgraph-style push with message online computing
  kVPull = 2,     ///< GraphLab PowerGraph-style GAS pull (vertex-cut)
  kBPull = 3,     ///< the paper's block-centric pull
  kHybrid = 4,    ///< per-superstep Eq. 11 switching between push and b-pull
  kAdaptive = 5,  ///< frontier-aware per-Eblock-cell push/pull choice
};

/// Registry/table size for EngineMode-indexed containers.
inline constexpr size_t kNumEngineModes = 6;

const char* EngineModeName(EngineMode mode);

/// How the simulated nodes exchange frames.
enum class TransportKind : int {
  kInProc = 0,  ///< synchronous in-process dispatch (deterministic, default)
  kTcp = 1,     ///< real loopback TCP sockets (same frame protocol)
};

/// Modeled CPU cost constants (seconds per unit of work). These stand in for
/// the computation term C_cpu that the paper treats as identical across push
/// and pull; absolute values are calibration knobs, ratios do not affect any
/// push-vs-pull comparison.
struct CpuModel {
  double per_vertex_update_s = 0.4e-6;
  double per_message_s = 0.06e-6;
  double per_edge_s = 0.025e-6;
  /// Extra cost of sort-merging spilled messages (per spilled message);
  /// models Giraph's computation-intensive sort-merge (Sec 6.1: on the SSD
  /// cluster push does not improve because sorting dominates).
  double per_spilled_message_s = 3e-6;
  /// Cost of one sender-side combining attempt (hash probe + combine);
  /// Appendix E: the gain is "easily offset by the cost of combining if the
  /// threshold is small".
  double per_combine_s = 0.015e-6;
  /// Scales all CPU costs; the paper's amazon nodes have weaker virtual
  /// CPUs than the local cluster's physical ones (set ~2 for that cluster).
  double scale = 1.0;
};

/// \brief Everything needed to run one job.
struct JobConfig {
  EngineMode mode = EngineMode::kHybrid;
  uint32_t num_nodes = 5;

  /// Worker threads running the per-node superstep phases concurrently.
  /// 0 = one thread per hardware core; 1 = fully sequential execution.
  /// Results and modeled metrics are thread-count invariant (see DESIGN.md,
  /// "Threading model").
  uint32_t num_threads = 1;

  /// Receiver-side message buffer B_i (in messages) per node. UINT64_MAX
  /// means "sufficient memory" (nothing ever spills). For pushM this is the
  /// vertex cache capacity; for v-pull see vpull_vertex_cache.
  uint64_t msg_buffer_per_node = UINT64_MAX;

  /// v-pull vertex cache capacity (vertices per node, LRU).
  uint64_t vpull_vertex_cache = UINT64_MAX;

  /// v-pull per-LRU-miss software penalty (seconds): the GraphLab disk path
  /// deserializes and re-fetches a vertex record per miss, which is what
  /// makes the paper's ext-edge-v2.5 scenario collapse (Table 5).
  double vpull_miss_penalty_s = 20e-6;

  /// Sending threshold: a per-destination staging buffer is flushed when its
  /// serialized size reaches this (paper Appendix E; default 4MB scaled down
  /// with the datasets).
  uint64_t sending_threshold_bytes = 16 * 1024;

  /// Modeled fixed cost of one network package flush (connection overhead,
  /// Appendix E). Scaled down with the datasets like the thresholds.
  double flush_overhead_s = 20e-6;

  /// \brief The I/O knobs, grouped (was: top-level spill_merge_buffer_bytes
  /// and spill_combining; see DESIGN.md "Config migration notes").
  struct IoConfig {
    /// Per-run buffer of the streaming spill merge (bytes). The push-mode
    /// inbox drain holds at most B_i messages plus
    /// num_runs × spill_merge_buffer_bytes of run data in memory — never the
    /// whole spilled volume. Rounded down to a whole number of spill records
    /// (min one record per run). Must be nonzero.
    uint64_t spill_merge_buffer_bytes = 64 * 1024;

    /// Apply the program combiner inside the receiver-side spill (at
    /// run-write time and during the streaming merge), so combined runs
    /// shrink on disk — Giraph-style combining. Only effective for
    /// combinable programs. Off by default: the paper's push baseline spills
    /// raw messages, and the modeled spill I/O bytes of the shipped benches
    /// depend on that.
    bool spill_combining = false;

    /// Max staged readahead entries per node's ReadPipeline; 0 disables the
    /// overlapped I/O pipeline entirely (no I/O pool, no background reads).
    /// Modeled I/O is bit-identical either way — prefetch only moves
    /// wall-clock time.
    uint32_t prefetch_depth = 0;

    /// Max bytes held by not-yet-consumed readahead per node.
    uint64_t prefetch_budget_bytes = 4 * 1024 * 1024;

    /// Width of the shared background I/O thread pool (distinct from the
    /// compute pool: a single FIFO queue must never run a phase task that
    /// waits on a queued prefetch task).
    uint32_t prefetch_threads = 2;
  };
  IoConfig io;

  /// Vblocks per node; 0 = derive from Eq. (5)/(6) using msg_buffer_per_node.
  uint32_t vblocks_per_node = 0;

  /// OS page-cache model per node (bytes; 0 disables). Default matches the
  /// paper's 6GB nodes at the dataset scale factor (~1/200).
  uint64_t page_cache_bytes_per_node = 32ull * 1024 * 1024;

  /// Pre-pull the next Vblock's messages while updating the current one
  /// (combinable algorithms only; doubles BR, Sec 4.3).
  bool pre_pull = true;

  /// Combiner inside b-pull's Pull-Respond. On by default; Sec 6.5 disables
  /// it to compare raw (concatenation-only) traffic against push.
  bool bpull_combining = true;

  /// Sender-side combining for push/pushM (pushM+com in Appendix E). The
  /// plain paper systems leave this off.
  bool push_sender_combining = false;

  /// Adaptive mode (kAdaptive): Beamer-style α/β knobs of the per-Eblock-cell
  /// direction choice (see core/frontier.h). α inflates the modeled cost of a
  /// pushed message (spill risk); β gates pull eligibility on frontier
  /// density (pull only when active·β ≥ |b_j|) and sets the frontier's
  /// queue→bitmap conversion threshold at n/β.
  double adaptive_alpha = 15.0;
  double adaptive_beta = 18.0;

  /// Treat all data as memory-resident (the "sufficient memory" scenario of
  /// Fig 7): data still flows through the stores but modeled I/O time and
  /// spilling are disabled.
  bool memory_resident = false;

  int max_supersteps = 30;

  /// Hybrid: switching interval Δt (Sec 5.3 sets 2).
  int switch_interval = 2;
  /// Hybrid: evaluate Eq. (11) with the paper's raw Table-3 fio throughputs
  /// instead of the runtime model's effective costs (page-cached graph
  /// re-reads, per-op overheads). The default keeps the metric consistent
  /// with what the runtime model actually charges; the Table-3 variant is
  /// kept for the ablation bench.
  bool qt_use_table3_throughputs = false;
  /// Hybrid: force the initial mode instead of the Theorem-2 rule.
  bool force_initial_mode = false;
  EngineMode initial_mode = EngineMode::kBPull;

  DiskProfile disk = DiskProfile::Hdd();
  NetProfile net = NetProfile::LocalGigabit();
  CpuModel cpu;

  TransportKind transport = TransportKind::kInProc;

  /// TCP transport reliability knobs (TransportKind::kTcp only; see
  /// TcpTransport::Options). The retry/backoff schedule is seeded from
  /// `seed`, so fault-injected runs replay bit-identically.
  uint32_t tcp_call_timeout_ms = 5000;  ///< per-attempt deadline (0 = none)
  uint32_t tcp_max_retries = 3;         ///< attempts beyond the first
  uint32_t tcp_backoff_base_us = 200;   ///< first retry delay, doubles after
  uint32_t tcp_backoff_max_us = 50000;  ///< retry delay ceiling
  uint32_t tcp_max_frame_bytes = 64u << 20;  ///< frame size bound, both ends

  /// Fail-point schedule armed at Load() (see util/failpoint.h for the
  /// grammar; empty = none). Also settable via the HG_FAILPOINTS env var in
  /// hg_run.
  std::string failpoints;

  /// Model the load phase's partitioning shuffle: each node reads a hash
  /// split of the raw edge list from the DFS and routes every edge to its
  /// range-partition owner over the (metered) transport — the "tasks load
  /// graph data ... and then partition data among themselves" step of Fig 1.
  bool metered_loading = false;

  /// Use FileStorage under storage_dir instead of MemStorage.
  bool use_file_storage = false;
  std::string storage_dir = "/tmp/hybridgraph";

  /// Write a chrome://tracing (Trace Event Format) JSON of the per-phase,
  /// per-node superstep spans to this path after Run(). Empty disables
  /// collection entirely (zero overhead on the hot path).
  std::string trace_path;

  uint64_t seed = 42;

  /// Job properties that only the engine knows at Load() time but that
  /// affect config validity. Defaults are permissive so Validate() can also
  /// be called before a graph or program is in hand.
  struct JobFacts {
    uint64_t num_vertices = UINT64_MAX;
    bool combinable_messages = true;
    /// True when validating for VPullEngine (mode must be kVPull);
    /// false for Engine (mode must not be kVPull).
    bool vpull_engine = false;
  };

  /// Checks the config for internal consistency. The single entry point for
  /// every precondition both engines used to assert piecemeal in Load():
  /// mode/engine pairing, pushM-needs-combinable, enough vertices for the
  /// cluster shape, and nonsensical knobs (zero nodes, a zero sending
  /// threshold, a zero message buffer, absurd thread counts). Returns
  /// InvalidArgument with a descriptive message on the first violation.
  Status Validate(const JobFacts& facts) const;
  Status Validate() const { return Validate(JobFacts()); }
};

}  // namespace hybridgraph
