// Ablation — hybrid's switching machinery: fixed modes vs hybrid, the
// switching interval Δt, and the Theorem-2 initial-mode rule, on the
// traversal workload where switching matters (SSSP over twi).
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

void Report(const char* label, const Result<JobStats>& stats) {
  if (!stats.ok()) {
    std::printf("%-32s FAILED: %s\n", label,
                stats.status().ToString().c_str());
    return;
  }
  int switches = 0;
  for (const auto& s : stats->supersteps) switches += s.switched ? 1 : 0;
  std::printf("%-32s %12.4f %12s %10d %8d\n", label, stats->modeled_seconds,
              HumanBytes(stats->TotalIoBytes()).c_str(), switches,
              stats->supersteps_run);
}

}  // namespace

int main() {
  PrintHeader("bench_ablation_hybrid",
              "ablation: hybrid switching machinery (SSSP over twi, limited "
              "memory)");
  const DatasetSpec spec = FindDataset("twi").ValueOrDie();
  const double shrink = ShrinkFor(spec);
  const EdgeListGraph& graph = CachedGraph(spec, shrink);

  std::printf("%-32s %12s %12s %10s %8s\n", "variant", "runtime(s)", "io",
              "switches", "steps");

  {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    Report("pure push",
           RunAlgo(graph, Algo::kSssp, EngineMode::kPush, cfg));
  }
  {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    Report("pure b-pull",
           RunAlgo(graph, Algo::kSssp, EngineMode::kBPull, cfg));
  }
  for (int dt : {1, 2, 4, 8}) {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.switch_interval = dt;
    char label[64];
    std::snprintf(label, sizeof(label), "hybrid (dt=%d)", dt);
    Report(label, RunAlgo(graph, Algo::kSssp, EngineMode::kHybrid, cfg));
  }
  for (EngineMode initial : {EngineMode::kPush, EngineMode::kBPull}) {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.force_initial_mode = true;
    cfg.initial_mode = initial;
    char label[64];
    std::snprintf(label, sizeof(label), "hybrid (forced start=%s)",
                  EngineModeName(initial));
    Report(label, RunAlgo(graph, Algo::kSssp, EngineMode::kHybrid, cfg));
  }
  std::printf(
      "\nreading: hybrid should at least match the better fixed mode; dt=2\n"
      "(the paper's choice) balances reaction speed against switch churn;\n"
      "the Theorem-2 start loses little versus the best forced start.\n");
  return 0;
}
