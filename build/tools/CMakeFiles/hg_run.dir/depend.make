# Empty dependencies file for hg_run.
# This may be replaced when dependencies are built.
