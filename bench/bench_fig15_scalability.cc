// Figure 15 — scalability: PageRank runtime versus cluster size (10..30
// nodes) under limited memory, for the state-of-the-art push (pushM) and
// hybrid.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_fig15_scalability",
              "Fig 15: PageRank runtime vs number of nodes (limited memory)");
  const uint32_t node_counts[] = {10, 15, 20, 25, 30};
  for (EngineMode mode : {EngineMode::kPushM, EngineMode::kHybrid}) {
    std::printf("\n-- %s: modeled runtime (s) --\n", EngineModeName(mode));
    std::printf("%-8s", "dataset");
    for (uint32_t n : node_counts) std::printf(" %10u", n);
    std::printf("\n");
    for (const char* name : {"livej", "wiki", "orkut", "twi", "fri", "uk"}) {
      const DatasetSpec spec = FindDataset(name).ValueOrDie();
      const double shrink = ShrinkFor(spec);
      const EdgeListGraph& graph = CachedGraph(spec, shrink);
      std::printf("%-8s", name);
      std::fflush(stdout);
      for (uint32_t nodes : node_counts) {
        JobConfig cfg = LimitedMemoryConfig(spec, shrink);
        cfg.num_nodes = nodes;
        auto stats = RunAlgo(graph, Algo::kPageRank, mode, cfg);
        if (!stats.ok()) {
          std::printf(" %10s", "ERR");
          continue;
        }
        std::printf(" %10.4f", stats->modeled_seconds);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nexpected shape: with fewer nodes each node holds more data; pushM\n"
      "degrades super-linearly (more spilled messages), hybrid only\n"
      "sub-linearly (more VE-BLOCK reads).\n");
  return 0;
}
