// TCP transport: the same protocol over real loopback sockets, plus a full
// engine run on top of it.
#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/engine.h"
#include "graph/generator.h"

namespace hybridgraph {
namespace {

TEST(TcpTransport, StartAssignsPorts) {
  TcpTransport t(3);
  ASSERT_TRUE(t.Start().ok());
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_GT(t.port(n), 0);
  }
  EXPECT_NE(t.port(0), t.port(1));
  // Idempotent.
  EXPECT_TRUE(t.Start().ok());
}

TEST(TcpTransport, RequiresStart) {
  TcpTransport t(2);
  EXPECT_EQ(t.Post(0, 1, RpcMethod::kControl, Slice()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TcpTransport, PostDeliversPayload) {
  TcpTransport t(2);
  std::string got;
  NodeId got_src = 99;
  t.RegisterHandler(1, RpcMethod::kPushMessages,
                    [&](NodeId src, Slice payload, Buffer*) {
                      got = payload.ToString();
                      got_src = src;
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.Post(0, 1, RpcMethod::kPushMessages, Slice("hello", 5)).ok());
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(got_src, 0u);
}

TEST(TcpTransport, CallRoundTrip) {
  TcpTransport t(2);
  t.RegisterHandler(1, RpcMethod::kPullRequest,
                    [](NodeId, Slice payload, Buffer* response) {
                      const std::string echoed = payload.ToString() + "!";
                      response->Append(echoed.data(), echoed.size());
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  std::vector<uint8_t> response;
  for (int i = 0; i < 50; ++i) {  // exercise the persistent connection
    ASSERT_TRUE(
        t.Call(0, 1, RpcMethod::kPullRequest, Slice("ping", 4), &response).ok());
    EXPECT_EQ(std::string(response.begin(), response.end()), "ping!");
  }
}

TEST(TcpTransport, MeteringMatchesInProc) {
  auto exercise = [](Transport& t) {
    t.RegisterHandler(1, RpcMethod::kPullRequest,
                      [](NodeId, Slice, Buffer* response) {
                        response->Append("12345678", 8);
                        return Status::OK();
                      });
    EXPECT_TRUE(t.Start().ok());
    std::vector<uint8_t> response;
    EXPECT_TRUE(
        t.Call(0, 1, RpcMethod::kPullRequest, Slice("abc", 3), &response).ok());
    return std::make_pair(t.meter(0)->bytes_sent, t.meter(0)->bytes_received);
  };
  InProcTransport inproc(2);
  TcpTransport tcp(2);
  EXPECT_EQ(exercise(inproc), exercise(tcp));
}

TEST(TcpTransport, LargePayload) {
  TcpTransport t(2);
  std::vector<uint8_t> big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  uint64_t received = 0;
  t.RegisterHandler(1, RpcMethod::kPushMessages,
                    [&](NodeId, Slice payload, Buffer*) {
                      received = payload.size();
                      for (size_t i = 0; i < payload.size(); i += 4096) {
                        if (payload[i] != static_cast<uint8_t>(i)) {
                          return Status::Corruption("payload mangled");
                        }
                      }
                      return Status::OK();
                    });
  ASSERT_TRUE(t.Start().ok());
  ASSERT_TRUE(t.Post(0, 1, RpcMethod::kPushMessages, Slice(big)).ok());
  EXPECT_EQ(received, big.size());
}

TEST(TcpTransport, FullEngineRunMatchesInProc) {
  const auto g = GeneratePowerLaw(400, 7.0, 0.8, 17);
  auto run = [&](TransportKind kind, EngineMode mode) {
    JobConfig cfg;
    cfg.mode = mode;
    cfg.num_nodes = 3;
    cfg.msg_buffer_per_node = 100;
    cfg.max_supersteps = 4;
    cfg.transport = kind;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.GatherValues().ValueOrDie();
  };
  for (EngineMode mode :
       {EngineMode::kPush, EngineMode::kBPull, EngineMode::kHybrid}) {
    const auto inproc = run(TransportKind::kInProc, mode);
    const auto tcp = run(TransportKind::kTcp, mode);
    ASSERT_EQ(inproc.size(), tcp.size());
    for (size_t v = 0; v < inproc.size(); ++v) {
      ASSERT_NEAR(inproc[v], tcp[v], 1e-12)
          << EngineModeName(mode) << " v=" << v;
    }
  }
}

TEST(TcpTransport, SsspOverTcpConverges) {
  const auto g = GeneratePowerLaw(400, 7.0, 0.8, 18);
  SsspProgram program;
  program.source = 2;
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 3;
  cfg.msg_buffer_per_node = 80;
  cfg.max_supersteps = 80;
  cfg.transport = TransportKind::kTcp;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.converged());
}

}  // namespace
}  // namespace hybridgraph
