// Table 4 — the dataset catalog: prints each scale model next to the real
// dataset it stands in for, with measured degree statistics.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_table04_datasets", "Table 4: real graph datasets");
  std::printf("%-8s %12s %12s %8s %8s %10s %8s %8s\n", "graph", "vertices",
              "edges", "deg", "maxdeg", "type", "scale", "nodes");
  for (const auto& spec : PaperDatasets()) {
    const double shrink = ShrinkFor(spec);
    const EdgeListGraph& g = CachedGraph(spec, shrink);
    std::printf("%-8s %12llu %12llu %8.1f %8u %10s %8.0f %8u\n",
                spec.name.c_str(), (unsigned long long)g.num_vertices,
                (unsigned long long)g.num_edges(), g.AverageDegree(),
                g.MaxOutDegree(), spec.web ? "web" : "social",
                spec.scale * shrink, spec.default_nodes);
  }
  std::printf(
      "\npaper originals: livej 4.8M/68M, wiki 5.7M/130M, orkut 3.1M/234M,\n"
      "twi 41.7M/1470M, fri 65.6M/1810M, uk 105.9M/3740M (vertices/edges);\n"
      "the models match average degree, skew and web/social structure at\n"
      "the printed scale factor.\n");
  return 0;
}
