#include "util/rng.h"

#include <algorithm>

#include "util/logging.h"

namespace hybridgraph {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  HG_CHECK_GT(n, 0u) << "ZipfSampler needs at least one rank";
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_[i - 1] = acc;
  }
  const double total = acc;
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against FP rounding
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace hybridgraph
