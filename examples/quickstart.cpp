// Quickstart: run PageRank on a synthetic social graph under every engine
// mode and compare modeled runtime and I/O — a miniature of the paper's
// headline experiment. The AnyEngine runner covers all five systems,
// including the v-pull (PowerGraph) baseline, behind one interface.
#include <cstdio>

#include "hybridgraph/hybridgraph.h"

using namespace hybridgraph;

int main() {
  // A ~24k-vertex power-law graph (the "livej" scale model from Table 4).
  const DatasetSpec spec = FindDataset("livej").ValueOrDie();
  const EdgeListGraph graph = BuildDataset(spec);
  std::printf("graph: %llu vertices, %llu edges (avg degree %.1f)\n\n",
              (unsigned long long)graph.num_vertices,
              (unsigned long long)graph.num_edges(), graph.AverageDegree());

  std::printf("%-8s %12s %12s %12s %10s\n", "engine", "modeled(s)", "io",
              "net", "msgs");
  for (EngineMode mode :
       {EngineMode::kPush, EngineMode::kPushM, EngineMode::kBPull,
        EngineMode::kHybrid, EngineMode::kVPull}) {
    JobConfig cfg;
    cfg.mode = mode;
    cfg.num_nodes = 5;
    cfg.msg_buffer_per_node = 2500;  // limited memory: most messages overflow
    cfg.vpull_vertex_cache = 2500;   // the v-pull analogue (LRU vertex cache)
    cfg.max_supersteps = 5;
    auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
    Status st = engine->Load(graph);
    if (st.ok()) st = engine->Run();
    if (!st.ok()) {
      std::printf("%-8s FAILED: %s\n", EngineModeName(mode), st.ToString().c_str());
      continue;
    }
    const JobStats& s = engine->stats();
    std::printf("%-8s %12.3f %12s %12s %10llu\n", EngineModeName(mode),
                s.modeled_seconds, HumanBytes(s.TotalIoBytes()).c_str(),
                HumanBytes(s.TotalNetBytes()).c_str(),
                (unsigned long long)s.TotalMessages());
  }
  return 0;
}
