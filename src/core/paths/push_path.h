// The push MessagePath (Sec 3.1): Phase A drains the double-buffered inbox
// (memory portion + spill merge) into the pending set; Phase B production
// reads the adjacency block once per Vblock and broadcasts along out-edges
// (pushRes()), staging per destination node with optional sender combining
// (pushM+com, Appendix E) and threshold flushes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/paths/block_path_base.h"
#include "graph/adjacency_store.h"

namespace hybridgraph {

template <typename P>
class PushPath : public BlockPathBase<P> {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  explicit PushPath(SuperstepDriver<P>* driver) : BlockPathBase<P>(driver) {}

  EngineMode mode() const override { return EngineMode::kPush; }
  bool needs_adjacency() const override { return true; }

  Status Build(const EdgeListGraph& graph) override {
    HG_RETURN_IF_ERROR(this->driver_->EnsureBlockTopology(graph));
    this->InitPolicies();
    return Status::OK();
  }

  Status Consume(uint32_t i) override {
    NodeState& node = this->driver_->nodes()[i];
    node.pending.ResetCount();
    if (this->driver_->superstep() == 0) return Status::OK();
    return CollectPushMessages(node, this->collect_policy_);
  }

  Status WarmupNextSuperstep(uint32_t i) override {
    NodeState& node = this->driver_->nodes()[i];
    if (!node.pipeline || !node.pipeline->enabled()) return Status::OK();
    // Next superstep's consume merges inbox_next's spill runs (it becomes
    // inbox_cur at the promotion barrier): stage each run's first chunk now
    // so the merge's opening refills overlap the drain/aggregator exchange.
    node.inbox_next.spill()->WarmupMerge(
        this->collect_policy_.spill_merge_buffer_bytes, node.pipeline.get());
    return Status::OK();
  }

  Status ProduceVblock(NodeState& node, uint32_t vb,
                       const std::vector<uint8_t>& respond_in_vb,
                       const std::vector<uint8_t>& block_values) override {
    // pushRes(): read the adjacency block once and broadcast along
    // out-edges. Vertex values are still in hand from the update pass
    // (compute() in Giraph is one pass), so no extra value I/O is charged.
    bool any = false;
    for (uint8_t rf : respond_in_vb) {
      if (rf) {
        any = true;
        break;
      }
    }
    if (!any) return Status::OK();

    const JobConfig& config = this->driver_->config();
    const RangePartition& partition = this->driver_->partition();
    // Stage the next Vblock's adjacency before consuming this one
    // (responding blocks cluster, so the speculative read usually lands);
    // a wrong guess is just dropped from the pipeline later.
    if (node.pipeline && node.pipeline->enabled() &&
        vb + 1 < partition.LastVblockOf(node.id)) {
      node.adj->PrefetchBlock(vb + 1, node.pipeline.get());
    }
    std::vector<AdjacencyStore::VertexAdj> adj;
    HG_RETURN_IF_ERROR(node.adj->ReadBlock(vb, &adj, node.pipeline.get()));
    node.io.adj_edge_bytes += node.adj->BlockBytes(vb);
    node.cpu_seconds +=
        config.cpu.per_edge_s * static_cast<double>(node.adj->BlockEdges(vb));

    const VertexRange r = partition.VblockRange(vb);
    std::vector<uint8_t> msg_bytes(P::kMessageSize);
    for (const auto& va : adj) {
      const uint32_t in_block = va.id - r.begin;
      if (!respond_in_vb[in_block]) continue;
      const Value value = PodCodec<Value>::Decode(
          block_values.data() + static_cast<size_t>(in_block) * P::kValueSize);
      const uint32_t out_degree = node.vstore->OutDegree(va.id);
      for (const auto& e : va.out) {
        const Message m = this->driver_->program().GenMessage(
            va.id, value, out_degree, e, this->driver_->ctx());
        ++node.msgs_produced;
        node.cpu_seconds += config.cpu.per_message_s;
        const NodeId dst_node = partition.NodeOf(e.dst);
        PodCodec<Message>::Encode(m, msg_bytes.data());
        if (config.push_sender_combining && P::kCombinable) {
          // pushM+com (Appendix E): combine with a message for the same
          // destination still sitting in this staging buffer.
          const bool hit =
              node.staging.TryCombine(dst_node, e.dst, msg_bytes.data());
          node.cpu_seconds += config.cpu.per_combine_s;
          if (hit) {
            ++node.msgs_combined;
            continue;
          }
        }
        node.staging.Append(dst_node, e.dst, msg_bytes.data());
        node.mem_highwater = std::max<uint64_t>(
            node.mem_highwater,
            node.staging.count(dst_node) * (4 + P::kMessageSize));
        HG_RETURN_IF_ERROR(FlushStagedMessages(
            node, this->driver_->transport(), dst_node, /*force=*/false,
            config.sending_threshold_bytes, 4 + P::kMessageSize));
      }
    }
    return Status::OK();
  }

  Status FinishProduce(NodeState& node) override {
    for (uint32_t y = 0; y < this->driver_->config().num_nodes; ++y) {
      HG_RETURN_IF_ERROR(FlushStagedMessages(
          node, this->driver_->transport(), y, /*force=*/true,
          this->driver_->config().sending_threshold_bytes,
          4 + P::kMessageSize));
    }
    return Status::OK();
  }

 protected:
  uint64_t ExtraMemoryBytes(const NodeState& node) const override {
    uint64_t buffers = node.inbox_next.count() * (4 + P::kMessageSize);
    if (node.moc_slots > 0) {
      buffers += node.moc_slots * P::kMessageSize / 8;  // accumulator slots
    }
    return buffers;
  }
};

}  // namespace hybridgraph
