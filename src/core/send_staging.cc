#include "core/send_staging.h"

#include "net/message_codec.h"

namespace hybridgraph {

void SendStaging::Init(uint32_t num_dst_nodes, size_t msg_size,
                       CombineRawFn combiner) {
  msg_size_ = msg_size;
  combiner_ = combiner;
  records_.resize(num_dst_nodes);
  index_.resize(num_dst_nodes);
}

void SendStaging::Append(uint32_t dst, VertexId dst_vertex,
                         const uint8_t* payload) {
  records_[dst].emplace_back(
      dst_vertex, std::vector<uint8_t>(payload, payload + msg_size_));
}

bool SendStaging::TryCombine(uint32_t dst, VertexId dst_vertex,
                             const uint8_t* payload) {
  auto [it, inserted] = index_[dst].try_emplace(dst_vertex, records_[dst].size());
  if (inserted) return false;
  combiner_(records_[dst][it->second].second.data(), payload);
  return true;
}

void SendStaging::EncodeBatch(uint32_t dst, Buffer* out) const {
  FlatBatchCodec::Encode(records_[dst], msg_size_, out);
}

void SendStaging::Clear(uint32_t dst) {
  records_[dst].clear();
  index_[dst].clear();
}

}  // namespace hybridgraph
