#include "graph/partition.h"

#include <algorithm>

#include "util/string_util.h"

namespace hybridgraph {

Result<RangePartition> RangePartition::Create(
    uint64_t num_vertices, uint32_t num_nodes,
    std::vector<uint32_t> vblocks_per_node) {
  if (num_nodes == 0) return Status::InvalidArgument("need at least one node");
  if (vblocks_per_node.size() != num_nodes) {
    return Status::InvalidArgument("vblocks_per_node size != num_nodes");
  }
  if (num_vertices > UINT32_MAX) {
    return Status::InvalidArgument("vertex id space exceeds 32 bits");
  }
  for (uint32_t vb : vblocks_per_node) {
    if (vb == 0) return Status::InvalidArgument("every node needs >=1 Vblock");
  }

  RangePartition p;
  p.num_vertices_ = num_vertices;
  p.num_nodes_ = num_nodes;

  // Per-node contiguous ranges, sizes differing by at most one.
  p.node_begin_.resize(num_nodes + 1);
  const uint64_t base = num_vertices / num_nodes;
  const uint64_t extra = num_vertices % num_nodes;
  uint64_t cursor = 0;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    p.node_begin_[i] = static_cast<VertexId>(cursor);
    cursor += base + (i < extra ? 1 : 0);
  }
  p.node_begin_[num_nodes] = static_cast<VertexId>(cursor);

  // Per-node Vblock subranges.
  p.node_first_vblock_.resize(num_nodes + 1);
  uint32_t vb_count = 0;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    p.node_first_vblock_[i] = vb_count;
    vb_count += vblocks_per_node[i];
  }
  p.node_first_vblock_[num_nodes] = vb_count;

  p.vblock_begin_.resize(vb_count + 1);
  p.vblock_node_.resize(vb_count);
  uint32_t vb = 0;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    const uint64_t n_i = p.node_begin_[i + 1] - p.node_begin_[i];
    const uint32_t k = vblocks_per_node[i];
    const uint64_t vb_base = n_i / k;
    const uint64_t vb_extra = n_i % k;
    uint64_t c = p.node_begin_[i];
    for (uint32_t j = 0; j < k; ++j, ++vb) {
      p.vblock_begin_[vb] = static_cast<VertexId>(c);
      p.vblock_node_[vb] = i;
      c += vb_base + (j < vb_extra ? 1 : 0);
    }
  }
  p.vblock_begin_[vb_count] = static_cast<VertexId>(num_vertices);
  return p;
}

Result<RangePartition> RangePartition::CreateUniform(uint64_t num_vertices,
                                                     uint32_t num_nodes,
                                                     uint32_t vblocks_per_node) {
  return Create(num_vertices, num_nodes,
                std::vector<uint32_t>(num_nodes, vblocks_per_node));
}

NodeId RangePartition::NodeOf(VertexId v) const {
  auto it = std::upper_bound(node_begin_.begin(), node_begin_.end(), v);
  return static_cast<NodeId>(it - node_begin_.begin() - 1);
}

uint32_t RangePartition::VblockOf(VertexId v) const {
  auto it = std::upper_bound(vblock_begin_.begin(), vblock_begin_.end(), v);
  return static_cast<uint32_t>(it - vblock_begin_.begin() - 1);
}

}  // namespace hybridgraph
