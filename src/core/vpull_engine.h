// Vertex-centric pull baseline: a faithful reimplementation of the GraphLab
// PowerGraph execution model (synchronous GAS over a vertex-cut), extended —
// exactly like the paper's Sec 6 modification — with disk-resident edges and
// an LRU-managed disk-resident vertex table.
//
// Partitioning: edges are hash-partitioned across nodes (vertex-cut); every
// vertex has a hash-assigned master, and a replica on each node that holds
// any of its edges. Per superstep:
//   Gather  — each node sequentially scans its local edge blob; for every
//             edge (u,v) with a responding u it reads u's replica value
//             (LRU cache over the on-disk vertex table: the random-read
//             storm that makes this baseline I/O-inefficient), computes the
//             edge message and folds it into a local partial aggregate for v.
//   Sum     — partial aggregates ship to v's master (network).
//   Apply   — the master runs update() on the combined gather result.
//   Scatter — the new value (and responding flag) broadcasts to all replica
//             nodes (the vertex-cut mirror-synchronization traffic), which
//             write it back through the LRU cache (dirty evictions become
//             random writes).
#pragma once

#include <chrono>
#include <unordered_map>

#include "core/job_config.h"
#include "core/lru_cache.h"
#include "core/program.h"
#include "core/run_metrics.h"
#include "graph/edge_list.h"
#include "io/storage.h"
#include "net/message_codec.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace hybridgraph {

template <typename P>
class VPullEngine {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  VPullEngine(JobConfig config, P program)
      : config_(std::move(config)), program_(std::move(program)) {
    StaticCheckProgram<P>();
  }

  Status Load(const EdgeListGraph& graph);
  Status Run();
  Status RunSuperstep();

  const JobStats& stats() const { return stats_; }
  bool converged() const { return converged_; }
  Result<std::vector<Value>> GatherValues();

 private:
  static constexpr size_t kMsgSize = P::kMessageSize;
  static constexpr size_t kValueRecord = P::kValueSize;
  static constexpr size_t kEdgeRecord = 12;  // src + dst + weight

  struct Replica {
    Value value;
    bool responding = false;
  };

  struct Node {
    NodeId id = 0;
    std::unique_ptr<StorageService> storage;

    // Local edge set (on disk as one blob, scanned sequentially).
    uint64_t num_edges = 0;
    uint64_t edge_bytes = 0;

    // Replica table: vertex -> dense local index into the on-disk vertex
    // table; out-degree is global static metadata kept in memory.
    std::unordered_map<VertexId, uint32_t> replica_idx;
    std::vector<VertexId> replica_vertex;  // inverse map
    std::vector<uint8_t> replica_responding;
    std::unique_ptr<LruCache<uint32_t, Value>> cache;

    // Master role: owned vertices and where their replicas live.
    std::vector<VertexId> owned;
    std::unordered_map<VertexId, std::vector<NodeId>> replica_nodes;
    // Gather results arriving at the master.
    std::unordered_map<VertexId, std::vector<Message>> pending;

    // Raw payloads stashed by the RPC handlers, indexed by sender. Handlers
    // run in the sender's thread (under this node's dispatch lock) while this
    // node's own phase task may be running, so they must not touch pending /
    // cache / replica_responding; the engine drains the staged payloads in
    // sender order at the next barrier, which reproduces the sequential
    // arrival order (sender x finished its whole phase before sender x+1).
    std::vector<std::vector<std::vector<uint8_t>>> gather_staged;
    std::vector<std::vector<std::vector<uint8_t>>> apply_staged;

    // Per-superstep counters.
    uint64_t updated = 0;
    uint64_t responded = 0;
    uint64_t msgs_produced = 0;
    double cpu_seconds = 0;
    uint64_t mem_highwater = 0;
    DiskMeter disk_snapshot;
    NetMeter net_snapshot;
  };

  std::string EdgeKey(NodeId n) const { return StringFormat("node%u/gas/edges", n); }
  std::string VtabKey(NodeId n) const { return StringFormat("node%u/gas/vtab", n); }

  NodeId MasterOf(VertexId v) const {
    return static_cast<NodeId>((v * 2654435761u) % config_.num_nodes);
  }
  NodeId EdgeHome(const RawEdge& e) const {
    const uint64_t h = (static_cast<uint64_t>(e.src) << 32) | e.dst;
    return static_cast<NodeId>((h * 0x9E3779B97F4A7C15ULL >> 33) %
                               config_.num_nodes);
  }

  /// Reads a replica value through the node's LRU cache.
  Status CachedRead(Node& node, uint32_t idx, Value* out);
  /// Writes a replica value through the cache (dirty; evict = random write).
  Status CachedWrite(Node& node, uint32_t idx, const Value& value);

  Status HandleGatherPartial(Node& node, Slice payload);
  Status HandleApplyBroadcast(Node& node, Slice payload);

  /// Gather phase for one node (runs as a pool task).
  Status GatherNode(Node& node);
  /// Apply + Scatter phase for one node (runs as a pool task).
  Status ApplyScatterNode(Node& node);
  /// Applies staged handler payloads in sender order (post-barrier).
  Status DrainGatherStaged(Node& node);
  Status DrainApplyStaged(Node& node);

  void BeginAccounting();
  void EndAccounting();

  JobConfig config_;
  P program_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> out_degrees_;
  SuperstepContext ctx_;

  int superstep_ = 0;
  bool converged_ = false;
  bool loaded_ = false;
  uint64_t responding_total_ = 0;
  JobStats stats_;
};

// ---------------------------------------------------------------------------

template <typename P>
Status VPullEngine<P>::Load(const EdgeListGraph& graph) {
  HG_RETURN_IF_ERROR(graph.Validate());
  JobConfig::JobFacts facts;
  facts.num_vertices = graph.num_vertices;
  facts.combinable_messages = P::kCombinable;
  facts.vpull_engine = true;
  HG_RETURN_IF_ERROR(config_.Validate(facts));
  pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  ctx_.num_vertices = graph.num_vertices;
  config_.cpu.per_vertex_update_s *= config_.cpu.scale;
  config_.cpu.per_message_s *= config_.cpu.scale;
  config_.cpu.per_edge_s *= config_.cpu.scale;
  config_.cpu.per_spilled_message_s *= config_.cpu.scale;
  config_.cpu.scale = 1.0;
  out_degrees_ = graph.OutDegrees();
  const uint32_t T = config_.num_nodes;
  if (config_.transport == TransportKind::kTcp) {
    TcpTransport::Options topt;
    topt.call_timeout_ms = config_.tcp_call_timeout_ms;
    topt.max_retries = config_.tcp_max_retries;
    topt.backoff_base_us = config_.tcp_backoff_base_us;
    topt.backoff_max_us = config_.tcp_backoff_max_us;
    topt.max_frame_bytes = config_.tcp_max_frame_bytes;
    topt.seed = config_.seed;
    transport_ = std::make_unique<TcpTransport>(T, topt);
  } else {
    transport_ = std::make_unique<InProcTransport>(T);
  }
  if (!config_.failpoints.empty()) {
    HG_RETURN_IF_ERROR(
        FailPointRegistry::Instance().ArmFromString(config_.failpoints));
  }
  nodes_.resize(T);

  // Assign edges (vertex-cut) and discover replica sets.
  std::vector<std::vector<RawEdge>> local_edges(T);
  for (const auto& e : graph.edges) {
    local_edges[EdgeHome(e)].push_back(e);
  }

  for (uint32_t i = 0; i < T; ++i) {
    Node& node = nodes_[i];
    node.id = i;
    if (config_.use_file_storage) {
      HG_ASSIGN_OR_RETURN(node.storage,
                          FileStorage::Open(config_.storage_dir + "/gas" +
                                            std::to_string(i)));
    } else {
      node.storage = std::make_unique<MemStorage>();
    }
    node.storage->EnablePageCache(config_.page_cache_bytes_per_node);

    auto intern = [&](VertexId v) -> uint32_t {
      auto it = node.replica_idx.find(v);
      if (it != node.replica_idx.end()) return it->second;
      const uint32_t idx = static_cast<uint32_t>(node.replica_vertex.size());
      node.replica_idx.emplace(v, idx);
      node.replica_vertex.push_back(v);
      return idx;
    };

    // Edge blob in shard-hash order: GraphLab's edge shards carry no vertex
    // id locality, so the gather scan must not hand the LRU a sorted order.
    std::sort(local_edges[i].begin(), local_edges[i].end(),
              [](const RawEdge& a, const RawEdge& b) {
                auto h = [](const RawEdge& e) {
                  uint64_t x = (static_cast<uint64_t>(e.src) << 32) | e.dst;
                  x *= 0x9E3779B97F4A7C15ULL;
                  return x ^ (x >> 29);
                };
                return h(a) < h(b);
              });
    Buffer buf;
    Encoder enc(&buf);
    for (const auto& e : local_edges[i]) {
      intern(e.src);
      intern(e.dst);
      enc.PutFixed32(e.src);
      enc.PutFixed32(e.dst);
      enc.PutFloat(e.weight);
    }
    HG_RETURN_IF_ERROR(
        node.storage->Write(EdgeKey(i), buf.AsSlice(), IoClass::kSeqWrite));
    node.num_edges = local_edges[i].size();
    node.edge_bytes = buf.size();
  }

  // Masters own all their hash-assigned vertices (even isolated ones).
  for (VertexId v = 0; v < graph.num_vertices; ++v) {
    nodes_[MasterOf(v)].owned.push_back(v);
  }
  for (uint32_t i = 0; i < T; ++i) {
    for (VertexId v : nodes_[i].owned) {
      auto it = nodes_[i].replica_idx.find(v);
      if (it == nodes_[i].replica_idx.end()) {
        const uint32_t idx = static_cast<uint32_t>(nodes_[i].replica_vertex.size());
        nodes_[i].replica_idx.emplace(v, idx);
        nodes_[i].replica_vertex.push_back(v);
      }
    }
  }
  // Replica location lists at the masters.
  for (uint32_t i = 0; i < T; ++i) {
    for (VertexId v : nodes_[i].replica_vertex) {
      nodes_[MasterOf(v)].replica_nodes[v].push_back(i);
    }
  }

  // On-disk vertex tables + LRU caches + initial values.
  for (uint32_t i = 0; i < T; ++i) {
    Node& node = nodes_[i];
    Buffer buf;
    Encoder enc(&buf);
    std::vector<uint8_t> tmp(kValueRecord);
    for (VertexId v : node.replica_vertex) {
      const Value val = program_.InitValue(v, ctx_);
      PodCodec<Value>::Encode(val, tmp.data());
      enc.PutRaw(tmp.data(), tmp.size());
    }
    HG_RETURN_IF_ERROR(
        node.storage->Write(VtabKey(i), buf.AsSlice(), IoClass::kSeqWrite));
    node.gather_staged.resize(T);
    node.apply_staged.resize(T);
    node.replica_responding.assign(node.replica_vertex.size(), 0);
    for (VertexId v : node.replica_vertex) {
      if (program_.InitActive(v)) {
        node.replica_responding[node.replica_idx[v]] = 1;
      }
    }
    const size_t cap = static_cast<size_t>(std::min<uint64_t>(
        config_.vpull_vertex_cache, node.replica_vertex.size()));
    Node* node_ptr = &node;
    node.cache = std::make_unique<LruCache<uint32_t, Value>>(
        std::max<size_t>(1, cap),
        [this, node_ptr](const uint32_t& idx, const Value& value, bool dirty) {
          if (!dirty) return;
          std::vector<uint8_t> tmp2(kValueRecord);
          PodCodec<Value>::Encode(value, tmp2.data());
          // Dirty eviction: random write into the vertex table.
          Status s = node_ptr->storage->WriteRange(
              VtabKey(node_ptr->id), uint64_t{idx} * kValueRecord,
              Slice(tmp2.data(), tmp2.size()), IoClass::kRandWrite);
          HG_CHECK(s.ok()) << s.ToString();
        });

    transport_->RegisterHandler(
        i, RpcMethod::kGatherPartial,
        [node_ptr](NodeId src, Slice payload, Buffer*) {
          node_ptr->gather_staged[src].emplace_back(
              payload.data(), payload.data() + payload.size());
          return Status::OK();
        });
    transport_->RegisterHandler(
        i, RpcMethod::kApplyBroadcast,
        [node_ptr](NodeId src, Slice payload, Buffer*) {
          node_ptr->apply_staged[src].emplace_back(
              payload.data(), payload.data() + payload.size());
          return Status::OK();
        });
  }

  HG_RETURN_IF_ERROR(transport_->Start());

  uint64_t bytes_written = 0;
  for (auto& node : nodes_) {
    bytes_written += node.storage->meter()->WriteBytes();
  }
  stats_.load.bytes_written = bytes_written;
  stats_.load.load_seconds =
      static_cast<double>(bytes_written) /
      (config_.disk.seq_write_mbps * 1024.0 * 1024.0) / config_.num_nodes;

  responding_total_ = 0;
  for (auto& node : nodes_) {
    for (VertexId v : node.owned) {
      responding_total_ += program_.InitActive(v) ? 1 : 0;
    }
  }
  loaded_ = true;
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::CachedRead(Node& node, uint32_t idx, Value* out) {
  if (Value* hit = node.cache->Get(idx)) {
    *out = *hit;
    return Status::OK();
  }
  node.cache->RecordMiss();
  node.cpu_seconds += config_.vpull_miss_penalty_s;
  std::vector<uint8_t> raw;
  HG_RETURN_IF_ERROR(node.storage->ReadRange(VtabKey(node.id),
                                             uint64_t{idx} * kValueRecord,
                                             kValueRecord, &raw,
                                             IoClass::kRandRead));
  *out = PodCodec<Value>::Decode(raw.data());
  node.cache->Put(idx, *out, /*dirty=*/false);
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::CachedWrite(Node& node, uint32_t idx, const Value& value) {
  node.cache->Put(idx, value, /*dirty=*/true);
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::HandleGatherPartial(Node& node, Slice payload) {
  std::vector<GroupedBatchCodec::Group> groups;
  HG_RETURN_IF_ERROR(GroupedBatchCodec::Decode(payload, kMsgSize, &groups));
  for (const auto& g : groups) {
    auto& slot = node.pending[g.dst];
    for (const auto& p : g.payloads) {
      const Message m = PodCodec<Message>::Decode(p.data());
      if (P::kCombinable && !slot.empty()) {
        slot[0] = P::Combine(slot[0], m);
      } else {
        slot.push_back(m);
      }
    }
  }
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::HandleApplyBroadcast(Node& node, Slice payload) {
  // (vertex, value, responding) triples from masters to replicas.
  Decoder dec(payload);
  uint64_t count;
  HG_RETURN_IF_ERROR(dec.GetVarint64(&count));
  Slice raw;
  for (uint64_t k = 0; k < count; ++k) {
    uint32_t v;
    uint8_t responding;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&v));
    HG_RETURN_IF_ERROR(dec.GetU8(&responding));
    HG_RETURN_IF_ERROR(dec.GetRaw(kValueRecord, &raw));
    auto it = node.replica_idx.find(v);
    if (it == node.replica_idx.end()) {
      return Status::Internal("broadcast to node without replica");
    }
    const Value value = PodCodec<Value>::Decode(raw.data());
    HG_RETURN_IF_ERROR(CachedWrite(node, it->second, value));
    node.replica_responding[it->second] = responding;
  }
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::DrainGatherStaged(Node& node) {
  for (uint32_t src = 0; src < config_.num_nodes; ++src) {
    for (const auto& payload : node.gather_staged[src]) {
      HG_RETURN_IF_ERROR(
          HandleGatherPartial(node, Slice(payload.data(), payload.size())));
    }
    node.gather_staged[src].clear();
  }
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::DrainApplyStaged(Node& node) {
  for (uint32_t src = 0; src < config_.num_nodes; ++src) {
    for (const auto& payload : node.apply_staged[src]) {
      HG_RETURN_IF_ERROR(
          HandleApplyBroadcast(node, Slice(payload.data(), payload.size())));
    }
    node.apply_staged[src].clear();
  }
  return Status::OK();
}

template <typename P>
void VPullEngine<P>::BeginAccounting() {
  for (auto& node : nodes_) {
    node.updated = 0;
    node.responded = 0;
    node.msgs_produced = 0;
    node.cpu_seconds = 0;
    node.mem_highwater = 0;
    node.disk_snapshot = *node.storage->meter();
    node.net_snapshot = *transport_->meter(node.id);
  }
}

template <typename P>
void VPullEngine<P>::EndAccounting() {
  SuperstepMetrics m;
  m.superstep = superstep_;
  m.mode = EngineMode::kVPull;
  double max_node_seconds = 0, max_blocking = 0;
  for (auto& node : nodes_) {
    m.messages_produced += node.msgs_produced;
    m.messages_on_wire += node.msgs_produced;
    m.active_vertices += node.updated;
    m.responding_vertices += node.responded;

    const DiskMeter disk = node.storage->meter()->DeltaSince(node.disk_snapshot);
    m.io.adj_edge_bytes += disk.bytes(IoClass::kSeqRead);
    m.io.vrr_bytes += disk.bytes(IoClass::kRandRead);
    m.io.other_bytes += disk.bytes(IoClass::kRandWrite) +
                        disk.bytes(IoClass::kSeqWrite);
    const NetMeter net = transport_->meter(node.id)->DeltaSince(node.net_snapshot);
    m.net_bytes += net.bytes_sent;
    m.net_frames += net.frames_sent;

    const double io_s =
        config_.memory_resident ? 0.0 : disk.ModeledSeconds(config_.disk);
    const double net_s = config_.net.SecondsFor(
        std::max(net.bytes_sent, net.bytes_received));
    const double work_s = node.cpu_seconds + io_s;
    const double blocking_s = std::max(0.0, net_s - work_s) +
                              config_.net.SecondsFor(std::min<uint64_t>(
                                  config_.sending_threshold_bytes,
                                  net.bytes_sent));
    m.cpu_seconds += node.cpu_seconds;
    m.io_seconds += io_s;
    m.net_seconds += net_s;
    max_blocking = std::max(max_blocking, blocking_s);
    max_node_seconds = std::max(max_node_seconds, work_s + blocking_s);
    m.memory_highwater_bytes +=
        node.cache->size() * kValueRecord + node.mem_highwater;
  }
  m.blocking_seconds = max_blocking;
  m.superstep_seconds = max_node_seconds;
  stats_.supersteps.push_back(m);
  stats_.modeled_seconds += m.superstep_seconds;
}

template <typename P>
Status VPullEngine<P>::GatherNode(Node& node) {
  // Gather: scan local edges, read source replicas, build partials.
  // Per destination master node: grouped partial aggregates.
  std::vector<std::unordered_map<VertexId, std::vector<Message>>> partials(
      config_.num_nodes);
  std::vector<uint8_t> raw;
  HG_RETURN_IF_ERROR(
      node.storage->Read(EdgeKey(node.id), &raw, IoClass::kSeqRead));
  Decoder dec{Slice(raw)};
  Value src_value;
  while (!dec.AtEnd()) {
    RawEdge e;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&e.src));
    HG_RETURN_IF_ERROR(dec.GetFixed32(&e.dst));
    HG_RETURN_IF_ERROR(dec.GetFloat(&e.weight));
    const uint32_t src_idx = node.replica_idx[e.src];
    if (!node.replica_responding[src_idx]) continue;
    HG_RETURN_IF_ERROR(CachedRead(node, src_idx, &src_value));
    const Message msg = program_.GenMessage(
        e.src, src_value, out_degrees_[e.src], {e.dst, e.weight}, ctx_);
    ++node.msgs_produced;
    node.cpu_seconds +=
        config_.cpu.per_edge_s + config_.cpu.per_message_s;
    auto& slot = partials[MasterOf(e.dst)][e.dst];
    if (P::kCombinable && !slot.empty()) {
      slot[0] = P::Combine(slot[0], msg);
    } else {
      slot.push_back(msg);
    }
  }
  // Ship partials to masters (the receiving handler only stages the bytes).
  std::vector<uint8_t> tmp(kMsgSize);
  for (uint32_t y = 0; y < config_.num_nodes; ++y) {
    if (partials[y].empty()) continue;
    std::vector<GroupedBatchCodec::Group> groups;
    groups.reserve(partials[y].size());
    for (auto& [v, msgs] : partials[y]) {
      GroupedBatchCodec::Group g;
      g.dst = v;
      for (const Message& msg : msgs) {
        PodCodec<Message>::Encode(msg, tmp.data());
        g.payloads.push_back(tmp);
      }
      groups.push_back(std::move(g));
    }
    Buffer payload;
    GroupedBatchCodec::Encode(groups, kMsgSize, &payload);
    node.mem_highwater = std::max<uint64_t>(node.mem_highwater, payload.size());
    HG_RETURN_IF_ERROR(transport_->Post(node.id, y, RpcMethod::kGatherPartial,
                                        payload.AsSlice()));
  }
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::ApplyScatterNode(Node& node) {
  // Apply + Scatter at this master. Broadcast staging per replica node.
  std::vector<Message> no_msgs;
  std::vector<Buffer> bodies(config_.num_nodes);
  std::vector<uint64_t> counts(config_.num_nodes, 0);
  std::vector<uint8_t> tmp(kValueRecord);

  for (VertexId v : node.owned) {
    auto pit = node.pending.find(v);
    const bool has_msgs = pit != node.pending.end();
    const bool run_update = P::kAlwaysActive
                                ? (superstep_ > 0 || program_.InitActive(v))
                                : (has_msgs || (superstep_ == 0 &&
                                                program_.InitActive(v)));
    const uint32_t idx = node.replica_idx[v];
    if (!run_update) {
      // BSP semantics: a vertex that does not update this superstep does
      // not respond this superstep. Clear a stale flag on every replica.
      if (superstep_ > 0 && node.replica_responding[idx]) {
        node.replica_responding[idx] = 0;
        Value value;
        HG_RETURN_IF_ERROR(CachedRead(node, idx, &value));
        std::vector<uint8_t> vtmp(kValueRecord);
        PodCodec<Value>::Encode(value, vtmp.data());
        for (NodeId rn : node.replica_nodes[v]) {
          if (rn == node.id) continue;
          Encoder enc(&bodies[rn]);
          enc.PutFixed32(v);
          enc.PutU8(0);
          enc.PutRaw(vtmp.data(), vtmp.size());
          ++counts[rn];
        }
      }
      continue;
    }
    Value value;
    HG_RETURN_IF_ERROR(CachedRead(node, idx, &value));
    const auto& msgs = has_msgs ? pit->second : no_msgs;
    const UpdateResult res = program_.Update(v, &value, msgs, ctx_);
    ++node.updated;
    node.cpu_seconds += config_.cpu.per_vertex_update_s +
                        config_.cpu.per_message_s * msgs.size();
    if (res.changed) {
      HG_RETURN_IF_ERROR(CachedWrite(node, idx, value));
    }
    if (res.respond) {
      ++node.responded;
    }
    const uint8_t responding = res.respond ? 1 : 0;
    const bool flag_changed =
        node.replica_responding[idx] != responding;
    node.replica_responding[idx] = responding;
    // Mirror synchronization: value/flag changes go to every replica node.
    if (res.changed || flag_changed) {
      PodCodec<Value>::Encode(value, tmp.data());
      for (NodeId rn : node.replica_nodes[v]) {
        if (rn == node.id) continue;
        Encoder enc(&bodies[rn]);
        enc.PutFixed32(v);
        enc.PutU8(responding);
        enc.PutRaw(tmp.data(), tmp.size());
        ++counts[rn];
      }
    }
  }
  node.pending.clear();

  for (uint32_t y = 0; y < config_.num_nodes; ++y) {
    if (counts[y] == 0) continue;
    Buffer framed;
    Encoder enc(&framed);
    enc.PutVarint64(counts[y]);
    enc.PutRaw(bodies[y].data(), bodies[y].size());
    HG_RETURN_IF_ERROR(transport_->Post(node.id, y, RpcMethod::kApplyBroadcast,
                                        framed.AsSlice()));
  }
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::RunSuperstep() {
  if (!loaded_) return Status::FailedPrecondition("Load() first");
  ctx_.superstep = superstep_;
  BeginAccounting();

  // Gather fans out one task per node; the partial aggregates land as staged
  // bytes at the masters and are folded in (sender order) after the barrier.
  if (superstep_ > 0) {
    HG_RETURN_IF_ERROR(pool_->ParallelFor(
        config_.num_nodes, [this](uint32_t i) { return GatherNode(nodes_[i]); }));
  }
  HG_RETURN_IF_ERROR(pool_->ParallelFor(config_.num_nodes, [this](uint32_t i) {
    return DrainGatherStaged(nodes_[i]);
  }));

  // Apply + Scatter, then fold the staged mirror updates into replica caches
  // before accounting so dirty-eviction I/O lands in this superstep.
  HG_RETURN_IF_ERROR(pool_->ParallelFor(config_.num_nodes, [this](uint32_t i) {
    return ApplyScatterNode(nodes_[i]);
  }));
  HG_RETURN_IF_ERROR(pool_->ParallelFor(config_.num_nodes, [this](uint32_t i) {
    return DrainApplyStaged(nodes_[i]);
  }));

  uint64_t responding_next = 0;
  for (const auto& node : nodes_) responding_next += node.responded;

  EndAccounting();
  ++superstep_;
  stats_.supersteps_run = superstep_;
  responding_total_ = responding_next;
  if (responding_next == 0 && superstep_ > 0) converged_ = true;
  return Status::OK();
}

template <typename P>
Status VPullEngine<P>::Run() {
  const auto start = std::chrono::steady_clock::now();
  while (superstep_ < config_.max_supersteps && !converged_) {
    HG_RETURN_IF_ERROR(RunSuperstep());
  }
  stats_.converged = converged_;
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return Status::OK();
}

template <typename P>
Result<std::vector<typename P::Value>> VPullEngine<P>::GatherValues() {
  std::vector<Value> out(ctx_.num_vertices);
  for (auto& node : nodes_) {
    for (VertexId v : node.owned) {
      Value value;
      HG_RETURN_IF_ERROR(CachedRead(node, node.replica_idx[v], &value));
      out[v] = value;
    }
  }
  return out;
}

}  // namespace hybridgraph
