file(REMOVE_RECURSE
  "libhg_net.a"
)
