#include "net/message_codec.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hybridgraph {
namespace {

std::vector<uint8_t> Payload8(uint64_t v) {
  std::vector<uint8_t> p(8);
  std::memcpy(p.data(), &v, 8);
  return p;
}

TEST(FlatBatch, RoundTrip) {
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> msgs;
  msgs.emplace_back(7, Payload8(70));
  msgs.emplace_back(3, Payload8(30));
  Buffer buf;
  FlatBatchCodec::Encode(msgs, 8, &buf);

  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> out;
  ASSERT_TRUE(FlatBatchCodec::Decode(buf.AsSlice(), 8, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 7u);
  EXPECT_EQ(out[0].second, Payload8(70));
  EXPECT_EQ(out[1].first, 3u);
}

TEST(FlatBatch, Empty) {
  Buffer buf;
  FlatBatchCodec::Encode({}, 8, &buf);
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> out;
  ASSERT_TRUE(FlatBatchCodec::Decode(buf.AsSlice(), 8, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FlatBatch, TruncationFails) {
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> msgs;
  msgs.emplace_back(1, Payload8(1));
  Buffer buf;
  FlatBatchCodec::Encode(msgs, 8, &buf);
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> out;
  EXPECT_FALSE(
      FlatBatchCodec::Decode(Slice(buf.data(), buf.size() - 2), 8, &out).ok());
}

TEST(GroupedBatch, RoundTrip) {
  std::vector<GroupedBatchCodec::Group> groups;
  groups.push_back({5, {Payload8(1), Payload8(2), Payload8(3)}});
  groups.push_back({9, {Payload8(4)}});
  Buffer buf;
  GroupedBatchCodec::Encode(groups, 8, &buf);

  std::vector<GroupedBatchCodec::Group> out;
  ASSERT_TRUE(GroupedBatchCodec::Decode(buf.AsSlice(), 8, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].dst, 5u);
  ASSERT_EQ(out[0].payloads.size(), 3u);
  EXPECT_EQ(out[0].payloads[1], Payload8(2));
  EXPECT_EQ(out[1].dst, 9u);
  ASSERT_EQ(out[1].payloads.size(), 1u);
}

TEST(GroupedBatch, EncodedSizeMatchesActual) {
  std::vector<GroupedBatchCodec::Group> groups;
  groups.push_back({1, {Payload8(1), Payload8(2)}});
  groups.push_back({200, {}});
  groups.push_back({70000, {Payload8(9)}});
  Buffer buf;
  GroupedBatchCodec::Encode(groups, 8, &buf);
  EXPECT_EQ(GroupedBatchCodec::EncodedSize(groups, 8), buf.size());
}

TEST(GroupedBatch, ConcatenationSavesBytes) {
  // N messages to the same destination: grouped encoding shares the id.
  constexpr int kN = 100;
  std::vector<GroupedBatchCodec::Group> grouped;
  GroupedBatchCodec::Group g;
  g.dst = 42;
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> flat;
  for (int i = 0; i < kN; ++i) {
    g.payloads.push_back(Payload8(i));
    flat.emplace_back(42, Payload8(i));
  }
  grouped.push_back(std::move(g));
  Buffer gbuf, fbuf;
  GroupedBatchCodec::Encode(grouped, 8, &gbuf);
  FlatBatchCodec::Encode(flat, 8, &fbuf);
  // Flat spends 4 id bytes per message; grouped spends ~4 total.
  EXPECT_LT(gbuf.size() + (kN - 1) * 4 - 8, fbuf.size());
  EXPECT_GT(fbuf.size() - gbuf.size(), (kN - 2) * 4u);
}

class GroupedFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupedFuzzTest, RandomGroupsRoundTrip) {
  Rng rng(GetParam());
  std::vector<GroupedBatchCodec::Group> groups;
  const int n = 1 + rng.NextBounded(50);
  for (int i = 0; i < n; ++i) {
    GroupedBatchCodec::Group g;
    g.dst = static_cast<uint32_t>(rng.Next());
    const int k = rng.NextBounded(8);
    for (int j = 0; j < k; ++j) g.payloads.push_back(Payload8(rng.Next()));
    groups.push_back(std::move(g));
  }
  Buffer buf;
  GroupedBatchCodec::Encode(groups, 8, &buf);
  EXPECT_EQ(GroupedBatchCodec::EncodedSize(groups, 8), buf.size());
  std::vector<GroupedBatchCodec::Group> out;
  ASSERT_TRUE(GroupedBatchCodec::Decode(buf.AsSlice(), 8, &out).ok());
  ASSERT_EQ(out.size(), groups.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].dst, groups[i].dst);
    EXPECT_EQ(out[i].payloads, groups[i].payloads);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedFuzzTest, ::testing::Values(1, 5, 42));

TEST(FlatBatch, OversizedCountRejectedWithoutAllocating) {
  // A huge declared count with a tiny body used to drive reserve(); it must
  // come back as a Corruption status instead.
  Buffer buf;
  Encoder enc(&buf);
  enc.PutVarint64(uint64_t{1} << 60);
  enc.PutFixed32(7);
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> out;
  Status st = FlatBatchCodec::Decode(buf.AsSlice(), 8, &out);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_TRUE(out.empty());
}

TEST(GroupedBatch, OversizedCountsRejectedWithoutAllocating) {
  {
    Buffer buf;
    Encoder enc(&buf);
    enc.PutVarint64(uint64_t{1} << 60);  // group count >> input size
    std::vector<GroupedBatchCodec::Group> out;
    EXPECT_EQ(GroupedBatchCodec::Decode(buf.AsSlice(), 8, &out).code(),
              StatusCode::kCorruption);
  }
  {
    Buffer buf;
    Encoder enc(&buf);
    enc.PutVarint64(1);                  // one group...
    enc.PutFixed32(3);                   // dst
    enc.PutVarint64(uint64_t{1} << 60);  // ...claiming 2^60 payloads
    std::vector<GroupedBatchCodec::Group> out;
    EXPECT_EQ(GroupedBatchCodec::Decode(buf.AsSlice(), 8, &out).code(),
              StatusCode::kCorruption);
  }
}

// Every truncation point and every single-byte corruption of a valid encoding
// must either decode (possibly to different values — the formats carry no
// checksum) or return an error Status; it must never crash or hang.
TEST(CodecFuzz, TruncationsAndBitFlipsNeverCrash) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    std::vector<GroupedBatchCodec::Group> groups;
    const int n = 1 + rng.NextBounded(10);
    for (int i = 0; i < n; ++i) {
      GroupedBatchCodec::Group g;
      g.dst = static_cast<uint32_t>(rng.Next());
      const int k = rng.NextBounded(5);
      for (int j = 0; j < k; ++j) g.payloads.push_back(Payload8(rng.Next()));
      groups.push_back(std::move(g));
    }
    Buffer buf;
    GroupedBatchCodec::Encode(groups, 8, &buf);

    for (size_t cut = 0; cut < buf.size(); ++cut) {
      std::vector<GroupedBatchCodec::Group> out;
      Status st = GroupedBatchCodec::Decode(Slice(buf.data(), cut), 8, &out);
      if (cut < buf.size() && !groups.empty()) {
        // A strict prefix of a non-empty batch can never decode fully intact,
        // but partial decodes that happen to parse are acceptable.
        (void)st;
      }
    }
    std::vector<uint8_t> bytes(buf.data(), buf.data() + buf.size());
    for (int flip = 0; flip < 64; ++flip) {
      std::vector<uint8_t> mutated = bytes;
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
      std::vector<GroupedBatchCodec::Group> out;
      (void)GroupedBatchCodec::Decode(Slice(mutated), 8, &out);
    }
  }
}

TEST(CodecFuzz, RandomGarbageNeverCrashes) {
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    std::vector<uint8_t> junk(rng.NextBounded(64));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>> flat;
    (void)FlatBatchCodec::Decode(Slice(junk), 8, &flat);
    std::vector<GroupedBatchCodec::Group> grouped;
    (void)GroupedBatchCodec::Decode(Slice(junk), 8, &grouped);
  }
}

}  // namespace
}  // namespace hybridgraph
