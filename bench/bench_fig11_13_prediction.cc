// Figures 11-13 — prediction accuracy of the hybrid switching metric's three
// inputs: M_co, C_io(push) and C_io(b-pull). The y-axis is the ratio of the
// value predicted at superstep t (for t+Δt, Δt=2) to the value actually
// observed at superstep t+2 — closer to 1 is better. SSSP and SA, all
// datasets, limited memory.
//
// Plus the adaptive-crossover variant: the same traversal workload run under
// pure push, pure b-pull, global Eq.11 switching (hybrid) and the per-Eblock
// α/β adaptive path, comparing modeled I/O bytes and wall-clock. The point
// being demonstrated: a whole-superstep mode choice pays the full-grid cost
// of whichever direction it picks, while the per-cell grid pushes the sparse
// rows and pulls the dense ones *within the same superstep* — so on at least
// one dataset shape adaptive must land strictly below BOTH pure directions
// in modeled I/O (hard-failure otherwise). Emits BENCH_adaptive.json (path
// overridable via argv[1]).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

void RunSeries(Algo algo) {
  for (const char* name : {"livej", "wiki", "orkut", "twi", "fri", "uk"}) {
    const DatasetSpec spec = FindDataset(name).ValueOrDie();
    const double shrink = ShrinkFor(spec);
    const EdgeListGraph& graph = CachedGraph(spec, shrink);
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.max_supersteps = 18;
    auto stats = RunAlgo(graph, algo, EngineMode::kHybrid, cfg);
    if (!stats.ok()) {
      std::printf("%s: FAILED %s\n", name, stats.status().ToString().c_str());
      continue;
    }
    const auto& steps = stats->supersteps;
    std::printf("\n%s over %s (ratio predicted@t / actual@t+2)\n",
                AlgoName(algo), name);
    std::printf("%4s %10s %14s %14s\n", "t", "Mco", "Cio(push)", "Cio(b-pull)");
    for (size_t t = 0; t + 2 < steps.size(); ++t) {
      auto ratio = [](double pred, double act) {
        return act > 0 ? pred / act : (pred > 0 ? 99.0 : 1.0);
      };
      std::printf("%4zu %10.3f %14.3f %14.3f\n", t,
                  ratio(steps[t].predicted_mco, steps[t + 2].actual_mco),
                  ratio(steps[t].predicted_cio_push,
                        steps[t + 2].actual_cio_push),
                  ratio(steps[t].predicted_cio_bpull,
                        steps[t + 2].actual_cio_bpull));
    }
  }
}

// ------------------------------------------------- adaptive crossover bench

struct ModeResult {
  uint64_t io_bytes = 0;
  double modeled_s = 0;
  double wall_s = 0;
  int supersteps = 0;
  uint64_t push_cells = 0;  // adaptive only
  uint64_t pull_cells = 0;
};

struct CrossoverRow {
  std::string dataset;
  ModeResult by_mode[4];  // indexed by kCrossoverModes order
  bool adaptive_wins = false;
};

constexpr EngineMode kCrossoverModes[] = {EngineMode::kPush,
                                          EngineMode::kBPull,
                                          EngineMode::kHybrid,
                                          EngineMode::kAdaptive};

Result<ModeResult> RunCrossover(const EdgeListGraph& graph,
                                const DatasetSpec& spec, double shrink,
                                EngineMode mode) {
  JobConfig cfg = LimitedMemoryConfig(spec, shrink);
  cfg.max_supersteps = 100;  // traversal: run to convergence
  const auto t0 = std::chrono::steady_clock::now();
  auto stats = RunAlgo(graph, Algo::kSssp, mode, cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!stats.ok()) return stats.status();
  ModeResult r;
  r.io_bytes = stats->TotalIoBytes();
  r.modeled_s = stats->modeled_seconds;
  r.wall_s = wall;
  r.supersteps = stats->supersteps_run;
  for (const auto& s : stats->supersteps) {
    r.push_cells += s.push_cells;
    r.pull_cells += s.pull_cells;
  }
  return r;
}

/// Runs SSSP on every dataset shape under the four modes and prints the
/// modeled-I/O crossover table. Returns the number of shapes where the
/// per-cell adaptive grid strictly beats BOTH pure directions.
int RunAdaptiveCrossover(std::vector<CrossoverRow>* rows) {
  std::printf(
      "\nadaptive crossover (SSSP to convergence, modeled io bytes)\n"
      "%-6s %12s %12s %12s %12s  %s\n",
      "data", "push", "b-pull", "hybrid", "adaptive", "winner");
  int wins = 0;
  for (const char* name : {"livej", "wiki", "orkut", "twi", "fri", "uk"}) {
    const DatasetSpec spec = FindDataset(name).ValueOrDie();
    const double shrink = ShrinkFor(spec);
    const EdgeListGraph& graph = CachedGraph(spec, shrink);

    CrossoverRow row;
    row.dataset = name;
    bool ok = true;
    for (int m = 0; m < 4; ++m) {
      auto r = RunCrossover(graph, spec, shrink, kCrossoverModes[m]);
      if (!r.ok()) {
        std::printf("%s/%s: FAILED %s\n", name,
                    EngineModeName(kCrossoverModes[m]),
                    r.status().ToString().c_str());
        ok = false;
        break;
      }
      row.by_mode[m] = *r;
    }
    if (!ok) continue;

    const uint64_t push_io = row.by_mode[0].io_bytes;
    const uint64_t bpull_io = row.by_mode[1].io_bytes;
    const uint64_t adaptive_io = row.by_mode[3].io_bytes;
    row.adaptive_wins = adaptive_io < push_io && adaptive_io < bpull_io;
    if (row.adaptive_wins) ++wins;

    uint64_t best = adaptive_io;
    const char* winner = "adaptive";
    for (int m = 0; m < 3; ++m) {
      if (row.by_mode[m].io_bytes < best) {
        best = row.by_mode[m].io_bytes;
        winner = EngineModeName(kCrossoverModes[m]);
      }
    }
    std::printf("%-6s %12llu %12llu %12llu %12llu  %s%s\n", name,
                (unsigned long long)push_io, (unsigned long long)bpull_io,
                (unsigned long long)row.by_mode[2].io_bytes,
                (unsigned long long)adaptive_io, winner,
                row.adaptive_wins ? " (beats both pure modes)" : "");
    rows->push_back(std::move(row));
  }
  return wins;
}

bool WriteJson(const std::string& path, const std::vector<CrossoverRow>& rows,
               int wins) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"adaptive_crossover\",\n"
               "  \"workload\": \"sssp\",\n"
               "  \"adaptive_beats_both_pure_modes_on\": %d,\n"
               "  \"rows\": [\n",
               wins);
  for (size_t i = 0; i < rows.size(); ++i) {
    const CrossoverRow& r = rows[i];
    std::fprintf(f, "    {\"dataset\": \"%s\", \"adaptive_wins\": %s",
                 r.dataset.c_str(), r.adaptive_wins ? "true" : "false");
    for (int m = 0; m < 4; ++m) {
      const ModeResult& mr = r.by_mode[m];
      std::fprintf(f,
                   ",\n     \"%s\": {\"io_bytes\": %llu, \"modeled_s\": %.6f,"
                   " \"supersteps\": %d, \"push_cells\": %llu,"
                   " \"pull_cells\": %llu}",
                   EngineModeName(kCrossoverModes[m]),
                   (unsigned long long)mr.io_bytes, mr.modeled_s,
                   mr.supersteps, (unsigned long long)mr.push_cells,
                   (unsigned long long)mr.pull_cells);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_adaptive.json";
  PrintHeader("bench_fig11_13_prediction",
              "Figs 11-13: prediction accuracy of Mco, Cio(push), Cio(b-pull)");
  RunSeries(Algo::kSssp);
  RunSeries(Algo::kSa);
  std::printf(
      "\nexpected shape: Cio(b-pull) most accurate (no message I/O terms),\n"
      "Cio(push) close to 1 (block-granular edge I/O damps active-set\n"
      "swings), Mco least accurate where the frontier changes fast.\n");

  std::vector<CrossoverRow> rows;
  const int wins = RunAdaptiveCrossover(&rows);
  if (!WriteJson(out_path, rows, wins)) return 1;
  std::printf(
      "\nwrote %s\nper-cell adaptive beats both pure directions in modeled\n"
      "I/O on %d/%zu dataset shapes (wall-clock follows modeled I/O under\n"
      "the disk model; hybrid switches whole supersteps, adaptive mixes\n"
      "directions inside one).\n",
      out_path.c_str(), wins, rows.size());
  if (wins == 0) {
    std::fprintf(stderr,
                 "FAIL: adaptive never beat both pure modes — the per-cell "
                 "heuristic regressed\n");
    return 1;
  }
  return 0;
}
