// Quickstart: run PageRank on a synthetic social graph under every engine
// mode and compare modeled runtime and I/O — a miniature of the paper's
// headline experiment.
#include <cstdio>

#include "hybridgraph/hybridgraph.h"

using namespace hybridgraph;

int main() {
  // A ~24k-vertex power-law graph (the "livej" scale model from Table 4).
  const DatasetSpec spec = FindDataset("livej").ValueOrDie();
  const EdgeListGraph graph = BuildDataset(spec);
  std::printf("graph: %llu vertices, %llu edges (avg degree %.1f)\n\n",
              (unsigned long long)graph.num_vertices,
              (unsigned long long)graph.num_edges(), graph.AverageDegree());

  std::printf("%-8s %12s %12s %12s %10s\n", "engine", "modeled(s)", "io",
              "net", "msgs");
  for (EngineMode mode : {EngineMode::kPush, EngineMode::kPushM,
                          EngineMode::kBPull, EngineMode::kHybrid}) {
    JobConfig cfg;
    cfg.mode = mode;
    cfg.num_nodes = 5;
    cfg.msg_buffer_per_node = 2500;  // limited memory: most messages overflow
    cfg.max_supersteps = 5;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    Status st = engine.Load(graph);
    if (st.ok()) st = engine.Run();
    if (!st.ok()) {
      std::printf("%-8s FAILED: %s\n", EngineModeName(mode), st.ToString().c_str());
      continue;
    }
    const JobStats& s = engine.stats();
    std::printf("%-8s %12.3f %12s %12s %10llu\n", EngineModeName(mode),
                s.modeled_seconds, HumanBytes(s.TotalIoBytes()).c_str(),
                HumanBytes(s.TotalNetBytes()).c_str(),
                (unsigned long long)s.TotalMessages());
  }

  // The v-pull baseline (PowerGraph with a disk vertex table).
  {
    JobConfig cfg;
    cfg.mode = EngineMode::kVPull;
    cfg.num_nodes = 5;
    cfg.vpull_vertex_cache = 2500;
    cfg.max_supersteps = 5;
    VPullEngine<PageRankProgram> engine(cfg, PageRankProgram{});
    Status st = engine.Load(graph);
    if (st.ok()) st = engine.Run();
    const JobStats& s = engine.stats();
    std::printf("%-8s %12.3f %12s %12s %10llu\n", "pull", s.modeled_seconds,
                HumanBytes(s.TotalIoBytes()).c_str(),
                HumanBytes(s.TotalNetBytes()).c_str(),
                (unsigned long long)s.TotalMessages());
  }
  return 0;
}
