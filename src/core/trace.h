// Per-phase / per-node trace spans for the superstep pipeline, exported as
// chrome://tracing "Trace Event Format" JSON (complete events, ph:"X").
//
// The collector is observability only: it records wall-clock spans plus the
// modeled superstep/mode tags, and never feeds back into the deterministic
// modeled-time accounting. When disabled every call is a cheap no-op, so the
// driver can thread spans through unconditionally.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/job_config.h"
#include "util/status.h"

namespace hybridgraph {

class TraceCollector {
 public:
  /// Collection starts disabled; Enable() turns it on (driver calls this when
  /// config.trace_path is non-empty).
  void Enable();
  bool enabled() const { return enabled_; }

  /// Microseconds since the collector's origin (first call). Returns 0 when
  /// disabled so callers can grab timestamps unconditionally.
  uint64_t NowUs() const;

  /// Records one complete span. `node` is the node id, or -1 for a
  /// cluster-wide phase span (rendered as the "driver" process).
  void AddSpan(const char* name, int superstep, int node, uint64_t start_us,
               uint64_t end_us, EngineMode mode);

  /// Like AddSpan, but with absolute steady-clock microsecond timestamps (as
  /// produced by AsyncReadHandle on a background I/O thread); converted to
  /// collector-origin time so prefetch spans line up with phase spans.
  void AddSteadySpan(const char* name, int superstep, int node,
                     uint64_t steady_start_us, uint64_t steady_end_us,
                     EngineMode mode);

  /// Records an instant event (ph:"i") carrying a free-form detail payload —
  /// used for the adaptive path's per-cell decision log. `detail` is
  /// JSON-escaped on export.
  void AddInstant(const char* name, int superstep, int node, EngineMode mode,
                  const std::string& detail);

  /// Writes {"traceEvents": [...]} to `path`, loadable by chrome://tracing
  /// and Perfetto.
  Status WriteJson(const std::string& path) const;

  size_t num_events() const;

 private:
  struct Event {
    const char* name;
    int superstep;
    int node;
    uint64_t start_us;
    uint64_t dur_us;
    EngineMode mode;
    bool instant = false;  ///< ph:"i" with a detail arg instead of ph:"X"
    std::string detail;    ///< instant events only
  };

  bool enabled_ = false;
  int64_t origin_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// RAII span: records from construction to destruction when tracing is on.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* trace, const char* name, int superstep, int node,
            EngineMode mode)
      : trace_(trace), name_(name), superstep_(superstep), node_(node),
        mode_(mode), start_us_(trace && trace->enabled() ? trace->NowUs() : 0) {}
  ~TraceSpan() {
    if (trace_ && trace_->enabled()) {
      trace_->AddSpan(name_, superstep_, node_, start_us_, trace_->NowUs(),
                      mode_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* trace_;
  const char* name_;
  int superstep_;
  int node_;
  EngineMode mode_;
  uint64_t start_us_;
};

}  // namespace hybridgraph
