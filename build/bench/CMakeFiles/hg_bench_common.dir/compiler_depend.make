# Empty compiler generated dependencies file for hg_bench_common.
# This may be replaced when dependencies are built.
