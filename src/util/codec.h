// Binary serialization primitives: little-endian fixed ints, LEB128 varints,
// floats, strings. Every byte that crosses the simulated network or disk goes
// through these, so encoded sizes are the ground truth for the cost model.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "util/buffer.h"
#include "util/status.h"

namespace hybridgraph {

/// \brief Appends primitive values to a Buffer in a portable binary format.
class Encoder {
 public:
  explicit Encoder(Buffer* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->PushBack(v); }

  void PutFixed16(uint16_t v) { PutLittleEndian(v); }
  void PutFixed32(uint32_t v) { PutLittleEndian(v); }
  void PutFixed64(uint64_t v) { PutLittleEndian(v); }

  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint32(uint32_t v) { PutVarint64(v); }
  void PutVarint64(uint64_t v) {
    while (v >= 0x80) {
      out_->PushBack(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_->PushBack(static_cast<uint8_t>(v));
  }

  /// Zig-zag signed varint.
  void PutSignedVarint64(int64_t v) {
    PutVarint64((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  void PutFloat(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed32(bits);
  }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(bits);
  }

  /// Length-prefixed (varint) byte string.
  void PutLengthPrefixed(Slice s) {
    PutVarint64(s.size());
    out_->Append(s);
  }
  void PutLengthPrefixed(const std::string& s) { PutLengthPrefixed(Slice(s)); }

  /// Raw bytes with no prefix (caller knows the length).
  void PutRaw(const void* data, size_t size) { out_->Append(data, size); }

  Buffer* buffer() { return out_; }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    uint8_t tmp[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      tmp[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    out_->Append(tmp, sizeof(T));
  }

  Buffer* out_;
};

/// \brief Reads primitives back out of a Slice, tracking a cursor.
///
/// All getters return Status so truncated/corrupt inputs surface as
/// StatusCode::kOutOfRange instead of UB.
class Decoder {
 public:
  explicit Decoder(Slice input) : input_(input), pos_(0) {}

  size_t remaining() const { return input_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == input_.size(); }

  Status GetU8(uint8_t* v) {
    if (remaining() < 1) return Truncated("u8");
    *v = input_[pos_++];
    return Status::OK();
  }

  Status GetFixed16(uint16_t* v) { return GetLittleEndian(v); }
  Status GetFixed32(uint32_t* v) { return GetLittleEndian(v); }
  Status GetFixed64(uint64_t* v) { return GetLittleEndian(v); }

  Status GetVarint64(uint64_t* v) {
    uint64_t result = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= input_.size()) return Truncated("varint");
      if (shift >= 64) return Status::Corruption("varint too long");
      uint8_t byte = input_[pos_++];
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) break;
      shift += 7;
    }
    *v = result;
    return Status::OK();
  }

  Status GetVarint32(uint32_t* v) {
    uint64_t tmp;
    HG_RETURN_IF_ERROR(GetVarint64(&tmp));
    if (tmp > UINT32_MAX) return Status::Corruption("varint32 overflow");
    *v = static_cast<uint32_t>(tmp);
    return Status::OK();
  }

  Status GetSignedVarint64(int64_t* v) {
    uint64_t enc;
    HG_RETURN_IF_ERROR(GetVarint64(&enc));
    *v = static_cast<int64_t>((enc >> 1) ^ (~(enc & 1) + 1));
    return Status::OK();
  }

  Status GetFloat(float* v) {
    uint32_t bits;
    HG_RETURN_IF_ERROR(GetFixed32(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }
  Status GetDouble(double* v) {
    uint64_t bits;
    HG_RETURN_IF_ERROR(GetFixed64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status GetLengthPrefixed(Slice* out) {
    uint64_t len;
    HG_RETURN_IF_ERROR(GetVarint64(&len));
    if (remaining() < len) return Truncated("length-prefixed bytes");
    *out = input_.SubSlice(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status GetRaw(size_t n, Slice* out) {
    if (remaining() < n) return Truncated("raw bytes");
    *out = input_.SubSlice(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Truncated("skip");
    pos_ += n;
    return Status::OK();
  }

 private:
  template <typename T>
  Status GetLittleEndian(T* v) {
    if (remaining() < sizeof(T)) return Truncated("fixed int");
    T result = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      result |= static_cast<T>(input_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *v = result;
    return Status::OK();
  }

  Status Truncated(const char* what) {
    return Status::OutOfRange(std::string("decode past end of input: ") + what);
  }

  Slice input_;
  size_t pos_;
};

/// Bytes a varint encoding of `v` occupies.
inline size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

/// FNV-1a 64-bit hash: the integrity checksum for checkpoint images (torn or
/// bit-flipped images must fail restore, not decode garbage). Not
/// cryptographic — it guards against partial writes and corruption, not
/// adversaries.
inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hybridgraph
