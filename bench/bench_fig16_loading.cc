// Figure 16 — graph loading cost of the three storage layouts, as a ratio to
// the plain adjacency list: adj (push), VE-BLOCK (b-pull), adj+VE-BLOCK
// (hybrid stores edges twice). Reported for both modeled runtime and bytes
// written.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

struct LoadCost {
  double seconds = 0;
  uint64_t bytes = 0;
};

template <typename EngineT>
LoadCost Measure(const EdgeListGraph& graph, JobConfig cfg, EngineMode mode) {
  cfg.mode = mode;
  EngineT engine(cfg, PageRankProgram{});
  HG_CHECK(engine.Load(graph).ok());
  return {engine.stats().load.load_seconds, engine.stats().load.bytes_written};
}

}  // namespace

int main() {
  PrintHeader("bench_fig16_loading",
              "Fig 16: loading cost of adj vs VE-BLOCK vs adj+VE-BLOCK");
  std::printf("%-8s | %10s %10s %10s | %10s %10s %10s\n", "dataset",
              "adj", "ve", "adj+ve", "adj", "ve", "adj+ve");
  std::printf("%-8s | %32s | %32s\n", "", "runtime ratio", "written-bytes ratio");
  for (const char* name : {"livej", "wiki", "orkut", "twi", "fri", "uk"}) {
    const DatasetSpec spec = FindDataset(name).ValueOrDie();
    const double shrink = ShrinkFor(spec);
    const EdgeListGraph& graph = CachedGraph(spec, shrink);
    const JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    const LoadCost adj =
        Measure<Engine<PageRankProgram>>(graph, cfg, EngineMode::kPush);
    const LoadCost ve =
        Measure<Engine<PageRankProgram>>(graph, cfg, EngineMode::kBPull);
    const LoadCost both =
        Measure<Engine<PageRankProgram>>(graph, cfg, EngineMode::kHybrid);
    std::printf("%-8s | %10.2f %10.2f %10.2f | %10.2f %10.2f %10.2f\n", name,
                1.0, ve.seconds / adj.seconds, both.seconds / adj.seconds,
                1.0, static_cast<double>(ve.bytes) / adj.bytes,
                static_cast<double>(both.bytes) / adj.bytes);
  }
  std::printf(
      "\nexpected shape: VE-BLOCK costs more than adj (fragment auxiliary\n"
      "data), adj+VE-BLOCK slightly more again (second edge replica written\n"
      "sequentially); all ratios stay well under ~2-4x and are amortized by\n"
      "the computation-phase gains (Sec 6.4).\n");
  return 0;
}
