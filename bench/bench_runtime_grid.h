// Shared grid printer for the Fig 7/8/9/10 family: algorithms x datasets x
// all five engines.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"

namespace hybridgraph {
namespace bench {

struct GridOptions {
  std::vector<std::string> datasets;
  std::vector<Algo> algos = {Algo::kPageRank, Algo::kSssp, Algo::kLpa,
                             Algo::kSa};
  /// Builds the config for one (dataset, shrink) cell.
  std::function<JobConfig(const DatasetSpec&, double)> make_config;
  /// Extracts the reported number from the stats.
  std::function<double(const JobStats&)> metric =
      [](const JobStats& s) { return s.modeled_seconds; };
  const char* metric_name = "modeled runtime (s)";
};

inline void RunGrid(const GridOptions& opts) {
  const EngineMode modes[] = {EngineMode::kPush, EngineMode::kPushM,
                              EngineMode::kVPull, EngineMode::kBPull,
                              EngineMode::kHybrid};
  for (Algo algo : opts.algos) {
    std::printf("\n-- %s: %s --\n", AlgoName(algo), opts.metric_name);
    std::printf("%-8s", "dataset");
    for (EngineMode mode : modes) std::printf(" %12s", EngineModeName(mode));
    std::printf("\n");
    for (const auto& name : opts.datasets) {
      const DatasetSpec spec = FindDataset(name).ValueOrDie();
      const double shrink = ShrinkFor(spec);
      const EdgeListGraph& graph = CachedGraph(spec, shrink);
      std::printf("%-8s", name.c_str());
      std::fflush(stdout);
      for (EngineMode mode : modes) {
        if (!ModeSupports(algo, mode)) {
          std::printf(" %12s", "F");  // paper: missing bar
          continue;
        }
        JobConfig cfg = opts.make_config(spec, shrink);
        auto stats = RunAlgo(graph, algo, mode, cfg);
        if (!stats.ok()) {
          std::printf(" %12s", "ERR");
          continue;
        }
        std::printf(" %12.4f", opts.metric(*stats));
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
}

}  // namespace bench
}  // namespace hybridgraph
