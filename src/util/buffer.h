// Byte containers: Slice (non-owning view) and Buffer (growable owner).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace hybridgraph {

/// \brief Non-owning view over a contiguous byte range.
///
/// The viewed memory must outlive the Slice. Used for zero-copy decode paths.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  explicit Slice(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  explicit Slice(const std::vector<uint8_t>& v) : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Returns the sub-view [offset, offset+len); caller guarantees bounds.
  Slice SubSlice(size_t offset, size_t len) const {
    return Slice(data_ + offset, len);
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

/// \brief Growable owned byte buffer used as the serialization target.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  void Append(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  void Append(Slice s) { Append(s.data(), s.size()); }
  void PushBack(uint8_t b) { bytes_.push_back(b); }

  void Clear() { bytes_.clear(); }
  void Reserve(size_t n) { bytes_.reserve(n); }

  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  Slice AsSlice() const { return Slice(bytes_.data(), bytes_.size()); }
  std::vector<uint8_t>& bytes() { return bytes_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace hybridgraph
