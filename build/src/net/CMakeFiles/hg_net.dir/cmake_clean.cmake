file(REMOVE_RECURSE
  "CMakeFiles/hg_net.dir/message_codec.cc.o"
  "CMakeFiles/hg_net.dir/message_codec.cc.o.d"
  "CMakeFiles/hg_net.dir/tcp_transport.cc.o"
  "CMakeFiles/hg_net.dir/tcp_transport.cc.o.d"
  "CMakeFiles/hg_net.dir/transport.cc.o"
  "CMakeFiles/hg_net.dir/transport.cc.o.d"
  "libhg_net.a"
  "libhg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
