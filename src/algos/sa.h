// SA — social advertisement simulation (Mizan): selected source vertices
// inject advertisements; each receiver forwards an ad or ignores it based on
// per-(vertex, ad) interest; a vertex adopts the ad that a maximum number of
// responding in-neighbors sent. Traversal-Style active set; messages are
// NOT combinable in this max-count variant (paper Sec 6).
#pragma once

#include "core/program.h"
#include "util/rng.h"

namespace hybridgraph {

/// \brief SA vertex program. Ads are modeled as 64 ad ids; a message is the
/// bitmask of ads its sender newly adopted, and the value tracks adopted and
/// pending-forward masks.
struct SaProgram {
  struct Value {
    uint64_t adopted = 0;
    uint64_t pending = 0;
  };
  using Message = uint64_t;
  static constexpr bool kCombinable = false;
  static constexpr bool kAlwaysActive = false;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);

  /// Every source_stride-th vertex seeds one ad.
  uint32_t source_stride = 1000;
  /// Probability a vertex is interested in a given ad.
  double interest_prob = 0.35;
  uint64_t seed = 0x5A5A;

  bool IsSource(VertexId v) const { return v % source_stride == 0; }
  uint32_t SourceAd(VertexId v) const {
    return static_cast<uint32_t>((v / source_stride) % 64);
  }
  bool Interested(VertexId v, uint32_t ad) const {
    Rng rng(seed ^ (static_cast<uint64_t>(v) << 8) ^ ad);
    return rng.NextDouble() < interest_prob;
  }

  Value InitValue(VertexId v, const SuperstepContext&) const {
    Value val;
    if (IsSource(v)) {
      const uint64_t bit = uint64_t{1} << SourceAd(v);
      val.adopted = bit;
      val.pending = bit;
    }
    return val;
  }
  bool InitActive(VertexId v) const { return IsSource(v); }

  UpdateResult Update(VertexId v, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0) {
      return {IsSource(v), IsSource(v)};
    }
    // Count, per ad, how many responding in-neighbors sent it; adopt the ads
    // with maximal support that the vertex is interested in.
    uint32_t counts[64] = {};
    for (uint64_t mask : msgs) {
      while (mask) {
        const int ad = __builtin_ctzll(mask);
        mask &= mask - 1;
        ++counts[ad];
      }
    }
    uint32_t best = 0;
    for (uint32_t c : counts) best = c > best ? c : best;
    uint64_t newly = 0;
    if (best > 0) {
      for (int ad = 0; ad < 64; ++ad) {
        if (counts[ad] != best) continue;
        const uint64_t bit = uint64_t{1} << ad;
        if ((value->adopted & bit) == 0 && Interested(v, ad)) {
          newly |= bit;
        }
      }
    }
    value->adopted |= newly;
    value->pending = newly;
    return {newly != 0, newly != 0};
  }

  Message GenMessage(VertexId, const Value& value, uint32_t, const Edge&,
                     const SuperstepContext&) const {
    return value.pending;
  }

  static Message Combine(const Message& a, const Message&) { return a; }
};

}  // namespace hybridgraph
