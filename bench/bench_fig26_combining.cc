// Figure 26 (Appendix E) — the effectiveness of combining versus the sending
// threshold: pushM, pushM+com (sender-side combining) and b-pull running
// PageRank over orkut. The paper sweeps 1..32 MB; thresholds here scale with
// the dataset (x/200).
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_fig26_combining",
              "Fig 26: combining effectiveness vs sending threshold "
              "(PageRank over orkut)");
  const DatasetSpec spec = FindDataset("orkut").ValueOrDie();
  const double shrink = ShrinkFor(spec);
  const EdgeListGraph& graph = CachedGraph(spec, shrink);

  struct System {
    const char* name;
    EngineMode mode;
    bool sender_combining;
  };
  const System systems[] = {
      {"pushM", EngineMode::kPushM, false},
      {"pushM+com", EngineMode::kPushM, true},
      {"b-pull", EngineMode::kBPull, false},
  };

  std::printf("%-12s %12s %12s %14s %12s\n", "system", "threshold",
              "runtime(s)", "combine_ratio", "net_bytes");
  for (double mb : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const uint64_t threshold = std::max<uint64_t>(
        256, static_cast<uint64_t>(mb * 1024 * 1024 / spec.scale / shrink));
    for (const auto& sys : systems) {
      JobConfig cfg = SufficientMemoryConfig(spec, shrink);
      cfg.sending_threshold_bytes = threshold;
      cfg.push_sender_combining = sys.sender_combining;
      auto stats = RunAlgo(graph, Algo::kPageRank, sys.mode, cfg);
      if (!stats.ok()) {
        std::printf("%-12s %12llu FAILED\n", sys.name,
                    (unsigned long long)threshold);
        continue;
      }
      uint64_t mco = 0, m = 0;
      for (const auto& s : stats->supersteps) {
        mco += s.messages_combined;
        m += s.messages_produced;
      }
      std::printf("%-12s %12llu %12.4f %14.3f %12llu\n", sys.name,
                  (unsigned long long)threshold, stats->modeled_seconds,
                  m ? static_cast<double>(mco) / m : 0.0,
                  (unsigned long long)stats->TotalNetBytes());
    }
  }
  std::printf(
      "\nexpected shape: pushM's runtime grows with the threshold (less\n"
      "network/compute overlap); pushM+com recovers via a growing combining\n"
      "ratio; b-pull's combining ratio is flat (orthogonal to the\n"
      "threshold) and stays high.\n");
  return 0;
}
