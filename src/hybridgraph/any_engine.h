// Type-erased engine runner: one object that fronts both Engine<P> (push /
// pushM / b-pull / hybrid) and VPullEngine<P> (the GAS baseline) for every
// built-in algorithm, so drivers, benches and examples no longer branch on
// (algorithm x engine) template combinations themselves.
//
//   JobConfig cfg;
//   cfg.mode = EngineMode::kHybrid;
//   AlgoSpec spec;
//   spec.kind = AlgoKind::kSssp;        // source defaults to max out-degree
//   HG_ASSIGN_OR_RETURN(auto engine, MakeEngine(cfg, spec));
//   HG_RETURN_IF_ERROR(engine->Load(graph));
//   HG_RETURN_IF_ERROR(engine->Run());
//   auto distances = engine->GatherValuesAsDouble();
//   const JobStats& stats = engine->stats();
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/job_config.h"
#include "core/run_metrics.h"
#include "graph/edge_list.h"
#include "util/status.h"

namespace hybridgraph {

/// The built-in vertex programs selectable by name.
enum class AlgoKind : int {
  kPageRank = 0,
  kPageRankDelta = 1,
  kSssp = 2,
  kBfs = 3,
  kLpa = 4,
  kSa = 5,
  kWcc = 6,
};

const char* AlgoKindName(AlgoKind kind);

/// Maps "pagerank", "pagerank-delta", "sssp", "bfs", "lpa", "sa", "wcc"
/// (the hg_run --algo vocabulary) to an AlgoKind.
Result<AlgoKind> ParseAlgoKind(const std::string& name);

/// Algorithm selection plus the per-program knobs the drivers expose.
struct AlgoSpec {
  AlgoKind kind = AlgoKind::kPageRank;

  /// SSSP/BFS source. When source_set is false the engine picks the vertex
  /// with the largest out-degree at Load() time (the traversal then covers
  /// the graph even on scale models with many zero-out-degree vertices).
  VertexId source = 0;
  bool source_set = false;

  /// SA: every source_stride-th vertex seeds one ad (0 keeps the program
  /// default).
  uint32_t sa_source_stride = 0;
};

/// Runtime interface over a loaded engine of any mode and algorithm. The
/// concrete object owns an Engine<P> or a VPullEngine<P>, chosen by
/// config.mode at MakeEngine() time.
class AnyEngine {
 public:
  virtual ~AnyEngine() = default;

  virtual Status Load(const EdgeListGraph& graph) = 0;
  virtual Status Run() = 0;
  virtual Status RunSuperstep() = 0;

  virtual bool converged() const = 0;
  virtual const JobStats& stats() const = 0;

  /// Bytes per vertex value record in GatherValuesRaw().
  virtual size_t value_size() const = 0;
  /// All vertex values, indexed by vertex id, as packed value_size() records
  /// (the program's PodCodec encoding).
  virtual Result<std::vector<uint8_t>> GatherValuesRaw() = 0;
  /// All vertex values projected to double: rank for PageRank variants,
  /// distance/depth for SSSP/BFS, label for LPA/WCC, and the number of
  /// adopted ads (popcount) for SA.
  virtual Result<std::vector<double>> GatherValuesAsDouble() = 0;
};

/// Builds the engine for (config.mode, spec.kind). Validation beyond
/// JobConfig::Validate() happens inside Load() as usual; mode/algorithm
/// pairing errors (pushM with a non-combinable program) surface there.
Result<std::unique_ptr<AnyEngine>> MakeEngine(const JobConfig& config,
                                              const AlgoSpec& spec);

inline Result<std::unique_ptr<AnyEngine>> MakeEngine(const JobConfig& config,
                                                     AlgoKind kind) {
  AlgoSpec spec;
  spec.kind = kind;
  return MakeEngine(config, spec);
}

}  // namespace hybridgraph
