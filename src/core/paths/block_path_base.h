// Shared base for the block-centric MessagePaths (push / pushM / b-pull):
// one topology build via the driver, the push-batch apply/collect policies
// fixed at Build() time, and the accounting/promotion plumbing that is
// identical across the three modes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/message_flow.h"
#include "core/message_path.h"
#include "core/superstep_accounting.h"
#include "core/superstep_driver.h"

namespace hybridgraph {

template <typename P>
class BlockPathBase : public MessagePath<P> {
 public:
  explicit BlockPathBase(SuperstepDriver<P>* driver) : driver_(driver) {}

  void BeginAccounting() override {
    BeginBlockAccounting(driver_->nodes(), driver_->transport());
  }

  Status AfterConsume(uint32_t i) override {
    MergePullServeCounters(driver_->nodes()[i], driver_->config().num_nodes);
    return Status::OK();
  }

  Status UpdateProduce(uint32_t i) override {
    return driver_->UpdateVblocks(driver_->nodes()[i], *this);
  }

  Status AfterProduce(uint32_t i) override {
    // Unconditional for every block producer: under b-pull production the
    // staging is empty and this is a no-op, but the hybrid switch supersteps
    // rely on the drain always running.
    return DrainStagedPushBatches(driver_->nodes()[i],
                                  driver_->config().num_nodes, apply_policy_);
  }

  SuperstepMetrics EndAccounting(EngineMode produce_mode,
                                 bool switched) override {
    std::vector<NodeState>& nodes = driver_->nodes();
    std::vector<uint64_t> extra(nodes.size(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) {
      extra[i] = ExtraMemoryBytes(nodes[i]);
    }
    BlockAccountingInputs in;
    in.superstep = driver_->superstep();
    in.produce_mode = produce_mode;
    in.switched = switched;
    in.config = &driver_->config();
    in.partition = &driver_->partition();
    in.transport = &driver_->transport();
    in.fault_snapshot = driver_->fault_snapshot();
    in.extra_memory_bytes = &extra;
    return AccumulateBlockMetrics(nodes, in);
  }

  void Promote(uint64_t* responding_total,
               uint64_t* inflight_messages) override {
    PromoteBlockState(driver_->nodes(), responding_total, inflight_messages);
  }

 protected:
  /// Path-specific modeled-memory buffer bytes on top of mem_highwater
  /// (push family: pending inbox + moc accumulator slots; b-pull: nothing).
  virtual uint64_t ExtraMemoryBytes(const NodeState& node) const {
    (void)node;
    return 0;
  }

  /// Fixes the receive-side policies; call from Build() after the topology
  /// exists (the driver has folded the CPU scale by then).
  void InitPolicies() {
    const JobConfig& config = driver_->config();
    apply_policy_.msg_size = P::kMessageSize;
    apply_policy_.buffer_cap = config.msg_buffer_per_node;
    apply_policy_.unlimited = config.msg_buffer_per_node == UINT64_MAX ||
                              config.memory_resident;
    apply_policy_.online_compute = config.mode == EngineMode::kPushM;
    apply_policy_.combinable = P::kCombinable;
    apply_policy_.combiner =
        P::kCombinable ? &ProgramOps<P>::CombineRaw : nullptr;

    collect_policy_.msg_size = P::kMessageSize;
    collect_policy_.msg_record_size = 4 + P::kMessageSize;
    collect_policy_.online_compute = config.mode == EngineMode::kPushM;
    collect_policy_.combinable = P::kCombinable;
    collect_policy_.spill_merge_buffer_bytes = config.io.spill_merge_buffer_bytes;
    collect_policy_.per_spilled_message_s = config.cpu.per_spilled_message_s;
  }

  SuperstepDriver<P>* driver_;
  PushApplyPolicy apply_policy_;
  PushCollectPolicy collect_policy_;
};

}  // namespace hybridgraph
