#include "core/metrics_csv.h"

#include <fstream>

#include "util/string_util.h"

namespace hybridgraph {

std::string SuperstepMetricsCsv(const JobStats& stats) {
  std::string out =
      "superstep,mode,switched,active,responding,messages,messages_on_wire,"
      "messages_combined,messages_spilled,io_vt,io_adj,io_spill_write,"
      "io_spill_read,io_eblock,io_fragment_aux,io_vrr,io_other,io_total,"
      "net_bytes,net_frames,net_retries,net_timeouts,net_reconnects,"
      "cpu_s,io_s,net_s,blocking_s,superstep_s,"
      "memory_bytes,spill_buffer_bytes,spill_resident_peak,spill_combined,"
      "prefetch_scheduled,prefetch_hits,prefetch_misses,prefetch_hit_bytes,"
      "aggregate,q_t,phase_consume_s,phase_update_s,phase_drain_s,"
      "push_cells,pull_cells\n";
  for (const auto& s : stats.supersteps) {
    out += StringFormat(
        "%d,%s,%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.9g,%.9g,%.9g,%.9g,"
        "%.9g,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.9g,%.9g,%.9g,%.9g,"
        "%.9g,%llu,%llu\n",
        s.superstep, EngineModeName(s.mode), s.switched ? 1 : 0,
        (unsigned long long)s.active_vertices,
        (unsigned long long)s.responding_vertices,
        (unsigned long long)s.messages_produced,
        (unsigned long long)s.messages_on_wire,
        (unsigned long long)s.messages_combined,
        (unsigned long long)s.messages_spilled,
        (unsigned long long)s.io.vt_bytes,
        (unsigned long long)s.io.adj_edge_bytes,
        (unsigned long long)s.io.msg_spill_write,
        (unsigned long long)s.io.msg_spill_read,
        (unsigned long long)s.io.eblock_edge_bytes,
        (unsigned long long)s.io.fragment_aux_bytes,
        (unsigned long long)s.io.vrr_bytes,
        (unsigned long long)s.io.other_bytes,
        (unsigned long long)s.io.Total(), (unsigned long long)s.net_bytes,
        (unsigned long long)s.net_frames, (unsigned long long)s.net_retries,
        (unsigned long long)s.net_timeouts,
        (unsigned long long)s.net_reconnects, s.cpu_seconds, s.io_seconds,
        s.net_seconds, s.blocking_seconds, s.superstep_seconds,
        (unsigned long long)s.memory_highwater_bytes,
        (unsigned long long)s.spill_merge_buffer_bytes,
        (unsigned long long)s.spill_peak_resident,
        (unsigned long long)s.spill_combined,
        (unsigned long long)s.prefetch_scheduled,
        (unsigned long long)s.prefetch_hits,
        (unsigned long long)s.prefetch_misses,
        (unsigned long long)s.prefetch_hit_bytes, s.aggregate, s.q_t,
        s.phase_consume_wall_s, s.phase_update_wall_s, s.phase_drain_wall_s,
        (unsigned long long)s.push_cells, (unsigned long long)s.pull_cells);
  }
  return out;
}

Status WriteSuperstepCsv(const JobStats& stats, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open csv for write: " + path);
  const std::string csv = SuperstepMetricsCsv(stats);
  f.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  return f ? Status::OK() : Status::IoError("csv write failed: " + path);
}

}  // namespace hybridgraph
