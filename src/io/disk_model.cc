#include "io/disk_model.h"

namespace hybridgraph {

const char* IoClassName(IoClass c) {
  switch (c) {
    case IoClass::kSeqRead:
      return "seq_read";
    case IoClass::kSeqWrite:
      return "seq_write";
    case IoClass::kRandRead:
      return "rand_read";
    case IoClass::kRandWrite:
      return "rand_write";
  }
  return "unknown";
}

DiskProfile DiskProfile::Hdd() {
  return DiskProfile{
      /*name=*/"hdd",
      // Runtime model: realistic 7200RPM streaming vs small random records.
      /*seq_read_mbps=*/90.0,
      /*seq_write_mbps=*/70.0,
      /*rand_read_mbps=*/1.2,
      /*rand_write_mbps=*/1.2,
      /*per_random_op_s=*/1.5e-6,
      // Table 3 (fio mixed pattern), used in the Q_t metric.
      /*qt_rand_read_mbps=*/1.177,
      /*qt_rand_write_mbps=*/1.182,
      /*qt_seq_read_mbps=*/2.358,
  };
}

DiskProfile DiskProfile::Ssd() {
  return DiskProfile{
      /*name=*/"ssd",
      /*seq_read_mbps=*/180.0,
      /*seq_write_mbps=*/150.0,
      /*rand_read_mbps=*/18.0,
      /*rand_write_mbps=*/18.0,
      /*per_random_op_s=*/1e-6,
      /*qt_rand_read_mbps=*/18.177,
      /*qt_rand_write_mbps=*/18.194,
      /*qt_seq_read_mbps=*/18.270,
  };
}

}  // namespace hybridgraph
