// Randomized differential testing: seeded random graphs x every engine mode
// x {PageRank, SSSP, WCC, LPA}, each checked against the single-threaded
// reference implementations, plus fault-injected replays that must stay
// bit-identical to their fault-free runs. Every case derives entirely from
// one case seed — a failure message names the seed, which reproduces the
// exact graph, configuration and fail-point schedule.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "graph/generator.h"
#include "hybridgraph/any_engine.h"
#include "tests/core/reference_impls.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace hybridgraph {
namespace {

constexpr EngineMode kAllModes[] = {EngineMode::kPush, EngineMode::kPushM,
                                    EngineMode::kVPull, EngineMode::kBPull,
                                    EngineMode::kHybrid};
constexpr AlgoKind kFuzzAlgos[] = {AlgoKind::kPageRank, AlgoKind::kSssp,
                                   AlgoKind::kWcc, AlgoKind::kLpa};

struct FuzzCase {
  EdgeListGraph graph;
  JobConfig config;
  AlgoSpec spec;
  int lpa_supersteps = 0;
};

/// Derives a full case — graph shape, cluster shape, buffers, mode, algorithm
/// and sources — from nothing but the case seed.
FuzzCase MakeCase(uint64_t case_seed) {
  Rng rng(case_seed);
  FuzzCase c;
  const uint64_t n = 40 + rng.NextBounded(140);  // 40..179 vertices
  const double avg_degree = 3.0 + static_cast<double>(rng.NextBounded(5));
  const double skew = 0.6 + 0.1 * static_cast<double>(rng.NextBounded(4));
  c.graph = GeneratePowerLaw(n, avg_degree, skew, rng.Next());

  c.config.num_nodes = 1 + static_cast<uint32_t>(rng.NextBounded(4));
  c.config.num_threads = rng.NextBool(0.3) ? 4 : 1;
  switch (rng.NextBounded(3)) {
    case 0: c.config.msg_buffer_per_node = 16 + rng.NextBounded(64); break;
    case 1: c.config.msg_buffer_per_node = 256; break;
    default: break;  // keep "sufficient memory"
  }
  c.config.vblocks_per_node = static_cast<uint32_t>(rng.NextBounded(4));  // 0=auto
  c.config.vpull_vertex_cache = rng.NextBool(0.5) ? 32 : UINT64_MAX;
  c.config.pre_pull = rng.NextBool(0.5);
  c.config.bpull_combining = rng.NextBool(0.8);
  c.config.push_sender_combining = rng.NextBool(0.2);
  c.config.mode = kAllModes[rng.NextBounded(5)];
  c.config.seed = rng.Next();

  c.spec.kind = kFuzzAlgos[rng.NextBounded(4)];
  switch (c.spec.kind) {
    case AlgoKind::kPageRank:
      c.config.max_supersteps = 3 + static_cast<int>(rng.NextBounded(4));
      break;
    case AlgoKind::kSssp:
      c.config.max_supersteps = 4 * static_cast<int>(n);  // run to convergence
      c.spec.source = static_cast<VertexId>(rng.NextBounded(n));
      c.spec.source_set = true;
      break;
    case AlgoKind::kWcc:
      c.config.max_supersteps = 4 * static_cast<int>(n);  // run to convergence
      break;
    case AlgoKind::kLpa:
    default:
      c.lpa_supersteps = 3 + static_cast<int>(rng.NextBounded(4));
      c.config.max_supersteps = c.lpa_supersteps;
      break;
  }
  return c;
}

bool IsInvalidCombo(const FuzzCase& c) {
  // pushM requires combinable messages; LPA is concatenation-only.
  return c.config.mode == EngineMode::kPushM && c.spec.kind == AlgoKind::kLpa;
}

std::string CaseLabel(uint64_t case_seed, const FuzzCase& c) {
  return StringFormat("case_seed=%llu algo=%s mode=%s n=%llu nodes=%u",
                      static_cast<unsigned long long>(case_seed),
                      AlgoKindName(c.spec.kind), EngineModeName(c.config.mode),
                      static_cast<unsigned long long>(c.graph.num_vertices),
                      c.config.num_nodes);
}

std::vector<double> RunEngine(const FuzzCase& c) {
  auto engine = MakeEngine(c.config, c.spec).ValueOrDie();
  EXPECT_TRUE(engine->Load(c.graph).ok());
  EXPECT_TRUE(engine->Run().ok());
  return engine->GatherValuesAsDouble().ValueOrDie();
}

void CheckAgainstReference(const FuzzCase& c, const std::vector<double>& got) {
  ASSERT_EQ(got.size(), c.graph.num_vertices);
  switch (c.spec.kind) {
    case AlgoKind::kPageRank: {
      const auto expected =
          ReferencePageRank(c.graph, c.config.max_supersteps);
      for (size_t v = 0; v < got.size(); ++v) {
        ASSERT_NEAR(got[v], expected[v], 1e-12) << "v=" << v;
      }
      break;
    }
    case AlgoKind::kSssp: {
      const auto expected = ReferenceSssp(c.graph, c.spec.source);
      for (size_t v = 0; v < got.size(); ++v) {
        ASSERT_FLOAT_EQ(static_cast<float>(got[v]), expected[v]) << "v=" << v;
      }
      break;
    }
    case AlgoKind::kWcc: {
      const auto expected = ReferenceMinLabel(c.graph);
      for (size_t v = 0; v < got.size(); ++v) {
        ASSERT_EQ(static_cast<uint32_t>(got[v]), expected[v]) << "v=" << v;
      }
      break;
    }
    case AlgoKind::kLpa:
    default: {
      const auto expected = ReferenceLpa(c.graph, c.lpa_supersteps);
      for (size_t v = 0; v < got.size(); ++v) {
        ASSERT_EQ(static_cast<uint32_t>(got[v]), expected[v]) << "v=" << v;
      }
      break;
    }
  }
}

TEST(DifferentialFuzz, SeededCasesMatchReferenceImplementations) {
  int executed = 0;
  for (uint64_t case_seed = 9000; case_seed < 9170; ++case_seed) {
    const FuzzCase c = MakeCase(case_seed);
    if (IsInvalidCombo(c)) continue;
    SCOPED_TRACE(CaseLabel(case_seed, c));
    const auto got = RunEngine(c);
    if (::testing::Test::HasFatalFailure()) return;
    CheckAgainstReference(c, got);
    if (::testing::Test::HasFatalFailure()) return;
    ++executed;
  }
  EXPECT_GE(executed, 150);  // the pushM+LPA skip must not hollow out the sweep
}

TEST(DifferentialFuzz, FaultInjectedReplaysStayBitIdentical) {
  // Result-preserving fail-point schedules (randomized delay sites, seeded
  // from the case) must leave raw gathered values byte-identical to the
  // fault-free run of the same case.
  int executed = 0;
  for (uint64_t case_seed = 41000; case_seed < 41060; ++case_seed) {
    FuzzCase c = MakeCase(case_seed);
    if (IsInvalidCombo(c)) continue;
    // Convergence-length runs make 60 fault replays slow; cap the traversal
    // algorithms' superstep budget (both runs use the same cap, so the
    // differential comparison is unaffected).
    if (c.config.max_supersteps > 40) c.config.max_supersteps = 40;
    SCOPED_TRACE(CaseLabel(case_seed, c));

    auto run_raw = [&c]() {
      auto engine = MakeEngine(c.config, c.spec).ValueOrDie();
      EXPECT_TRUE(engine->Load(c.graph).ok());
      EXPECT_TRUE(engine->Run().ok());
      return engine->GatherValuesRaw().ValueOrDie();
    };
    const std::vector<uint8_t> expected = run_raw();
    if (::testing::Test::HasFatalFailure()) return;

    Rng rng(case_seed ^ 0xFA017FA017ULL);
    std::string schedule;
    for (const char* site : {"storage.read", "storage.write", "spill.flush"}) {
      if (rng.NextBool(0.6)) {
        if (!schedule.empty()) schedule += ";";
        schedule += StringFormat(
            "%s=delay:p=0.%llu,seed=%llu,us=1", site,
            static_cast<unsigned long long>(1 + rng.NextBounded(9)),
            static_cast<unsigned long long>(rng.Next()));
      }
    }
    if (schedule.empty()) schedule = "storage.read=delay:p=0.5,us=1";
    c.config.failpoints = schedule;
    const std::vector<uint8_t> got = run_raw();
    FailPointRegistry::Instance().DisarmAll();
    if (::testing::Test::HasFatalFailure()) return;

    ASSERT_EQ(got.size(), expected.size()) << "schedule=" << schedule;
    ASSERT_EQ(std::memcmp(got.data(), expected.data(), got.size()), 0)
        << "schedule=" << schedule;
    ++executed;
  }
  EXPECT_GE(executed, 50);
}

}  // namespace
}  // namespace hybridgraph
