#include "graph/edge_list.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/codec.h"
#include "util/string_util.h"

namespace hybridgraph {

namespace {
constexpr uint32_t kBinaryMagic = 0x48474246;  // "HGBF"
}

std::vector<uint32_t> EdgeListGraph::OutDegrees() const {
  std::vector<uint32_t> deg(num_vertices, 0);
  for (const auto& e : edges) ++deg[e.src];
  return deg;
}

std::vector<uint32_t> EdgeListGraph::InDegrees() const {
  std::vector<uint32_t> deg(num_vertices, 0);
  for (const auto& e : edges) ++deg[e.dst];
  return deg;
}

uint32_t EdgeListGraph::MaxOutDegree() const {
  auto deg = OutDegrees();
  return deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());
}

void EdgeListGraph::SortBySource() {
  std::sort(edges.begin(), edges.end(), [](const RawEdge& a, const RawEdge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
}

Status EdgeListGraph::Validate() const {
  for (const auto& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return Status::InvalidArgument(
          StringFormat("edge (%u,%u) out of range for %llu vertices", e.src,
                       e.dst, static_cast<unsigned long long>(num_vertices)));
    }
  }
  return Status::OK();
}

Result<EdgeListGraph> ParseEdgeListText(const std::string& text) {
  EdgeListGraph g;
  uint64_t declared_vertices = 0;
  uint64_t max_endpoint = 0;
  bool has_edges = false;

  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    line = TrimString(line);
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      // Optional "# vertices: N" header.
      const std::string key = "vertices:";
      auto pos = line.find(key);
      if (pos != std::string::npos) {
        declared_vertices =
            std::strtoull(line.c_str() + pos + key.size(), nullptr, 10);
      }
      continue;
    }
    std::istringstream ls(line);
    uint64_t src, dst;
    double w = 1.0;
    if (!(ls >> src >> dst)) {
      return Status::Corruption(
          StringFormat("bad edge line %zu: '%s'", lineno, line.c_str()));
    }
    ls >> w;  // optional weight
    if (src > UINT32_MAX || dst > UINT32_MAX) {
      return Status::InvalidArgument("vertex id exceeds 32 bits");
    }
    g.edges.push_back({static_cast<VertexId>(src), static_cast<VertexId>(dst),
                       static_cast<float>(w)});
    max_endpoint = std::max(max_endpoint, std::max(src, dst));
    has_edges = true;
  }
  g.num_vertices =
      std::max(declared_vertices, has_edges ? max_endpoint + 1 : uint64_t{0});
  return g;
}

std::string WriteEdgeListText(const EdgeListGraph& graph) {
  std::string out = StringFormat("# vertices: %llu\n",
                                 static_cast<unsigned long long>(graph.num_vertices));
  for (const auto& e : graph.edges) {
    out += StringFormat("%u %u %g\n", e.src, e.dst, e.weight);
  }
  return out;
}

std::vector<uint8_t> EncodeEdgeListBinary(const EdgeListGraph& graph) {
  Buffer buf;
  Encoder enc(&buf);
  enc.PutFixed32(kBinaryMagic);
  enc.PutFixed64(graph.num_vertices);
  enc.PutFixed64(graph.edges.size());
  for (const auto& e : graph.edges) {
    enc.PutFixed32(e.src);
    enc.PutFixed32(e.dst);
    enc.PutFloat(e.weight);
  }
  return buf.TakeBytes();
}

Result<EdgeListGraph> DecodeEdgeListBinary(const std::vector<uint8_t>& bytes) {
  Decoder dec{Slice(bytes)};
  uint32_t magic;
  HG_RETURN_IF_ERROR(dec.GetFixed32(&magic));
  if (magic != kBinaryMagic) return Status::Corruption("bad edge list magic");
  EdgeListGraph g;
  uint64_t num_edges;
  HG_RETURN_IF_ERROR(dec.GetFixed64(&g.num_vertices));
  HG_RETURN_IF_ERROR(dec.GetFixed64(&num_edges));
  g.edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    RawEdge e;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&e.src));
    HG_RETURN_IF_ERROR(dec.GetFixed32(&e.dst));
    HG_RETURN_IF_ERROR(dec.GetFloat(&e.weight));
    g.edges.push_back(e);
  }
  if (!dec.AtEnd()) return Status::Corruption("trailing bytes in edge list");
  return g;
}

Result<EdgeListGraph> LoadEdgeListFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return Status::NotFound("cannot open graph file: " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !f.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return Status::IoError("read failed: " + path);
  }
  if (bytes.size() >= 4) {
    Decoder dec{Slice(bytes)};
    uint32_t magic = 0;
    if (dec.GetFixed32(&magic).ok() && magic == kBinaryMagic) {
      return DecodeEdgeListBinary(bytes);
    }
  }
  return ParseEdgeListText(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

Status SaveEdgeListFile(const EdgeListGraph& graph, const std::string& path,
                        bool binary) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IoError("cannot open for write: " + path);
  if (binary) {
    auto bytes = EncodeEdgeListBinary(graph);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  } else {
    const std::string text = WriteEdgeListText(graph);
    f.write(text.data(), static_cast<std::streamsize>(text.size()));
  }
  return f ? Status::OK() : Status::IoError("write failed: " + path);
}

}  // namespace hybridgraph
