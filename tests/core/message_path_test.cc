// Strategy conformance: every MessagePath (push, pushM, b-pull, vpull and
// the hybrid combination) must compute reference-identical results when
// driven through the same SuperstepDriver fixture — the paths differ only in
// how messages move, never in what the program computes. Each conformance
// check runs fully sequential (1 thread) and parallel (8 threads).
#include "core/message_path.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/paths/adaptive_path.h"
#include "core/paths/bpull_path.h"
#include "core/paths/push_m_path.h"
#include "core/paths/push_path.h"
#include "core/paths/vpull_path.h"
#include "core/superstep_driver.h"
#include "graph/generator.h"
#include "tests/core/reference_impls.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph(uint64_t seed = 11) {
  return GeneratePowerLaw(800, 7.0, 0.8, seed);
}

/// A driver plus the installed strategies — the same wiring the Engine /
/// VPullEngine facades do, but exposed so tests can drive any path through
/// one shared fixture.
template <typename P>
struct DriverRig {
  std::unique_ptr<SuperstepDriver<P>> driver;
  std::unique_ptr<PushPath<P>> push;
  std::unique_ptr<BPullPath<P>> bpull;
  std::unique_ptr<VPullPath<P>> vpull;
  std::unique_ptr<AdaptivePath<P>> adaptive;

  Result<std::vector<typename P::Value>> Gather() {
    if (vpull) return vpull->GatherValues();
    return driver->GatherValues();
  }
};

template <typename P>
DriverRig<P> MakeRig(const JobConfig& cfg, P program) {
  DriverRig<P> rig;
  if (cfg.mode == EngineMode::kVPull) {
    rig.driver = std::make_unique<SuperstepDriver<P>>(cfg, program,
                                                      /*gas_engine=*/true);
    rig.vpull = std::make_unique<VPullPath<P>>(rig.driver.get());
    rig.driver->InstallPath(rig.vpull.get(), /*active=*/true);
    return rig;
  }
  rig.driver = std::make_unique<SuperstepDriver<P>>(cfg, program,
                                                    /*gas_engine=*/false);
  if (cfg.mode == EngineMode::kPushM) {
    rig.push = std::make_unique<PushMPath<P>>(rig.driver.get());
  } else {
    rig.push = std::make_unique<PushPath<P>>(rig.driver.get());
  }
  rig.bpull = std::make_unique<BPullPath<P>>(rig.driver.get());
  rig.driver->InstallPath(rig.push.get(),
                          /*active=*/cfg.mode != EngineMode::kBPull &&
                              cfg.mode != EngineMode::kAdaptive);
  rig.driver->InstallPath(rig.bpull.get(),
                          /*active=*/cfg.mode == EngineMode::kBPull ||
                              cfg.mode == EngineMode::kHybrid);
  if (cfg.mode == EngineMode::kAdaptive) {
    rig.adaptive = std::make_unique<AdaptivePath<P>>(rig.driver.get());
    rig.driver->InstallPath(rig.adaptive.get(), /*active=*/true);
  }
  return rig;
}

JobConfig BaseConfig(EngineMode mode, uint32_t threads) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.num_threads = threads;
  cfg.msg_buffer_per_node = 120;  // forces spilling under push
  cfg.max_supersteps = 50;
  return cfg;
}

constexpr EngineMode kAllModes[] = {EngineMode::kPush,   EngineMode::kPushM,
                                    EngineMode::kVPull,  EngineMode::kBPull,
                                    EngineMode::kHybrid, EngineMode::kAdaptive};

class MessagePathConformance : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MessagePathConformance, PageRankMatchesReference) {
  const auto g = TestGraph();
  constexpr int kSteps = 6;
  const auto expected = ReferencePageRank(g, kSteps);
  for (EngineMode mode : kAllModes) {
    JobConfig cfg = BaseConfig(mode, GetParam());
    cfg.max_supersteps = kSteps;
    auto rig = MakeRig(cfg, PageRankProgram{});
    ASSERT_TRUE(rig.driver->Load(g).ok()) << EngineModeName(mode);
    ASSERT_TRUE(rig.driver->Run().ok()) << EngineModeName(mode);
    const auto got = rig.Gather().ValueOrDie();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_NEAR(got[v], expected[v], 1e-12)
          << "mode=" << EngineModeName(mode) << " v=" << v;
    }
  }
}

TEST_P(MessagePathConformance, SsspMatchesBellmanFord) {
  const auto g = TestGraph();
  SsspProgram program;
  program.source = 17;
  const auto expected = ReferenceSssp(g, program.source);
  for (EngineMode mode : kAllModes) {
    JobConfig cfg = BaseConfig(mode, GetParam());
    cfg.max_supersteps = 200;
    auto rig = MakeRig(cfg, program);
    ASSERT_TRUE(rig.driver->Load(g).ok()) << EngineModeName(mode);
    ASSERT_TRUE(rig.driver->Run().ok()) << EngineModeName(mode);
    EXPECT_TRUE(rig.driver->converged()) << EngineModeName(mode);
    const auto got = rig.Gather().ValueOrDie();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_FLOAT_EQ(got[v], expected[v])
          << "mode=" << EngineModeName(mode) << " v=" << v;
    }
  }
}

TEST_P(MessagePathConformance, WccMatchesMinLabelFlood) {
  const auto g = TestGraph(23);
  const auto expected = ReferenceMinLabel(g);
  for (EngineMode mode : kAllModes) {
    JobConfig cfg = BaseConfig(mode, GetParam());
    cfg.max_supersteps = 200;
    auto rig = MakeRig(cfg, WccProgram{});
    ASSERT_TRUE(rig.driver->Load(g).ok()) << EngineModeName(mode);
    ASSERT_TRUE(rig.driver->Run().ok()) << EngineModeName(mode);
    EXPECT_TRUE(rig.driver->converged()) << EngineModeName(mode);
    const auto got = rig.Gather().ValueOrDie();
    EXPECT_EQ(got, expected) << EngineModeName(mode);
  }
}

TEST_P(MessagePathConformance, MetricsTagTheProducingPath) {
  // Every superstep record must carry the mode of the path that produced it,
  // and single-mode runs must never report another path's mode.
  const auto g = TestGraph();
  for (EngineMode mode : {EngineMode::kPush, EngineMode::kPushM,
                          EngineMode::kVPull, EngineMode::kBPull,
                          EngineMode::kAdaptive}) {
    JobConfig cfg = BaseConfig(mode, GetParam());
    cfg.max_supersteps = 5;
    auto rig = MakeRig(cfg, PageRankProgram{});
    ASSERT_TRUE(rig.driver->Load(g).ok()) << EngineModeName(mode);
    ASSERT_TRUE(rig.driver->Run().ok()) << EngineModeName(mode);
    ASSERT_FALSE(rig.driver->stats().supersteps.empty());
    for (const auto& s : rig.driver->stats().supersteps) {
      EXPECT_EQ(s.mode, mode) << EngineModeName(mode) << " superstep "
                              << s.superstep;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, MessagePathConformance,
                         ::testing::Values(1u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(MessagePathCapabilities, PathsDeclareTheirNeeds) {
  JobConfig cfg = BaseConfig(EngineMode::kHybrid, 1);
  SuperstepDriver<PageRankProgram> driver(cfg, PageRankProgram{},
                                          /*gas_engine=*/false);
  PushPath<PageRankProgram> push(&driver);
  PushMPath<PageRankProgram> pushm(&driver);
  BPullPath<PageRankProgram> bpull(&driver);
  VPullPath<PageRankProgram> vpull(&driver);
  AdaptivePath<PageRankProgram> adaptive(&driver);

  EXPECT_EQ(push.mode(), EngineMode::kPush);
  EXPECT_TRUE(push.needs_adjacency());
  EXPECT_FALSE(push.needs_veblocks());

  EXPECT_EQ(pushm.mode(), EngineMode::kPushM);
  EXPECT_TRUE(pushm.needs_adjacency());

  EXPECT_EQ(bpull.mode(), EngineMode::kBPull);
  EXPECT_FALSE(bpull.needs_adjacency());
  EXPECT_TRUE(bpull.needs_veblocks());

  EXPECT_EQ(vpull.mode(), EngineMode::kVPull);
  EXPECT_FALSE(vpull.needs_adjacency());
  EXPECT_FALSE(vpull.needs_veblocks());
  EXPECT_FALSE(vpull.supports_aggregator());
  EXPECT_FALSE(vpull.hybrid_metrics());

  // The adaptive path needs both layouts (push cells walk adjacency, pull
  // cells serve Eblocks) and answers pulls itself; per-cell mixing makes the
  // single-direction Q_t metric inapplicable.
  EXPECT_EQ(adaptive.mode(), EngineMode::kAdaptive);
  EXPECT_TRUE(adaptive.needs_adjacency());
  EXPECT_TRUE(adaptive.needs_veblocks());
  EXPECT_TRUE(adaptive.serves_pulls());
  EXPECT_FALSE(adaptive.hybrid_metrics());

  // Only pull-serving paths advertise ServePull.
  EXPECT_FALSE(push.serves_pulls());
  EXPECT_FALSE(pushm.serves_pulls());
  EXPECT_TRUE(bpull.serves_pulls());

  // Block paths participate in aggregation and hybrid accounting.
  EXPECT_TRUE(push.supports_aggregator());
  EXPECT_TRUE(bpull.hybrid_metrics());
}

TEST(MessagePathCapabilities, ServePullOnlyOnPullPaths) {
  // The driver routes kPullRequest to the b-pull slot; a path that does not
  // serve pulls must say so rather than silently answer.
  JobConfig cfg = BaseConfig(EngineMode::kPush, 1);
  SuperstepDriver<PageRankProgram> driver(cfg, PageRankProgram{},
                                          /*gas_engine=*/false);
  PushPath<PageRankProgram> push(&driver);
  NodeState node;
  Buffer response;
  const Status st = push.ServePull(node, 0, Slice(), &response);
  EXPECT_FALSE(st.ok());
}

// ------------------------------------------------------------- trace spans

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

size_t CountOccurrences(const std::string& hay, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceSpans, HybridRunWritesChromeTracingJson) {
  const std::string path =
      ::testing::TempDir() + "/hg_trace_spans_test.json";
  std::remove(path.c_str());

  const auto g = TestGraph();
  JobConfig cfg = BaseConfig(EngineMode::kHybrid, 2);
  cfg.max_supersteps = 4;
  cfg.trace_path = path;
  auto rig = MakeRig(cfg, PageRankProgram{});
  ASSERT_TRUE(rig.driver->Load(g).ok());
  ASSERT_TRUE(rig.driver->Run().ok());
  EXPECT_GT(rig.driver->trace()->num_events(), 0u);

  const std::string json = ReadFileOrEmpty(path);
  ASSERT_FALSE(json.empty());
  // Trace Event Format essentials chrome://tracing requires.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Well-formed JSON object: balanced braces/brackets, object at top level.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(CountOccurrences(json, "{"), CountOccurrences(json, "}"));
  EXPECT_EQ(CountOccurrences(json, "["), CountOccurrences(json, "]"));
  // One driver-level span (pid 0) per phase per superstep, plus per-node
  // spans (pid = node+1) underneath.
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"consume\""),
            static_cast<size_t>(cfg.max_supersteps) * (1 + cfg.num_nodes));
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"update\""),
            static_cast<size_t>(cfg.max_supersteps) * (1 + cfg.num_nodes));
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"drain\""),
            static_cast<size_t>(cfg.max_supersteps) * (1 + cfg.num_nodes));
  // Span args carry the superstep and the mode name.
  EXPECT_NE(json.find("\"superstep\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\""), std::string::npos);

  std::remove(path.c_str());
}

TEST(TraceSpans, PrefetchRunEmitsOverlapAndPrefetchSpans) {
  const std::string path =
      ::testing::TempDir() + "/hg_trace_prefetch_test.json";
  std::remove(path.c_str());

  const auto g = TestGraph();
  JobConfig cfg = BaseConfig(EngineMode::kPush, 2);
  cfg.max_supersteps = 3;
  cfg.io.prefetch_depth = 4;
  cfg.trace_path = path;
  auto rig = MakeRig(cfg, PageRankProgram{});
  ASSERT_TRUE(rig.driver->Load(g).ok());
  ASSERT_TRUE(rig.driver->Run().ok());

  const std::string json = ReadFileOrEmpty(path);
  ASSERT_FALSE(json.empty());
  // One warmup window per node per superstep (inside the drain phase)...
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"drain.overlap\""),
            static_cast<size_t>(cfg.max_supersteps) * cfg.num_nodes);
  // ...and one background-read window per claimed staged read.
  uint64_t hits = 0;
  for (const auto& s : rig.driver->stats().supersteps) {
    hits += s.prefetch_hits;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"io.prefetch\""),
            static_cast<size_t>(hits));

  std::remove(path.c_str());
}

TEST(TraceSpans, DisabledByDefaultAndZeroEvents) {
  const auto g = TestGraph();
  JobConfig cfg = BaseConfig(EngineMode::kBPull, 1);
  cfg.max_supersteps = 2;
  auto rig = MakeRig(cfg, PageRankProgram{});
  ASSERT_TRUE(rig.driver->Load(g).ok());
  ASSERT_TRUE(rig.driver->Run().ok());
  EXPECT_FALSE(rig.driver->trace()->enabled());
  EXPECT_EQ(rig.driver->trace()->num_events(), 0u);
}

TEST(TraceSpans, PhaseWallTimesPopulateMetrics) {
  const auto g = TestGraph();
  JobConfig cfg = BaseConfig(EngineMode::kPush, 1);
  cfg.max_supersteps = 3;
  auto rig = MakeRig(cfg, PageRankProgram{});
  ASSERT_TRUE(rig.driver->Load(g).ok());
  ASSERT_TRUE(rig.driver->Run().ok());
  for (const auto& s : rig.driver->stats().supersteps) {
    EXPECT_GE(s.phase_consume_wall_s, 0.0);
    EXPECT_GE(s.phase_update_wall_s, 0.0);
    EXPECT_GE(s.phase_drain_wall_s, 0.0);
    // The update sweep always does real work.
    EXPECT_GT(s.phase_update_wall_s, 0.0);
  }
}

}  // namespace
}  // namespace hybridgraph
