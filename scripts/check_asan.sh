#!/bin/sh
# Builds the tree with AddressSanitizer (-DHG_SANITIZE=address) and runs the
# memory-hazard-sensitive suites: codec/fuzz decoding of corrupted inputs,
# the fail-point + fault-injection paths, the TCP transport, and checkpoint
# restore from truncated/bit-flipped images. Any heap error fails the run
# (ASan exits nonzero).
set -eu
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DHG_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target hg_util_tests hg_net_tests hg_core_tests

export ASAN_OPTIONS="halt_on_error=1${ASAN_OPTIONS:+ $ASAN_OPTIONS}"
"$BUILD_DIR"/tests/hg_util_tests --gtest_filter='FailPoint*:Codec*:Buffer*'
"$BUILD_DIR"/tests/hg_net_tests
"$BUILD_DIR"/tests/hg_core_tests \
  --gtest_filter='FaultInjection*:DifferentialFuzz*:Recovery*:Checkpoint*'
echo "ASan clean: codec fuzz + fault injection + transport + recovery tests ran leak/overflow-free"
