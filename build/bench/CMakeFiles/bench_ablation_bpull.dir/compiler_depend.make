# Empty compiler generated dependencies file for bench_ablation_bpull.
# This may be replaced when dependencies are built.
