// Wire encoding of message batches.
//
// push batch:       [count][ (dst_vertex fixed32, payload raw) x count ]
// concatenated:     [groups][ (dst_vertex fixed32, n varint, payload x n) ... ]
//
// Concatenation is the paper's first communication optimization for
// pull-based transfers: message values destined for the same vertex share a
// single destination id on the wire. Combined batches degenerate to
// concatenated groups of size 1 (after the combiner collapsed the values).
#pragma once

#include <cstdint>
#include <vector>

#include "util/buffer.h"
#include "util/codec.h"
#include "util/status.h"

namespace hybridgraph {

/// \brief A flat batch: one payload per destination (push wire format).
struct FlatBatchCodec {
  /// Appends the batch; every payload must be exactly `payload_size` bytes.
  static void Encode(const std::vector<std::pair<uint32_t, std::vector<uint8_t>>>& msgs,
                     size_t payload_size, Buffer* out);

  /// Decodes into (dst, payload) pairs appended to *out.
  static Status Decode(Slice data, size_t payload_size,
                       std::vector<std::pair<uint32_t, std::vector<uint8_t>>>* out);
};

/// \brief A grouped batch: per destination vertex, several payloads share one
/// id (pull/b-pull wire format after concatenation or combining).
struct GroupedBatchCodec {
  struct Group {
    uint32_t dst;
    std::vector<std::vector<uint8_t>> payloads;
  };

  static void Encode(const std::vector<Group>& groups, size_t payload_size,
                     Buffer* out);
  static Status Decode(Slice data, size_t payload_size, std::vector<Group>* out);

  /// Serialized size without materializing the buffer (used by flow control).
  static uint64_t EncodedSize(const std::vector<Group>& groups, size_t payload_size);
};

}  // namespace hybridgraph
