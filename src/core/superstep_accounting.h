// Superstep accounting for the block-centric engine: per-node counter reset
// at the superstep start, and the end-of-superstep fold of every node's
// counters, meter deltas and modeled-time components into one
// SuperstepMetrics record (the observables all paper figures draw from).
#pragma once

#include <cstdint>
#include <vector>

#include "core/job_config.h"
#include "core/node_state.h"
#include "core/run_metrics.h"
#include "net/transport.h"

namespace hybridgraph {

/// Zeroes every node's per-superstep counters and snapshots its disk/net
/// meters (BeginSuperstepAccounting).
void BeginBlockAccounting(std::vector<NodeState>& nodes, Transport& transport);

struct BlockAccountingInputs {
  int superstep = 0;
  EngineMode produce_mode = EngineMode::kPush;
  bool switched = false;
  const JobConfig* config = nullptr;
  const RangePartition* partition = nullptr;
  Transport* transport = nullptr;
  TransportFaultCounters fault_snapshot;
  /// Per-node path-specific modeled-memory buffer bytes on top of the node's
  /// own mem_highwater (push family: pending inbox + moc accumulator slots;
  /// b-pull: nothing). Parallel to `nodes`.
  const std::vector<uint64_t>* extra_memory_bytes = nullptr;
};

/// Folds node counters into one SuperstepMetrics (EndSuperstepAccounting up
/// to — but excluding — the hybrid EvaluateSwitch and the stats push, which
/// stay with the driver).
SuperstepMetrics AccumulateBlockMetrics(std::vector<NodeState>& nodes,
                                        const BlockAccountingInputs& in);

/// Modeled memory: VE-BLOCK metadata kept resident by b-pull/hybrid plus the
/// node's buffer high-water plus the path-specific extra (ModeledMemoryBytes).
uint64_t ModeledMemoryBytes(const NodeState& node,
                            const RangePartition& partition,
                            uint64_t extra_buffer_bytes);

/// Barrier promotion: swaps responding/vblock/inbox double buffers and
/// returns the cluster totals the convergence check needs.
void PromoteBlockState(std::vector<NodeState>& nodes, uint64_t* responding_total,
                       uint64_t* inflight_messages);

}  // namespace hybridgraph
