file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_combining.dir/bench_fig26_combining.cc.o"
  "CMakeFiles/bench_fig26_combining.dir/bench_fig26_combining.cc.o.d"
  "bench_fig26_combining"
  "bench_fig26_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
