#include "graph/edge_list.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace hybridgraph {
namespace {

EdgeListGraph Sample() {
  EdgeListGraph g;
  g.num_vertices = 5;
  g.edges = {{0, 1, 1.5f}, {1, 2, 1.0f}, {0, 2, 2.0f}, {4, 0, 0.5f}};
  return g;
}

TEST(EdgeList, Degrees) {
  const EdgeListGraph g = Sample();
  const auto out = g.OutDegrees();
  const auto in = g.InDegrees();
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[1], 1u);
  EXPECT_EQ(out[3], 0u);
  EXPECT_EQ(in[2], 2u);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(g.MaxOutDegree(), 2u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.8);
}

TEST(EdgeList, SortBySource) {
  EdgeListGraph g = Sample();
  g.SortBySource();
  for (size_t i = 1; i < g.edges.size(); ++i) {
    EXPECT_LE(g.edges[i - 1].src, g.edges[i].src);
  }
  EXPECT_EQ(g.edges[0].dst, 1u);  // (0,1) before (0,2)
}

TEST(EdgeList, Validate) {
  EdgeListGraph g = Sample();
  EXPECT_TRUE(g.Validate().ok());
  g.edges.push_back({9, 0, 1.0f});
  EXPECT_EQ(g.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeListText, ParseBasic) {
  auto r = ParseEdgeListText("# comment\n0 1\n1 2 3.5\n\n% other comment\n2 0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices, 3u);
  ASSERT_EQ(r->edges.size(), 3u);
  EXPECT_FLOAT_EQ(r->edges[0].weight, 1.0f);  // default weight
  EXPECT_FLOAT_EQ(r->edges[1].weight, 3.5f);
}

TEST(EdgeListText, VerticesHeaderWins) {
  auto r = ParseEdgeListText("# vertices: 10\n0 1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices, 10u);
}

TEST(EdgeListText, BadLineIsCorruption) {
  EXPECT_EQ(ParseEdgeListText("0 1\nbanana\n").status().code(),
            StatusCode::kCorruption);
}

TEST(EdgeListText, RoundTrip) {
  const EdgeListGraph g = Sample();
  auto r = ParseEdgeListText(WriteEdgeListText(g));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices, g.num_vertices);
  EXPECT_EQ(r->edges, g.edges);
}

TEST(EdgeListBinary, RoundTrip) {
  const EdgeListGraph g = Sample();
  auto r = DecodeEdgeListBinary(EncodeEdgeListBinary(g));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices, g.num_vertices);
  EXPECT_EQ(r->edges, g.edges);
}

TEST(EdgeListBinary, BadMagic) {
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(DecodeEdgeListBinary(junk).status().code(), StatusCode::kCorruption);
}

TEST(EdgeListBinary, TrailingBytes) {
  auto bytes = EncodeEdgeListBinary(Sample());
  bytes.push_back(0);
  EXPECT_EQ(DecodeEdgeListBinary(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(EdgeListFile, SaveLoadBothFormats) {
  const EdgeListGraph g = Sample();
  const std::string dir = ::testing::TempDir();
  for (bool binary : {false, true}) {
    const std::string path =
        dir + "/edge_list_test_" + (binary ? "bin" : "txt") + ".graph";
    ASSERT_TRUE(SaveEdgeListFile(g, path, binary).ok());
    auto r = LoadEdgeListFile(path);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->edges, g.edges);
    std::filesystem::remove(path);
  }
  EXPECT_EQ(LoadEdgeListFile(dir + "/nope.graph").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace hybridgraph
