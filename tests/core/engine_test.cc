// Engine correctness: every mode must compute reference-identical results
// for all algorithms, across memory regimes (spilling vs not), Vblock
// shapes, and storage backends.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "algos/bfs.h"
#include "algos/lpa.h"
#include "algos/pagerank.h"
#include "algos/sa.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "graph/generator.h"
#include "tests/core/reference_impls.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph(uint64_t seed = 11) {
  return GeneratePowerLaw(800, 7.0, 0.8, seed);
}

template <typename P>
Engine<P> MakeEngine(EngineMode mode, P program, const JobConfig& base) {
  JobConfig cfg = base;
  cfg.mode = mode;
  return Engine<P>(cfg, program);
}

JobConfig BaseConfig() {
  JobConfig cfg;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 120;  // forces spilling under push
  cfg.max_supersteps = 50;
  return cfg;
}

// ------------------------------------------------------- reference checks

TEST(EngineCorrectness, PageRankMatchesReference) {
  const auto g = TestGraph();
  constexpr int kSteps = 6;
  const auto expected = ReferencePageRank(g, kSteps);
  for (EngineMode mode : {EngineMode::kPush, EngineMode::kPushM,
                          EngineMode::kBPull, EngineMode::kHybrid}) {
    JobConfig cfg = BaseConfig();
    cfg.mode = mode;
    cfg.max_supersteps = kSteps;
    Engine<PageRankProgram> engine(cfg, PageRankProgram{});
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    const auto got = engine.GatherValues().ValueOrDie();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_NEAR(got[v], expected[v], 1e-12)
          << "mode=" << EngineModeName(mode) << " v=" << v;
    }
  }
}

TEST(EngineCorrectness, SsspMatchesBellmanFord) {
  const auto g = TestGraph();
  SsspProgram program;
  program.source = 17;
  const auto expected = ReferenceSssp(g, program.source);
  for (EngineMode mode : {EngineMode::kPush, EngineMode::kPushM,
                          EngineMode::kBPull, EngineMode::kHybrid}) {
    JobConfig cfg = BaseConfig();
    cfg.mode = mode;
    cfg.max_supersteps = 200;
    Engine<SsspProgram> engine(cfg, program);
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_TRUE(engine.converged()) << EngineModeName(mode);
    const auto got = engine.GatherValues().ValueOrDie();
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_FLOAT_EQ(got[v], expected[v])
          << "mode=" << EngineModeName(mode) << " v=" << v;
    }
  }
}

TEST(EngineCorrectness, BfsMatchesReference) {
  const auto g = TestGraph(21);
  BfsProgram program;
  program.source = 5;
  const auto expected = ReferenceBfs(g, program.source);
  for (EngineMode mode :
       {EngineMode::kPush, EngineMode::kBPull, EngineMode::kHybrid}) {
    JobConfig cfg = BaseConfig();
    cfg.mode = mode;
    cfg.max_supersteps = 100;
    Engine<BfsProgram> engine(cfg, program);
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    const auto got = engine.GatherValues().ValueOrDie();
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_EQ(got[v], expected[v])
          << "mode=" << EngineModeName(mode) << " v=" << v;
    }
  }
}

TEST(EngineCorrectness, WccMatchesMinLabelFixpoint) {
  const auto g = TestGraph(33);
  const auto expected = ReferenceMinLabel(g);
  for (EngineMode mode :
       {EngineMode::kPush, EngineMode::kBPull, EngineMode::kHybrid}) {
    JobConfig cfg = BaseConfig();
    cfg.mode = mode;
    cfg.max_supersteps = 300;
    Engine<WccProgram> engine(cfg, WccProgram{});
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_TRUE(engine.converged());
    const auto got = engine.GatherValues().ValueOrDie();
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_EQ(got[v], expected[v]) << EngineModeName(mode) << " v=" << v;
    }
  }
}

TEST(EngineCorrectness, LpaModesAgree) {
  // LPA has no simple closed-form reference; all engines must agree since
  // the program is deterministic under identical BSP semantics.
  const auto g = TestGraph(44);
  std::vector<uint32_t> reference;
  for (EngineMode mode :
       {EngineMode::kPush, EngineMode::kBPull, EngineMode::kHybrid}) {
    JobConfig cfg = BaseConfig();
    cfg.mode = mode;
    cfg.max_supersteps = 5;
    Engine<LpaProgram> engine(cfg, LpaProgram{});
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    const auto got = engine.GatherValues().ValueOrDie();
    if (reference.empty()) {
      reference = got;
      // Labels must actually propagate.
      uint64_t changed = 0;
      for (uint32_t v = 0; v < got.size(); ++v) changed += got[v] != v;
      EXPECT_GT(changed, got.size() / 4);
    } else {
      EXPECT_EQ(got, reference) << EngineModeName(mode);
    }
  }
}

TEST(EngineCorrectness, SaModesAgree) {
  const auto g = TestGraph(55);
  SaProgram program;
  program.source_stride = 40;
  std::vector<SaProgram::Value> reference;
  for (EngineMode mode :
       {EngineMode::kPush, EngineMode::kBPull, EngineMode::kHybrid}) {
    JobConfig cfg = BaseConfig();
    cfg.mode = mode;
    cfg.max_supersteps = 30;
    Engine<SaProgram> engine(cfg, program);
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    const auto got = engine.GatherValues().ValueOrDie();
    if (reference.empty()) {
      reference = got;
      uint64_t adopters = 0;
      for (const auto& v : got) adopters += v.adopted != 0;
      EXPECT_GT(adopters, g.num_vertices / 40);  // ads spread beyond sources
    } else {
      ASSERT_EQ(got.size(), reference.size());
      for (size_t v = 0; v < got.size(); ++v) {
        ASSERT_EQ(got[v].adopted, reference[v].adopted)
            << EngineModeName(mode) << " v=" << v;
      }
    }
  }
}

// ------------------------------------------------------ regime robustness

class BufferSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferSweepTest, PushCorrectUnderAnyBufferSize) {
  const auto g = TestGraph(66);
  constexpr int kSteps = 4;
  const auto expected = ReferencePageRank(g, kSteps);
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kPush;
  cfg.msg_buffer_per_node = GetParam();
  cfg.max_supersteps = kSteps;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto got = engine.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
  // Spilling must actually happen iff the buffer is small.
  uint64_t spilled = 0;
  for (const auto& s : engine.stats().supersteps) spilled += s.messages_spilled;
  if (GetParam() <= 100) {
    EXPECT_GT(spilled, 0u);
  } else if (GetParam() == UINT64_MAX) {
    EXPECT_EQ(spilled, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Buffers, BufferSweepTest,
                         ::testing::Values(1, 10, 100, 5000, UINT64_MAX));

class VblockSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(VblockSweepTest, BPullCorrectUnderAnyVblockCount) {
  const auto g = TestGraph(77);
  constexpr int kSteps = 4;
  const auto expected = ReferencePageRank(g, kSteps);
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kBPull;
  cfg.vblocks_per_node = GetParam();
  cfg.max_supersteps = kSteps;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.partition().num_vblocks(), GetParam() * cfg.num_nodes);
  const auto got = engine.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Vblocks, VblockSweepTest,
                         ::testing::Values(1, 2, 7, 20, 50));

TEST(Engine, FileStorageBackendMatchesMem) {
  const auto g = TestGraph(88);
  constexpr int kSteps = 4;
  const auto expected = ReferencePageRank(g, kSteps);
  const std::string dir = ::testing::TempDir() + "/hg_engine_file_test";
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kHybrid;
  cfg.max_supersteps = kSteps;
  cfg.use_file_storage = true;
  cfg.storage_dir = dir;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto got = engine.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
  std::filesystem::remove_all(dir);
}

TEST(Engine, SingleNodeCluster) {
  const auto g = TestGraph(99);
  SsspProgram program;
  program.source = 0;
  const auto expected = ReferenceSssp(g, 0);
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kBPull;
  cfg.num_nodes = 1;
  cfg.max_supersteps = 200;
  Engine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto got = engine.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_FLOAT_EQ(got[v], expected[v]) << v;
  }
}

TEST(Engine, LoadRejectsBadInputs) {
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kPush;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  EdgeListGraph bad;
  bad.num_vertices = 10;
  bad.edges = {{0, 99, 1.0f}};
  EXPECT_FALSE(engine.Load(bad).ok());

  Engine<PageRankProgram> engine2(cfg, PageRankProgram{});
  EdgeListGraph tiny;
  tiny.num_vertices = 2;  // fewer vertices than the 4 nodes
  EXPECT_FALSE(engine2.Load(tiny).ok());

  Engine<PageRankProgram> engine3(cfg, PageRankProgram{});
  EXPECT_EQ(engine3.Run().code(), StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------- metrics sanity

TEST(EngineMetrics, PushIoBreakdownPopulated) {
  const auto g = TestGraph();
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kPush;
  cfg.max_supersteps = 4;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto& steps = engine.stats().supersteps;
  ASSERT_EQ(steps.size(), 4u);
  // Supersteps after the first consume spilled messages and read adjacency.
  const auto& s2 = steps[2];
  EXPECT_GT(s2.io.vt_bytes, 0u);
  EXPECT_GT(s2.io.adj_edge_bytes, 0u);
  EXPECT_GT(s2.io.msg_spill_write, 0u);
  EXPECT_GT(s2.io.msg_spill_read, 0u);
  EXPECT_EQ(s2.io.eblock_edge_bytes, 0u);
  EXPECT_EQ(s2.io.vrr_bytes, 0u);
  EXPECT_GT(s2.net_bytes, 0u);
  EXPECT_GT(s2.superstep_seconds, 0.0);
  EXPECT_EQ(s2.mode, EngineMode::kPush);
  // Every vertex responds every superstep for PageRank.
  EXPECT_EQ(s2.responding_vertices, g.num_vertices);
  EXPECT_EQ(s2.messages_produced, g.num_edges());
}

TEST(EngineMetrics, BPullIoBreakdownPopulated) {
  const auto g = TestGraph();
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kBPull;
  cfg.max_supersteps = 4;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto& s2 = engine.stats().supersteps[2];
  EXPECT_GT(s2.io.vt_bytes, 0u);
  EXPECT_GT(s2.io.eblock_edge_bytes, 0u);
  EXPECT_GT(s2.io.fragment_aux_bytes, 0u);
  EXPECT_GT(s2.io.vrr_bytes, 0u);
  EXPECT_EQ(s2.io.msg_spill_write, 0u);  // b-pull never spills messages
  EXPECT_EQ(s2.io.msg_spill_read, 0u);
  EXPECT_EQ(s2.io.adj_edge_bytes, 0u);
  EXPECT_GT(s2.messages_combined, 0u);  // combiner active
  EXPECT_EQ(s2.mode, EngineMode::kBPull);
}

TEST(EngineMetrics, MemoryResidentZeroIoTime) {
  const auto g = TestGraph();
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kPush;
  cfg.memory_resident = true;
  cfg.msg_buffer_per_node = UINT64_MAX;
  cfg.max_supersteps = 4;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  for (const auto& s : engine.stats().supersteps) {
    EXPECT_EQ(s.io_seconds, 0.0);
    EXPECT_EQ(s.messages_spilled, 0u);
  }
}

TEST(EngineMetrics, LoadMetricsAndTheorem2Bound) {
  const auto g = TestGraph();
  JobConfig cfg = BaseConfig();
  cfg.mode = EngineMode::kHybrid;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  const LoadMetrics& lm = engine.stats().load;
  EXPECT_GT(lm.bytes_written, 0u);
  EXPECT_GT(lm.adj_bytes, 0u);
  EXPECT_GT(lm.veblock_bytes, 0u);
  EXPECT_GT(lm.vblock_bytes, 0u);
  EXPECT_GT(lm.total_fragments, 0u);
  EXPECT_LE(lm.total_fragments, g.num_edges());
  // B_perp = max(0, |E|/2 - f).
  const uint64_t half = g.num_edges() / 2;
  EXPECT_EQ(lm.b_lower_bound,
            half > lm.total_fragments ? half - lm.total_fragments : 0);
}

}  // namespace
}  // namespace hybridgraph
