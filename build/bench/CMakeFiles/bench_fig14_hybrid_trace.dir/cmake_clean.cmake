file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hybrid_trace.dir/bench_fig14_hybrid_trace.cc.o"
  "CMakeFiles/bench_fig14_hybrid_trace.dir/bench_fig14_hybrid_trace.cc.o.d"
  "bench_fig14_hybrid_trace"
  "bench_fig14_hybrid_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hybrid_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
