#include "hybridgraph/any_engine.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "algos/bfs.h"
#include "algos/lpa.h"
#include "algos/pagerank.h"
#include "algos/pagerank_delta.h"
#include "algos/sa.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/engine.h"
#include "core/vpull_engine.h"
#include "net/message_codec.h"

namespace hybridgraph {

namespace {

VertexId MaxOutDegreeVertex(const EdgeListGraph& graph) {
  const auto degrees = graph.OutDegrees();
  return static_cast<VertexId>(
      std::max_element(degrees.begin(), degrees.end()) - degrees.begin());
}

/// Owns the actual engine. `Prepare` patches the program once the graph is
/// known (source defaulting); `ToDouble` projects a value for
/// GatherValuesAsDouble().
template <typename P, typename Prepare, typename ToDouble>
class TypedEngine final : public AnyEngine {
 public:
  using Value = typename P::Value;

  TypedEngine(JobConfig config, P program, Prepare prepare, ToDouble to_double)
      : config_(std::move(config)),
        program_(std::move(program)),
        prepare_(std::move(prepare)),
        to_double_(std::move(to_double)) {}

  Status Load(const EdgeListGraph& graph) override {
    prepare_(program_, graph);
    if (config_.mode == EngineMode::kVPull) {
      vpull_ = std::make_unique<VPullEngine<P>>(config_, program_);
      return vpull_->Load(graph);
    }
    engine_ = std::make_unique<Engine<P>>(config_, program_);
    return engine_->Load(graph);
  }

  Status Run() override {
    if (vpull_) return vpull_->Run();
    if (engine_) return engine_->Run();
    return Status::FailedPrecondition("Load() first");
  }

  Status RunSuperstep() override {
    if (vpull_) return vpull_->RunSuperstep();
    if (engine_) return engine_->RunSuperstep();
    return Status::FailedPrecondition("Load() first");
  }

  bool converged() const override {
    if (vpull_) return vpull_->converged();
    if (engine_) return engine_->converged();
    return false;
  }

  const JobStats& stats() const override {
    if (vpull_) return vpull_->stats();
    if (engine_) return engine_->stats();
    return empty_stats_;
  }

  size_t value_size() const override { return P::kValueSize; }

  Result<std::vector<uint8_t>> GatherValuesRaw() override {
    HG_ASSIGN_OR_RETURN(std::vector<Value> values, Gather());
    std::vector<uint8_t> out(values.size() * P::kValueSize);
    for (size_t i = 0; i < values.size(); ++i) {
      PodCodec<Value>::Encode(values[i], out.data() + i * P::kValueSize);
    }
    return out;
  }

  Result<std::vector<double>> GatherValuesAsDouble() override {
    HG_ASSIGN_OR_RETURN(std::vector<Value> values, Gather());
    std::vector<double> out;
    out.reserve(values.size());
    for (const Value& v : values) out.push_back(to_double_(v));
    return out;
  }

 private:
  Result<std::vector<Value>> Gather() {
    if (vpull_) return vpull_->GatherValues();
    if (engine_) return engine_->GatherValues();
    return Status::FailedPrecondition("Load() first");
  }

  JobConfig config_;
  P program_;
  Prepare prepare_;
  ToDouble to_double_;
  std::unique_ptr<Engine<P>> engine_;
  std::unique_ptr<VPullEngine<P>> vpull_;
  JobStats empty_stats_;
};

template <typename P, typename Prepare, typename ToDouble>
std::unique_ptr<AnyEngine> MakeTyped(const JobConfig& config, P program,
                                     Prepare prepare, ToDouble to_double) {
  return std::make_unique<TypedEngine<P, Prepare, ToDouble>>(
      config, std::move(program), std::move(prepare), std::move(to_double));
}

constexpr auto kNoPrepare = [](auto&, const EdgeListGraph&) {};
constexpr auto kNumericValue = [](const auto& v) {
  return static_cast<double>(v);
};

/// For traversal algorithms with a `source` member: take it from the spec,
/// or defer to the max-out-degree vertex once the graph is known (the
/// paper's source-selection convention).
template <typename P>
std::unique_ptr<AnyEngine> MakeSourced(const JobConfig& config,
                                       const AlgoSpec& spec) {
  P program;
  if (spec.source_set) program.source = spec.source;
  const bool pick_source = !spec.source_set;
  return MakeTyped(
      config, program,
      [pick_source](P& p, const EdgeListGraph& g) {
        if (pick_source) p.source = MaxOutDegreeVertex(g);
      },
      kNumericValue);
}

/// The one registry of bundled algorithms: name, kind, and how to build a
/// type-erased engine for it. Adding an algorithm means adding one row —
/// AlgoKindName, ParseAlgoKind and MakeEngine all walk this table.
struct AlgoEntry {
  AlgoKind kind;
  const char* name;
  std::unique_ptr<AnyEngine> (*make)(const JobConfig&, const AlgoSpec&);
};

const AlgoEntry kAlgoTable[] = {
    {AlgoKind::kPageRank, "pagerank",
     [](const JobConfig& c, const AlgoSpec&) {
       return MakeTyped(c, PageRankProgram{}, kNoPrepare, kNumericValue);
     }},
    {AlgoKind::kPageRankDelta, "pagerank-delta",
     [](const JobConfig& c, const AlgoSpec&) {
       return MakeTyped(c, PageRankDeltaProgram{}, kNoPrepare, kNumericValue);
     }},
    {AlgoKind::kSssp, "sssp", &MakeSourced<SsspProgram>},
    {AlgoKind::kBfs, "bfs", &MakeSourced<BfsProgram>},
    {AlgoKind::kLpa, "lpa",
     [](const JobConfig& c, const AlgoSpec&) {
       return MakeTyped(c, LpaProgram{}, kNoPrepare, kNumericValue);
     }},
    {AlgoKind::kSa, "sa",
     [](const JobConfig& c, const AlgoSpec& spec) {
       SaProgram program;
       if (spec.sa_source_stride != 0) {
         program.source_stride = spec.sa_source_stride;
       }
       return MakeTyped(c, program, kNoPrepare, [](const SaProgram::Value& v) {
         return static_cast<double>(std::popcount(v.adopted));
       });
     }},
    {AlgoKind::kWcc, "wcc",
     [](const JobConfig& c, const AlgoSpec&) {
       return MakeTyped(c, WccProgram{}, kNoPrepare, kNumericValue);
     }},
};

}  // namespace

const char* AlgoKindName(AlgoKind kind) {
  for (const AlgoEntry& entry : kAlgoTable) {
    if (entry.kind == kind) return entry.name;
  }
  return "?";
}

Result<AlgoKind> ParseAlgoKind(const std::string& name) {
  for (const AlgoEntry& entry : kAlgoTable) {
    if (name == entry.name) return entry.kind;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

Result<std::unique_ptr<AnyEngine>> MakeEngine(const JobConfig& config,
                                              const AlgoSpec& spec) {
  for (const AlgoEntry& entry : kAlgoTable) {
    if (entry.kind == spec.kind) return entry.make(config, spec);
  }
  return Status::InvalidArgument("unknown AlgoKind");
}

}  // namespace hybridgraph
