// Cross-engine agreement for the non-combinable workloads (LPA, SA): the
// GAS v-pull baseline must produce the same results as the BSP engines, and
// paper-shape regressions that pin the headline comparisons at test scale.
#include <gtest/gtest.h>

#include "algos/lpa.h"
#include "algos/sa.h"
#include "algos/sssp.h"
#include "core/engine.h"
#include "core/vpull_engine.h"
#include "graph/generator.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph(uint64_t seed = 61) {
  return GeneratePowerLaw(700, 8.0, 0.8, seed);
}

JobConfig Base(EngineMode mode) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 150;
  cfg.max_supersteps = 5;
  return cfg;
}

TEST(CrossEngine, LpaAgreesAcrossAllEngines) {
  const auto g = TestGraph();
  std::vector<uint32_t> reference;
  {
    Engine<LpaProgram> engine(Base(EngineMode::kPush), LpaProgram{});
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    reference = engine.GatherValues().ValueOrDie();
  }
  {
    Engine<LpaProgram> engine(Base(EngineMode::kBPull), LpaProgram{});
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_EQ(engine.GatherValues().ValueOrDie(), reference);
  }
  {
    VPullEngine<LpaProgram> engine(Base(EngineMode::kVPull), LpaProgram{});
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_EQ(engine.GatherValues().ValueOrDie(), reference);
  }
}

TEST(CrossEngine, SaAgreesAcrossAllEngines) {
  const auto g = TestGraph(62);
  SaProgram program;
  program.source_stride = 70;
  JobConfig cfg = Base(EngineMode::kPush);
  cfg.max_supersteps = 25;

  std::vector<SaProgram::Value> reference;
  {
    Engine<SaProgram> engine(cfg, program);
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    reference = engine.GatherValues().ValueOrDie();
  }
  {
    JobConfig c2 = cfg;
    c2.mode = EngineMode::kHybrid;
    Engine<SaProgram> engine(c2, program);
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    const auto got = engine.GatherValues().ValueOrDie();
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_EQ(got[v].adopted, reference[v].adopted) << v;
    }
  }
  {
    JobConfig c2 = cfg;
    c2.mode = EngineMode::kVPull;
    VPullEngine<SaProgram> engine(c2, program);
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    const auto got = engine.GatherValues().ValueOrDie();
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_EQ(got[v].adopted, reference[v].adopted) << v;
    }
  }
}

TEST(CrossEngine, HybridNeverFarWorseThanBestFixedMode) {
  // The paper's core promise: hybrid "always tries to choose a profitable
  // one" — allow a modest margin for switch overheads and prediction lag.
  for (uint64_t seed : {91u, 92u, 93u}) {
    const auto g = GeneratePowerLaw(900, 9.0, 0.85, seed,
                                    /*locality=*/0.3 + 0.2 * (seed % 3));
    SsspProgram program;
    program.source = 5;
    auto modeled = [&](EngineMode mode) {
      JobConfig cfg = Base(mode);
      cfg.max_supersteps = 120;
      Engine<SsspProgram> engine(cfg, program);
      EXPECT_TRUE(engine.Load(g).ok());
      EXPECT_TRUE(engine.Run().ok());
      return engine.stats().modeled_seconds;
    };
    const double push = modeled(EngineMode::kPush);
    const double bpull = modeled(EngineMode::kBPull);
    const double hybrid = modeled(EngineMode::kHybrid);
    // Prediction lag and switch overheads cost something on these tiny
    // graphs; the bound guards against picking the wrong mode outright
    // (which costs 5-30x, see message_flow_test).
    EXPECT_LT(hybrid, std::min(push, bpull) * 2.5) << "seed " << seed;
  }
}

TEST(CrossEngine, DeterministicAcrossRepeatedRuns) {
  const auto g = TestGraph(63);
  auto run = [&] {
    JobConfig cfg = Base(EngineMode::kHybrid);
    cfg.max_supersteps = 30;
    SsspProgram program;
    program.source = 9;
    Engine<SsspProgram> engine(cfg, program);
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return std::make_pair(engine.GatherValues().ValueOrDie(),
                          engine.stats().modeled_seconds);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace hybridgraph
