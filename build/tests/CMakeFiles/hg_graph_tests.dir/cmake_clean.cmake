file(REMOVE_RECURSE
  "CMakeFiles/hg_graph_tests.dir/graph/edge_list_test.cc.o"
  "CMakeFiles/hg_graph_tests.dir/graph/edge_list_test.cc.o.d"
  "CMakeFiles/hg_graph_tests.dir/graph/generator_test.cc.o"
  "CMakeFiles/hg_graph_tests.dir/graph/generator_test.cc.o.d"
  "CMakeFiles/hg_graph_tests.dir/graph/partition_test.cc.o"
  "CMakeFiles/hg_graph_tests.dir/graph/partition_test.cc.o.d"
  "CMakeFiles/hg_graph_tests.dir/graph/stores_test.cc.o"
  "CMakeFiles/hg_graph_tests.dir/graph/stores_test.cc.o.d"
  "hg_graph_tests"
  "hg_graph_tests.pdb"
  "hg_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
