#include "util/thread_pool.h"

#include <exception>

#include "util/string_util.h"

namespace hybridgraph {

namespace {

uint32_t ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

Status RunBody(const std::function<Status(uint32_t)>& fn, uint32_t index) {
  try {
    return fn(index);
  } catch (const std::exception& e) {
    return Status::Internal(
        StringFormat("task %u threw: %s", index, e.what()));
  } catch (...) {
    return Status::Internal(StringFormat("task %u threw", index));
  }
}

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(ResolveThreads(num_threads)) {
  workers_.reserve(num_threads_);
  for (uint32_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(uint32_t n,
                               const std::function<Status(uint32_t)>& fn) {
  if (n == 0) return Status::OK();
  if (num_threads_ == 1 || n == 1) {
    // Inline keeps the 1-thread pool bit-for-bit equivalent to a plain
    // sequential loop (no cross-thread hops on the default path).
    for (uint32_t i = 0; i < n; ++i) {
      HG_RETURN_IF_ERROR(RunBody(fn, i));
    }
    return Status::OK();
  }

  struct BarrierState {
    std::mutex mutex;
    std::condition_variable done_cv;
    uint32_t remaining;
    std::vector<Status> results;
  };
  BarrierState state;
  state.remaining = n;
  state.results.assign(n, Status::OK());

  for (uint32_t i = 0; i < n; ++i) {
    Submit([&state, &fn, i] {
      Status s = RunBody(fn, i);
      std::lock_guard<std::mutex> lock(state.mutex);
      state.results[i] = std::move(s);
      if (--state.remaining == 0) state.done_cv.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done_cv.wait(lock, [&state] { return state.remaining == 0; });
  for (uint32_t i = 0; i < n; ++i) {
    if (!state.results[i].ok()) return state.results[i];
  }
  return Status::OK();
}

}  // namespace hybridgraph
