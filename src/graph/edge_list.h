// In-memory edge list container with text/binary I/O and degree statistics.
// This is the loader-side representation; engines convert it into the
// disk-resident AdjacencyStore / VE-BLOCK layouts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace hybridgraph {

/// \brief A directed graph as a flat list of edges.
struct EdgeListGraph {
  uint64_t num_vertices = 0;
  std::vector<RawEdge> edges;

  uint64_t num_edges() const { return edges.size(); }
  double AverageDegree() const {
    return num_vertices ? static_cast<double>(edges.size()) / num_vertices : 0.0;
  }

  /// Out-degree per vertex.
  std::vector<uint32_t> OutDegrees() const;
  /// In-degree per vertex.
  std::vector<uint32_t> InDegrees() const;
  /// Largest out-degree (skew indicator).
  uint32_t MaxOutDegree() const;

  /// Sorts edges by (src, dst); duplicate edges are kept.
  void SortBySource();

  /// Validates that all endpoints are < num_vertices.
  Status Validate() const;
};

/// Parses "src dst [weight]" per line; '#' or '%' lines are comments.
/// num_vertices is 1 + max endpoint unless a "# vertices: N" header is given.
Result<EdgeListGraph> ParseEdgeListText(const std::string& text);

/// Renders the text format (with a "# vertices: N" header).
std::string WriteEdgeListText(const EdgeListGraph& graph);

/// Compact binary format round-trip (magic + counts + fixed records).
std::vector<uint8_t> EncodeEdgeListBinary(const EdgeListGraph& graph);
Result<EdgeListGraph> DecodeEdgeListBinary(const std::vector<uint8_t>& bytes);

/// Reads either format from a file (binary if the magic matches).
Result<EdgeListGraph> LoadEdgeListFile(const std::string& path);
Status SaveEdgeListFile(const EdgeListGraph& graph, const std::string& path,
                        bool binary);

}  // namespace hybridgraph
