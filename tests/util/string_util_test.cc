#include "util/string_util.h"

#include <gtest/gtest.h>

namespace hybridgraph {
namespace {

TEST(HumanBytes, Units) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024), "5.00 MB");
  EXPECT_EQ(HumanBytes(3ull * 1024 * 1024 * 1024), "3.00 GB");
}

TEST(HumanSeconds, Ranges) {
  EXPECT_EQ(HumanSeconds(2.5), "2.50s");
  EXPECT_EQ(HumanSeconds(0.012), "12.0ms");
  EXPECT_EQ(HumanSeconds(3e-5), "30.0us");
}

TEST(SplitString, KeepsEmptyFields) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(TrimString, Whitespace) {
  EXPECT_EQ(TrimString("  hi  "), "hi");
  EXPECT_EQ(TrimString("\t\n x \r "), "x");
  EXPECT_EQ(TrimString("   "), "");
  EXPECT_EQ(TrimString("abc"), "abc");
}

TEST(StringFormat, Formats) {
  EXPECT_EQ(StringFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringFormat("%.2f", 3.14159), "3.14");
  // Long outputs are not truncated.
  const std::string big = StringFormat("%0512d", 7);
  EXPECT_EQ(big.size(), 512u);
}

}  // namespace
}  // namespace hybridgraph
