// Web ranking: PageRank over the uk web-graph model, the workload class the
// paper's introduction motivates (billion-node web graphs that cannot hold
// their messages in memory). Shows the memory-sufficient vs memory-limited
// regimes and prints the top-ranked pages.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "hybridgraph/hybridgraph.h"

using namespace hybridgraph;

int main() {
  DatasetSpec spec = FindDataset("uk").ValueOrDie();
  spec.num_vertices /= 4;  // keep the example snappy
  const EdgeListGraph graph = BuildDataset(spec);
  std::printf("uk web model: %llu vertices, %llu edges\n\n",
              (unsigned long long)graph.num_vertices,
              (unsigned long long)graph.num_edges());

  // Limited memory: the interesting regime. B_i is ~2% of the per-superstep
  // message volume, like the paper's uk runs.
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 30;
  cfg.msg_buffer_per_node = graph.num_edges() / 50 / cfg.num_nodes;
  cfg.max_supersteps = 10;

  auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
  HG_CHECK(engine->Load(graph).ok());
  HG_CHECK(engine->Run().ok());

  const JobStats& stats = engine->stats();
  std::printf("ran %d supersteps, modeled %.3fs (wall %.3fs)\n",
              stats.supersteps_run, stats.modeled_seconds, stats.wall_seconds);
  std::printf("I/O %s, network %s, peak modeled memory %s\n",
              HumanBytes(stats.TotalIoBytes()).c_str(),
              HumanBytes(stats.TotalNetBytes()).c_str(),
              HumanBytes(stats.MaxMemoryHighwater()).c_str());
  std::printf("engine chose: ");
  for (const auto& s : stats.supersteps) {
    std::printf("%s ", EngineModeName(s.mode));
  }
  std::printf("\n\n");

  const auto ranks = engine->GatherValuesAsDouble().ValueOrDie();
  std::vector<VertexId> order(ranks.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](VertexId a, VertexId b) { return ranks[a] > ranks[b]; });
  std::printf("top 10 pages by rank:\n");
  for (int i = 0; i < 10; ++i) {
    std::printf("  #%2d vertex %7u  rank %.6g\n", i + 1, order[i],
                ranks[order[i]]);
  }
  return 0;
}
