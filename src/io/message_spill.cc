#include "io/message_spill.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

MessageSpill::MessageSpill(StorageService* storage, std::string key_prefix,
                           size_t payload_size)
    : storage_(storage),
      key_prefix_(std::move(key_prefix)),
      payload_size_(payload_size) {}

std::string MessageSpill::RunKey(size_t i) const {
  return StringFormat("%s/run-%06zu", key_prefix_.c_str(), i);
}

Status MessageSpill::SpillRun(std::vector<SpillEntry> entries) {
  if (entries.empty()) return Status::OK();
  HG_FAIL_POINT("spill.flush");
  std::stable_sort(entries.begin(), entries.end(),
                   [](const SpillEntry& a, const SpillEntry& b) { return a.dst < b.dst; });
  Buffer buf;
  Encoder enc(&buf);
  enc.PutFixed64(entries.size());
  for (const auto& e : entries) {
    HG_DCHECK(e.payload.size() == payload_size_)
        << "payload size mismatch: " << e.payload.size() << " vs " << payload_size_;
    enc.PutFixed32(e.dst);
    enc.PutRaw(e.payload.data(), e.payload.size());
  }
  // Random write: destination-vertex order has no locality on disk.
  HG_RETURN_IF_ERROR(
      storage_->Write(RunKey(num_runs_), buf.AsSlice(), IoClass::kRandWrite));
  HG_RETURN_IF_ERROR(storage_->Sync(RunKey(num_runs_)));
  ++num_runs_;
  num_messages_ += entries.size();
  bytes_written_ += buf.size();
  return Status::OK();
}

namespace {

/// Decoded view of one run during the merge.
struct RunCursor {
  std::vector<uint8_t> data;
  size_t pos = 0;
  uint64_t remaining = 0;
  uint32_t dst = 0;

  Status Init(size_t payload_size) {
    Decoder dec{Slice(data)};
    HG_RETURN_IF_ERROR(dec.GetFixed64(&remaining));
    pos = dec.position();
    return Advance(payload_size);
  }

  // Loads the next head destination; remaining counts entries not yet emitted.
  Status Advance(size_t payload_size) {
    if (remaining == 0) return Status::OK();
    Decoder dec(Slice(data.data() + pos, data.size() - pos));
    HG_RETURN_IF_ERROR(dec.GetFixed32(&dst));
    pos += dec.position();
    (void)payload_size;
    return Status::OK();
  }
};

}  // namespace

Status MessageSpill::MergeReadAll(std::vector<SpillEntry>* out) {
  if (num_runs_ == 0) return Status::OK();
  std::vector<RunCursor> runs(num_runs_);
  for (size_t i = 0; i < num_runs_; ++i) {
    // Runs were written contiguously; merge scans them sequentially.
    HG_RETURN_IF_ERROR(
        storage_->Read(RunKey(i), &runs[i].data, IoClass::kSeqRead));
    HG_RETURN_IF_ERROR(runs[i].Init(payload_size_));
  }

  using HeapItem = std::pair<uint32_t, size_t>;  // (dst, run index)
  auto cmp = [](const HeapItem& a, const HeapItem& b) { return a.first > b.first; };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(cmp);
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].remaining > 0) heap.emplace(runs[i].dst, i);
  }

  out->reserve(out->size() + num_messages_);
  while (!heap.empty()) {
    auto [dst, ri] = heap.top();
    heap.pop();
    RunCursor& rc = runs[ri];
    SpillEntry e;
    e.dst = dst;
    e.payload.assign(rc.data.begin() + static_cast<ptrdiff_t>(rc.pos),
                     rc.data.begin() + static_cast<ptrdiff_t>(rc.pos + payload_size_));
    rc.pos += payload_size_;
    --rc.remaining;
    out->push_back(std::move(e));
    if (rc.remaining > 0) {
      HG_RETURN_IF_ERROR(rc.Advance(payload_size_));
      heap.emplace(rc.dst, ri);
    }
  }
  return Status::OK();
}

Status MessageSpill::Clear() {
  for (size_t i = 0; i < num_runs_; ++i) {
    HG_RETURN_IF_ERROR(storage_->Delete(RunKey(i)));
  }
  num_runs_ = 0;
  num_messages_ = 0;
  bytes_written_ = 0;
  return Status::OK();
}

}  // namespace hybridgraph
