// Figure 8 — runtime with LIMITED memory on the local (HDD) cluster:
// 4 algorithms x all 6 datasets x 5 systems; graph data on disk and messages
// spill beyond B_i.
#include "bench_runtime_grid.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_fig08_mem_limited_hdd",
              "Fig 8: runtime with limited memory (local cluster, HDD)");
  GridOptions opts;
  opts.datasets = {"livej", "wiki", "orkut", "twi", "fri", "uk"};
  opts.make_config = [](const DatasetSpec& spec, double shrink) {
    return LimitedMemoryConfig(spec, shrink, DiskProfile::Hdd());
  };
  RunGrid(opts);
  std::printf(
      "\nexpected shape: push slowest (message spill random writes), pull\n"
      "slow (random vertex reads), b-pull/hybrid fastest (paper reports up\n"
      "to 35x vs push, 16x vs pushM); on twi SSSP hybrid beats b-pull by\n"
      "switching (37.6%% in the paper).\n");
  return 0;
}
