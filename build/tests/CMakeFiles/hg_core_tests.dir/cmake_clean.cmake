file(REMOVE_RECURSE
  "CMakeFiles/hg_core_tests.dir/core/aggregator_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/aggregator_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/cross_engine_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/cross_engine_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/edge_cases_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/edge_cases_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/engine_sweep_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/engine_sweep_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/engine_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/engine_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/hybrid_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/hybrid_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/loading_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/loading_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/lru_cache_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/lru_cache_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/message_flow_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/message_flow_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/metrics_csv_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/metrics_csv_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/recovery_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/recovery_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/core/vpull_engine_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/core/vpull_engine_test.cc.o.d"
  "CMakeFiles/hg_core_tests.dir/smoke_test.cc.o"
  "CMakeFiles/hg_core_tests.dir/smoke_test.cc.o.d"
  "hg_core_tests"
  "hg_core_tests.pdb"
  "hg_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
