file(REMOVE_RECURSE
  "CMakeFiles/hg_core.dir/metrics_csv.cc.o"
  "CMakeFiles/hg_core.dir/metrics_csv.cc.o.d"
  "CMakeFiles/hg_core.dir/run_metrics.cc.o"
  "CMakeFiles/hg_core.dir/run_metrics.cc.o.d"
  "libhg_core.a"
  "libhg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
