#include "net/message_codec.h"

#include "util/logging.h"

namespace hybridgraph {

void FlatBatchCodec::Encode(
    const std::vector<std::pair<uint32_t, std::vector<uint8_t>>>& msgs,
    size_t payload_size, Buffer* out) {
  Encoder enc(out);
  enc.PutVarint64(msgs.size());
  for (const auto& [dst, payload] : msgs) {
    HG_DCHECK(payload.size() == payload_size);
    enc.PutFixed32(dst);
    enc.PutRaw(payload.data(), payload.size());
  }
}

Status FlatBatchCodec::Decode(
    Slice data, size_t payload_size,
    std::vector<std::pair<uint32_t, std::vector<uint8_t>>>* out) {
  Decoder dec(data);
  uint64_t count;
  HG_RETURN_IF_ERROR(dec.GetVarint64(&count));
  // A record is at least 4 bytes (dst) + payload; a count that cannot fit in
  // the remaining input is corrupt — reject it up front rather than letting
  // an attacker-controlled varint drive a giant reserve().
  if (count > dec.remaining() / (4 + payload_size)) {
    return Status::Corruption("batch count exceeds input size");
  }
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t dst;
    Slice payload;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&dst));
    HG_RETURN_IF_ERROR(dec.GetRaw(payload_size, &payload));
    out->emplace_back(dst, std::vector<uint8_t>(payload.data(),
                                                payload.data() + payload.size()));
  }
  return Status::OK();
}

void GroupedBatchCodec::Encode(const std::vector<Group>& groups,
                               size_t payload_size, Buffer* out) {
  Encoder enc(out);
  enc.PutVarint64(groups.size());
  for (const auto& g : groups) {
    enc.PutFixed32(g.dst);
    enc.PutVarint64(g.payloads.size());
    for (const auto& p : g.payloads) {
      HG_DCHECK(p.size() == payload_size);
      enc.PutRaw(p.data(), p.size());
    }
  }
}

Status GroupedBatchCodec::Decode(Slice data, size_t payload_size,
                                 std::vector<Group>* out) {
  Decoder dec(data);
  uint64_t num_groups;
  HG_RETURN_IF_ERROR(dec.GetVarint64(&num_groups));
  // A group is at least 5 bytes (dst + count varint); clamp like
  // FlatBatchCodec so corrupt counts error out instead of driving reserve().
  if (num_groups > dec.remaining() / 5) {
    return Status::Corruption("group count exceeds input size");
  }
  out->reserve(out->size() + num_groups);
  for (uint64_t i = 0; i < num_groups; ++i) {
    Group g;
    uint64_t n;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&g.dst));
    HG_RETURN_IF_ERROR(dec.GetVarint64(&n));
    if (payload_size > 0 && n > dec.remaining() / payload_size) {
      return Status::Corruption("group payload count exceeds input size");
    }
    g.payloads.reserve(n);
    for (uint64_t j = 0; j < n; ++j) {
      Slice payload;
      HG_RETURN_IF_ERROR(dec.GetRaw(payload_size, &payload));
      g.payloads.emplace_back(payload.data(), payload.data() + payload.size());
    }
    out->push_back(std::move(g));
  }
  return Status::OK();
}

uint64_t GroupedBatchCodec::EncodedSize(const std::vector<Group>& groups,
                                        size_t payload_size) {
  uint64_t size = VarintLength(groups.size());
  for (const auto& g : groups) {
    size += 4 + VarintLength(g.payloads.size()) + g.payloads.size() * payload_size;
  }
  return size;
}

}  // namespace hybridgraph
