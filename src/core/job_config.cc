#include "core/job_config.h"

#include "util/failpoint.h"
#include "util/string_util.h"

namespace hybridgraph {

Status JobConfig::Validate(const JobFacts& facts) const {
  if (num_nodes == 0) {
    return Status::InvalidArgument("num_nodes must be at least 1");
  }
  if (num_threads > 1024) {
    return Status::InvalidArgument(StringFormat(
        "num_threads = %u is not a plausible thread count (max 1024, 0 = "
        "hardware concurrency)",
        num_threads));
  }
  if (sending_threshold_bytes == 0) {
    return Status::InvalidArgument(
        "sending_threshold_bytes must be nonzero (every staged message would "
        "flush as its own network package)");
  }
  if (msg_buffer_per_node == 0) {
    return Status::InvalidArgument(
        "msg_buffer_per_node must be nonzero (B_i appears as a divisor in "
        "the Vblock derivation, Eq. 5/6)");
  }
  if (io.spill_merge_buffer_bytes == 0) {
    return Status::InvalidArgument(
        "io.spill_merge_buffer_bytes must be nonzero (the streaming spill "
        "merge needs at least one record of buffer per run)");
  }
  if (io.prefetch_depth > 0 && io.prefetch_budget_bytes == 0) {
    return Status::InvalidArgument(
        "io.prefetch_budget_bytes must be nonzero when prefetching is on "
        "(io.prefetch_depth > 0)");
  }
  if (io.prefetch_depth > 0 && io.prefetch_threads == 0) {
    return Status::InvalidArgument(
        "io.prefetch_threads must be nonzero when prefetching is on "
        "(io.prefetch_depth > 0)");
  }
  if (io.prefetch_threads > 256) {
    return Status::InvalidArgument(StringFormat(
        "io.prefetch_threads = %u is not a plausible I/O pool width (max 256)",
        io.prefetch_threads));
  }
  if (max_supersteps < 0) {
    return Status::InvalidArgument("max_supersteps must be >= 0");
  }
  if (!(adaptive_alpha > 0) || !(adaptive_beta > 0)) {
    return Status::InvalidArgument(
        "adaptive_alpha and adaptive_beta must be positive (α weights pushed "
        "bytes, β gates pull density and the frontier bitmap threshold)");
  }
  if (switch_interval < 1) {
    return Status::InvalidArgument("switch_interval must be >= 1");
  }
  if (facts.vpull_engine) {
    if (mode != EngineMode::kVPull) {
      return Status::InvalidArgument(
          "VPullEngine only runs EngineMode::kVPull");
    }
  } else {
    if (mode == EngineMode::kVPull) {
      return Status::InvalidArgument("use VPullEngine for EngineMode::kVPull");
    }
    if (mode == EngineMode::kPushM && !facts.combinable_messages) {
      return Status::InvalidArgument(
          "pushM (online computing) requires combinable messages");
    }
  }
  if (facts.num_vertices < num_nodes) {
    return Status::InvalidArgument("fewer vertices than nodes");
  }
  if (tcp_max_retries > 100) {
    return Status::InvalidArgument(StringFormat(
        "tcp_max_retries = %u is not a plausible retry bound (max 100)",
        tcp_max_retries));
  }
  if (tcp_backoff_max_us < tcp_backoff_base_us) {
    return Status::InvalidArgument(
        "tcp_backoff_max_us must be >= tcp_backoff_base_us");
  }
  if (tcp_max_frame_bytes < 1024) {
    return Status::InvalidArgument(
        "tcp_max_frame_bytes must be at least 1KiB (a frame header plus a "
        "minimal batch)");
  }
  if (!failpoints.empty()) {
    std::vector<std::pair<std::string, FailPointSpec>> parsed;
    Status st = ParseFailPointList(failpoints, &parsed);
    if (!st.ok()) {
      return Status::InvalidArgument("bad failpoints config: " + st.message());
    }
  }
  return Status::OK();
}

}  // namespace hybridgraph
