// Frontier tracking and per-Eblock-cell direction choice for the adaptive
// MessagePath (Beamer-style direction-optimizing traversal ported onto the
// paper's Vblock/Eblock grid).
//
// Two pieces, both deliberately non-template so they compile once:
//
//  - Frontier: one node's set of responding local vertices, kept in a dual
//    representation — a compact queue while sparse, a bitmap once the
//    population crosses the density threshold n/β — with automatic
//    conversion (fail-point "frontier.convert"). The queue makes sparse
//    supersteps O(|frontier|) to stat and iterate; the bitmap makes dense
//    supersteps O(1) per membership test.
//
//  - DecideCell: a PURE function from per-cell static layout quantities
//    (the in-memory EblockIndex + X_j metadata + adjacency block sizes) and
//    the source Vblock's responding count to a push/pull choice for one
//    Eblock grid cell g_ji. Purity is the consistency contract: production
//    (superstep t, from the fresh respond flags) and pull serving
//    (superstep t+1, from the same flags after promotion) recompute the
//    identical grid, so no decision state needs to be stored, promoted or
//    checkpointed — restore rebuilds it from the serialized flags for free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace hybridgraph {

/// Beamer α/β heuristic knobs at Eblock-cell granularity (classic
/// direction-optimizing BFS defaults: α=15, β=18).
struct AdaptivePolicy {
  /// Push-cost inflation: one pushed message risks a buffer-overflow spill
  /// (random write + read-back + sort-merge CPU), so its modeled bytes are
  /// weighted α× against pull's sequential Eblock scan.
  double alpha = 15.0;
  /// Density gate: a cell is pull-eligible only when the source Vblock's
  /// responding count satisfies active * β >= |b_j|. Below that the frontier
  /// is sparse and push touches far fewer edges than a full Eblock scan.
  double beta = 18.0;
};

/// Per-Vblock frontier statistics (active counts + scout degree sums).
struct VblockFrontierStats {
  uint32_t num_vertices = 0;
  uint32_t active = 0;        ///< responding vertices in the Vblock
  uint64_t scout_degree = 0;  ///< sum of their out-degrees
};

/// Inputs of one cell decision. Everything except `active` is static layout
/// metadata available without I/O.
struct CellCostInputs {
  uint32_t active = 0;           ///< responding vertices in source Vblock b_j
  uint32_t vertices = 0;         ///< |b_j|
  uint64_t cell_edges = 0;       ///< edges in Eblock g_ji
  uint64_t cell_edge_bytes = 0;  ///< its IO(E) payload bytes
  uint64_t cell_aux_bytes = 0;   ///< its IO(F) fragment-aux bytes
  uint32_t cell_fragments = 0;   ///< fragments in g_ji
  uint64_t row_edges = 0;        ///< X_j.out_degree (all out-edges of b_j)
  uint64_t adj_row_bytes = 0;    ///< adjacency block bytes of b_j (push read)
  uint32_t msg_record_size = 0;  ///< wire/spill record: 4 + message size
  uint32_t value_record_size = 0;  ///< vertex record: 8 + value size
};

enum class CellDecision : uint8_t {
  kSkip = 0,  ///< empty cell or non-responding source Vblock: nothing moves
  kPush = 1,  ///< ship at production time along adjacency out-edges
  kPull = 2,  ///< defer to next superstep's Pull-Respond over the Eblock
};

/// One cell's direction. Pull iff the source Vblock is dense
/// (active * β >= vertices) AND the modeled pull bytes for the cell
/// (Eblock scan + responding-fraction of the fragment V_rr reads) undercut
/// the α-weighted push bytes (frontier share of the cell's messages plus the
/// cell's share of the adjacency block read).
CellDecision DecideCell(const CellCostInputs& in, const AdaptivePolicy& policy);

/// 'P' push, 'B' pull (b-pull), '.' skip — the grid alphabet of the decision
/// log and the golden tests.
char CellDecisionChar(CellDecision d);

/// One node's responding-vertex set in dual queue/bitmap representation.
/// Local indices must be added at most once (the path adds from the respond
/// flags, which are per-vertex booleans); duplicate adds are ignored.
class Frontier {
 public:
  enum class Rep : uint8_t { kQueue = 0, kBitmap = 1 };

  /// Empties the frontier over `n` local vertices and recomputes the
  /// conversion threshold from `policy` (queue rep until it is crossed).
  void Reset(uint32_t n, const AdaptivePolicy& policy);

  /// Adds local vertex `li` with out-degree `degree`. Crossing the density
  /// threshold attempts a queue->bitmap conversion; a conversion failure
  /// (fail-point "frontier.convert") is returned but leaves the frontier
  /// valid — and containing `li` — in the old representation, so the caller
  /// may propagate or ignore it (the next Add retries).
  Status Add(uint32_t li, uint32_t degree);

  /// Converts to `rep` (no-op when already there). Content is preserved
  /// exactly; the fail-point "frontier.convert" can inject a failure, which
  /// leaves the frontier untouched in the old representation.
  Status ConvertTo(Rep rep);

  /// Shrinks back to the queue representation when at or below the density
  /// threshold (no-op otherwise).
  Status Compact();

  bool Has(uint32_t li) const;
  uint32_t count() const { return count_; }
  uint64_t scout_degree() const { return scout_degree_; }
  uint32_t num_vertices() const { return n_; }
  Rep rep() const { return rep_; }
  /// Queue->bitmap conversion happens when count() exceeds this.
  uint32_t to_bitmap_threshold() const { return to_bitmap_; }
  /// Bytes held by the current representation (for modeled memory).
  uint64_t ApproxBytes() const {
    return rep_ == Rep::kBitmap ? n_ : static_cast<uint64_t>(count_) * 4;
  }

  /// Appends the active local indices in ascending order (both reps).
  void AppendTo(std::vector<uint32_t>* out) const;

 private:
  uint32_t n_ = 0;
  uint32_t to_bitmap_ = 1;
  Rep rep_ = Rep::kQueue;
  uint32_t count_ = 0;
  uint64_t scout_degree_ = 0;
  std::vector<uint32_t> queue_;   // valid when rep_ == kQueue
  std::vector<uint8_t> bitmap_;   // valid when rep_ == kBitmap
};

}  // namespace hybridgraph
