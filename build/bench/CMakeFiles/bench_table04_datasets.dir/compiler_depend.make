# Empty compiler generated dependencies file for bench_table04_datasets.
# This may be replaced when dependencies are built.
