// Spill-path micro-benchmark: seeded run building plus the streaming k-way
// merge at several per-run buffer sizes, against the materializing wrapper
// as a baseline. Emits a machine-readable BENCH_spill.json record (path
// overridable via argv[1]) so CI can track merge throughput and the
// bounded-memory guarantee (peak resident entries) over time.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "io/message_spill.h"
#include "io/storage.h"
#include "util/rng.h"

using namespace hybridgraph;

namespace {

constexpr size_t kPayload = 8;  // PageRank-sized message
constexpr size_t kRuns = 16;
constexpr size_t kEntriesPerRun = 50000;
constexpr uint64_t kSeed = 20160626;  // SIGMOD'16

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<SpillEntry> MakeRun(Rng* rng) {
  std::vector<SpillEntry> run;
  run.reserve(kEntriesPerRun);
  for (size_t i = 0; i < kEntriesPerRun; ++i) {
    SpillEntry e;
    e.dst = static_cast<uint32_t>(rng->NextBounded(100000));
    e.payload.resize(kPayload);
    for (auto& b : e.payload) b = static_cast<uint8_t>(rng->NextBounded(256));
    run.push_back(std::move(e));
  }
  return run;
}

struct MergeSample {
  uint64_t buffer_bytes_per_run;
  double msgs_per_s;
  uint64_t buffer_bytes_total;
  uint64_t peak_resident_entries;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_spill.json";
  const uint64_t total = kRuns * kEntriesPerRun;
  std::printf("bench_spill: %zu runs x %zu entries (%zu-byte payloads)\n",
              kRuns, kEntriesPerRun, kPayload);

  MemStorage storage;
  MessageSpill spill(&storage, "bench/spill", kPayload);
  Rng rng(kSeed);
  const auto spill_t0 = std::chrono::steady_clock::now();
  for (size_t r = 0; r < kRuns; ++r) {
    Status st = spill.SpillRun(MakeRun(&rng));
    if (!st.ok()) {
      std::fprintf(stderr, "spill failed: %s\n", st.message().c_str());
      return 1;
    }
  }
  const double spill_s = SecondsSince(spill_t0);
  const double spill_rate = static_cast<double>(total) / spill_s;
  std::printf("  spill: %.0f msgs/s (%.3fs, %llu bytes written)\n", spill_rate,
              spill_s, static_cast<unsigned long long>(spill.bytes_written()));

  std::vector<MergeSample> samples;
  for (uint64_t buf : {uint64_t{4 + kPayload}, uint64_t{4096},
                       MessageSpill::kDefaultMergeBufferBytes}) {
    const auto t0 = std::chrono::steady_clock::now();
    auto res = spill.NewMergeIterator(buf);
    if (!res.ok()) {
      std::fprintf(stderr, "merge open failed: %s\n",
                   res.status().message().c_str());
      return 1;
    }
    auto it = std::move(res).value();
    uint64_t emitted = 0;
    while (it->Valid()) {
      ++emitted;
      Status st = it->Next();
      if (!st.ok()) {
        std::fprintf(stderr, "merge failed: %s\n", st.message().c_str());
        return 1;
      }
    }
    const double merge_s = SecondsSince(t0);
    if (emitted != total) {
      std::fprintf(stderr, "merge emitted %llu of %llu entries\n",
                   static_cast<unsigned long long>(emitted),
                   static_cast<unsigned long long>(total));
      return 1;
    }
    MergeSample s;
    s.buffer_bytes_per_run = buf;
    s.msgs_per_s = static_cast<double>(emitted) / merge_s;
    s.buffer_bytes_total = it->buffer_bytes();
    s.peak_resident_entries = it->peak_resident_entries();
    samples.push_back(s);
    std::printf(
        "  streaming merge (buf %7llu B/run): %.0f msgs/s, "
        "%llu buffer bytes, peak %llu resident of %llu entries\n",
        static_cast<unsigned long long>(buf), s.msgs_per_s,
        static_cast<unsigned long long>(s.buffer_bytes_total),
        static_cast<unsigned long long>(s.peak_resident_entries),
        static_cast<unsigned long long>(total));
  }

  const auto mat_t0 = std::chrono::steady_clock::now();
  std::vector<SpillEntry> all;
  Status st = spill.MergeReadAll(&all);
  if (!st.ok() || all.size() != total) {
    std::fprintf(stderr, "materializing merge failed\n");
    return 1;
  }
  const double mat_s = SecondsSince(mat_t0);
  const double mat_rate = static_cast<double>(total) / mat_s;
  std::printf("  materializing merge baseline: %.0f msgs/s\n", mat_rate);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"spill\",\n"
               "  \"seed\": %llu,\n"
               "  \"runs\": %zu,\n"
               "  \"entries_per_run\": %zu,\n"
               "  \"payload_bytes\": %zu,\n"
               "  \"spill_msgs_per_s\": %.0f,\n"
               "  \"materializing_msgs_per_s\": %.0f,\n"
               "  \"streaming\": [\n",
               static_cast<unsigned long long>(kSeed), kRuns, kEntriesPerRun,
               kPayload, spill_rate, mat_rate);
  for (size_t i = 0; i < samples.size(); ++i) {
    const MergeSample& s = samples[i];
    std::fprintf(f,
                 "    {\"buffer_bytes_per_run\": %llu, \"msgs_per_s\": %.0f, "
                 "\"buffer_bytes_total\": %llu, "
                 "\"peak_resident_entries\": %llu}%s\n",
                 static_cast<unsigned long long>(s.buffer_bytes_per_run),
                 s.msgs_per_s,
                 static_cast<unsigned long long>(s.buffer_bytes_total),
                 static_cast<unsigned long long>(s.peak_resident_entries),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
