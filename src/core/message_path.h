// The MessagePath strategy interface: one implementation per execution mode
// (push, pushM, b-pull, vpull). The mode-agnostic SuperstepDriver owns the
// BSP loop (Phase A barrier, Phase B barrier, aggregator exchange, promotion,
// convergence) and calls these hooks, so the shared pipeline contains no
// per-mode branches — a path IS the mode.
//
// The paper's four operators map onto the hooks as:
//   load()    -> Consume()/AfterConsume()   (Phase A: collect messages)
//   update()  -> UpdateProduce()            (Phase B vertex updates)
//   pushRes() -> ProduceVblock()/FinishProduce()/AfterProduce()
//   pullRes() -> ServePull()                (Algorithm 2, b-pull only)
#pragma once

#include <cstdint>
#include <vector>

#include "core/job_config.h"
#include "core/node_state.h"
#include "core/program.h"
#include "core/run_metrics.h"
#include "graph/edge_list.h"
#include "util/buffer.h"
#include "util/status.h"

namespace hybridgraph {

/// Raw-byte shims over the Program's typed operations, instantiated once per
/// Program and handed to the compiled containers as plain function pointers.
/// PodCodec encode/decode is a memcpy round trip, so combining through the
/// shim is bit-identical to combining typed values.
template <typename P>
struct ProgramOps {
  using Message = typename P::Message;

  /// acc = Combine(acc, other); no-op for non-combinable programs.
  static void CombineRaw(uint8_t* acc, const uint8_t* other) {
    if constexpr (P::kCombinable) {
      const Message a = PodCodec<Message>::Decode(acc);
      const Message b = PodCodec<Message>::Decode(other);
      PodCodec<Message>::Encode(P::Combine(a, b), acc);
    } else {
      (void)acc;
      (void)other;
    }
  }

  static PendingSet::CombineRawFn PendingCombiner() {
    return P::kCombinable ? &CombineRaw : nullptr;
  }
};

/// Strategy for one execution mode. The driver invokes Consume/AfterConsume
/// on the CONSUMER path (the previous superstep's production mode) and
/// UpdateProduce/AfterProduce/accounting/Promote on the PRODUCER path, one
/// call per simulated node, fanned out across the thread pool.
template <typename P>
class MessagePath {
 public:
  virtual ~MessagePath() = default;

  /// The mode this path implements (its registry slot).
  virtual EngineMode mode() const = 0;

  /// Load-time construction of whatever this path needs (stores, caches,
  /// handler state). Block paths share one topology via the driver.
  virtual Status Build(const EdgeListGraph& graph) = 0;

  // Capabilities, consulted at Build time and by the driver's generic loop.
  virtual bool needs_adjacency() const { return false; }
  virtual bool needs_veblocks() const { return false; }
  /// False for paths (vpull) that predate aggregator support.
  virtual bool supports_aggregator() const { return true; }
  /// Whether EvaluateSwitch/Q_t metrics apply when this path produced.
  virtual bool hybrid_metrics() const { return true; }
  /// Whether this path answers Pull-Requests (implements ServePull). The
  /// driver routes an incoming pull to the previous superstep's producer
  /// path when it serves pulls, else to the b-pull registry slot.
  virtual bool serves_pulls() const { return false; }

  /// Resets per-superstep counters and meter snapshots (producer side).
  virtual void BeginAccounting() = 0;

  /// Phase A for node i: collect the messages addressed to its vertices.
  /// Paths gate superstep 0 internally.
  virtual Status Consume(uint32_t i) = 0;
  /// Post-Phase-A barrier drain for node i (staged accounting / payloads).
  virtual Status AfterConsume(uint32_t i) = 0;

  /// Phase B for node i: update vertices, produce messages.
  virtual Status UpdateProduce(uint32_t i) = 0;
  /// Post-Phase-B barrier drain for node i (staged push batches etc.).
  virtual Status AfterProduce(uint32_t i) = 0;

  /// Compute/communication overlap hook, run per node right after
  /// AfterProduce(i) in the same drain task (traced as "drain.overlap"):
  /// the path schedules background readahead for the data its NEXT
  /// superstep's consume/serve phase will touch, so the reads overlap the
  /// remaining drain work of the other nodes and the aggregator exchange.
  /// Must not touch modeled counters — prefetch reads are metered at the
  /// consumption point, never here.
  virtual Status WarmupNextSuperstep(uint32_t i) {
    (void)i;
    return Status::OK();
  }

  /// Folds node counters into this superstep's metrics record.
  virtual SuperstepMetrics EndAccounting(EngineMode produce_mode,
                                         bool switched) = 0;

  /// Barrier promotion: expose next-superstep state, return cluster totals
  /// for the convergence check.
  virtual void Promote(uint64_t* responding_total,
                       uint64_t* inflight_messages) = 0;

  // Hooks invoked from the driver's shared Vblock update loop (block paths
  // only). Push production overrides these; pull production leaves them as
  // no-ops (nothing is sent until next superstep's pulls).
  virtual Status ProduceVblock(NodeState& node, uint32_t vb,
                               const std::vector<uint8_t>& respond_in_vb,
                               const std::vector<uint8_t>& block_values) {
    (void)node;
    (void)vb;
    (void)respond_in_vb;
    (void)block_values;
    return Status::OK();
  }
  virtual Status FinishProduce(NodeState& node) {
    (void)node;
    return Status::OK();
  }

  /// Algorithm 2 (Pull-Respond), served from the requester's thread. Only
  /// the b-pull path implements this.
  virtual Status ServePull(NodeState& node, NodeId requester, Slice payload,
                           Buffer* response) {
    (void)node;
    (void)requester;
    (void)payload;
    (void)response;
    return Status::Unimplemented("this path does not serve pulls");
  }
};

}  // namespace hybridgraph
