# Empty compiler generated dependencies file for bench_fig08_mem_limited_hdd.
# This may be replaced when dependencies are built.
