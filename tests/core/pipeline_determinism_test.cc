// Overlapped-I/O determinism: turning the prefetch pipeline on must leave
// every MODELED per-superstep metric — I/O bytes per class, page-cache
// evolution, message counts, modeled times, the hybrid switch trace — and the
// gathered vertex values bit-identical to the prefetch-off run, at any thread
// count, in every engine mode. Only the prefetch_* observability counters and
// wall clocks may differ.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "core/engine.h"
#include "graph/generator.h"
#include "hybridgraph/any_engine.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph() { return GeneratePowerLaw(800, 8.0, 0.75, 321); }

// Every modeled field of SuperstepMetrics; deliberately EXCLUDES the
// prefetch_* counters and wall clocks, which are measured, not modeled.
void ExpectSameModeledMetrics(const SuperstepMetrics& a,
                              const SuperstepMetrics& b,
                              const std::string& where) {
  EXPECT_EQ(a.superstep, b.superstep) << where;
  EXPECT_EQ(a.mode, b.mode) << where;
  EXPECT_EQ(a.switched, b.switched) << where;
  EXPECT_EQ(a.active_vertices, b.active_vertices) << where;
  EXPECT_EQ(a.responding_vertices, b.responding_vertices) << where;
  EXPECT_EQ(a.messages_produced, b.messages_produced) << where;
  EXPECT_EQ(a.messages_on_wire, b.messages_on_wire) << where;
  EXPECT_EQ(a.messages_combined, b.messages_combined) << where;
  EXPECT_EQ(a.messages_spilled, b.messages_spilled) << where;
  EXPECT_EQ(a.io.vt_bytes, b.io.vt_bytes) << where;
  EXPECT_EQ(a.io.adj_edge_bytes, b.io.adj_edge_bytes) << where;
  EXPECT_EQ(a.io.msg_spill_write, b.io.msg_spill_write) << where;
  EXPECT_EQ(a.io.msg_spill_read, b.io.msg_spill_read) << where;
  EXPECT_EQ(a.io.eblock_edge_bytes, b.io.eblock_edge_bytes) << where;
  EXPECT_EQ(a.io.fragment_aux_bytes, b.io.fragment_aux_bytes) << where;
  EXPECT_EQ(a.io.vrr_bytes, b.io.vrr_bytes) << where;
  EXPECT_EQ(a.io.other_bytes, b.io.other_bytes) << where;
  EXPECT_EQ(a.net_bytes, b.net_bytes) << where;
  EXPECT_EQ(a.net_frames, b.net_frames) << where;
  EXPECT_EQ(a.cpu_seconds, b.cpu_seconds) << where;
  EXPECT_EQ(a.io_seconds, b.io_seconds) << where;
  EXPECT_EQ(a.net_seconds, b.net_seconds) << where;
  EXPECT_EQ(a.blocking_seconds, b.blocking_seconds) << where;
  EXPECT_EQ(a.superstep_seconds, b.superstep_seconds) << where;
  EXPECT_EQ(a.memory_highwater_bytes, b.memory_highwater_bytes) << where;
  EXPECT_EQ(a.spill_merge_buffer_bytes, b.spill_merge_buffer_bytes) << where;
  EXPECT_EQ(a.spill_peak_resident, b.spill_peak_resident) << where;
  EXPECT_EQ(a.spill_combined, b.spill_combined) << where;
  EXPECT_EQ(a.aggregate, b.aggregate) << where;
  EXPECT_EQ(a.q_t, b.q_t) << where;
  EXPECT_EQ(a.predicted_mco, b.predicted_mco) << where;
  EXPECT_EQ(a.predicted_cio_push, b.predicted_cio_push) << where;
  EXPECT_EQ(a.predicted_cio_bpull, b.predicted_cio_bpull) << where;
  EXPECT_EQ(a.actual_mco, b.actual_mco) << where;
  EXPECT_EQ(a.actual_cio_push, b.actual_cio_push) << where;
  EXPECT_EQ(a.actual_cio_bpull, b.actual_cio_bpull) << where;
}

void ExpectSameModeledRun(const JobStats& a, const JobStats& b,
                          const std::string& tag) {
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size()) << tag;
  for (size_t t = 0; t < a.supersteps.size(); ++t) {
    ExpectSameModeledMetrics(a.supersteps[t], b.supersteps[t],
                             tag + " superstep " + std::to_string(t));
  }
  EXPECT_EQ(a.converged, b.converged) << tag;
}

std::string ParamName(EngineMode mode) {
  std::string name(EngineModeName(mode));
  std::erase_if(name, [](char c) { return !std::isalnum(uint8_t(c)); });
  return name;
}

JobConfig BaseConfig(EngineMode mode, uint32_t num_threads, bool prefetch) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 6;
  cfg.num_threads = num_threads;
  cfg.msg_buffer_per_node = 500;  // push spills: merge warmup has work to do
  cfg.vpull_vertex_cache = 120;   // bounded LRU: eviction order matters
  cfg.max_supersteps = 5;
  cfg.io.prefetch_depth = prefetch ? 4 : 0;
  return cfg;
}

uint64_t TotalScheduled(const JobStats& stats) {
  uint64_t n = 0;
  for (const auto& s : stats.supersteps) n += s.prefetch_scheduled;
  return n;
}

uint64_t TotalHits(const JobStats& stats) {
  uint64_t n = 0;
  for (const auto& s : stats.supersteps) n += s.prefetch_hits;
  return n;
}

class PipelineDeterminismTest : public ::testing::TestWithParam<EngineMode> {};

TEST_P(PipelineDeterminismTest, PrefetchOnOffBitIdenticalAcrossThreadCounts) {
  const EdgeListGraph graph = TestGraph();
  auto run = [&](uint32_t threads, bool prefetch)
      -> std::pair<std::vector<uint8_t>, JobStats> {
    auto engine =
        MakeEngine(BaseConfig(GetParam(), threads, prefetch), AlgoKind::kPageRank)
            .ValueOrDie();
    EXPECT_TRUE(engine->Load(graph).ok());
    EXPECT_TRUE(engine->Run().ok());
    return {engine->GatherValuesRaw().ValueOrDie(), engine->stats()};
  };
  const auto [base_values, base_stats] = run(1, false);
  const auto [on1_values, on1_stats] = run(1, true);
  const auto [on8_values, on8_stats] = run(8, true);
  EXPECT_EQ(base_values, on1_values);
  EXPECT_EQ(base_values, on8_values);
  const std::string mode(EngineModeName(GetParam()));
  ExpectSameModeledRun(base_stats, on1_stats, mode + " off-vs-on(t1)");
  ExpectSameModeledRun(base_stats, on8_stats, mode + " off-vs-on(t8)");
  // The pipeline actually engaged (scheduled + served staged reads), and the
  // prefetch-off run reported no pipeline activity at all.
  EXPECT_GT(TotalScheduled(on1_stats), 0u) << mode;
  EXPECT_GT(TotalHits(on1_stats), 0u) << mode;
  EXPECT_EQ(TotalScheduled(base_stats), 0u) << mode;
}

INSTANTIATE_TEST_SUITE_P(AllModes, PipelineDeterminismTest,
                         ::testing::Values(EngineMode::kPush,
                                           EngineMode::kPushM,
                                           EngineMode::kBPull,
                                           EngineMode::kHybrid,
                                           EngineMode::kVPull),
                         [](const auto& info) { return ParamName(info.param); });

TEST(PipelineSwitchTest, HybridSwitchSequenceUnchangedByPrefetch) {
  // SSSP under hybrid is the sharpest determinism probe: the q_t predictor
  // inputs are themselves modeled metrics, so a single byte of divergent
  // modeled I/O would flip the golden switch trace.
  const EdgeListGraph graph = TestGraph();
  auto run = [&](bool prefetch) {
    JobConfig cfg = BaseConfig(EngineMode::kHybrid, 8, prefetch);
    cfg.max_supersteps = 60;
    auto engine = MakeEngine(cfg, AlgoKind::kSssp).ValueOrDie();
    EXPECT_TRUE(engine->Load(graph).ok());
    EXPECT_TRUE(engine->Run().ok());
    return engine->stats();
  };
  const JobStats off = run(false);
  const JobStats on = run(true);
  ASSERT_EQ(off.supersteps.size(), on.supersteps.size());
  for (size_t t = 0; t < off.supersteps.size(); ++t) {
    EXPECT_EQ(off.supersteps[t].mode, on.supersteps[t].mode) << t;
    EXPECT_EQ(off.supersteps[t].switched, on.supersteps[t].switched) << t;
  }
  ExpectSameModeledRun(off, on, "hybrid-sssp-switch");
}

TEST(PipelineCheckpointTest, RestoreCancelsStagedReadsAndStaysDeterministic) {
  // A checkpoint restore throws away all engine state; staged readahead from
  // the pre-restore world must be cancelled, not consumed. The restored run
  // (prefetch on, 8 threads) must match a prefetch-off sequential restore.
  const EdgeListGraph graph = TestGraph();
  constexpr int kCheckpointAt = 2;
  auto run = [&](uint32_t threads, bool prefetch)
      -> std::pair<std::vector<double>, JobStats> {
    Engine<PageRankProgram> first(
        BaseConfig(EngineMode::kPush, threads, prefetch), PageRankProgram{});
    EXPECT_TRUE(first.Load(graph).ok());
    for (int t = 0; t < kCheckpointAt; ++t) {
      EXPECT_TRUE(first.RunSuperstep().ok());
    }
    Buffer image;
    EXPECT_TRUE(first.WriteCheckpoint(&image).ok());

    Engine<PageRankProgram> second(
        BaseConfig(EngineMode::kPush, threads, prefetch), PageRankProgram{});
    EXPECT_TRUE(second.Load(graph).ok());
    // Run a superstep BEFORE restoring so warmed-up readahead for superstep 1
    // is in flight when the restore rewinds the engine to superstep 2.
    EXPECT_TRUE(second.RunSuperstep().ok());
    EXPECT_TRUE(second.RestoreCheckpoint(image.AsSlice()).ok());
    while (second.superstep() < 5 && !second.converged()) {
      EXPECT_TRUE(second.RunSuperstep().ok());
    }
    return {second.GatherValues().ValueOrDie(), second.stats()};
  };
  const auto [off_values, off_stats] = run(1, false);
  const auto [on_values, on_stats] = run(8, true);
  EXPECT_EQ(off_values, on_values);
  ExpectSameModeledRun(off_stats, on_stats, "restore-prefetch");
}

}  // namespace
}  // namespace hybridgraph
