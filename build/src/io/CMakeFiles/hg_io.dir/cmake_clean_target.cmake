file(REMOVE_RECURSE
  "libhg_io.a"
)
