// Simple single-threaded reference implementations the engines are checked
// against. They mirror the Pregel semantics of the vertex programs (e.g.
// PageRank without dangling-mass redistribution).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <vector>

#include "graph/edge_list.h"

namespace hybridgraph {

/// PageRank as the Pregel program computes it: `supersteps` total supersteps,
/// the first of which only broadcasts the initial 1/n ranks.
inline std::vector<double> ReferencePageRank(const EdgeListGraph& g,
                                             int supersteps,
                                             double damping = 0.85) {
  const uint64_t n = g.num_vertices;
  const auto out = g.OutDegrees();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  for (int step = 1; step < supersteps; ++step) {
    std::vector<double> sum(n, 0.0);
    for (const auto& e : g.edges) {
      sum[e.dst] += rank[e.src] / out[e.src];
    }
    for (uint64_t v = 0; v < n; ++v) {
      rank[v] = (1.0 - damping) / static_cast<double>(n) + damping * sum[v];
    }
  }
  return rank;
}

/// Bellman-Ford SSSP (float math in edge-addition order is not associative,
/// so compare with a small tolerance).
inline std::vector<float> ReferenceSssp(const EdgeListGraph& g,
                                        VertexId source) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> dist(g.num_vertices, kInf);
  dist[source] = 0.0f;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& e : g.edges) {
      if (dist[e.src] == kInf) continue;
      const float cand = dist[e.src] + e.weight;
      if (cand < dist[e.dst]) {
        dist[e.dst] = cand;
        changed = true;
      }
    }
  }
  return dist;
}

/// BFS hop counts.
inline std::vector<uint32_t> ReferenceBfs(const EdgeListGraph& g,
                                          VertexId source) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices);
  for (const auto& e : g.edges) adj[e.src].push_back(e.dst);
  std::vector<uint32_t> depth(g.num_vertices, UINT32_MAX);
  std::queue<VertexId> q;
  depth[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (VertexId v : adj[u]) {
      if (depth[v] == UINT32_MAX) {
        depth[v] = depth[u] + 1;
        q.push(v);
      }
    }
  }
  return depth;
}

/// Synchronous label propagation mirroring LpaProgram: superstep 0 only
/// broadcasts, each later superstep every vertex adopts the in-neighbor label
/// with the highest count (ties toward the smaller label); vertices with no
/// in-messages keep their label. LPA is always-active, so like the engine the
/// reference runs exactly `supersteps` supersteps instead of converging.
inline std::vector<uint32_t> ReferenceLpa(const EdgeListGraph& g,
                                          int supersteps) {
  std::vector<uint32_t> label(g.num_vertices);
  for (uint32_t v = 0; v < g.num_vertices; ++v) label[v] = v;
  for (int step = 1; step < supersteps; ++step) {
    // counts[v] maps label -> multiplicity among v's in-neighbors.
    std::vector<std::map<uint32_t, uint32_t>> counts(g.num_vertices);
    for (const auto& e : g.edges) ++counts[e.dst][label[e.src]];
    std::vector<uint32_t> next = label;
    for (uint32_t v = 0; v < g.num_vertices; ++v) {
      uint32_t best_label = label[v];
      uint32_t best_count = 0;
      for (const auto& [l, c] : counts[v]) {
        if (c > best_count || (c == best_count && l < best_label)) {
          best_label = l;
          best_count = c;
        }
      }
      if (best_count > 0) next[v] = best_label;
    }
    label = std::move(next);
  }
  return label;
}

/// Min-label flooding over directed edges (the WccProgram semantics).
inline std::vector<uint32_t> ReferenceMinLabel(const EdgeListGraph& g) {
  std::vector<uint32_t> label(g.num_vertices);
  for (uint32_t v = 0; v < g.num_vertices; ++v) label[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& e : g.edges) {
      if (label[e.src] < label[e.dst]) {
        label[e.dst] = label[e.src];
        changed = true;
      }
    }
  }
  return label;
}

}  // namespace hybridgraph
