file(REMOVE_RECURSE
  "CMakeFiles/social_influence.dir/social_influence.cpp.o"
  "CMakeFiles/social_influence.dir/social_influence.cpp.o.d"
  "social_influence"
  "social_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
