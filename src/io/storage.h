// Per-node storage service: a keyed blob store through which all
// "disk-resident" data (adjacency blocks, Vblocks, Eblocks, message spills)
// is written and read. Every access declares its IoClass and is metered.
//
// Two backends share the interface: MemStorage keeps blobs in memory (fast,
// used by benches — modeled time comes from the meter, not from real device
// speed) and FileStorage writes real files under a directory (used by tests
// to validate that the layered formats round-trip through a real filesystem).
//
// Read surface: one entry point, Read(key, ReadOptions) -> Result<ReadResult>.
// ReadOptions selects whole-blob vs ranged vs clamped-streaming reads and
// whether the read is metered; ReadResult carries the bytes plus the blob
// size and cache-hit flag the caller would otherwise re-derive. ReadAsync
// runs the same resolve+raw-read on a ThreadPool and hands back an
// AsyncReadHandle (Poll/Take/Cancel) — always unmetered and page-cache
// neutral, so a prefetcher can stage bytes early and charge the model at the
// original consumption point via FinishStagedRead (keeping modeled I/O
// bit-identical whether or not prefetch is enabled).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/disk_model.h"
#include "util/buffer.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace hybridgraph {

class ThreadPool;

/// Sentinel for ReadOptions::length: read from `offset` to the blob end.
inline constexpr uint64_t kReadAll = UINT64_MAX;

/// \brief Parameters of one read. Aggregate — call sites use designated
/// initializers, e.g. `storage->Read(key, {.io_class = IoClass::kSeqRead})`.
struct ReadOptions {
  /// First byte to read.
  uint64_t offset = 0;
  /// Bytes to read; kReadAll = to the end of the blob.
  uint64_t length = kReadAll;
  /// With an explicit `length`, a read past the blob end is clamped instead
  /// of failing OutOfRange (reading at/past the end yields empty data). This
  /// is the streaming-scan mode used by chunk-at-a-time consumers.
  bool allow_short = false;
  /// Advisory: bytes the caller expects to read next (prefetch sizing hint).
  /// Never changes what this read returns or meters.
  uint64_t readahead_hint = 0;
  /// Modeled device class charged for the read.
  IoClass io_class = IoClass::kSeqRead;
  /// When false, the read moves bytes but records nothing in the meter and
  /// leaves the page cache untouched (used by the async prefetch stage;
  /// the model is charged later via FinishStagedRead).
  bool metering = true;
};

/// \brief Outcome of one read.
struct ReadResult {
  std::vector<uint8_t> data;
  /// Total size of the blob at read time (callers use it to detect EOF in
  /// clamped scans without a separate SizeOf round-trip).
  uint64_t blob_size = 0;
  /// True when the metered read was served from the page cache (always false
  /// for unmetered reads).
  bool cache_hit = false;
};

/// \brief Completion handle for ReadAsync. Thread-safe; shared between the
/// submitting thread and the pool worker.
class AsyncReadHandle {
 public:
  /// True once the background read has finished (successfully or not).
  bool Poll() const;
  /// Blocks until completion, then moves the result out. Call at most once.
  Result<ReadResult> Take();
  /// Requests cancellation: a task that has not started yet completes with
  /// FailedPrecondition instead of touching storage. A task already reading
  /// runs to completion (the result is simply discarded by the caller).
  void Cancel();
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Wall-clock span of the background read (steady-clock microseconds;
  /// measured, not modeled). Valid once Poll() is true.
  uint64_t start_us() const { return start_us_; }
  uint64_t end_us() const { return end_us_; }

 private:
  friend class StorageService;
  void Complete(Result<ReadResult> r, uint64_t start_us, uint64_t end_us);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::atomic<bool> cancelled_{false};
  Result<ReadResult> result_{Status::FailedPrecondition("async read pending")};
  uint64_t start_us_ = 0;
  uint64_t end_us_ = 0;
};

/// \brief Abstract keyed blob store with metered access and an optional
/// whole-blob LRU page cache (reads of cached blobs are metered at RAM cost;
/// writes always pay device cost and refresh the cache).
///
/// Thread safety: all blob operations, the meter, and the page cache are
/// guarded by one internal lock, so a storage instance may be accessed from
/// concurrent superstep phases (e.g. pull handlers served for several
/// requesters). Note that meter snapshots are only meaningful when taken
/// while no operations are in flight (the engines snapshot between phases).
class StorageService {
 public:
  virtual ~StorageService() = default;

  /// Turns on the page-cache model with the given capacity (0 disables).
  void EnablePageCache(uint64_t capacity_bytes) {
    page_cache_capacity_ = capacity_bytes;
  }
  uint64_t page_cache_capacity() const { return page_cache_capacity_; }

  /// Replaces the blob at `key` with `data`.
  virtual Status Write(const std::string& key, Slice data, IoClass cls) = 0;

  /// Appends `data` to the blob at `key`, creating it if absent.
  virtual Status Append(const std::string& key, Slice data, IoClass cls) = 0;

  /// The one read entry point: resolves the requested range against the blob
  /// (missing key -> NotFound; explicit length past the end -> OutOfRange, or
  /// clamped when opts.allow_short), reads it, and meters it unless
  /// opts.metering is false. Evaluates the "storage.read" fail-point before
  /// taking the storage lock, so an injected delay stalls only this reader.
  Result<ReadResult> Read(const std::string& key, const ReadOptions& opts = {});

  /// Starts the same resolve+read on `pool` and returns immediately. The
  /// background read is ALWAYS unmetered and page-cache neutral (opts.metering
  /// is ignored); the model is charged at consumption time via
  /// FinishStagedRead. The task evaluates the "io.prefetch" and
  /// "storage.read" fail-points (in that order) before touching storage.
  std::shared_ptr<AsyncReadHandle> ReadAsync(const std::string& key,
                                             ReadOptions opts,
                                             ThreadPool* pool);

  /// Meters a read of `bytes` from blob `key` (total size `blob_size`) as if
  /// it happened now, consulting/updating the page cache. Returns the
  /// cache-hit flag. This is how staged (prefetched) bytes are charged at
  /// their original consumption point, keeping modeled I/O and LRU evolution
  /// bit-identical with prefetch on or off. No fail-point: injection happens
  /// at the data read, never at the accounting step.
  bool FinishStagedRead(const std::string& key, uint64_t blob_size,
                        uint64_t bytes, IoClass cls);

  /// Registers the single observer invoked (under the storage lock) with the
  /// key of every mutation — Write/Append/WriteRange and Delete. The prefetch
  /// pipeline uses it to drop staged reads that no longer match the blob.
  /// Pass nullptr to unregister. The observer must not call back into this
  /// StorageService.
  void SetMutationObserver(std::function<void(const std::string&)> observer);

  /// Overwrites `data.size()` bytes at `offset` within an existing blob.
  virtual Status WriteRange(const std::string& key, uint64_t offset, Slice data,
                            IoClass cls) = 0;

  /// Durability barrier for the blob at `key`: returns once previously
  /// written data is considered persistent. Both backends are synchronous, so
  /// this is a no-op seam — but it is a distinct fail-point site
  /// ("storage.sync"), letting tests model a write that lands and an fsync
  /// that fails (the classic torn-durability case).
  virtual Status Sync(const std::string& key) {
    (void)key;
    return FailPointCheck("storage.sync");
  }

  virtual bool Exists(const std::string& key) const = 0;
  virtual Status Delete(const std::string& key) = 0;
  /// Size in bytes of the blob, or 0 if absent.
  virtual uint64_t SizeOf(const std::string& key) const = 0;
  /// All keys with the given prefix, sorted.
  virtual std::vector<std::string> ListKeys(const std::string& prefix) const = 0;

  DiskMeter* meter() { return &meter_; }
  const DiskMeter& meter() const { return meter_; }

 protected:
  /// Backend data plane: copies `len` bytes of `key` starting at `offset`
  /// into `*out`. Called with the storage lock held and the range already
  /// validated against SizeOf; no metering, no cache, no fail-points.
  virtual Status ReadRawLocked(const std::string& key, uint64_t offset,
                               uint64_t len, std::vector<uint8_t>* out) = 0;

  /// Meters a read (lock held). Returns true when served from the page cache.
  bool MeterRead(const std::string& key, uint64_t blob_size, uint64_t bytes,
                 IoClass cls);
  /// Meters a write, refreshes the blob's cache entry, and notifies the
  /// mutation observer.
  void MeterWrite(const std::string& key, uint64_t blob_size, uint64_t bytes,
                  IoClass cls);
  void DropFromCache(const std::string& key);
  /// Invokes the mutation observer (lock held). Delete impls call this after
  /// DropFromCache; writes are covered via MeterWrite.
  void NotifyMutation(const std::string& key);

  /// Serializes blob data, meter and page-cache state. Recursive because
  /// backend methods compose (FileStorage::Append consults SizeOf()).
  mutable std::recursive_mutex mutex_;
  DiskMeter meter_;

 private:
  /// Resolve + raw read + optional metering, shared by Read and ReadAsync.
  Result<ReadResult> ReadImpl(const std::string& key, const ReadOptions& opts);

  bool CacheLookupOrInsert(const std::string& key, uint64_t blob_size);
  void CacheInsert(const std::string& key, uint64_t blob_size);
  void CacheEvictToFit();

  uint64_t page_cache_capacity_ = 0;
  uint64_t page_cache_used_ = 0;
  std::list<std::pair<std::string, uint64_t>> cache_order_;
  std::map<std::string, std::list<std::pair<std::string, uint64_t>>::iterator>
      cache_map_;
  std::function<void(const std::string&)> mutation_observer_;
};

/// \brief In-memory backend: blobs live in a map; access is metered exactly
/// like the file backend so modeled I/O time is identical.
class MemStorage : public StorageService {
 public:
  Status Write(const std::string& key, Slice data, IoClass cls) override;
  Status Append(const std::string& key, Slice data, IoClass cls) override;
  Status WriteRange(const std::string& key, uint64_t offset, Slice data,
                    IoClass cls) override;
  bool Exists(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  uint64_t SizeOf(const std::string& key) const override;
  std::vector<std::string> ListKeys(const std::string& prefix) const override;

 protected:
  Status ReadRawLocked(const std::string& key, uint64_t offset, uint64_t len,
                       std::vector<uint8_t>* out) override;

 private:
  std::map<std::string, std::vector<uint8_t>> blobs_;
};

/// \brief File-backed backend: each key maps to a file under `root_dir`
/// (slashes in keys become subdirectories).
class FileStorage : public StorageService {
 public:
  /// Creates `root_dir` if needed.
  static Result<std::unique_ptr<FileStorage>> Open(const std::string& root_dir);

  Status Write(const std::string& key, Slice data, IoClass cls) override;
  Status Append(const std::string& key, Slice data, IoClass cls) override;
  Status WriteRange(const std::string& key, uint64_t offset, Slice data,
                    IoClass cls) override;
  bool Exists(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  uint64_t SizeOf(const std::string& key) const override;
  std::vector<std::string> ListKeys(const std::string& prefix) const override;

  const std::string& root_dir() const { return root_dir_; }

 protected:
  Status ReadRawLocked(const std::string& key, uint64_t offset, uint64_t len,
                       std::vector<uint8_t>* out) override;

 private:
  explicit FileStorage(std::string root_dir) : root_dir_(std::move(root_dir)) {}
  std::string PathFor(const std::string& key) const;

  std::string root_dir_;
};

}  // namespace hybridgraph
