#include "core/node_state.h"

#include <algorithm>

namespace hybridgraph {

void MergePullServeCounters(NodeState& node, uint32_t num_nodes) {
  for (uint32_t src = 0; src < num_nodes; ++src) {
    NodeState::PullServe& serve = node.pull_serve[src];
    node.io.eblock_edge_bytes += serve.io.eblock_edge_bytes;
    node.io.fragment_aux_bytes += serve.io.fragment_aux_bytes;
    node.io.vrr_bytes += serve.io.vrr_bytes;
    node.cpu_seconds += serve.cpu_seconds;
    node.msgs_produced += serve.msgs_produced;
    node.msgs_combined += serve.msgs_combined;
    node.msgs_wire += serve.msgs_wire;
    node.flushes += serve.flushes;
    node.mem_highwater = std::max(node.mem_highwater, serve.bs_highwater);
    serve = NodeState::PullServe{};
  }
}

}  // namespace hybridgraph
