#include "graph/generator.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hybridgraph {
namespace {

TEST(GenerateUniform, SizeAndValidity) {
  const auto g = GenerateUniform(1000, 5000, 1);
  EXPECT_EQ(g.num_vertices, 1000u);
  EXPECT_EQ(g.num_edges(), 5000u);
  EXPECT_TRUE(g.Validate().ok());
  for (const auto& e : g.edges) EXPECT_NE(e.src, e.dst);
}

TEST(GeneratePowerLaw, MeanDegreeCalibrated) {
  const auto g = GeneratePowerLaw(5000, 12.0, 0.8, 2);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_NEAR(g.AverageDegree(), 12.0, 1.5);
}

TEST(GeneratePowerLaw, SkewProducesHubs) {
  const auto skewed = GeneratePowerLaw(5000, 10.0, 1.1, 3, /*locality=*/0.0);
  const auto flat = GeneratePowerLaw(5000, 10.0, 0.2, 3, /*locality=*/0.0);
  EXPECT_GT(skewed.MaxOutDegree(), 2 * flat.MaxOutDegree());
}

TEST(GeneratePowerLaw, LocalityKeepsTargetsNearby) {
  const uint64_t n = 10000;
  const auto local = GeneratePowerLaw(n, 10.0, 0.7, 4, /*locality=*/0.9);
  const auto global = GeneratePowerLaw(n, 10.0, 0.7, 4, /*locality=*/0.0);
  auto near_fraction = [n](const EdgeListGraph& g) {
    const uint64_t window = std::max<uint64_t>(8, n / 256) + 1;
    uint64_t near = 0;
    for (const auto& e : g.edges) {
      const uint64_t d = e.src < e.dst ? e.dst - e.src : e.src - e.dst;
      if (std::min(d, n - d) <= window) ++near;
    }
    return static_cast<double>(near) / g.num_edges();
  };
  EXPECT_GT(near_fraction(local), 0.7);
  EXPECT_LT(near_fraction(global), 0.3);
}

TEST(GenerateWebGraph, BackboneGivesLargeDiameter) {
  const auto g = GenerateWebGraph(2000, 6.0, 0.7, 0.85, 5);
  EXPECT_TRUE(g.Validate().ok());
  // Every vertex has the backbone edge u -> u+1.
  std::vector<bool> backbone(2000, false);
  for (const auto& e : g.edges) {
    if (e.dst == (e.src + 1) % 2000) backbone[e.src] = true;
  }
  EXPECT_TRUE(std::all_of(backbone.begin(), backbone.end(),
                          [](bool b) { return b; }));
}

TEST(Generators, DeterministicPerSeed) {
  const auto a = GeneratePowerLaw(500, 8.0, 0.7, 42);
  const auto b = GeneratePowerLaw(500, 8.0, 0.7, 42);
  const auto c = GeneratePowerLaw(500, 8.0, 0.7, 43);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
}

TEST(Datasets, CatalogComplete) {
  const auto& all = PaperDatasets();
  ASSERT_EQ(all.size(), 6u);
  const char* names[] = {"livej", "wiki", "orkut", "twi", "fri", "uk"};
  for (const char* name : names) {
    auto r = FindDataset(name);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_EQ(r->name, name);
  }
  EXPECT_EQ(FindDataset("nope").status().code(), StatusCode::kNotFound);
}

TEST(Datasets, Table4DegreesPreserved) {
  // Spot-check that each scale model matches its Table 4 average degree.
  for (const auto& spec : PaperDatasets()) {
    if (spec.num_vertices > 50000) continue;  // keep the test fast
    const auto g = BuildDataset(spec);
    EXPECT_EQ(g.num_vertices, spec.num_vertices) << spec.name;
    EXPECT_NEAR(g.AverageDegree(), spec.avg_degree, spec.avg_degree * 0.15)
        << spec.name;
    EXPECT_TRUE(g.Validate().ok()) << spec.name;
  }
}

TEST(Datasets, TwiIsMostSkewed) {
  auto twi = FindDataset("twi").ValueOrDie();
  auto fri = FindDataset("fri").ValueOrDie();
  EXPECT_GT(twi.skew, fri.skew);
  EXPECT_LT(twi.locality, fri.locality);
}

}  // namespace
}  // namespace hybridgraph
