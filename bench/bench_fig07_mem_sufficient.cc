// Figure 7 — runtime with SUFFICIENT memory on the local cluster: all data
// memory-resident, 4 algorithms x {livej, wiki, orkut, twi} x 5 systems.
#include "bench_runtime_grid.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_fig07_mem_sufficient",
              "Fig 7: runtime with sufficient memory (local cluster)");
  GridOptions opts;
  opts.datasets = {"livej", "wiki", "orkut", "twi"};
  opts.make_config = [](const DatasetSpec& spec, double shrink) {
    return SufficientMemoryConfig(spec, shrink);
  };
  RunGrid(opts);
  std::printf(
      "\nexpected shape: differences are small (communication/CPU bound);\n"
      "b-pull/hybrid beat push thanks to combining; hybrid always chooses\n"
      "b-pull in this scenario (Sec 6.1).\n");
  return 0;
}
