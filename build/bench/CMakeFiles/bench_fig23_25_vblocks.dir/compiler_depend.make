# Empty compiler generated dependencies file for bench_fig23_25_vblocks.
# This may be replaced when dependencies are built.
