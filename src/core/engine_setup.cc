#include "core/engine_setup.h"

#include <algorithm>
#include <cmath>

#include "net/tcp_transport.h"
#include "util/codec.h"
#include "util/string_util.h"

namespace hybridgraph {

std::unique_ptr<Transport> MakeTransport(const JobConfig& config) {
  if (config.transport == TransportKind::kTcp) {
    TcpTransport::Options topt;
    topt.call_timeout_ms = config.tcp_call_timeout_ms;
    topt.max_retries = config.tcp_max_retries;
    topt.backoff_base_us = config.tcp_backoff_base_us;
    topt.backoff_max_us = config.tcp_backoff_max_us;
    topt.max_frame_bytes = config.tcp_max_frame_bytes;
    topt.seed = config.seed;
    return std::make_unique<TcpTransport>(config.num_nodes, topt);
  }
  return std::make_unique<InProcTransport>(config.num_nodes);
}

Result<std::unique_ptr<StorageService>> MakeNodeStorage(
    const JobConfig& config, const std::string& subdir) {
  std::unique_ptr<StorageService> storage;
  if (config.use_file_storage) {
    HG_ASSIGN_OR_RETURN(storage,
                        FileStorage::Open(config.storage_dir + "/" + subdir));
  } else {
    storage = std::make_unique<MemStorage>();
  }
  storage->EnablePageCache(config.page_cache_bytes_per_node);
  return storage;
}

void FoldCpuScale(JobConfig* config) {
  config->cpu.per_vertex_update_s *= config->cpu.scale;
  config->cpu.per_message_s *= config->cpu.scale;
  config->cpu.per_edge_s *= config->cpu.scale;
  config->cpu.per_spilled_message_s *= config->cpu.scale;
  config->cpu.per_combine_s *= config->cpu.scale;
  config->cpu.scale = 1.0;
}

double ModeledLoadSeconds(const JobConfig& config, uint64_t bytes_written) {
  return static_cast<double>(bytes_written) /
         (config.disk.seq_write_mbps * 1024.0 * 1024.0) / config.num_nodes;
}

uint32_t DeriveVblocks(const JobConfig& config, bool combinable, NodeId node,
                       uint64_t node_in_degree, uint64_t node_vertices) {
  (void)node;
  if (config.vblocks_per_node > 0) return config.vblocks_per_node;
  if (config.msg_buffer_per_node == UINT64_MAX || node_vertices == 0) {
    return 1;  // sufficient memory: as few Vblocks as possible (Sec 4.3)
  }
  const double bi = static_cast<double>(config.msg_buffer_per_node);
  double v;
  if (combinable) {
    // Eq. (5): V_i = (2 n_i + n_i T) / B_i.
    v = (2.0 * node_vertices +
         static_cast<double>(node_vertices) * config.num_nodes) /
        bi;
  } else {
    // Eq. (6): V_i = sum of in-degrees / B_i.
    v = static_cast<double>(node_in_degree) / bi;
  }
  uint32_t vi = static_cast<uint32_t>(std::ceil(v));
  vi = std::max<uint32_t>(1, vi);
  vi = static_cast<uint32_t>(
      std::min<uint64_t>(vi, std::max<uint64_t>(1, node_vertices)));
  return vi;
}

Status BuildBlockTopology(const EdgeListGraph& graph, const JobConfig& config,
                          bool combinable, size_t value_size, size_t msg_size,
                          bool need_adj, bool need_ve,
                          const BlockTopologyHooks& hooks,
                          RangePartition* partition,
                          std::unique_ptr<Transport>* transport,
                          std::vector<NodeState>* nodes, uint64_t total_edges,
                          LoadMetrics* load, BlockTopologyCensus* census) {
  const uint32_t T = config.num_nodes;

  // Node ranges are fixed by an even split; Vblock counts then follow from
  // Eq. (5)/(6), which need per-node degree totals.
  HG_ASSIGN_OR_RETURN(auto coarse,
                      RangePartition::CreateUniform(graph.num_vertices, T, 1));
  const auto in_degrees = graph.InDegrees();
  const auto out_degrees = graph.OutDegrees();
  census->total_in_degree = graph.edges.size();

  std::vector<uint64_t> node_in_degree(T, 0);
  for (VertexId v = 0; v < graph.num_vertices; ++v) {
    node_in_degree[coarse.NodeOf(v)] += in_degrees[v];
  }
  std::vector<uint32_t> vblocks(T);
  for (uint32_t i = 0; i < T; ++i) {
    vblocks[i] = DeriveVblocks(config, combinable, i, node_in_degree[i],
                               coarse.NodeRange(i).size());
  }
  HG_ASSIGN_OR_RETURN(*partition,
                      RangePartition::Create(graph.num_vertices, T, vblocks));

  // Bucket edges by source node.
  std::vector<std::vector<RawEdge>> local_edges(T);
  for (const auto& e : graph.edges) {
    local_edges[partition->NodeOf(e.src)].push_back(e);
  }

  *transport = MakeTransport(config);
  nodes->resize(T);
  HG_RETURN_IF_ERROR((*transport)->Start());

  if (config.metered_loading) {
    // Load-phase shuffle: reader node (DFS split by edge position) routes
    // each edge to the node owning its source vertex. Sinks just absorb the
    // batches — local_edges below is the materialized result.
    for (uint32_t i = 0; i < T; ++i) {
      (*transport)->RegisterHandler(i, RpcMethod::kLoadShuffle,
                                    [](NodeId, Slice, Buffer*) {
                                      return Status::OK();
                                    });
    }
    std::vector<NetMeter> before(T);
    for (uint32_t i = 0; i < T; ++i) before[i] = *(*transport)->meter(i);
    std::vector<std::vector<Buffer>> batches(T);
    for (auto& row : batches) row.resize(T);
    uint64_t edge_idx = 0;
    for (const auto& e : graph.edges) {
      const NodeId reader = static_cast<NodeId>(edge_idx++ % T);
      const NodeId owner = partition->NodeOf(e.src);
      Buffer& buf = batches[reader][owner];
      Encoder enc(&buf);
      enc.PutFixed32(e.src);
      enc.PutFixed32(e.dst);
      enc.PutFloat(e.weight);
      if (buf.size() >= config.sending_threshold_bytes) {
        HG_RETURN_IF_ERROR((*transport)->Post(reader, owner,
                                              RpcMethod::kLoadShuffle,
                                              buf.AsSlice()));
        buf.Clear();
      }
    }
    for (uint32_t i = 0; i < T; ++i) {
      for (uint32_t j = 0; j < T; ++j) {
        if (!batches[i][j].empty()) {
          HG_RETURN_IF_ERROR((*transport)->Post(i, j, RpcMethod::kLoadShuffle,
                                                batches[i][j].AsSlice()));
        }
      }
    }
    double max_seconds = 0;
    for (uint32_t i = 0; i < T; ++i) {
      const NetMeter d = (*transport)->meter(i)->DeltaSince(before[i]);
      load->shuffle_net_bytes += d.bytes_sent;
      max_seconds = std::max(
          max_seconds, config.net.SecondsFor(std::max(d.bytes_sent,
                                                      d.bytes_received)));
    }
    load->shuffle_seconds = max_seconds;
  }

  for (uint32_t i = 0; i < T; ++i) {
    NodeState& node = (*nodes)[i];
    node.id = i;
    node.range = partition->NodeRange(i);
    HG_ASSIGN_OR_RETURN(
        node.storage, MakeNodeStorage(config, "node" + std::to_string(i)));

    HG_ASSIGN_OR_RETURN(
        node.vstore,
        VertexValueStore::Build(node.storage.get(), *partition, i, value_size,
                                out_degrees, hooks.init_value));
    if (need_adj) {
      HG_ASSIGN_OR_RETURN(node.adj,
                          AdjacencyStore::Build(node.storage.get(), *partition,
                                                i, local_edges[i]));
    }
    if (need_ve) {
      HG_ASSIGN_OR_RETURN(
          node.ve, VeBlockStore::Build(node.storage.get(), *partition, i,
                                       local_edges[i], in_degrees));
      census->total_fragments += node.ve->TotalFragments();
    }

    const uint32_t n = node.range.size();
    node.active.assign(n, 0);
    node.responding.assign(n, 0);
    node.responding_next.assign(n, 0);
    node.vblock_res.assign(partition->NumVblocksOf(i), 0);
    node.vblock_res_next.assign(partition->NumVblocksOf(i), 0);
    node.pending.Init(n, msg_size, hooks.pending_combiner);
    node.staging.Init(T, msg_size, hooks.staging_combiner);
    node.push_staged.assign(T, {});
    node.pull_serve.assign(T, {});
    for (VertexId v = node.range.begin; v < node.range.end; ++v) {
      const bool active = hooks.init_active(v);
      node.active[v - node.range.begin] = active ? 1 : 0;
      if (active) {
        census->initial_messages += out_degrees[v];
        ++census->initial_active_count;
      }
    }
    auto spill_a = std::make_unique<MessageSpill>(
        node.storage.get(), StringFormat("node%u/spill/a", i), msg_size);
    auto spill_b = std::make_unique<MessageSpill>(
        node.storage.get(), StringFormat("node%u/spill/b", i), msg_size);
    if (hooks.spill_combiner != nullptr) {
      spill_a->set_combiner(hooks.spill_combiner);
      spill_b->set_combiner(hooks.spill_combiner);
    }
    node.inbox_cur.Init(msg_size, std::move(spill_a));
    node.inbox_next.Init(msg_size, std::move(spill_b));
  }

  // Load metrics + Theorem 2 bound.
  uint64_t bytes_written = 0, adj_bytes = 0, ve_bytes = 0, v_bytes = 0;
  for (auto& node : *nodes) {
    bytes_written += node.storage->meter()->WriteBytes();
    if (node.adj) adj_bytes += node.adj->TotalBytes();
    if (node.ve) ve_bytes += node.ve->TotalBytes();
    v_bytes += node.vstore->TotalBytes();
  }
  load->bytes_written = bytes_written;
  load->adj_bytes = adj_bytes;
  load->veblock_bytes = ve_bytes;
  load->vblock_bytes = v_bytes;
  load->total_fragments = census->total_fragments;
  const uint64_t half_e = total_edges / 2;
  load->b_lower_bound =
      half_e > census->total_fragments ? half_e - census->total_fragments : 0;
  // Modeled load time: sequential write of everything built.
  load->load_seconds =
      ModeledLoadSeconds(config, bytes_written) + load->shuffle_seconds;
  return Status::OK();
}

}  // namespace hybridgraph
