// Table 5 — the five GraphLab PowerGraph (v-pull) scenarios: original
// (memory), ext-mem (extension, all in memory), ext-edge (edges on disk),
// ext-edge-v3 (3M-vertex cache) and ext-edge-v2.5 (2.5M-vertex cache), for
// all four algorithms over the three small graphs.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

struct Scenario {
  const char* name;
  bool memory_resident;
  double cache_millions;  // <0: unlimited
};

}  // namespace

int main() {
  PrintHeader("bench_table05_pull_scenarios",
              "Table 5: modified GraphLab PowerGraph in five scenarios");
  const Scenario scenarios[] = {
      {"original", true, -1},
      {"ext-mem", false, -1},
      {"ext-edge", false, -1},  // edges on disk, vertices all cached
      {"ext-edge-v3", false, 3.0},
      {"ext-edge-v2.5", false, 2.5},
  };
  for (Algo algo : {Algo::kPageRank, Algo::kSssp, Algo::kLpa, Algo::kSa}) {
    std::printf("\n-- %s: modeled runtime (s) --\n", AlgoName(algo));
    std::printf("%-14s %10s %10s %10s\n", "scenario", "livej", "wiki", "orkut");
    for (const auto& sc : scenarios) {
      std::printf("%-14s", sc.name);
      std::fflush(stdout);
      for (const char* name : {"livej", "wiki", "orkut"}) {
        const DatasetSpec spec = FindDataset(name).ValueOrDie();
        const double shrink = ShrinkFor(spec);
        const EdgeListGraph& graph = CachedGraph(spec, shrink);
        JobConfig cfg = LimitedMemoryConfig(spec, shrink);
        cfg.memory_resident = sc.memory_resident;
        if (sc.cache_millions < 0) {
          cfg.vpull_vertex_cache = UINT64_MAX;
        } else {
          cfg.vpull_vertex_cache = static_cast<uint64_t>(
              sc.cache_millions * 1e6 / spec.scale / shrink);
        }
        if (algo == Algo::kSssp) cfg.max_supersteps = 60;
        auto stats = RunAlgo(graph, algo, EngineMode::kVPull, cfg);
        if (!stats.ok()) {
          std::printf(" %10s", "ERR");
          continue;
        }
        std::printf(" %10.4f", stats->modeled_seconds);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nexpected shape (paper Table 5): original ~= ext-mem; ext-edge\n"
      "slightly slower (edges scanned once per superstep); runtime explodes\n"
      "(~100-200x for PageRank) once the vertex cache cannot hold the\n"
      "working set (ext-edge-v2.5).\n");
  return 0;
}
