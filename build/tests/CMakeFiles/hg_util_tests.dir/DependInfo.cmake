
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/buffer_test.cc" "tests/CMakeFiles/hg_util_tests.dir/util/buffer_test.cc.o" "gcc" "tests/CMakeFiles/hg_util_tests.dir/util/buffer_test.cc.o.d"
  "/root/repo/tests/util/codec_test.cc" "tests/CMakeFiles/hg_util_tests.dir/util/codec_test.cc.o" "gcc" "tests/CMakeFiles/hg_util_tests.dir/util/codec_test.cc.o.d"
  "/root/repo/tests/util/metrics_test.cc" "tests/CMakeFiles/hg_util_tests.dir/util/metrics_test.cc.o" "gcc" "tests/CMakeFiles/hg_util_tests.dir/util/metrics_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/hg_util_tests.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/hg_util_tests.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/hg_util_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/hg_util_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/string_util_test.cc" "tests/CMakeFiles/hg_util_tests.dir/util/string_util_test.cc.o" "gcc" "tests/CMakeFiles/hg_util_tests.dir/util/string_util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
