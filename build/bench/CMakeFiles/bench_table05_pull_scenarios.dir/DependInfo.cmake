
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table05_pull_scenarios.cc" "bench/CMakeFiles/bench_table05_pull_scenarios.dir/bench_table05_pull_scenarios.cc.o" "gcc" "bench/CMakeFiles/bench_table05_pull_scenarios.dir/bench_table05_pull_scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hg_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
