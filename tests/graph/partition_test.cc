#include "graph/partition.h"

#include <gtest/gtest.h>

namespace hybridgraph {
namespace {

TEST(RangePartition, EvenSplit) {
  auto r = RangePartition::CreateUniform(100, 4, 1);
  ASSERT_TRUE(r.ok());
  const RangePartition& p = *r;
  EXPECT_EQ(p.num_nodes(), 4u);
  EXPECT_EQ(p.num_vblocks(), 4u);
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(p.NodeRange(n).size(), 25u);
  }
  EXPECT_EQ(p.NodeOf(0), 0u);
  EXPECT_EQ(p.NodeOf(24), 0u);
  EXPECT_EQ(p.NodeOf(25), 1u);
  EXPECT_EQ(p.NodeOf(99), 3u);
}

TEST(RangePartition, UnevenSplitDiffersByAtMostOne) {
  auto r = RangePartition::CreateUniform(103, 4, 3);
  ASSERT_TRUE(r.ok());
  const RangePartition& p = *r;
  uint32_t mn = UINT32_MAX, mx = 0;
  for (uint32_t n = 0; n < 4; ++n) {
    mn = std::min(mn, p.NodeRange(n).size());
    mx = std::max(mx, p.NodeRange(n).size());
  }
  EXPECT_LE(mx - mn, 1u);
  uint32_t vmn = UINT32_MAX, vmx = 0;
  for (uint32_t vb = 0; vb < p.num_vblocks(); ++vb) {
    vmn = std::min(vmn, p.VblockRange(vb).size());
    vmx = std::max(vmx, p.VblockRange(vb).size());
  }
  EXPECT_LE(vmx - vmn, 1u);
}

TEST(RangePartition, PerNodeVblockCounts) {
  auto r = RangePartition::Create(100, 3, {1, 2, 4});
  ASSERT_TRUE(r.ok());
  const RangePartition& p = *r;
  EXPECT_EQ(p.num_vblocks(), 7u);
  EXPECT_EQ(p.NumVblocksOf(0), 1u);
  EXPECT_EQ(p.NumVblocksOf(1), 2u);
  EXPECT_EQ(p.NumVblocksOf(2), 4u);
  EXPECT_EQ(p.FirstVblockOf(0), 0u);
  EXPECT_EQ(p.FirstVblockOf(1), 1u);
  EXPECT_EQ(p.FirstVblockOf(2), 3u);
  EXPECT_EQ(p.LastVblockOf(2), 7u);
}

TEST(RangePartition, InvalidArguments) {
  EXPECT_FALSE(RangePartition::CreateUniform(10, 0, 1).ok());
  EXPECT_FALSE(RangePartition::Create(10, 2, {1}).ok());
  EXPECT_FALSE(RangePartition::Create(10, 2, {1, 0}).ok());
}

class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t, uint32_t>> {
};

TEST_P(PartitionPropertyTest, LookupsConsistentWithRanges) {
  const auto [n, nodes, vblocks] = GetParam();
  auto r = RangePartition::CreateUniform(n, nodes, vblocks);
  ASSERT_TRUE(r.ok());
  const RangePartition& p = *r;

  // Ranges tile the vertex space.
  uint64_t covered = 0;
  for (uint32_t vb = 0; vb < p.num_vblocks(); ++vb) {
    const VertexRange range = p.VblockRange(vb);
    covered += range.size();
    EXPECT_EQ(p.NodeOfVblock(vb), p.NodeOf(range.begin));
    // Vblock ranges nest inside node ranges.
    const VertexRange nr = p.NodeRange(p.NodeOfVblock(vb));
    EXPECT_GE(range.begin, nr.begin);
    EXPECT_LE(range.end, nr.end);
  }
  EXPECT_EQ(covered, n);

  // Point lookups agree with ranges for every vertex.
  for (VertexId v = 0; v < n; ++v) {
    const NodeId node = p.NodeOf(v);
    EXPECT_TRUE(p.NodeRange(node).Contains(v));
    const uint32_t vb = p.VblockOf(v);
    EXPECT_TRUE(p.VblockRange(vb).Contains(v));
    EXPECT_EQ(p.NodeOfVblock(vb), node);
    EXPECT_GE(vb, p.FirstVblockOf(node));
    EXPECT_LT(vb, p.LastVblockOf(node));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionPropertyTest,
    ::testing::Values(std::make_tuple(uint64_t{50}, 1u, 1u),
                      std::make_tuple(uint64_t{50}, 5u, 3u),
                      std::make_tuple(uint64_t{97}, 7u, 4u),
                      std::make_tuple(uint64_t{1000}, 30u, 8u),
                      std::make_tuple(uint64_t{31}, 30u, 1u)));

}  // namespace
}  // namespace hybridgraph
