// Per-superstep and per-job metrics: the observables every paper figure is
// drawn from (modeled runtime, I/O byte breakdown, network traffic, memory
// high-water, blocking time, and the hybrid predictor trace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/job_config.h"

namespace hybridgraph {

/// Byte-level I/O breakdown of one superstep (cluster totals), split along
/// the terms of Eq. (7)/(8).
struct IoBreakdown {
  uint64_t vt_bytes = 0;          ///< IO(V^t): vertex value block read+write
  uint64_t adj_edge_bytes = 0;    ///< IO(E~^t): adjacency blocks read (push)
  uint64_t msg_spill_write = 0;   ///< IO(M_disk) written (push, random)
  uint64_t msg_spill_read = 0;    ///< IO(M_disk) read back (push, sequential)
  uint64_t eblock_edge_bytes = 0; ///< IO(E^t): Eblock edge payload (b-pull)
  uint64_t fragment_aux_bytes = 0;///< IO(F^t): fragment auxiliary data
  uint64_t vrr_bytes = 0;         ///< IO(V_rr): random source-vertex reads
  uint64_t other_bytes = 0;       ///< anything else (v-pull cache traffic...)

  uint64_t Total() const {
    return vt_bytes + adj_edge_bytes + msg_spill_write + msg_spill_read +
           eblock_edge_bytes + fragment_aux_bytes + vrr_bytes + other_bytes;
  }
};

/// Metrics for one superstep.
struct SuperstepMetrics {
  int superstep = 0;
  EngineMode mode = EngineMode::kPush;  ///< production mode this superstep
  bool switched = false;                ///< a mode switch happened here

  uint64_t active_vertices = 0;
  uint64_t responding_vertices = 0;
  uint64_t messages_produced = 0;   ///< M
  uint64_t messages_on_wire = 0;    ///< after concatenation/combining
  uint64_t messages_combined = 0;   ///< M_co: messages removed/shared by concat+combine
  uint64_t messages_spilled = 0;    ///< |M_disk| (push)

  IoBreakdown io;
  uint64_t net_bytes = 0;           ///< frame bytes sent cluster-wide
  uint64_t net_frames = 0;

  /// Modeled time components. Superstep wall time under BSP is the max over
  /// nodes; we record both the max-based superstep time and the components.
  double cpu_seconds = 0;
  double io_seconds = 0;
  double net_seconds = 0;
  double blocking_seconds = 0;      ///< message-exchange blocking (Fig 17)
  double superstep_seconds = 0;     ///< max over nodes of (cpu+io+blocking)

  /// Host wall time per pipeline phase (reference only, like wall_seconds —
  /// these are measured, not modeled, so they vary run to run).
  double phase_consume_wall_s = 0;  ///< Phase A (consume + post-barrier drain)
  double phase_update_wall_s = 0;   ///< Phase B update/produce sweep
  double phase_drain_wall_s = 0;    ///< post-produce drain (staged batches)

  /// Prefetch-pipeline observability (cluster totals; measured, not modeled:
  /// background reads are unmetered and metering happens at the consumption
  /// point, so modeled I/O is bit-identical prefetch on/off).
  uint64_t prefetch_scheduled = 0;  ///< background reads staged
  uint64_t prefetch_hits = 0;       ///< consumption reads served staged
  uint64_t prefetch_misses = 0;     ///< staged-miss + error fallbacks
  uint64_t prefetch_hit_bytes = 0;  ///< bytes served from staged reads

  uint64_t memory_highwater_bytes = 0;

  /// Adaptive mode (kAdaptive) only, zero elsewhere: cluster-wide count of
  /// Eblock grid cells decided push / decided pull this superstep. Modeled
  /// (not measured): folded from per-node counters in node order, so they
  /// are bit-identical at any thread count like every other modeled column.
  uint64_t push_cells = 0;
  uint64_t pull_cells = 0;

  /// Streaming spill-merge observability (push/hybrid only; zero elsewhere).
  uint64_t spill_merge_buffer_bytes = 0;  ///< max over nodes: run buffers held
  uint64_t spill_peak_resident = 0;       ///< max over nodes: peak resident
                                          ///< spill entries during the merge
  uint64_t spill_combined = 0;            ///< sum: combiner reductions in the
                                          ///< spill path (spill + merge time)

  /// Transport fault recovery this superstep (nonzero only on TcpTransport
  /// under injected or real faults; see Transport::fault_counters()).
  uint64_t net_retries = 0;
  uint64_t net_timeouts = 0;
  uint64_t net_reconnects = 0;

  /// Global aggregator value combined at this superstep's barrier (0 when
  /// the program has no aggregator).
  double aggregate = 0;

  /// Hybrid predictor trace (Sec 5.3). q_t is the metric computed this
  /// superstep; predicted_* are the values assumed for superstep t+Δt, and
  /// the actual counterpart lands in that later superstep's record.
  double q_t = 0;
  double predicted_mco = 0;
  double predicted_cio_push = 0;
  double predicted_cio_bpull = 0;
  /// "Actual" comparable values for this superstep (observed when running the
  /// mode, estimated otherwise — same convention as the paper's Figs 11-13).
  double actual_mco = 0;
  double actual_cio_push = 0;
  double actual_cio_bpull = 0;
};

/// Metrics for the graph loading phase (Fig 16).
struct LoadMetrics {
  double load_seconds = 0;          ///< modeled: parse + store build
  uint64_t bytes_written = 0;       ///< bytes written to build the layouts
  uint64_t adj_bytes = 0;
  uint64_t veblock_bytes = 0;
  uint64_t vblock_bytes = 0;
  uint64_t total_fragments = 0;     ///< f (Theorem 2)
  uint64_t b_lower_bound = 0;       ///< B_perp = |E|/2 - f
  /// Partitioning-shuffle traffic during loading (metered_loading only).
  uint64_t shuffle_net_bytes = 0;
  double shuffle_seconds = 0;
};

/// \brief Everything a finished job reports.
struct JobStats {
  std::vector<SuperstepMetrics> supersteps;
  LoadMetrics load;
  int supersteps_run = 0;
  bool converged = false;
  double modeled_seconds = 0;  ///< sum of superstep_seconds
  double wall_seconds = 0;     ///< actual host time (for reference only)

  uint64_t TotalIoBytes() const {
    uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.Total();
    return t;
  }
  uint64_t TotalNetBytes() const {
    uint64_t t = 0;
    for (const auto& s : supersteps) t += s.net_bytes;
    return t;
  }
  uint64_t TotalMessages() const {
    uint64_t t = 0;
    for (const auto& s : supersteps) t += s.messages_produced;
    return t;
  }
  uint64_t MaxMemoryHighwater() const {
    uint64_t t = 0;
    for (const auto& s : supersteps)
      t = t < s.memory_highwater_bytes ? s.memory_highwater_bytes : t;
    return t;
  }

  /// One-line summary for bench output.
  std::string Summary() const;
};

}  // namespace hybridgraph
