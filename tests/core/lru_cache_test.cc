#include "core/lru_cache.h"

#include <gtest/gtest.h>

namespace hybridgraph {
namespace {

TEST(LruCache, GetMissThenHit) {
  LruCache<int, int> cache(2);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, 10, false);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 10);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  std::vector<int> evicted;
  LruCache<int, int> cache(2, [&](const int& k, const int&, bool) {
    evicted.push_back(k);
  });
  cache.Put(1, 10, false);
  cache.Put(2, 20, false);
  (void)cache.Get(1);       // 2 becomes LRU
  cache.Put(3, 30, false);  // evicts 2
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(LruCache, DirtyFlagReachesEviction) {
  std::vector<std::pair<int, bool>> evicted;
  LruCache<int, int> cache(1, [&](const int& k, const int&, bool dirty) {
    evicted.emplace_back(k, dirty);
  });
  cache.Put(1, 10, true);
  cache.Put(2, 20, false);  // evicts dirty 1
  cache.Put(3, 30, false);  // evicts clean 2
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_TRUE(evicted[0].second);
  EXPECT_FALSE(evicted[1].second);
}

TEST(LruCache, OverwriteKeepsDirty) {
  std::vector<bool> dirty_evictions;
  LruCache<int, int> cache(1, [&](const int&, const int&, bool dirty) {
    dirty_evictions.push_back(dirty);
  });
  cache.Put(1, 10, true);
  cache.Put(1, 11, false);  // overwrite must not clear dirty
  EXPECT_EQ(*cache.Get(1), 11);
  cache.Flush();
  ASSERT_EQ(dirty_evictions.size(), 1u);
  EXPECT_TRUE(dirty_evictions[0]);
}

TEST(LruCache, MarkDirty) {
  std::vector<bool> dirty_evictions;
  LruCache<int, int> cache(1, [&](const int&, const int&, bool dirty) {
    dirty_evictions.push_back(dirty);
  });
  cache.Put(1, 10, false);
  cache.MarkDirty(1);
  cache.MarkDirty(42);  // absent: no-op
  cache.Flush();
  ASSERT_EQ(dirty_evictions.size(), 1u);
  EXPECT_TRUE(dirty_evictions[0]);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, ZeroCapacityWritesThrough) {
  std::vector<int> evicted;
  LruCache<int, int> cache(0, [&](const int& k, const int&, bool) {
    evicted.push_back(k);
  });
  cache.Put(1, 10, true);
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(LruCache, HitMissCounters) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1, false);
  (void)cache.Get(1);
  (void)cache.Get(1);
  if (cache.Get(2) == nullptr) cache.RecordMiss();
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace hybridgraph
