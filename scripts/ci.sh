#!/bin/sh
# Single-entry CI gate: plain build + full test suite, then both sanitizer
# sweeps. Everything a change must pass before it merges.
#
#   scripts/ci.sh            # uses build/, build-asan/, build-tsan/
set -eu
cd "$(dirname "$0")/.."

echo "==> header hygiene (each public core header compiles in an isolated TU)"
sh scripts/check_headers.sh

echo "==> plain build + full ctest"
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "==> spill micro-benchmark (BENCH_spill.json)"
./build/bench/bench_spill BENCH_spill.json

echo "==> AddressSanitizer sweep"
sh scripts/check_asan.sh build-asan

echo "==> ThreadSanitizer sweep"
sh scripts/check_tsan.sh build-tsan

echo "CI gate passed: build, tests, ASan and TSan all clean"
