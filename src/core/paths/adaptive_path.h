// The frontier-aware adaptive MessagePath: push or b-pull chosen PER EBLOCK
// GRID CELL each superstep, instead of the paper's global Eq. 11 choice.
//
// Within one superstep of a traversal workload (BFS/SSSP) the frontier is
// dense in some Vblocks and sparse in others: dense source rows want the
// Eblock scan + combining of Pull-Respond, sparse rows want push's
// touch-only-the-frontier adjacency walk. Each Phase B sweep tracks the
// responding set per node in a dual bitmap/queue Frontier, computes the
// per-Vblock stats, and decides every cell g_ji with the Beamer-style α/β
// rule in DecideCell (core/frontier.h):
//
//   - push cells ship immediately along the adjacency out-edges whose
//     destination Vblock was decided push (reusing push's staging /
//     threshold-flush machinery);
//   - pull cells ship nothing — the next superstep's Pull-Requests reach
//     ServePull here, which serves exactly the cells decided pull (reusing
//     b-pull's Eblock scan / V_rr / grouped-combining machinery).
//
// Consumption therefore composes both drains: the inbox merge for what was
// pushed plus one Pull-Request per local Vblock for what was deferred.
// DecideCell is pure in (responding flags, static layout metadata), so the
// serve side recomputes the production grid exactly — no decision state is
// stored, promoted, or checkpointed, and a restored run re-derives the grid
// from the serialized respond flags.
//
// Determinism contract: the per-cell counters and the decision log are
// written only by the owning node's Phase B task and folded in node order on
// the driver thread at EndAccounting, so push_cells/pull_cells (new CSV
// columns) and decision_log() are bit-identical at any thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/frontier.h"
#include "core/paths/block_path_base.h"
#include "graph/adjacency_store.h"
#include "graph/ve_block_store.h"
#include "net/message_codec.h"
#include "util/codec.h"
#include "util/string_util.h"

namespace hybridgraph {

template <typename P>
class AdaptivePath : public BlockPathBase<P> {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  explicit AdaptivePath(SuperstepDriver<P>* driver)
      : BlockPathBase<P>(driver) {}

  EngineMode mode() const override { return EngineMode::kAdaptive; }
  // Both layouts: push cells walk adjacency blocks, pull cells serve
  // Eblocks. The driver ORs these into one shared topology build.
  bool needs_adjacency() const override { return true; }
  bool needs_veblocks() const override { return true; }
  bool serves_pulls() const override { return true; }
  // Q_t prediction assumes single-direction production; per-cell mixing
  // would feed it inconsistent observations.
  bool hybrid_metrics() const override { return false; }

  Status Build(const EdgeListGraph& graph) override {
    HG_RETURN_IF_ERROR(this->driver_->EnsureBlockTopology(graph));
    this->InitPolicies();
    policy_.alpha = this->driver_->config().adaptive_alpha;
    policy_.beta = this->driver_->config().adaptive_beta;
    scratch_.assign(this->driver_->config().num_nodes, NodeScratch{});
    return Status::OK();
  }

  void BeginAccounting() override {
    BlockPathBase<P>::BeginAccounting();
    // Driver thread, before the phase fan-out: per-superstep scratch reset.
    std::vector<NodeState>& nodes = this->driver_->nodes();
    for (size_t i = 0; i < scratch_.size(); ++i) {
      NodeScratch& sc = scratch_[i];
      sc.frontier.Reset(nodes[i].range.size(), policy_);
      sc.push_cells = 0;
      sc.pull_cells = 0;
      sc.decision_rows.clear();
    }
  }

  Status Consume(uint32_t i) override {
    NodeState& node = this->driver_->nodes()[i];
    node.pending.ResetCount();
    if (this->driver_->superstep() == 0) return Status::OK();
    // Push cells delivered into the inbox at t-1; pull cells answer the
    // requests issued here. Fixed order (push drain, then pulls in
    // ascending node order inside CollectBPullMessages) keeps the pending
    // set and every counter thread-count invariant.
    HG_RETURN_IF_ERROR(CollectPushMessages(node, this->collect_policy_));
    BPullCollectPolicy policy;
    policy.msg_size = P::kMessageSize;
    policy.prepull_double = this->driver_->config().pre_pull && P::kCombinable;
    policy.num_nodes = this->driver_->config().num_nodes;
    return CollectBPullMessages(node, this->driver_->partition(),
                                this->driver_->transport(), policy);
  }

  Status WarmupNextSuperstep(uint32_t i) override {
    NodeState& node = this->driver_->nodes()[i];
    if (!node.pipeline || !node.pipeline->enabled()) return Status::OK();
    // Both of next superstep's consume sources benefit: the spill runs the
    // inbox merge will read, and the Eblocks of rows whose cells were
    // decided pull. Observability only — nothing modeled moves.
    node.inbox_next.spill()->WarmupMerge(
        this->collect_policy_.spill_merge_buffer_bytes, node.pipeline.get());
    const RangePartition& partition = this->driver_->partition();
    const uint32_t first_vb = partition.FirstVblockOf(node.id);
    const uint32_t last_vb = partition.LastVblockOf(node.id);
    const uint32_t depth = this->driver_->config().io.prefetch_depth;
    uint32_t scheduled = 0;
    for (uint32_t target_vb = 0;
         target_vb < partition.num_vblocks() && scheduled < depth;
         ++target_vb) {
      for (uint32_t vb = first_vb; vb < last_vb && scheduled < depth; ++vb) {
        if (!node.vblock_res_next[vb - first_vb]) continue;
        if (!node.ve->HasEdges(vb, target_vb)) continue;
        if (Decide(node, vb, target_vb, CountResponding(
                       node, vb, node.responding_next)) !=
            CellDecision::kPull) {
          continue;
        }
        node.ve->PrefetchEblock(vb, target_vb, node.pipeline.get());
        ++scheduled;
      }
    }
    return Status::OK();
  }

  Status ProduceVblock(NodeState& node, uint32_t vb,
                       const std::vector<uint8_t>& respond_in_vb,
                       const std::vector<uint8_t>& block_values) override {
    const RangePartition& partition = this->driver_->partition();
    const VertexRange r = partition.VblockRange(vb);
    NodeScratch& sc = scratch_[node.id];

    // Frontier tracking: add this block's responding vertices (bitmap/queue
    // representation switches automatically at the density threshold).
    uint32_t active = 0;
    for (uint32_t k = 0; k < respond_in_vb.size(); ++k) {
      if (!respond_in_vb[k]) continue;
      ++active;
      HG_RETURN_IF_ERROR(sc.frontier.Add(
          node.LocalIdx(r.begin + k),
          node.vstore->OutDegree(r.begin + k)));
    }
    if (active == 0) return Status::OK();

    // Decide the whole grid row j=vb. The row string becomes the decision
    // log / golden-test record; push cells are collected for the filtered
    // adjacency walk below.
    const uint32_t num_vb = partition.num_vblocks();
    std::vector<uint8_t> push_cell(num_vb, 0);
    std::string row;
    row.reserve(num_vb);
    bool any_push = false;
    for (uint32_t dst = 0; dst < num_vb; ++dst) {
      const CellDecision d = Decide(node, vb, dst, active);
      row.push_back(CellDecisionChar(d));
      if (d == CellDecision::kPush) {
        push_cell[dst] = 1;
        any_push = true;
        ++sc.push_cells;
      } else if (d == CellDecision::kPull) {
        ++sc.pull_cells;
      }
    }
    sc.decision_rows += StringFormat("t=%d n=%u j=%u %s\n",
                                     this->driver_->superstep(), node.id, vb,
                                     row.c_str());
    if (!any_push) return Status::OK();  // all-pull row: no adjacency I/O

    // pushRes() for the push cells only: one adjacency block read per row
    // (same charge as pure push), messages filtered by destination cell.
    const JobConfig& config = this->driver_->config();
    if (node.pipeline && node.pipeline->enabled() &&
        vb + 1 < partition.LastVblockOf(node.id)) {
      node.adj->PrefetchBlock(vb + 1, node.pipeline.get());
    }
    std::vector<AdjacencyStore::VertexAdj> adj;
    HG_RETURN_IF_ERROR(node.adj->ReadBlock(vb, &adj, node.pipeline.get()));
    node.io.adj_edge_bytes += node.adj->BlockBytes(vb);
    node.cpu_seconds +=
        config.cpu.per_edge_s * static_cast<double>(node.adj->BlockEdges(vb));

    std::vector<uint8_t> msg_bytes(P::kMessageSize);
    for (const auto& va : adj) {
      const uint32_t in_block = va.id - r.begin;
      if (!respond_in_vb[in_block]) continue;
      const Value value = PodCodec<Value>::Decode(
          block_values.data() + static_cast<size_t>(in_block) * P::kValueSize);
      const uint32_t out_degree = node.vstore->OutDegree(va.id);
      for (const auto& e : va.out) {
        if (!push_cell[partition.VblockOf(e.dst)]) continue;
        const Message m = this->driver_->program().GenMessage(
            va.id, value, out_degree, e, this->driver_->ctx());
        ++node.msgs_produced;
        node.cpu_seconds += config.cpu.per_message_s;
        const NodeId dst_node = partition.NodeOf(e.dst);
        PodCodec<Message>::Encode(m, msg_bytes.data());
        if (config.push_sender_combining && P::kCombinable) {
          const bool hit =
              node.staging.TryCombine(dst_node, e.dst, msg_bytes.data());
          node.cpu_seconds += config.cpu.per_combine_s;
          if (hit) {
            ++node.msgs_combined;
            continue;
          }
        }
        node.staging.Append(dst_node, e.dst, msg_bytes.data());
        node.mem_highwater = std::max<uint64_t>(
            node.mem_highwater,
            node.staging.count(dst_node) * (4 + P::kMessageSize));
        HG_RETURN_IF_ERROR(FlushStagedMessages(
            node, this->driver_->transport(), dst_node, /*force=*/false,
            config.sending_threshold_bytes, 4 + P::kMessageSize));
      }
    }
    return Status::OK();
  }

  Status FinishProduce(NodeState& node) override {
    for (uint32_t y = 0; y < this->driver_->config().num_nodes; ++y) {
      HG_RETURN_IF_ERROR(FlushStagedMessages(
          node, this->driver_->transport(), y, /*force=*/true,
          this->driver_->config().sending_threshold_bytes,
          4 + P::kMessageSize));
    }
    return Status::OK();
  }

  Status ServePull(NodeState& node, NodeId requester, Slice payload,
                   Buffer* response) override {
    // Algorithm 2 (Pull-Respond), restricted to the cells this node decided
    // pull at production time. Runs in the requester's thread; recomputes
    // the decisions from the promoted respond flags (identical inputs →
    // identical grid) and must not touch the production scratch.
    NodeState::PullServe& serve = node.pull_serve[requester];
    const JobConfig& config = this->driver_->config();
    const RangePartition& partition = this->driver_->partition();
    Decoder dec(payload);
    uint32_t target_vb;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&target_vb));

    // pullRes() generates the previous superstep's messages and runs under
    // that superstep's context (same GenMessage inputs as the push cells).
    SuperstepContext gen_ctx = this->driver_->ctx();
    gen_ctx.superstep = gen_ctx.superstep - 1;
    gen_ctx.prev_aggregate = this->driver_->pull_gen_aggregate();

    std::vector<GroupedBatchCodec::Group> groups;
    std::vector<int64_t> group_of;  // dst (local to requester block) -> index
    const VertexRange dst_range = partition.VblockRange(target_vb);
    group_of.assign(dst_range.size(), -1);

    std::vector<uint8_t> value_bytes;
    std::vector<uint8_t> msg_bytes(P::kMessageSize);
    uint64_t produced = 0;
    uint64_t combined_away = 0;

    const uint32_t first_vb = partition.FirstVblockOf(node.id);
    const uint32_t last_vb = partition.LastVblockOf(node.id);
    std::vector<uint32_t> candidates;
    for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
      if (!node.vblock_res[vb - first_vb]) continue;
      if (!node.ve->HasEdges(vb, target_vb)) continue;
      if (Decide(node, vb, target_vb,
                 CountResponding(node, vb, node.responding)) !=
          CellDecision::kPull) {
        continue;  // pushed at production time — serving it would duplicate
      }
      candidates.push_back(vb);
    }
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      const uint32_t vb = candidates[ci];
      if (ci + 1 < candidates.size() && node.pipeline) {
        node.ve->PrefetchEblock(candidates[ci + 1], target_vb,
                                node.pipeline.get());
      }

      VeBlockStore::ScanResult scan;
      HG_RETURN_IF_ERROR(
          node.ve->ScanEblock(vb, target_vb, &scan, node.pipeline.get()));
      serve.io.eblock_edge_bytes += scan.edge_bytes;
      serve.io.fragment_aux_bytes += scan.aux_bytes;
      serve.cpu_seconds +=
          config.cpu.per_edge_s *
          static_cast<double>(node.ve->Index(vb, target_vb).num_edges);

      for (const auto& frag : scan.fragments) {
        if (!node.responding[node.LocalIdx(frag.src)]) continue;
        HG_RETURN_IF_ERROR(
            node.vstore->ReadValueRandom(frag.src, &value_bytes));
        serve.io.vrr_bytes += node.vstore->record_size();
        const Value value = PodCodec<Value>::Decode(value_bytes.data());
        const uint32_t out_degree = node.vstore->OutDegree(frag.src);

        for (const auto& e : frag.edges) {
          const Message m = this->driver_->program().GenMessage(
              frag.src, value, out_degree, e, gen_ctx);
          ++produced;
          serve.cpu_seconds += config.cpu.per_message_s;
          int64_t& gi = group_of[e.dst - dst_range.begin];
          if (gi < 0) {
            gi = static_cast<int64_t>(groups.size());
            groups.push_back({e.dst, {}});
          }
          auto& payloads = groups[static_cast<size_t>(gi)].payloads;
          const bool combine = P::kCombinable && config.bpull_combining;
          if (combine && !payloads.empty()) {
            const Message prev = PodCodec<Message>::Decode(payloads[0].data());
            PodCodec<Message>::Encode(P::Combine(prev, m), payloads[0].data());
            ++combined_away;
          } else {
            PodCodec<Message>::Encode(m, msg_bytes.data());
            payloads.push_back(msg_bytes);
            if (!combine && payloads.size() > 1) {
              ++combined_away;  // concatenation shares the dst id on the wire
            }
          }
        }
      }
    }

    serve.msgs_produced += produced;
    serve.msgs_combined += combined_away;
    serve.msgs_wire += produced - combined_away;
    const uint64_t bs_bytes =
        GroupedBatchCodec::EncodedSize(groups, P::kMessageSize);
    serve.bs_highwater = std::max(serve.bs_highwater, bs_bytes);
    serve.flushes +=
        bs_bytes == 0
            ? 0
            : (bs_bytes + config.sending_threshold_bytes - 1) /
                  std::max<uint64_t>(1, config.sending_threshold_bytes);
    GroupedBatchCodec::Encode(groups, P::kMessageSize, response);
    return Status::OK();
  }

  SuperstepMetrics EndAccounting(EngineMode produce_mode,
                                 bool switched) override {
    SuperstepMetrics m = BlockPathBase<P>::EndAccounting(produce_mode,
                                                         switched);
    // Driver thread: fold the per-node cell counters and decision rows in
    // node order, so the totals and the log are thread-count invariant.
    TraceCollector* trace = this->driver_->trace();
    for (size_t i = 0; i < scratch_.size(); ++i) {
      const NodeScratch& sc = scratch_[i];
      m.push_cells += sc.push_cells;
      m.pull_cells += sc.pull_cells;
      decision_log_ += sc.decision_rows;
      if (trace->enabled() && !sc.decision_rows.empty()) {
        trace->AddInstant("adaptive.decide", this->driver_->superstep(),
                          static_cast<int>(i), EngineMode::kAdaptive,
                          sc.decision_rows);
      }
    }
    return m;
  }

  /// Per-Vblock frontier stats of node i's current production sweep (valid
  /// between UpdateProduce and the next BeginAccounting; exposed for tests).
  const Frontier& frontier(uint32_t i) const { return scratch_[i].frontier; }

  /// The accumulated per-cell decision log ("t=<t> n=<node> j=<vblock>
  /// <cells>" per responding row, cells over destination Vblocks with the
  /// CellDecisionChar alphabet) — the golden-test surface.
  const std::string& decision_log() const { return decision_log_; }

 protected:
  uint64_t ExtraMemoryBytes(const NodeState& node) const override {
    // Push share of the buffers (pending inbox records) plus the frontier's
    // current representation.
    return node.inbox_next.count() * (4 + P::kMessageSize) +
           scratch_[node.id].frontier.ApproxBytes();
  }

 private:
  struct NodeScratch {
    Frontier frontier;
    uint64_t push_cells = 0;
    uint64_t pull_cells = 0;
    std::string decision_rows;
  };

  /// Responding count of Vblock `vb` under the given flag vector.
  uint32_t CountResponding(const NodeState& node, uint32_t vb,
                           const std::vector<uint8_t>& flags) const {
    const VertexRange r = this->driver_->partition().VblockRange(vb);
    uint32_t active = 0;
    for (VertexId v = r.begin; v < r.end; ++v) {
      active += flags[node.LocalIdx(v)];
    }
    return active;
  }

  /// The pure per-cell decision for g_{vb, dst_vb} given the source row's
  /// responding count.
  CellDecision Decide(const NodeState& node, uint32_t vb, uint32_t dst_vb,
                      uint32_t active) const {
    const VertexRange r = this->driver_->partition().VblockRange(vb);
    const VeBlockStore::EblockIndex& idx = node.ve->Index(vb, dst_vb);
    CellCostInputs in;
    in.active = active;
    in.vertices = r.size();
    in.cell_edges = idx.num_edges;
    in.cell_edge_bytes = idx.edge_bytes;
    in.cell_aux_bytes = idx.aux_bytes;
    in.cell_fragments = idx.num_fragments;
    in.row_edges = node.ve->Meta(vb).out_degree;
    in.adj_row_bytes = node.adj->BlockBytes(vb);
    in.msg_record_size = SuperstepDriver<P>::kMsgRecordSize;
    in.value_record_size = SuperstepDriver<P>::kValueRecordSize;
    return DecideCell(in, policy_);
  }

  AdaptivePolicy policy_;
  std::vector<NodeScratch> scratch_;  // indexed by node id
  std::string decision_log_;
};

}  // namespace hybridgraph
