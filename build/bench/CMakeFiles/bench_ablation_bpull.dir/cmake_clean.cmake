file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bpull.dir/bench_ablation_bpull.cc.o"
  "CMakeFiles/bench_ablation_bpull.dir/bench_ablation_bpull.cc.o.d"
  "bench_ablation_bpull"
  "bench_ablation_bpull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bpull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
