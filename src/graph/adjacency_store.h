// Disk-resident adjacency-list store (the push-side edge layout).
//
// Edges are grouped into one block per Vblock of the owning node, each block
// holding the full out-edge lists of that Vblock's vertices (Giraph-style).
// pushRes() needs all out-edges of a vertex contiguously, which is exactly
// what fragments in Eblocks cannot provide — hence hybrid stores edges twice
// (Sec 5.2), once here and once in VeBlockStore.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/partition.h"
#include "graph/types.h"
#include "io/prefetch.h"
#include "io/storage.h"

namespace hybridgraph {

class AdjacencyStore {
 public:
  /// Out-edge list of one vertex as decoded from a block scan.
  struct VertexAdj {
    VertexId id;
    std::vector<Edge> out;
  };

  /// Builds the store from this node's local edges (must all have a local
  /// source). Edges need not be pre-sorted.
  static Result<std::unique_ptr<AdjacencyStore>> Build(
      StorageService* storage, const RangePartition& partition, NodeId node,
      const std::vector<RawEdge>& local_edges);

  /// Sequentially scans one adjacency block (metered kSeqRead). Vertices with
  /// no out-edges still appear with an empty list. A non-null `pipeline`
  /// serves the read through the prefetcher.
  Status ReadBlock(uint32_t global_vb, std::vector<VertexAdj>* out,
                   ReadPipeline* pipeline = nullptr);

  /// Stages a background read of a block for a later ReadBlock. No-op on a
  /// null/disabled pipeline.
  void PrefetchBlock(uint32_t global_vb, ReadPipeline* pipeline);

  /// Serialized size of one block.
  uint64_t BlockBytes(uint32_t global_vb) const;
  /// Number of edges in one block.
  uint64_t BlockEdges(uint32_t global_vb) const;
  uint64_t TotalBytes() const;
  uint64_t TotalEdges() const;

 private:
  AdjacencyStore(StorageService* storage, const RangePartition& partition,
                 NodeId node);

  std::string BlockKey(uint32_t global_vb) const;
  uint32_t LocalVb(uint32_t global_vb) const;

  StorageService* storage_;
  const RangePartition* partition_;
  NodeId node_;
  std::vector<uint64_t> block_bytes_;  // indexed by local vblock
  std::vector<uint64_t> block_edges_;
};

}  // namespace hybridgraph
