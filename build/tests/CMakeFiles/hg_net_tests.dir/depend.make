# Empty dependencies file for hg_net_tests.
# This may be replaced when dependencies are built.
