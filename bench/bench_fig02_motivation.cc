// Figure 2 — Motivation: Giraph(push) runtime and the percentage of messages
// on disk versus the receiver message buffer size, PageRank and SSSP over the
// wiki model on 5 nodes. The paper varies the buffer from 0.5M messages to
// "mem"; the model scales those counts by the dataset scale factor.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

void RunSeries(Algo algo) {
  const DatasetSpec spec = FindDataset("wiki").ValueOrDie();
  const double shrink = ShrinkFor(spec);
  const EdgeListGraph& graph = CachedGraph(spec, shrink);

  // Paper x-axis: 0.5M .. 9.5M and "mem", scaled by 1/200.
  std::vector<uint64_t> buffers;
  for (double b = 0.5e6; b <= 9.5e6; b += 1.5e6) {
    buffers.push_back(static_cast<uint64_t>(b / spec.scale / shrink));
  }
  buffers.push_back(UINT64_MAX);

  std::printf("\n-- %s over wiki (push), 5 nodes --\n", AlgoName(algo));
  std::printf("%-14s %12s %14s %12s\n", "buffer(msgs)", "runtime(s)",
              "msgs_on_disk%", "io_bytes");
  for (uint64_t b : buffers) {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.msg_buffer_per_node = b;
    auto stats = RunAlgo(graph, algo, EngineMode::kPush, cfg);
    if (!stats.ok()) {
      std::printf("%-14llu FAILED: %s\n", (unsigned long long)b,
                  stats.status().ToString().c_str());
      continue;
    }
    uint64_t spilled = 0, produced = 0;
    for (const auto& s : stats->supersteps) {
      spilled += s.messages_spilled;
      produced += s.messages_produced;
    }
    const double pct =
        produced ? 100.0 * static_cast<double>(spilled) / produced : 0.0;
    char label[32];
    if (b == UINT64_MAX) {
      std::snprintf(label, sizeof(label), "mem");
    } else {
      std::snprintf(label, sizeof(label), "%llu", (unsigned long long)b);
    }
    std::printf("%-14s %12.3f %14.1f %12s\n", label, stats->modeled_seconds,
                pct, HumanBytes(stats->TotalIoBytes()).c_str());
  }
}

}  // namespace

int main() {
  PrintHeader("bench_fig02_motivation",
              "Fig 2: impact of the message buffer on push (Giraph) runtime");
  RunSeries(Algo::kPageRank);
  RunSeries(Algo::kSssp);
  std::printf("\nexpected shape: runtime rises sharply as the buffer shrinks\n"
              "and the disk-resident message percentage climbs toward ~98%%.\n");
  return 0;
}
