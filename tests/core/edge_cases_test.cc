// Degenerate and adversarial inputs: graphs with no edges, self-loops,
// duplicate edges, stars, chains, unreachable regions, zero supersteps —
// every engine mode must handle them gracefully and identically.
#include <gtest/gtest.h>

#include "algos/lpa.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/engine.h"
#include "core/vpull_engine.h"
#include "graph/generator.h"
#include "tests/core/reference_impls.h"

namespace hybridgraph {
namespace {

const EngineMode kEngineModes[] = {EngineMode::kPush, EngineMode::kPushM,
                                   EngineMode::kBPull, EngineMode::kHybrid};

JobConfig Base(EngineMode mode) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 3;
  cfg.msg_buffer_per_node = 50;
  cfg.max_supersteps = 20;
  return cfg;
}

template <typename P>
std::vector<typename P::Value> RunFor(const EdgeListGraph& g, P program,
                                   EngineMode mode, int max_supersteps = 20) {
  JobConfig cfg = Base(mode);
  cfg.max_supersteps = max_supersteps;
  Engine<P> engine(cfg, program);
  EXPECT_TRUE(engine.Load(g).ok());
  EXPECT_TRUE(engine.Run().ok());
  return engine.GatherValues().ValueOrDie();
}

TEST(EdgeCases, GraphWithNoEdges) {
  EdgeListGraph g;
  g.num_vertices = 30;
  for (EngineMode mode : kEngineModes) {
    const auto ranks = RunFor(g, PageRankProgram{}, mode, 3);
    for (double r : ranks) {
      // No messages ever arrive: ranks settle at the teleport term.
      EXPECT_NEAR(r, 0.15 / 30.0, 1e-12) << EngineModeName(mode);
    }
  }
}

TEST(EdgeCases, SelfLoopsAreDelivered) {
  EdgeListGraph g;
  g.num_vertices = 6;
  g.edges = {{0, 0, 1.0f}, {0, 1, 1.0f}, {1, 2, 1.0f}, {2, 0, 1.0f}};
  const auto expected = ReferencePageRank(g, 4);
  for (EngineMode mode : kEngineModes) {
    const auto got = RunFor(g, PageRankProgram{}, mode, 4);
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_NEAR(got[v], expected[v], 1e-12) << EngineModeName(mode) << v;
    }
  }
}

TEST(EdgeCases, DuplicateEdgesCountTwice) {
  EdgeListGraph g;
  g.num_vertices = 6;
  g.edges = {{0, 1, 1.0f}, {0, 1, 1.0f}, {1, 2, 1.0f}};
  const auto expected = ReferencePageRank(g, 4);
  for (EngineMode mode : kEngineModes) {
    const auto got = RunFor(g, PageRankProgram{}, mode, 4);
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_NEAR(got[v], expected[v], 1e-12) << EngineModeName(mode) << v;
    }
  }
}

TEST(EdgeCases, StarGraphHubFragmentation) {
  // One hub pointing at everyone: a single source vertex owning fragments in
  // every Eblock — the worst case of Theorem 1.
  EdgeListGraph g;
  g.num_vertices = 90;
  for (VertexId v = 1; v < 90; ++v) g.edges.push_back({0, v, 1.0f});
  SsspProgram program;
  program.source = 0;
  const auto expected = ReferenceSssp(g, 0);
  for (EngineMode mode : kEngineModes) {
    const auto got = RunFor(g, program, mode);
    for (size_t v = 0; v < got.size(); ++v) {
      ASSERT_FLOAT_EQ(got[v], expected[v]) << EngineModeName(mode) << v;
    }
  }
}

TEST(EdgeCases, ChainNeedsManySupersteps) {
  EdgeListGraph g;
  g.num_vertices = 40;
  for (VertexId v = 0; v + 1 < 40; ++v) g.edges.push_back({v, v + 1, 1.0f});
  SsspProgram program;
  program.source = 0;
  for (EngineMode mode : kEngineModes) {
    JobConfig cfg = Base(mode);
    cfg.max_supersteps = 100;
    Engine<SsspProgram> engine(cfg, program);
    ASSERT_TRUE(engine.Load(g).ok());
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_TRUE(engine.converged()) << EngineModeName(mode);
    // 39 hops plus the start/terminate supersteps.
    EXPECT_GE(engine.stats().supersteps_run, 40) << EngineModeName(mode);
    const auto got = engine.GatherValues().ValueOrDie();
    EXPECT_LT(got[39], SsspProgram::kInf);
  }
}

TEST(EdgeCases, UnreachableRegionStaysAtInfinity) {
  EdgeListGraph g;
  g.num_vertices = 20;
  g.edges = {{0, 1, 1.0f}, {1, 2, 1.0f}, {10, 11, 1.0f}};
  SsspProgram program;
  program.source = 0;
  for (EngineMode mode : kEngineModes) {
    const auto got = RunFor(g, program, mode);
    EXPECT_EQ(got[0], 0.0f);
    EXPECT_LT(got[2], SsspProgram::kInf);
    EXPECT_EQ(got[10], SsspProgram::kInf) << EngineModeName(mode);
    EXPECT_EQ(got[11], SsspProgram::kInf) << EngineModeName(mode);
  }
}

TEST(EdgeCases, ZeroSuperstepsRunsNothing) {
  const auto g = GeneratePowerLaw(100, 5.0, 0.7, 1);
  JobConfig cfg = Base(EngineMode::kHybrid);
  cfg.max_supersteps = 0;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.stats().supersteps_run, 0);
  // Values keep their initial state.
  const auto got = engine.GatherValues().ValueOrDie();
  for (double v : got) EXPECT_DOUBLE_EQ(v, 1.0 / 100.0);
}

TEST(EdgeCases, PushMRejectsNonCombinable) {
  const auto g = GeneratePowerLaw(100, 5.0, 0.7, 1);
  Engine<WccProgram> combinable_ok(Base(EngineMode::kPushM), WccProgram{});
  EXPECT_TRUE(combinable_ok.Load(g).ok());  // WCC is combinable

  // LPA is concatenate-only: online computing cannot apply.
  Engine<LpaProgram> engine(Base(EngineMode::kPushM), LpaProgram{});
  EXPECT_EQ(engine.Load(g).code(), StatusCode::kInvalidArgument);
}

TEST(EdgeCases, VPullOnDegenerateGraphs) {
  EdgeListGraph g;
  g.num_vertices = 12;
  g.edges = {{0, 0, 1.0f}, {0, 1, 1.0f}, {0, 1, 1.0f}};
  const auto expected = ReferencePageRank(g, 4);
  JobConfig cfg = Base(EngineMode::kVPull);
  cfg.max_supersteps = 4;
  VPullEngine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto got = engine.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

TEST(EdgeCases, ManyMoreVblocksThanVertices) {
  const auto g = GeneratePowerLaw(60, 4.0, 0.7, 2);
  JobConfig cfg = Base(EngineMode::kBPull);
  cfg.vblocks_per_node = 50;  // requested 150 blocks for 60 vertices
  cfg.max_supersteps = 4;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto expected = ReferencePageRank(g, 4);
  const auto got = engine.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

}  // namespace
}  // namespace hybridgraph
