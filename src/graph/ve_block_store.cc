#include "graph/ve_block_store.h"

#include <algorithm>
#include <map>

#include "util/codec.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

VeBlockStore::VeBlockStore(StorageService* storage,
                           const RangePartition& partition, NodeId node)
    : storage_(storage),
      partition_(&partition),
      node_(node),
      first_vb_(partition.FirstVblockOf(node)) {}

std::string VeBlockStore::EblockKey(uint32_t src_vb, uint32_t dst_vb) const {
  return StringFormat("node%u/eblock/%06u/%06u", node_, src_vb, dst_vb);
}

Result<std::unique_ptr<VeBlockStore>> VeBlockStore::Build(
    StorageService* storage, const RangePartition& partition, NodeId node,
    const std::vector<RawEdge>& local_edges,
    const std::vector<uint32_t>& in_degrees) {
  std::unique_ptr<VeBlockStore> store(
      new VeBlockStore(storage, partition, node));
  const VertexRange node_range = partition.NodeRange(node);
  const uint32_t first_vb = partition.FirstVblockOf(node);
  const uint32_t last_vb = partition.LastVblockOf(node);
  const uint32_t num_local = last_vb - first_vb;
  const uint32_t num_global = partition.num_vblocks();

  store->metas_.resize(num_local);
  store->index_.assign(num_local, std::vector<EblockIndex>(num_global));

  // Metadata X_j: vertex counts and degree totals.
  for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
    VblockMeta& meta = store->metas_[vb - first_vb];
    const VertexRange r = partition.VblockRange(vb);
    meta.num_vertices = r.size();
    meta.edge_bitmap.assign(num_global, false);
    for (VertexId v = r.begin; v < r.end; ++v) {
      meta.in_degree += in_degrees[v];
    }
  }

  // Bucket edges by (local src vblock, global dst vblock, src vertex). Edges
  // from the same source end up clustered in one fragment per Eblock.
  // map key: (src_vb local, dst_vb) -> map<src, edges>
  std::vector<std::map<uint32_t, std::map<VertexId, std::vector<Edge>>>> buckets(
      num_local);
  for (const auto& e : local_edges) {
    if (!node_range.Contains(e.src)) {
      return Status::InvalidArgument("edge with non-local source in Build");
    }
    const uint32_t src_vb = partition.VblockOf(e.src);
    const uint32_t dst_vb = partition.VblockOf(e.dst);
    buckets[src_vb - first_vb][dst_vb][e.src].push_back({e.dst, e.weight});
    store->metas_[src_vb - first_vb].out_degree += 1;
  }

  for (uint32_t lvb = 0; lvb < num_local; ++lvb) {
    VblockMeta& meta = store->metas_[lvb];
    for (auto& [dst_vb, fragments] : buckets[lvb]) {
      meta.edge_bitmap[dst_vb] = true;
      Buffer buf;
      Encoder enc(&buf);
      EblockIndex& idx = store->index_[lvb][dst_vb];
      enc.PutVarint64(fragments.size());
      idx.aux_bytes += VarintLength(fragments.size());
      for (auto& [src, edges] : fragments) {
        enc.PutFixed32(src);
        enc.PutVarint64(edges.size());
        idx.aux_bytes += 4 + VarintLength(edges.size());
        for (const auto& edge : edges) {
          enc.PutFixed32(edge.dst);
          enc.PutFloat(edge.weight);
        }
        idx.edge_bytes += edges.size() * kEdgeEncodedSize;
        idx.num_edges += edges.size();
        ++idx.num_fragments;
      }
      HG_RETURN_IF_ERROR(storage->Write(store->EblockKey(first_vb + lvb, dst_vb),
                                        buf.AsSlice(), IoClass::kSeqWrite));
      store->total_fragments_ += idx.num_fragments;
      store->total_edge_bytes_ += idx.edge_bytes;
      store->total_aux_bytes_ += idx.aux_bytes;
    }
  }
  return store;
}

Status VeBlockStore::ScanEblock(uint32_t src_vb, uint32_t dst_vb,
                                ScanResult* out, ReadPipeline* pipeline) {
  out->fragments.clear();
  out->aux_bytes = 0;
  out->edge_bytes = 0;
  const EblockIndex& idx = Index(src_vb, dst_vb);
  if (idx.num_fragments == 0) return Status::OK();

  const std::string key = EblockKey(src_vb, dst_vb);
  const ReadOptions opts{.io_class = IoClass::kSeqRead};
  auto read = pipeline ? pipeline->Fetch(key, opts) : storage_->Read(key, opts);
  if (!read.ok()) return read.status();
  const std::vector<uint8_t>& raw = read->data;
  Decoder dec{Slice(raw)};
  uint64_t num_fragments;
  HG_RETURN_IF_ERROR(dec.GetVarint64(&num_fragments));
  out->fragments.reserve(num_fragments);
  for (uint64_t i = 0; i < num_fragments; ++i) {
    Fragment frag;
    uint64_t count;
    HG_RETURN_IF_ERROR(dec.GetFixed32(&frag.src));
    HG_RETURN_IF_ERROR(dec.GetVarint64(&count));
    frag.edges.resize(count);
    for (uint64_t k = 0; k < count; ++k) {
      HG_RETURN_IF_ERROR(dec.GetFixed32(&frag.edges[k].dst));
      HG_RETURN_IF_ERROR(dec.GetFloat(&frag.edges[k].weight));
    }
    out->fragments.push_back(std::move(frag));
  }
  if (!dec.AtEnd()) return Status::Corruption("trailing bytes in Eblock");
  out->aux_bytes = idx.aux_bytes;
  out->edge_bytes = idx.edge_bytes;
  return Status::OK();
}

void VeBlockStore::PrefetchEblock(uint32_t src_vb, uint32_t dst_vb,
                                  ReadPipeline* pipeline) {
  if (pipeline == nullptr) return;
  if (Index(src_vb, dst_vb).num_fragments == 0) return;
  pipeline->Schedule(EblockKey(src_vb, dst_vb),
                     ReadOptions{.io_class = IoClass::kSeqRead});
}

}  // namespace hybridgraph
