// Load-time construction shared by both engine front-ends: transport and
// per-node storage factories, the CPU-scale fold, Vblock derivation
// (Eq. 5/6), and the full block-centric topology build (partition, stores,
// flags, inboxes, load metrics) that Engine and the hybrid driver used to
// duplicate inline. Program-specific pieces (initial values/activity, raw
// combine shims) arrive as callbacks so this compiles once.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/job_config.h"
#include "core/node_state.h"
#include "core/run_metrics.h"
#include "graph/edge_list.h"
#include "io/message_spill.h"
#include "net/transport.h"
#include "util/status.h"

namespace hybridgraph {

/// Builds the configured transport (TCP with the config's retry/timeout
/// options, or in-process). Does not Start() it.
std::unique_ptr<Transport> MakeTransport(const JobConfig& config);

/// Opens per-node storage under `storage_dir/<subdir>` (or in-memory) and
/// enables the modeled page cache.
Result<std::unique_ptr<StorageService>> MakeNodeStorage(const JobConfig& config,
                                                        const std::string& subdir);

/// Folds config.cpu.scale into every per-unit cost once (idempotent because
/// the scale resets to 1).
void FoldCpuScale(JobConfig* config);

/// Modeled load time for `bytes_written`: sequential write split across the
/// cluster.
double ModeledLoadSeconds(const JobConfig& config, uint64_t bytes_written);

/// Eq. (5)/(6): Vblock count for one node given its degree census.
uint32_t DeriveVblocks(const JobConfig& config, bool combinable, NodeId node,
                       uint64_t node_in_degree, uint64_t node_vertices);

/// Program-specific hooks for BuildBlockTopology.
struct BlockTopologyHooks {
  std::function<void(VertexId, uint8_t*)> init_value;
  std::function<bool(VertexId)> init_active;
  /// Null unless the program combines and config.spill_combining is on.
  MessageSpill::CombineFn spill_combiner = nullptr;
  /// Null for non-combinable programs (pending appends instead of folding).
  PendingSet::CombineRawFn pending_combiner = nullptr;
  /// Installed on the sender staging; only consulted when a path opts in.
  SendStaging::CombineRawFn staging_combiner = nullptr;
};

/// Graph census accumulated while building, consumed by the Theorem 2
/// initial-mode decision.
struct BlockTopologyCensus {
  uint64_t total_in_degree = 0;
  uint64_t total_fragments = 0;
  uint64_t initial_messages = 0;      ///< sum out-degree over initially-active
  uint64_t initial_active_count = 0;  ///< caller divides by |V| for the frac
};

/// Builds everything the block-centric engine needs before superstep 0:
/// partition (Eq. 5/6 Vblocks), edge shuffle (optionally metered), per-node
/// storage + vertex/adjacency/VE-BLOCK stores, flags, staging, double-
/// buffered inboxes with spills, and the load metrics. RPC handlers are NOT
/// registered here (the driver wires those to its paths); the transport is
/// started. `value_size` is P::kValueSize, `msg_size` P::kMessageSize.
Status BuildBlockTopology(const EdgeListGraph& graph, const JobConfig& config,
                          bool combinable, size_t value_size, size_t msg_size,
                          bool need_adj, bool need_ve,
                          const BlockTopologyHooks& hooks,
                          RangePartition* partition,
                          std::unique_ptr<Transport>* transport,
                          std::vector<NodeState>* nodes, uint64_t total_edges,
                          LoadMetrics* load, BlockTopologyCensus* census);

}  // namespace hybridgraph
