#include "core/engine_checkpoint.h"

#include <algorithm>
#include <utility>

#include "io/message_spill.h"
#include "util/codec.h"
#include "util/failpoint.h"

namespace hybridgraph {

namespace ckpt_detail {
constexpr uint32_t kMagic = 0x48474350;  // "HGCP"
// v2 appends an FNV-1a checksum trailer over the whole image, so a torn
// write (crash mid-checkpoint) is detected at restore instead of decoding
// garbage. v1 images (no trailer) are no longer accepted.
constexpr uint32_t kVersion = 2;
constexpr size_t kTrailerSize = 8;
}  // namespace ckpt_detail

Status WriteEngineCheckpoint(std::vector<NodeState>& nodes,
                             const RangePartition& partition,
                             const CheckpointState& state, size_t msg_size,
                             Buffer* out) {
  const size_t image_start = out->size();
  Encoder enc(out);
  enc.PutFixed32(ckpt_detail::kMagic);
  enc.PutFixed32(ckpt_detail::kVersion);
  enc.PutVarint64(static_cast<uint64_t>(*state.superstep));
  enc.PutU8(static_cast<uint8_t>(*state.mode));
  enc.PutU8(static_cast<uint8_t>(*state.prev_produce));
  enc.PutU8(*state.converged ? 1 : 0);
  enc.PutSignedVarint64(state.hybrid->last_switch_superstep);
  enc.PutDouble(state.hybrid->last_rco);
  enc.PutVarint64(state.hybrid->prev_responding);
  enc.PutDouble(*state.prev_aggregate);

  std::vector<uint8_t> values;
  for (auto& node : nodes) {
    // Per-node fail-point: a crash here leaves a partial image with no
    // checksum trailer — exactly the torn write RestoreCheckpoint must
    // reject (see recovery_test).
    HG_FAIL_POINT("ckpt.write");
    // Vertex values, per Vblock.
    for (uint32_t vb = partition.FirstVblockOf(node.id);
         vb < partition.LastVblockOf(node.id); ++vb) {
      HG_RETURN_IF_ERROR(node.vstore->ReadBlock(vb, &values, IoClass::kSeqRead));
      enc.PutLengthPrefixed(Slice(values.data(), values.size()));
    }
    // Flags.
    enc.PutLengthPrefixed(Slice(node.active.data(), node.active.size()));
    enc.PutLengthPrefixed(
        Slice(node.responding.data(), node.responding.size()));
    enc.PutLengthPrefixed(
        Slice(node.vblock_res.data(), node.vblock_res.size()));
    // Undelivered inbox (memory part + spilled runs).
    std::vector<SpillEntry> spilled;
    if (node.inbox_cur.spill()->num_runs() > 0) {
      HG_RETURN_IF_ERROR(node.inbox_cur.spill()->MergeReadAll(&spilled));
    }
    enc.PutVarint64(node.inbox_cur.count() + spilled.size());
    for (size_t i = 0; i < node.inbox_cur.count(); ++i) {
      enc.PutFixed32(node.inbox_cur.dst(i));
      enc.PutRaw(node.inbox_cur.payload(i), msg_size);
    }
    for (const auto& e : spilled) {
      enc.PutFixed32(e.dst);
      enc.PutRaw(e.payload.data(), msg_size);
    }
  }
  enc.PutFixed64(
      Fnv1a64(out->data() + image_start, out->size() - image_start));
  return Status::OK();
}

Status RestoreEngineCheckpoint(std::vector<NodeState>& nodes,
                               const RangePartition& partition,
                               const JobConfig& config,
                               const CheckpointState& state, size_t msg_size,
                               Slice data, int* supersteps_run) {
  HG_FAIL_POINT("ckpt.restore");
  if (data.size() < 8 + ckpt_detail::kTrailerSize) {
    return Status::Corruption("checkpoint image too small");
  }
  const size_t body_size = data.size() - ckpt_detail::kTrailerSize;
  {
    Decoder trailer(
        Slice(data.data() + body_size, ckpt_detail::kTrailerSize));
    uint64_t stored = 0;
    HG_RETURN_IF_ERROR(trailer.GetFixed64(&stored));
    if (stored != Fnv1a64(data.data(), body_size)) {
      return Status::Corruption(
          "checkpoint checksum mismatch (torn or corrupted image)");
    }
  }
  data = Slice(data.data(), body_size);
  Decoder dec(data);
  uint32_t magic, version;
  HG_RETURN_IF_ERROR(dec.GetFixed32(&magic));
  HG_RETURN_IF_ERROR(dec.GetFixed32(&version));
  if (magic != ckpt_detail::kMagic) return Status::Corruption("bad checkpoint magic");
  if (version != ckpt_detail::kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  uint64_t superstep, prev_resp;
  uint8_t mode, prev_produce, converged;
  int64_t last_switch;
  HG_RETURN_IF_ERROR(dec.GetVarint64(&superstep));
  HG_RETURN_IF_ERROR(dec.GetU8(&mode));
  HG_RETURN_IF_ERROR(dec.GetU8(&prev_produce));
  HG_RETURN_IF_ERROR(dec.GetU8(&converged));
  HG_RETURN_IF_ERROR(dec.GetSignedVarint64(&last_switch));
  HG_RETURN_IF_ERROR(dec.GetDouble(&state.hybrid->last_rco));
  HG_RETURN_IF_ERROR(dec.GetVarint64(&prev_resp));
  HG_RETURN_IF_ERROR(dec.GetDouble(state.prev_aggregate));
  *state.superstep = static_cast<int>(superstep);
  *state.mode = static_cast<EngineMode>(mode);
  *state.prev_produce = static_cast<EngineMode>(prev_produce);
  *state.converged = converged != 0;
  state.hybrid->last_switch_superstep = static_cast<int>(last_switch);
  state.hybrid->prev_responding = prev_resp;

  auto restore_flags = [&](std::vector<uint8_t>* flags) -> Status {
    Slice raw;
    HG_RETURN_IF_ERROR(dec.GetLengthPrefixed(&raw));
    if (raw.size() != flags->size()) {
      return Status::Corruption("checkpoint flag size mismatch");
    }
    std::copy(raw.data(), raw.data() + raw.size(), flags->begin());
    return Status::OK();
  };

  for (auto& node : nodes) {
    for (uint32_t vb = partition.FirstVblockOf(node.id);
         vb < partition.LastVblockOf(node.id); ++vb) {
      Slice raw;
      HG_RETURN_IF_ERROR(dec.GetLengthPrefixed(&raw));
      std::vector<uint8_t> values(raw.data(), raw.data() + raw.size());
      HG_RETURN_IF_ERROR(
          node.vstore->WriteBlock(vb, values, IoClass::kSeqWrite));
    }
    HG_RETURN_IF_ERROR(restore_flags(&node.active));
    HG_RETURN_IF_ERROR(restore_flags(&node.responding));
    HG_RETURN_IF_ERROR(restore_flags(&node.vblock_res));

    node.inbox_cur.ClearMem();
    HG_RETURN_IF_ERROR(node.inbox_cur.spill()->Clear());
    // Also sweep the next-superstep spill: recovery may restore into storage
    // that still holds a dead incarnation's runs (including unregistered
    // orphans a mid-spill crash left behind); Clear() deletes by prefix.
    node.inbox_next.ClearMem();
    HG_RETURN_IF_ERROR(node.inbox_next.spill()->Clear());
    uint64_t count;
    HG_RETURN_IF_ERROR(dec.GetVarint64(&count));
    const bool unlimited =
        config.msg_buffer_per_node == UINT64_MAX || config.memory_resident;
    std::vector<SpillEntry> overflow;
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t dst;
      Slice payload;
      HG_RETURN_IF_ERROR(dec.GetFixed32(&dst));
      HG_RETURN_IF_ERROR(dec.GetRaw(msg_size, &payload));
      ++node.inbox_cur.total;
      if (unlimited ||
          node.inbox_cur.count() < config.msg_buffer_per_node) {
        node.inbox_cur.Append(dst, payload.data());
      } else {
        overflow.push_back(SpillEntry{
            dst, std::vector<uint8_t>(payload.data(),
                                      payload.data() + payload.size())});
        ++node.inbox_cur.spilled;
      }
    }
    if (!overflow.empty()) {
      HG_RETURN_IF_ERROR(node.inbox_cur.spill()->SpillRun(std::move(overflow)));
    }
  }
  if (!dec.AtEnd()) return Status::Corruption("trailing checkpoint bytes");
  *supersteps_run = *state.superstep;
  return Status::OK();
}

}  // namespace hybridgraph
