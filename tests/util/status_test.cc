#include "util/status.h"

#include <gtest/gtest.h>

namespace hybridgraph {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(Status, FactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NetworkError("x").code(), StatusCode::kNetworkError);
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNetworkError), "NetworkError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  HG_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

Status UseParsed(int x, int* out) {
  HG_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(Result, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = ParsePositive(0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(Result, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParsed(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_EQ(UseParsed(-5, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, 10);  // unchanged on error
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace hybridgraph
