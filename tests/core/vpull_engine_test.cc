// v-pull (PowerGraph GAS) engine: correctness against references and the
// Table-5 scenario ordering (shrinking the vertex cache must hurt).
#include "core/vpull_engine.h"

#include <gtest/gtest.h>

#include "algos/lpa.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "graph/generator.h"
#include "tests/core/reference_impls.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph(uint64_t seed = 123) {
  return GeneratePowerLaw(600, 8.0, 0.75, seed);
}

TEST(VPullEngine, PageRankMatchesReference) {
  const auto g = TestGraph();
  constexpr int kSteps = 5;
  const auto expected = ReferencePageRank(g, kSteps);
  JobConfig cfg;
  cfg.mode = EngineMode::kVPull;
  cfg.num_nodes = 4;
  cfg.vpull_vertex_cache = 50;  // heavy miss traffic, same results
  cfg.max_supersteps = kSteps;
  VPullEngine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto got = engine.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

TEST(VPullEngine, SsspMatchesReferenceAndConverges) {
  const auto g = TestGraph(7);
  SsspProgram program;
  program.source = 2;
  const auto expected = ReferenceSssp(g, 2);
  JobConfig cfg;
  cfg.mode = EngineMode::kVPull;
  cfg.num_nodes = 4;
  cfg.max_supersteps = 200;
  VPullEngine<SsspProgram> engine(cfg, program);
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.converged());
  const auto got = engine.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_FLOAT_EQ(got[v], expected[v]) << v;
  }
}

TEST(VPullEngine, LpaRunsNonCombinable) {
  const auto g = TestGraph(9);
  JobConfig cfg;
  cfg.mode = EngineMode::kVPull;
  cfg.num_nodes = 3;
  cfg.max_supersteps = 5;
  VPullEngine<LpaProgram> engine(cfg, LpaProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.Run().ok());
  const auto got = engine.GatherValues().ValueOrDie();
  uint64_t changed = 0;
  for (uint32_t v = 0; v < got.size(); ++v) changed += got[v] != v;
  EXPECT_GT(changed, got.size() / 4);
}

TEST(VPullEngine, SmallerCacheMeansMoreTime) {
  // The Table 5 ordering: original >= ext-mem >= ext-edge >> tiny cache.
  const auto g = TestGraph(11);
  auto run = [&](bool memory_resident, uint64_t cache) {
    JobConfig cfg;
    cfg.mode = EngineMode::kVPull;
    cfg.num_nodes = 4;
    cfg.memory_resident = memory_resident;
    cfg.vpull_vertex_cache = cache;
    cfg.max_supersteps = 5;
    VPullEngine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.stats().modeled_seconds;
  };
  const double original = run(true, UINT64_MAX);
  const double ext_full_cache = run(false, UINT64_MAX);
  const double ext_small_cache = run(false, 30);
  EXPECT_LE(original, ext_full_cache * 1.2);
  EXPECT_GT(ext_small_cache, 3 * ext_full_cache);
}

TEST(VPullEngine, NetworkTrafficScalesWithReplication) {
  // More nodes -> more mirrors per vertex -> more gather/apply traffic per
  // superstep (the vertex-cut communication cost of Sec 5.1).
  const auto g = TestGraph(13);
  auto traffic = [&](uint32_t nodes) {
    JobConfig cfg;
    cfg.mode = EngineMode::kVPull;
    cfg.num_nodes = nodes;
    cfg.max_supersteps = 3;
    VPullEngine<PageRankProgram> engine(cfg, PageRankProgram{});
    EXPECT_TRUE(engine.Load(g).ok());
    EXPECT_TRUE(engine.Run().ok());
    return engine.stats().TotalNetBytes();
  };
  EXPECT_GT(traffic(8), traffic(2));
}

}  // namespace
}  // namespace hybridgraph
