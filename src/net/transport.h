// Cluster transport: serialized, metered message passing between the
// simulated computational nodes.
//
// Everything that crosses "the network" is encoded into a frame (header +
// payload bytes) by the sender and decoded by the receiver, so serialized
// byte counts — the quantity the paper's C_net is made of — are ground truth,
// not estimates. Dispatch is synchronous and deterministic (single-process),
// which keeps every experiment exactly reproducible; modeled network time is
// derived from the byte meters, mirroring how modeled disk time is derived
// from DiskMeter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/codec.h"
#include "util/status.h"

namespace hybridgraph {

using NodeId = uint32_t;

/// RPC method identifiers carried in every frame header.
enum class RpcMethod : uint16_t {
  kPushMessages = 1,   ///< push: one-way batch of (dst vertex, value) messages
  kPullRequest = 2,    ///< b-pull: request messages for one Vblock
  kPullResponse = 3,   ///< b-pull: message batch answering a pull request
  kGatherPartial = 4,  ///< v-pull (GAS): partial gather sum to the master
  kApplyBroadcast = 5, ///< v-pull (GAS): new vertex value to mirrors
  kControl = 6,        ///< barrier / aggregator traffic
  kLoadShuffle = 7,    ///< load phase: raw edges routed to their owner node
};

/// \brief Network throughput profile (Table 3: s_net).
struct NetProfile {
  std::string name;
  double mbps;

  static NetProfile LocalGigabit() { return {"local-1GbE", 112.0}; }
  static NetProfile AmazonGigabit() { return {"amazon-1GbE", 116.0}; }

  double SecondsFor(uint64_t bytes) const {
    return static_cast<double>(bytes) / (mbps * 1024.0 * 1024.0);
  }
};

/// \brief Per-node traffic meter.
struct NetMeter {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;

  void Reset() { *this = NetMeter{}; }

  NetMeter DeltaSince(const NetMeter& earlier) const {
    NetMeter d;
    d.bytes_sent = bytes_sent - earlier.bytes_sent;
    d.bytes_received = bytes_received - earlier.bytes_received;
    d.frames_sent = frames_sent - earlier.frames_sent;
    d.frames_received = frames_received - earlier.frames_received;
    return d;
  }
};

/// \brief Cumulative transport-level fault/recovery counters. In-process
/// transport never faults (all zeros); TcpTransport counts every retried
/// attempt, every per-call timeout, and every connection re-establishment.
/// The engines snapshot these per superstep into SuperstepMetrics.
struct TransportFaultCounters {
  uint64_t retries = 0;     ///< attempts beyond the first, any cause
  uint64_t timeouts = 0;    ///< attempts that failed by exceeding the deadline
  uint64_t reconnects = 0;  ///< persistent connections re-established

  TransportFaultCounters DeltaSince(const TransportFaultCounters& earlier) const {
    return {retries - earlier.retries, timeouts - earlier.timeouts,
            reconnects - earlier.reconnects};
  }
};

/// Wire frame header: src, dst, method, payload length. Encoded size is
/// charged to both endpoints on every frame (per-connection overhead).
struct FrameHeader {
  NodeId src;
  NodeId dst;
  RpcMethod method;
  uint32_t payload_size;

  void EncodeTo(Encoder* enc) const;
  static Status DecodeFrom(Decoder* dec, FrameHeader* out);
  static constexpr size_t kEncodedSize = 4 + 4 + 2 + 4;
};

/// \brief Abstract cluster transport.
///
/// Handlers are registered per (node, method). `Call` performs a synchronous
/// request/response round trip; `Post` delivers a one-way frame (the BSP
/// engines provide their own buffering/flow control above this). Both are
/// fully serialized/deserialized and metered regardless of implementation.
class Transport {
 public:
  using Handler =
      std::function<Status(NodeId src, Slice payload, Buffer* response)>;

  explicit Transport(uint32_t num_nodes)
      : num_nodes_(num_nodes),
        meters_(num_nodes),
        meter_mutexes_(new std::mutex[num_nodes]),
        dispatch_mutexes_(new std::mutex[num_nodes]) {}
  virtual ~Transport() = default;

  uint32_t num_nodes() const { return num_nodes_; }

  /// Registers the handler invoked when `method` arrives at `node`. Must
  /// happen before Start().
  virtual void RegisterHandler(NodeId node, RpcMethod method, Handler handler);

  /// Makes the transport ready to carry traffic (no-op for in-process).
  virtual Status Start() { return Status::OK(); }

  /// One-way delivery: frame is serialized, metered on both sides, and the
  /// destination handler runs. Any response bytes are discarded.
  virtual Status Post(NodeId src, NodeId dst, RpcMethod method,
                      Slice payload) = 0;

  /// Request/response: like Post but the handler's response buffer is
  /// serialized back, metered in the reverse direction, and returned.
  virtual Status Call(NodeId src, NodeId dst, RpcMethod method, Slice payload,
                      std::vector<uint8_t>* response) = 0;

  /// Meter access is only consistent when no frames are in flight (the
  /// engines read meters between phases, under the superstep barrier).
  NetMeter* meter(NodeId node) { return &meters_.at(node); }
  const NetMeter& meter(NodeId node) const { return meters_.at(node); }

  /// Sum of bytes_sent across nodes (= total traffic in one direction).
  uint64_t TotalBytesSent() const;

  /// Snapshot of fault/recovery counters. Like the byte meters, only
  /// consistent between phases.
  virtual TransportFaultCounters fault_counters() const { return {}; }

  /// Local (same-node) frames are still serialized but, like the paper's
  /// systems, do not cross the NIC; by default they are not metered.
  void set_meter_local_traffic(bool v) { meter_local_traffic_ = v; }

 protected:
  /// Looks up the handler and runs it under the destination node's dispatch
  /// mutex, so concurrent senders targeting the same node are serialized (a
  /// simulated node is single-threaded from its own point of view) while
  /// traffic to distinct nodes proceeds in parallel.
  Status Dispatch(const FrameHeader& hdr, Slice payload, Buffer* response);
  /// Updates both endpoints' meters, each under its own per-node mutex.
  void MeterFrame(NodeId src, NodeId dst, uint64_t bytes);
  bool ShouldMeter(NodeId src, NodeId dst) const {
    return meter_local_traffic_ || src != dst;
  }

  uint32_t num_nodes_;
  std::vector<NetMeter> meters_;
  /// meter_mutexes_[n] guards meters_[n]; never held together with another
  /// meter mutex or a dispatch mutex, so there is no lock ordering to get
  /// wrong.
  std::unique_ptr<std::mutex[]> meter_mutexes_;
  /// dispatch_mutexes_[dst] serializes handler execution at node `dst`.
  std::unique_ptr<std::mutex[]> dispatch_mutexes_;
  mutable std::mutex handlers_mutex_;  ///< registration vs dispatch threads
  std::map<std::pair<NodeId, uint16_t>, Handler> handlers_;
  bool meter_local_traffic_ = false;
};

/// \brief In-process transport: frames are serialized and dispatched
/// synchronously in the caller's thread. Deterministic; the default.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(uint32_t num_nodes) : Transport(num_nodes) {}

  Status Post(NodeId src, NodeId dst, RpcMethod method, Slice payload) override;
  Status Call(NodeId src, NodeId dst, RpcMethod method, Slice payload,
              std::vector<uint8_t>* response) override;
};

}  // namespace hybridgraph
