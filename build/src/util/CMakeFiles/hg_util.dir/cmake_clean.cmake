file(REMOVE_RECURSE
  "CMakeFiles/hg_util.dir/logging.cc.o"
  "CMakeFiles/hg_util.dir/logging.cc.o.d"
  "CMakeFiles/hg_util.dir/metrics.cc.o"
  "CMakeFiles/hg_util.dir/metrics.cc.o.d"
  "CMakeFiles/hg_util.dir/rng.cc.o"
  "CMakeFiles/hg_util.dir/rng.cc.o.d"
  "CMakeFiles/hg_util.dir/status.cc.o"
  "CMakeFiles/hg_util.dir/status.cc.o.d"
  "CMakeFiles/hg_util.dir/string_util.cc.o"
  "CMakeFiles/hg_util.dir/string_util.cc.o.d"
  "libhg_util.a"
  "libhg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
