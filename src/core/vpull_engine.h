// Vertex-centric pull baseline: a faithful reimplementation of the GraphLab
// PowerGraph execution model (synchronous GAS over a vertex-cut), extended —
// exactly like the paper's Sec 6 modification — with disk-resident edges and
// an LRU-managed disk-resident vertex table.
//
// This header is a facade: the GAS behavior lives in VPullPath
// (core/paths/vpull_path.h), driven by the same SuperstepDriver that runs
// the block-centric modes — gather maps onto the consume phase, sum onto
// the post-consume drain, apply onto update/produce, scatter onto the
// post-produce drain.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/job_config.h"
#include "core/paths/vpull_path.h"
#include "core/program.h"
#include "core/run_metrics.h"
#include "core/superstep_driver.h"
#include "graph/edge_list.h"
#include "util/status.h"

namespace hybridgraph {

template <typename P>
class VPullEngine {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  VPullEngine(JobConfig config, P program)
      : driver_(std::move(config), std::move(program), /*gas_engine=*/true) {
    StaticCheckProgram<P>();
    vpull_ = std::make_unique<VPullPath<P>>(&driver_);
    driver_.InstallPath(vpull_.get(), /*active=*/true);
  }

  Status Load(const EdgeListGraph& graph) { return driver_.Load(graph); }
  Status Run() { return driver_.Run(); }
  Status RunSuperstep() { return driver_.RunSuperstep(); }

  const JobStats& stats() const { return driver_.stats(); }
  bool converged() const { return driver_.converged(); }
  Result<std::vector<Value>> GatherValues() { return vpull_->GatherValues(); }

 private:
  SuperstepDriver<P> driver_;
  std::unique_ptr<VPullPath<P>> vpull_;
};

}  // namespace hybridgraph
