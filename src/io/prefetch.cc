#include "io/prefetch.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace hybridgraph {

ReadPipeline::ReadPipeline(StorageService* storage, ThreadPool* io_pool,
                           uint32_t depth, uint64_t budget_bytes)
    : storage_(storage),
      io_pool_(io_pool),
      depth_(depth),
      budget_bytes_(budget_bytes) {
  if (enabled()) {
    storage_->SetMutationObserver(
        [this](const std::string& key) { OnMutation(key); });
  }
}

ReadPipeline::~ReadPipeline() {
  if (enabled()) storage_->SetMutationObserver(nullptr);
  // Cancel everything, then wait each handle out: ThreadPool drains its queue
  // on destruction, so every submitted task runs (or short-circuits on the
  // cancelled flag) and Take() terminates. After this loop no background
  // task can touch storage_.
  std::vector<std::shared_ptr<AsyncReadHandle>> handles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& e : entries_) {
      e.handle->Cancel();
      handles.push_back(e.handle);
    }
    entries_.clear();
    staged_bytes_ = 0;
  }
  for (auto& h : handles) (void)h->Take();
}

void ReadPipeline::SetContext(int superstep, int mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  superstep_ = superstep;
  mode_ = mode;
}

void ReadPipeline::SetSpanSink(SpanSink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

std::list<ReadPipeline::Entry>::iterator ReadPipeline::DropEntry(
    std::list<Entry>::iterator it) {
  it->handle->Cancel();
  staged_bytes_ -= it->bytes_estimate;
  return entries_.erase(it);
}

void ReadPipeline::OnMutation(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->key == key) {
      it = DropEntry(it);
    } else {
      ++it;
    }
  }
}

void ReadPipeline::Schedule(const std::string& key, ReadOptions opts) {
  if (!enabled()) return;
  // Size the read BEFORE taking the pipeline lock: SizeOf takes the storage
  // lock, and storage-lock-then-pipeline-lock is the observer's order — the
  // reverse would be an ABBA deadlock.
  const uint64_t size = storage_->SizeOf(key);
  uint64_t estimate;
  if (opts.length == kReadAll) {
    estimate = opts.offset >= size ? 0 : size - opts.offset;
  } else {
    estimate = opts.offset >= size ? 0
                                   : std::min(opts.length, size - opts.offset);
  }
  if (estimate == 0 || estimate > budget_bytes_) return;

  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.key == key && e.opts.offset == opts.offset) return;  // already staged
  }
  while (!entries_.empty() && (entries_.size() >= depth_ ||
                               staged_bytes_ + estimate > budget_bytes_)) {
    DropEntry(entries_.begin());
  }
  Entry entry;
  entry.key = key;
  entry.opts = opts;
  entry.bytes_estimate = estimate;
  // ReadAsync takes no storage lock synchronously, so issuing it under the
  // pipeline lock is safe.
  entry.handle = storage_->ReadAsync(key, opts, io_pool_);
  staged_bytes_ += estimate;
  entries_.push_back(std::move(entry));
  ++stats_.scheduled;
}

Result<ReadResult> ReadPipeline::Fetch(const std::string& key,
                                       const ReadOptions& opts) {
  if (!enabled()) return storage_->Read(key, opts);

  std::shared_ptr<AsyncReadHandle> handle;
  SpanSink sink;
  int superstep = 0;
  int mode = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key != key || it->opts.offset != opts.offset) continue;
      if (it->opts.length == opts.length &&
          it->opts.allow_short == opts.allow_short) {
        handle = it->handle;
        staged_bytes_ -= it->bytes_estimate;
        entries_.erase(it);
      } else {
        // Staged with a different shape: useless, drop it and read sync.
        DropEntry(it);
      }
      break;
    }
    sink = sink_;
    superstep = superstep_;
    mode = mode_;
    if (!handle) ++stats_.misses;
  }
  if (!handle) return storage_->Read(key, opts);

  Result<ReadResult> staged = handle->Take();
  if (staged.ok()) {
    ReadResult res = std::move(staged).ValueOrDie();
    // Charge the model now, at the consumption point — same bytes, same
    // order, same LRU effect as the synchronous read would have had.
    res.cache_hit = storage_->FinishStagedRead(key, res.blob_size,
                                               res.data.size(), opts.io_class);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
      stats_.hit_bytes += res.data.size();
    }
    if (sink) {
      sink("io.prefetch", superstep, mode, handle->start_us(),
           handle->end_us());
    }
    return res;
  }
  if (IsInjectedCrash(staged.status())) return staged.status();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.fallbacks;
  }
  return storage_->Read(key, opts);
}

void ReadPipeline::CancelAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) it = DropEntry(it);
}

ReadPipeline::Stats ReadPipeline::DrainStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  stats_ = Stats{};
  return out;
}

}  // namespace hybridgraph
