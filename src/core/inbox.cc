#include "core/inbox.h"

#include <cstring>
#include <utility>

namespace hybridgraph {

void MessageInbox::Init(size_t msg_size, std::unique_ptr<MessageSpill> spill) {
  msg_size_ = msg_size;
  spill_ = std::move(spill);
}

void MessageInbox::Append(VertexId dst, const uint8_t* payload) {
  dsts_.push_back(dst);
  payloads_.insert(payloads_.end(), payload, payload + msg_size_);
}

void MessageInbox::ClearMem() {
  dsts_.clear();
  payloads_.clear();
  total = 0;
  spilled = 0;
}

void MessageInbox::Swap(MessageInbox& other) {
  std::swap(msg_size_, other.msg_size_);
  dsts_.swap(other.dsts_);
  payloads_.swap(other.payloads_);
  spill_.swap(other.spill_);
  std::swap(total, other.total);
  std::swap(spilled, other.spilled);
}

void PendingSet::Init(uint32_t num_vertices, size_t msg_size,
                      CombineRawFn combiner) {
  msg_size_ = msg_size;
  combiner_ = combiner;
  slots_.assign(num_vertices, {});
  has_.assign(num_vertices, 0);
  added_ = 0;
}

void PendingSet::Add(uint32_t local_idx, const uint8_t* payload) {
  auto& slot = slots_[local_idx];
  if (combiner_ != nullptr) {
    if (has_[local_idx]) {
      combiner_(slot.data(), payload);
    } else {
      slot.assign(payload, payload + msg_size_);
      has_[local_idx] = 1;
    }
  } else {
    slot.insert(slot.end(), payload, payload + msg_size_);
    has_[local_idx] = 1;
  }
  ++added_;
}

void PendingSet::ConsumeAt(uint32_t local_idx) {
  slots_[local_idx].clear();
  has_[local_idx] = 0;
}

}  // namespace hybridgraph
