# Empty dependencies file for hg_graph_tests.
# This may be replaced when dependencies are built.
