// Disk spill for push-mode messages (Giraph-style).
//
// When the receiver-side message buffer B_i overflows, the buffered messages
// are sorted by destination vertex and written out as a run. At the start of
// the next superstep all runs are k-way merged so each vertex sees its
// messages grouped together. Run writes are metered as RANDOM writes — this
// is exactly the "poor temporal locality of messages among destination
// vertices, caused by writing data randomly" cost the paper attributes to
// push — while merge reads are sequential (the 2·IO(M_disk) term of Eq. 7
// splits into IO(M_disk)/s_rw + IO(M_disk)/s_sr in Eq. 11).
//
// The merge is STREAMING: each run is read through a fixed-size buffer
// (MergeIterator), so the drain holds at most
//   num_runs × buffer_bytes_per_run
// of run data in memory at any moment, never the full spilled volume — the
// discipline that keeps push's memory at B_i + merge buffers instead of
// O(M_disk) (GraphD/PartitionedVC-style external-memory access).
//
// Run format (unchanged from the materializing implementation):
//   fixed64 entry_count | entry_count × (fixed32 dst | payload_size bytes)
// Every run is validated against this shape before any byte of it is
// decoded; a truncated or resized run yields Status::Corruption, never an
// out-of-bounds read.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "io/prefetch.h"
#include "io/storage.h"
#include "util/codec.h"
#include "util/status.h"

namespace hybridgraph {

/// One spilled message: destination vertex + opaque fixed-size payload.
struct SpillEntry {
  uint32_t dst;
  std::vector<uint8_t> payload;
};

/// \brief Writes sorted runs of messages and streams them back merged.
class MessageSpill {
 public:
  /// In-place payload combiner: folds `other` into `acc` (both
  /// payload_size bytes). When set, messages for the same destination are
  /// combined while a run is written AND while runs are merged, so combined
  /// runs shrink on disk (Giraph-style combining).
  using CombineFn = void (*)(uint8_t* acc, const uint8_t* other);

  /// Per-run merge buffer used when no explicit size is given
  /// (JobConfig::IoConfig::spill_merge_buffer_bytes is the engine-facing
  /// knob).
  static constexpr uint64_t kDefaultMergeBufferBytes = 64 * 1024;

  /// \param storage metered storage of the owning node.
  /// \param key_prefix unique per (node, superstep parity) to avoid clashes.
  /// \param payload_size fixed serialized size of one message value.
  MessageSpill(StorageService* storage, std::string key_prefix, size_t payload_size);

  /// Arms the combiner (nullptr disarms). Must be set before the first
  /// SpillRun of a batch for runs to shrink on disk.
  void set_combiner(CombineFn fn) { combiner_ = fn; }

  /// Sorts `entries` by destination (combining equal destinations when a
  /// combiner is armed) and writes them as one run. Cleanup-safe: if the
  /// write or sync fails, the partially written run blob is deleted before
  /// the error is returned, so no orphaned `<prefix>/run-*` key survives.
  Status SpillRun(std::vector<SpillEntry> entries);

  /// Number of runs written so far.
  size_t num_runs() const { return num_runs_; }
  /// Entries stored across all runs (post spill-time combining; equals the
  /// number of spilled messages when no combiner is armed).
  uint64_t num_messages() const { return num_messages_; }
  /// Total bytes written to disk by this spill.
  uint64_t bytes_written() const { return bytes_written_; }
  /// Messages folded away by the combiner at SpillRun time.
  uint64_t combined_at_spill() const { return combined_at_spill_; }

  /// \brief Bounded-memory k-way merge over the spilled runs.
  ///
  /// Emits entries grouped by ascending destination; ties across runs are
  /// broken by run index, and within a run by spill position, so the merged
  /// order is a pure function of the spill order (deterministic across
  /// thread counts and independent of heap internals). Reads are metered
  /// sequential and flow through fixed per-run buffers; resident run data
  /// never exceeds buffer_bytes() plus the one entry currently exposed.
  class MergeIterator {
   public:
    /// True while entry() points at a merged entry.
    bool Valid() const { return valid_; }
    /// Current merged entry (combined across runs when a combiner is armed).
    const SpillEntry& entry() const { return current_; }
    /// Advances to the next merged entry; Valid() turns false at the end.
    Status Next();

    /// Entries decoded from disk so far (= bytes consumed / record size).
    uint64_t entries_read() const { return entries_read_; }
    /// Entries emitted through entry() so far (≤ entries_read when merging
    /// with a combiner).
    uint64_t entries_emitted() const { return entries_emitted_; }
    /// Messages folded away by the combiner during this merge.
    uint64_t merge_combined() const { return merge_combined_; }
    /// Fixed buffer allocation of this merge: num_runs × per-run chunk.
    uint64_t buffer_bytes() const { return buffer_bytes_; }
    /// Peak number of spill entries resident in memory at once (buffered
    /// run data plus the current entry). Bounded by
    /// num_runs × (per-run buffer / record size) + 1.
    uint64_t peak_resident_entries() const { return peak_resident_entries_; }

   private:
    friend class MessageSpill;

    /// Streaming view of one run: a window of `chunk_bytes_` over the blob.
    struct RunCursor {
      std::string key;
      uint64_t file_size = 0;   ///< validated blob size
      uint64_t file_pos = 0;    ///< next byte to read from storage
      uint64_t disk_entries = 0;///< entries not yet loaded into the buffer
      std::vector<uint8_t> buf; ///< current chunk
      size_t buf_pos = 0;       ///< head record offset within buf
      uint32_t head_dst = 0;    ///< decoded destination of the head record
      bool has_head = false;
    };

    MergeIterator(StorageService* storage, const MessageSpill* spill,
                  uint64_t buffer_bytes_per_run, ReadPipeline* pipeline);
    Status Open();
    Status Refill(RunCursor* rc);
    /// Stages the run's next chunk on the pipeline (no-op without one), so
    /// the chunk after the one just loaded reads in the background while the
    /// merge consumes the current one — per-run double buffering.
    void ScheduleNextChunk(const RunCursor& rc);
    /// Consumes the head record of run `ri` (refilling as needed) and
    /// re-inserts the run's next head into the heap.
    Status ConsumeHead(size_t ri);
    /// Loads the next merged entry into current_.
    Status PrimeNext();

    StorageService* storage_;
    ReadPipeline* pipeline_;  ///< null = all reads synchronous
    size_t payload_size_;
    size_t record_size_;
    CombineFn combiner_;
    uint64_t chunk_bytes_ = 0;
    uint64_t buffer_bytes_ = 0;

    std::vector<RunCursor> runs_;
    // Min-heap on (dst, run index): the pair's lexicographic order IS the
    // determinism guarantee — equal destinations always drain in run order.
    std::priority_queue<std::pair<uint32_t, size_t>,
                        std::vector<std::pair<uint32_t, size_t>>,
                        std::greater<>>
        heap_;

    SpillEntry current_;
    bool valid_ = false;
    uint64_t entries_read_ = 0;
    uint64_t entries_emitted_ = 0;
    uint64_t merge_combined_ = 0;
    uint64_t resident_entries_ = 0;
    uint64_t peak_resident_entries_ = 0;
  };

  /// Opens a streaming merge over all runs written so far. Every run is
  /// shape-validated up front (header count vs. blob size), so a truncated
  /// or bit-flipped run surfaces as Status::Corruption here or from Next(),
  /// never as an out-of-bounds read. A non-null `pipeline` double-buffers
  /// each run's next chunk in the background (modeled read bytes are
  /// unchanged — see ReadPipeline).
  Result<std::unique_ptr<MergeIterator>> NewMergeIterator(
      uint64_t buffer_bytes_per_run, ReadPipeline* pipeline = nullptr);

  /// Stages every run's FIRST merge chunk on `pipeline` (no-op without one),
  /// shaped exactly like the opening Refill of a NewMergeIterator created
  /// with the same per-run buffer — the drain-overlap warmup called one
  /// superstep before the merge. Safe to call speculatively: unclaimed
  /// chunks are dropped on eviction, Clear() or pipeline shutdown.
  void WarmupMerge(uint64_t buffer_bytes_per_run, ReadPipeline* pipeline) const;

  /// Convenience wrapper: streams the merge (bounded buffers) and appends
  /// every entry, grouped by ascending destination, to `*out`. Output is
  /// materialized — prefer NewMergeIterator on memory-bounded paths (the
  /// engine's inbox drain); this remains for checkpoints and tests.
  Status MergeReadAll(std::vector<SpillEntry>* out);

  /// Deletes every blob under the key prefix — registered runs AND any
  /// orphan left by an earlier crash between write and registration — and
  /// resets state for reuse.
  Status Clear();

 private:
  std::string RunKey(size_t i) const;

  StorageService* storage_;
  std::string key_prefix_;
  size_t payload_size_;
  CombineFn combiner_ = nullptr;
  size_t num_runs_ = 0;
  uint64_t num_messages_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t combined_at_spill_ = 0;
};

}  // namespace hybridgraph
