// The vpull MessagePath: a faithful reimplementation of the GraphLab
// PowerGraph execution model (synchronous GAS over a vertex-cut), extended —
// exactly like the paper's Sec 6 modification — with disk-resident edges and
// an LRU-managed disk-resident vertex table.
//
// Partitioning: edges are hash-partitioned across nodes (vertex-cut); every
// vertex has a hash-assigned master, and a replica on each node that holds
// any of its edges. Per superstep (mapped onto the driver's phases):
//   Gather  (Consume)      — each node sequentially scans its local edge
//             blob; for every edge (u,v) with a responding u it reads u's
//             replica value (LRU cache over the on-disk vertex table: the
//             random-read storm that makes this baseline I/O-inefficient),
//             computes the edge message and folds it into a local partial
//             aggregate for v.
//   Sum     (AfterConsume) — partial aggregates ship to v's master.
//   Apply   (UpdateProduce)— the master runs update() on the combined
//             gather result.
//   Scatter (AfterProduce) — the new value (and responding flag) broadcasts
//             to all replica nodes (the vertex-cut mirror-synchronization
//             traffic), which write it back through the LRU cache (dirty
//             evictions become random writes).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/lru_cache.h"
#include "core/message_path.h"
#include "core/superstep_driver.h"
#include "io/prefetch.h"
#include "io/storage.h"
#include "net/message_codec.h"
#include "util/codec.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

template <typename P>
class VPullPath : public MessagePath<P> {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  explicit VPullPath(SuperstepDriver<P>* driver) : driver_(driver) {}

  EngineMode mode() const override { return EngineMode::kVPull; }
  bool supports_aggregator() const override { return false; }
  bool hybrid_metrics() const override { return false; }

  Status Build(const EdgeListGraph& graph) override {
    const JobConfig& config = driver_->config();
    const uint32_t T = config.num_nodes;
    out_degrees_ = graph.OutDegrees();
    driver_->set_transport(MakeTransport(config));
    nodes_.resize(T);

    // Assign edges (vertex-cut) and discover replica sets.
    std::vector<std::vector<RawEdge>> local_edges(T);
    for (const auto& e : graph.edges) {
      local_edges[EdgeHome(e)].push_back(e);
    }

    for (uint32_t i = 0; i < T; ++i) {
      GasNode& node = nodes_[i];
      node.id = i;
      HG_ASSIGN_OR_RETURN(
          node.storage,
          MakeNodeStorage(config, "gas" + std::to_string(i)));
      if (driver_->io_pool() != nullptr) {
        node.pipeline = std::make_unique<ReadPipeline>(
            node.storage.get(), driver_->io_pool(), config.io.prefetch_depth,
            config.io.prefetch_budget_bytes);
        node.pipeline->SetSpanSink(
            [this, node_id = static_cast<int>(i)](
                const char* name, int superstep, int mode, uint64_t start_us,
                uint64_t end_us) {
              driver_->trace()->AddSteadySpan(name, superstep, node_id,
                                              start_us, end_us,
                                              static_cast<EngineMode>(mode));
            });
      }

      auto intern = [&](VertexId v) -> uint32_t {
        auto it = node.replica_idx.find(v);
        if (it != node.replica_idx.end()) return it->second;
        const uint32_t idx = static_cast<uint32_t>(node.replica_vertex.size());
        node.replica_idx.emplace(v, idx);
        node.replica_vertex.push_back(v);
        return idx;
      };

      // Edge blob in shard-hash order: GraphLab's edge shards carry no vertex
      // id locality, so the gather scan must not hand the LRU a sorted order.
      std::sort(local_edges[i].begin(), local_edges[i].end(),
                [](const RawEdge& a, const RawEdge& b) {
                  auto h = [](const RawEdge& e) {
                    uint64_t x = (static_cast<uint64_t>(e.src) << 32) | e.dst;
                    x *= 0x9E3779B97F4A7C15ULL;
                    return x ^ (x >> 29);
                  };
                  return h(a) < h(b);
                });
      Buffer buf;
      Encoder enc(&buf);
      for (const auto& e : local_edges[i]) {
        intern(e.src);
        intern(e.dst);
        enc.PutFixed32(e.src);
        enc.PutFixed32(e.dst);
        enc.PutFloat(e.weight);
      }
      HG_RETURN_IF_ERROR(
          node.storage->Write(EdgeKey(i), buf.AsSlice(), IoClass::kSeqWrite));
      node.num_edges = local_edges[i].size();
      node.edge_bytes = buf.size();
    }

    // Masters own all their hash-assigned vertices (even isolated ones).
    for (VertexId v = 0; v < graph.num_vertices; ++v) {
      nodes_[MasterOf(v)].owned.push_back(v);
    }
    for (uint32_t i = 0; i < T; ++i) {
      for (VertexId v : nodes_[i].owned) {
        auto it = nodes_[i].replica_idx.find(v);
        if (it == nodes_[i].replica_idx.end()) {
          const uint32_t idx =
              static_cast<uint32_t>(nodes_[i].replica_vertex.size());
          nodes_[i].replica_idx.emplace(v, idx);
          nodes_[i].replica_vertex.push_back(v);
        }
      }
    }
    // Replica location lists at the masters.
    for (uint32_t i = 0; i < T; ++i) {
      for (VertexId v : nodes_[i].replica_vertex) {
        nodes_[MasterOf(v)].replica_nodes[v].push_back(i);
      }
    }

    // On-disk vertex tables + LRU caches + initial values.
    for (uint32_t i = 0; i < T; ++i) {
      GasNode& node = nodes_[i];
      Buffer buf;
      Encoder enc(&buf);
      std::vector<uint8_t> tmp(kValueRecord);
      for (VertexId v : node.replica_vertex) {
        const Value val = driver_->program().InitValue(v, driver_->ctx());
        PodCodec<Value>::Encode(val, tmp.data());
        enc.PutRaw(tmp.data(), tmp.size());
      }
      HG_RETURN_IF_ERROR(
          node.storage->Write(VtabKey(i), buf.AsSlice(), IoClass::kSeqWrite));
      node.gather_staged.resize(T);
      node.apply_staged.resize(T);
      node.replica_responding.assign(node.replica_vertex.size(), 0);
      for (VertexId v : node.replica_vertex) {
        if (driver_->program().InitActive(v)) {
          node.replica_responding[node.replica_idx[v]] = 1;
        }
      }
      const size_t cap = static_cast<size_t>(std::min<uint64_t>(
          config.vpull_vertex_cache, node.replica_vertex.size()));
      GasNode* node_ptr = &node;
      node.cache = std::make_unique<LruCache<uint32_t, Value>>(
          std::max<size_t>(1, cap),
          [this, node_ptr](const uint32_t& idx, const Value& value,
                           bool dirty) {
            if (!dirty) return;
            std::vector<uint8_t> tmp2(kValueRecord);
            PodCodec<Value>::Encode(value, tmp2.data());
            // Dirty eviction: random write into the vertex table.
            Status s = node_ptr->storage->WriteRange(
                VtabKey(node_ptr->id), uint64_t{idx} * kValueRecord,
                Slice(tmp2.data(), tmp2.size()), IoClass::kRandWrite);
            HG_CHECK(s.ok()) << s.ToString();
          });

      driver_->transport().RegisterHandler(
          i, RpcMethod::kGatherPartial,
          [node_ptr](NodeId src, Slice payload, Buffer*) {
            node_ptr->gather_staged[src].emplace_back(
                payload.data(), payload.data() + payload.size());
            return Status::OK();
          });
      driver_->transport().RegisterHandler(
          i, RpcMethod::kApplyBroadcast,
          [node_ptr](NodeId src, Slice payload, Buffer*) {
            node_ptr->apply_staged[src].emplace_back(
                payload.data(), payload.data() + payload.size());
            return Status::OK();
          });
    }

    HG_RETURN_IF_ERROR(driver_->transport().Start());

    uint64_t bytes_written = 0;
    for (auto& node : nodes_) {
      bytes_written += node.storage->meter()->WriteBytes();
    }
    LoadMetrics& load = driver_->mutable_stats()->load;
    load.bytes_written = bytes_written;
    load.load_seconds = ModeledLoadSeconds(config, bytes_written);
    return Status::OK();
  }

  void BeginAccounting() override {
    for (auto& node : nodes_) {
      if (node.pipeline) {
        node.pipeline->SetContext(driver_->superstep(),
                                  static_cast<int>(EngineMode::kVPull));
      }
      node.updated = 0;
      node.responded = 0;
      node.msgs_produced = 0;
      node.cpu_seconds = 0;
      node.mem_highwater = 0;
      node.disk_snapshot = *node.storage->meter();
      node.net_snapshot = *driver_->transport().meter(node.id);
    }
  }

  Status Consume(uint32_t i) override {
    if (driver_->superstep() == 0) return Status::OK();
    return GatherNode(nodes_[i]);
  }

  Status AfterConsume(uint32_t i) override {
    return DrainGatherStaged(nodes_[i]);
  }

  Status UpdateProduce(uint32_t i) override {
    return ApplyScatterNode(nodes_[i]);
  }

  Status AfterProduce(uint32_t i) override {
    return DrainApplyStaged(nodes_[i]);
  }

  Status WarmupNextSuperstep(uint32_t i) override {
    GasNode& node = nodes_[i];
    if (!node.pipeline || !node.pipeline->enabled()) return Status::OK();
    // Next superstep's gather re-scans the (immutable) local edge blob;
    // stage it now so the read overlaps the scatter drain. Skipped by the
    // pipeline when the blob exceeds the prefetch byte budget.
    node.pipeline->Schedule(EdgeKey(node.id),
                            ReadOptions{.io_class = IoClass::kSeqRead});
    return Status::OK();
  }

  SuperstepMetrics EndAccounting(EngineMode produce_mode,
                                 bool switched) override {
    (void)produce_mode;
    (void)switched;
    const JobConfig& config = driver_->config();
    SuperstepMetrics m;
    m.superstep = driver_->superstep();
    m.mode = EngineMode::kVPull;
    double max_node_seconds = 0, max_blocking = 0;
    for (auto& node : nodes_) {
      m.messages_produced += node.msgs_produced;
      m.messages_on_wire += node.msgs_produced;
      m.active_vertices += node.updated;
      m.responding_vertices += node.responded;

      const DiskMeter disk =
          node.storage->meter()->DeltaSince(node.disk_snapshot);
      m.io.adj_edge_bytes += disk.bytes(IoClass::kSeqRead);
      m.io.vrr_bytes += disk.bytes(IoClass::kRandRead);
      m.io.other_bytes += disk.bytes(IoClass::kRandWrite) +
                          disk.bytes(IoClass::kSeqWrite);
      const NetMeter net =
          driver_->transport().meter(node.id)->DeltaSince(node.net_snapshot);
      m.net_bytes += net.bytes_sent;
      m.net_frames += net.frames_sent;

      const double io_s =
          config.memory_resident ? 0.0 : disk.ModeledSeconds(config.disk);
      const double net_s =
          config.net.SecondsFor(std::max(net.bytes_sent, net.bytes_received));
      const double work_s = node.cpu_seconds + io_s;
      const double blocking_s = std::max(0.0, net_s - work_s) +
                                config.net.SecondsFor(std::min<uint64_t>(
                                    config.sending_threshold_bytes,
                                    net.bytes_sent));
      m.cpu_seconds += node.cpu_seconds;
      m.io_seconds += io_s;
      m.net_seconds += net_s;
      max_blocking = std::max(max_blocking, blocking_s);
      max_node_seconds = std::max(max_node_seconds, work_s + blocking_s);
      m.memory_highwater_bytes +=
          node.cache->size() * kValueRecord + node.mem_highwater;
      if (node.pipeline) {
        const ReadPipeline::Stats ps = node.pipeline->DrainStats();
        m.prefetch_scheduled += ps.scheduled;
        m.prefetch_hits += ps.hits;
        m.prefetch_misses += ps.misses + ps.fallbacks;
        m.prefetch_hit_bytes += ps.hit_bytes;
      }
    }
    m.blocking_seconds = max_blocking;
    m.superstep_seconds = max_node_seconds;
    return m;
  }

  void Promote(uint64_t* responding_total,
               uint64_t* inflight_messages) override {
    uint64_t responding = 0;
    for (const auto& node : nodes_) responding += node.responded;
    *responding_total = responding;
    *inflight_messages = 0;
  }

  Result<std::vector<Value>> GatherValues() {
    std::vector<Value> out(driver_->ctx().num_vertices);
    for (auto& node : nodes_) {
      for (VertexId v : node.owned) {
        Value value;
        HG_RETURN_IF_ERROR(CachedRead(node, node.replica_idx[v], &value));
        out[v] = value;
      }
    }
    return out;
  }

 private:
  static constexpr size_t kMsgSize = P::kMessageSize;
  static constexpr size_t kValueRecord = P::kValueSize;

  struct GasNode {
    NodeId id = 0;
    std::unique_ptr<StorageService> storage;
    // Declared after `storage` so its destructor (which cancels and waits
    // out background reads) runs while storage is still alive.
    std::unique_ptr<ReadPipeline> pipeline;

    // Local edge set (on disk as one blob, scanned sequentially).
    uint64_t num_edges = 0;
    uint64_t edge_bytes = 0;

    // Replica table: vertex -> dense local index into the on-disk vertex
    // table; out-degree is global static metadata kept in memory.
    std::unordered_map<VertexId, uint32_t> replica_idx;
    std::vector<VertexId> replica_vertex;  // inverse map
    std::vector<uint8_t> replica_responding;
    std::unique_ptr<LruCache<uint32_t, Value>> cache;

    // Master role: owned vertices and where their replicas live.
    std::vector<VertexId> owned;
    std::unordered_map<VertexId, std::vector<NodeId>> replica_nodes;
    // Gather results arriving at the master.
    std::unordered_map<VertexId, std::vector<Message>> pending;

    // Raw payloads stashed by the RPC handlers, indexed by sender. Handlers
    // run in the sender's thread (under this node's dispatch lock) while
    // this node's own phase task may be running, so they must not touch
    // pending / cache / replica_responding; the staged payloads drain in
    // sender order at the next barrier, which reproduces the sequential
    // arrival order (sender x finished its whole phase before sender x+1).
    std::vector<std::vector<std::vector<uint8_t>>> gather_staged;
    std::vector<std::vector<std::vector<uint8_t>>> apply_staged;

    // Per-superstep counters.
    uint64_t updated = 0;
    uint64_t responded = 0;
    uint64_t msgs_produced = 0;
    double cpu_seconds = 0;
    uint64_t mem_highwater = 0;
    DiskMeter disk_snapshot;
    NetMeter net_snapshot;
  };

  std::string EdgeKey(NodeId n) const {
    return StringFormat("node%u/gas/edges", n);
  }
  std::string VtabKey(NodeId n) const {
    return StringFormat("node%u/gas/vtab", n);
  }

  NodeId MasterOf(VertexId v) const {
    return static_cast<NodeId>((v * 2654435761u) %
                               driver_->config().num_nodes);
  }
  NodeId EdgeHome(const RawEdge& e) const {
    const uint64_t h = (static_cast<uint64_t>(e.src) << 32) | e.dst;
    return static_cast<NodeId>((h * 0x9E3779B97F4A7C15ULL >> 33) %
                               driver_->config().num_nodes);
  }

  /// Reads a replica value through the node's LRU cache.
  Status CachedRead(GasNode& node, uint32_t idx, Value* out) {
    if (Value* hit = node.cache->Get(idx)) {
      *out = *hit;
      return Status::OK();
    }
    node.cache->RecordMiss();
    node.cpu_seconds += driver_->config().vpull_miss_penalty_s;
    HG_ASSIGN_OR_RETURN(
        ReadResult rec,
        node.storage->Read(VtabKey(node.id),
                           {.offset = uint64_t{idx} * kValueRecord,
                            .length = kValueRecord,
                            .io_class = IoClass::kRandRead}));
    *out = PodCodec<Value>::Decode(rec.data.data());
    node.cache->Put(idx, *out, /*dirty=*/false);
    return Status::OK();
  }

  /// Writes a replica value through the cache (dirty; evict = random write).
  Status CachedWrite(GasNode& node, uint32_t idx, const Value& value) {
    node.cache->Put(idx, value, /*dirty=*/true);
    return Status::OK();
  }

  Status HandleGatherPartial(GasNode& node, Slice payload) {
    std::vector<GroupedBatchCodec::Group> groups;
    HG_RETURN_IF_ERROR(GroupedBatchCodec::Decode(payload, kMsgSize, &groups));
    for (const auto& g : groups) {
      auto& slot = node.pending[g.dst];
      for (const auto& p : g.payloads) {
        const Message m = PodCodec<Message>::Decode(p.data());
        if (P::kCombinable && !slot.empty()) {
          slot[0] = P::Combine(slot[0], m);
        } else {
          slot.push_back(m);
        }
      }
    }
    return Status::OK();
  }

  Status HandleApplyBroadcast(GasNode& node, Slice payload) {
    // (vertex, value, responding) triples from masters to replicas.
    Decoder dec(payload);
    uint64_t count;
    HG_RETURN_IF_ERROR(dec.GetVarint64(&count));
    Slice raw;
    for (uint64_t k = 0; k < count; ++k) {
      uint32_t v;
      uint8_t responding;
      HG_RETURN_IF_ERROR(dec.GetFixed32(&v));
      HG_RETURN_IF_ERROR(dec.GetU8(&responding));
      HG_RETURN_IF_ERROR(dec.GetRaw(kValueRecord, &raw));
      auto it = node.replica_idx.find(v);
      if (it == node.replica_idx.end()) {
        return Status::Internal("broadcast to node without replica");
      }
      const Value value = PodCodec<Value>::Decode(raw.data());
      HG_RETURN_IF_ERROR(CachedWrite(node, it->second, value));
      node.replica_responding[it->second] = responding;
    }
    return Status::OK();
  }

  /// Gather phase for one node (runs as a pool task).
  Status GatherNode(GasNode& node) {
    const JobConfig& config = driver_->config();
    // Gather: scan local edges, read source replicas, build partials.
    // Per destination master node: grouped partial aggregates.
    std::vector<std::unordered_map<VertexId, std::vector<Message>>> partials(
        config.num_nodes);
    const ReadOptions edge_opts{.io_class = IoClass::kSeqRead};
    auto read = node.pipeline
                    ? node.pipeline->Fetch(EdgeKey(node.id), edge_opts)
                    : node.storage->Read(EdgeKey(node.id), edge_opts);
    if (!read.ok()) return read.status();
    const std::vector<uint8_t> raw = std::move(read->data);
    Decoder dec{Slice(raw)};
    Value src_value;
    while (!dec.AtEnd()) {
      RawEdge e;
      HG_RETURN_IF_ERROR(dec.GetFixed32(&e.src));
      HG_RETURN_IF_ERROR(dec.GetFixed32(&e.dst));
      HG_RETURN_IF_ERROR(dec.GetFloat(&e.weight));
      const uint32_t src_idx = node.replica_idx[e.src];
      if (!node.replica_responding[src_idx]) continue;
      HG_RETURN_IF_ERROR(CachedRead(node, src_idx, &src_value));
      const Message msg = driver_->program().GenMessage(
          e.src, src_value, out_degrees_[e.src], {e.dst, e.weight},
          driver_->ctx());
      ++node.msgs_produced;
      node.cpu_seconds += config.cpu.per_edge_s + config.cpu.per_message_s;
      auto& slot = partials[MasterOf(e.dst)][e.dst];
      if (P::kCombinable && !slot.empty()) {
        slot[0] = P::Combine(slot[0], msg);
      } else {
        slot.push_back(msg);
      }
    }
    // Ship partials to masters (the receiving handler only stages the bytes).
    std::vector<uint8_t> tmp(kMsgSize);
    for (uint32_t y = 0; y < config.num_nodes; ++y) {
      if (partials[y].empty()) continue;
      std::vector<GroupedBatchCodec::Group> groups;
      groups.reserve(partials[y].size());
      for (auto& [v, msgs] : partials[y]) {
        GroupedBatchCodec::Group g;
        g.dst = v;
        for (const Message& msg : msgs) {
          PodCodec<Message>::Encode(msg, tmp.data());
          g.payloads.push_back(tmp);
        }
        groups.push_back(std::move(g));
      }
      Buffer payload;
      GroupedBatchCodec::Encode(groups, kMsgSize, &payload);
      node.mem_highwater =
          std::max<uint64_t>(node.mem_highwater, payload.size());
      HG_RETURN_IF_ERROR(driver_->transport().Post(
          node.id, y, RpcMethod::kGatherPartial, payload.AsSlice()));
    }
    return Status::OK();
  }

  /// Apply + Scatter phase for one node (runs as a pool task).
  Status ApplyScatterNode(GasNode& node) {
    const JobConfig& config = driver_->config();
    const int superstep = driver_->superstep();
    // Apply + Scatter at this master. Broadcast staging per replica node.
    std::vector<Message> no_msgs;
    std::vector<Buffer> bodies(config.num_nodes);
    std::vector<uint64_t> counts(config.num_nodes, 0);
    std::vector<uint8_t> tmp(kValueRecord);

    for (VertexId v : node.owned) {
      auto pit = node.pending.find(v);
      const bool has_msgs = pit != node.pending.end();
      const bool run_update =
          P::kAlwaysActive
              ? (superstep > 0 || driver_->program().InitActive(v))
              : (has_msgs ||
                 (superstep == 0 && driver_->program().InitActive(v)));
      const uint32_t idx = node.replica_idx[v];
      if (!run_update) {
        // BSP semantics: a vertex that does not update this superstep does
        // not respond this superstep. Clear a stale flag on every replica.
        if (superstep > 0 && node.replica_responding[idx]) {
          node.replica_responding[idx] = 0;
          Value value;
          HG_RETURN_IF_ERROR(CachedRead(node, idx, &value));
          std::vector<uint8_t> vtmp(kValueRecord);
          PodCodec<Value>::Encode(value, vtmp.data());
          for (NodeId rn : node.replica_nodes[v]) {
            if (rn == node.id) continue;
            Encoder enc(&bodies[rn]);
            enc.PutFixed32(v);
            enc.PutU8(0);
            enc.PutRaw(vtmp.data(), vtmp.size());
            ++counts[rn];
          }
        }
        continue;
      }
      Value value;
      HG_RETURN_IF_ERROR(CachedRead(node, idx, &value));
      const auto& msgs = has_msgs ? pit->second : no_msgs;
      const UpdateResult res =
          driver_->program().Update(v, &value, msgs, driver_->ctx());
      ++node.updated;
      node.cpu_seconds += config.cpu.per_vertex_update_s +
                          config.cpu.per_message_s * msgs.size();
      if (res.changed) {
        HG_RETURN_IF_ERROR(CachedWrite(node, idx, value));
      }
      if (res.respond) {
        ++node.responded;
      }
      const uint8_t responding = res.respond ? 1 : 0;
      const bool flag_changed = node.replica_responding[idx] != responding;
      node.replica_responding[idx] = responding;
      // Mirror synchronization: value/flag changes go to every replica node.
      if (res.changed || flag_changed) {
        PodCodec<Value>::Encode(value, tmp.data());
        for (NodeId rn : node.replica_nodes[v]) {
          if (rn == node.id) continue;
          Encoder enc(&bodies[rn]);
          enc.PutFixed32(v);
          enc.PutU8(responding);
          enc.PutRaw(tmp.data(), tmp.size());
          ++counts[rn];
        }
      }
    }
    node.pending.clear();

    for (uint32_t y = 0; y < config.num_nodes; ++y) {
      if (counts[y] == 0) continue;
      Buffer framed;
      Encoder enc(&framed);
      enc.PutVarint64(counts[y]);
      enc.PutRaw(bodies[y].data(), bodies[y].size());
      HG_RETURN_IF_ERROR(driver_->transport().Post(
          node.id, y, RpcMethod::kApplyBroadcast, framed.AsSlice()));
    }
    return Status::OK();
  }

  /// Applies staged handler payloads in sender order (post-barrier).
  Status DrainGatherStaged(GasNode& node) {
    for (uint32_t src = 0; src < driver_->config().num_nodes; ++src) {
      for (const auto& payload : node.gather_staged[src]) {
        HG_RETURN_IF_ERROR(
            HandleGatherPartial(node, Slice(payload.data(), payload.size())));
      }
      node.gather_staged[src].clear();
    }
    return Status::OK();
  }

  Status DrainApplyStaged(GasNode& node) {
    for (uint32_t src = 0; src < driver_->config().num_nodes; ++src) {
      for (const auto& payload : node.apply_staged[src]) {
        HG_RETURN_IF_ERROR(
            HandleApplyBroadcast(node, Slice(payload.data(), payload.size())));
      }
      node.apply_staged[src].clear();
    }
    return Status::OK();
  }

  SuperstepDriver<P>* driver_;
  std::vector<GasNode> nodes_;
  std::vector<uint32_t> out_degrees_;
};

}  // namespace hybridgraph
