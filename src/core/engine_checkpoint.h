// Checkpoint image format v2 for the block-centric engine: vertex values,
// flags and the undelivered inbox per node, framed by a magic/version header
// and an FNV-1a trailer. Compiled once; the driver hands in pointers to its
// scalar state so partial-failure mutation order matches the original
// template code exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hybrid_switch.h"
#include "core/job_config.h"
#include "core/node_state.h"
#include "util/buffer.h"
#include "util/status.h"

namespace hybridgraph {

/// Views into the driver's scalar state captured/restored by checkpoints.
/// RestoreCheckpoint writes through `last_rco` and `prev_aggregate` directly
/// while decoding (the historical partial-failure behaviour); everything else
/// is decoded into locals and assigned only after the header parses.
struct CheckpointState {
  int* superstep = nullptr;
  EngineMode* mode = nullptr;
  EngineMode* prev_produce = nullptr;
  bool* converged = nullptr;
  HybridState* hybrid = nullptr;
  double* prev_aggregate = nullptr;  ///< ctx.prev_aggregate
};

Status WriteEngineCheckpoint(std::vector<NodeState>& nodes,
                             const RangePartition& partition,
                             const CheckpointState& state, size_t msg_size,
                             Buffer* out);

/// Restores a v2 image. On success *supersteps_run is set to the restored
/// superstep; on failure the driver state may be partially mutated (exactly
/// as before the refactor — recovery_test relies on the checksum rejecting
/// torn images before any mutation).
Status RestoreEngineCheckpoint(std::vector<NodeState>& nodes,
                               const RangePartition& partition,
                               const JobConfig& config,
                               const CheckpointState& state, size_t msg_size,
                               Slice data, int* supersteps_run);

}  // namespace hybridgraph
