// Label propagation (community detection, Raghavan et al.):
// Always-Active-Style with NON-combinable messages — every vertex needs the
// full multiset of neighbor labels to take the majority, so only
// concatenation applies (paper Sec 6: "Messages, i.e., community labels, are
// thereby not commutative").
#pragma once

#include <unordered_map>

#include "core/program.h"

namespace hybridgraph {

/// \brief LPA vertex program: adopt the label a maximum number of
/// in-neighbors hold (ties broken toward the smaller label, deterministic).
struct LpaProgram {
  using Value = uint32_t;
  using Message = uint32_t;
  static constexpr bool kCombinable = false;
  static constexpr bool kAlwaysActive = true;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);

  Value InitValue(VertexId v, const SuperstepContext&) const { return v; }
  bool InitActive(VertexId) const { return true; }

  UpdateResult Update(VertexId v, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0 || msgs.empty()) {
      return {false, true};
    }
    std::unordered_map<uint32_t, uint32_t> counts;
    counts.reserve(msgs.size());
    for (uint32_t label : msgs) ++counts[label];
    uint32_t best_label = *value;
    uint32_t best_count = 0;
    for (const auto& [label, count] : counts) {
      if (count > best_count || (count == best_count && label < best_label)) {
        best_label = label;
        best_count = count;
      }
    }
    const bool changed = best_label != *value;
    *value = best_label;
    // All vertices must keep broadcasting so neighbors see the full label
    // multiset every superstep.
    return {changed, true};
  }

  Message GenMessage(VertexId, const Value& value, uint32_t, const Edge&,
                     const SuperstepContext&) const {
    return value;
  }

  static Message Combine(const Message& a, const Message&) { return a; }
};

}  // namespace hybridgraph
