// Figure 17 — per-superstep blocking time (message exchange time) of push,
// pushM and b-pull for PageRank over wiki and orkut with sufficient memory.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_fig17_blocking",
              "Fig 17: blocking time per superstep, push vs pushM vs b-pull");
  for (const char* name : {"wiki", "orkut"}) {
    const DatasetSpec spec = FindDataset(name).ValueOrDie();
    const double shrink = ShrinkFor(spec);
    const EdgeListGraph& graph = CachedGraph(spec, shrink);
    std::printf("\n-- PageRank over %s: blocking seconds per superstep --\n",
                name);
    std::printf("%4s %12s %12s %12s\n", "t", "push", "pushM", "b-pull");
    std::vector<std::vector<double>> series;
    for (EngineMode mode :
         {EngineMode::kPush, EngineMode::kPushM, EngineMode::kBPull}) {
      JobConfig cfg = SufficientMemoryConfig(spec, shrink);
      cfg.max_supersteps = 5;
      auto stats = RunAlgo(graph, Algo::kPageRank, mode, cfg);
      std::vector<double> col;
      if (stats.ok()) {
        for (const auto& s : stats->supersteps) {
          col.push_back(s.blocking_seconds);
        }
      }
      series.push_back(std::move(col));
    }
    for (size_t t = 0; t < 5; ++t) {
      std::printf("%4zu", t + 1);
      for (const auto& col : series) {
        if (t < col.size()) {
          std::printf(" %12.6f", col[t]);
        } else {
          std::printf(" %12s", "-");
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nexpected shape: b-pull starts exchanging messages only from the 2nd\n"
      "superstep and then offers comparable (or lower) blocking time than\n"
      "push thanks to concatenated/combined transfers.\n");
  return 0;
}
