#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hybridgraph {

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return buf;
}

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string TrimString(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StringFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace hybridgraph
