// Disk cost model. Every byte moved to/from the simulated disk is metered by
// access class; modeled time = bytes / throughput (+ a fixed per-random-op
// software/seek overhead). A whole-blob page cache models the OS cache the
// paper's cluster machines have: graph structures that are re-read every
// superstep (Vblocks, Eblocks, adjacency blocks) become RAM-speed after the
// first touch, while spill/dirty writes always pay device cost — exactly the
// asymmetry that makes push's receiver-side message spilling so much more
// expensive than b-pull's sender-side graph re-reads.
//
// Each profile carries two sets of numbers:
//  * runtime-model throughputs (realistic device + RAM speeds) used to turn
//    metered bytes into modeled seconds, and
//  * the paper's Table-3 fio calibration numbers (mixed random/sequential
//    pattern) used verbatim in the Q_t switching metric (Eq. 11), as the
//    paper does.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace hybridgraph {

/// Access class of a disk operation. The paper's cost formulas distinguish
/// sequential reads (s_sr), random reads (s_rr) and random writes (s_rw).
enum class IoClass : int {
  kSeqRead = 0,
  kSeqWrite = 1,
  kRandRead = 2,
  kRandWrite = 3,
};

constexpr int kNumIoClasses = 4;

const char* IoClassName(IoClass c);

/// Page-cache (RAM) read throughput.
constexpr double kRamMbps = 3000.0;

/// \brief Device profile: runtime-model throughputs plus Table-3 calibration.
struct DiskProfile {
  std::string name;
  // Runtime model (MB/s).
  double seq_read_mbps;
  double seq_write_mbps;
  double rand_read_mbps;
  double rand_write_mbps;
  /// Fixed software + positioning overhead per random operation (seconds);
  /// charged whether or not the page cache absorbs the bytes.
  double per_random_op_s;

  // Table 3 numbers (fio, mixed pattern) for the Q_t metric.
  double qt_rand_read_mbps;
  double qt_rand_write_mbps;
  double qt_seq_read_mbps;

  double MbpsFor(IoClass c) const {
    switch (c) {
      case IoClass::kSeqRead:
        return seq_read_mbps;
      case IoClass::kSeqWrite:
        return seq_write_mbps;
      case IoClass::kRandRead:
        return rand_read_mbps;
      case IoClass::kRandWrite:
        return rand_write_mbps;
    }
    return 1.0;
  }

  /// Local cluster, 7200RPM HDD. Table 3: s_rr/s_rw/s_sr =
  /// 1.177/1.182/2.358 MB/s.
  static DiskProfile Hdd();
  /// Amazon cluster, SSD. Table 3: 18.177/18.194/18.270 MB/s.
  static DiskProfile Ssd();
};

/// \brief Per-node byte meter keyed by IoClass; converts to modeled seconds.
///
/// Bytes served from the page cache are tracked separately (`cached`) and
/// charged at RAM speed; random operations additionally pay the per-op
/// overhead regardless of cache residency.
class DiskMeter {
 public:
  void Record(IoClass c, uint64_t bytes) {
    bytes_[static_cast<int>(c)] += bytes;
    ops_[static_cast<int>(c)] += 1;
  }
  void RecordCached(IoClass c, uint64_t bytes) {
    cached_bytes_[static_cast<int>(c)] += bytes;
    ops_[static_cast<int>(c)] += 1;
  }

  /// Device bytes (cache misses + all writes).
  uint64_t bytes(IoClass c) const { return bytes_[static_cast<int>(c)]; }
  /// Bytes served from the page cache.
  uint64_t cached_bytes(IoClass c) const {
    return cached_bytes_[static_cast<int>(c)];
  }
  uint64_t ops(IoClass c) const { return ops_[static_cast<int>(c)]; }

  /// All bytes that crossed the storage interface (device + cached).
  uint64_t TotalBytes() const {
    uint64_t t = 0;
    for (auto b : bytes_) t += b;
    for (auto b : cached_bytes_) t += b;
    return t;
  }
  uint64_t ReadBytes() const {
    return bytes(IoClass::kSeqRead) + bytes(IoClass::kRandRead) +
           cached_bytes(IoClass::kSeqRead) + cached_bytes(IoClass::kRandRead);
  }
  uint64_t WriteBytes() const {
    return bytes(IoClass::kSeqWrite) + bytes(IoClass::kRandWrite) +
           cached_bytes(IoClass::kSeqWrite) + cached_bytes(IoClass::kRandWrite);
  }

  /// Modeled wall time this meter's traffic would take on `profile`.
  double ModeledSeconds(const DiskProfile& profile) const {
    double t = 0.0;
    uint64_t rand_ops = 0;
    for (int c = 0; c < kNumIoClasses; ++c) {
      t += static_cast<double>(bytes_[c]) /
           (profile.MbpsFor(static_cast<IoClass>(c)) * 1024.0 * 1024.0);
      t += static_cast<double>(cached_bytes_[c]) / (kRamMbps * 1024.0 * 1024.0);
    }
    rand_ops = ops_[static_cast<int>(IoClass::kRandRead)] +
               ops_[static_cast<int>(IoClass::kRandWrite)];
    t += static_cast<double>(rand_ops) * profile.per_random_op_s;
    return t;
  }

  void Reset() {
    bytes_.fill(0);
    cached_bytes_.fill(0);
    ops_.fill(0);
  }

  /// Byte-wise difference (this - earlier); used for per-superstep deltas.
  DiskMeter DeltaSince(const DiskMeter& earlier) const {
    DiskMeter d;
    for (int c = 0; c < kNumIoClasses; ++c) {
      d.bytes_[c] = bytes_[c] - earlier.bytes_[c];
      d.cached_bytes_[c] = cached_bytes_[c] - earlier.cached_bytes_[c];
      d.ops_[c] = ops_[c] - earlier.ops_[c];
    }
    return d;
  }

 private:
  std::array<uint64_t, kNumIoClasses> bytes_{};
  std::array<uint64_t, kNumIoClasses> cached_bytes_{};
  std::array<uint64_t, kNumIoClasses> ops_{};
};

}  // namespace hybridgraph
