#include "util/status.h"

namespace hybridgraph {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNetworkError:
      return "NetworkError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace hybridgraph
