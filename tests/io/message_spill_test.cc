#include "io/message_spill.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace hybridgraph {
namespace {

std::vector<uint8_t> Payload(uint32_t v) {
  std::vector<uint8_t> p(4);
  std::memcpy(p.data(), &v, 4);
  return p;
}

uint32_t PayloadValue(const std::vector<uint8_t>& p) {
  uint32_t v;
  std::memcpy(&v, p.data(), 4);
  return v;
}

TEST(MessageSpill, SingleRunSortedByDst) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  std::vector<SpillEntry> run;
  run.push_back({5, Payload(50)});
  run.push_back({1, Payload(10)});
  run.push_back({3, Payload(30)});
  ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
  EXPECT_EQ(spill.num_runs(), 1u);
  EXPECT_EQ(spill.num_messages(), 3u);

  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].dst, 1u);
  EXPECT_EQ(out[1].dst, 3u);
  EXPECT_EQ(out[2].dst, 5u);
  EXPECT_EQ(PayloadValue(out[2].payload), 50u);
}

TEST(MessageSpill, MergeAcrossRunsGroupsDestinations) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{2, Payload(1)}, {4, Payload(2)}}).ok());
  ASSERT_TRUE(spill.SpillRun({{2, Payload(3)}, {1, Payload(4)}}).ok());
  ASSERT_TRUE(spill.SpillRun({{4, Payload(5)}}).ok());

  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 5u);
  // Non-decreasing by destination; all messages for one dst adjacent.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].dst, out[i].dst);
  }
  EXPECT_EQ(out[0].dst, 1u);
  EXPECT_EQ(out[1].dst, 2u);
  EXPECT_EQ(out[2].dst, 2u);
}

TEST(MessageSpill, EmptyRunIsNoop) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({}).ok());
  EXPECT_EQ(spill.num_runs(), 0u);
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(MessageSpill, WritesAreRandomReadsSequential) {
  // The I/O classes are the paper's model: spills are random writes (poor
  // destination locality), merge reads are sequential.
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}, {2, Payload(2)}}).ok());
  EXPECT_GT(storage.meter()->bytes(IoClass::kRandWrite), 0u);
  EXPECT_EQ(storage.meter()->bytes(IoClass::kSeqRead) +
                storage.meter()->cached_bytes(IoClass::kSeqRead),
            0u);
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  EXPECT_GT(storage.meter()->bytes(IoClass::kSeqRead) +
                storage.meter()->cached_bytes(IoClass::kSeqRead),
            0u);
}

TEST(MessageSpill, ClearResetsAndDeletesBlobs) {
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  ASSERT_TRUE(spill.SpillRun({{1, Payload(1)}}).ok());
  EXPECT_FALSE(storage.ListKeys("t/").empty());
  ASSERT_TRUE(spill.Clear().ok());
  EXPECT_EQ(spill.num_runs(), 0u);
  EXPECT_EQ(spill.num_messages(), 0u);
  EXPECT_TRUE(storage.ListKeys("t/").empty());
  // Reusable after clear.
  ASSERT_TRUE(spill.SpillRun({{7, Payload(7)}}).ok());
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 7u);
}

class SpillFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpillFuzzTest, RandomRunsMergeSorted) {
  Rng rng(GetParam());
  MemStorage storage;
  MessageSpill spill(&storage, "t", 4);
  uint64_t total = 0;
  std::vector<uint64_t> per_dst_count(64, 0);
  const int runs = 2 + rng.NextBounded(6);
  for (int r = 0; r < runs; ++r) {
    std::vector<SpillEntry> run;
    const int n = 1 + rng.NextBounded(200);
    for (int i = 0; i < n; ++i) {
      const uint32_t dst = static_cast<uint32_t>(rng.NextBounded(64));
      run.push_back({dst, Payload(dst * 1000)});
      ++per_dst_count[dst];
      ++total;
    }
    ASSERT_TRUE(spill.SpillRun(std::move(run)).ok());
  }
  std::vector<SpillEntry> out;
  ASSERT_TRUE(spill.MergeReadAll(&out).ok());
  ASSERT_EQ(out.size(), total);
  std::vector<uint64_t> seen(64, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    if (i > 0) ASSERT_LE(out[i - 1].dst, out[i].dst);
    ASSERT_EQ(PayloadValue(out[i].payload), out[i].dst * 1000);
    ++seen[out[i].dst];
  }
  EXPECT_EQ(seen, per_dst_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillFuzzTest, ::testing::Values(1, 7, 21, 99));

}  // namespace
}  // namespace hybridgraph
