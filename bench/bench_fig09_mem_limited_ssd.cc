// Figure 9 — runtime with LIMITED memory on the amazon (SSD) cluster:
// same grid as Fig 8 but with the SSD profile and the weaker virtual CPUs
// (cpu scale 2, Sec 6.1).
#include "bench_runtime_grid.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_fig09_mem_limited_ssd",
              "Fig 9: runtime with limited memory (amazon cluster, SSD)");
  GridOptions opts;
  opts.datasets = {"livej", "wiki", "orkut", "twi", "fri", "uk"};
  opts.make_config = [](const DatasetSpec& spec, double shrink) {
    return LimitedMemoryConfig(spec, shrink, DiskProfile::Ssd());
  };
  RunGrid(opts);
  std::printf(
      "\nexpected shape: pull/pushM/b-pull/hybrid speed up 1.7-3.6x vs HDD;\n"
      "push barely improves (its sort-merge is compute-bound on the weak\n"
      "virtual CPUs); b-pull and hybrid still win.\n");
  return 0;
}
