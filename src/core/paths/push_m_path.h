// The pushM MessagePath (MOCgraph online computing, Sec 3.1/6): push, plus a
// hot-aware vertex cache — the B_i highest in-degree local vertices stay
// memory-resident and incoming messages for them fold into per-vertex
// accumulators at receive time instead of being stored.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/paths/push_path.h"

namespace hybridgraph {

template <typename P>
class PushMPath : public PushPath<P> {
 public:
  explicit PushMPath(SuperstepDriver<P>* driver) : PushPath<P>(driver) {}

  EngineMode mode() const override { return EngineMode::kPushM; }

  Status Build(const EdgeListGraph& graph) override {
    HG_RETURN_IF_ERROR(PushPath<P>::Build(graph));
    // pushM vertex cache: the B_i highest in-degree local vertices stay
    // memory-resident (MOCgraph's hot-aware placement).
    const auto in_degrees = graph.InDegrees();
    for (NodeState& node : this->driver_->nodes()) {
      const uint32_t n = node.range.size();
      node.moc_cached.assign(n, 0);
      if constexpr (P::kCombinable) {
        node.moc_acc.assign(static_cast<size_t>(n) * P::kMessageSize, 0);
        node.moc_slots = n;
      }
      node.moc_has.assign(n, 0);
      const uint64_t cap = this->driver_->config().msg_buffer_per_node;
      if (cap >= n) {
        std::fill(node.moc_cached.begin(), node.moc_cached.end(), 1);
      } else {
        std::vector<uint32_t> idx(n);
        std::iota(idx.begin(), idx.end(), 0);
        std::nth_element(idx.begin(), idx.begin() + cap, idx.end(),
                         [&](uint32_t a, uint32_t b) {
                           return in_degrees[node.range.begin + a] >
                                  in_degrees[node.range.begin + b];
                         });
        for (uint64_t k = 0; k < cap; ++k) node.moc_cached[idx[k]] = 1;
      }
    }
    return Status::OK();
  }
};

}  // namespace hybridgraph
