// Core graph types shared across stores and engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hybridgraph {

using VertexId = uint32_t;

/// An outgoing edge as stored in adjacency lists and Eblock fragments.
struct Edge {
  VertexId dst;
  float weight;

  bool operator==(const Edge& other) const {
    return dst == other.dst && weight == other.weight;
  }
};

/// An edge with explicit source, as produced by loaders and generators.
struct RawEdge {
  VertexId src;
  VertexId dst;
  float weight;

  bool operator==(const RawEdge& other) const {
    return src == other.src && dst == other.dst && weight == other.weight;
  }
};

/// Serialized sizes on disk/wire: dst (fixed32) + weight (float32).
constexpr size_t kEdgeEncodedSize = 8;

/// Half-open range of vertex ids.
struct VertexRange {
  VertexId begin = 0;
  VertexId end = 0;

  uint32_t size() const { return end - begin; }
  bool Contains(VertexId v) const { return v >= begin && v < end; }
};

}  // namespace hybridgraph
