// Thread-count invariance: running the simulated nodes on a pool of worker
// threads must leave results AND every modeled per-superstep metric
// bit-identical to the fully sequential run, for every engine mode —
// including when a checkpoint written by a parallel run is restored into a
// sequential engine mid-job (and vice versa).
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/engine.h"
#include "graph/generator.h"
#include "hybridgraph/any_engine.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph() { return GeneratePowerLaw(800, 8.0, 0.75, 321); }

void ExpectSameMetrics(const SuperstepMetrics& a, const SuperstepMetrics& b,
                       const std::string& where) {
  EXPECT_EQ(a.superstep, b.superstep) << where;
  EXPECT_EQ(a.mode, b.mode) << where;
  EXPECT_EQ(a.switched, b.switched) << where;
  EXPECT_EQ(a.active_vertices, b.active_vertices) << where;
  EXPECT_EQ(a.responding_vertices, b.responding_vertices) << where;
  EXPECT_EQ(a.messages_produced, b.messages_produced) << where;
  EXPECT_EQ(a.messages_on_wire, b.messages_on_wire) << where;
  EXPECT_EQ(a.messages_combined, b.messages_combined) << where;
  EXPECT_EQ(a.messages_spilled, b.messages_spilled) << where;
  EXPECT_EQ(a.io.vt_bytes, b.io.vt_bytes) << where;
  EXPECT_EQ(a.io.adj_edge_bytes, b.io.adj_edge_bytes) << where;
  EXPECT_EQ(a.io.msg_spill_write, b.io.msg_spill_write) << where;
  EXPECT_EQ(a.io.msg_spill_read, b.io.msg_spill_read) << where;
  EXPECT_EQ(a.io.eblock_edge_bytes, b.io.eblock_edge_bytes) << where;
  EXPECT_EQ(a.io.fragment_aux_bytes, b.io.fragment_aux_bytes) << where;
  EXPECT_EQ(a.io.vrr_bytes, b.io.vrr_bytes) << where;
  EXPECT_EQ(a.io.other_bytes, b.io.other_bytes) << where;
  EXPECT_EQ(a.net_bytes, b.net_bytes) << where;
  EXPECT_EQ(a.net_frames, b.net_frames) << where;
  // Modeled times are sums of config constants in a deterministic order, so
  // they must be bit-identical, not merely close.
  EXPECT_EQ(a.cpu_seconds, b.cpu_seconds) << where;
  EXPECT_EQ(a.io_seconds, b.io_seconds) << where;
  EXPECT_EQ(a.net_seconds, b.net_seconds) << where;
  EXPECT_EQ(a.blocking_seconds, b.blocking_seconds) << where;
  EXPECT_EQ(a.superstep_seconds, b.superstep_seconds) << where;
  EXPECT_EQ(a.memory_highwater_bytes, b.memory_highwater_bytes) << where;
  EXPECT_EQ(a.spill_merge_buffer_bytes, b.spill_merge_buffer_bytes) << where;
  EXPECT_EQ(a.spill_peak_resident, b.spill_peak_resident) << where;
  EXPECT_EQ(a.spill_combined, b.spill_combined) << where;
  EXPECT_EQ(a.aggregate, b.aggregate) << where;
  EXPECT_EQ(a.q_t, b.q_t) << where;
  EXPECT_EQ(a.predicted_mco, b.predicted_mco) << where;
  EXPECT_EQ(a.predicted_cio_push, b.predicted_cio_push) << where;
  EXPECT_EQ(a.predicted_cio_bpull, b.predicted_cio_bpull) << where;
  EXPECT_EQ(a.actual_mco, b.actual_mco) << where;
  EXPECT_EQ(a.actual_cio_push, b.actual_cio_push) << where;
  EXPECT_EQ(a.actual_cio_bpull, b.actual_cio_bpull) << where;
}

void ExpectSameRun(const JobStats& a, const JobStats& b,
                   const std::string& mode_name) {
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size()) << mode_name;
  for (size_t t = 0; t < a.supersteps.size(); ++t) {
    ExpectSameMetrics(a.supersteps[t], b.supersteps[t],
                      mode_name + " superstep " + std::to_string(t));
  }
  EXPECT_EQ(a.converged, b.converged) << mode_name;
}

// gtest parameterized-test names must be [A-Za-z0-9_]; mode names like
// "b-pull" are not, so strip the punctuation.
std::string ParamName(EngineMode mode) {
  std::string name(EngineModeName(mode));
  std::erase_if(name, [](char c) { return !std::isalnum(uint8_t(c)); });
  return name;
}

JobConfig BaseConfig(EngineMode mode, uint32_t num_threads) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 6;
  cfg.num_threads = num_threads;
  cfg.msg_buffer_per_node = 500;  // limited memory: push spills, pull doesn't
  cfg.vpull_vertex_cache = 120;   // bounded LRU: eviction order matters
  cfg.max_supersteps = 5;
  return cfg;
}

class ParallelEngineTest : public ::testing::TestWithParam<EngineMode> {};

TEST_P(ParallelEngineTest, EightThreadsMatchSequentialBitForBit) {
  const EdgeListGraph graph = TestGraph();
  auto run = [&](uint32_t threads)
      -> std::pair<std::vector<uint8_t>, JobStats> {
    auto engine =
        MakeEngine(BaseConfig(GetParam(), threads), AlgoKind::kPageRank)
            .ValueOrDie();
    EXPECT_TRUE(engine->Load(graph).ok());
    EXPECT_TRUE(engine->Run().ok());
    return {engine->GatherValuesRaw().ValueOrDie(), engine->stats()};
  };
  const auto [seq_values, seq_stats] = run(1);
  const auto [par_values, par_stats] = run(8);
  EXPECT_EQ(seq_values, par_values);  // byte-identical vertex values
  ExpectSameRun(seq_stats, par_stats, EngineModeName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllModes, ParallelEngineTest,
                         ::testing::Values(EngineMode::kPush,
                                           EngineMode::kPushM,
                                           EngineMode::kBPull,
                                           EngineMode::kHybrid,
                                           EngineMode::kVPull),
                         [](const auto& info) { return ParamName(info.param); });

// Plain TEST: must not share the ParallelEngineTest suite name with the
// TEST_P fixture above, or gtest aborts on the fixture-type mismatch.
TEST(ParallelEngineSwitchTest, TraversalWithModeSwitchIsThreadCountInvariant) {
  // SSSP under hybrid exercises the push<->b-pull switch path: the q_t
  // predictor inputs are themselves modeled metrics, so a single divergent
  // counter would flip the switching trace.
  const EdgeListGraph graph = TestGraph();
  auto run = [&](uint32_t threads)
      -> std::pair<std::vector<uint8_t>, JobStats> {
    JobConfig cfg = BaseConfig(EngineMode::kHybrid, threads);
    cfg.max_supersteps = 60;
    auto engine = MakeEngine(cfg, AlgoKind::kSssp).ValueOrDie();
    EXPECT_TRUE(engine->Load(graph).ok());
    EXPECT_TRUE(engine->Run().ok());
    return {engine->GatherValuesRaw().ValueOrDie(), engine->stats()};
  };
  const auto [seq_values, seq_stats] = run(1);
  const auto [par_values, par_stats] = run(8);
  EXPECT_EQ(seq_values, par_values);
  ExpectSameRun(seq_stats, par_stats, "hybrid-sssp");
}

TEST(ParallelSpillMergeTest, NonCombinableSpillOrderIsThreadCountInvariant) {
  // LPA is NOT combinable, so a vertex sees every spilled message
  // individually and its label histogram depends on message multiset — and
  // the streaming merge's (dst, run index) tie-break is what pins the order
  // messages come back from disk. A tiny B_i forces many runs per superstep;
  // 1-thread and 8-thread runs must still gather bit-identical values and
  // identical spill metrics.
  const EdgeListGraph graph = TestGraph();
  auto run = [&](uint32_t threads)
      -> std::pair<std::vector<uint8_t>, JobStats> {
    JobConfig cfg = BaseConfig(EngineMode::kPush, threads);
    cfg.msg_buffer_per_node = 40;       // almost everything spills
    cfg.io.spill_merge_buffer_bytes = 64;  // several refills per run
    auto engine = MakeEngine(cfg, AlgoKind::kLpa).ValueOrDie();
    EXPECT_TRUE(engine->Load(graph).ok());
    EXPECT_TRUE(engine->Run().ok());
    return {engine->GatherValuesRaw().ValueOrDie(), engine->stats()};
  };
  const auto [seq_values, seq_stats] = run(1);
  const auto [par_values, par_stats] = run(8);
  EXPECT_EQ(seq_values, par_values);  // byte-identical labels
  ExpectSameRun(seq_stats, par_stats, "push-lpa-spill");
  // The scenario actually exercised the merge path.
  uint64_t spilled = 0, peak = 0;
  for (const auto& s : seq_stats.supersteps) {
    spilled += s.messages_spilled;
    peak = std::max(peak, s.spill_peak_resident);
  }
  EXPECT_GT(spilled, 0u);
  EXPECT_GT(peak, 0u);
  // Bounded memory: resident entries never exceed what the configured
  // per-run buffers can hold (+1 exposed entry); with 64-byte buffers and
  // far more than 64 bytes spilled per node this is a real constraint.
  const uint64_t record = 4 + 4;  // dst + LPA label payload
  const uint64_t per_run_entries = 64 / record;
  for (const auto& s : seq_stats.supersteps) {
    if (s.spill_peak_resident == 0) continue;
    const uint64_t max_runs = s.messages_spilled;  // runs ≤ spilled msgs
    EXPECT_LE(s.spill_peak_resident, max_runs * per_run_entries + 1);
    EXPECT_LT(s.spill_peak_resident, s.messages_spilled + 1)
        << "merge materialized the whole spill";
  }
}

class ParallelCheckpointTest : public ::testing::TestWithParam<EngineMode> {};

TEST_P(ParallelCheckpointTest, RestoreCrossesThreadCounts) {
  // A checkpoint written mid-run by an 8-thread engine must resume in a
  // 1-thread engine (and the reverse) with identical values and identical
  // post-restore superstep metrics.
  const EdgeListGraph graph = TestGraph();
  constexpr int kCheckpointAt = 2;

  auto run_with_crossover = [&](uint32_t threads_before,
                                uint32_t threads_after)
      -> std::pair<std::vector<double>, JobStats> {
    Engine<PageRankProgram> first(BaseConfig(GetParam(), threads_before),
                                  PageRankProgram{});
    EXPECT_TRUE(first.Load(graph).ok());
    for (int t = 0; t < kCheckpointAt; ++t) {
      EXPECT_TRUE(first.RunSuperstep().ok());
    }
    Buffer image;
    EXPECT_TRUE(first.WriteCheckpoint(&image).ok());

    Engine<PageRankProgram> second(BaseConfig(GetParam(), threads_after),
                                   PageRankProgram{});
    EXPECT_TRUE(second.Load(graph).ok());
    EXPECT_TRUE(second.RestoreCheckpoint(image.AsSlice()).ok());
    while (second.superstep() < 5 && !second.converged()) {
      EXPECT_TRUE(second.RunSuperstep().ok());
    }
    return {second.GatherValues().ValueOrDie(), second.stats()};
  };

  const auto [values_a, stats_a] = run_with_crossover(8, 1);
  const auto [values_b, stats_b] = run_with_crossover(1, 8);
  const auto [values_c, stats_c] = run_with_crossover(1, 1);
  EXPECT_EQ(values_a, values_b);
  EXPECT_EQ(values_a, values_c);
  ExpectSameRun(stats_a, stats_b, "crossover-8to1-vs-1to8");
  ExpectSameRun(stats_a, stats_c, "crossover-vs-sequential");
}

INSTANTIATE_TEST_SUITE_P(EngineModes, ParallelCheckpointTest,
                         ::testing::Values(EngineMode::kPush,
                                           EngineMode::kPushM,
                                           EngineMode::kBPull,
                                           EngineMode::kHybrid),
                         [](const auto& info) { return ParamName(info.param); });

}  // namespace
}  // namespace hybridgraph
