// Deterministic fault injection: a process-wide registry of named fail-point
// sites threaded through the I/O and network seams (storage read/write/sync,
// message-spill flushes, checkpoint write/restore, TCP send).
//
// Each armed site owns its own SplitMix64 stream seeded from
// (spec.seed ^ hash(site)), and the fire/no-fire decision for hit number k is
// a pure function of that stream — so a fixed seed replays the identical
// fail-point schedule run after run, and the per-site decision sequence is
// independent of thread interleaving (hit k fires or not regardless of which
// thread performs it). Sites are cheap when nothing is armed: one relaxed
// atomic load.
//
// Actions:
//   error  — return an error Status (configurable code) from the site
//   delay  — sleep for a fixed number of microseconds, then succeed
//   crash  — succeed for the first `after` hits, then return the injected
//            crash Status (kInternal, recognizable via IsInjectedCrash) on
//            every later hit; models a node dying mid-operation, e.g. a torn
//            checkpoint write
//
// Sites are armed programmatically (FailPointSpec), from a config string
// ("site=action:k=v,k=v;site2=..."; see ParseFailPointList), from
// JobConfig::failpoints, or from the HG_FAILPOINTS environment variable.
// Tests use FailPointScope for RAII arm/disarm.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace hybridgraph {

enum class FailPointAction : uint8_t {
  kError = 0,
  kDelay = 1,
  kCrash = 2,
};

/// How one armed site behaves. All randomness comes from `seed`, so a spec is
/// a complete, replayable description of the schedule.
struct FailPointSpec {
  FailPointAction action = FailPointAction::kError;
  /// Chance that a given hit fires (evaluated per hit from the site's seeded
  /// stream; 1.0 = every hit).
  double probability = 1.0;
  /// Mixed with the site name to seed the site's decision stream.
  uint64_t seed = 0;
  /// kDelay: how long to stall the hitting thread.
  uint32_t delay_us = 100;
  /// kCrash: number of hits that succeed before the crash fires.
  uint64_t crash_after_hits = 0;
  /// Stop firing after this many fires (UINT32_MAX = unlimited).
  uint32_t max_fires = UINT32_MAX;
  /// kError: Status code returned by fired hits.
  StatusCode error_code = StatusCode::kIoError;
};

/// Parses a fail-point config string into (site, spec) pairs.
///
/// Grammar:  list  = entry *(";" entry)
///           entry = site "=" action [":" kv *("," kv)]
/// Actions: "error", "delay", "crash". Keys: p=<prob>, seed=<u64>, us=<u32>,
/// after=<u64>, max=<u32>, code=io|net|corruption.
/// Example: "storage.write=error:p=0.05,seed=9;tcp.drop=error:max=1".
Status ParseFailPointList(const std::string& config,
                          std::vector<std::pair<std::string, FailPointSpec>>* out);

/// \brief Process-wide fail-point registry. All methods are thread-safe.
class FailPointRegistry {
 public:
  static FailPointRegistry& Instance();

  void Arm(const std::string& site, const FailPointSpec& spec);
  /// Arms every entry of a ParseFailPointList config string.
  Status ArmFromString(const std::string& config);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Evaluates one hit at `site`: OK when the site is unarmed or this hit
  /// does not fire; otherwise performs the armed action.
  Status Evaluate(const char* site);

  /// Total hits / fired hits observed at `site` since it was armed.
  uint64_t hits(const std::string& site) const;
  uint64_t fires(const std::string& site) const;

  bool any_armed() const { return any_armed_.load(std::memory_order_relaxed); }

  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

 private:
  FailPointRegistry() = default;

  struct Armed {
    FailPointSpec spec;
    Rng rng{0};
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Armed> armed_;
  std::atomic<bool> any_armed_{false};
};

/// True when `st` is the Status an injected crash action produces (used by
/// CheckpointingRunner to tell "the cluster died here" from a real error).
bool IsInjectedCrash(const Status& st);

/// Fast-path site evaluation: a relaxed atomic load when nothing is armed.
inline Status FailPointCheck(const char* site) {
  FailPointRegistry& reg = FailPointRegistry::Instance();
  if (!reg.any_armed()) return Status::OK();
  return reg.Evaluate(site);
}

/// RAII arm/disarm for tests: arms the given config string (or single site)
/// on construction and disarms exactly those sites on destruction.
class FailPointScope {
 public:
  explicit FailPointScope(const std::string& config);
  FailPointScope(const std::string& site, const FailPointSpec& spec);
  ~FailPointScope();

  const Status& status() const { return status_; }  ///< parse/arm outcome

  FailPointScope(const FailPointScope&) = delete;
  FailPointScope& operator=(const FailPointScope&) = delete;

 private:
  std::vector<std::string> sites_;
  Status status_;
};

}  // namespace hybridgraph

/// Evaluates a fail-point site inside a function returning Status: returns
/// the injected Status when the site fires, continues otherwise.
#define HG_FAIL_POINT(site)                                              \
  do {                                                                   \
    ::hybridgraph::Status _hg_fp = ::hybridgraph::FailPointCheck(site);  \
    if (!_hg_fp.ok()) return _hg_fp;                                     \
  } while (0)
