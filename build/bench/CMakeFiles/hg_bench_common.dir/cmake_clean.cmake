file(REMOVE_RECURSE
  "CMakeFiles/hg_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/hg_bench_common.dir/bench_common.cc.o.d"
  "libhg_bench_common.a"
  "libhg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
