// The HybridGraph BSP engine: push, pushM, b-pull and hybrid execution of a
// vertex Program over a simulated cluster of disk-resident nodes.
//
// Execution model per superstep t (uniform across modes):
//   Phase A (consume)  — every node collects the messages addressed to its
//     vertices: under push consumption they were delivered at t-1 into a
//     double-buffered inbox (memory portion B_i + sorted disk spill); under
//     b-pull consumption the node issues one pull request per local Vblock
//     and the senders run Pull-Respond (Algorithm 2) against their Eblocks.
//   Phase B (update + produce) — every node updates its vertices
//     (update()), records responding flags (setResFlag), and if the
//     *production* mode is push immediately generates and ships messages
//     from the adjacency store (pushRes()); under b-pull production nothing
//     is sent — next superstep's pulls will call pullRes() on demand.
//
// Phase A of all nodes runs before any Phase B, which gives the BSP
// semantics (pull always observes superstep t-1 values) without vertex
// value versioning. Hybrid switching (Sec 5.2) falls out of the mode split:
// consumption mode at t is simply the production mode chosen at t-1, so the
// b-pull -> push switch superstep both pulls and pushes (the paper's
// resource-contention spike at superstep 11 of Fig 14), and the
// push -> b-pull switch superstep consumes pushed messages and produces
// nothing, exactly as in Fig 6.
//
// This header is a facade: the BSP loop, barriers, accounting and hybrid
// switching live in SuperstepDriver (core/superstep_driver.h); the
// per-mode load/update/pushRes/pullRes behavior lives in the MessagePath
// strategies under core/paths/. Engine<P> wires the block-centric paths
// (push or pushM, plus b-pull) into one driver and forwards its public API.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/job_config.h"
#include "core/paths/adaptive_path.h"
#include "core/paths/bpull_path.h"
#include "core/paths/push_m_path.h"
#include "core/paths/push_path.h"
#include "core/program.h"
#include "core/run_metrics.h"
#include "core/superstep_driver.h"
#include "graph/edge_list.h"
#include "graph/partition.h"
#include "util/buffer.h"
#include "util/status.h"

namespace hybridgraph {

template <typename P>
class Engine {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  Engine(JobConfig config, P program)
      : driver_(std::move(config), std::move(program), /*gas_engine=*/false) {
    StaticCheckProgram<P>();
    const EngineMode mode = driver_.config().mode;
    if (mode == EngineMode::kPushM) {
      push_ = std::make_unique<PushMPath<P>>(&driver_);
    } else {
      push_ = std::make_unique<PushPath<P>>(&driver_);
    }
    bpull_ = std::make_unique<BPullPath<P>>(&driver_);
    if (mode == EngineMode::kAdaptive) {
      adaptive_ = std::make_unique<AdaptivePath<P>>(&driver_);
    }
    // Only active paths build their disk layout; the registry still knows
    // every installed path so consumption can dispatch by mode. Under
    // adaptive the per-cell path both produces and serves pulls, so push
    // and b-pull stay installed but inactive (their drain machinery is
    // invoked through the adaptive path, not their registry slots).
    driver_.InstallPath(push_.get(),
                        /*active=*/mode != EngineMode::kBPull &&
                            mode != EngineMode::kAdaptive);
    driver_.InstallPath(bpull_.get(),
                        /*active=*/mode == EngineMode::kBPull ||
                            mode == EngineMode::kHybrid);
    if (adaptive_ != nullptr) {
      driver_.InstallPath(adaptive_.get(), /*active=*/true);
    }
  }

  /// Partitions the graph, derives Vblock counts (Eq. 5/6), builds the
  /// disk layouts each mode needs, and initializes vertex state.
  Status Load(const EdgeListGraph& graph) { return driver_.Load(graph); }

  /// Runs supersteps until convergence or config.max_supersteps.
  Status Run() { return driver_.Run(); }

  /// Runs exactly one superstep (exposed for tests and traces).
  Status RunSuperstep() { return driver_.RunSuperstep(); }

  const JobStats& stats() const { return driver_.stats(); }
  const RangePartition& partition() const { return driver_.partition(); }
  const JobConfig& config() const { return driver_.config(); }
  bool converged() const { return driver_.converged(); }
  int superstep() const { return driver_.superstep(); }
  /// Production mode of the upcoming superstep (hybrid switches this).
  EngineMode current_mode() const { return driver_.current_mode(); }

  /// Collects all vertex values (global, indexed by vertex id).
  Result<std::vector<Value>> GatherValues() { return driver_.GatherValues(); }

  /// Theorem 2 quantities (valid after Load()).
  uint64_t total_fragments() const { return driver_.total_fragments(); }
  uint64_t b_lower_bound() const { return driver_.b_lower_bound(); }

  /// Serializes the full runtime state (superstep, mode, vertex values,
  /// flags, undelivered messages) so a failed job can resume from the last
  /// barrier instead of recomputing from scratch (the lightweight
  /// fault-tolerance the paper leaves as future work, Appendix A).
  Status WriteCheckpoint(Buffer* out) { return driver_.WriteCheckpoint(out); }

  /// Restores a WriteCheckpoint() image into a freshly Load()ed engine with
  /// an identical config and graph. Per-superstep stats restart empty.
  Status RestoreCheckpoint(Slice data) {
    return driver_.RestoreCheckpoint(data);
  }

  /// The adaptive path's accumulated per-cell decision log (empty unless
  /// config.mode == kAdaptive) — the golden-test surface.
  const std::string& adaptive_decision_log() const {
    static const std::string kEmpty;
    return adaptive_ ? adaptive_->decision_log() : kEmpty;
  }

 private:
  SuperstepDriver<P> driver_;
  std::unique_ptr<PushPath<P>> push_;  // PushMPath under config.mode == pushM
  std::unique_ptr<BPullPath<P>> bpull_;
  std::unique_ptr<AdaptivePath<P>> adaptive_;  // config.mode == kAdaptive only
};

}  // namespace hybridgraph
