#include "util/metrics.h"

namespace hybridgraph {

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      // Upper bound of bucket b: 2^b - 1 (bucket 0 holds only value 0).
      return b == 0 ? 0 : (uint64_t{1} << b) - 1;
    }
  }
  return max_;
}

}  // namespace hybridgraph
