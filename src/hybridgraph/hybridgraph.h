// Umbrella public header for the HybridGraph library.
//
// Quick start (the type-erased runner covers every built-in algorithm and
// all five engine modes, including the v-pull baseline):
//
//   #include "hybridgraph/hybridgraph.h"
//   using namespace hybridgraph;
//
//   EdgeListGraph g = GeneratePowerLaw(100000, 16.0, 0.8, /*seed=*/1);
//   JobConfig cfg;
//   cfg.mode = EngineMode::kHybrid;       // push | pushM | pull | b-pull | hybrid
//   cfg.num_nodes = 5;                    // simulated computational nodes
//   cfg.num_threads = 0;                  // run them on all hardware cores
//   cfg.msg_buffer_per_node = 20000;      // B_i (messages kept in memory)
//   cfg.max_supersteps = 10;
//   auto engine = MakeEngine(cfg, AlgoKind::kPageRank).ValueOrDie();
//   engine->Load(g).ok() && engine->Run().ok();
//   auto ranks = engine->GatherValuesAsDouble();  // Result<std::vector<double>>
//   const JobStats& stats = engine->stats();
//
// Custom vertex programs keep using Engine<P> / VPullEngine<P> directly
// (see examples/custom_algorithm.cpp).
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction index.
#pragma once

#include "hybridgraph/any_engine.h"

#include "algos/bfs.h"
#include "algos/hits.h"
#include "algos/lpa.h"
#include "algos/pagerank.h"
#include "algos/pagerank_delta.h"
#include "algos/sa.h"
#include "algos/sssp.h"
#include "algos/wcc.h"
#include "core/aggregators.h"
#include "core/engine.h"
#include "core/recovery.h"
#include "core/job_config.h"
#include "core/program.h"
#include "core/run_metrics.h"
#include "core/vpull_engine.h"
#include "graph/edge_list.h"
#include "graph/generator.h"
#include "graph/partition.h"
#include "util/logging.h"
#include "util/status.h"
