#!/bin/sh
# Header hygiene: every public header of the layered engine must compile on
# its own in an isolated translation unit. This is what catches a header
# that silently leans on includes its old monolithic home provided (the
# failure mode of a header -> .cc split).
set -eu
cd "$(dirname "$0")/.."

CXX="${CXX:-c++}"
TMPDIR_HH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_HH"' EXIT

HEADERS="
src/core/engine.h
src/core/vpull_engine.h
src/core/superstep_driver.h
src/core/message_path.h
src/core/paths/push_path.h
src/core/paths/push_m_path.h
src/core/paths/bpull_path.h
src/core/paths/vpull_path.h
src/core/paths/adaptive_path.h
src/core/frontier.h
src/core/engine_setup.h
src/core/message_flow.h
src/core/superstep_accounting.h
src/core/hybrid_switch.h
src/core/engine_checkpoint.h
src/core/node_state.h
src/core/inbox.h
src/core/send_staging.h
src/core/trace.h
src/core/recovery.h
src/io/storage.h
src/io/prefetch.h
src/io/message_spill.h
"

failed=0
for h in $HEADERS; do
  [ -f "$h" ] || { echo "MISSING $h"; failed=1; continue; }
  tu="$TMPDIR_HH/$(echo "$h" | tr '/.' '__').cc"
  inc="${h#src/}"  # headers are included relative to -I src
  # Include twice: catches both missing transitive includes and a broken
  # include guard.
  printf '#include "%s"\n#include "%s"\nint main() { return 0; }\n' "$inc" "$inc" > "$tu"
  if ! "$CXX" -std=c++20 -fsyntax-only -I src "$tu" 2>"$TMPDIR_HH/err.txt"; then
    echo "FAIL $h"
    cat "$TMPDIR_HH/err.txt"
    failed=1
  else
    echo "ok   $h"
  fi
done

[ "$failed" -eq 0 ] || { echo "header hygiene check failed"; exit 1; }
echo "header hygiene: all engine headers compile standalone"
