#include "io/message_spill.h"

#include <algorithm>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hybridgraph {

namespace {

constexpr size_t kRunHeaderBytes = 8;  // fixed64 entry count

/// Decodes the little-endian destination id at the head of a record. The
/// caller guarantees at least 4 readable bytes (chunks are record-aligned).
uint32_t LoadDstLE(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

MessageSpill::MessageSpill(StorageService* storage, std::string key_prefix,
                           size_t payload_size)
    : storage_(storage),
      key_prefix_(std::move(key_prefix)),
      payload_size_(payload_size) {}

std::string MessageSpill::RunKey(size_t i) const {
  return StringFormat("%s/run-%06zu", key_prefix_.c_str(), i);
}

Status MessageSpill::SpillRun(std::vector<SpillEntry> entries) {
  if (entries.empty()) return Status::OK();
  HG_FAIL_POINT("spill.flush");
  std::stable_sort(entries.begin(), entries.end(),
                   [](const SpillEntry& a, const SpillEntry& b) { return a.dst < b.dst; });
  uint64_t combined = 0;
  if (combiner_ != nullptr) {
    // Fold equal destinations into the first occurrence, in spill order
    // (the vector is stably sorted, so the fold order is deterministic).
    size_t w = 0;
    for (size_t r = 1; r < entries.size(); ++r) {
      if (entries[r].dst == entries[w].dst) {
        combiner_(entries[w].payload.data(), entries[r].payload.data());
        ++combined;
      } else {
        ++w;
        if (w != r) entries[w] = std::move(entries[r]);
      }
    }
    entries.resize(w + 1);
  }
  Buffer buf;
  Encoder enc(&buf);
  enc.PutFixed64(entries.size());
  for (const auto& e : entries) {
    HG_DCHECK(e.payload.size() == payload_size_)
        << "payload size mismatch: " << e.payload.size() << " vs " << payload_size_;
    enc.PutFixed32(e.dst);
    enc.PutRaw(e.payload.data(), e.payload.size());
  }
  // Write-then-register: the run only becomes visible (num_runs_) after the
  // blob is durably written. On any failure in between, delete the key so a
  // half-written run is never leaked (Clear() would not know about it).
  const std::string key = RunKey(num_runs_);
  Status st = storage_->Write(key, buf.AsSlice(), IoClass::kRandWrite);
  // Random write: destination-vertex order has no locality on disk.
  if (st.ok()) st = storage_->Sync(key);
  if (!st.ok()) {
    (void)storage_->Delete(key);  // best-effort; Clear() sweeps the prefix too
    return st;
  }
  ++num_runs_;
  num_messages_ += entries.size();
  bytes_written_ += buf.size();
  combined_at_spill_ += combined;
  return Status::OK();
}

// ------------------------------------------------------------ MergeIterator

MessageSpill::MergeIterator::MergeIterator(StorageService* storage,
                                           const MessageSpill* spill,
                                           uint64_t buffer_bytes_per_run,
                                           ReadPipeline* pipeline)
    : storage_(storage),
      pipeline_(pipeline),
      payload_size_(spill->payload_size_),
      record_size_(4 + spill->payload_size_),
      combiner_(spill->combiner_) {
  // At least one whole record per run, and chunks aligned to record size so
  // a refill never splits a record across reads.
  const uint64_t per_chunk =
      std::max<uint64_t>(1, buffer_bytes_per_run / record_size_);
  chunk_bytes_ = per_chunk * record_size_;
  runs_.resize(spill->num_runs_);
  for (size_t i = 0; i < runs_.size(); ++i) {
    runs_[i].key = spill->RunKey(i);
  }
  buffer_bytes_ = static_cast<uint64_t>(runs_.size()) * chunk_bytes_;
}

Status MessageSpill::MergeIterator::Open() {
  for (size_t i = 0; i < runs_.size(); ++i) {
    RunCursor& rc = runs_[i];
    rc.file_size = storage_->SizeOf(rc.key);
    if (rc.file_size < kRunHeaderBytes) {
      return Status::Corruption(StringFormat(
          "spill run %s truncated: %llu bytes, header needs %zu", rc.key.c_str(),
          static_cast<unsigned long long>(rc.file_size), kRunHeaderBytes));
    }
    HG_ASSIGN_OR_RETURN(
        ReadResult header,
        storage_->Read(rc.key, {.length = kRunHeaderBytes,
                                .allow_short = true,
                                .io_class = IoClass::kSeqRead}));
    if (header.data.size() != kRunHeaderBytes) {
      return Status::Corruption("spill run header short read: " + rc.key);
    }
    Decoder dec{Slice(header.data.data(), header.data.size())};
    HG_RETURN_IF_ERROR(dec.GetFixed64(&rc.disk_entries));
    // Shape check BEFORE decoding anything: the blob must hold exactly
    // entry_count records. A bit-flipped count or a truncated blob fails
    // here instead of reading out of bounds during the merge.
    const uint64_t body = rc.file_size - kRunHeaderBytes;
    if (rc.disk_entries > body / record_size_ ||
        rc.disk_entries * record_size_ != body) {
      return Status::Corruption(StringFormat(
          "spill run %s corrupt: %llu entries × %zu bytes != %llu body bytes",
          rc.key.c_str(), static_cast<unsigned long long>(rc.disk_entries),
          record_size_, static_cast<unsigned long long>(body)));
    }
    rc.file_pos = kRunHeaderBytes;
    if (rc.disk_entries > 0) {
      HG_RETURN_IF_ERROR(Refill(&rc));
      heap_.emplace(rc.head_dst, i);
    }
  }
  return PrimeNext();
}

Status MessageSpill::MergeIterator::Refill(RunCursor* rc) {
  HG_FAIL_POINT("spill.merge");
  const uint64_t want =
      std::min<uint64_t>(chunk_bytes_, rc->disk_entries * record_size_);
  const ReadOptions opts{.offset = rc->file_pos,
                         .length = want,
                         .allow_short = true,
                         .io_class = IoClass::kSeqRead};
  auto read =
      pipeline_ ? pipeline_->Fetch(rc->key, opts) : storage_->Read(rc->key, opts);
  if (!read.ok()) return read.status();
  rc->buf = std::move(read->data);
  if (rc->buf.size() != want) {
    return Status::Corruption("spill run shrank mid-merge: " + rc->key);
  }
  rc->file_pos += want;
  const uint64_t loaded = want / record_size_;
  rc->disk_entries -= loaded;
  rc->buf_pos = 0;
  rc->head_dst = LoadDstLE(rc->buf.data());
  rc->has_head = true;
  resident_entries_ += loaded;
  peak_resident_entries_ = std::max(peak_resident_entries_, resident_entries_ + 1);
  ScheduleNextChunk(*rc);
  return Status::OK();
}

void MessageSpill::MergeIterator::ScheduleNextChunk(const RunCursor& rc) {
  if (pipeline_ == nullptr || rc.disk_entries == 0) return;
  // Exactly the shape the next Refill will request, so the staged entry
  // matches on (key, offset, length).
  const uint64_t want =
      std::min<uint64_t>(chunk_bytes_, rc.disk_entries * record_size_);
  pipeline_->Schedule(rc.key, {.offset = rc.file_pos,
                               .length = want,
                               .allow_short = true,
                               .io_class = IoClass::kSeqRead});
}

Status MessageSpill::MergeIterator::ConsumeHead(size_t ri) {
  RunCursor& rc = runs_[ri];
  rc.buf_pos += record_size_;
  ++entries_read_;
  --resident_entries_;
  if (rc.buf_pos == rc.buf.size()) {
    if (rc.disk_entries == 0) {
      rc.has_head = false;
      rc.buf.clear();
      rc.buf.shrink_to_fit();
      return Status::OK();
    }
    HG_RETURN_IF_ERROR(Refill(&rc));
  } else {
    rc.head_dst = LoadDstLE(rc.buf.data() + rc.buf_pos);
  }
  heap_.emplace(rc.head_dst, ri);
  return Status::OK();
}

Status MessageSpill::MergeIterator::PrimeNext() {
  if (heap_.empty()) {
    valid_ = false;
    return Status::OK();
  }
  const auto [dst, ri] = heap_.top();
  heap_.pop();
  RunCursor& rc = runs_[ri];
  current_.dst = dst;
  current_.payload.assign(rc.buf.data() + rc.buf_pos + 4,
                          rc.buf.data() + rc.buf_pos + record_size_);
  HG_RETURN_IF_ERROR(ConsumeHead(ri));
  if (combiner_ != nullptr) {
    // Fold every remaining entry for this destination into the current one.
    // The heap always surfaces the minimal (dst, run) pair, so the fold
    // order — run by run, spill order within a run — is deterministic.
    while (!heap_.empty() && heap_.top().first == current_.dst) {
      const size_t rj = heap_.top().second;
      heap_.pop();
      RunCursor& rc2 = runs_[rj];
      combiner_(current_.payload.data(), rc2.buf.data() + rc2.buf_pos + 4);
      ++merge_combined_;
      HG_RETURN_IF_ERROR(ConsumeHead(rj));
    }
  }
  ++entries_emitted_;
  valid_ = true;
  peak_resident_entries_ = std::max(peak_resident_entries_, resident_entries_ + 1);
  return Status::OK();
}

Status MessageSpill::MergeIterator::Next() {
  if (!valid_) return Status::FailedPrecondition("merge iterator exhausted");
  return PrimeNext();
}

Result<std::unique_ptr<MessageSpill::MergeIterator>>
MessageSpill::NewMergeIterator(uint64_t buffer_bytes_per_run,
                               ReadPipeline* pipeline) {
  std::unique_ptr<MergeIterator> it(
      new MergeIterator(storage_, this, buffer_bytes_per_run, pipeline));
  HG_RETURN_IF_ERROR(it->Open());
  return it;
}

void MessageSpill::WarmupMerge(uint64_t buffer_bytes_per_run,
                               ReadPipeline* pipeline) const {
  if (pipeline == nullptr || !pipeline->enabled() || num_runs_ == 0) return;
  const size_t record_size = 4 + payload_size_;
  const uint64_t per_chunk =
      std::max<uint64_t>(1, buffer_bytes_per_run / record_size);
  const uint64_t chunk_bytes = per_chunk * record_size;
  for (size_t i = 0; i < num_runs_; ++i) {
    const std::string key = RunKey(i);
    const uint64_t size = storage_->SizeOf(key);
    if (size <= kRunHeaderBytes) continue;
    // For a well-formed run, body bytes == disk_entries × record_size, so
    // this equals the first Refill's `want` and the staged entry matches on
    // (key, offset, length). A malformed run just never gets claimed.
    const uint64_t want =
        std::min<uint64_t>(chunk_bytes, size - kRunHeaderBytes);
    pipeline->Schedule(key, {.offset = kRunHeaderBytes,
                             .length = want,
                             .allow_short = true,
                             .io_class = IoClass::kSeqRead});
  }
}

Status MessageSpill::MergeReadAll(std::vector<SpillEntry>* out) {
  if (num_runs_ == 0) return Status::OK();
  HG_ASSIGN_OR_RETURN(auto it, NewMergeIterator(kDefaultMergeBufferBytes));
  out->reserve(out->size() + num_messages_);
  while (it->Valid()) {
    out->push_back(it->entry());
    HG_RETURN_IF_ERROR(it->Next());
  }
  return Status::OK();
}

Status MessageSpill::Clear() {
  // Prefix sweep rather than 0..num_runs_: also collects any orphan blob a
  // crash left between write and registration (e.g. after recovery restores
  // into storage that still holds a dead incarnation's runs).
  for (const auto& key : storage_->ListKeys(key_prefix_ + "/")) {
    HG_RETURN_IF_ERROR(storage_->Delete(key));
  }
  num_runs_ = 0;
  num_messages_ = 0;
  bytes_written_ = 0;
  combined_at_spill_ = 0;
  return Status::OK();
}

}  // namespace hybridgraph
