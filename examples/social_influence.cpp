// Social influence: the paper's SA workload (simulated advertisements on a
// social network) on the twi model — a Traversal-Style job whose message
// volume swells and collapses, which is exactly where hybrid's adaptive
// switching earns its keep. Prints the per-superstep adoption curve and the
// mode the engine chose each superstep. Built on the AnyEngine runner; a
// custom program would use Engine<P> directly (see custom_algorithm.cpp).
#include <cstdio>

#include "hybridgraph/hybridgraph.h"

using namespace hybridgraph;

int main() {
  DatasetSpec spec = FindDataset("twi").ValueOrDie();
  spec.num_vertices /= 4;
  const EdgeListGraph graph = BuildDataset(spec);
  std::printf("twi social model: %llu vertices, %llu edges\n\n",
              (unsigned long long)graph.num_vertices,
              (unsigned long long)graph.num_edges());

  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 30;
  cfg.msg_buffer_per_node = 250;
  cfg.max_supersteps = 40;

  AlgoSpec spec_sa;
  spec_sa.kind = AlgoKind::kSa;
  spec_sa.sa_source_stride = 400;  // one advertiser per 400 users

  auto engine = MakeEngine(cfg, spec_sa).ValueOrDie();
  HG_CHECK(engine->Load(graph).ok());
  HG_CHECK(engine->Run().ok());

  std::printf("%4s %10s %12s %10s %8s\n", "step", "forwards", "messages",
              "io_bytes", "mode");
  for (const auto& s : engine->stats().supersteps) {
    std::printf("%4d %10llu %12llu %10llu %8s%s\n", s.superstep,
                (unsigned long long)s.responding_vertices,
                (unsigned long long)s.messages_produced,
                (unsigned long long)s.io.Total(), EngineModeName(s.mode),
                s.switched ? " (switched)" : "");
  }

  // GatherValuesAsDouble projects each SA value to its adopted-ad count.
  const auto ad_counts = engine->GatherValuesAsDouble().ValueOrDie();
  uint64_t adopters = 0, multi = 0;
  for (double ads : ad_counts) {
    adopters += ads > 0;
    multi += ads > 1;
  }
  std::printf(
      "\ncampaign reach: %llu/%llu users adopted an ad (%llu adopted more "
      "than one)\n",
      (unsigned long long)adopters, (unsigned long long)ad_counts.size(),
      (unsigned long long)multi);
  std::printf("converged: %s after %d supersteps, modeled %.3fs\n",
              engine->converged() ? "yes" : "no",
              engine->stats().supersteps_run, engine->stats().modeled_seconds);
  return 0;
}
