#!/usr/bin/env python3
"""Plot per-superstep metrics exported by hg_run --csv (or WriteSuperstepCsv).

Usage:
    hg_run --graph dataset:twi --algo sssp --mode hybrid --csv run.csv
    python3 scripts/plot_metrics.py run.csv out.png

Produces a four-panel figure in the style of the paper's Fig 14: messages,
I/O bytes, network bytes and Q_t per superstep, with mode switches marked.
Requires matplotlib; falls back to an ASCII sparkline table without it.
"""
import csv
import sys


def load(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def ascii_report(rows):
    blocks = " .:-=+*#%@"

    def spark(values):
        hi = max(values) or 1
        return "".join(blocks[min(9, int(v / hi * 9))] for v in values)

    for field in ("messages", "io_total", "net_bytes", "q_t"):
        values = [abs(float(r[field])) for r in rows]
        print(f"{field:>12}  {spark(values)}")
    modes = "".join("b" if r["mode"] == "b-pull" else "p" for r in rows)
    print(f"{'mode':>12}  {modes}   (b = b-pull, p = push)")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    rows = load(sys.argv[1])
    if not rows:
        print("empty csv")
        return 1
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        ascii_report(rows)
        return 0

    t = [int(r["superstep"]) for r in rows]
    switches = [int(r["superstep"]) for r in rows if r["switched"] == "1"]
    fig, axes = plt.subplots(4, 1, figsize=(8, 10), sharex=True)
    panels = [
        ("messages", "messages produced"),
        ("io_total", "I/O bytes"),
        ("net_bytes", "network bytes"),
        ("q_t", "Q_t"),
    ]
    for ax, (field, label) in zip(axes, panels):
        ax.plot(t, [float(r[field]) for r in rows], marker="o", ms=3)
        for s in switches:
            ax.axvline(s, color="red", ls="--", lw=0.8)
        ax.set_ylabel(label)
        ax.grid(alpha=0.3)
    axes[-1].axhline(0, color="black", lw=0.8)
    axes[-1].set_xlabel("superstep (red dashes: mode switches)")
    out = sys.argv[2] if len(sys.argv) > 2 else "metrics.png"
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
