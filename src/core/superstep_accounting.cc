#include "core/superstep_accounting.h"

#include <algorithm>

namespace hybridgraph {

void BeginBlockAccounting(std::vector<NodeState>& nodes, Transport& transport) {
  for (auto& node : nodes) {
    node.aggregate_partial = 0;
    node.updated_vertices = 0;
    node.msgs_produced = 0;
    node.msgs_wire = 0;
    node.msgs_combined = 0;
    node.flushes = 0;
    node.cpu_seconds = 0;
    node.mem_highwater = 0;
    node.spill_buffer_peak = 0;
    node.spill_resident_peak = 0;
    node.spill_combined = 0;
    node.prefetch_scheduled = 0;
    node.prefetch_hits = 0;
    node.prefetch_misses = 0;
    node.prefetch_hit_bytes = 0;
    node.io = IoBreakdown{};
    node.disk_snapshot = *node.storage->meter();
    node.net_snapshot = *transport.meter(node.id);
  }
}

uint64_t ModeledMemoryBytes(const NodeState& node,
                            const RangePartition& partition,
                            uint64_t extra_buffer_bytes) {
  // Metadata kept in memory by b-pull/hybrid: X_j (counts/degrees ~ 24B) and
  // the bitmap row per local Vblock.
  uint64_t meta = 0;
  if (node.ve) {
    meta = static_cast<uint64_t>(partition.NumVblocksOf(node.id)) *
           (24 + partition.num_vblocks() / 8 + 1);
  }
  return meta + node.mem_highwater + extra_buffer_bytes;
}

SuperstepMetrics AccumulateBlockMetrics(std::vector<NodeState>& nodes,
                                        const BlockAccountingInputs& in) {
  const JobConfig& config = *in.config;
  SuperstepMetrics m;
  m.superstep = in.superstep;
  m.mode = in.produce_mode;
  m.switched = in.switched;

  double max_node_seconds = 0;
  double max_blocking = 0;
  size_t node_idx = 0;
  for (auto& node : nodes) {
    m.messages_produced += node.msgs_produced;
    m.messages_on_wire += node.msgs_wire;
    m.messages_combined += node.msgs_combined;
    m.messages_spilled += node.inbox_next.spilled;
    m.io.vt_bytes += node.io.vt_bytes;
    m.io.adj_edge_bytes += node.io.adj_edge_bytes;
    m.io.eblock_edge_bytes += node.io.eblock_edge_bytes;
    m.io.fragment_aux_bytes += node.io.fragment_aux_bytes;
    m.io.vrr_bytes += node.io.vrr_bytes;
    m.io.msg_spill_read += node.io.msg_spill_read;

    const DiskMeter disk_delta =
        node.storage->meter()->DeltaSince(node.disk_snapshot);
    // Spill writes are the only random writes in push/b-pull paths.
    m.io.msg_spill_write += disk_delta.bytes(IoClass::kRandWrite);
    const uint64_t classified =
        node.io.vt_bytes + node.io.adj_edge_bytes + node.io.eblock_edge_bytes +
        node.io.fragment_aux_bytes + node.io.vrr_bytes +
        node.io.msg_spill_read + disk_delta.bytes(IoClass::kRandWrite);
    const uint64_t total = disk_delta.TotalBytes();
    m.io.other_bytes += total > classified ? total - classified : 0;

    const NetMeter net_delta =
        in.transport->meter(node.id)->DeltaSince(node.net_snapshot);
    m.net_bytes += net_delta.bytes_sent;
    m.net_frames += net_delta.frames_sent;

    const double io_s =
        config.memory_resident ? 0.0 : disk_delta.ModeledSeconds(config.disk);
    const double send_s = config.net.SecondsFor(net_delta.bytes_sent);
    const double recv_s = config.net.SecondsFor(net_delta.bytes_received);
    const double net_s = std::max(send_s, recv_s);
    // Blocking: per-flush connection overhead + the unoverlapped tail (the
    // last package can never overlap with compute) + any transfer time not
    // hidden behind local work.
    const double work_s = node.cpu_seconds + io_s;
    const double tail_s = config.net.SecondsFor(std::min<uint64_t>(
        config.sending_threshold_bytes, net_delta.bytes_sent));
    const double blocking_s =
        static_cast<double>(node.flushes) * config.flush_overhead_s + tail_s +
        std::max(0.0, net_s - work_s);
    const double node_s = work_s + blocking_s;

    m.cpu_seconds += node.cpu_seconds;
    m.io_seconds += io_s;
    m.net_seconds += net_s;
    max_blocking = std::max(max_blocking, blocking_s);
    max_node_seconds = std::max(max_node_seconds, node_s);

    const uint64_t extra =
        in.extra_memory_bytes ? (*in.extra_memory_bytes)[node_idx] : 0;
    m.memory_highwater_bytes += ModeledMemoryBytes(node, *in.partition, extra);

    m.spill_merge_buffer_bytes =
        std::max(m.spill_merge_buffer_bytes, node.spill_buffer_peak);
    m.spill_peak_resident =
        std::max(m.spill_peak_resident, node.spill_resident_peak);
    m.spill_combined += node.spill_combined;

    // Drain the pipeline's since-last-drain counters (measured, not
    // modeled — never feeds the modeled seconds or byte columns above).
    if (node.pipeline) {
      const ReadPipeline::Stats ps = node.pipeline->DrainStats();
      node.prefetch_scheduled += ps.scheduled;
      node.prefetch_hits += ps.hits;
      node.prefetch_misses += ps.misses + ps.fallbacks;
      node.prefetch_hit_bytes += ps.hit_bytes;
    }
    m.prefetch_scheduled += node.prefetch_scheduled;
    m.prefetch_hits += node.prefetch_hits;
    m.prefetch_misses += node.prefetch_misses;
    m.prefetch_hit_bytes += node.prefetch_hit_bytes;

    uint64_t responding = 0;
    for (uint8_t r : node.responding_next) responding += r;
    m.responding_vertices += responding;
    m.active_vertices += node.updated_vertices;
    ++node_idx;
  }
  m.blocking_seconds = max_blocking;
  m.superstep_seconds = max_node_seconds;

  const TransportFaultCounters faults =
      in.transport->fault_counters().DeltaSince(in.fault_snapshot);
  m.net_retries = faults.retries;
  m.net_timeouts = faults.timeouts;
  m.net_reconnects = faults.reconnects;
  return m;
}

void PromoteBlockState(std::vector<NodeState>& nodes, uint64_t* responding_total,
                       uint64_t* inflight_messages) {
  *responding_total = 0;
  *inflight_messages = 0;
  for (auto& node : nodes) {
    node.responding.swap(node.responding_next);
    node.vblock_res.swap(node.vblock_res_next);
    node.inbox_cur.Swap(node.inbox_next);
    for (uint8_t r : node.responding) *responding_total += r;
    *inflight_messages += node.inbox_cur.total;
  }
}

}  // namespace hybridgraph
