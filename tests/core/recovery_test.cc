// Checkpoint / restore and fault-tolerant recovery.
#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "core/recovery.h"
#include "graph/generator.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace hybridgraph {
namespace {

EdgeListGraph TestGraph(uint64_t seed = 4) {
  return GeneratePowerLaw(600, 8.0, 0.8, seed);
}

JobConfig Base(EngineMode mode) {
  JobConfig cfg;
  cfg.mode = mode;
  cfg.num_nodes = 4;
  cfg.msg_buffer_per_node = 150;  // exercises the spilled-inbox path too
  cfg.max_supersteps = 8;
  return cfg;
}

template <typename P>
std::vector<typename P::Value> FaultFreeRun(P program, JobConfig cfg,
                                            const EdgeListGraph& g) {
  Engine<P> engine(cfg, program);
  EXPECT_TRUE(engine.Load(g).ok());
  EXPECT_TRUE(engine.Run().ok());
  return engine.GatherValues().ValueOrDie();
}

TEST(Checkpoint, MidRunRoundTripResumesIdentically) {
  const auto g = TestGraph();
  const JobConfig cfg = Base(EngineMode::kPush);
  const auto expected = FaultFreeRun(PageRankProgram{}, cfg, g);

  // Run 3 supersteps, checkpoint, resume in a brand-new engine.
  Engine<PageRankProgram> first(cfg, PageRankProgram{});
  ASSERT_TRUE(first.Load(g).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(first.RunSuperstep().ok());
  Buffer image;
  ASSERT_TRUE(first.WriteCheckpoint(&image).ok());

  Engine<PageRankProgram> second(cfg, PageRankProgram{});
  ASSERT_TRUE(second.Load(g).ok());
  ASSERT_TRUE(second.RestoreCheckpoint(image.AsSlice()).ok());
  EXPECT_EQ(second.superstep(), 3);
  ASSERT_TRUE(second.Run().ok());
  const auto got = second.GatherValues().ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

TEST(Checkpoint, CorruptImageRejected) {
  const auto g = TestGraph();
  const JobConfig cfg = Base(EngineMode::kPush);
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.RunSuperstep().ok());
  Buffer image;
  ASSERT_TRUE(engine.WriteCheckpoint(&image).ok());

  Engine<PageRankProgram> fresh(cfg, PageRankProgram{});
  ASSERT_TRUE(fresh.Load(g).ok());
  // Bad magic.
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(fresh.RestoreCheckpoint(Slice(junk)).code(),
            StatusCode::kCorruption);
  // Truncated image.
  EXPECT_FALSE(
      fresh.RestoreCheckpoint(Slice(image.data(), image.size() / 2)).ok());
  // Restore before Load is a precondition failure.
  Engine<PageRankProgram> unloaded(cfg, PageRankProgram{});
  EXPECT_EQ(unloaded.RestoreCheckpoint(image.AsSlice()).code(),
            StatusCode::kFailedPrecondition);
}

class RecoveryModeTest : public ::testing::TestWithParam<EngineMode> {};

TEST_P(RecoveryModeTest, CrashWithCheckpointMatchesFaultFree) {
  const auto g = TestGraph();
  JobConfig cfg = Base(GetParam());
  SsspProgram program;
  program.source = 7;
  cfg.max_supersteps = 60;
  const auto expected = FaultFreeRun(program, cfg, g);

  CheckpointingRunner<SsspProgram> runner(cfg, program, /*checkpoint_every=*/2);
  ASSERT_TRUE(runner.Run(g, /*crash_after=*/{5, 9}).ok());
  EXPECT_EQ(runner.recoveries(), 2);
  EXPECT_GT(runner.checkpoints_written(), 2);
  EXPECT_TRUE(runner.converged());
  const auto got = runner.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_FLOAT_EQ(got[v], expected[v]) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RecoveryModeTest,
                         ::testing::Values(EngineMode::kPush,
                                           EngineMode::kBPull,
                                           EngineMode::kHybrid));

TEST(Recovery, RecomputeFromScratchWhenNoCheckpoints) {
  // The paper's baseline policy: no checkpoints, recovery restarts the job.
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kBPull);
  const auto expected = FaultFreeRun(PageRankProgram{}, cfg, g);

  CheckpointingRunner<PageRankProgram> runner(cfg, PageRankProgram{},
                                              /*checkpoint_every=*/0);
  ASSERT_TRUE(runner.Run(g, /*crash_after=*/{4}).ok());
  EXPECT_EQ(runner.recoveries(), 1);
  EXPECT_EQ(runner.checkpoints_written(), 0);
  // 5 supersteps before the crash were wasted, then the full 8 again.
  EXPECT_EQ(runner.supersteps_executed(), 5 + cfg.max_supersteps);
  const auto got = runner.GatherValues().ValueOrDie();
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
}

TEST(Recovery, CheckpointingRecomputesFewerSupersteps) {
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kPush);
  CheckpointingRunner<PageRankProgram> scratch(cfg, PageRankProgram{}, 0);
  ASSERT_TRUE(scratch.Run(g, {6}).ok());
  CheckpointingRunner<PageRankProgram> ckpt(cfg, PageRankProgram{}, 2);
  ASSERT_TRUE(ckpt.Run(g, {6}).ok());
  EXPECT_LT(ckpt.supersteps_executed(), scratch.supersteps_executed());
}

TEST(Checkpoint, EveryTruncationAndBitFlipIsRejectedOrRestores) {
  // The image carries a whole-image checksum trailer: any truncation must be
  // rejected as Corruption, and any single-bit flip must either be rejected
  // or (for flips inside the unused tail of a varint, which cannot exist
  // here) restore successfully — it must never crash the engine.
  const auto g = GeneratePowerLaw(120, 5.0, 0.8, 6);
  JobConfig cfg = Base(EngineMode::kPush);
  cfg.num_nodes = 2;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  ASSERT_TRUE(engine.Load(g).ok());
  ASSERT_TRUE(engine.RunSuperstep().ok());
  Buffer image;
  ASSERT_TRUE(engine.WriteCheckpoint(&image).ok());

  Engine<PageRankProgram> fresh(cfg, PageRankProgram{});
  ASSERT_TRUE(fresh.Load(g).ok());
  for (size_t cut = 0; cut < image.size(); ++cut) {
    Status st = fresh.RestoreCheckpoint(Slice(image.data(), cut));
    ASSERT_FALSE(st.ok()) << "cut=" << cut;
    ASSERT_EQ(st.code(), StatusCode::kCorruption) << "cut=" << cut;
  }
  std::vector<uint8_t> bytes(image.data(), image.data() + image.size());
  Rng rng(99);
  for (int flip = 0; flip < 256; ++flip) {
    std::vector<uint8_t> mutated = bytes;
    mutated[rng.NextBounded(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng.NextBounded(8));
    Engine<PageRankProgram> victim(cfg, PageRankProgram{});
    ASSERT_TRUE(victim.Load(g).ok());
    Status st = victim.RestoreCheckpoint(Slice(mutated));
    ASSERT_FALSE(st.ok()) << "flip round " << flip;
    ASSERT_EQ(st.code(), StatusCode::kCorruption) << "flip round " << flip;
  }
}

TEST(Recovery, TornCheckpointWriteFallsBackToPreviousImage) {
  // Crash mid-WriteCheckpoint (the "ckpt.write" site fires partway through
  // the per-node loop): the torn partial image lands in reliable storage as
  // the newest checkpoint. Recovery must detect it via the checksum trailer,
  // fall back to the previous intact checkpoint, and still finish with
  // fault-free results.
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kPush);
  const auto expected = FaultFreeRun(PageRankProgram{}, cfg, g);

  // ckpt.write is hit once per node per checkpoint; with 4 nodes the 6th hit
  // lands mid-way through the second checkpoint (supersteps 2 and 4).
  FailPointScope scope("ckpt.write=crash:after=5,max=1");
  ASSERT_TRUE(scope.status().ok());
  CheckpointingRunner<PageRankProgram> runner(cfg, PageRankProgram{},
                                              /*checkpoint_every=*/2);
  ASSERT_TRUE(runner.Run(g).ok());
  EXPECT_EQ(runner.torn_checkpoints(), 1);
  EXPECT_EQ(runner.checkpoint_fallbacks(), 1);
  EXPECT_EQ(runner.recoveries(), 1);
  const auto got = runner.GatherValues().ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
  FailPointRegistry::Instance().DisarmAll();
}

TEST(Recovery, TornFirstCheckpointFallsBackToScratch) {
  // When the very first checkpoint write is torn there is no older image:
  // the fallback chain ends at recomputing from scratch.
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kBPull);
  const auto expected = FaultFreeRun(PageRankProgram{}, cfg, g);

  FailPointScope scope("ckpt.write=crash:after=1,max=1");
  ASSERT_TRUE(scope.status().ok());
  CheckpointingRunner<PageRankProgram> runner(cfg, PageRankProgram{},
                                              /*checkpoint_every=*/2);
  ASSERT_TRUE(runner.Run(g).ok());
  EXPECT_EQ(runner.torn_checkpoints(), 1);
  EXPECT_GE(runner.checkpoint_fallbacks(), 1);
  // The job still pays full re-execution: everything up to the torn write
  // plus the complete run again.
  EXPECT_GT(runner.supersteps_executed(), cfg.max_supersteps);
  const auto got = runner.GatherValues().ValueOrDie();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-12) << v;
  }
  FailPointRegistry::Instance().DisarmAll();
}

TEST(Recovery, UnboundedCrashLoopHitsRecoveryLimit) {
  // A crash fail-point that fires on every superstep re-execution can never
  // make progress; the runner must give up with a crash-loop error instead
  // of spinning forever.
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kPush);
  FailPointScope scope("ckpt.write=crash");  // unlimited fires
  ASSERT_TRUE(scope.status().ok());
  CheckpointingRunner<PageRankProgram> runner(cfg, PageRankProgram{},
                                              /*checkpoint_every=*/1);
  Status st = runner.Run(g);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("crash loop"), std::string::npos) << st.message();
  FailPointRegistry::Instance().DisarmAll();
}

TEST(Recovery, BarrierContractScriptedCrashNeverTearsCheckpoints) {
  // The crash_after contract: scripted crashes fire only at the superstep
  // barrier, after the checkpoint write completes — so every image stays
  // intact no matter how the crash schedule lines up with checkpoints.
  const auto g = TestGraph();
  JobConfig cfg = Base(EngineMode::kPush);
  CheckpointingRunner<PageRankProgram> runner(cfg, PageRankProgram{},
                                              /*checkpoint_every=*/1);
  ASSERT_TRUE(runner.Run(g, /*crash_after=*/{1, 3, 5}).ok());
  EXPECT_EQ(runner.recoveries(), 3);
  EXPECT_EQ(runner.torn_checkpoints(), 0);
  EXPECT_EQ(runner.checkpoint_fallbacks(), 0);
}

}  // namespace
}  // namespace hybridgraph
