#!/bin/sh
# Builds the tree with ThreadSanitizer (-DHG_SANITIZE=thread) and runs the
# concurrency-sensitive tests: the thread pool and the parallel engine suite
# at num_threads > 1. Any data race fails the run (TSan exits nonzero).
set -eu
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DHG_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" --target hg_util_tests hg_core_tests hg_io_tests

export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+ $TSAN_OPTIONS}"
"$BUILD_DIR"/tests/hg_util_tests --gtest_filter='ThreadPool.*'
# *Adaptive* covers the per-cell path's multi-threaded differential and the
# cross-thread-count determinism check (per-node scratch must stay unshared).
"$BUILD_DIR"/tests/hg_core_tests --gtest_filter='*Parallel*:*MessagePathConformance*:*Pipeline*:*Adaptive*'
# The prefetch pipeline is the one place a background thread touches storage
# while compute threads read through it — the mutation-observer and
# Fetch/Cancel races live here.
"$BUILD_DIR"/tests/hg_io_tests --gtest_filter='Prefetch*:*AsyncRead*'
echo "TSan clean: thread pool + parallel engine + prefetch pipeline tests ran race-free"
