file(REMOVE_RECURSE
  "libhg_util.a"
)
