// Ablation — which parts of b-pull's design matter: the combiner, the
// pre-pull overlap, auto Vblock sizing (Eq. 5/6) versus fixed counts, and
// the page-cache assumption.
#include <cstdio>

#include "bench_common.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

void Report(const char* label, const Result<JobStats>& stats) {
  if (!stats.ok()) {
    std::printf("%-28s FAILED: %s\n", label, stats.status().ToString().c_str());
    return;
  }
  uint64_t mem = 0;
  for (const auto& s : stats->supersteps) {
    mem = std::max(mem, s.memory_highwater_bytes);
  }
  std::printf("%-28s %12.4f %12s %12s %14llu\n", label,
              stats->modeled_seconds, HumanBytes(stats->TotalIoBytes()).c_str(),
              HumanBytes(stats->TotalNetBytes()).c_str(),
              (unsigned long long)mem);
}

}  // namespace

int main() {
  PrintHeader("bench_ablation_bpull",
              "ablation: b-pull design choices (PageRank over livej, limited "
              "memory)");
  const DatasetSpec spec = FindDataset("livej").ValueOrDie();
  const double shrink = ShrinkFor(spec);
  const EdgeListGraph& graph = CachedGraph(spec, shrink);

  std::printf("%-28s %12s %12s %12s %14s\n", "variant", "runtime(s)", "io",
              "net", "mem_bytes");

  {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    Report("baseline (Eq.5 V, combine)",
           RunAlgo(graph, Algo::kPageRank, EngineMode::kBPull, cfg));
  }
  {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.bpull_combining = false;
    Report("no combiner (concat only)",
           RunAlgo(graph, Algo::kPageRank, EngineMode::kBPull, cfg));
  }
  {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.pre_pull = false;
    Report("no pre-pull",
           RunAlgo(graph, Algo::kPageRank, EngineMode::kBPull, cfg));
  }
  {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.vblocks_per_node = 1;
    Report("V fixed at 1/node",
           RunAlgo(graph, Algo::kPageRank, EngineMode::kBPull, cfg));
  }
  {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.vblocks_per_node = 100;
    Report("V fixed at 100/node",
           RunAlgo(graph, Algo::kPageRank, EngineMode::kBPull, cfg));
  }
  {
    JobConfig cfg = LimitedMemoryConfig(spec, shrink);
    cfg.page_cache_bytes_per_node = 0;
    Report("no OS page cache",
           RunAlgo(graph, Algo::kPageRank, EngineMode::kBPull, cfg));
  }
  std::printf(
      "\nreading: combining cuts net bytes; V=1 minimizes I/O but blows up\n"
      "memory (BR/BS ~ n_i); V=100 shrinks memory but pays Theorem-1\n"
      "fragment I/O; Eq.5 sits between; without the page cache every Eblock\n"
      "re-read pays device cost and b-pull's advantage shrinks.\n");
  return 0;
}
