// Deterministic pseudo-random generation: SplitMix64 core, uniform helpers,
// and a Zipf sampler used by the power-law graph generators.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace hybridgraph {

/// \brief SplitMix64 PRNG: tiny state, high quality, fully deterministic per
/// seed — every generator and workload in the repo is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  uint64_t state() const { return state_; }

 private:
  uint64_t state_;
};

/// \brief Samples ranks 1..n from a Zipf(s) distribution via inverse CDF over
/// a precomputed table (exact, O(log n) per sample).
///
/// Used to draw per-vertex out-degrees and skewed edge targets so that the
/// synthetic dataset models reproduce the fragment-count behaviour the paper
/// attributes to power-law graphs (e.g. its twitter dataset).
class ZipfSampler {
 public:
  /// \param n number of ranks.
  /// \param s skew exponent (s=0 degenerates to uniform).
  ZipfSampler(uint64_t n, double s);

  /// Returns a rank in [1, n].
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

}  // namespace hybridgraph
