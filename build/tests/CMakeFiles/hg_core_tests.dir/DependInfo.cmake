
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aggregator_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/aggregator_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/aggregator_test.cc.o.d"
  "/root/repo/tests/core/cross_engine_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/cross_engine_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/cross_engine_test.cc.o.d"
  "/root/repo/tests/core/edge_cases_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/edge_cases_test.cc.o.d"
  "/root/repo/tests/core/engine_sweep_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/engine_sweep_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/engine_sweep_test.cc.o.d"
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/core/hybrid_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/hybrid_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/hybrid_test.cc.o.d"
  "/root/repo/tests/core/loading_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/loading_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/loading_test.cc.o.d"
  "/root/repo/tests/core/lru_cache_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/lru_cache_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/lru_cache_test.cc.o.d"
  "/root/repo/tests/core/message_flow_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/message_flow_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/message_flow_test.cc.o.d"
  "/root/repo/tests/core/metrics_csv_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/metrics_csv_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/metrics_csv_test.cc.o.d"
  "/root/repo/tests/core/recovery_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/recovery_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/recovery_test.cc.o.d"
  "/root/repo/tests/core/vpull_engine_test.cc" "tests/CMakeFiles/hg_core_tests.dir/core/vpull_engine_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/core/vpull_engine_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/hg_core_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/hg_core_tests.dir/smoke_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
