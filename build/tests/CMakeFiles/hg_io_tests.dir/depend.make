# Empty dependencies file for hg_io_tests.
# This may be replaced when dependencies are built.
