// The mode-agnostic superstep driver: owns the BSP loop, the thread-pool
// phase barriers, the aggregator exchange, hybrid switching (Eq. 11) and
// checkpointing, and delegates everything mode-specific to the installed
// MessagePath strategies.
//
// Execution model per superstep t (uniform across modes):
//   Phase A (consume)  — every node collects the messages addressed to its
//     vertices, via the path that PRODUCED them at t-1 (consumption mode at
//     t = production mode at t-1, which is what makes hybrid switching a
//     pure mode-registry lookup).
//   Phase B (update + produce) — every node updates its vertices and lets
//     the current production path ship/stage whatever its mode ships.
//
// Phase A of all nodes runs before any Phase B, which gives the BSP
// semantics (pull always observes superstep t-1 values) without vertex
// value versioning. Each phase is wrapped in trace spans (cluster-wide and
// per node) that export to chrome://tracing when config.trace_path is set.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <vector>

#include "core/aggregators.h"
#include "core/engine_checkpoint.h"
#include "core/engine_setup.h"
#include "core/hybrid_switch.h"
#include "core/job_config.h"
#include "core/message_path.h"
#include "core/node_state.h"
#include "core/program.h"
#include "core/run_metrics.h"
#include "core/superstep_accounting.h"
#include "core/trace.h"
#include "graph/edge_list.h"
#include "graph/partition.h"
#include "net/transport.h"
#include "util/buffer.h"
#include "util/codec.h"
#include "util/failpoint.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hybridgraph {

template <typename P>
class SuperstepDriver {
 public:
  using Value = typename P::Value;
  using Message = typename P::Message;

  static constexpr size_t kMsgSize = P::kMessageSize;
  /// Wire/spill record: destination id + message payload.
  static constexpr size_t kMsgRecordSize = 4 + kMsgSize;
  /// Vertex value record on disk (id + out-degree + payload).
  static constexpr size_t kValueRecordSize = 8 + P::kValueSize;

  /// `gas_engine` selects the vpull (vertex-cut GAS) front-end: the driver
  /// then skips the block-engine initial-mode decision and hybrid metrics.
  SuperstepDriver(JobConfig config, P program, bool gas_engine)
      : config_(std::move(config)),
        program_(std::move(program)),
        gas_engine_(gas_engine) {}

  /// Registers `path` under its mode. `active` paths are Build()t at Load
  /// time and may produce; inactive ones only occupy their registry slot
  /// (never reached because the mode never resolves to them).
  void InstallPath(MessagePath<P>* path, bool active) {
    registry_[static_cast<size_t>(path->mode())] = path;
    if (active) build_order_.push_back(path);
  }

  Status Load(const EdgeListGraph& graph) {
    HG_RETURN_IF_ERROR(graph.Validate());
    JobConfig::JobFacts job_facts;
    job_facts.num_vertices = graph.num_vertices;
    job_facts.combinable_messages = P::kCombinable;
    job_facts.vpull_engine = gas_engine_;
    HG_RETURN_IF_ERROR(config_.Validate(job_facts));
    if (!config_.failpoints.empty()) {
      HG_RETURN_IF_ERROR(
          FailPointRegistry::Instance().ArmFromString(config_.failpoints));
    }
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
    if (config_.io.prefetch_depth > 0) {
      io_pool_ = std::make_unique<ThreadPool>(config_.io.prefetch_threads);
    }
    total_edges_ = graph.num_edges();
    FoldCpuScale(&config_);
    ctx_.num_vertices = graph.num_vertices;
    ctx_.superstep = 0;
    if (!config_.trace_path.empty()) trace_.Enable();

    for (MessagePath<P>* path : build_order_) {
      HG_RETURN_IF_ERROR(path->Build(graph));
    }

    if (gas_engine_) {
      mode_ = EngineMode::kVPull;
    } else {
      // Initial mode (Algorithm 3 line 2, Theorem 2).
      InitialModeInputs in;
      in.b_lower_bound = stats_.load.b_lower_bound;
      in.initial_messages = initial_messages_;
      in.initial_active_frac = initial_active_frac_;
      in.total_fragments = total_fragments_;
      HG_ASSIGN_OR_RETURN(mode_, DecideInitialMode(config_, nodes_, facts_, in));
    }
    prev_produce_ = mode_;
    loaded_ = true;
    return Status::OK();
  }

  Status RunSuperstep() {
    if (!loaded_) return Status::FailedPrecondition("Load() first");
    ctx_.superstep = superstep_;
    MessagePath<P>* cons = registry_[static_cast<size_t>(prev_produce_)];
    MessagePath<P>* prod = registry_[static_cast<size_t>(mode_)];
    prod->BeginAccounting();
    fault_snapshot_ = transport_->fault_counters();

    const EngineMode produce_mode = mode_;
    const bool switched = superstep_ > 0 && produce_mode != prev_produce_;
    for (auto& node : nodes_) {
      if (node.pipeline) {
        node.pipeline->SetContext(superstep_, static_cast<int>(prev_produce_));
      }
    }

    // Phase A on all nodes, then Phase B on all nodes: BSP-consistent pulls.
    // Each phase fans out across the pool (one task per node) with a barrier
    // in between; the staged cross-node effects (pull-serve accounting,
    // pushed batches) are drained node-locally right after each barrier in
    // fixed sender/requester order so every counter and float sum matches
    // the single-thread run.
    const auto t0 = std::chrono::steady_clock::now();
    {
      TraceSpan phase(&trace_, "consume", superstep_, -1, prev_produce_);
      HG_RETURN_IF_ERROR(
          pool_->ParallelFor(config_.num_nodes, [&](uint32_t i) {
            TraceSpan span(&trace_, "consume", superstep_,
                           static_cast<int>(i), prev_produce_);
            return cons->Consume(i);
          }));
      HG_RETURN_IF_ERROR(
          pool_->ParallelFor(config_.num_nodes,
                             [&](uint32_t i) { return cons->AfterConsume(i); }));
    }
    const auto t1 = std::chrono::steady_clock::now();
    {
      TraceSpan phase(&trace_, "update", superstep_, -1, produce_mode);
      HG_RETURN_IF_ERROR(
          pool_->ParallelFor(config_.num_nodes, [&](uint32_t i) {
            TraceSpan span(&trace_, "update", superstep_, static_cast<int>(i),
                           produce_mode);
            return prod->UpdateProduce(i);
          }));
    }
    const auto t2 = std::chrono::steady_clock::now();
    {
      TraceSpan phase(&trace_, "drain", superstep_, -1, produce_mode);
      HG_RETURN_IF_ERROR(
          pool_->ParallelFor(config_.num_nodes, [&](uint32_t i) {
            {
              TraceSpan span(&trace_, "drain", superstep_, static_cast<int>(i),
                             produce_mode);
              HG_RETURN_IF_ERROR(prod->AfterProduce(i));
            }
            // Compute/communication overlap: while the other nodes are still
            // draining (and before the aggregator exchange below), schedule
            // background readahead for the data the next superstep's consume
            // phase will touch. Observability only — nothing modeled moves.
            TraceSpan overlap(&trace_, "drain.overlap", superstep_,
                              static_cast<int>(i), produce_mode);
            return prod->WarmupNextSuperstep(i);
          }));
    }
    const auto t3 = std::chrono::steady_clock::now();

    // Aggregator barrier: partial sums travel to the master and the global
    // value is broadcast back (metered control traffic), becoming visible to
    // the next superstep's Update calls.
    double aggregate = 0;
    if constexpr (HasAggregator<P>) {
      if (prod->supports_aggregator()) {
        Buffer payload;
        Encoder enc(&payload);
        for (auto& node : nodes_) {
          aggregate += node.aggregate_partial;
          if (node.id != 0) {
            payload.Clear();
            enc.PutDouble(node.aggregate_partial);
            HG_RETURN_IF_ERROR(transport_->Post(
                node.id, 0, RpcMethod::kControl, payload.AsSlice()));
          }
        }
        for (uint32_t y = 1; y < config_.num_nodes; ++y) {
          payload.Clear();
          enc.PutDouble(aggregate);
          HG_RETURN_IF_ERROR(
              transport_->Post(0, y, RpcMethod::kControl, payload.AsSlice()));
        }
        pull_gen_aggregate_ = ctx_.prev_aggregate;
        ctx_.prev_aggregate = aggregate;
      }
    }

    // Metrics and the switching decision read next-superstep flags, so they
    // run before the barrier swap.
    SuperstepMetrics m = prod->EndAccounting(produce_mode, switched);
    if (prod->hybrid_metrics()) {
      EvaluateSwitch(&m, config_, partition_, nodes_, facts_, superstep_,
                     &hybrid_, &mode_);
    }
    m.aggregate = aggregate;
    m.phase_consume_wall_s = std::chrono::duration<double>(t1 - t0).count();
    m.phase_update_wall_s = std::chrono::duration<double>(t2 - t1).count();
    m.phase_drain_wall_s = std::chrono::duration<double>(t3 - t2).count();
    stats_.supersteps.push_back(m);
    stats_.modeled_seconds += m.superstep_seconds;

    // Barrier: promote next-superstep state.
    uint64_t responding_total = 0;
    uint64_t inflight = 0;
    prod->Promote(&responding_total, &inflight);

    prev_produce_ = produce_mode;
    ++superstep_;
    stats_.supersteps_run = superstep_;

    if (responding_total == 0 && inflight == 0 && superstep_ > 0) {
      converged_ = true;
    }
    if constexpr (HasAggregateHalt<P>) {
      if (prod->supports_aggregator() && superstep_ > 1 &&
          program_.ShouldHalt(aggregate)) {
        converged_ = true;
      }
    }
    return Status::OK();
  }

  Status Run() {
    const auto start = std::chrono::steady_clock::now();
    while (superstep_ < config_.max_supersteps && !converged_) {
      HG_RETURN_IF_ERROR(RunSuperstep());
    }
    stats_.converged = converged_;
    stats_.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (trace_.enabled()) {
      HG_RETURN_IF_ERROR(trace_.WriteJson(config_.trace_path));
    }
    return Status::OK();
  }

  // --------------------------------------------------- block-engine services

  /// Builds the shared block-centric topology (partition, stores, flags,
  /// inboxes, RPC wiring) the first time a block path asks for it; later
  /// calls are no-ops so push and b-pull share one build under hybrid.
  Status EnsureBlockTopology(const EdgeListGraph& graph) {
    if (topology_built_) return Status::OK();
    topology_built_ = true;

    bool need_adj = false;
    bool need_ve = false;
    for (MessagePath<P>* path : build_order_) {
      need_adj = need_adj || path->needs_adjacency();
      need_ve = need_ve || path->needs_veblocks();
    }

    BlockTopologyHooks hooks;
    hooks.init_value = [this](VertexId v, uint8_t* out) {
      const Value val = program_.InitValue(v, ctx_);
      PodCodec<Value>::Encode(val, out);
    };
    hooks.init_active = [this](VertexId v) { return program_.InitActive(v); };
    if constexpr (P::kCombinable) {
      hooks.pending_combiner = &ProgramOps<P>::CombineRaw;
      hooks.staging_combiner = &ProgramOps<P>::CombineRaw;
      if (config_.io.spill_combining) {
        hooks.spill_combiner = &ProgramOps<P>::CombineRaw;
      }
    }

    BlockTopologyCensus census;
    HG_RETURN_IF_ERROR(BuildBlockTopology(
        graph, config_, P::kCombinable, P::kValueSize, kMsgSize, need_adj,
        need_ve, hooks, &partition_, &transport_, &nodes_, total_edges_,
        &stats_.load, &census));
    total_in_degree_ = census.total_in_degree;
    total_fragments_ = census.total_fragments;
    initial_messages_ = census.initial_messages;
    initial_active_frac_ = static_cast<double>(census.initial_active_count) /
                           static_cast<double>(graph.num_vertices);

    // Per-node readahead pipelines over the node's storage. Background reads
    // are unmetered; metering happens at the consumption point, so modeled
    // I/O stays bit-identical with prefetch on or off.
    if (io_pool_ != nullptr) {
      for (auto& node : nodes_) {
        node.pipeline = std::make_unique<ReadPipeline>(
            node.storage.get(), io_pool_.get(), config_.io.prefetch_depth,
            config_.io.prefetch_budget_bytes);
        node.pipeline->SetSpanSink(
            [this, node_id = static_cast<int>(node.id)](
                const char* name, int superstep, int mode, uint64_t start_us,
                uint64_t end_us) {
              trace_.AddSteadySpan(name, superstep, node_id, start_us, end_us,
                                   static_cast<EngineMode>(mode));
            });
      }
    }

    // RPC wiring. Handlers run in the SENDER's thread (or a transport server
    // thread) under the destination's dispatch lock, possibly while this
    // node's own phase task is running — so they only stage raw bytes or
    // per-requester counters; the paths apply them at the next barrier.
    for (uint32_t i = 0; i < config_.num_nodes; ++i) {
      NodeState* node = &nodes_[i];
      transport_->RegisterHandler(
          i, RpcMethod::kPushMessages, [node](NodeId src, Slice payload, Buffer*) {
            node->push_staged[src].emplace_back(
                payload.data(), payload.data() + payload.size());
            return Status::OK();
          });
      transport_->RegisterHandler(
          i, RpcMethod::kPullRequest,
          [this, node](NodeId src, Slice payload, Buffer* response) {
            // A pull at superstep t fetches the messages PRODUCED at t-1, so
            // it is served by the previous producer path when that path
            // serves pulls (adaptive), else by the b-pull slot (the only
            // other server; push producers never trigger pulls).
            MessagePath<P>* p = registry_[static_cast<size_t>(prev_produce_)];
            if (p == nullptr || !p->serves_pulls()) {
              p = registry_[static_cast<size_t>(EngineMode::kBPull)];
            }
            if (p == nullptr) return Status::Internal("no pull path installed");
            return p->ServePull(*node, src, payload, response);
          });
      transport_->RegisterHandler(i, RpcMethod::kControl,
                                  [](NodeId, Slice, Buffer*) {
                                    return Status::OK();
                                  });
    }
    return Status::OK();
  }

  /// The shared Phase B vertex-update sweep over one node's Vblocks
  /// (update() + setResFlag); production is delegated to the path's
  /// ProduceVblock/FinishProduce hooks so this loop stays mode-free.
  Status UpdateVblocks(NodeState& node, MessagePath<P>& prod) {
    std::fill(node.responding_next.begin(), node.responding_next.end(), 0);
    std::fill(node.vblock_res_next.begin(), node.vblock_res_next.end(), 0);

    const uint32_t first_vb = partition_.FirstVblockOf(node.id);
    const uint32_t last_vb = partition_.LastVblockOf(node.id);
    const std::vector<Message> no_msgs;
    std::vector<Message> msg_scratch;
    std::vector<uint8_t> values;
    std::vector<uint8_t> respond_in_vb;

    // Precompute which Vblocks will be read this sweep, so the pipeline can
    // stay one block ahead of the scan. Safe to hoist: the flags any_active
    // reads (pending, active) are only mutated for vertices inside the same
    // Vblock, after that block's own flag was computed.
    std::vector<uint8_t> vb_active(last_vb - first_vb, 0);
    for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
      const VertexRange r = partition_.VblockRange(vb);
      for (VertexId v = r.begin; v < r.end; ++v) {
        const uint32_t li = node.LocalIdx(v);
        const bool a = P::kAlwaysActive
                           ? (superstep_ > 0 || node.active[li])
                           : (node.pending.Has(li) || node.active[li]);
        if (a) {
          vb_active[vb - first_vb] = 1;
          break;
        }
      }
    }
    auto prefetch_next_vblock = [&](uint32_t after_vb) {
      if (!node.pipeline || !node.pipeline->enabled()) return;
      for (uint32_t nvb = after_vb + 1; nvb < last_vb; ++nvb) {
        if (vb_active[nvb - first_vb]) {
          node.vstore->PrefetchBlock(nvb, node.pipeline.get(),
                                     IoClass::kSeqRead);
          return;
        }
      }
    };

    for (uint32_t vb = first_vb; vb < last_vb; ++vb) {
      const VertexRange r = partition_.VblockRange(vb);
      const bool any_active = vb_active[vb - first_vb] != 0;
      respond_in_vb.assign(r.size(), 0);
      if (any_active) {
        // Stage the following active Vblock before consuming this one, so
        // its read overlaps this block's update work.
        prefetch_next_vblock(vb);
        // IO(V^t): scan + write back the Vblock.
        HG_RETURN_IF_ERROR(node.vstore->ReadBlock(
            vb, &values, IoClass::kSeqRead, node.pipeline.get()));
        node.io.vt_bytes += node.vstore->BlockBytes(vb);
        bool block_dirty = false;

        for (VertexId v = r.begin; v < r.end; ++v) {
          const uint32_t li = node.LocalIdx(v);
          const bool has_msgs = node.pending.Has(li);
          const bool run_update =
              P::kAlwaysActive ? (superstep_ > 0 || node.active[li])
                               : (has_msgs || node.active[li]);
          if (!run_update) continue;

          Value value = PodCodec<Value>::Decode(
              values.data() + static_cast<size_t>(v - r.begin) * P::kValueSize);
          [[maybe_unused]] const Value old_value = value;
          if (has_msgs) {
            msg_scratch.clear();
            const size_t count = node.pending.CountAt(li);
            const uint8_t* data = node.pending.DataAt(li);
            for (size_t k = 0; k < count; ++k) {
              msg_scratch.push_back(
                  PodCodec<Message>::Decode(data + k * kMsgSize));
            }
          }
          const std::vector<Message>& msgs = has_msgs ? msg_scratch : no_msgs;
          const UpdateResult res = program_.Update(v, &value, msgs, ctx_);
          ++node.updated_vertices;
          if constexpr (HasAggregator<P>) {
            node.aggregate_partial +=
                program_.AggregateContribution(v, old_value, value, ctx_);
          }
          node.cpu_seconds +=
              config_.cpu.per_vertex_update_s +
              config_.cpu.per_message_s * static_cast<double>(msgs.size());
          if (res.changed) {
            PodCodec<Value>::Encode(
                value, values.data() +
                           static_cast<size_t>(v - r.begin) * P::kValueSize);
            block_dirty = true;
          }
          if (res.respond) {
            node.responding_next[li] = 1;
            node.vblock_res_next[vb - first_vb] = 1;
            respond_in_vb[v - r.begin] = 1;
          }
          // Consume messages.
          if (has_msgs) node.pending.ConsumeAt(li);
          node.active[li] = 0;
        }
        if (block_dirty) {
          HG_RETURN_IF_ERROR(
              node.vstore->WriteBlock(vb, values, IoClass::kSeqWrite));
          node.io.vt_bytes += node.vstore->BlockBytes(vb);
        }
      }
      HG_RETURN_IF_ERROR(prod.ProduceVblock(node, vb, respond_in_vb, values));
    }
    return prod.FinishProduce(node);
  }

  /// Collects all vertex values from the block stores (global, indexed by
  /// vertex id). The vpull front-end gathers from its own path instead.
  Result<std::vector<Value>> GatherValues() {
    std::vector<Value> out(partition_.num_vertices());
    std::vector<uint8_t> values;
    for (auto& node : nodes_) {
      for (uint32_t vb = partition_.FirstVblockOf(node.id);
           vb < partition_.LastVblockOf(node.id); ++vb) {
        HG_RETURN_IF_ERROR(
            node.vstore->ReadBlock(vb, &values, IoClass::kSeqRead));
        const VertexRange r = partition_.VblockRange(vb);
        for (uint32_t i = 0; i < r.size(); ++i) {
          out[r.begin + i] = PodCodec<Value>::Decode(
              values.data() + static_cast<size_t>(i) * P::kValueSize);
        }
      }
    }
    return out;
  }

  Status WriteCheckpoint(Buffer* out) {
    if (!loaded_) return Status::FailedPrecondition("Load() first");
    return WriteEngineCheckpoint(nodes_, partition_, MakeCheckpointState(),
                                 kMsgSize, out);
  }

  Status RestoreCheckpoint(Slice data) {
    if (!loaded_) return Status::FailedPrecondition("Load() first");
    // In-flight readahead was issued against pre-restore state; cancel it
    // all before the restore rewrites blocks, so nothing stale survives.
    // (Writes during the restore also invalidate matching staged reads via
    // the storage mutation observer — this is the belt to that suspender.)
    for (auto& node : nodes_) {
      if (node.pipeline) node.pipeline->CancelAll();
    }
    return RestoreEngineCheckpoint(nodes_, partition_, config_,
                                   MakeCheckpointState(), kMsgSize, data,
                                   &stats_.supersteps_run);
  }

  // ---------------------------------------------------------------- access

  const JobStats& stats() const { return stats_; }
  JobStats* mutable_stats() { return &stats_; }
  const RangePartition& partition() const { return partition_; }
  const JobConfig& config() const { return config_; }
  P& program() { return program_; }
  bool converged() const { return converged_; }
  int superstep() const { return superstep_; }
  EngineMode current_mode() const { return mode_; }
  uint64_t total_fragments() const { return total_fragments_; }
  uint64_t b_lower_bound() const { return stats_.load.b_lower_bound; }

  Transport& transport() { return *transport_; }
  void set_transport(std::unique_ptr<Transport> t) { transport_ = std::move(t); }
  /// Shared background-read pool; null when prefetch is disabled. Paths that
  /// own their storage (vpull) build their ReadPipelines on it.
  ThreadPool* io_pool() { return io_pool_.get(); }
  std::vector<NodeState>& nodes() { return nodes_; }
  SuperstepContext& ctx() { return ctx_; }
  double pull_gen_aggregate() const { return pull_gen_aggregate_; }
  const TransportFaultCounters& fault_snapshot() const {
    return fault_snapshot_;
  }
  TraceCollector* trace() { return &trace_; }

 private:
  CheckpointState MakeCheckpointState() {
    CheckpointState st;
    st.superstep = &superstep_;
    st.mode = &mode_;
    st.prev_produce = &prev_produce_;
    st.converged = &converged_;
    st.hybrid = &hybrid_;
    st.prev_aggregate = &ctx_.prev_aggregate;
    return st;
  }

  JobConfig config_;
  P program_;
  const bool gas_engine_;
  RangePartition partition_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<ThreadPool> pool_;
  /// Dedicated pool for background prefetch reads (null when prefetch is
  /// off). Separate from pool_ because ThreadPool is a single FIFO queue: a
  /// compute task waiting on a queued prefetch task would deadlock at
  /// num_threads=1. Declared before nodes_ so it outlives the per-node
  /// ReadPipelines (reverse destruction order), which wait out their
  /// in-flight reads in their destructors.
  std::unique_ptr<ThreadPool> io_pool_;
  std::vector<NodeState> nodes_;
  SuperstepContext ctx_;
  TraceCollector trace_;

  int superstep_ = 0;
  bool converged_ = false;
  bool loaded_ = false;
  bool topology_built_ = false;

  // Hybrid state: production mode for the upcoming superstep and the one
  // used by the previous superstep (= consumption mode of the upcoming one).
  EngineMode mode_ = EngineMode::kPush;
  EngineMode prev_produce_ = EngineMode::kPush;
  HybridState hybrid_;
  const HybridFacts facts_{P::kCombinable, kMsgSize, kMsgRecordSize,
                           kValueRecordSize};
  /// Aggregate visible to the previous superstep (pullRes() at superstep t
  /// logically produces superstep t-1's messages and must see t-1's view).
  double pull_gen_aggregate_ = 0;

  /// fault_counters() at the start of the current superstep; the superstep's
  /// SuperstepMetrics records the delta.
  TransportFaultCounters fault_snapshot_;

  uint64_t total_edges_ = 0;
  uint64_t total_fragments_ = 0;
  uint64_t total_in_degree_ = 0;
  uint64_t initial_messages_ = 0;  ///< sum out-degrees of InitActive vertices
  double initial_active_frac_ = 0;  ///< |InitActive| / |V|

  JobStats stats_;

  /// Mode -> strategy. Indexed by EngineMode; kHybrid's slot stays null
  /// (hybrid is a driver policy, not a path).
  std::array<MessagePath<P>*, kNumEngineModes> registry_{};
  std::vector<MessagePath<P>*> build_order_;
};

}  // namespace hybridgraph
