// Sender-side staging for push production: per destination node, the
// unflushed (destination vertex, raw message payload) records plus the
// sender combining index (pushM+com, Appendix E). Only messages that are
// still in the unflushed buffer can combine — flushing clears the index,
// which is exactly why small sending thresholds limit the gain.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/buffer.h"

namespace hybridgraph {

class SendStaging {
 public:
  using CombineRawFn = void (*)(uint8_t* acc, const uint8_t* other);

  /// `combiner` may be null when the program is not combinable (TryCombine
  /// is never called in that case).
  void Init(uint32_t num_dst_nodes, size_t msg_size, CombineRawFn combiner);

  /// Unflushed records staged for `dst`.
  size_t count(uint32_t dst) const { return records_[dst].size(); }

  void Append(uint32_t dst, VertexId dst_vertex, const uint8_t* payload);

  /// Sender combining: if an unflushed message for `dst_vertex` exists,
  /// combines `payload` into it and returns true. Otherwise registers the
  /// slot the next Append will occupy and returns false — callers must
  /// Append on a false return (mirroring the engine's try_emplace-then-
  /// emplace_back sequence exactly).
  bool TryCombine(uint32_t dst, VertexId dst_vertex, const uint8_t* payload);

  /// FlatBatch-encodes the staged records for `dst` into `out`.
  void EncodeBatch(uint32_t dst, Buffer* out) const;

  /// Drops the staged records and the combining index for `dst`.
  void Clear(uint32_t dst);

 private:
  size_t msg_size_ = 0;
  CombineRawFn combiner_ = nullptr;
  /// Per destination node: (dst vertex, raw payload) in staging order.
  std::vector<std::vector<std::pair<uint32_t, std::vector<uint8_t>>>> records_;
  /// Per destination node: dst vertex -> slot in `records_`.
  std::vector<std::unordered_map<VertexId, size_t>> index_;
};

}  // namespace hybridgraph
