// Figure 10 — total I/O bytes (read + written) with limited memory on the
// local cluster, same grid as Fig 8.
#include "bench_runtime_grid.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

int main() {
  PrintHeader("bench_fig10_io_bytes",
              "Fig 10: I/O costs (bytes) with limited memory (local cluster)");
  GridOptions opts;
  opts.datasets = {"livej", "wiki", "orkut", "twi", "fri", "uk"};
  opts.make_config = [](const DatasetSpec& spec, double shrink) {
    return LimitedMemoryConfig(spec, shrink, DiskProfile::Hdd());
  };
  opts.metric = [](const JobStats& s) {
    return static_cast<double>(s.TotalIoBytes());
  };
  opts.metric_name = "total I/O bytes";
  RunGrid(opts);
  std::printf(
      "\nexpected shape: pull extreme (random vertex re-reads), push >\n"
      "pushM > b-pull/hybrid; for SSSP over twi b-pull's bytes exceed\n"
      "push's (fragment overheads) and hybrid fixes it by switching.\n");
  return 0;
}
