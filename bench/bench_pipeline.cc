// Overlapped-I/O pipeline bench: the paper's memory-limited HDD and SSD
// shapes with device read latency emulated by a storage.read delay
// fail-point, run with the prefetch pipeline off and on. Reports wall-clock
// and modeled columns side by side and HARD-FAILS unless the modeled I/O
// bytes, modeled seconds, and the hybrid mode/switch trace are bit-identical
// between the two runs — readahead may only move wall-clock time. Emits a
// machine-readable BENCH_pipeline.json (path overridable via argv[1]).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/failpoint.h"

using namespace hybridgraph;
using namespace hybridgraph::bench;

namespace {

struct Shape {
  const char* name;
  DiskProfile profile;
  uint32_t read_delay_us;  // emulated per-read device latency
};

struct Workload {
  Algo algo;
  EngineMode mode;
};

struct RunResult {
  double wall_s = 0;
  double modeled_s = 0;
  uint64_t io_bytes = 0;
  uint64_t prefetch_scheduled = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_hit_bytes = 0;
  std::string mode_trace;  // "push,push*,b-pull,..." — '*' marks a switch
};

struct Row {
  std::string shape, workload;
  RunResult off, on;
};

Result<RunResult> RunOne(const EdgeListGraph& graph, const DatasetSpec& spec,
                         double shrink, const Shape& shape,
                         const Workload& wl, bool prefetch) {
  JobConfig cfg = LimitedMemoryConfig(spec, shrink, shape.profile);
  cfg.num_threads = 2;
  cfg.io.prefetch_depth = prefetch ? 8 : 0;

  FailPointRegistry::Instance().DisarmAll();
  FailPointSpec delay;
  delay.action = FailPointAction::kDelay;
  delay.delay_us = shape.read_delay_us;
  FailPointRegistry::Instance().Arm("storage.read", delay);

  const auto t0 = std::chrono::steady_clock::now();
  auto stats_r = RunAlgo(graph, wl.algo, wl.mode, cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  FailPointRegistry::Instance().DisarmAll();
  if (!stats_r.ok()) return stats_r.status();
  const JobStats& stats = *stats_r;

  RunResult r;
  r.wall_s = wall;
  r.modeled_s = stats.modeled_seconds;
  r.io_bytes = stats.TotalIoBytes();
  for (const auto& s : stats.supersteps) {
    r.prefetch_scheduled += s.prefetch_scheduled;
    r.prefetch_hits += s.prefetch_hits;
    r.prefetch_hit_bytes += s.prefetch_hit_bytes;
    if (!r.mode_trace.empty()) r.mode_trace += ',';
    r.mode_trace += EngineModeName(s.mode);
    if (s.switched) r.mode_trace += '*';
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  PrintHeader("bench_pipeline",
              "Overlapped I/O: compute/IO overlap on the mem-limited shapes");

  auto spec_r = FindDataset("livej");
  if (!spec_r.ok()) {
    std::fprintf(stderr, "dataset: %s\n", spec_r.status().ToString().c_str());
    return 1;
  }
  const DatasetSpec spec = *spec_r;
  const double shrink = ShrinkFor(spec);
  const EdgeListGraph& graph = CachedGraph(spec, shrink);

  const Shape shapes[] = {
      {"hdd", DiskProfile::Hdd(), 100},
      {"ssd", DiskProfile::Ssd(), 15},
  };
  const Workload workloads[] = {
      {Algo::kPageRank, EngineMode::kPush},
      {Algo::kPageRank, EngineMode::kBPull},
      {Algo::kSssp, EngineMode::kHybrid},
  };

  std::printf("%-4s %-16s %11s %11s %8s %12s %12s %10s %8s\n", "disk",
              "workload", "wall_off_s", "wall_on_s", "speedup", "io_bytes",
              "modeled_s", "hits", "hit_MiB");
  std::vector<Row> rows;
  bool determinism_ok = true;
  for (const Shape& shape : shapes) {
    for (const Workload& wl : workloads) {
      Row row;
      row.shape = shape.name;
      row.workload = std::string(AlgoName(wl.algo)) + "/" +
                     EngineModeName(wl.mode);
      auto off = RunOne(graph, spec, shrink, shape, wl, false);
      auto on = RunOne(graph, spec, shrink, shape, wl, true);
      if (!off.ok() || !on.ok()) {
        std::fprintf(stderr, "%s %s failed: %s\n", shape.name,
                     row.workload.c_str(),
                     (!off.ok() ? off.status() : on.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      row.off = *off;
      row.on = *on;

      // The contract: readahead moves wall-clock time ONLY. Any drift in the
      // modeled columns or the switch trace is a determinism bug.
      if (row.off.io_bytes != row.on.io_bytes ||
          row.off.modeled_s != row.on.modeled_s ||
          row.off.mode_trace != row.on.mode_trace) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION %s %s:\n"
                     "  io_bytes  off=%llu on=%llu\n"
                     "  modeled_s off=%.9g on=%.9g\n"
                     "  trace off=%s\n  trace on =%s\n",
                     shape.name, row.workload.c_str(),
                     (unsigned long long)row.off.io_bytes,
                     (unsigned long long)row.on.io_bytes, row.off.modeled_s,
                     row.on.modeled_s, row.off.mode_trace.c_str(),
                     row.on.mode_trace.c_str());
        determinism_ok = false;
      }
      std::printf("%-4s %-16s %11.3f %11.3f %7.2fx %12llu %12.4f %10llu %8.2f\n",
                  shape.name, row.workload.c_str(), row.off.wall_s,
                  row.on.wall_s, row.off.wall_s / row.on.wall_s,
                  (unsigned long long)row.on.io_bytes, row.on.modeled_s,
                  (unsigned long long)row.on.prefetch_hits,
                  double(row.on.prefetch_hit_bytes) / (1024.0 * 1024.0));
      rows.push_back(std::move(row));
    }
  }
  if (!determinism_ok) return 1;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"pipeline\",\n  \"dataset\": \"livej\",\n"
               "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"disk\": \"%s\", \"workload\": \"%s\","
        " \"wall_off_s\": %.4f, \"wall_on_s\": %.4f,"
        " \"io_bytes\": %llu, \"modeled_s\": %.6f,"
        " \"prefetch_scheduled\": %llu, \"prefetch_hits\": %llu,"
        " \"prefetch_hit_bytes\": %llu, \"mode_trace\": \"%s\"}%s\n",
        r.shape.c_str(), r.workload.c_str(), r.off.wall_s, r.on.wall_s,
        (unsigned long long)r.on.io_bytes, r.on.modeled_s,
        (unsigned long long)r.on.prefetch_scheduled,
        (unsigned long long)r.on.prefetch_hits,
        (unsigned long long)r.on.prefetch_hit_bytes, r.on.mode_trace.c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf(
      "\nwrote %s\nmodeled io_bytes, modeled seconds and the mode/switch\n"
      "trace are asserted bit-identical with prefetch off vs on; wall-clock\n"
      "gain comes from staging the delayed device reads on the background\n"
      "I/O pool while compute drains the previous block.\n",
      out_path.c_str());
  return 0;
}
