// Backend-parameterized storage tests: MemStorage and FileStorage must
// behave identically through the StorageService interface — including the
// unified ReadOptions/ReadResult read surface and async staged reads.
#include "io/storage.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/thread_pool.h"

namespace hybridgraph {
namespace {

enum class Backend { kMem, kFile };

class StorageTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kMem) {
      storage_ = std::make_unique<MemStorage>();
    } else {
      dir_ = ::testing::TempDir() + "/hg_storage_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this));
      auto r = FileStorage::Open(dir_);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      storage_ = std::move(r).ValueOrDie();
    }
  }

  void TearDown() override {
    storage_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  static Slice S(const std::string& s) { return Slice(s); }

  /// Whole-blob read as a string; aborts the test on error.
  std::string ReadAll(const std::string& key,
                      IoClass cls = IoClass::kSeqRead) {
    auto r = storage_->Read(key, {.io_class = cls});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return {};
    return std::string(r->data.begin(), r->data.end());
  }

  std::unique_ptr<StorageService> storage_;
  std::string dir_;
};

TEST_P(StorageTest, WriteReadRoundTrip) {
  ASSERT_TRUE(storage_->Write("a/b", S("hello"), IoClass::kSeqWrite).ok());
  EXPECT_EQ(ReadAll("a/b"), "hello");
}

TEST_P(StorageTest, ReadReportsBlobSize) {
  ASSERT_TRUE(storage_->Write("k", S("0123456789"), IoClass::kSeqWrite).ok());
  auto r = storage_->Read("k", {.offset = 2, .length = 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->data.begin(), r->data.end()), "234");
  EXPECT_EQ(r->blob_size, 10u);
}

TEST_P(StorageTest, WriteOverwrites) {
  ASSERT_TRUE(storage_->Write("k", S("first"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Write("k", S("2nd"), IoClass::kSeqWrite).ok());
  EXPECT_EQ(ReadAll("k"), "2nd");
  EXPECT_EQ(storage_->SizeOf("k"), 3u);
}

TEST_P(StorageTest, AppendGrows) {
  ASSERT_TRUE(storage_->Append("k", S("ab"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Append("k", S("cd"), IoClass::kSeqWrite).ok());
  EXPECT_EQ(ReadAll("k"), "abcd");
}

TEST_P(StorageTest, ReadMissingIsNotFound) {
  EXPECT_EQ(storage_->Read("ghost").status().code(), StatusCode::kNotFound);
}

TEST_P(StorageTest, RangedRead) {
  ASSERT_TRUE(storage_->Write("k", S("0123456789"), IoClass::kSeqWrite).ok());
  auto r = storage_->Read(
      "k", {.offset = 3, .length = 4, .io_class = IoClass::kRandRead});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->data.begin(), r->data.end()), "3456");
  EXPECT_EQ(
      storage_->Read("k", {.offset = 8, .length = 5}).status().code(),
      StatusCode::kOutOfRange);
}

TEST_P(StorageTest, AllowShortClampsInsteadOfOutOfRange) {
  ASSERT_TRUE(storage_->Write("k", S("0123456789"), IoClass::kSeqWrite).ok());
  auto r = storage_->Read("k", {.offset = 8, .length = 5, .allow_short = true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->data.begin(), r->data.end()), "89");
  // Offset at/past the end yields an empty (not failed) read.
  auto past = storage_->Read("k", {.offset = 12, .length = 5,
                                   .allow_short = true});
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->data.empty());
}

TEST_P(StorageTest, UnmeteredReadLeavesMeterUntouched) {
  ASSERT_TRUE(storage_->Write("k", S("12345"), IoClass::kSeqWrite).ok());
  const uint64_t before = storage_->meter()->bytes(IoClass::kSeqRead);
  auto r = storage_->Read("k", {.io_class = IoClass::kSeqRead,
                                .metering = false});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), before);
}

TEST_P(StorageTest, WriteRange) {
  ASSERT_TRUE(storage_->Write("k", S("0123456789"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->WriteRange("k", 2, S("XY"), IoClass::kRandWrite).ok());
  EXPECT_EQ(ReadAll("k"), "01XY456789");
  EXPECT_EQ(storage_->WriteRange("k", 9, S("ZZ"), IoClass::kRandWrite).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(storage_->WriteRange("nope", 0, S("a"), IoClass::kRandWrite).code(),
            StatusCode::kNotFound);
}

TEST_P(StorageTest, ExistsDeleteSize) {
  EXPECT_FALSE(storage_->Exists("k"));
  EXPECT_EQ(storage_->SizeOf("k"), 0u);
  ASSERT_TRUE(storage_->Write("k", S("abc"), IoClass::kSeqWrite).ok());
  EXPECT_TRUE(storage_->Exists("k"));
  EXPECT_EQ(storage_->SizeOf("k"), 3u);
  ASSERT_TRUE(storage_->Delete("k").ok());
  EXPECT_FALSE(storage_->Exists("k"));
}

TEST_P(StorageTest, ListKeysByPrefix) {
  ASSERT_TRUE(storage_->Write("x/1", S("a"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Write("x/2", S("b"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Write("y/1", S("c"), IoClass::kSeqWrite).ok());
  auto keys = storage_->ListKeys("x/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "x/1");
  EXPECT_EQ(keys[1], "x/2");
}

TEST_P(StorageTest, MeterCountsBytes) {
  ASSERT_TRUE(storage_->Write("k", S("12345"), IoClass::kRandWrite).ok());
  EXPECT_EQ(ReadAll("k"), "12345");
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kRandWrite), 5u);
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 5u);
}

TEST_P(StorageTest, PageCacheMakesRereadsCached) {
  storage_->EnablePageCache(1024 * 1024);
  ASSERT_TRUE(storage_->Write("k", S("abcdef"), IoClass::kSeqWrite).ok());
  // The write inserted it into the cache; the read is a hit.
  auto r = storage_->Read("k", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(storage_->meter()->cached_bytes(IoClass::kSeqRead), 6u);
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 0u);
}

TEST_P(StorageTest, PageCacheColdReadThenWarm) {
  ASSERT_TRUE(storage_->Write("k", S("abcdef"), IoClass::kSeqWrite).ok());
  storage_->EnablePageCache(1024 * 1024);  // enabled after the write
  auto cold = storage_->Read("k", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  auto warm = storage_->Read("k", {.io_class = IoClass::kSeqRead});
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 6u);
  EXPECT_EQ(storage_->meter()->cached_bytes(IoClass::kSeqRead), 6u);
}

TEST_P(StorageTest, PageCacheEvictsLru) {
  storage_->EnablePageCache(10);  // tiny: one 6-byte blob at a time
  ASSERT_TRUE(storage_->Write("a", S("aaaaaa"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Write("b", S("bbbbbb"), IoClass::kSeqWrite).ok());
  // "a" was evicted by "b": reading it is a device read again.
  EXPECT_EQ(ReadAll("a"), "aaaaaa");
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 6u);
}

TEST_P(StorageTest, DeleteDropsFromCache) {
  storage_->EnablePageCache(1024);
  ASSERT_TRUE(storage_->Write("k", S("xxxx"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Delete("k").ok());
  ASSERT_TRUE(storage_->Write("k", S("yyyy"), IoClass::kSeqWrite).ok());
  EXPECT_EQ(ReadAll("k"), "yyyy");
}

TEST_P(StorageTest, EmptyBlob) {
  ASSERT_TRUE(storage_->Write("k", Slice(), IoClass::kSeqWrite).ok());
  auto r = storage_->Read("k");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->data.empty());
}

TEST_P(StorageTest, MutationObserverFiresOnWriteAndDelete) {
  std::vector<std::string> mutated;
  storage_->SetMutationObserver(
      [&](const std::string& key) { mutated.push_back(key); });
  ASSERT_TRUE(storage_->Write("k", S("abc"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->WriteRange("k", 1, S("X"), IoClass::kRandWrite).ok());
  ASSERT_TRUE(storage_->Append("k", S("d"), IoClass::kSeqWrite).ok());
  ASSERT_TRUE(storage_->Delete("k").ok());
  ASSERT_EQ(mutated.size(), 4u);
  for (const auto& k : mutated) EXPECT_EQ(k, "k");
  storage_->SetMutationObserver(nullptr);
  ASSERT_TRUE(storage_->Write("k2", S("z"), IoClass::kSeqWrite).ok());
  EXPECT_EQ(mutated.size(), 4u);
}

TEST_P(StorageTest, AsyncReadCompletesUnmetered) {
  ASSERT_TRUE(storage_->Write("k", S("0123456789"), IoClass::kSeqWrite).ok());
  ThreadPool pool(2);
  auto handle = storage_->ReadAsync(
      "k", {.offset = 2, .length = 4, .io_class = IoClass::kSeqRead}, &pool);
  auto r = handle->Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(std::string(r->data.begin(), r->data.end()), "2345");
  EXPECT_TRUE(handle->Poll());
  EXPECT_GE(handle->end_us(), handle->start_us());
  // Background reads never meter; FinishStagedRead is the consumption-point
  // metering entry.
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 0u);
  storage_->FinishStagedRead("k", r->blob_size, r->data.size(),
                             IoClass::kSeqRead);
  EXPECT_EQ(storage_->meter()->bytes(IoClass::kSeqRead), 4u);
}

TEST_P(StorageTest, AsyncReadCancelBeforeRun) {
  ASSERT_TRUE(storage_->Write("k", S("abc"), IoClass::kSeqWrite).ok());
  ThreadPool pool(1);
  auto h1 = storage_->ReadAsync("k", {}, &pool);
  h1->Cancel();
  auto r1 = h1->Take();
  // Either the task saw the cancel (FailedPrecondition) or it had already
  // completed; both are valid outcomes of a racing Cancel.
  if (!r1.ok()) {
    EXPECT_EQ(r1.status().code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_TRUE(h1->cancelled());
}

TEST_P(StorageTest, AsyncReadMissingKey) {
  ThreadPool pool(1);
  auto handle = storage_->ReadAsync("ghost", {}, &pool);
  auto r = handle->Take();
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageTest,
                         ::testing::Values(Backend::kMem, Backend::kFile),
                         [](const auto& info) {
                           return info.param == Backend::kMem ? "Mem" : "File";
                         });

}  // namespace
}  // namespace hybridgraph
