# Empty dependencies file for hg_core_tests.
# This may be replaced when dependencies are built.
