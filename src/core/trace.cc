#include "core/trace.h"

#include <chrono>
#include <cstdio>

#include "util/string_util.h"

namespace hybridgraph {

namespace {
int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

void TraceCollector::Enable() {
  enabled_ = true;
  origin_ns_ = MonotonicNs();
}

uint64_t TraceCollector::NowUs() const {
  if (!enabled_) return 0;
  return static_cast<uint64_t>((MonotonicNs() - origin_ns_) / 1000);
}

void TraceCollector::AddSpan(const char* name, int superstep, int node,
                             uint64_t start_us, uint64_t end_us,
                             EngineMode mode) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, superstep, node, start_us,
                          end_us >= start_us ? end_us - start_us : 0, mode});
}

void TraceCollector::AddSteadySpan(const char* name, int superstep, int node,
                                   uint64_t steady_start_us,
                                   uint64_t steady_end_us, EngineMode mode) {
  if (!enabled_) return;
  const uint64_t origin_us = static_cast<uint64_t>(origin_ns_ / 1000);
  const uint64_t s = steady_start_us > origin_us ? steady_start_us - origin_us : 0;
  const uint64_t e = steady_end_us > origin_us ? steady_end_us - origin_us : 0;
  AddSpan(name, superstep, node, s, e, mode);
}

void TraceCollector::AddInstant(const char* name, int superstep, int node,
                                EngineMode mode, const std::string& detail) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  Event e{name, superstep, node, NowUs(), 0, mode};
  e.instant = true;
  e.detail = detail;
  events_.push_back(std::move(e));
}

size_t TraceCollector::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

Status TraceCollector::WriteJson(const std::string& path) const {
  std::string json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    for (const auto& e : events_) {
      if (!first) json += ',';
      first = false;
      // pid 0 = the driver (cluster-wide phase spans); pid i+1 = node i.
      if (e.instant) {
        json += StringFormat(
            "{\"name\":\"%s\",\"cat\":\"superstep\",\"ph\":\"i\",\"s\":\"p\","
            "\"ts\":%llu,\"pid\":%d,\"tid\":0,"
            "\"args\":{\"superstep\":%d,\"mode\":\"%s\",\"detail\":\"%s\"}}",
            e.name, static_cast<unsigned long long>(e.start_us),
            e.node < 0 ? 0 : e.node + 1, e.superstep, EngineModeName(e.mode),
            JsonEscape(e.detail).c_str());
        continue;
      }
      json += StringFormat(
          "{\"name\":\"%s\",\"cat\":\"superstep\",\"ph\":\"X\","
          "\"ts\":%llu,\"dur\":%llu,\"pid\":%d,\"tid\":0,"
          "\"args\":{\"superstep\":%d,\"mode\":\"%s\"}}",
          e.name, static_cast<unsigned long long>(e.start_us),
          static_cast<unsigned long long>(e.dur_us),
          e.node < 0 ? 0 : e.node + 1, e.superstep, EngineModeName(e.mode));
    }
  }
  json += "]}";

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IoError("cannot open trace file: " + path);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace hybridgraph
