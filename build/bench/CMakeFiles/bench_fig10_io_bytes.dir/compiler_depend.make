# Empty compiler generated dependencies file for bench_fig10_io_bytes.
# This may be replaced when dependencies are built.
