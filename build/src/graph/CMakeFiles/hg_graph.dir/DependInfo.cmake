
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency_store.cc" "src/graph/CMakeFiles/hg_graph.dir/adjacency_store.cc.o" "gcc" "src/graph/CMakeFiles/hg_graph.dir/adjacency_store.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/graph/CMakeFiles/hg_graph.dir/edge_list.cc.o" "gcc" "src/graph/CMakeFiles/hg_graph.dir/edge_list.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/graph/CMakeFiles/hg_graph.dir/generator.cc.o" "gcc" "src/graph/CMakeFiles/hg_graph.dir/generator.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/hg_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/hg_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/ve_block_store.cc" "src/graph/CMakeFiles/hg_graph.dir/ve_block_store.cc.o" "gcc" "src/graph/CMakeFiles/hg_graph.dir/ve_block_store.cc.o.d"
  "/root/repo/src/graph/vertex_store.cc" "src/graph/CMakeFiles/hg_graph.dir/vertex_store.cc.o" "gcc" "src/graph/CMakeFiles/hg_graph.dir/vertex_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hg_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
