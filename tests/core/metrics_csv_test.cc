#include "core/metrics_csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "algos/pagerank.h"
#include "core/engine.h"
#include "graph/generator.h"
#include "util/string_util.h"

namespace hybridgraph {
namespace {

JobStats RunSmallJob() {
  const auto g = GeneratePowerLaw(300, 6.0, 0.8, 8);
  JobConfig cfg;
  cfg.mode = EngineMode::kHybrid;
  cfg.num_nodes = 3;
  cfg.msg_buffer_per_node = 100;
  cfg.max_supersteps = 4;
  Engine<PageRankProgram> engine(cfg, PageRankProgram{});
  EXPECT_TRUE(engine.Load(g).ok());
  EXPECT_TRUE(engine.Run().ok());
  return engine.stats();
}

TEST(MetricsCsv, HeaderAndRowShape) {
  const JobStats stats = RunSmallJob();
  const std::string csv = SuperstepMetricsCsv(stats);
  const auto lines = SplitString(TrimString(csv), '\n');
  ASSERT_EQ(lines.size(), stats.supersteps.size() + 1);

  const auto header = SplitString(lines[0], ',');
  for (size_t i = 1; i < lines.size(); ++i) {
    const auto row = SplitString(lines[i], ',');
    ASSERT_EQ(row.size(), header.size()) << "row " << i;
  }
  // Spot fields.
  EXPECT_EQ(header[0], "superstep");
  EXPECT_EQ(header[1], "mode");
  const auto row1 = SplitString(lines[1], ',');
  EXPECT_EQ(row1[0], "0");
  EXPECT_TRUE(row1[1] == "push" || row1[1] == "b-pull");
}

TEST(MetricsCsv, ValuesMatchStats) {
  const JobStats stats = RunSmallJob();
  const std::string csv = SuperstepMetricsCsv(stats);
  const auto lines = SplitString(TrimString(csv), '\n');
  const auto header = SplitString(lines[0], ',');
  size_t msgs_col = 0, io_col = 0, buf_col = 0, res_col = 0, com_col = 0;
  size_t psch_col = 0, phit_col = 0, pmiss_col = 0, pbytes_col = 0;
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] == "messages") msgs_col = c;
    if (header[c] == "io_total") io_col = c;
    if (header[c] == "spill_buffer_bytes") buf_col = c;
    if (header[c] == "spill_resident_peak") res_col = c;
    if (header[c] == "spill_combined") com_col = c;
    if (header[c] == "prefetch_scheduled") psch_col = c;
    if (header[c] == "prefetch_hits") phit_col = c;
    if (header[c] == "prefetch_misses") pmiss_col = c;
    if (header[c] == "prefetch_hit_bytes") pbytes_col = c;
  }
  ASSERT_GT(msgs_col, 0u);
  ASSERT_GT(io_col, 0u);
  ASSERT_GT(buf_col, 0u);
  ASSERT_GT(res_col, 0u);
  ASSERT_GT(com_col, 0u);
  ASSERT_GT(psch_col, 0u);
  ASSERT_GT(phit_col, 0u);
  ASSERT_GT(pmiss_col, 0u);
  ASSERT_GT(pbytes_col, 0u);
  for (size_t i = 0; i < stats.supersteps.size(); ++i) {
    const auto row = SplitString(lines[i + 1], ',');
    EXPECT_EQ(std::stoull(row[msgs_col]),
              stats.supersteps[i].messages_produced);
    EXPECT_EQ(std::stoull(row[io_col]), stats.supersteps[i].io.Total());
    EXPECT_EQ(std::stoull(row[buf_col]),
              stats.supersteps[i].spill_merge_buffer_bytes);
    EXPECT_EQ(std::stoull(row[res_col]),
              stats.supersteps[i].spill_peak_resident);
    EXPECT_EQ(std::stoull(row[com_col]), stats.supersteps[i].spill_combined);
    EXPECT_EQ(std::stoull(row[psch_col]),
              stats.supersteps[i].prefetch_scheduled);
    EXPECT_EQ(std::stoull(row[phit_col]), stats.supersteps[i].prefetch_hits);
    EXPECT_EQ(std::stoull(row[pmiss_col]),
              stats.supersteps[i].prefetch_misses);
    EXPECT_EQ(std::stoull(row[pbytes_col]),
              stats.supersteps[i].prefetch_hit_bytes);
  }
}

TEST(MetricsCsv, PhaseWallColumnsPresentAndMatchStats) {
  const JobStats stats = RunSmallJob();
  const std::string csv = SuperstepMetricsCsv(stats);
  const auto lines = SplitString(TrimString(csv), '\n');
  const auto header = SplitString(lines[0], ',');
  size_t consume_col = 0, update_col = 0, drain_col = 0;
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] == "phase_consume_s") consume_col = c;
    if (header[c] == "phase_update_s") update_col = c;
    if (header[c] == "phase_drain_s") drain_col = c;
  }
  ASSERT_GT(consume_col, 0u);
  ASSERT_GT(update_col, 0u);
  ASSERT_GT(drain_col, 0u);
  for (size_t i = 0; i < stats.supersteps.size(); ++i) {
    const auto row = SplitString(lines[i + 1], ',');
    // %.9g keeps 9 significant digits, so compare with a relative tolerance.
    EXPECT_NEAR(std::stod(row[consume_col]),
                stats.supersteps[i].phase_consume_wall_s,
                stats.supersteps[i].phase_consume_wall_s * 1e-6 + 1e-12);
    EXPECT_NEAR(std::stod(row[update_col]),
                stats.supersteps[i].phase_update_wall_s,
                stats.supersteps[i].phase_update_wall_s * 1e-6 + 1e-12);
    EXPECT_NEAR(std::stod(row[drain_col]),
                stats.supersteps[i].phase_drain_wall_s,
                stats.supersteps[i].phase_drain_wall_s * 1e-6 + 1e-12);
    // Wall clocks are nonnegative; the update sweep always does real work.
    EXPECT_GE(stats.supersteps[i].phase_consume_wall_s, 0.0);
    EXPECT_GT(stats.supersteps[i].phase_update_wall_s, 0.0);
  }
}

TEST(MetricsCsv, WritesFile) {
  const JobStats stats = RunSmallJob();
  const std::string path = ::testing::TempDir() + "/hg_metrics_test.csv";
  ASSERT_TRUE(WriteSuperstepCsv(stats, path).ok());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_EQ(first.rfind("superstep,", 0), 0u);
  std::filesystem::remove(path);
  EXPECT_FALSE(WriteSuperstepCsv(stats, "/nonexistent-dir/x.csv").ok());
}

}  // namespace
}  // namespace hybridgraph
